(* repro-metaopt: command-line front end for the reproduction.

   Subcommands:
     topology   inspect a built-in topology
     evaluate   run OPT and a heuristic on a generated demand matrix
     find-gap   search for adversarial inputs (white-box or black-box)

   Examples:
     repro-metaopt topology b4
     repro-metaopt evaluate -t abilene -H dp --threshold-frac 0.05 --seed 3
     repro-metaopt find-gap -t b4 -H dp -m whitebox --time 30
     repro-metaopt find-gap -t b4 -H pop --parts 3 -m annealing --time 20 *)

open Cmdliner
module Follower = Repro_follower

let topology_conv =
  let parse s =
    match Topologies.by_name s with
    | Some g -> Ok g
    | None -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf g = Fmt.string ppf (Graph.name g) in
  Arg.conv (parse, print)

let topology_arg =
  let doc =
    "Topology: fig1, b4, abilene, swan, circle-N-K, line-N, star-N, grid-RxC."
  in
  Arg.(
    value
    & opt topology_conv (Topologies.b4 ())
    & info [ "t"; "topology" ] ~docv:"NAME" ~doc)

let paths_arg =
  let doc = "Paths per node pair (the paper's default is 2)." in
  Arg.(value & opt int 2 & info [ "paths" ] ~docv:"K" ~doc)

let seed_arg =
  let doc = "Random seed (partitions, demand generators, black-box search)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

type heuristic_kind = Dp | Pop_h

let heuristic_arg =
  let doc = "Heuristic: 'dp' (demand pinning) or 'pop'." in
  Arg.(
    value
    & opt (enum [ ("dp", Dp); ("pop", Pop_h) ]) Dp
    & info [ "H"; "heuristic" ] ~docv:"NAME" ~doc)

let threshold_frac_arg =
  let doc = "DP pinning threshold as a fraction of link capacity." in
  Arg.(value & opt float 0.05 & info [ "threshold-frac" ] ~docv:"F" ~doc)

let parts_arg =
  let doc = "POP partition count." in
  Arg.(value & opt int 2 & info [ "parts" ] ~docv:"N" ~doc)

let instances_arg =
  let doc = "POP random partition instances averaged by the adversary." in
  Arg.(value & opt int 5 & info [ "instances" ] ~docv:"R" ~doc)

let lp_backend_arg =
  let doc =
    "LP engine backend: 'sparse' (revised simplex with a factorized basis \
     inverse; default) or 'dense' (reference tableau). Also settable via \
     \\$(b,REPRO_LP_BACKEND)."
  in
  let backend_conv =
    let parse s =
      match Backend.kind_of_string s with
      | Some k -> Ok k
      | None -> Error (`Msg (Printf.sprintf "unknown LP backend %S" s))
    in
    let print ppf k = Fmt.string ppf (Backend.kind_to_string k) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt backend_conv (Backend.default ())
    & info [ "lp-backend" ] ~docv:"BACKEND" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel engine (default: \\$(b,REPRO_JOBS) or \
     1). With N > 1, oracle scoring fans out over a domain pool \
     (bit-identical results), the MILP branch-and-bound searches its tree \
     with N work-stealing workers (same outcome and objective within the \
     gap tolerance; node order may differ), and the portfolio method \
     races its strategies concurrently."
  in
  Arg.(
    value
    & opt int (Repro_engine.Jobs.default ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let make_evaluator g ~paths ~heuristic ~threshold_frac ~parts ~instances ~seed =
  let pathset = Pathset.compute (Demand.full_space g) ~k:paths in
  match heuristic with
  | Dp ->
      Evaluate.make_dp pathset
        ~threshold:(threshold_frac *. Graph.max_capacity g)
  | Pop_h ->
      Evaluate.make_pop pathset ~parts ~instances ~rng:(Rng.create seed) ()

(* ------------------------------------------------------------------ *)
(* topology                                                            *)
(* ------------------------------------------------------------------ *)

let topology_cmd =
  let run g paths =
    Fmt.pr "%a@." Graph.pp g;
    Fmt.pr "average shortest path length: %.2f hops@."
      (Topologies.average_shortest_path_length g);
    let pathset = Pathset.compute (Demand.full_space g) ~k:paths in
    let routable = ref 0 in
    for k = 0 to Pathset.num_pairs pathset - 1 do
      if Pathset.routable pathset k then incr routable
    done;
    Fmt.pr "%d of %d ordered pairs routable with %d paths each@." !routable
      (Pathset.num_pairs pathset) paths;
    Graph.fold_edges
      (fun e () ->
        Fmt.pr "  edge %2d: %2d -> %2d  capacity %g weight %g@." e
          (Graph.edge_src g e) (Graph.edge_dst g e) (Graph.capacity g e)
          (Graph.weight g e))
      g ()
  in
  let term = Term.(const run $ topology_arg $ paths_arg) in
  Cmd.v (Cmd.info "topology" ~doc:"Describe a built-in topology") term

(* ------------------------------------------------------------------ *)
(* evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let demand_gen_arg =
  let doc = "Demand generator: uniform, gravity or bimodal." in
  Arg.(
    value
    & opt (enum [ ("uniform", `Uniform); ("gravity", `Gravity); ("bimodal", `Bimodal) ]) `Gravity
    & info [ "demands" ] ~docv:"GEN" ~doc)

let demands_file_arg =
  let doc = "Read the demand matrix from a src,dst,volume CSV instead of generating one." in
  Arg.(value & opt (some file) None & info [ "demands-file" ] ~docv:"FILE" ~doc)

(* Run [f] with a worker pool when [jobs] > 1, fully serial otherwise. *)
let with_jobs jobs f =
  let jobs = Repro_engine.Jobs.clamp jobs in
  if jobs > 1 then
    Repro_engine.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))
  else f None

let evaluate_cmd =
  let run g paths heuristic threshold_frac parts instances seed gen file jobs
      lp_backend =
    Backend.set_default lp_backend;
    let ev =
      make_evaluator g ~paths ~heuristic ~threshold_frac ~parts ~instances
        ~seed
    in
    let space = Pathset.space ev.Evaluate.pathset in
    let rng = Rng.create (seed + 1) in
    let demand =
      match file with
      | Some path -> (
          match Demand.load_csv space path with
          | Ok d -> d
          | Error e ->
              Fmt.epr "cannot load %s: %s@." path e;
              exit 1)
      | None -> (
          match gen with
          | `Uniform ->
              Demand.uniform space ~rng ~max:(0.5 *. Graph.max_capacity g)
          | `Gravity ->
              Demand.gravity space ~rng ~total:(0.5 *. Graph.total_capacity g)
          | `Bimodal ->
              Demand.bimodal space ~rng ~fraction_large:0.2
                ~small_max:(0.1 *. Graph.max_capacity g)
                ~large_max:(Graph.max_capacity g))
    in
    with_jobs jobs (fun pool ->
        let ev = Evaluate.with_pool ev pool in
        let opt = Evaluate.opt_value ev demand in
        Fmt.pr "demand total %.1f over %d pairs@." (Demand.total demand)
          (Demand.size space);
        Fmt.pr "OPT        : %.1f@." opt;
        match Evaluate.heuristic_value ev demand with
        | Some h ->
            Fmt.pr "heuristic  : %.1f@." h;
            Fmt.pr "gap        : %.1f  (gap/capacity %.4f)@." (opt -. h)
              ((opt -. h) /. Graph.total_capacity g)
        | None ->
            Fmt.pr "heuristic  : INFEASIBLE on this input (pinning overload)@.")
  in
  let term =
    Term.(
      const run $ topology_arg $ paths_arg $ heuristic_arg $ threshold_frac_arg
      $ parts_arg $ instances_arg $ seed_arg $ demand_gen_arg
      $ demands_file_arg $ jobs_arg $ lp_backend_arg)
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Evaluate OPT vs a heuristic on one demand matrix")
    term

(* ------------------------------------------------------------------ *)
(* find-gap                                                            *)
(* ------------------------------------------------------------------ *)

let method_arg =
  let doc =
    "Search method: whitebox, sweep, hillclimb, annealing, or portfolio \
     (race all of them against a shared incumbent store; combine with \
     --jobs)."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("whitebox", `Whitebox); ("sweep", `Sweep);
             ("hillclimb", `Hillclimb); ("annealing", `Annealing);
             ("portfolio", `Portfolio) ])
        `Whitebox
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let time_arg =
  let doc = "Time budget in seconds." in
  Arg.(value & opt float 30. & info [ "time" ] ~docv:"SECONDS" ~doc)

let no_milp_arg =
  let doc =
    "Skip the branch-and-bound phase of the white-box search (probe-only; \
     faster on large POP models, but no optimality bound)."
  in
  Arg.(value & flag & info [ "no-milp" ] ~doc)

let show_demands_arg =
  let doc = "Print the adversarial demand matrix." in
  Arg.(value & flag & info [ "show-demands" ] ~doc)

let out_arg =
  let doc = "Write the adversarial demand matrix to a CSV file." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Log solver progress (incumbents, nodes) to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let deadline_arg =
  let doc =
    "Hard wall-clock budget in seconds, enforced cooperatively inside the \
     solver (simplex pivots, branch-and-bound nodes). Unlike --time, which \
     shapes how the search spends its run, the deadline stops it: past it \
     the command fails with exit code 4 unless --degrade is given."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let degrade_arg =
  let doc =
    "With --deadline: accept a best-so-far answer (reported as degraded, \
     with its proven bound) instead of failing when the deadline trips."
  in
  Arg.(value & flag & info [ "degrade" ] ~doc)

let cuts_arg =
  let doc =
    "Enable the cutting-plane pipeline in the white-box MILP search: \
     Gomory mixed-integer and SOS1 disjunctive cuts in a shared \
     deduplicating pool, node-level bound tightening, and pseudo-cost \
     (reliability) branching. Off by default; \\$(b,REPRO_CUTS)=1/0 in \
     the environment forces the gate either way for every solver path \
     (including --family binpack)."
  in
  Arg.(value & flag & info [ "cuts" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let family_arg =
  let doc =
    "Heuristic family from the registry ('repro-metaopt families' lists \
     them). 'dp' and 'pop' alias the TE path (-H); 'binpack' runs the \
     vector bin-packing FFD-vs-OPT gap search (--items, --dims)."
  in
  Arg.(value & opt (some string) None & info [ "family" ] ~docv:"NAME" ~doc)

let items_arg =
  let doc = "Bin-packing items per instance (--family binpack)." in
  Arg.(value & opt int 6 & info [ "items" ] ~docv:"N" ~doc)

let dims_arg =
  let doc = "Bin-packing size dimensions (--family binpack)." in
  Arg.(value & opt int 1 & info [ "dims" ] ~docv:"D" ~doc)

(* the non-TE gap search: adversarial FFD-vs-OPT bin packing through the
   follower IR's white-box MILP (probes refine into the exact encoding) *)
let run_binpack ~items ~dims ~seed ~time ~no_milp ~verbose =
  setup_logs verbose;
  let cfg = Follower.Binpack.config ~items ~dims () in
  let options =
    {
      Follower.Binpack.default_options with
      run_milp = not no_milp;
      time_limit = time;
      seed;
    }
  in
  let r = Follower.Binpack.find_gap ~options cfg in
  Fmt.pr "family        : binpack (%d items, %d dims, capacity %g)@." items
    dims cfg.Follower.Binpack.capacity;
  Fmt.pr "max gap found : %d bins (FFD %d vs OPT %d)@." r.Follower.Binpack.gap
    r.Follower.Binpack.ffd_bins r.Follower.Binpack.opt_bins;
  (if Float.is_finite r.Follower.Binpack.bound then
     Fmt.pr "proven bound  : %.1f@." r.Follower.Binpack.bound
   else Fmt.pr "proven bound  : (none - probe-only mode)@.");
  Fmt.pr "winning probe : %s@." r.Follower.Binpack.probe;
  Fmt.pr
    "search        : %d oracle calls%s, %d MILP nodes, %.2fs@."
    r.Follower.Binpack.oracle_calls
    (if r.Follower.Binpack.oracle_closed then "" else " (some OPT unproven)")
    r.Follower.Binpack.milp_nodes r.Follower.Binpack.elapsed;
  if verbose then begin
    Fmt.pr "instance sizes:@.";
    let a = r.Follower.Binpack.instance in
    for i = 0 to items - 1 do
      Fmt.pr "  item %d:" i;
      for d = 0 to dims - 1 do
        Fmt.pr " %.4f" (Follower.Binpack.size cfg a ~item:i ~dim:d)
      done;
      Fmt.pr "@."
    done
  end;
  if r.Follower.Binpack.gap <= 0 then exit 2

let find_gap_cmd =
  let run g paths heuristic threshold_frac parts instances seed method_ time
      no_milp show_demands out verbose jobs lp_backend deadline_s degrade cuts
      family items dims =
    (match family with
    | None -> ()
    | Some "dp" | Some "pop" | Some "binpack" -> ()
    | Some other ->
        Families.ensure_registered ();
        Fmt.epr "find-gap: unknown family %S (known: %s)@." other
          (String.concat ", "
             (List.map
                (fun f -> f.Follower.Family.name)
                (Families.all ())));
        exit 1);
    if family = Some "binpack" then begin
      Backend.set_default lp_backend;
      run_binpack ~items ~dims ~seed ~time ~no_milp ~verbose
    end
    else begin
    let heuristic =
      match family with
      | Some "dp" -> Dp
      | Some "pop" -> Pop_h
      | _ -> heuristic
    in
    setup_logs verbose;
    Backend.set_default lp_backend;
    if degrade && deadline_s = None then begin
      Fmt.epr "find-gap: --degrade requires --deadline@.";
      exit 1
    end;
    let deadline =
      Option.map
        (fun wall -> Repro_resilience.Deadline.create ~wall ())
        deadline_s
    in
    (* with a deadline the search budget shrinks to it, so --time beyond
       the deadline doesn't just burn budget the solver will lose anyway *)
    let time =
      match deadline_s with Some d -> Float.min time d | None -> time
    in
    (* the deadline verdict: with --degrade a tripped budget is reported
       and accepted; without, it is a typed failure (exit 4) *)
    let finish_deadline () =
      match Option.bind deadline Repro_resilience.Deadline.tripped with
      | None -> ()
      | Some trip ->
          if degrade then
            Fmt.pr "degraded      : yes (deadline tripped: %s)@."
              (Repro_resilience.Deadline.trip_to_string trip)
          else begin
            Fmt.epr "find-gap: deadline exceeded (%s); best-so-far shown \
                     above — pass --degrade to accept it@."
              (Repro_resilience.Deadline.trip_to_string trip);
            exit 4
          end
    in
    let ev =
      make_evaluator g ~paths ~heuristic ~threshold_frac ~parts ~instances
        ~seed
    in
    let space = Pathset.space ev.Evaluate.pathset in
    let report ~gap ~normalized ~trace ~extra demands =
      Fmt.pr "max gap found : %.1f@." gap;
      Fmt.pr "gap/capacity  : %.4f@." normalized;
      extra ();
      Fmt.pr "progress trace:@.";
      List.iter (fun (t, v) -> Fmt.pr "  %7.2fs  %.1f@." t v) trace;
      if show_demands then begin
        Fmt.pr "adversarial demands:@.";
        Fmt.pr "%a@." (Demand.pp space) demands
      end;
      match out with
      | Some path ->
          Demand.save_csv space demands path;
          Fmt.pr "demands written to %s@." path
      | None -> ()
    in
    match method_ with
    | `Whitebox | `Sweep | `Portfolio ->
        let options =
          {
            Adversary.default_options with
            run_milp = not no_milp;
            jobs;
            search =
              (match method_ with
              | `Sweep -> Adversary.Binary_sweep { probes = 5; probe_time = time /. 6. }
              | `Portfolio ->
                  Adversary.Portfolio
                    {
                      Adversary.default_portfolio with
                      blackbox_time = time /. 2.;
                    }
              | _ -> Adversary.Direct);
            bb =
              {
                Branch_bound.default_options with
                time_limit = time;
                stall_time = Float.max 2. (time /. 4.);
                log_progress = verbose;
                deadline;
                cuts =
                  (if cuts then Relaxation.default_enabled
                   else Branch_bound.default_options.Branch_bound.cuts);
              };
          }
        in
        let r = Adversary.find ev ~options () in
        report ~gap:r.Adversary.gap ~normalized:r.Adversary.normalized_gap
          ~trace:r.Adversary.trace
          ~extra:(fun () ->
            (match r.Adversary.upper_bound with
            | Some ub -> Fmt.pr "proven bound  : %.1f@." ub
            | None -> Fmt.pr "proven bound  : (none - probe-only mode)@.");
            Fmt.pr
              "model         : %d vars, %d linear constraints, %d SOS1; %d \
               nodes, %d oracle calls@."
              r.Adversary.stats.Adversary.model_vars
              r.Adversary.stats.Adversary.model_constrs
              r.Adversary.stats.Adversary.model_sos1
              r.Adversary.stats.Adversary.nodes
              r.Adversary.stats.Adversary.oracle_calls;
            if verbose then begin
              Fmt.pr "lp engine     : %s backend, %a@."
                (Backend.kind_to_string lp_backend)
                Simplex.pp_stats r.Adversary.stats.Adversary.lp_stats;
              Fmt.pr "tree search   : %a@." Branch_bound.pp_tree_stats
                r.Adversary.stats.Adversary.tree
            end)
          r.Adversary.demands;
        finish_deadline ()
    | `Hillclimb | `Annealing ->
        let rng = Rng.create seed in
        let r =
          with_jobs jobs (fun pool ->
              let options =
                {
                  Blackbox.default_options with
                  time_limit = time;
                  pool;
                  batch = (match pool with None -> 1 | Some _ -> jobs);
                }
              in
              match method_ with
              | `Hillclimb -> Blackbox.hill_climb ev ~rng ~options ()
              | _ -> Blackbox.simulated_annealing ev ~rng ~options ())
        in
        report ~gap:r.Blackbox.gap ~normalized:r.Blackbox.normalized_gap
          ~trace:r.Blackbox.trace
          ~extra:(fun () ->
            Fmt.pr "evaluations   : %d (%d restarts)@." r.Blackbox.evaluations
              r.Blackbox.restarts)
          r.Blackbox.demands;
        finish_deadline ()
    end
  in
  let term =
    Term.(
      const run $ topology_arg $ paths_arg $ heuristic_arg $ threshold_frac_arg
      $ parts_arg $ instances_arg $ seed_arg $ method_arg $ time_arg
      $ no_milp_arg $ show_demands_arg $ out_arg $ verbose_arg $ jobs_arg
      $ lp_backend_arg $ deadline_arg $ degrade_arg $ cuts_arg $ family_arg
      $ items_arg $ dims_arg)
  in
  Cmd.v
    (Cmd.info "find-gap"
       ~doc:"Search for inputs maximizing the heuristic's optimality gap")
    term

(* ------------------------------------------------------------------ *)
(* families                                                            *)
(* ------------------------------------------------------------------ *)

let families_cmd =
  let run () =
    Families.ensure_registered ();
    List.iter
      (fun f ->
        Fmt.pr "%s - %s@." f.Follower.Family.name f.Follower.Family.doc;
        let s = f.Follower.Family.stats () in
        Fmt.pr
          "  encoding: %d vars, %d rows, %d SOS1 pairs, %d binaries@."
          s.Follower.Family.vars s.Follower.Family.rows s.Follower.Family.sos1
          s.Follower.Family.binaries;
        List.iter
          (fun (name, doc) -> Fmt.pr "  probe %-14s %s@." name doc)
          f.Follower.Family.probes)
      (Families.all ())
  in
  Cmd.v
    (Cmd.info "families"
       ~doc:
         "List the registered heuristic families with their probe sets and \
          reference encoding sizes (vars / rows / SOS1 / binaries)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

module Sweep = Repro_sweep.Scenario_sweep
module Sweep_plan = Repro_sweep.Plan

let sweep_cmd =
  let run g paths thresholds_frac scales num_seeds seed gen jobs chunk
      lp_backend rebuild batch_rhs basis_cache cache_mb out perturb_fraction
      perturb_level perturb_variants deadline_s degrade verbose =
    setup_logs verbose;
    Backend.set_default lp_backend;
    if degrade && deadline_s = None then begin
      Fmt.epr "sweep: --degrade requires --deadline@.";
      exit 1
    end;
    if num_seeds <= 0 then begin
      Fmt.epr "sweep: --num-seeds must be positive@.";
      exit 1
    end;
    let pathset = Pathset.compute (Demand.full_space g) ~k:paths in
    let space = Pathset.space pathset in
    let maxcap = Graph.max_capacity g in
    let thresholds =
      Array.of_list (List.map (fun f -> f *. maxcap) thresholds_frac)
    in
    let generator =
      match gen with
      | `Uniform -> Sweep_plan.Uniform { max = 0.5 *. maxcap }
      | `Gravity -> Sweep_plan.Gravity { total = 0.5 *. Graph.total_capacity g }
    in
    let perturbs =
      if perturb_fraction <= 0. then [| None |]
      else
        Array.init (Int.max 1 perturb_variants) (fun i ->
            Some
              {
                Sweep_plan.pseed = i;
                fraction = perturb_fraction;
                level = perturb_level;
              })
    in
    let plan =
      Sweep_plan.grid ~space ~generator ~thresholds
        ~scales:(Array.of_list scales)
        ~seeds:(Array.init num_seeds (fun i -> seed + i))
        ~perturbs ()
    in
    let cache =
      if cache_mb <= 0 then None
      else
        Some
          (Repro_serve.Solve_cache.create
             ~max_bytes:(cache_mb * 1024 * 1024)
             ())
    in
    let deadline =
      Option.map
        (fun wall -> Repro_resilience.Deadline.create ~wall ())
        deadline_s
    in
    let basis_store =
      match basis_cache with
      | None -> None
      | Some path ->
          let bs = Repro_serve.Basis_store.create () in
          (match Repro_serve.Basis_store.with_journal bs ~path with
          | Ok _ -> ()
          | Error e ->
              Fmt.epr "sweep: basis cache %s: %s@." path e;
              exit 1);
          Some bs
    in
    let options =
      {
        Sweep.jobs = Repro_engine.Jobs.clamp jobs;
        chunk;
        backend = Some lp_backend;
        mode = (if rebuild then Sweep.Rebuild else Sweep.Shared_basis);
        deadline;
        cache;
        jsonl = out;
        batch_rhs;
        basis_store;
      }
    in
    let r = Sweep.run ~options ~paths pathset plan in
    Option.iter Repro_serve.Basis_store.close basis_store;
    Fmt.pr "topology      : %s (%d pairs, %d paths/pair)@." (Graph.name g)
      (Pathset.num_pairs pathset) paths;
    Fmt.pr
      "scenarios     : %d total, %d completed (%d from cache), %d skipped \
       (%d chunks)@."
      (Sweep_plan.num_scenarios plan)
      r.Sweep.completed r.Sweep.from_cache r.Sweep.skipped r.Sweep.chunks;
    Fmt.pr "mode          : %s%s, %s backend, %d jobs@."
      (if rebuild then "rebuild-per-scenario" else "shared-basis")
      (if batch_rhs && not rebuild then " (batched RHS kernel)" else "")
      (Backend.kind_to_string lp_backend)
      (Repro_engine.Jobs.clamp jobs);
    Fmt.pr "wall          : %.2fs (%.1f scenarios/s)@." r.Sweep.wall_s
      (if r.Sweep.wall_s > 0. then
         float_of_int r.Sweep.completed /. r.Sweep.wall_s
       else 0.);
    if not rebuild then begin
      Fmt.pr "lp engine     : %a@." Simplex.pp_stats r.Sweep.lp_stats;
      if verbose then
        Fmt.pr "lp counters   : %s@."
          (Sweep.verbose_stats_line r.Sweep.lp_stats)
    end;
    let infeasible = ref 0 in
    let best = ref None in
    Array.iter
      (function
        | None -> ()
        | Some sr -> (
            match Sweep.gap sr with
            | None -> incr infeasible
            | Some gv -> (
                match !best with
                | Some (bg, _) when bg >= gv -> ()
                | _ -> best := Some (gv, sr))))
      r.Sweep.results;
    (match !best with
    | Some (gv, sr) ->
        Fmt.pr "max gap       : %.1f (gap/capacity %.4f) at %a@." gv
          (gv /. Graph.total_capacity g)
          Sweep_plan.pp_scenario sr.Sweep.scenario
    | None -> ());
    if !infeasible > 0 then
      Fmt.pr "infeasible    : %d scenario(s) overload their pinned paths@."
        !infeasible;
    (match cache with
    | Some c ->
        let cs = Repro_serve.Solve_cache.stats c in
        Fmt.pr "solve cache   : %d hits, %d misses, %d entries@."
          cs.Repro_serve.Solve_cache.hits cs.Repro_serve.Solve_cache.misses
          cs.Repro_serve.Solve_cache.entries
    | None -> ());
    (match basis_store with
    | Some bs ->
        let bst = Repro_serve.Basis_store.stats bs in
        Fmt.pr
          "basis cache   : %d warm installs, %d store lookups (%d hits), %d \
           snapshots stored@."
          r.Sweep.basis_warm_hits
          (bst.Repro_serve.Basis_store.warm_hits
          + bst.Repro_serve.Basis_store.warm_misses)
          bst.Repro_serve.Basis_store.warm_hits
          bst.Repro_serve.Basis_store.stores
    | None -> ());
    (match out with
    | Some path -> Fmt.pr "results written to %s (JSONL)@." path
    | None -> ());
    match r.Sweep.outcome with
    | `Complete -> ()
    | `Partial reason ->
        Fmt.pr "degraded      : partial sweep (%s); completed results above@."
          (Repro_resilience.Outcome.reason_to_string reason);
        if not degrade then exit 4
  in
  let thresholds_frac_arg =
    let doc =
      "Comma-separated DP pinning thresholds, as fractions of the maximum \
       link capacity; one sweep axis."
    in
    Arg.(
      value
      & opt (list float) [ 0.02; 0.05; 0.1 ]
      & info [ "thresholds-frac" ] ~docv:"F,F,..." ~doc)
  in
  let scales_arg =
    let doc = "Comma-separated demand-scale multipliers; one sweep axis." in
    Arg.(value & opt (list float) [ 1. ] & info [ "scales" ] ~docv:"S,S,..." ~doc)
  in
  let num_seeds_arg =
    let doc =
      "Demand seeds per grid point: seeds seed, seed+1, ..., seed+N-1."
    in
    Arg.(value & opt int 5 & info [ "num-seeds" ] ~docv:"N" ~doc)
  in
  let sweep_gen_arg =
    let doc = "Demand generator: uniform or gravity." in
    Arg.(
      value
      & opt (enum [ ("uniform", `Uniform); ("gravity", `Gravity) ]) `Gravity
      & info [ "demands" ] ~docv:"GEN" ~doc)
  in
  let chunk_arg =
    let doc =
      "Scenarios per work chunk. Fixed independently of --jobs, so results \
       are identical whatever the worker count."
    in
    Arg.(value & opt int 32 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let rebuild_arg =
    let doc =
      "Rebuild the model per scenario instead of specializing the shared \
       LP skeleton (the slow baseline; for comparison)."
    in
    Arg.(value & flag & info [ "rebuild" ] ~doc)
  in
  let batch_rhs_arg =
    let doc =
      "Answer each chunk's OPT solves with one batched multi-RHS ftran \
       kernel call instead of a scalar re-solve per scenario. Cacheless \
       output is bitwise identical either way."
    in
    Arg.(value & flag & info [ "batch-rhs" ] ~doc)
  in
  let basis_cache_arg =
    let doc =
      "Persist final LP bases to this journal file and warm-start from it: \
       repeated or adjacent sweeps over the same topology skip the \
       from-scratch factorization (the serve daemon reads the same store \
       for its cold queries)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "basis-cache" ] ~docv:"FILE" ~doc)
  in
  let cache_mb_arg =
    let doc =
      "Attach an in-memory content-addressed solve cache of this many MiB \
       (0 = none). Repeated demands — e.g. one matrix probed under many \
       thresholds — then cost one OPT solve."
    in
    Arg.(value & opt int 0 & info [ "cache-mb" ] ~docv:"MIB" ~doc)
  in
  let out_arg =
    let doc =
      "Stream per-scenario results to this JSONL file, flushed chunk by \
       chunk (a killed sweep still leaves finished chunks on disk)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let perturb_fraction_arg =
    let doc =
      "Perturb each scenario's demand: rewrite this fraction of pairs to \
       a volume tied to the pinning threshold (0 = off)."
    in
    Arg.(value & opt float 0. & info [ "perturb-fraction" ] ~docv:"F" ~doc)
  in
  let perturb_level_arg =
    let doc =
      "Perturbed pairs get volume LEVEL * threshold (<= 1 lands at or \
       below the pinning threshold: adversarial pressure on pinned paths)."
    in
    Arg.(value & opt float 1. & info [ "perturb-level" ] ~docv:"LEVEL" ~doc)
  in
  let perturb_variants_arg =
    let doc = "Independent perturbation draws per grid point; one sweep axis." in
    Arg.(value & opt int 1 & info [ "perturb-variants" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Wall-clock budget in seconds for the whole sweep. Past it, remaining \
       scenarios are skipped and the sweep reports a partial result (exit \
       code 4 unless --degrade)."
    in
    Arg.(
      value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let degrade_arg =
    let doc = "With --deadline: accept a partial sweep instead of failing." in
    Arg.(value & flag & info [ "degrade" ] ~doc)
  in
  let term =
    Term.(
      const run $ topology_arg $ paths_arg $ thresholds_frac_arg $ scales_arg
      $ num_seeds_arg $ seed_arg $ sweep_gen_arg $ jobs_arg $ chunk_arg
      $ lp_backend_arg $ rebuild_arg $ batch_rhs_arg $ basis_cache_arg
      $ cache_mb_arg $ out_arg $ perturb_fraction_arg $ perturb_level_arg
      $ perturb_variants_arg $ deadline_arg $ degrade_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Evaluate a grid of scenarios (thresholds x scales x seeds) against \
          one topology in a single batched run, re-solving a shared LP by \
          right-hand-side edits only")
    term

(* ------------------------------------------------------------------ *)
(* find-capacity-gap                                                   *)
(* ------------------------------------------------------------------ *)

let find_capacity_gap_cmd =
  let run g paths threshold_frac seed gen file slack =
    let pathset = Pathset.compute (Demand.full_space g) ~k:paths in
    let space = Pathset.space pathset in
    let rng = Rng.create (seed + 1) in
    let demand =
      match file with
      | Some path -> (
          match Demand.load_csv space path with
          | Ok d -> d
          | Error e ->
              Fmt.epr "cannot load %s: %s@." path e;
              exit 1)
      | None -> (
          match gen with
          | `Uniform ->
              Demand.uniform space ~rng ~max:(0.5 *. Graph.max_capacity g)
          | `Gravity ->
              Demand.gravity space ~rng ~total:(0.5 *. Graph.total_capacity g)
          | `Bimodal ->
              Demand.bimodal space ~rng ~fraction_large:0.2
                ~small_max:(0.1 *. Graph.max_capacity g)
                ~large_max:(Graph.max_capacity g))
    in
    let ne = Graph.num_edges g in
    let cap_lower =
      Array.init ne (fun e -> (1. -. slack) *. Graph.capacity g e)
    in
    let cap_upper =
      Array.init ne (fun e -> (1. +. slack) *. Graph.capacity g e)
    in
    let threshold = threshold_frac *. Graph.max_capacity g in
    let r =
      Capacity_adversary.find_dp pathset ~demand ~threshold ~cap_lower
        ~cap_upper ()
    in
    Fmt.pr
      "worst capacity assignment within +-%.0f%% of nominal (demands fixed):@."
      (100. *. slack);
    Fmt.pr "max gap found : %.1f (gap/sum-upper-caps %.4f)@."
      r.Capacity_adversary.gap r.Capacity_adversary.normalized_gap;
    (match r.Capacity_adversary.upper_bound with
    | Some ub -> Fmt.pr "proven bound  : %.1f@." ub
    | None -> ());
    Fmt.pr "edges moved away from nominal:@.";
    Array.iteri
      (fun e c ->
        let nominal = Graph.capacity g e in
        if Float.abs (c -. nominal) > 1e-6 then
          Fmt.pr "  edge %2d (%d->%d): %.1f -> %.1f@." e (Graph.edge_src g e)
            (Graph.edge_dst g e) nominal c)
      r.Capacity_adversary.capacities
  in
  let slack_arg =
    let doc = "Allowed relative capacity deviation per link." in
    Arg.(value & opt float 0.3 & info [ "slack" ] ~docv:"FRACTION" ~doc)
  in
  let term =
    Term.(
      const run $ topology_arg $ paths_arg $ threshold_frac_arg $ seed_arg
      $ demand_gen_arg $ demands_file_arg $ slack_arg)
  in
  Cmd.v
    (Cmd.info "find-capacity-gap"
       ~doc:
         "Search for topology (capacity) changes maximizing DP's optimality \
          gap at fixed demands")
    term

(* ------------------------------------------------------------------ *)
(* solve-lp                                                            *)
(* ------------------------------------------------------------------ *)

let solve_lp_cmd =
  let run file lp_backend verbose roundtrip jobs deadline_s degrade =
    setup_logs verbose;
    Backend.set_default lp_backend;
    if degrade && deadline_s = None then begin
      Fmt.epr "solve-lp: --degrade requires --deadline@.";
      exit 1
    end;
    let deadline =
      Option.map
        (fun wall -> Repro_resilience.Deadline.create ~wall ())
        deadline_s
    in
    match Lp_file.of_file file with
    | Error e ->
        Fmt.epr "%s: parse error: %s@." file e;
        exit 1
    | Ok model ->
        Fmt.pr "%s: %a@." file Model.pp_stats model;
        if roundtrip then begin
          (* re-emit the parsed model and parse that: the writer and
             parser must agree on their shared dialect *)
          match Lp_file.of_string (Lp_file.to_string model) with
          | Error e ->
              Fmt.epr "round-trip re-parse failed: %s@." e;
              exit 1
          | Ok again ->
              if
                Model.num_vars again <> Model.num_vars model
                || Model.num_constrs again <> Model.num_constrs model
                || Model.num_sos1 again <> Model.num_sos1 model
              then begin
                Fmt.epr "round-trip changed the model shape@.";
                exit 1
              end;
              Fmt.pr "round-trip    : ok@."
        end;
        if Model.is_mip model then begin
          let options =
            { Branch_bound.default_options with jobs = Repro_engine.Jobs.clamp jobs }
          in
          let print_result r =
            Fmt.pr "outcome       : %a@." Branch_bound.pp_outcome
              r.Branch_bound.outcome;
            Fmt.pr "objective     : %.9g@." r.Branch_bound.objective;
            Fmt.pr "best bound    : %.9g@." r.Branch_bound.best_bound;
            Fmt.pr "nodes         : %d@." r.Branch_bound.nodes;
            Fmt.pr "lp engine     : %s backend, %a@."
              (Backend.kind_to_string lp_backend)
              Simplex.pp_stats r.Branch_bound.lp_stats;
            if verbose then
              Fmt.pr "tree search   : %a@." Branch_bound.pp_tree_stats
                r.Branch_bound.tree
          in
          match deadline with
          | None -> (
              (* the pre-resilience path, bit-identical without --deadline *)
              let r = Solver.solve ~options model in
              print_result r;
              match r.Branch_bound.outcome with
              | Branch_bound.Optimal | Branch_bound.Feasible -> ()
              | _ -> exit 2)
          | Some _ -> (
              let module O = Repro_resilience.Outcome in
              match Solver.solve_bounded ~options ?deadline model with
              | O.Complete r ->
                  print_result r;
                  Fmt.pr "resilience    : complete@.";
                  (match r.Branch_bound.outcome with
                  | Branch_bound.Optimal | Branch_bound.Feasible -> ()
                  | _ -> exit 2)
              | O.Feasible_bound { result; incumbent; proven_bound; reason } ->
                  print_result result;
                  Fmt.pr
                    "resilience    : feasible-bound (%s): incumbent %.9g, \
                     proven bound %.9g@."
                    (O.reason_to_string reason) incumbent proven_bound;
                  if not degrade then begin
                    Fmt.epr
                      "solve-lp: deadline exceeded; pass --degrade to accept \
                       the bound above@.";
                    exit 4
                  end
              | O.Degraded { result; reason } ->
                  Option.iter print_result result;
                  Fmt.pr "resilience    : degraded (%s): no incumbent@."
                    (O.reason_to_string reason);
                  exit (if degrade then 2 else 4)
              | O.Failed err ->
                  Fmt.epr "solve-lp: %s@." (O.error_to_string err);
                  exit 1)
        end
        else begin
          let r = Solver.solve_lp ?deadline model in
          Fmt.pr "status        : %a@." Simplex.pp_status r.Solver.status;
          Fmt.pr "objective     : %.9g@." r.Solver.objective;
          Fmt.pr "lp engine     : %s backend, %a@."
            (Backend.kind_to_string lp_backend)
            Simplex.pp_stats r.Solver.stats;
          if verbose then
            Array.iteri
              (fun v x ->
                if Float.abs x > 1e-9 then
                  Fmt.pr "  %s = %.9g@." (Model.var_name model v) x)
              r.Solver.primal;
          match
            (r.Solver.status,
             Option.bind deadline Repro_resilience.Deadline.tripped)
          with
          | Simplex.Optimal, _ -> ()
          | Simplex.Iteration_limit, Some trip ->
              Fmt.pr "resilience    : degraded (deadline: %s): objective is \
                      a bound in progress@."
                (Repro_resilience.Deadline.trip_to_string trip);
              if not degrade then begin
                Fmt.epr
                  "solve-lp: deadline exceeded; pass --degrade to accept@.";
                exit 4
              end
          | _ -> exit 2
        end
  in
  let file_arg =
    let doc = "LP-format file to solve (the dialect Lp_file writes)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let roundtrip_arg =
    let doc = "Also re-emit and re-parse the model as a self-check." in
    Arg.(value & flag & info [ "roundtrip" ] ~doc)
  in
  let term =
    Term.(
      const run $ file_arg $ lp_backend_arg $ verbose_arg $ roundtrip_arg
      $ jobs_arg $ deadline_arg $ degrade_arg)
  in
  Cmd.v
    (Cmd.info "solve-lp"
       ~doc:"Parse an LP-format file and solve it with the built-in engine")
    term

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

module Serve = Repro_serve

let socket_arg =
  let doc = "Unix domain socket path of the gap-query daemon." in
  Arg.(
    value
    & opt string "/tmp/repro-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let parse_addrs what specs =
  List.map
    (fun s ->
      match Serve.Protocol.addr_of_string s with
      | Ok a -> a
      | Error e ->
          Fmt.epr "repro-serve: bad %s address %S: %s@." what s e;
          exit 1)
    specs

let serve_cmd =
  let run socket tcp peers jobs cache_mb cache_dir persist queue_limit
      batch_max heartbeat_timeout verbose =
    setup_logs verbose;
    let cache_dir =
      match (cache_dir, persist) with
      | (Some _ as d), _ -> d
      | None, true -> Some (Serve.Daemon.default_cache_dir ())
      | None, false -> None
    in
    let config =
      {
        (Serve.Daemon.default_config ~socket_path:socket) with
        Serve.Daemon.tcp_port = tcp;
        peers = parse_addrs "peer" peers;
        jobs;
        cache_mb;
        cache_dir;
        queue_limit;
        batch_max;
        heartbeat_timeout;
      }
    in
    match Serve.Daemon.start config with
    | Error e ->
        Fmt.epr "repro-serve: %s@." e;
        exit 1
    | Ok h ->
        Fmt.pr "repro-serve: listening on %s%s (jobs %d, cache %d MiB%s%s)@."
          socket
          (match Serve.Daemon.tcp_port h with
          | Some p -> Printf.sprintf " + tcp 127.0.0.1:%d" p
          | None -> "")
          jobs cache_mb
          (match cache_dir with
          | Some d -> ", journal in " ^ d
          | None -> ", in-memory only")
          (match peers with
          | [] -> ""
          | l -> ", replicating " ^ String.concat "," l);
        Serve.Daemon.wait h
  in
  let cache_mb_arg =
    let doc = "Result-cache budget in MiB." in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MIB" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Persist the solve cache as an append-only journal in this directory \
       (replayed on startup)."
    in
    Arg.(
      value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let persist_arg =
    let doc =
      "Persist the solve cache in the default directory \
       (\\$XDG_CACHE_HOME/repro-serve or ~/.cache/repro-serve)."
    in
    Arg.(value & flag & info [ "persist" ] ~doc)
  in
  let queue_limit_arg =
    let doc = "Reject requests with 'overloaded' beyond this queue depth." in
    Arg.(value & opt int 256 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let batch_max_arg =
    let doc = "Max compatible solves admitted as one parallel batch." in
    Arg.(value & opt int 16 & info [ "batch-max" ] ~docv:"N" ~doc)
  in
  let watchdog_arg =
    let doc =
      "Supervise engine-pool workers: a solve silent for this many seconds \
       is failed with a typed error and its domain replaced. Pick a value \
       comfortably above the longest legitimate solve."
    in
    Arg.(
      value & opt (some float) None & info [ "watchdog" ] ~docv:"SECONDS" ~doc)
  in
  let tcp_arg =
    let doc =
      "Additionally listen on 127.0.0.1:PORT with CRC-checked binary \
       framing (0 picks an ephemeral port, printed on the ready line). \
       Required for cluster mode: the router and peer replication speak \
       TCP."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let peers_arg =
    let doc =
      "Comma-separated peer shard addresses (HOST:PORT or socket paths) \
       whose solve/basis journals this daemon tails: their cached work \
       streams into this daemon's caches, so a fresh replacement warms \
       from survivors."
    in
    Arg.(value & opt (list string) [] & info [ "peers" ] ~docv:"ADDR,.." ~doc)
  in
  let term =
    Term.(
      const run $ socket_arg $ tcp_arg $ peers_arg $ jobs_arg $ cache_mb_arg
      $ cache_dir_arg $ persist_arg $ queue_limit_arg $ batch_max_arg
      $ watchdog_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the gap-query daemon: a Unix-socket (and optionally TCP) \
          service with a content-addressed solve cache, request batching \
          and peer journal replication")
    term

let router_cmd =
  let run listen shards vnodes deadline miss_limit heartbeat verbose =
    setup_logs verbose;
    let listen =
      match Serve.Protocol.addr_of_string listen with
      | Ok a -> a
      | Error e ->
          Fmt.epr "repro-router: bad listen address %S: %s@." listen e;
          exit 1
    in
    (match shards with
    | [] ->
        Fmt.epr "repro-router: --shards must name at least one shard@.";
        exit 1
    | _ -> ());
    let router =
      Serve.Router.create ~vnodes ~miss_limit ~heartbeat_interval:heartbeat
        ?deadline
        (parse_addrs "shard" shards)
    in
    match Serve.Router.serve_start router ~listen with
    | Error e ->
        Fmt.epr "repro-router: %s@." e;
        exit 1
    | Ok server ->
        Fmt.pr "repro-router: listening on %s%s, %d shards (%s)@."
          (Serve.Protocol.addr_to_string listen)
          (match (listen, Serve.Router.server_port server) with
          | Serve.Protocol.Tcp { port = 0; _ }, Some p ->
              Printf.sprintf " (port %d)" p
          | _ -> "")
          (List.length shards)
          (String.concat "," shards);
        Serve.Router.serve_wait server
  in
  let listen_arg =
    let doc =
      "Address to listen on: HOST:PORT / :PORT (CRC framing) or a Unix \
       socket path (plain framing)."
    in
    Arg.(
      value
      & opt string "127.0.0.1:7100"
      & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let shards_arg =
    let doc =
      "Comma-separated shard addresses forming the consistent-hash ring."
    in
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "shards" ] ~docv:"ADDR,.." ~doc)
  in
  let vnodes_arg =
    let doc = "Virtual nodes per shard on the hash ring." in
    Arg.(value & opt int 64 & info [ "vnodes" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-request failover budget in seconds (0 = none): past it the \
       client gets 'unavailable' instead of another failover attempt."
    in
    Arg.(
      value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let miss_limit_arg =
    let doc = "Mark a shard dead after this many consecutive missed probes." in
    Arg.(value & opt int 2 & info [ "miss-limit" ] ~docv:"N" ~doc)
  in
  let heartbeat_arg =
    let doc = "Failure-detector probe period, seconds." in
    Arg.(value & opt float 0.5 & info [ "heartbeat" ] ~docv:"SECONDS" ~doc)
  in
  let term =
    Term.(
      const run $ listen_arg $ shards_arg $ vnodes_arg $ deadline_arg
      $ miss_limit_arg $ heartbeat_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Run the shard router: consistent-hashes each query's routing key \
          over the shard ring, sheds per-shard load through circuit \
          breakers, and fails requests over to the next live shard when \
          one dies")
    term

let client_cmd =
  let run socket addr op g paths heuristic threshold_frac parts instances seed
      gen file method_ time deadline degrade retries =
    let heuristic =
      match heuristic with
      | Dp -> Serve.Protocol.Dp { threshold_frac }
      | Pop_h -> Serve.Protocol.Pop { parts; instances; seed }
    in
    let instance =
      { Serve.Protocol.topology = Graph.name g; paths; heuristic }
    in
    let demand () =
      match file with
      | Some path ->
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let csv = really_input_string ic len in
          close_in ic;
          Serve.Protocol.Csv csv
      | None -> Serve.Protocol.Gen { gen; seed = seed + 1 }
    in
    let req =
      match op with
      | `Ping -> Serve.Protocol.Ping
      | `Stats -> Serve.Protocol.Stats
      | `Shutdown -> Serve.Protocol.Shutdown
      | `Evaluate ->
          Serve.Protocol.Evaluate { instance; demand = demand (); deadline }
      | `Find_gap ->
          let method_ =
            match method_ with
            | `Whitebox -> Serve.Protocol.Whitebox
            | `Sweep -> Serve.Protocol.Sweep
            | `Hillclimb -> Serve.Protocol.Hillclimb
            | `Annealing -> Serve.Protocol.Annealing
            | `Portfolio -> Serve.Protocol.Portfolio
          in
          Serve.Protocol.Find_gap
            { instance; method_; time; seed; deadline; degrade }
    in
    let fail e =
      Fmt.epr "repro-metaopt client: %s@." (Serve.Client.error_to_string e);
      exit (Serve.Client.exit_code e)
    in
    let policy = { Repro_resilience.Retry.default_policy with retries } in
    let conn =
      match addr with
      | None -> Serve.Client.connect_retry ~policy ~seed socket
      | Some spec -> (
          match Serve.Protocol.addr_of_string spec with
          | Ok a -> Serve.Client.connect_addr_retry ~policy ~seed a
          | Error e ->
              Fmt.epr "repro-metaopt client: bad address %S: %s@." spec e;
              exit 1)
    in
    match conn with
    | Error e -> fail e
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match
              Serve.Client.request_typed c (Serve.Protocol.request_to_json req)
            with
            | Error e -> fail e
            | Ok response -> (
                print_endline (Serve.Json.to_string_pretty response);
                (* the full reply is already printed; the exit code only
                   classifies it for scripts *)
                match Serve.Json.obj_bool "ok" response with
                | Some true -> ()
                | Some false ->
                    let code =
                      Option.value ~default:"internal"
                        (Option.bind
                           (Serve.Json.member "error" response)
                           (Serve.Json.obj_str "code"))
                    in
                    exit
                      (Serve.Client.exit_code
                         (Serve.Client.App_error { code; message = "" }))
                | None ->
                    exit
                      (Serve.Client.exit_code
                         (Serve.Client.Malformed_reply "no \"ok\" member"))))
  in
  let op_arg =
    let doc = "Operation: ping, stats, evaluate, find-gap or shutdown." in
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("ping", `Ping); ("stats", `Stats); ("evaluate", `Evaluate);
                  ("find-gap", `Find_gap); ("shutdown", `Shutdown) ]))
          None
      & info [] ~docv:"OP" ~doc)
  in
  let deadline_arg =
    let doc =
      "Give the daemon at most this many seconds to answer; past it the \
       reply is the typed error 'deadline-exceeded' (exit code 4)."
    in
    Arg.(
      value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let degrade_arg =
    let doc =
      "With --deadline on find-gap: ask for a budget-bounded best-so-far \
       answer (marked \"degraded\":true) instead of a deadline-exceeded \
       error."
    in
    Arg.(value & flag & info [ "degrade" ] ~doc)
  in
  let retries_arg =
    let doc =
      "Retry a refused connection this many times with jittered exponential \
       backoff (daemon still starting or restarting)."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let addr_arg =
    let doc =
      "Connect to this address instead of --socket: HOST:PORT / :PORT (a \
       TCP shard or the router, CRC framing) or a Unix socket path. \
       --router is an alias: point it at a running 'router' process to \
       have queries consistent-hashed across the shard ring."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "addr"; "router" ] ~docv:"ADDR" ~doc)
  in
  let term =
    Term.(
      const run $ socket_arg $ addr_arg $ op_arg $ topology_arg $ paths_arg
      $ heuristic_arg $ threshold_frac_arg $ parts_arg $ instances_arg
      $ seed_arg $ demand_gen_arg $ demands_file_arg $ method_arg $ time_arg
      $ deadline_arg $ degrade_arg $ retries_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Query a running gap-query daemon (Unix socket by default, or a \
          TCP shard / router via --addr). Exit codes: 0 success, 1 \
          transport error, 2 application error, 3 connection refused, 4 \
          deadline exceeded, 5 malformed reply.")
    term

let () =
  (* chaos runs arm fault points for any subcommand via REPRO_FAULTS *)
  Repro_resilience.Faults.arm_from_env ();
  let info =
    Cmd.info "repro-metaopt" ~version:"1.0.0"
      ~doc:
        "Find adversarial inputs for TE heuristics (HotNets '22 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ topology_cmd; evaluate_cmd; find_gap_cmd; families_cmd; sweep_cmd;
            find_capacity_gap_cmd; solve_lp_cmd; serve_cmd; router_cmd;
            client_cmd ]))
