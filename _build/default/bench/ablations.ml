(* Ablation benches for the design choices DESIGN.md calls out:

   1. structure-aware probing vs pure MILP search (the substitute for
      Gurobi's built-in primal heuristics);
   2. quantized demand grids (paper section 5, "Scaling"): effect on node
      counts and on the optimum;
   3. merged-OPT rewrite vs the naive double-KKT encoding: root-LP
      latency in addition to the Fig 6 size comparison. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let run_probing () =
  Common.subsection "ablation 1: probing on/off (B4, DP metaopt, same budget)";
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:2 in
  let ev =
    Evaluate.make_dp pathset ~threshold:(Common.threshold_of g ~fraction:0.05)
  in
  let base = Common.dp_whitebox_options () in
  List.iter
    (fun (name, probe_budget) ->
      let r =
        Adversary.find ev
          ~options:{ base with Adversary.probe_budget }
          ()
      in
      Common.row "  %-28s gap %8.1f (gap/cap %.3f) in %.1fs, %d nodes" name
        r.Adversary.gap r.Adversary.normalized_gap
        r.Adversary.stats.Adversary.elapsed r.Adversary.stats.Adversary.nodes)
    [ ("MILP only (no probes)", 0); ("probes + MILP (default)", 600) ];
  Common.row
    "  (without domain probes the MILP relaxation never proposes pinning-\n\
    \   sensitive demands within budget - the role Gurobi's own primal\n\
    \   heuristics play in the paper's setup)"

let run_quantize () =
  Common.subsection
    "ablation 2: quantized demand grid (fig1, exact solves to optimality)";
  let g = Topologies.fig1 () in
  let pathset = Common.pathset_of g ~paths:2 in
  let solve quantize =
    let gp =
      Gap_problem.build pathset
        ~heuristic:(Gap_problem.Dp { threshold = 50. })
        ?quantize ()
    in
    time (fun () ->
        Branch_bound.solve
          ~options:
            {
              Branch_bound.default_options with
              time_limit = 120.;
              stall_time = 120.;
            }
          gp.Gap_problem.model)
  in
  List.iter
    (fun (name, quantize) ->
      let r, t = solve quantize in
      Common.row "  %-22s optimum %6.1f, %5d nodes, %6.2fs (%s)" name
        r.Branch_bound.objective r.Branch_bound.nodes t
        (Fmt.str "%a" Branch_bound.pp_result r))
    [
      ("continuous", None);
      ("grid = threshold", Some 50.);
      ("grid = threshold/2", Some 25.);
    ];
  Common.row
    "  (the paper's section 5 observation: worst gaps sit at extremum\n\
    \   points, so coarse grids barely dent the optimum)"

let run_naive_rewrite () =
  Common.subsection
    "ablation 3: merged-OPT vs naive double-KKT rewrite (B4 DP, root LP)";
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:2 in
  let threshold = Common.threshold_of g ~fraction:0.05 in
  (* merged (the implementation's default) *)
  let gp = Gap_problem.build pathset ~heuristic:(Gap_problem.Dp { threshold }) () in
  let _, t_merged = time (fun () -> Solver.solve_lp gp.Gap_problem.model) in
  let v, c, s = Gap_problem.size gp in
  Common.row "  %-28s %5d vars %5d rows %5d sos1, root LP %6.2fs" "merged OPT (ours)" v c s
    t_merged;
  (* naive: rebuild with OPT KKT-rewritten as well *)
  let demand_ub = Graph.max_capacity g in
  let naive = Model.create ~name:"naive" () in
  let dvars =
    Array.init (Pathset.num_pairs pathset) (fun _ ->
        Model.add_var ~ub:demand_ub naive)
  in
  let flows = Flow_rows.make pathset ~only:(fun _ -> true) in
  let opt_inner =
    Inner_problem.create ~name:"opt_kkt" ~num_vars:(Flow_rows.num_vars flows)
      ~objective:(Flow_rows.objective flows)
      (Flow_rows.demand_rows flows ~demand_vars:dvars
      @ Flow_rows.capacity_rows flows)
  in
  let opt_kkt = Kkt.emit naive opt_inner in
  let heur =
    Dp_encoding.encode naive pathset ~demand_vars:dvars ~threshold ~demand_ub ()
  in
  Model.set_objective naive Model.Maximize
    (Linexpr.sub opt_kkt.Kkt.value heur.Dp_encoding.value);
  let _, t_naive = time (fun () -> Solver.solve_lp naive) in
  Common.row "  %-28s %5d vars %5d rows %5d sos1, root LP %6.2fs"
    "naive (OPT also KKT'd)" (Model.num_vars naive) (Model.num_constrs naive)
    (Model.num_sos1 naive) t_naive;
  Common.row "  root-LP slowdown from the pointless extra KKT block: %.1fx"
    (t_naive /. Float.max 1e-9 t_merged)

let run () =
  Common.section "Ablations (DESIGN.md section 5 design choices)";
  run_probing ();
  run_quantize ();
  run_naive_rewrite ()
