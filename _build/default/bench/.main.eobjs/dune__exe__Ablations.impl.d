bench/ablations.ml: Adversary Array Branch_bound Common Dp_encoding Evaluate Float Flow_rows Fmt Gap_problem Graph Inner_problem Kkt Linexpr List Model Pathset Solver Topologies Unix
