bench/main.ml: Ablations Array Common Fig1 Fig2 Fig3 Fig4 Fig5 Fig6 List Micro Printf String Sys Unix
