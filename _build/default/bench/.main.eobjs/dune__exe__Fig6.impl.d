bench/fig6.ml: Branch_bound Common Demand Demand_pinning Float Fmt Gap_problem Graph List Opt_max_flow Pathset Pop Printf Rng Solver Topologies Unix
