bench/micro.ml: Analyze Bechamel Benchmark Common Demand Demand_pinning Float Gap_problem Hashtbl Instance List Measure Opt_max_flow Option Pathset Pop Printf Rng Staged Test Time Toolkit Topologies
