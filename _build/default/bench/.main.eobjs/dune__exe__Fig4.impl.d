bench/fig4.ml: Adversary Common Evaluate List Printf String Topologies
