bench/fig3.ml: Adversary Blackbox Common Evaluate Float Rng Topologies
