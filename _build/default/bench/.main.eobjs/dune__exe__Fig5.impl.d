bench/fig5.ml: Adversary Common Evaluate Float Graph List Opt_max_flow Pathset Pop Rng Topologies
