bench/fig2.ml: Array Branch_bound Common Inner_problem Kkt Model Option Solver
