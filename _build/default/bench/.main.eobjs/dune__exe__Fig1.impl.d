bench/fig1.ml: Adversary Array Common Demand Demand_pinning Evaluate Float Opt_max_flow Option Pathset Printf Topologies
