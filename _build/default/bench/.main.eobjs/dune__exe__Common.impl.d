bench/common.ml: Adversary Blackbox Branch_bound Demand Graph List Pathset Printf Sys
