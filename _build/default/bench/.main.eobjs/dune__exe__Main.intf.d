bench/main.mli:
