(* Figure 2: the KKT rewrite worked example.

   The paper's example is a quadratic program (minimize the diameter of a
   rectangle with perimeter >= P); our follower class is linear (the TE
   followers are LPs), so we demonstrate the same encode/optimize/solve
   pipeline on the LP analog: maximize the rectangle's half-perimeter
   subject to w <= P/4 and l <= P/4. The KKT system alone (no objective)
   pins w = l = P/4 — the follower's optimum — exactly as the paper's
   figure shows the feasibility system recovering w = l = P/4. *)

let run () =
  Common.section "Figure 2: KKT rewrite worked example (LP analog)";
  let p_value = 8. in
  let model = Model.create ~name:"fig2" () in
  let p = Model.add_var ~name:"P" ~lb:p_value ~ub:p_value model in
  let inner =
    Inner_problem.create ~name:"rect" ~num_vars:2
      ~objective:[ (0, 1.); (1, 1.) ]
      [
        {
          Inner_problem.row_name = "w_cap";
          inner_terms = [ (0, 1.) ];
          outer_terms = [ (p, -0.25) ];
          sense = Inner_problem.Le;
          rhs = 0.;
        };
        {
          Inner_problem.row_name = "l_cap";
          inner_terms = [ (1, 1.) ];
          outer_terms = [ (p, -0.25) ];
          sense = Inner_problem.Le;
          rhs = 0.;
        };
      ]
  in
  let before_vars = Model.num_vars model
  and before_rows = Model.num_constrs model in
  let emitted = Kkt.emit model inner in
  Common.row "encode:   follower 'max w + l s.t. w <= P/4, l <= P/4' (P = %g)" p_value;
  Common.row "KKT adds: %d variables, %d constraints, %d complementarity (SOS1) pairs"
    (Model.num_vars model - before_vars)
    (Model.num_constrs model - before_rows)
    emitted.Kkt.num_complementarity;
  (* the host adversarially pulls the follower value DOWN; KKT resists *)
  Model.set_objective model Model.Minimize emitted.Kkt.value;
  let r = Solver.solve model in
  let x = Option.get r.Branch_bound.primal in
  Common.row "solve:    w = %g, l = %g   (expected P/4 = %g each)"
    x.(emitted.Kkt.x.(0)) x.(emitted.Kkt.x.(1)) (p_value /. 4.);
  Common.row "          follower value pinned at %g even under a hostile host objective"
    r.Branch_bound.objective;
  Common.row
    "(paper's example is quadratic; the substitution to an LP follower is\n\
    \ recorded in DESIGN.md - the rewrite pipeline is identical)"
