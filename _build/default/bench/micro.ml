(* Bechamel microbenchmarks: one Test.make per figure family, measuring
   the building blocks whose costs the figures aggregate. *)

open Bechamel
open Toolkit

let b4_fixture () =
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:2 in
  let rng = Rng.create 2024 in
  let demand = Demand.uniform (Pathset.space pathset) ~rng ~max:500. in
  (g, pathset, demand)

let tests () =
  let g, pathset, demand = b4_fixture () in
  let threshold = Common.threshold_of g ~fraction:0.05 in
  let rng = Rng.create 31337 in
  let partition =
    Pop.random_partition ~rng ~num_pairs:(Pathset.num_pairs pathset) ~parts:2
  in
  let partitions = [ partition ] in
  (* fig 1 / fig 3-5 primitive: the solves every search iterates *)
  let opt_solve =
    Test.make ~name:"opt_max_flow(b4)"
      (Staged.stage (fun () -> ignore (Opt_max_flow.solve pathset demand)))
  in
  let dp_solve =
    Test.make ~name:"demand_pinning(b4)"
      (Staged.stage (fun () ->
           ignore (Demand_pinning.solve pathset ~threshold demand)))
  in
  let pop_solve =
    Test.make ~name:"pop_2parts(b4)"
      (Staged.stage (fun () ->
           ignore (Pop.solve pathset ~parts:2 partition demand)))
  in
  (* fig 2 / fig 6 primitive: assembling the metaopt MILP *)
  let build_dp_metaopt =
    Test.make ~name:"gap_model_build_dp(b4)"
      (Staged.stage (fun () ->
           ignore
             (Gap_problem.build pathset
                ~heuristic:(Gap_problem.Dp { threshold })
                ())))
  in
  let build_pop_metaopt =
    Test.make ~name:"gap_model_build_pop(b4)"
      (Staged.stage (fun () ->
           ignore
             (Gap_problem.build pathset
                ~heuristic:
                  (Gap_problem.Pop
                     { parts = 2; partitions; reduce = `Average })
                ())))
  in
  (* fig 4b primitive: path-set computation on synthetic circles *)
  let yen =
    let circle = Topologies.circle ~n:10 ~neighbors:2 () in
    let space = Demand.full_space circle in
    Test.make ~name:"pathset_k2(circle-10-2)"
      (Staged.stage (fun () -> ignore (Pathset.compute space ~k:2)))
  in
  [ opt_solve; dp_solve; pop_solve; build_dp_metaopt; build_pop_metaopt; yen ]

let run () =
  Common.section "Microbenchmarks (Bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if Common.full_mode then 2.0 else 0.5))
      ~kde:(Some 1000) ()
  in
  Common.row "%-30s %15s %10s" "benchmark" "time/run" "r²";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> Float.nan
          in
          let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square est) in
          let human =
            if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Common.row "%-30s %15s %10.3f" name human r2)
        results)
    (tests ())
