(* Figure 1: the illustrative DP suboptimality example.

   Paper numbers: demands 1->3: 50 (at threshold), 1->2: 130, 2->3: 180;
   DP carries 260, OPT carries 360, gap 100 units (over 38% of DP). *)

let run () =
  Common.section "Figure 1: DP suboptimality on the 3-node example";
  let g = Topologies.fig1 () in
  let pathset = Common.pathset_of g ~paths:2 in
  let space = Pathset.space pathset in
  let demand = Demand.zero space in
  let set s d v = demand.(Option.get (Demand.index space ~src:s ~dst:d)) <- v in
  set 0 1 130.;
  set 1 2 180.;
  set 0 2 50.;
  let opt = Opt_max_flow.solve pathset demand in
  let dp_total =
    match Demand_pinning.solve pathset ~threshold:50. demand with
    | Demand_pinning.Feasible { total; _ } -> total
    | Demand_pinning.Infeasible_pinning _ -> Float.nan
  in
  Common.row "demand (paper nodes) | volume | DP    | OPT";
  Common.row "1 -> 2               | 130    | see allocations below";
  Common.row "2 -> 3               | 180    |";
  Common.row "1 -> 3               | 50     | pinned to 1->2->3 by DP";
  Common.row "";
  Common.row "OPT total flow: %.0f   (paper: 360)" opt.Opt_max_flow.total;
  Common.row "DP  total flow: %.0f   (paper: 260)" dp_total;
  Common.row "gap          : %.0f   (paper: 100, 'over 38%%' of DP = %.1f%%)"
    (opt.Opt_max_flow.total -. dp_total)
    (100. *. (opt.Opt_max_flow.total -. dp_total) /. dp_total);
  (* and the white-box search proves this is the worst case *)
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let r = Adversary.find ev ~options:(Common.dp_whitebox_options ()) () in
  Common.row "";
  Common.row "white-box adversary on the same instance:";
  Common.row "  worst-case gap found: %.1f%s" r.Adversary.gap
    (match r.Adversary.upper_bound with
    | Some ub -> Printf.sprintf " (proven upper bound %.1f)" ub
    | None -> "");
  Common.row "  adversarial demands (routable pairs):";
  Array.iteri
    (fun k v ->
      if v > 0.5 && Pathset.routable pathset k then
        let s, d = Demand.pair space k in
        Common.row "    %d -> %d : %.1f" (s + 1) (d + 1) v)
    r.Adversary.demands
