examples/pop_partition_study.ml: Adversary Demand Evaluate Float Fmt Graph List Opt_max_flow Pathset Pop Rng Topologies
