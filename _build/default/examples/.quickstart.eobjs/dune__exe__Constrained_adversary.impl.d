examples/constrained_adversary.ml: Adversary Demand Evaluate Fmt Graph Input_constraints Pathset Rng Topologies
