examples/safe_operating_envelope.mli:
