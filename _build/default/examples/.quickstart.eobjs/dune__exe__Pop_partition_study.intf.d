examples/pop_partition_study.mli:
