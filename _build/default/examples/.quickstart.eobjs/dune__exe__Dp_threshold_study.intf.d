examples/dp_threshold_study.mli:
