examples/quickstart.ml: Adversary Array Demand Demand_pinning Evaluate Fmt Opt_max_flow Option Pathset Topologies
