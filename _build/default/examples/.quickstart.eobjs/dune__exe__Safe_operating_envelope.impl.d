examples/safe_operating_envelope.ml: Array Demand Evaluate Fmt Input_constraints List Pathset Sufficient_conditions Topologies
