examples/quickstart.mli:
