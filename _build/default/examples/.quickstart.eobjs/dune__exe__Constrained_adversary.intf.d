examples/constrained_adversary.mli:
