examples/dp_threshold_study.ml: Adversary Array Demand Demand_pinning Evaluate Fmt Graph List Pathset Printf Sys Topologies
