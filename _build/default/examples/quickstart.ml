(* Quickstart: the paper's Figure 1 story, end to end, in ~40 lines of
   library calls.

     dune exec examples/quickstart.exe

   1. build a topology and a demand matrix;
   2. run the optimal max-flow LP and the Demand Pinning heuristic;
   3. ask the white-box adversary for the worst-case input and a proof. *)

let () =
  (* the 3-node WAN of Figure 1: links 1->2 (cap 130), 2->3 (cap 180) and
     a long direct link 1->3 (cap 50), so 1->3's shortest path is 1->2->3 *)
  let g = Topologies.fig1 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let space = Pathset.space pathset in

  (* the demand matrix from the figure *)
  let demand = Demand.zero space in
  let set s t v = demand.(Option.get (Demand.index space ~src:s ~dst:t)) <- v in
  set 0 1 130.;
  set 1 2 180.;
  set 0 2 50.;

  (* optimal: jointly route everything *)
  let opt = Opt_max_flow.solve pathset demand in
  Fmt.pr "OPT carries %g units of flow@." opt.Opt_max_flow.total;

  (* the heuristic: pin demands <= 50 to their shortest paths first *)
  (match Demand_pinning.solve pathset ~threshold:50. demand with
  | Demand_pinning.Feasible { total; pinned_flow; _ } ->
      Fmt.pr "DP carries %g units (%g of them pinned)@." total pinned_flow
  | Demand_pinning.Infeasible_pinning { edge; load; capacity } ->
      Fmt.pr "DP pinning overloads edge %d: %g > %g@." edge load capacity);

  (* the paper's contribution: find the worst case, provably *)
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let result = Adversary.find ev () in
  Fmt.pr "@.worst-case gap over ALL demand matrices: %g@." result.Adversary.gap;
  (match result.Adversary.upper_bound with
  | Some ub -> Fmt.pr "proven upper bound: %g (the figure's example is tight!)@." ub
  | None -> ());
  Fmt.pr "an input achieving it:@.";
  Array.iteri
    (fun k v ->
      let s, t = Demand.pair space k in
      if v > 1e-6 && Pathset.routable pathset k then
        Fmt.pr "  node%d -> node%d : %g@." (s + 1) (t + 1) v)
    result.Adversary.demands
