(* Threshold study: how an operator would use this library to pick the
   Demand Pinning threshold for their topology.

     dune exec examples/dp_threshold_study.exe [topology]

   DP's speedup comes from pinning more demands (higher threshold), but
   §4 shows the optimality gap grows with the threshold. This example
   sweeps the threshold on a production topology (default: Abilene) and
   prints the worst-case gap and the adversarial input at each setting,
   so an operator can see exactly what they trade away. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "abilene" in
  let g =
    match Topologies.by_name name with
    | Some g -> g
    | None ->
        Fmt.epr "unknown topology %S@." name;
        exit 1
  in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let total_cap = Graph.total_capacity g in
  Fmt.pr "topology %s: %d nodes, %d directed links, total capacity %g@.@."
    (Graph.name g) (Graph.num_nodes g) (Graph.num_edges g) total_cap;
  Fmt.pr "%-12s %-14s %-12s %s@." "threshold" "worst gap" "gap/capacity"
    "how many pairs the adversary pins";
  List.iter
    (fun fraction ->
      let threshold = fraction *. Graph.max_capacity g in
      let ev = Evaluate.make_dp pathset ~threshold in
      let options =
        { Adversary.default_options with run_milp = false; probe_budget = 800 }
      in
      let r = Adversary.find ev ~options () in
      let pinned =
        Array.fold_left
          (fun acc d ->
            if Demand_pinning.pins ~threshold d then acc + 1 else acc)
          0 r.Adversary.demands
      in
      Fmt.pr "%-12s %-14.1f %-12.3f %d of %d pairs@."
        (Printf.sprintf "%.1f%% cap" (100. *. fraction))
        r.Adversary.gap r.Adversary.normalized_gap pinned
        (Demand.size (Pathset.space pathset)))
    [ 0.025; 0.05; 0.1; 0.15; 0.2 ];
  Fmt.pr
    "@.reading: pick the largest threshold whose worst case you can live \
     with;@.pairs with long shortest paths are the dangerous ones to pin \
     (Fig 4b).@."
