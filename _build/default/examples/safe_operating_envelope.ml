(* Safe operating envelope: turning the adversary into a certificate
   (paper §5, "Searching for sufficient conditions").

     dune exec examples/safe_operating_envelope.exe

   Question an operator actually asks: "how much can traffic drift from
   what we've seen historically before Demand Pinning's worst case
   exceeds my error budget?" We answer it by bisecting the drift radius,
   running the full adversary inside each candidate envelope, and
   reporting the largest radius that passes - together with whether the
   MILP bound certifies it (not merely "we failed to find a bad input"). *)

let () =
  let g = Topologies.fig1 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let n = Pathset.num_pairs pathset in
  (* the envelope family: every demand at most r *)
  let family r = Input_constraints.box ~upper:(Array.make n r) () in
  let budget = 20. in
  Fmt.pr
    "topology fig1, DP threshold 50, gap budget %.0f flow units@.@.\
     bisecting the largest per-pair demand bound r with worst-case gap <= \
     budget:@.@."
    budget;
  let r =
    Sufficient_conditions.search ev ~family ~lo:50. ~hi:180.
      ~gap_budget:budget ~probes:8 ()
  in
  List.iter
    (fun p ->
      Fmt.pr "  r = %6.1f   worst gap found %6.1f%s   %s@."
        p.Sufficient_conditions.parameter p.Sufficient_conditions.worst_gap
        (match p.Sufficient_conditions.upper_bound with
        | Some ub -> Fmt.str " (proven <= %.1f)" ub
        | None -> "")
        (if p.Sufficient_conditions.worst_gap <= budget then "ok" else "too risky"))
    r.Sufficient_conditions.probes;
  (match r.Sufficient_conditions.accepted with
  | Some radius ->
      Fmt.pr
        "@.=> safe envelope: every demand <= %.1f keeps the worst case within \
         budget%s@."
        radius
        (if r.Sufficient_conditions.certified then
           " - CERTIFIED by the MILP bound" else
           " (bound not proven; gap found by search only)")
  | None -> Fmt.pr "@.=> no envelope in the probed range fits the budget@.");
  Fmt.pr
    "@.(theory check for this instance: worst gap = max(0, r - 80), so the@.\
     exact answer at budget 20 is r* = 100)@."
