(* POP robustness study: does an adversarial input for one random
   partitioning stay bad for others?

     dune exec examples/pop_partition_study.exe

   POP's output is a random variable (the partition is drawn at run time),
   so a useful adversarial input must be bad in expectation, not just for
   one draw (§3.2, Fig 5a). This example trains adversaries against 1 and
   against 5 fixed partition instances, then evaluates both inputs on 20
   held-out random partitions. It also demonstrates client splitting
   (Appendix A) softening the gap. *)

let () =
  let g = Topologies.b4 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let parts = 2 in
  let total_cap = Graph.total_capacity g in
  let train instances =
    let ev =
      Evaluate.make_pop pathset ~parts ~instances ~rng:(Rng.create 7) ()
    in
    let options =
      { Adversary.default_options with run_milp = false; probe_budget = 800 }
    in
    (Adversary.find ev ~options ()).Adversary.demands
  in
  let held_out_gaps demand =
    List.init 20 (fun i ->
        let rng = Rng.create (31 + i) in
        let partition =
          Pop.random_partition ~rng ~num_pairs:(Pathset.num_pairs pathset)
            ~parts
        in
        let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
        let pop = (Pop.solve pathset ~parts partition demand).Pop.total in
        (opt -. pop) /. total_cap)
  in
  let stats gaps =
    let n = float_of_int (List.length gaps) in
    let mean = List.fold_left ( +. ) 0. gaps /. n in
    let mn = List.fold_left Float.min infinity gaps in
    let mx = List.fold_left Float.max neg_infinity gaps in
    (mean, mn, mx)
  in
  Fmt.pr "training POP adversaries on B4 (%d partitions)...@.@." parts;
  List.iter
    (fun (label, instances) ->
      let demand = train instances in
      let mean, mn, mx = stats (held_out_gaps demand) in
      Fmt.pr "%-26s held-out gap/cap: mean %.3f  min %.3f  max %.3f@." label
        mean mn mx)
    [ ("trained on 1 instance", 1); ("trained on 5 instances", 5) ];
  (* client splitting (Appendix A): splitting big demands across
     partitions recovers some of the fragmented capacity *)
  let demand = train 5 in
  let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
  let rng = Rng.create 99 in
  let plain =
    (Pop.solve pathset ~parts
       (Pop.random_partition ~rng ~num_pairs:(Pathset.num_pairs pathset) ~parts)
       demand)
      .Pop.total
  in
  let split =
    (Pop.solve_with_client_split pathset ~parts ~rng:(Rng.create 99)
       ~threshold:(0.2 *. Graph.max_capacity g)
       ~max_splits:2 demand)
      .Pop.total
  in
  Fmt.pr
    "@.client splitting on the adversarial input:@.  plain POP gap/cap %.3f  \
     ->  with client splitting %.3f@."
    ((opt -. plain) /. total_cap)
    ((opt -. split) /. total_cap)
