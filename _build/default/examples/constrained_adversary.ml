(* Constrained adversary: worst cases under realistic input restrictions
   (paper §3.3 "Realistic constraints on inputs").

     dune exec examples/constrained_adversary.exe

   An unconstrained worst case may be an implausible demand matrix. Here
   we anchor the search to a "historically observed" matrix (a gravity
   model stand-in) and ask: within +-20% of history, how bad can Demand
   Pinning get? We then tighten to +-5% and add an intra-input constraint
   (no demand above 3x the average) to show the gap shrinking as the
   input space gets more realistic - exactly the workflow the paper
   suggests for deciding when a heuristic is safe to use. *)

let () =
  let g = Topologies.abilene () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let space = Pathset.space pathset in
  let threshold = 0.05 *. Graph.max_capacity g in
  let ev = Evaluate.make_dp pathset ~threshold in
  (* the "historical" matrix: a gravity model scaled to half capacity *)
  let history =
    Demand.gravity space ~rng:(Rng.create 12) ~total:(0.5 *. Graph.total_capacity g)
  in
  let search ?(extra = Input_constraints.none) label constraints =
    let constraints = Input_constraints.combine constraints extra in
    let options =
      {
        Adversary.default_options with
        constraints;
        run_milp = false;
        probe_budget = 1500;
      }
    in
    let r = Adversary.find ev ~options () in
    assert (Input_constraints.satisfied constraints r.Adversary.demands);
    Fmt.pr "%-44s gap %8.1f  (gap/capacity %.3f)@." label r.Adversary.gap
      r.Adversary.normalized_gap;
    r
  in
  Fmt.pr "worst-case DP gap on Abilene under increasingly realistic inputs:@.@.";
  let unconstrained = search "unconstrained" Input_constraints.none in
  let loose =
    search "within +-20% of history (relative goalpost)"
      (Input_constraints.goalpost ~reference:history ~distance:0.2
         ~relative:true ())
  in
  let tight =
    search "within +-5% of history"
      (Input_constraints.goalpost ~reference:history ~distance:0.05
         ~relative:true ())
  in
  let realistic =
    search "+-20% of history AND <= 3x average demand"
      (Input_constraints.goalpost ~reference:history ~distance:0.2
         ~relative:true ())
      ~extra:
        (Input_constraints.within_factor_of_average
           ~num_pairs:(Demand.size space) ~factor:3.)
  in
  Fmt.pr "@.the gap shrinks as constraints tighten: %.3f -> %.3f -> %.3f -> %.3f@."
    unconstrained.Adversary.normalized_gap loose.Adversary.normalized_gap
    realistic.Adversary.normalized_gap tight.Adversary.normalized_gap;
  Fmt.pr
    "if the tight setting's gap is acceptable, the heuristic is safe for@.\
     inputs near history - and the framework gave a certificate for it.@."
