(** Deterministic pseudo-random number generator (splitmix64).

    All randomized components of the reproduction (demand generators, POP
    partitioning, black-box search) draw from explicit [Rng.t] states so
    every experiment is replayable from a seed, independent of OCaml's
    global [Random] state. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent child stream (advances the parent). *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
val int_range : t -> int -> int
(** [int_range t n] is uniform in [0, n-1]. @raise Invalid_argument if [n <= 0]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
