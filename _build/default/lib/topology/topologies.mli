(** Named topologies used in the paper's evaluation (§4) plus synthetic
    families.

    Production topologies are reconstructed from their published maps:
    B4 [16] (12 nodes, 19 bidirectional links), Abilene [34] (11 nodes,
    14 links), and a SWAN-like [15] inter-DC WAN (10 nodes, 16 links; the
    SWAN paper does not publish an exact link list, so this is a same-scale
    reconstruction — see DESIGN.md). Capacities are uniform per link, as
    the paper's normalized metrics assume ([capacity] defaults to 1000
    flow units per direction).

    [fig1] is the 3-node illustrative example of the paper's Figure 1,
    with capacities chosen so that the published numbers hold exactly:
    DP carries 260 units, OPT carries 360, gap 100 (38% of DP). *)

val fig1 : unit -> Graph.t
(** Unidirectional triangle: 1->2 (cap 130), 2->3 (cap 180), and a direct
    1->3 link (cap 50) with a large routing weight, so the shortest path
    for pair 1->3 is via node 2. Nodes are 0-indexed (paper node k is
    node k-1). *)

val b4 : ?capacity:float -> unit -> Graph.t
val abilene : ?capacity:float -> unit -> Graph.t
val swan : ?capacity:float -> unit -> Graph.t

val circle : ?capacity:float -> n:int -> neighbors:int -> unit -> Graph.t
(** Fig 4b synthetic family: [n] nodes on a ring, each connected to its
    [neighbors] nearest neighbours on each side (bidirectional). *)

val line : ?capacity:float -> n:int -> unit -> Graph.t
val star : ?capacity:float -> n:int -> unit -> Graph.t
(** [star ~n] has a hub (node 0) and [n - 1] leaves. *)

val grid : ?capacity:float -> rows:int -> cols:int -> unit -> Graph.t

val random : ?capacity:float -> rng:Rng.t -> n:int -> extra_edge_prob:float -> unit -> Graph.t
(** Random connected topology: a ring backbone plus each non-adjacent pair
    connected with probability [extra_edge_prob]. *)

val by_name : string -> Graph.t option
(** Lookup for the CLI: ["fig1"], ["b4"], ["abilene"], ["swan"],
    ["circle-N-K"], ["line-N"], ["star-N"], ["grid-RxC"]. *)

val average_shortest_path_length : Graph.t -> float
(** Mean over all connected ordered pairs of the weighted shortest-path
    hop count — the x-axis of Fig 4b. *)
