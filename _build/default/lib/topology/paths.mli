(** Shortest paths and k-shortest path sets.

    The TE formulations route over pre-chosen path sets (paper §2: "a
    pre-configured set of paths", 2 per node pair unless stated). Paths are
    loopless edge sequences; path comparison is by total routing weight,
    then hop count, then lexicographic edge ids — a total order, so path
    sets are deterministic for a given topology. *)

type path = Graph.edge array

val length : Graph.t -> path -> float
(** Total routing weight. *)

val hops : path -> int

val nodes : Graph.t -> path -> Graph.node list
(** Visited nodes, source first. @raise Invalid_argument on empty paths. *)

val mem_edge : path -> Graph.edge -> bool

val is_valid : Graph.t -> src:Graph.node -> dst:Graph.node -> path -> bool
(** Contiguous, loopless, starts at [src], ends at [dst]. *)

val compare_paths : Graph.t -> path -> path -> int

val shortest_path : Graph.t -> src:Graph.node -> dst:Graph.node -> path option
(** Minimum-weight path (deterministic tie-break). *)

val k_shortest : Graph.t -> k:int -> src:Graph.node -> dst:Graph.node -> path list
(** Yen's algorithm: up to [k] loopless paths in increasing order; fewer if
    the graph does not contain [k] distinct loopless paths. The first
    element equals [shortest_path]. *)

val pp : Graph.t -> Format.formatter -> path -> unit
