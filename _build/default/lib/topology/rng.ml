type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let child_seed = int64 t in
  { state = child_seed }

let float t =
  (* 53 high bits to a double in [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int_range t n =
  if n <= 0 then invalid_arg "Rng.int_range";
  let f = float t in
  let i = int_of_float (f *. float_of_int n) in
  if i >= n then n - 1 else i

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () and u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_range t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
