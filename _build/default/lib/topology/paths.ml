type path = Graph.edge array

let length g p = Array.fold_left (fun acc e -> acc +. Graph.weight g e) 0. p
let hops = Array.length

let nodes g p =
  if Array.length p = 0 then invalid_arg "Paths.nodes: empty path";
  Graph.edge_src g p.(0)
  :: Array.to_list (Array.map (fun e -> Graph.edge_dst g e) p)

let mem_edge p e = Array.exists (fun x -> x = e) p

let is_valid g ~src ~dst p =
  Array.length p > 0
  && Graph.edge_src g p.(0) = src
  && Graph.edge_dst g p.(Array.length p - 1) = dst
  && (let ok = ref true in
      for i = 0 to Array.length p - 2 do
        if Graph.edge_dst g p.(i) <> Graph.edge_src g p.(i + 1) then ok := false
      done;
      !ok)
  &&
  let ns = nodes g p in
  List.length (List.sort_uniq compare ns) = List.length ns

let compare_paths g a b =
  let c = Float.compare (length g a) (length g b) in
  if c <> 0 then c
  else
    let c = compare (hops a) (hops b) in
    if c <> 0 then c else compare (Array.to_list a) (Array.to_list b)

(* Dijkstra with optional edge/node exclusion masks. O(V^2 + E), which is
   plenty for <= tens of nodes. Tie-breaks: fewer hops, then smaller
   predecessor edge id, making results deterministic. *)
let dijkstra g ~src ~dst ~edge_blocked ~node_blocked =
  let n = Graph.num_nodes g in
  let dist = Array.make n infinity in
  let hopc = Array.make n max_int in
  let pred = Array.make n (-1) in
  let visited = Array.make n false in
  dist.(src) <- 0.;
  hopc.(src) <- 0;
  let better u alt alt_hops e =
    alt < dist.(u) -. 1e-12
    || (alt < dist.(u) +. 1e-12
       && (alt_hops < hopc.(u)
          || (alt_hops = hopc.(u) && (pred.(u) = -1 || e < pred.(u)))))
  in
  (try
     for _ = 0 to n - 1 do
       (* pick unvisited node with smallest (dist, hops) *)
       let u = ref (-1) in
       for v = 0 to n - 1 do
         if
           (not visited.(v))
           && dist.(v) < infinity
           && (!u = -1
              || dist.(v) < dist.(!u) -. 1e-12
              || (dist.(v) < dist.(!u) +. 1e-12 && hopc.(v) < hopc.(!u)))
         then u := v
       done;
       if !u = -1 then raise Exit;
       let u = !u in
       visited.(u) <- true;
       if u = dst then raise Exit;
       List.iter
         (fun e ->
           let v = Graph.edge_dst g e in
           if (not (edge_blocked e)) && (not (node_blocked v)) && not visited.(v)
           then begin
             let alt = dist.(u) +. Graph.weight g e in
             let alt_hops = hopc.(u) + 1 in
             if better v alt alt_hops e then begin
               dist.(v) <- alt;
               hopc.(v) <- alt_hops;
               pred.(v) <- e
             end
           end)
         (Graph.out_edges g u)
     done
   with Exit -> ());
  if dist.(dst) = infinity then None
  else begin
    let rec walk v acc =
      if v = src then acc
      else
        let e = pred.(v) in
        walk (Graph.edge_src g e) (e :: acc)
    in
    Some (Array.of_list (walk dst []))
  end

let no_block _ = false

let shortest_path g ~src ~dst =
  if src = dst then invalid_arg "Paths.shortest_path: src = dst";
  dijkstra g ~src ~dst ~edge_blocked:no_block ~node_blocked:no_block

(* Yen's loopless k-shortest paths. *)
let k_shortest g ~k ~src ~dst =
  if k <= 0 then invalid_arg "Paths.k_shortest: k <= 0";
  match shortest_path g ~src ~dst with
  | None -> []
  | Some first ->
      let accepted = ref [ first ] in
      let candidates : path list ref = ref [] in
      let add_candidate c =
        if
          (not (List.exists (fun p -> p = c) !candidates))
          && not (List.exists (fun p -> p = c) !accepted)
        then candidates := c :: !candidates
      in
      (try
         for _ = 2 to k do
           let prev = List.hd !accepted in
           let prev_nodes = Array.of_list (nodes g prev) in
           (* spur from every node of the previous path except dst *)
           for i = 0 to Array.length prev - 1 do
             let spur_node = prev_nodes.(i) in
             let root = Array.sub prev 0 i in
             (* block the i-th edge of accepted/candidate paths sharing the
                root prefix *)
             let blocked_edges = Hashtbl.create 8 in
             List.iter
               (fun p ->
                 if Array.length p > i && Array.sub p 0 i = root then
                   Hashtbl.replace blocked_edges p.(i) ())
               (!accepted @ !candidates);
             (* block nodes of the root path except the spur node *)
             let blocked_nodes = Hashtbl.create 8 in
             Array.iteri
               (fun j v -> if j < i then Hashtbl.replace blocked_nodes v ())
               prev_nodes;
             match
               dijkstra g ~src:spur_node ~dst
                 ~edge_blocked:(Hashtbl.mem blocked_edges)
                 ~node_blocked:(Hashtbl.mem blocked_nodes)
             with
             | None -> ()
             | Some spur ->
                 let candidate = Array.append root spur in
                 if is_valid g ~src ~dst candidate then add_candidate candidate
           done;
           match List.sort (compare_paths g) !candidates with
           | [] -> raise Exit
           | best :: rest ->
               accepted := best :: !accepted;
               candidates := rest
         done
       with Exit -> ());
      List.rev !accepted

let pp g ppf p =
  match Array.length p with
  | 0 -> Fmt.string ppf "<empty>"
  | _ -> Fmt.(list ~sep:(any "->") int) ppf (nodes g p)
