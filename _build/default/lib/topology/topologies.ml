let fig1 () =
  let g = Graph.create ~name:"fig1" ~num_nodes:3 () in
  (* paper nodes 1,2,3 are 0,1,2 here *)
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:130. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:180. () in
  (* direct 1->3 link exists but is "long" (weight 10), so the shortest
     path for 1->3 goes via node 2 and demand pinning burns capacity on
     both hops of the two-hop path *)
  let _ = Graph.add_edge g ~src:0 ~dst:2 ~capacity:50. ~weight:10. () in
  g

let of_links ~name ~num_nodes ~capacity links =
  let g = Graph.create ~name ~num_nodes () in
  List.iter (fun (a, b) -> ignore (Graph.add_bidirectional g a b ~capacity ())) links;
  g

let b4 ?(capacity = 1000.) () =
  (* 12 sites, 19 bidirectional long-haul links, reconstructed from the
     published B4 map [16] *)
  of_links ~name:"b4" ~num_nodes:12 ~capacity
    [
      (0, 1); (0, 2); (1, 2); (1, 3); (2, 3); (2, 4); (3, 4); (3, 5);
      (4, 6); (5, 6); (5, 7); (6, 8); (7, 8); (7, 9); (8, 9); (8, 10);
      (9, 10); (9, 11); (10, 11);
    ]

let abilene ?(capacity = 1000.) () =
  (* Internet2 Abilene core [34]: 11 PoPs, 14 links.
     0 Seattle, 1 Sunnyvale, 2 Denver, 3 Los Angeles, 4 Houston,
     5 Kansas City, 6 Indianapolis, 7 Atlanta, 8 Chicago,
     9 Washington DC, 10 New York *)
  of_links ~name:"abilene" ~num_nodes:11 ~capacity
    [
      (0, 1); (0, 2); (1, 3); (1, 2); (3, 4); (2, 5); (4, 5); (4, 7);
      (5, 6); (6, 8); (6, 7); (7, 9); (8, 10); (9, 10);
    ]

let swan ?(capacity = 1000.) () =
  (* SWAN-scale inter-DC WAN [15]: two regional meshes bridged by a few
     long-haul links (10 nodes, 16 links; reconstruction, see DESIGN.md) *)
  of_links ~name:"swan" ~num_nodes:10 ~capacity
    [
      (0, 1); (1, 2); (2, 3); (3, 0); (0, 2); (1, 3);
      (5, 6); (6, 7); (7, 8); (8, 5); (5, 7); (6, 8);
      (4, 0); (4, 5); (9, 3); (9, 8);
    ]

let circle ?(capacity = 1000.) ~n ~neighbors () =
  if n < 3 then invalid_arg "Topologies.circle: n < 3";
  if neighbors < 1 || 2 * neighbors >= n then
    invalid_arg "Topologies.circle: bad neighbor count";
  let g =
    Graph.create ~name:(Printf.sprintf "circle-%d-%d" n neighbors) ~num_nodes:n ()
  in
  for i = 0 to n - 1 do
    for d = 1 to neighbors do
      let j = (i + d) mod n in
      ignore (Graph.add_bidirectional g i j ~capacity ())
    done
  done;
  g

let line ?(capacity = 1000.) ~n () =
  if n < 2 then invalid_arg "Topologies.line: n < 2";
  let g = Graph.create ~name:(Printf.sprintf "line-%d" n) ~num_nodes:n () in
  for i = 0 to n - 2 do
    ignore (Graph.add_bidirectional g i (i + 1) ~capacity ())
  done;
  g

let star ?(capacity = 1000.) ~n () =
  if n < 3 then invalid_arg "Topologies.star: n < 3";
  let g = Graph.create ~name:(Printf.sprintf "star-%d" n) ~num_nodes:n () in
  for i = 1 to n - 1 do
    ignore (Graph.add_bidirectional g 0 i ~capacity ())
  done;
  g

let grid ?(capacity = 1000.) ~rows ~cols () =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Topologies.grid: degenerate";
  let g =
    Graph.create ~name:(Printf.sprintf "grid-%dx%d" rows cols)
      ~num_nodes:(rows * cols) ()
  in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_bidirectional g (id r c) (id r (c + 1)) ~capacity ());
      if r + 1 < rows then ignore (Graph.add_bidirectional g (id r c) (id (r + 1) c) ~capacity ())
    done
  done;
  g

let random ?(capacity = 1000.) ~rng ~n ~extra_edge_prob () =
  if n < 3 then invalid_arg "Topologies.random: n < 3";
  let g = Graph.create ~name:(Printf.sprintf "random-%d" n) ~num_nodes:n () in
  for i = 0 to n - 1 do
    ignore (Graph.add_bidirectional g i ((i + 1) mod n) ~capacity ())
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ring_adjacent = j = i + 1 || (i = 0 && j = n - 1) in
      if (not ring_adjacent) && Rng.float rng < extra_edge_prob then
        ignore (Graph.add_bidirectional g i j ~capacity ())
    done
  done;
  g

let by_name name =
  let int_of s = int_of_string_opt s in
  match String.split_on_char '-' name with
  | [ "fig1" ] -> Some (fig1 ())
  | [ "b4" ] -> Some (b4 ())
  | [ "abilene" ] -> Some (abilene ())
  | [ "swan" ] -> Some (swan ())
  | [ "circle"; n; k ] -> (
      match (int_of n, int_of k) with
      | Some n, Some k -> Some (circle ~n ~neighbors:k ())
      | _ -> None)
  | [ "line"; n ] -> Option.map (fun n -> line ~n ()) (int_of n)
  | [ "star"; n ] -> Option.map (fun n -> star ~n ()) (int_of n)
  | [ "grid"; rc ] -> (
      match String.split_on_char 'x' rc with
      | [ r; c ] -> (
          match (int_of r, int_of c) with
          | Some rows, Some cols -> Some (grid ~rows ~cols ())
          | _ -> None)
      | _ -> None)
  | _ -> None

let average_shortest_path_length g =
  let pairs = Graph.node_pairs g in
  let total = ref 0. and count = ref 0 in
  Array.iter
    (fun (s, d) ->
      match Paths.shortest_path g ~src:s ~dst:d with
      | None -> ()
      | Some p ->
          total := !total +. float_of_int (Paths.hops p);
          incr count)
    pairs;
  if !count = 0 then 0. else !total /. float_of_int !count
