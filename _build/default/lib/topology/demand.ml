type space = {
  graph : Graph.t;
  pairs : (Graph.node * Graph.node) array;
}

type t = float array

let full_space graph = { graph; pairs = Graph.node_pairs graph }

let space_of_pairs graph pairs =
  let n = Graph.num_nodes graph in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        invalid_arg "Demand.space_of_pairs: node out of range";
      if s = d then invalid_arg "Demand.space_of_pairs: self pair";
      if Hashtbl.mem seen (s, d) then
        invalid_arg "Demand.space_of_pairs: duplicate pair";
      Hashtbl.replace seen (s, d) ())
    pairs;
  { graph; pairs = Array.copy pairs }

let size space = Array.length space.pairs
let pair space k = space.pairs.(k)

let index space ~src ~dst =
  let found = ref None in
  Array.iteri
    (fun k (s, d) -> if s = src && d = dst && !found = None then found := Some k)
    space.pairs;
  !found

let zero space = Array.make (size space) 0.
let constant space v = Array.make (size space) v
let total d = Array.fold_left ( +. ) 0. d
let average d = if Array.length d = 0 then 0. else total d /. float_of_int (Array.length d)
let max_volume d = Array.fold_left Float.max 0. d

let uniform space ~rng ~max =
  Array.init (size space) (fun _ -> Rng.uniform rng ~lo:0. ~hi:max)

let gravity space ~rng ~total:target =
  let n = Graph.num_nodes space.graph in
  let mass = Array.init n (fun _ -> Rng.uniform rng ~lo:0.1 ~hi:1.) in
  let raw =
    Array.map (fun (s, d) -> mass.(s) *. mass.(d)) space.pairs
  in
  let s = total raw in
  if s = 0. then raw else Array.map (fun v -> v *. target /. s) raw

let bimodal space ~rng ~fraction_large ~small_max ~large_max =
  Array.init (size space) (fun _ ->
      if Rng.float rng < fraction_large then Rng.uniform rng ~lo:0. ~hi:large_max
      else Rng.uniform rng ~lo:0. ~hi:small_max)

let clamp_non_negative d = Array.map (Float.max 0.) d

let to_csv space d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "src,dst,volume\n";
  Array.iteri
    (fun k v ->
      if v <> 0. then begin
        let s, t = space.pairs.(k) in
        Buffer.add_string buf (Printf.sprintf "%d,%d,%.12g\n" s t v)
      end)
    d;
  Buffer.contents buf

let of_csv space text =
  let d = zero space in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok d
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line = "src,dst,volume" then go (lineno + 1) rest
        else
          match String.split_on_char ',' line with
          | [ s; t; v ] -> (
              match
                (int_of_string_opt (String.trim s),
                 int_of_string_opt (String.trim t),
                 float_of_string_opt (String.trim v))
              with
              | Some s, Some t, Some v -> (
                  if v < 0. then err "line %d: negative volume" lineno
                  else
                    match index space ~src:s ~dst:t with
                    | Some k ->
                        d.(k) <- v;
                        go (lineno + 1) rest
                    | None -> err "line %d: pair %d->%d not in space" lineno s t)
              | _ -> err "line %d: malformed fields" lineno)
          | _ -> err "line %d: expected src,dst,volume" lineno)
  in
  go 1 lines

let save_csv space d path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv space d))

let load_csv space path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_csv space text
  | exception Sys_error e -> Error e

let pp space ppf d =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun k v ->
      if v > 1e-9 then
        let s, t = space.pairs.(k) in
        Fmt.pf ppf "%d->%d: %g@ " s t v)
    d;
  Fmt.pf ppf "@]"
