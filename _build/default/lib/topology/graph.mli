(** Directed capacitated graphs for WAN topologies.

    Edges are directed and carry a capacity (flow units) and a routing
    weight (used only for shortest-path computation — WAN "IGP weights").
    Nodes are dense integers [0 .. num_nodes-1]; edges are dense integer
    handles in insertion order, which the TE formulations use as array
    indices. *)

type node = int
type edge = int
type t

val create : ?name:string -> num_nodes:int -> unit -> t
val name : t -> string
val num_nodes : t -> int
val num_edges : t -> int

(** [add_edge t ~src ~dst ~capacity] adds a directed edge (default
    [weight = 1.]).
    @raise Invalid_argument on out-of-range nodes, self loops, or
    non-positive capacity. *)
val add_edge : t -> src:node -> dst:node -> capacity:float -> ?weight:float -> unit -> edge

(** Add both directions with the same capacity and weight. *)
val add_bidirectional :
  t -> node -> node -> capacity:float -> ?weight:float -> unit -> edge * edge

val edge_src : t -> edge -> node
val edge_dst : t -> edge -> node
val capacity : t -> edge -> float
val weight : t -> edge -> float

(** Outgoing edges of a node, in insertion order. *)
val out_edges : t -> node -> edge list

(** [find_edge t src dst] is the first edge from [src] to [dst], if any. *)
val find_edge : t -> node -> node -> edge option

(** Sum of all edge capacities — the normalizer of the paper's gap metric
    (Fig. 3 plots gap divided by total capacity). *)
val total_capacity : t -> float

val max_capacity : t -> float

(** All ordered node pairs [(s, t)] with [s <> t]. *)
val node_pairs : t -> (node * node) array

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val pp : Format.formatter -> t -> unit
