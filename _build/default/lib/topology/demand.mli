(** Demand matrices — the adversary's input space.

    A {!space} fixes the ordered node pairs that may carry demand (by
    default every ordered pair, as in the paper's TE formulation); a
    demand is then a plain [float array] aligned with the space's pairs.
    This array is exactly the input vector [I] the metaoptimization (1)
    searches over, and the format black-box search perturbs. *)

type space = private {
  graph : Graph.t;
  pairs : (Graph.node * Graph.node) array;
}

type t = float array

val full_space : Graph.t -> space
(** All ordered pairs (s, t), s <> t — |D| quadratic in |V| (paper §2). *)

val space_of_pairs : Graph.t -> (Graph.node * Graph.node) array -> space
(** Restricted space. @raise Invalid_argument on duplicates, self-pairs or
    out-of-range nodes. *)

val size : space -> int
val pair : space -> int -> Graph.node * Graph.node
val index : space -> src:Graph.node -> dst:Graph.node -> int option

val zero : space -> t
val constant : space -> float -> t

val total : t -> float
val average : t -> float
val max_volume : t -> float

(** {1 Generators} (all deterministic given the [rng] state) *)

val uniform : space -> rng:Rng.t -> max:float -> t
(** Each volume independently uniform in [0, max]. *)

val gravity : space -> rng:Rng.t -> total:float -> t
(** Gravity model: node masses drawn uniformly; volume of (s,t)
    proportional to mass(s) * mass(t), scaled so volumes sum to [total].
    The standard stand-in for "historically observed" WAN matrices. *)

val bimodal :
  space -> rng:Rng.t -> fraction_large:float -> small_max:float -> large_max:float -> t
(** A fraction of pairs draw from [0, large_max], the rest from
    [0, small_max] — mice-and-elephants WAN traffic. *)

val clamp_non_negative : t -> t

(** {1 Serialization}

    Demand matrices round-trip through a simple [src,dst,volume] CSV
    (header line included) so adversarial inputs found by the CLI can be
    stored, shared, and re-evaluated. *)

val to_csv : space -> t -> string

val of_csv : space -> string -> (t, string) result
(** Unlisted pairs get volume 0; unknown pairs, malformed lines or
    negative volumes are reported as [Error]. *)

val save_csv : space -> t -> string -> unit
(** @raise Sys_error on I/O failure. *)

val load_csv : space -> string -> (t, string) result

val pp : space -> Format.formatter -> t -> unit
(** Prints only non-zero entries. *)
