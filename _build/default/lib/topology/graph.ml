type node = int
type edge = int

type edge_data = { src : node; dst : node; capacity : float; weight : float }

type t = {
  g_name : string;
  n : int;
  mutable edges : edge_data array;
  mutable num_edges : int;
  out : edge list array; (* reversed insertion order, fixed at read time *)
}

let create ?(name = "graph") ~num_nodes () =
  if num_nodes <= 0 then invalid_arg "Graph.create: num_nodes <= 0";
  {
    g_name = name;
    n = num_nodes;
    edges = [||];
    num_edges = 0;
    out = Array.make num_nodes [];
  }

let name t = t.g_name
let num_nodes t = t.n
let num_edges t = t.num_edges

let check_node t v ctx =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Graph.%s: bad node %d" ctx v)

let add_edge t ~src ~dst ~capacity ?(weight = 1.) () =
  check_node t src "add_edge";
  check_node t dst "add_edge";
  if src = dst then invalid_arg "Graph.add_edge: self loop";
  if capacity <= 0. then invalid_arg "Graph.add_edge: capacity <= 0";
  if weight <= 0. then invalid_arg "Graph.add_edge: weight <= 0";
  if t.num_edges = Array.length t.edges then begin
    let cap = if t.num_edges = 0 then 8 else 2 * t.num_edges in
    let edges = Array.make cap { src; dst; capacity; weight } in
    Array.blit t.edges 0 edges 0 t.num_edges;
    t.edges <- edges
  end;
  let e = t.num_edges in
  t.edges.(e) <- { src; dst; capacity; weight };
  t.num_edges <- t.num_edges + 1;
  t.out.(src) <- e :: t.out.(src);
  e

let add_bidirectional t a b ~capacity ?weight () =
  let e1 = add_edge t ~src:a ~dst:b ~capacity ?weight () in
  let e2 = add_edge t ~src:b ~dst:a ~capacity ?weight () in
  (e1, e2)

let edge_src t e = t.edges.(e).src
let edge_dst t e = t.edges.(e).dst
let capacity t e = t.edges.(e).capacity
let weight t e = t.edges.(e).weight
let out_edges t v =
  check_node t v "out_edges";
  List.rev t.out.(v)

let find_edge t src dst =
  List.find_opt (fun e -> t.edges.(e).dst = dst) (out_edges t src)

let fold_edges f t acc =
  let acc = ref acc in
  for e = 0 to t.num_edges - 1 do
    acc := f e !acc
  done;
  !acc

let total_capacity t = fold_edges (fun e acc -> acc +. capacity t e) t 0.
let max_capacity t = fold_edges (fun e acc -> Float.max acc (capacity t e)) t 0.

let node_pairs t =
  let pairs = ref [] in
  for s = t.n - 1 downto 0 do
    for d = t.n - 1 downto 0 do
      if s <> d then pairs := (s, d) :: !pairs
    done
  done;
  Array.of_list !pairs

let pp ppf t =
  Fmt.pf ppf "%s: %d nodes, %d edges, total capacity %g" t.g_name t.n
    t.num_edges (total_capacity t)
