lib/topology/graph.ml: Array Float Fmt List Printf
