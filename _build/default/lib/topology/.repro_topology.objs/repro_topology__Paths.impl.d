lib/topology/paths.ml: Array Float Fmt Graph Hashtbl List
