lib/topology/rng.mli:
