lib/topology/demand.ml: Array Buffer Float Fmt Fun Graph Hashtbl In_channel Printf Rng String
