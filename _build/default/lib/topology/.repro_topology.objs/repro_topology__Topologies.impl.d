lib/topology/topologies.ml: Array Graph List Option Paths Printf Rng String
