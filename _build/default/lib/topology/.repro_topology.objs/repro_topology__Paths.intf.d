lib/topology/paths.mli: Format Graph
