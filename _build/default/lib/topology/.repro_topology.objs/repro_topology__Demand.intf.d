lib/topology/demand.mli: Format Graph Rng
