lib/topology/topologies.mli: Graph Rng
