type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length b = b.len

let grow b x =
  let cap = Array.length b.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data = Array.make cap' x in
  Array.blit b.data 0 data 0 b.len;
  b.data <- data

let push b x =
  if b.len = Array.length b.data then grow b x;
  b.data.(b.len) <- x;
  b.len <- b.len + 1;
  b.len - 1

let check b i = if i < 0 || i >= b.len then invalid_arg "Buf: index out of bounds"

let get b i =
  check b i;
  b.data.(i)

let set b i x =
  check b i;
  b.data.(i) <- x

let to_array b = Array.sub b.data 0 b.len

let iteri f b =
  for i = 0 to b.len - 1 do
    f i b.data.(i)
  done

let fold_left f acc b =
  let acc = ref acc in
  for i = 0 to b.len - 1 do
    acc := f !acc b.data.(i)
  done;
  !acc
