module Imap = Map.Make (Int)

type t = { coefs : float Imap.t; const : float }

let zero = { coefs = Imap.empty; const = 0. }
let constant c = { coefs = Imap.empty; const = c }

let norm c = if c = 0. then None else Some c

let var ?(coef = 1.) v =
  match norm coef with
  | None -> zero
  | Some c -> { coefs = Imap.singleton v c; const = 0. }

let add_term e v c =
  let update = function
    | None -> norm c
    | Some c0 -> norm (c0 +. c)
  in
  { e with coefs = Imap.update v update e.coefs }

let of_terms ?(constant = 0.) terms =
  List.fold_left
    (fun acc (v, c) -> add_term acc v c)
    { coefs = Imap.empty; const = constant }
    terms

let add a b =
  let merge _ ca cb =
    match (ca, cb) with
    | Some x, Some y -> norm (x +. y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  { coefs = Imap.merge merge a.coefs b.coefs; const = a.const +. b.const }

let scale k a =
  if k = 0. then zero
  else { coefs = Imap.map (fun c -> k *. c) a.coefs; const = k *. a.const }

let neg a = scale (-1.) a
let sub a b = add a (neg b)
let add_constant e c = { e with const = e.const +. c }
let sum es = List.fold_left add zero es
let const_part e = e.const

let coef e v =
  match Imap.find_opt v e.coefs with
  | None -> 0.
  | Some c -> c

let terms e = Imap.bindings e.coefs
let size e = Imap.cardinal e.coefs
let is_constant e = Imap.is_empty e.coefs

let eval e value =
  Imap.fold (fun v c acc -> acc +. (c *. value v)) e.coefs e.const

let map_vars f e =
  Imap.fold (fun v c acc -> add_term acc (f v) c) e.coefs (constant e.const)

let equal a b = a.const = b.const && Imap.equal Float.equal a.coefs b.coefs

let pp ?name ppf e =
  let name v =
    match name with
    | Some f -> f v
    | None -> Printf.sprintf "x%d" v
  in
  let first = ref true in
  let pp_term v c =
    let sign = if c < 0. then "- " else if !first then "" else "+ " in
    let mag = Float.abs c in
    first := false;
    if mag = 1. then Fmt.pf ppf "%s%s " sign (name v)
    else Fmt.pf ppf "%s%g %s " sign mag (name v)
  in
  Imap.iter pp_term e.coefs;
  if e.const <> 0. || !first then
    Fmt.pf ppf "%s%g" (if e.const < 0. then "- " else if !first then "" else "+ ") (Float.abs e.const)
