type 'a t = { mutable prio : float array; mutable data : 'a array; mutable len : int }

let create () = { prio = [||]; data = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(parent) < h.prio.(i) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.len && h.prio.(l) > h.prio.(!best) then best := l;
  if r < h.len && h.prio.(r) > h.prio.(!best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let push h p x =
  if h.len = Array.length h.prio then begin
    let cap = if h.len = 0 then 16 else 2 * h.len in
    let prio = Array.make cap 0. and data = Array.make cap x in
    Array.blit h.prio 0 prio 0 h.len;
    Array.blit h.data 0 data 0 h.len;
    h.prio <- prio;
    h.data <- data
  end;
  h.prio.(h.len) <- p;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let max_priority h = if h.len = 0 then raise Not_found else h.prio.(0)

let pop h =
  if h.len = 0 then raise Not_found;
  let p = h.prio.(0) and x = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.prio.(0) <- h.prio.(h.len);
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  (p, x)
