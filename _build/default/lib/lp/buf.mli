(** Minimal growable array (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** [push b x] appends [x] and returns its index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
