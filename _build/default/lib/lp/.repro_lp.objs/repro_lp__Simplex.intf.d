lib/lp/simplex.mli: Format Standard_form
