lib/lp/solver.ml: Array Branch_bound Float Model Option Presolve Simplex Standard_form
