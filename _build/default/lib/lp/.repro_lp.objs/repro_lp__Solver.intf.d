lib/lp/solver.mli: Branch_bound Model Simplex
