lib/lp/lp_file.mli: Model
