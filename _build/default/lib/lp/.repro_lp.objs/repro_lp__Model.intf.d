lib/lp/model.mli: Format Linexpr
