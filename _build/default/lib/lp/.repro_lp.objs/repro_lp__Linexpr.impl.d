lib/lp/linexpr.ml: Float Fmt Int List Map Printf
