lib/lp/simplex.ml: Array Float Fmt List Model Printf Standard_form
