lib/lp/heap.mli:
