lib/lp/buf.ml: Array
