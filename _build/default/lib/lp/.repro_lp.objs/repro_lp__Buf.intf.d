lib/lp/buf.mli:
