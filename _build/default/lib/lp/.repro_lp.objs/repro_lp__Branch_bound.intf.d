lib/lp/branch_bound.mli: Format Model
