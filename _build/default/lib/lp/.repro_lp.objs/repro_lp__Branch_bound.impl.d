lib/lp/branch_bound.ml: Array Float Fmt Hashtbl Heap List Logs Model Option Simplex Standard_form Unix
