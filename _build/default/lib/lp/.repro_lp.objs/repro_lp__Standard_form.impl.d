lib/lp/standard_form.ml: Array Linexpr List Model
