lib/lp/model.ml: Array Buf Float Fmt Linexpr List Option Printf
