lib/lp/presolve.ml: Array Float Linexpr List Model
