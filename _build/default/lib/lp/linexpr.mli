(** Sparse linear expressions over integer-indexed decision variables.

    An expression is a finite map from variable indices to coefficients plus
    a constant term. All operations are purely functional. Coefficients that
    become exactly [0.] are dropped so that [terms] never reports spurious
    entries. *)

type t

(** The expression [0]. *)
val zero : t

(** [constant c] is the expression with constant term [c] and no variables. *)
val constant : float -> t

(** [var ?coef v] is [coef * x_v] (default coefficient [1.]). *)
val var : ?coef:float -> int -> t

(** [of_terms ?constant terms] builds an expression from a list of
    [(variable, coefficient)] pairs; duplicate variables are summed. *)
val of_terms : ?constant:float -> (int * float) list -> t

(** [add a b] is the sum of two expressions. *)
val add : t -> t -> t

(** [sub a b] is [a - b]. *)
val sub : t -> t -> t

(** [scale k a] multiplies every coefficient and the constant by [k]. *)
val scale : float -> t -> t

(** [add_term e v c] is [e + c * x_v]. *)
val add_term : t -> int -> float -> t

(** [add_constant e c] is [e + c]. *)
val add_constant : t -> float -> t

(** [sum es] adds a list of expressions. *)
val sum : t list -> t

(** [neg a] is [-a]. *)
val neg : t -> t

(** Constant term of the expression. *)
val const_part : t -> float

(** [coef e v] is the coefficient of variable [v] ([0.] if absent). *)
val coef : t -> int -> float

(** Sorted [(variable, coefficient)] pairs, zero coefficients dropped. *)
val terms : t -> (int * float) list

(** Number of variables with non-zero coefficient. *)
val size : t -> int

(** [is_constant e] holds when [e] has no variable terms. *)
val is_constant : t -> bool

(** [eval e value] evaluates [e] with [value v] giving each variable. *)
val eval : t -> (int -> float) -> float

(** [map_vars f e] renames variable [v] to [f v]; collisions are summed. *)
val map_vars : (int -> int) -> t -> t

(** Structural equality up to coefficient equality. *)
val equal : t -> t -> bool

val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
