(** CPLEX LP-format writer, for debugging models and interoperating with
    external solvers (the format Gurobi, CPLEX, SCIP, HiGHS and lp_solve
    all read). SOS1 groups are emitted in the standard [SOS] section, so
    a metaopt model dumped here can be loaded into Gurobi directly —
    useful for cross-checking this repository's solver substrate. *)

val to_string : Model.t -> string

val to_channel : out_channel -> Model.t -> unit

val write : string -> Model.t -> unit
(** [write path model] writes the model to a file. *)
