(* CPLEX LP file format. Identifier rules are stricter than our variable
   names (no leading digits, limited punctuation), so names are sanitized
   and deduplicated via an index suffix. *)

let sanitize name idx =
  let buf = Buffer.create (String.length name + 4) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  let s = if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "v" ^ s else s in
  Printf.sprintf "%s#%d" s idx

let var_name model v = sanitize (Model.var_name model v) v

let pp_terms buf model expr =
  let terms = Linexpr.terms expr in
  if terms = [] then Buffer.add_string buf "0 "
  else
    List.iteri
      (fun i (v, c) ->
        if c >= 0. then Buffer.add_string buf (if i = 0 then "" else "+ ")
        else Buffer.add_string buf "- ";
        Buffer.add_string buf (Printf.sprintf "%.12g %s " (Float.abs c) (var_name model v)))
      terms

let to_buffer buf model =
  let dir, obj = Model.objective model in
  Buffer.add_string buf
    (match dir with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  pp_terms buf model obj;
  (* the LP format has no objective constant; emit it as a comment *)
  if Linexpr.const_part obj <> 0. then
    Buffer.add_string buf
      (Printf.sprintf "\n\\ objective constant: %.12g" (Linexpr.const_part obj));
  Buffer.add_string buf "\nSubject To\n";
  for i = 0 to Model.num_constrs model - 1 do
    Buffer.add_string buf
      (Printf.sprintf " %s: " (sanitize (Model.constr_name model i) i));
    pp_terms buf model (Model.constr_expr model i);
    let rel =
      match Model.constr_sense model i with
      | Model.Le -> "<="
      | Model.Ge -> ">="
      | Model.Eq -> "="
    in
    Buffer.add_string buf
      (Printf.sprintf "%s %.12g\n" rel (Model.constr_rhs model i))
  done;
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Model.num_vars model - 1 do
    let lo = Model.var_lb model v and hi = Model.var_ub model v in
    let name = var_name model v in
    if lo = hi then Buffer.add_string buf (Printf.sprintf " %s = %.12g\n" name lo)
    else begin
      let lo_s =
        if lo = neg_infinity then "-inf" else Printf.sprintf "%.12g" lo
      in
      let hi_s = if hi = infinity then "+inf" else Printf.sprintf "%.12g" hi in
      Buffer.add_string buf (Printf.sprintf " %s <= %s <= %s\n" lo_s name hi_s)
    end
  done;
  let generals =
    List.filter
      (fun v -> Model.var_kind model v = Model.Integer)
      (List.init (Model.num_vars model) (fun v -> v))
  in
  let binaries =
    List.filter
      (fun v -> Model.var_kind model v = Model.Binary)
      (List.init (Model.num_vars model) (fun v -> v))
  in
  if generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (var_name model v)))
      generals
  end;
  if binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (var_name model v)))
      binaries
  end;
  let sos = Model.sos1_groups model in
  if Array.length sos > 0 then begin
    Buffer.add_string buf "SOS\n";
    Array.iteri
      (fun gi group ->
        Buffer.add_string buf (Printf.sprintf " sos%d: S1 ::" gi);
        Array.iteri
          (fun j v ->
            Buffer.add_string buf
              (Printf.sprintf " %s : %d" (var_name model v) (j + 1)))
          group;
        Buffer.add_char buf '\n')
      sos
  end;
  Buffer.add_string buf "End\n"

let to_string model =
  let buf = Buffer.create 4096 in
  to_buffer buf model;
  Buffer.contents buf

let to_channel oc model = output_string oc (to_string model)

let write path model =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc model)
