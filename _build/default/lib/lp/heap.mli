(** Binary max-heap keyed by float priorities. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

(** Highest priority currently in the heap. @raise Not_found when empty. *)
val max_priority : 'a t -> float

(** Pop the entry with the highest priority. @raise Not_found when empty. *)
val pop : 'a t -> float * 'a
