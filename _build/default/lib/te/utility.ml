type curve = (float * float) list (* (width, slope), slopes non-increasing *)

let curve segments =
  if segments = [] then invalid_arg "Utility.curve: empty";
  let rec check prev = function
    | [] -> ()
    | (width, slope) :: rest ->
        if width <= 0. then invalid_arg "Utility.curve: non-positive width";
        if slope < 0. then invalid_arg "Utility.curve: negative slope";
        if slope > prev +. 1e-12 then
          invalid_arg "Utility.curve: slopes must be non-increasing (concavity)";
        check slope rest
  in
  check infinity segments;
  segments

let linear ~slope ~cap = curve [ (cap, slope) ]

let span c = List.fold_left (fun acc (w, _) -> acc +. w) 0. c

let value c flow =
  let rec go acc remaining = function
    | [] -> acc
    | (width, slope) :: rest ->
        if remaining <= 0. then acc
        else
          let used = Float.min width remaining in
          go (acc +. (slope *. used)) (remaining -. used) rest
  in
  go 0. (Float.max 0. flow) c

type result = {
  total_utility : float;
  allocation : Allocation.t;
}

let solve pathset demand ~curves =
  let n = Pathset.num_pairs pathset in
  if Array.length curves <> n then
    invalid_arg "Utility.solve: one curve per pair required";
  let model = Model.create ~name:"utility" () in
  let vars = Mcf.add_flow_vars model pathset in
  let _ = Mcf.add_demand_constrs model pathset vars (Mcf.Const demand) in
  let _ = Mcf.add_capacity_constrs model pathset vars in
  (* segment variables: f_k = sum_i s_{k,i}, 0 <= s_{k,i} <= width_i;
     concavity (non-increasing slopes) makes the LP fill them in order *)
  let objective = ref Linexpr.zero in
  Array.iteri
    (fun k per_path ->
      if Array.length per_path > 0 then begin
        let total =
          Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) per_path))
        in
        let segments =
          List.mapi
            (fun i (width, slope) ->
              let s =
                Model.add_var ~name:(Printf.sprintf "u_%d_%d" k i) ~ub:width
                  model
              in
              objective := Linexpr.add_term !objective s slope;
              s)
            curves.(k)
        in
        let seg_sum =
          Linexpr.of_terms (List.map (fun s -> (s, 1.)) segments)
        in
        (* flow beyond the curve's span earns nothing; cap it so segment
           bookkeeping stays exact *)
        ignore (Model.add_constr model (Linexpr.sub total seg_sum) Model.Eq 0.)
      end)
    vars;
  Model.set_objective model Model.Maximize !objective;
  let r = Solver.solve_lp model in
  (match r.Solver.status with
  | Simplex.Optimal -> ()
  | _ -> failwith "Utility.solve: LP not optimal");
  {
    total_utility = r.Solver.objective;
    allocation = Mcf.allocation_of_primal pathset vars r.Solver.primal;
  }
