(** Flow assignments: the vector [f] of the paper (Table 1), with per-path
    resolution [f_k^p], plus feasibility validation used throughout the
    test suite. *)

type t = {
  pathset : Pathset.t;
  flows : float array array;  (** [flows.(k).(p)] — flow of pair k on path p *)
}

val zero : Pathset.t -> t

val flow_of_pair : t -> int -> float
(** [f_k], the total flow a pair carries. *)

val total_flow : t -> float
(** The max-flow objective: sum over pairs. *)

val edge_load : t -> float array
(** Load per edge implied by the per-path flows. *)

val merge : t -> t -> t
(** Pointwise sum — the "vector union" of POP (eq. 6).
    @raise Invalid_argument when the pathsets differ. *)

val check : t -> demand:Demand.t -> ?tol:float -> unit -> (unit, string) result
(** Validates the FeasibleFlow invariants (eq. 2): non-negativity,
    [f_k <= d_k], and edge loads within capacity. *)

val pp : Format.formatter -> t -> unit
