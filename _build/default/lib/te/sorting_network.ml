let comparators n =
  if n < 0 then invalid_arg "Sorting_network.comparators";
  let cs = ref [] in
  for round = 0 to n - 1 do
    let start = round mod 2 in
    let i = ref start in
    while !i + 1 < n do
      cs := (!i, !i + 1) :: !cs;
      i := !i + 2
    done
  done;
  List.rev !cs

let sort_floats a =
  let a = Array.copy a in
  List.iter
    (fun (i, j) ->
      if a.(i) > a.(j) then begin
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      end)
    (comparators (Array.length a));
  a

let encode model ~lo ~hi inputs =
  if hi < lo then invalid_arg "Sorting_network.encode: hi < lo";
  let big_m = hi -. lo in
  let wires = Array.copy inputs in
  List.iteri
    (fun idx (i, j) ->
      let a = wires.(i) and b = wires.(j) in
      let mx = Model.add_var ~name:(Printf.sprintf "snet_max_%d" idx) ~lb:lo ~ub:hi model in
      let mn = Model.add_var ~name:(Printf.sprintf "snet_min_%d" idx) ~lb:lo ~ub:hi model in
      let w = Model.add_var ~name:(Printf.sprintf "snet_sel_%d" idx) ~kind:Model.Binary model in
      (* mx >= a, mx >= b *)
      ignore (Model.add_constr model Linexpr.(sub (var mx) (var a)) Model.Ge 0.);
      ignore (Model.add_constr model Linexpr.(sub (var mx) (var b)) Model.Ge 0.);
      (* mx <= a + M w ; mx <= b + M (1 - w): forces mx = max(a, b) *)
      ignore
        (Model.add_constr model
           Linexpr.(sub (sub (var mx) (var a)) (var ~coef:big_m w))
           Model.Le 0.);
      ignore
        (Model.add_constr model
           Linexpr.(add (sub (var mx) (var b)) (var ~coef:big_m w))
           Model.Le big_m);
      (* mn = a + b - mx *)
      ignore
        (Model.add_constr model
           Linexpr.(sub (add (var mn) (var mx)) (add (var a) (var b)))
           Model.Eq 0.);
      wires.(i) <- mn;
      wires.(j) <- mx)
    (comparators (Array.length inputs));
  wires

let kth_largest model ~lo ~hi inputs k =
  let n = Array.length inputs in
  if k < 1 || k > n then invalid_arg "Sorting_network.kth_largest";
  let sorted = encode model ~lo ~hi inputs in
  sorted.(n - k)
