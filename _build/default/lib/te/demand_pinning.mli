(** Demand Pinning (paper eq. 4/5) — the production heuristic of
    BLASTSHIELD [21].

    Phase 1 pins every demand at or below the threshold [T_d] onto its
    shortest path in full. Phase 2 jointly routes the remaining demands
    over their path sets with the residual capacities.

    Pinning can be infeasible (paper §5): several small demands sharing a
    link on their shortest paths can overload it. The simulation reports
    this explicitly rather than silently clipping. *)

type result =
  | Feasible of {
      total : float;  (** pinned + residual flow *)
      pinned_flow : float;
      allocation : Allocation.t;
      pinned : bool array;  (** per pair: did phase 1 pin it? *)
    }
  | Infeasible_pinning of {
      edge : Graph.edge;
      load : float;
      capacity : float;
    }

val pins : threshold:float -> float -> bool
(** The pinning predicate: [0 < d <= threshold] ("at or below", Fig 1). *)

val solve :
  ?capacities:float array -> Pathset.t -> threshold:float -> Demand.t -> result
(** [capacities] overrides the graph's per-edge capacities (used by the
    topology-change adversary, {!Repro_metaopt.Capacity_adversary}). *)

val total_or_zero : result -> float
(** Heuristic value; 0 for infeasible pinnings (so searches avoid the
    infeasible region rather than rewarding it — see evaluate oracle). *)

val default_threshold_fraction : float
(** The paper's default: 5% of link capacity (§4 "Methodology"). *)
