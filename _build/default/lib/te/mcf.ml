type flow_vars = Model.var array array

type demand_bound = Const of float array | Var of Model.var array

let everything _ = true

let add_flow_vars ?(prefix = "f") ?(only = everything) model pathset =
  let space = Pathset.space pathset in
  Array.init (Pathset.num_pairs pathset) (fun k ->
      if not (only k) then [||]
      else
        let s, d = Demand.pair space k in
        Array.init
          (Array.length (Pathset.paths_of_pair pathset k))
          (fun p ->
            Model.add_var ~name:(Printf.sprintf "%s_%d_%d__p%d" prefix s d p)
              model))

let pair_flow_expr vars k =
  Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) vars.(k)))

let add_demand_constrs ?(only = everything) model pathset vars bound =
  Array.init (Pathset.num_pairs pathset) (fun k ->
      if (not (only k)) || Array.length vars.(k) = 0 then None
      else
        let expr = pair_flow_expr vars k in
        let expr, rhs =
          match bound with
          | Const d -> (expr, d.(k))
          | Var d -> (Linexpr.add_term expr d.(k) (-1.), 0.)
        in
        Some
          (Model.add_constr ~name:(Printf.sprintf "dem_%d" k) model expr
             Model.Le rhs))

let add_capacity_constrs ?(scale = 1.) model pathset vars =
  let g = Pathset.graph pathset in
  Array.init (Graph.num_edges g) (fun e ->
      let terms =
        List.filter_map
          (fun (k, p) ->
            if Array.length vars.(k) > p then Some (vars.(k).(p), 1.) else None)
          (Pathset.pairs_using_edge pathset e)
      in
      Model.add_constr ~name:(Printf.sprintf "cap_%d" e) model
        (Linexpr.of_terms terms) Model.Le
        (scale *. Graph.capacity g e))

let total_flow_expr vars =
  Linexpr.of_terms
    (Array.to_list vars
    |> List.concat_map (fun per_path ->
           Array.to_list (Array.map (fun v -> (v, 1.)) per_path)))

let add_feasible_flow ?prefix ?(only = everything) ?cap_scale model pathset
    bound =
  let vars = add_flow_vars ?prefix ~only model pathset in
  let _ = add_demand_constrs ~only model pathset vars bound in
  let _ = add_capacity_constrs ?scale:cap_scale model pathset vars in
  vars

let allocation_of_primal pathset vars primal =
  {
    Allocation.pathset;
    flows =
      Array.init (Pathset.num_pairs pathset) (fun k ->
          let expected = Array.length (Pathset.paths_of_pair pathset k) in
          if Array.length vars.(k) = expected then
            Array.map (fun v -> Float.max 0. primal.(v)) vars.(k)
          else Array.make expected 0.);
  }
