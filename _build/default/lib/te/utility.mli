(** Concave piecewise-linear utility objectives — the third TE objective
    family the paper cites (§2: "utility curves [22]", BwE-style
    bandwidth functions).

    A utility curve maps a pair's carried flow to a value; concavity
    (diminishing returns) lets the maximization stay an LP: the flow is
    decomposed into segments with decreasing marginal utility, and the LP
    fills segments greedily by itself. *)

type curve
(** A concave piecewise-linear, non-decreasing curve through the origin. *)

val curve : (float * float) list -> curve
(** [curve segments] — each [(width, slope)] pair is a segment of the
    given width and marginal utility; slopes must be non-increasing and
    non-negative, widths positive.
    @raise Invalid_argument otherwise. *)

val linear : slope:float -> cap:float -> curve
(** One segment: utility [slope * min(flow, cap)]. *)

val value : curve -> float -> float
(** Evaluate the curve at a flow amount (clamped to the curve's span). *)

val span : curve -> float
(** Total width — flows beyond it earn no further utility. *)

type result = {
  total_utility : float;
  allocation : Allocation.t;
}

val solve : Pathset.t -> Demand.t -> curves:curve array -> result
(** Maximize the sum of per-pair utilities over FeasibleFlow. [curves]
    has one entry per pair of the pathset's demand space. *)
