(** Multi-commodity-flow constraint builder: FeasibleFlow (paper eq. 2)
    emitted into an {!Repro_lp.Model}.

    The builder is deliberately compositional so that the same pieces
    serve the direct solves (OptMaxFlow, DP's residual problem, POP's
    per-partition problems, where demands are constants) and the
    metaoptimization (where demands are outer {e variables} of the host
    model). The [only] filter restricts to a subset of pairs (POP
    partitions); [scale] shrinks capacities (POP resource splitting). *)

type flow_vars = Model.var array array
(** [vars.(k).(p)] — flow variable of pair [k] on its path [p]; pairs
    excluded by [only] or unroutable get an empty inner array. *)

type demand_bound =
  | Const of float array  (** demands as constants: [f_k <= d_k] rhs *)
  | Var of Model.var array
      (** demands as outer variables: [f_k - d_k <= 0] rows *)

val add_flow_vars :
  ?prefix:string -> ?only:(int -> bool) -> Model.t -> Pathset.t -> flow_vars

val add_demand_constrs :
  ?only:(int -> bool) ->
  Model.t ->
  Pathset.t ->
  flow_vars ->
  demand_bound ->
  Model.constr option array
(** One row per included routable pair: total pair flow at most demand. *)

val add_capacity_constrs :
  ?scale:float -> Model.t -> Pathset.t -> flow_vars -> Model.constr array
(** One row per edge: load from the given flow variables at most
    [scale * capacity] (default scale 1). Edges unused by any variable
    still get a (trivial) row so indices align with edge ids. *)

val total_flow_expr : flow_vars -> Linexpr.t
(** The OptMaxFlow objective (eq. 3): sum of all flows. *)

(** Bundles the above: flow variables + demand rows + capacity rows. *)
val add_feasible_flow :
  ?prefix:string ->
  ?only:(int -> bool) ->
  ?cap_scale:float ->
  Model.t ->
  Pathset.t ->
  demand_bound ->
  flow_vars

val allocation_of_primal :
  Pathset.t -> flow_vars -> float array -> Allocation.t
(** Read a solved model's primal values back into an {!Allocation.t}. *)
