lib/te/demand_pinning.ml: Allocation Array Float Graph Opt_max_flow Pathset
