lib/te/demand_pinning.mli: Allocation Demand Graph Pathset
