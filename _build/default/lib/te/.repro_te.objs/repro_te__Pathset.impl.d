lib/te/pathset.ml: Array Demand Graph List Paths
