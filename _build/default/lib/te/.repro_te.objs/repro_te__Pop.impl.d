lib/te/pop.ml: Allocation Array Graph List Opt_max_flow Pathset Rng
