lib/te/sorting_network.ml: Array Linexpr List Model Printf
