lib/te/allocation.ml: Array Demand Fmt Format Graph Pathset Printf
