lib/te/utility.ml: Allocation Array Float Linexpr List Mcf Model Pathset Printf Simplex Solver
