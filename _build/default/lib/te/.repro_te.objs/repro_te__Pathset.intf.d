lib/te/pathset.mli: Demand Graph Paths
