lib/te/max_min_fairness.ml: Allocation Array Float Fun Linexpr List Mcf Model Pathset Simplex Solver
