lib/te/opt_max_flow.mli: Allocation Demand Pathset
