lib/te/mcf.ml: Allocation Array Demand Float Graph Linexpr List Model Pathset Printf
