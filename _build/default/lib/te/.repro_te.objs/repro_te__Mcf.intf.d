lib/te/mcf.mli: Allocation Linexpr Model Pathset
