lib/te/opt_max_flow.ml: Allocation Array Graph Linexpr List Mcf Model Pathset Repro_lp Solver
