lib/te/pop.mli: Allocation Demand Pathset Rng
