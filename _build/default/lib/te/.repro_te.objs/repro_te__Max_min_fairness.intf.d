lib/te/max_min_fairness.mli: Allocation Demand Pathset
