lib/te/sorting_network.mli: Model
