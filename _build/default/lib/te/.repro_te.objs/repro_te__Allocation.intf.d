lib/te/allocation.mli: Demand Format Pathset
