lib/te/utility.mli: Allocation Demand Pathset
