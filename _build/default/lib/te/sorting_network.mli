(** Sorting networks (paper §3.2): the device used to optimize against a
    tail percentile of POP's random outcomes — a fixed comparator network
    is data-oblivious, so each comparator can be encoded with linear
    constraints plus one binary, letting the metaoptimization "bubble up
    the worst outcomes" of several random partition instantiations.

    We use the odd–even transposition network: O(n^2) comparators, valid
    for any [n], and trivially correct (it is parallel bubble sort) — at
    the instance counts the paper uses (5–10) network size is irrelevant. *)

val comparators : int -> (int * int) list
(** [(i, j)] with [i < j]: after the comparator, wire [i] holds the min
    and wire [j] the max; applying all in order sorts ascending. *)

val sort_floats : float array -> float array
(** Apply the network to concrete values (reference semantics; tests
    check it against [Array.sort]). *)

(** [encode model ~lo ~hi inputs] emits the network over [inputs]
    (each assumed within [lo, hi]) and returns the ascending output
    variables. Adds one binary and four rows per comparator (big-M
    max/min encoding). *)
val encode :
  Model.t -> lo:float -> hi:float -> Model.var array -> Model.var array

(** [kth_largest model ~lo ~hi inputs k] — convenience: the output wire
    holding the k-th largest input (k = 1 is the maximum). *)
val kth_largest :
  Model.t -> lo:float -> hi:float -> Model.var array -> int -> Model.var
