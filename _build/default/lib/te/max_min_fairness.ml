type result = {
  allocation : Allocation.t;
  levels : float array;
  rounds : int;
}

(* Build the common LP skeleton: flow variables for every routable pair,
   capacity rows, and per-pair demand rows. Frozen pairs have their total
   flow pinned to their frozen level. *)
let base_model pathset ~demand ~frozen ~levels =
  let model = Model.create ~name:"max_min" () in
  let vars = Mcf.add_flow_vars model pathset in
  let _ = Mcf.add_capacity_constrs model pathset vars in
  Array.iteri
    (fun k per_path ->
      if Array.length per_path > 0 then begin
        let total =
          Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) per_path))
        in
        if frozen.(k) then
          ignore (Model.add_constr model total Model.Eq levels.(k))
        else ignore (Model.add_constr model total Model.Le demand.(k))
      end)
    vars;
  (model, vars)

let active pathset demand frozen k =
  (not frozen.(k)) && demand.(k) > 0. && Pathset.routable pathset k

let solve pathset demand =
  let n = Pathset.num_pairs pathset in
  let frozen = Array.make n false in
  let levels = Array.make n 0. in
  (* unroutable or zero-demand pairs are frozen at 0 immediately *)
  for k = 0 to n - 1 do
    if not (active pathset demand frozen k) then frozen.(k) <- true
  done;
  let rounds = ref 0 in
  let last_alloc = ref (Allocation.zero pathset) in
  while Array.exists not frozen && !rounds < n + 1 do
    incr rounds;
    (* phase A: maximize the common level t of active pairs *)
    let model, vars = base_model pathset ~demand ~frozen ~levels in
    let t = Model.add_var ~name:"t" model in
    Array.iteri
      (fun k per_path ->
        if active pathset demand frozen k then begin
          let total =
            Linexpr.of_terms
              (Array.to_list (Array.map (fun v -> (v, 1.)) per_path))
          in
          ignore
            (Model.add_constr model (Linexpr.add_term total t (-1.)) Model.Ge 0.);
          (* t itself must stay achievable: t <= d_k would freeze k at d_k;
             allow t beyond d_k is meaningless for k, so cap t per-pair via
             the demand row only (f_k <= d_k already bounds f_k) *)
          ignore (Model.add_constr model (Linexpr.var t) Model.Le demand.(k))
        end)
      vars;
    Model.set_objective model Model.Maximize (Linexpr.var t);
    let r = Solver.solve_lp model in
    if r.Solver.status <> Simplex.Optimal then
      failwith "Max_min_fairness.solve: level LP not optimal";
    let t_star = r.Solver.objective in
    (* phase B: which active pairs are stuck at t_star? First a bulk probe
       (maximize total active flow at level >= t_star); pairs strictly
       above t_star there are provably not blocked. *)
    let model_b, vars_b = base_model pathset ~demand ~frozen ~levels in
    let active_exprs =
      Array.mapi
        (fun k per_path ->
          if active pathset demand frozen k then begin
            let total =
              Linexpr.of_terms
                (Array.to_list (Array.map (fun v -> (v, 1.)) per_path))
            in
            ignore
              (Model.add_constr model_b total Model.Ge
                 (Float.min t_star demand.(k)));
            Some total
          end
          else None)
        vars_b
    in
    Model.set_objective model_b Model.Maximize
      (Linexpr.sum (List.filter_map Fun.id (Array.to_list active_exprs)));
    let rb = Solver.solve_lp model_b in
    let bulk k =
      match active_exprs.(k) with
      | Some expr -> Linexpr.eval expr (fun v -> rb.Solver.primal.(v))
      | None -> 0.
    in
    let tol = 1e-6 *. Float.max 1. t_star in
    let froze_any = ref false in
    for k = 0 to n - 1 do
      if active pathset demand frozen k then
        if demand.(k) <= t_star +. tol then begin
          (* demand-saturated *)
          frozen.(k) <- true;
          levels.(k) <- demand.(k);
          froze_any := true
        end
        else if bulk k <= t_star +. tol then begin
          (* candidate capacity-block: confirm with an individual probe *)
          let model_c, vars_c = base_model pathset ~demand ~frozen ~levels in
          Array.iteri
            (fun j per_path ->
              if active pathset demand frozen j then begin
                let total =
                  Linexpr.of_terms
                    (Array.to_list (Array.map (fun v -> (v, 1.)) per_path))
                in
                if j = k then
                  Model.set_objective model_c Model.Maximize total
                else
                  ignore
                    (Model.add_constr model_c total Model.Ge
                       (Float.min t_star demand.(j)))
              end)
            vars_c;
          let rc = Solver.solve_lp model_c in
          if rc.Solver.objective <= t_star +. tol then begin
            frozen.(k) <- true;
            levels.(k) <- t_star;
            froze_any := true
          end
        end
    done;
    (* safety: always make progress *)
    if not !froze_any then
      for k = 0 to n - 1 do
        if active pathset demand frozen k then begin
          frozen.(k) <- true;
          levels.(k) <- Float.min t_star demand.(k)
        end
      done;
    last_alloc := Mcf.allocation_of_primal pathset vars r.Solver.primal
  done;
  (* final allocation realizing the frozen levels exactly *)
  let model, vars = base_model pathset ~demand ~frozen:(Array.map (fun _ -> true) levels) ~levels in
  Model.set_objective model Model.Maximize Linexpr.zero;
  let r = Solver.solve_lp model in
  let allocation =
    if r.Solver.status = Simplex.Optimal then
      Mcf.allocation_of_primal pathset vars r.Solver.primal
    else !last_alloc
  in
  { allocation; levels; rounds = !rounds }

let is_max_min_fair pathset demand levels =
  let n = Pathset.num_pairs pathset in
  let tol = 1e-5 in
  let ok = ref true in
  for k = 0 to n - 1 do
    if !ok && Pathset.routable pathset k && demand.(k) > levels.(k) +. tol then begin
      (* try to push k above its level while no pair at or below k's level
         drops below its own level *)
      let frozen = Array.make n false in
      let model, vars = base_model pathset ~demand ~frozen ~levels:(Array.make n 0.) in
      Array.iteri
        (fun j per_path ->
          if Array.length per_path > 0 then begin
            let total =
              Linexpr.of_terms
                (Array.to_list (Array.map (fun v -> (v, 1.)) per_path))
            in
            if j = k then Model.set_objective model Model.Maximize total
            else if levels.(j) <= levels.(k) +. tol then
              (* pairs at or below k's level must not pay for k's gain;
                 strictly higher pairs may (that is fair) *)
              ignore (Model.add_constr model total Model.Ge levels.(j))
          end)
        vars;
      let r = Solver.solve_lp model in
      if
        r.Solver.status = Simplex.Optimal
        && r.Solver.objective > levels.(k) +. (10. *. tol)
      then ok := false
    end
  done;
  !ok
