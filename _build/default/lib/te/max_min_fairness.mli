(** Max–min fair flow allocation — the alternative TE objective the paper
    cites for SWAN/B4 (§2: "max-min fairness [15, 16]").

    Progressive filling over the path-based FeasibleFlow polytope: raise
    the common allocation level [t] of all unfrozen pairs until some pair
    saturates (by demand or by capacity), freeze the saturated pairs at
    their level, and repeat. The result is the lexicographically-maximal
    sorted allocation vector.

    This substrate lets downstream users compare heuristics against a
    fairness-oriented optimum; the metaoptimization itself (eq. 1) needs
    a single-LP follower, so the adversary modules use the max-flow
    objective, as does the paper's evaluation. *)

type result = {
  allocation : Allocation.t;
  levels : float array;  (** per pair: the frozen max–min level *)
  rounds : int;  (** progressive-filling iterations *)
}

val solve : Pathset.t -> Demand.t -> result
(** Demands with zero volume or no path receive level 0. *)

val is_max_min_fair : Pathset.t -> Demand.t -> float array -> bool
(** Certificate check used by tests: no pair's level can be increased
    without decreasing the level of a pair at or below it (verified by
    per-pair improvement LPs). *)
