type t = {
  space : Demand.space;
  paths : Paths.path array array;
  incidence : (int * int) list array; (* per edge: (pair, path idx) *)
}

let compute space ~k =
  if k <= 0 then invalid_arg "Pathset.compute: k <= 0";
  let g = space.Demand.graph in
  let paths =
    Array.map
      (fun (s, d) -> Array.of_list (Paths.k_shortest g ~k ~src:s ~dst:d))
      space.Demand.pairs
  in
  let incidence = Array.make (Graph.num_edges g) [] in
  Array.iteri
    (fun pair pset ->
      Array.iteri
        (fun pi path ->
          Array.iter
            (fun e -> incidence.(e) <- (pair, pi) :: incidence.(e))
            path)
        pset)
    paths;
  { space; paths; incidence = Array.map List.rev incidence }

let space t = t.space
let graph t = t.space.Demand.graph
let num_pairs t = Array.length t.paths
let routable t k = Array.length t.paths.(k) > 0

let shortest t k =
  if not (routable t k) then invalid_arg "Pathset.shortest: unroutable pair";
  t.paths.(k).(0)

let paths_of_pair t k = t.paths.(k)

let fold_path_edges t k p ~init ~f = Array.fold_left f init t.paths.(k).(p)

let pairs_using_edge t e = t.incidence.(e)
