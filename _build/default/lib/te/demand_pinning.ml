type result =
  | Feasible of {
      total : float;
      pinned_flow : float;
      allocation : Allocation.t;
      pinned : bool array;
    }
  | Infeasible_pinning of {
      edge : Graph.edge;
      load : float;
      capacity : float;
    }

let default_threshold_fraction = 0.05

let pins ~threshold d = d > 0. && d <= threshold

let solve ?capacities pathset ~threshold demand =
  let g = Pathset.graph pathset in
  let capacity_of =
    match capacities with
    | Some caps -> fun e -> caps.(e)
    | None -> Graph.capacity g
  in
  let n_pairs = Pathset.num_pairs pathset in
  let pinned = Array.make n_pairs false in
  let residual = Array.init (Graph.num_edges g) capacity_of in
  let pinned_alloc = Allocation.zero pathset in
  let pinned_flow = ref 0. in
  let overload = ref None in
  for k = 0 to n_pairs - 1 do
    if pins ~threshold demand.(k) && Pathset.routable pathset k then begin
      pinned.(k) <- true;
      pinned_flow := !pinned_flow +. demand.(k);
      pinned_alloc.Allocation.flows.(k).(0) <- demand.(k);
      Array.iter
        (fun e ->
          residual.(e) <- residual.(e) -. demand.(k);
          if residual.(e) < -1e-9 && !overload = None then overload := Some e)
        (Pathset.shortest pathset k)
    end
  done;
  match !overload with
  | Some edge ->
      Infeasible_pinning
        {
          edge;
          load = capacity_of edge -. residual.(edge);
          capacity = capacity_of edge;
        }
  | None ->
      let only k = not pinned.(k) in
      let residual = Array.map (Float.max 0.) residual in
      let r = Opt_max_flow.residual_capacity_solve pathset demand ~only ~residual in
      Feasible
        {
          total = !pinned_flow +. r.Opt_max_flow.total;
          pinned_flow = !pinned_flow;
          allocation = Allocation.merge pinned_alloc r.Opt_max_flow.allocation;
          pinned;
        }

let total_or_zero = function
  | Feasible { total; _ } -> total
  | Infeasible_pinning _ -> 0.
