type t = {
  pathset : Pathset.t;
  flows : float array array;
}

let zero pathset =
  {
    pathset;
    flows =
      Array.init (Pathset.num_pairs pathset) (fun k ->
          Array.make (Array.length (Pathset.paths_of_pair pathset k)) 0.);
  }

let flow_of_pair t k = Array.fold_left ( +. ) 0. t.flows.(k)

let total_flow t =
  let acc = ref 0. in
  Array.iter (Array.iter (fun f -> acc := !acc +. f)) t.flows;
  !acc

let edge_load t =
  let g = Pathset.graph t.pathset in
  let load = Array.make (Graph.num_edges g) 0. in
  Array.iteri
    (fun k per_path ->
      Array.iteri
        (fun p f ->
          if f <> 0. then
            ignore
              (Pathset.fold_path_edges t.pathset k p ~init:() ~f:(fun () e ->
                   load.(e) <- load.(e) +. f)))
        per_path)
    t.flows;
  load

let merge a b =
  if a.pathset != b.pathset then invalid_arg "Allocation.merge: pathset mismatch";
  {
    pathset = a.pathset;
    flows = Array.mapi (fun k fa -> Array.mapi (fun p v -> v +. b.flows.(k).(p)) fa) a.flows;
  }

let check t ~demand ?(tol = 1e-6) () =
  let g = Pathset.graph t.pathset in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    Array.iteri
      (fun k per_path ->
        Array.iteri
          (fun p f ->
            if f < -.tol then
              raise (Bad (Printf.sprintf "negative flow %g on pair %d path %d" f k p)))
          per_path;
        let fk = flow_of_pair t k in
        if fk > demand.(k) +. tol then
          raise
            (Bad
               (Printf.sprintf "pair %d carries %g > demand %g" k fk demand.(k))))
      t.flows;
    let load = edge_load t in
    Array.iteri
      (fun e l ->
        if l > Graph.capacity g e +. tol then
          raise
            (Bad
               (Printf.sprintf "edge %d loaded %g > capacity %g" e l
                  (Graph.capacity g e))))
      load;
    Ok ()
  with Bad s -> err "%s" s

let pp ppf t =
  let space = Pathset.space t.pathset in
  Fmt.pf ppf "@[<v>total flow %g@ " (total_flow t);
  Array.iteri
    (fun k per_path ->
      let s, d = Demand.pair space k in
      Array.iteri
        (fun p f -> if f > 1e-9 then Fmt.pf ppf "%d->%d path#%d: %g@ " s d p f)
        per_path)
    t.flows;
  Fmt.pf ppf "@]"
