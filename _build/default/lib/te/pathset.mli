(** Pre-configured path sets: the [P] of the paper's TE formulation.

    For every pair of the demand space this holds up to [k] loopless
    shortest paths (Yen), with the pair's shortest path first — the path
    Demand Pinning pins onto. Pairs with no path (possible in graphs with
    unidirectional links, e.g. the Fig 1 triangle) get an empty set and
    carry no flow in any formulation. *)

type t

val compute : Demand.space -> k:int -> t
(** @raise Invalid_argument if [k <= 0]. *)

val space : t -> Demand.space
val graph : t -> Graph.t
val num_pairs : t -> int
val routable : t -> int -> bool
val shortest : t -> int -> Paths.path
(** The pinned path of a pair. @raise Invalid_argument if unroutable. *)

val paths_of_pair : t -> int -> Paths.path array

val fold_path_edges :
  t -> int -> int -> init:'a -> f:('a -> Graph.edge -> 'a) -> 'a
(** Fold over edges of path [p] of pair [k]. *)

val pairs_using_edge : t -> Graph.edge -> (int * int) list
(** All (pair, path index) whose path traverses the edge — the capacity
    constraint incidence. Computed once at [compute] time. *)
