(** The KKT rewrite (paper §3.1, Fig 2): replace an inner convex follower
    by its first-order optimality conditions inside the host model.

    For the follower [max c.x s.t. Ax + G theta <= / = b, x >= 0] the
    emitted system is:

    - primal feasibility: [Ax + G theta + s = b], slack [s >= 0] for
      inequality rows (equality rows keep their [=]);
    - dual feasibility: [lambda >= 0] per inequality row, free [nu] per
      equality row, [mu >= 0] per inner variable bound;
    - stationarity: [c_j - sum_i dual_i a_ij + mu_j = 0] for every j;
    - complementary slackness: [lambda_i * s_i = 0] and [mu_j * x_j = 0],
      encoded as SOS1 pairs — the multiplicative constraints that the
      paper identifies as the computational bottleneck (Fig 6).

    Any assignment satisfying the emitted constraints has [x] optimal for
    the follower given the host's outer values, so [value] can be used
    as the follower's optimum inside the host objective — with a minus
    sign this is what pins [Heuristic(I)] in eq. (1).

    Correctness relies on Slater/strong duality, which holds for every LP
    with a feasible point; if the follower is infeasible for some outer
    assignment, the KKT system is infeasible there too, excluding that
    input (the desired behaviour for e.g. infeasible DP pinnings, §5). *)

type emitted = {
  x : Model.var array;  (** host copies of the inner variables *)
  row_duals : Model.var array;  (** per row, aligned with the row list *)
  row_slacks : Model.var option array;  (** [Some s] for inequality rows *)
  bound_duals : Model.var array;  (** [mu], per inner variable *)
  value : Linexpr.t;  (** [c . x] — the follower's optimal value *)
  num_complementarity : int;  (** SOS1 pairs added *)
}

val emit : Model.t -> Inner_problem.t -> emitted
