type goalpost = {
  reference : float array;
  distance : float;
  relative : bool;
  pairs : int list option;
}

type intra = {
  terms : (int * float) list;
  avg_coef : float;
  sense : Model.sense;
  bound : float;
}

type exclusion = {
  center : float array;
  radius : float;
}

type t = {
  lower : float array option;
  upper : float array option;
  goalposts : goalpost list;
  intra : intra list;
  exclusions : exclusion list;
}

let none =
  { lower = None; upper = None; goalposts = []; intra = []; exclusions = [] }

let exclude_ball ~center ~radius =
  if radius <= 0. then invalid_arg "Input_constraints.exclude_ball: radius <= 0";
  { none with exclusions = [ { center = Array.copy center; radius } ] }

let goalpost ?pairs ~reference ~distance ~relative () =
  { none with goalposts = [ { reference; distance; relative; pairs } ] }

let box ?lower ?upper () = { none with lower; upper }

let within_factor_of_average ~num_pairs ~factor =
  let intra =
    List.init num_pairs (fun k ->
        { terms = [ (k, 1.) ]; avg_coef = -.factor; sense = Model.Le; bound = 0. })
  in
  { none with intra }

let hose ~space ~egress ~ingress =
  let n = Graph.num_nodes space.Demand.graph in
  if Array.length egress <> n || Array.length ingress <> n then
    invalid_arg "Input_constraints.hose: need one cap per node";
  let rows_for ~select caps =
    List.filter_map
      (fun node ->
        let terms = ref [] in
        Array.iteri
          (fun k (s, d) -> if select s d = node then terms := (k, 1.) :: !terms)
          space.Demand.pairs;
        if !terms = [] then None
        else
          Some
            { terms = !terms; avg_coef = 0.; sense = Model.Le; bound = caps.(node) })
      (List.init n (fun v -> v))
  in
  {
    none with
    intra =
      rows_for ~select:(fun s _ -> s) egress
      @ rows_for ~select:(fun _ d -> d) ingress;
  }

let combine a b =
  let merge_bound f x y =
    match (x, y) with
    | None, z | z, None -> z
    | Some x, Some y -> Some (Array.map2 f x y)
  in
  {
    lower = merge_bound Float.max a.lower b.lower;
    upper = merge_bound Float.min a.upper b.upper;
    goalposts = a.goalposts @ b.goalposts;
    intra = a.intra @ b.intra;
    exclusions = a.exclusions @ b.exclusions;
  }

let goalpost_interval gp k =
  let r = gp.reference.(k) in
  let d = if gp.relative then gp.distance *. r else gp.distance in
  (r -. d, r +. d)

let goalpost_pairs gp =
  match gp.pairs with
  | Some pairs -> pairs
  | None -> List.init (Array.length gp.reference) (fun k -> k)

let apply model ~demand_vars t =
  let n = Array.length demand_vars in
  let tighten k lo hi =
    let cur_lo = Model.var_lb model demand_vars.(k)
    and cur_hi = Model.var_ub model demand_vars.(k) in
    Model.set_var_bounds model demand_vars.(k) ~lb:(Float.max cur_lo lo)
      ~ub:(Float.min cur_hi hi)
  in
  Option.iter (fun lb -> Array.iteri (fun k v -> tighten k v infinity) lb) t.lower;
  Option.iter (fun ub -> Array.iteri (fun k v -> tighten k neg_infinity v) ub) t.upper;
  List.iter
    (fun gp ->
      List.iter
        (fun k ->
          let lo, hi = goalpost_interval gp k in
          tighten k (Float.max 0. lo) hi)
        (goalpost_pairs gp))
    t.goalposts;
  let avg_expr =
    Linexpr.of_terms
      (Array.to_list (Array.map (fun v -> (v, 1. /. float_of_int n)) demand_vars))
  in
  List.iter
    (fun ic ->
      let expr =
        Linexpr.add
          (Linexpr.of_terms (List.map (fun (k, c) -> (demand_vars.(k), c)) ic.terms))
          (Linexpr.scale ic.avg_coef avg_expr)
      in
      ignore (Model.add_constr ~name:"intra" model expr ic.sense ic.bound))
    t.intra;
  (* exclusions (§5 "diverse bad inputs"): at least one coordinate must
     escape the forbidden ball. One indicator binary per feasible escape
     half-space, big-M'd against the variable's own (finite) bounds. *)
  List.iter
    (fun ex ->
      let escapes = ref [] in
      Array.iteri
        (fun k v ->
          let c = ex.center.(k) in
          let lo = Model.var_lb model v and hi = Model.var_ub model v in
          (* escape above: y = 1 forces d_k >= c + radius *)
          if hi >= c +. ex.radius && lo > neg_infinity then begin
            let y =
              Model.add_var
                ~name:(Printf.sprintf "excl_hi_%d" k)
                ~kind:Model.Binary model
            in
            let big_m = c +. ex.radius -. lo in
            (* d_k >= lo + (c + radius - lo) y *)
            ignore
              (Model.add_constr model
                 (Linexpr.of_terms [ (v, 1.); (y, -.big_m) ])
                 Model.Ge lo);
            escapes := y :: !escapes
          end;
          (* escape below: y = 1 forces d_k <= c - radius *)
          if lo <= c -. ex.radius && hi < infinity then begin
            let y =
              Model.add_var
                ~name:(Printf.sprintf "excl_lo_%d" k)
                ~kind:Model.Binary model
            in
            let big_m = hi -. (c -. ex.radius) in
            (* d_k <= hi - (hi - c + radius) y *)
            ignore
              (Model.add_constr model
                 (Linexpr.of_terms [ (v, 1.); (y, big_m) ])
                 Model.Le hi);
            escapes := y :: !escapes
          end)
        demand_vars;
      match !escapes with
      | [] ->
          invalid_arg
            "Input_constraints.apply: exclusion ball covers the whole box"
      | ys ->
          ignore
            (Model.add_constr ~name:"excl_escape" model
               (Linexpr.of_terms (List.map (fun y -> (y, 1.)) ys))
               Model.Ge 1.))
    t.exclusions

let satisfied ?(tol = 1e-6) t d =
  let n = Array.length d in
  let box_ok =
    (match t.lower with
    | None -> true
    | Some lb -> Array.for_all2 (fun v b -> v >= b -. tol) d lb)
    &&
    match t.upper with
    | None -> true
    | Some ub -> Array.for_all2 (fun v b -> v <= b +. tol) d ub
  in
  let gp_ok =
    List.for_all
      (fun gp ->
        List.for_all
          (fun k ->
            let lo, hi = goalpost_interval gp k in
            d.(k) >= lo -. tol && d.(k) <= hi +. tol)
          (goalpost_pairs gp))
      t.goalposts
  in
  let avg = if n = 0 then 0. else Array.fold_left ( +. ) 0. d /. float_of_int n in
  let intra_ok =
    List.for_all
      (fun ic ->
        let lhs =
          List.fold_left (fun acc (k, c) -> acc +. (c *. d.(k))) 0. ic.terms
          +. (ic.avg_coef *. avg)
        in
        match ic.sense with
        | Model.Le -> lhs <= ic.bound +. tol
        | Model.Ge -> lhs >= ic.bound -. tol
        | Model.Eq -> Float.abs (lhs -. ic.bound) <= tol)
      t.intra
  in
  let excl_ok =
    List.for_all
      (fun ex ->
        let worst = ref 0. in
        Array.iteri
          (fun k v ->
            let dev = Float.abs (v -. ex.center.(k)) in
            if dev > !worst then worst := dev)
          d;
        !worst >= ex.radius -. tol)
      t.exclusions
  in
  box_ok && gp_ok && intra_ok && excl_ok

let project t d =
  let d = Array.copy d in
  let clamp k lo hi = d.(k) <- Float.min hi (Float.max lo d.(k)) in
  Option.iter (fun lb -> Array.iteri (fun k v -> clamp k v infinity) lb) t.lower;
  Option.iter (fun ub -> Array.iteri (fun k v -> clamp k neg_infinity v) ub) t.upper;
  List.iter
    (fun gp ->
      List.iter
        (fun k ->
          let lo, hi = goalpost_interval gp k in
          clamp k (Float.max 0. lo) hi)
        (goalpost_pairs gp))
    t.goalposts;
  (* violated non-homogeneous <=-rows (hose caps, absolute sum bounds):
     uniform down-scaling restores them without leaving the box *)
  let n = Array.length d in
  let avg = if n = 0 then 0. else Array.fold_left ( +. ) 0. d /. float_of_int n in
  let scale = ref 1. in
  List.iter
    (fun ic ->
      if ic.sense = Model.Le && ic.bound >= 0. then begin
        let lhs =
          List.fold_left (fun acc (k, c) -> acc +. (c *. d.(k))) 0. ic.terms
          +. (ic.avg_coef *. avg)
        in
        if lhs > ic.bound +. 1e-12 && lhs > 0. then
          scale := Float.min !scale (ic.bound /. lhs)
      end)
    t.intra;
  if !scale < 1. then
    Array.iteri (fun k v -> d.(k) <- Float.max 0. (!scale *. v)) d;
  (* push out of any exclusion ball: move the coordinate that is already
     furthest from the center onto the ball's surface *)
  List.iter
    (fun ex ->
      let worst_k = ref 0 and worst = ref (-1.) in
      Array.iteri
        (fun k v ->
          let dev = Float.abs (v -. ex.center.(k)) in
          if dev > !worst then begin
            worst := dev;
            worst_k := k
          end)
        d;
      if !worst < ex.radius then begin
        let k = !worst_k in
        let c = ex.center.(k) in
        let candidate =
          if d.(k) >= c || c -. ex.radius < 0. then c +. ex.radius
          else c -. ex.radius
        in
        d.(k) <- candidate
      end)
    t.exclusions;
  d
