(** ConstrainedSet (paper §3.3): realistic restrictions on the adversary's
    inputs.

    Two classes, exactly as in the paper:

    - {b goalposts}: demands must stay within a distance of a reference
      point ("historically observed demands"), in absolute or relative
      terms, possibly only for a subset of pairs (partially-specified
      goalposts);
    - {b intra-input constraints}: linear relations among the demands
      themselves, optionally involving the average demand — e.g. "every
      demand within 2x of the average".

    Per-pair box bounds are included as the degenerate goalpost case.
    All of these are linear, so [apply] emits them directly into the
    white-box model; [satisfied] checks a concrete matrix (used to filter
    black-box proposals), and [project] heuristically pulls a matrix back
    into the box+goalpost region (black-box proposals stay searchable). *)

type goalpost = {
  reference : float array;
  distance : float;
  relative : bool;
      (** absolute: [|d_k - ref_k| <= distance];
          relative: [|d_k - ref_k| <= distance * ref_k] *)
  pairs : int list option;  (** [None] — constrain every pair *)
}

type intra = {
  terms : (int * float) list;  (** coefficients over demand indices *)
  avg_coef : float;  (** coefficient of the average demand *)
  sense : Model.sense;
  bound : float;
}

type exclusion = {
  center : float array;
  radius : float;
      (** the excluded open L-infinity ball: inputs with
          [max_k |d_k - center_k| < radius] are forbidden *)
}

type t = {
  lower : float array option;
  upper : float array option;
  goalposts : goalpost list;
  intra : intra list;
  exclusions : exclusion list;
}

val none : t

val exclude_ball : center:float array -> radius:float -> t
(** §5 "diverse kinds of bad inputs": remove a neighbourhood of a
    previously-found input from the search space. [apply] encodes the
    disjunction with one indicator binary per half-space (big-M). *)

val goalpost :
  ?pairs:int list ->
  reference:float array ->
  distance:float ->
  relative:bool ->
  unit ->
  t

val box : ?lower:float array -> ?upper:float array -> unit -> t

val within_factor_of_average : num_pairs:int -> factor:float -> t
(** The paper's example: every demand at most [factor] times the average. *)

val hose : space:Demand.space -> egress:float array -> ingress:float array -> t
(** The hose model the paper cites as a realistic input class (§1,
    [3, 28]): per-node caps on total originated ([egress], indexed by
    node) and total received ([ingress]) traffic, each expressed as an
    intra-input linear constraint over the demand entries. *)

val combine : t -> t -> t

val apply : Model.t -> demand_vars:Model.var array -> t -> unit
(** Emit all constraints over the given demand variables. *)

val satisfied : ?tol:float -> t -> float array -> bool

val project : t -> float array -> float array
(** Clamp into box bounds and goalpost intervals (intra constraints are
    not projected — callers reject with [satisfied] instead). *)
