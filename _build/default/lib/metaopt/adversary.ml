type search =
  | Direct
  | Binary_sweep of { probes : int; probe_time : float }

type options = {
  bb : Branch_bound.options;
  search : search;
  constraints : Input_constraints.t;
  demand_ub : float option;
  probe_budget : int;
  run_milp : bool;
  quantize : float option;
}

let default_options =
  {
    bb = { Branch_bound.default_options with time_limit = 30.; stall_time = 8. };
    search = Direct;
    constraints = Input_constraints.none;
    demand_ub = None;
    probe_budget = 200;
    run_milp = true;
    quantize = None;
  }

type stats = {
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  model_vars : int;
  model_constrs : int;
  model_sos1 : int;
  oracle_calls : int;
}

type result = {
  demands : Demand.t;
  gap : float;
  normalized_gap : float;
  opt_value : float;
  heuristic_value : float;
  upper_bound : float option;
  outcome : Branch_bound.outcome;
  trace : (float * float) list;
  stats : stats;
}

let heuristic_of_spec (ev : Evaluate.t) =
  match ev.Evaluate.spec with
  | Evaluate.Dp_spec { threshold } -> Gap_problem.Dp { threshold }
  | Evaluate.Pop_spec { parts; partitions; reduce } ->
      Gap_problem.Pop { parts; partitions; reduce }

let now () = Unix.gettimeofday ()

(* Round demands so identical-up-to-noise relaxations hit the oracle cache. *)
let cache_key demands =
  String.concat ","
    (Array.to_list (Array.map (fun d -> Printf.sprintf "%.4f" d) demands))

type oracle_state = {
  ev : Evaluate.t;
  constraints : Input_constraints.t;
  quantize : float option;
  cache : (string, float option) Hashtbl.t;
  mutable best : (Demand.t * float) option;
  mutable calls : int;
  mutable trace : (float * float) list;
  started : float;
}

(* With a quantized outer space, only on-grid demands are feasible points
   of the MILP: snap every probe before evaluating. *)
let snap st demands =
  match st.quantize with
  | None -> demands
  | Some step ->
      Array.map (fun d -> step *. Float.round (d /. step)) demands

let oracle_gap st demands =
  let demands = snap st demands in
  let key = cache_key demands in
  match Hashtbl.find_opt st.cache key with
  | Some cached -> cached
  | None ->
      st.calls <- st.calls + 1;
      let g =
        if not (Input_constraints.satisfied st.constraints demands) then None
        else Evaluate.gap st.ev demands
      in
      Hashtbl.replace st.cache key g;
      (match g with
      | Some g -> (
          match st.best with
          | Some (_, b) when g <= b -> ()
          | _ ->
              st.best <- Some (Array.copy demands, g);
              st.trace <- (now () -. st.started, g) :: st.trace)
      | None -> ());
      g

let primal_heuristic st (gp : Gap_problem.t) relax_primal =
  let demands = Gap_problem.demands_of_primal gp relax_primal in
  let relax_gap = oracle_gap st demands in
  (* always report the best oracle-verified value so far: probing results
     become branch-and-bound incumbents *)
  match (st.best, relax_gap) with
  | Some (_, g), _ -> Some (g, None)
  | None, Some g -> Some (g, None)
  | None, None -> None

(* Structure-aware probing (see Probes): the substitute for a commercial
   solver's built-in primal heuristics. Candidates and greedy refinements
   are scored with the exact oracle, so anything recorded is a genuine
   adversarial input. *)
let run_probes st (ev : Evaluate.t) ~demand_ub ~budget =
  if budget <= 0 then ()
  else begin
  let pathset = ev.Evaluate.pathset in
  let candidates =
    match ev.Evaluate.spec with
    | Evaluate.Dp_spec { threshold } ->
        Probes.dp_candidates pathset ~threshold ~demand_ub
    | Evaluate.Pop_spec { parts; partitions; _ } ->
        Probes.pop_candidates pathset ~partitions ~parts ~demand_ub
  in
  let candidates =
    List.filteri (fun i _ -> i < budget) candidates
  in
  List.iter (fun d -> ignore (oracle_gap st (Input_constraints.project st.constraints d))) candidates;
  let refine_budget = Int.max 0 (budget - List.length candidates) in
  match st.best with
  | None -> ()
  | Some (d, _) ->
      let levels =
        match ev.Evaluate.spec with
        | Evaluate.Dp_spec { threshold } -> [ 0.; threshold; demand_ub ]
        | Evaluate.Pop_spec _ -> [ 0.; demand_ub /. 2.; demand_ub ]
      in
      (* with a quantized outer space, refine over grid points only *)
      let levels =
        match st.quantize with
        | None -> levels
        | Some step ->
            List.sort_uniq compare
              (List.map (fun l -> step *. Float.round (l /. step)) levels)
      in
      (match
         Probes.refine ev ~constraints:st.constraints ~budget:refine_budget
           ~levels d
       with
      | None -> ()
      | Some (d, _) ->
          (* route through the oracle so the recorded value is snapped,
             constraint-checked and cached consistently *)
          ignore (oracle_gap st d))
  end

let solve_one st gp ~bb_options =
  Branch_bound.solve ~options:bb_options
    ~primal_heuristic:(primal_heuristic st gp) gp.Gap_problem.model

let find (ev : Evaluate.t) ?(options = default_options) () =
  let pathset = ev.Evaluate.pathset in
  let heuristic = heuristic_of_spec ev in
  let gp =
    Gap_problem.build pathset ~heuristic ~constraints:options.constraints
      ?demand_ub:options.demand_ub ?quantize:options.quantize ()
  in
  let st =
    {
      ev;
      constraints = options.constraints;
      quantize = options.quantize;
      cache = Hashtbl.create 256;
      best = None;
      calls = 0;
      trace = [];
      started = now ();
    }
  in
  run_probes st ev ~demand_ub:gp.Gap_problem.demand_ub
    ~budget:options.probe_budget;
  let bb_result, upper_bound =
    if not options.run_milp then
      (* probe-only mode: used when the KKT model is too large for the
         MILP substrate to bound usefully within budget (e.g. many POP
         instances); results stay oracle-verified but carry no bound *)
      ( {
          Branch_bound.outcome =
            (if st.best = None then Branch_bound.No_incumbent
             else Branch_bound.Feasible);
          objective = (match st.best with Some (_, g) -> g | None -> Float.nan);
          best_bound = infinity;
          mip_gap = Float.nan;
          primal = None;
          nodes = 0;
          simplex_iterations = 0;
          elapsed = 0.;
          incumbent_trace = [];
        },
        None )
    else
    match options.search with
    | Direct ->
        let r = solve_one st gp ~bb_options:options.bb in
        let ub =
          match r.Branch_bound.outcome with
          | Branch_bound.Optimal | Branch_bound.Feasible
          | Branch_bound.No_incumbent ->
              Some r.Branch_bound.best_bound
          | Branch_bound.Infeasible | Branch_bound.Unbounded -> None
        in
        (r, ub)
    | Binary_sweep { probes; probe_time } ->
        (* Z3-style: demand "gap >= target" feasibility probes, bisecting
           the target; each probe is a fresh short solve of the same model
           with an extra lower-bound row on the gap objective. *)
        let _, obj = Model.objective gp.Gap_problem.model in
        let root =
          solve_one st gp
            ~bb_options:
              { options.bb with time_limit = probe_time; node_limit = 1 }
        in
        let hi = ref (Float.max 1. root.Branch_bound.best_bound) in
        let lo =
          ref
            (match st.best with
            | Some (_, g) -> g
            | None -> 0.)
        in
        let last = ref root in
        for _ = 1 to probes do
          if !hi -. !lo > 1e-6 *. Float.max 1. !hi then begin
            let target = (!lo +. !hi) /. 2. in
            let gp' =
              Gap_problem.build pathset ~heuristic
                ~constraints:options.constraints ?demand_ub:options.demand_ub
                ?quantize:options.quantize ()
            in
            ignore
              (Model.add_constr ~name:"gap_target" gp'.Gap_problem.model obj
                 Model.Ge target);
            let r =
              Branch_bound.solve
                ~options:{ options.bb with time_limit = probe_time }
                ~primal_heuristic:(primal_heuristic st gp')
                gp'.Gap_problem.model
            in
            last := r;
            let reached =
              match st.best with
              | Some (_, g) -> g >= target
              | None -> false
            in
            if reached then lo := Option.get st.best |> snd
            else if
              (* probe proved no input reaches the target *)
              r.Branch_bound.outcome = Branch_bound.Infeasible
            then hi := target
            else
              (* inconclusive probe: shrink cautiously from above *)
              hi := Float.max target (!lo +. (0.5 *. (!hi -. !lo)))
          end
        done;
        (!last, Some !hi)
  in
  let demands, gap =
    match st.best with
    | Some (d, g) -> (d, g)
    | None -> (Array.make (Pathset.num_pairs pathset) 0., 0.)
  in
  let opt_value = Evaluate.opt_value ev demands in
  let heuristic_value =
    match Evaluate.heuristic_value ev demands with
    | Some h -> h
    | None -> Float.nan
  in
  let vars, constrs, sos1 = Gap_problem.size gp in
  {
    demands;
    gap;
    normalized_gap = Evaluate.normalize ev gap;
    opt_value;
    heuristic_value;
    upper_bound;
    outcome = bb_result.Branch_bound.outcome;
    trace = List.rev st.trace;
    stats =
      {
        nodes = bb_result.Branch_bound.nodes;
        simplex_iterations = bb_result.Branch_bound.simplex_iterations;
        elapsed = now () -. st.started;
        model_vars = vars;
        model_constrs = constrs;
        model_sos1 = sos1;
        oracle_calls = st.calls;
      };
  }

let find_diverse ev ?(options = default_options) ~count ~radius () =
  let rec loop acc constraints remaining =
    if remaining = 0 then List.rev acc
    else begin
      let r = find ev ~options:{ options with constraints } () in
      if r.gap <= 0. then List.rev acc
      else
        let constraints =
          Input_constraints.combine constraints
            (Input_constraints.exclude_ball ~center:r.demands ~radius)
        in
        loop (r :: acc) constraints (remaining - 1)
    end
  in
  loop [] options.constraints count
