type sense = Le | Eq

type row = {
  row_name : string;
  inner_terms : (int * float) list;
  outer_terms : (Model.var * float) list;
  sense : sense;
  rhs : float;
}

type t = {
  name : string;
  num_vars : int;
  objective : (int * float) list;
  rows : row list;
}

let create ~name ~num_vars ~objective rows =
  let check_var (j, _) =
    if j < 0 || j >= num_vars then
      invalid_arg (Printf.sprintf "Inner_problem.create(%s): bad inner var %d" name j)
  in
  List.iter check_var objective;
  List.iter (fun r -> List.iter check_var r.inner_terms) rows;
  { name; num_vars; objective; rows }

let num_le_rows t =
  List.length (List.filter (fun r -> r.sense = Le) t.rows)

let value t x =
  List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. t.objective

let solve_directly t ~outer_values =
  let model = Model.create ~name:(t.name ^ "_direct") () in
  let xs = Model.add_vars ~name:"x" model t.num_vars in
  List.iter
    (fun r ->
      let expr =
        Linexpr.of_terms (List.map (fun (j, c) -> (xs.(j), c)) r.inner_terms)
      in
      let shift =
        List.fold_left
          (fun acc (v, c) -> acc +. (c *. outer_values v))
          0. r.outer_terms
      in
      let sense =
        match r.sense with
        | Le -> Model.Le
        | Eq -> Model.Eq
      in
      ignore (Model.add_constr ~name:r.row_name model expr sense (r.rhs -. shift)))
    t.rows;
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.map (fun (j, c) -> (xs.(j), c)) t.objective));
  Solver.solve_lp model
