(** Declarative description of an inner (follower) linear program.

    The metaoptimization (paper eq. 1) is a two-stage game: the outer
    problem picks an input, the inner problems respond optimally. An
    [Inner_problem.t] describes one follower:

    {v maximize  c . x
       subject to  A x + G theta <= / = b,   x >= 0 v}

    where [x] are the follower's own variables and [theta] are variables
    of the {e host} (outer) model — demands, threshold indicators — which
    the follower treats as constants. Everything is jointly linear, which
    is exactly the condition under which the KKT rewrite of §3.1 produces
    a mixed-integer-linear (not merely bilinear) single-shot problem: the
    only nonconvexity left is complementary slackness. *)

type sense = Le | Eq

type row = {
  row_name : string;
  inner_terms : (int * float) list;  (** (inner var index, coefficient) *)
  outer_terms : (Model.var * float) list;  (** host-model variables *)
  sense : sense;
  rhs : float;
}

type t = private {
  name : string;
  num_vars : int;
  objective : (int * float) list;  (** maximized *)
  rows : row list;
}

val create :
  name:string -> num_vars:int -> objective:(int * float) list -> row list -> t
(** @raise Invalid_argument on out-of-range inner variable indices. *)

val num_le_rows : t -> int

(** [value t x] — objective value of a concrete inner assignment. *)
val value : t -> float array -> float

(** [solve_directly t ~outer_values] replaces every outer variable with the
    value [outer_values v] and solves the follower LP on its own. Used by
    tests to confirm that KKT-feasible points are actually inner-optimal. *)
val solve_directly : t -> outer_values:(Model.var -> float) -> Solver.lp_result
