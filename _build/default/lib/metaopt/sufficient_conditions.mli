(** Searching for sufficient conditions (paper §5):

    "A use case of our techniques is identifying realistic constraints on
    the input space with small worst-case optimality gap, then safely use
    the heuristic on inputs in that space."

    Given a {e parametrized family} of input constraints (e.g. goalposts
    of growing radius around historical demands) and a gap budget, this
    module finds the largest parameter whose worst-case gap stays within
    budget: the certificate an operator needs to run the heuristic
    unattended on inputs satisfying the condition.

    The search is a monotone bisection over the parameter (larger
    parameter ⇒ larger input space ⇒ weakly larger worst-case gap), with
    each probe a full adversary run. The returned gap values are
    oracle-verified lower bounds on each probe's worst case; when the
    white-box MILP phase proves bounds, [certified] carries the proven
    worst-case bound for the accepted parameter. *)

type probe = {
  parameter : float;
  worst_gap : float;  (** best adversarial gap found inside the space *)
  upper_bound : float option;  (** proven bound, when available *)
}

type result = {
  accepted : float option;
      (** largest probed parameter whose worst-case gap fits the budget;
          [None] if even the smallest probe overshoots *)
  certified : bool;
      (** true when the accepted probe's proven upper bound (not merely
          the best-found gap) fits the budget *)
  probes : probe list;  (** in probe order *)
}

val search :
  Evaluate.t ->
  family:(float -> Input_constraints.t) ->
  lo:float ->
  hi:float ->
  gap_budget:float ->
  ?probes:int ->
  ?options:Adversary.options ->
  unit ->
  result
(** [search ev ~family ~lo ~hi ~gap_budget ()] bisects the parameter in
    [lo, hi] with [probes] adversary runs (default 6). [family] must be
    monotone: a larger parameter yields a superset input space.
    @raise Invalid_argument if [lo > hi] or [probes < 1]. *)

val goalpost_family :
  reference:Demand.t -> relative:bool -> float -> Input_constraints.t
(** The workhorse family: goalposts of radius [r] around a reference
    matrix — "how far from history can demands drift before the
    heuristic's worst case exceeds the budget?" *)
