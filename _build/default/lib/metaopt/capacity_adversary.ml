type options = {
  bb : Branch_bound.options;
  probe_budget : int;
  run_milp : bool;
}

let default_options =
  {
    bb = { Branch_bound.default_options with time_limit = 20.; stall_time = 6. };
    probe_budget = 400;
    run_milp = true;
  }

type result = {
  capacities : float array;
  gap : float;
  normalized_gap : float;
  opt_value : float;
  heuristic_value : float;
  upper_bound : float option;
  oracle_calls : int;
  elapsed : float;
}

let opt_at pathset ~demand ~capacities =
  (Opt_max_flow.residual_capacity_solve pathset demand
     ~only:(fun _ -> true)
     ~residual:capacities)
    .Opt_max_flow.total

let evaluate_dp pathset ~demand ~threshold ~capacities =
  match Demand_pinning.solve ~capacities pathset ~threshold demand with
  | Demand_pinning.Infeasible_pinning _ -> None
  | Demand_pinning.Feasible { total; _ } ->
      Some (opt_at pathset ~demand ~capacities -. total)

(* Pinned load per edge, a constant once the demands are fixed. *)
let pinned_load pathset ~demand ~threshold =
  let g = Pathset.graph pathset in
  let load = Array.make (Graph.num_edges g) 0. in
  let pinned = Array.make (Pathset.num_pairs pathset) false in
  for k = 0 to Pathset.num_pairs pathset - 1 do
    if Demand_pinning.pins ~threshold demand.(k) && Pathset.routable pathset k
    then begin
      pinned.(k) <- true;
      Array.iter
        (fun e -> load.(e) <- load.(e) +. demand.(k))
        (Pathset.shortest pathset k)
    end
  done;
  (load, pinned)

let build_model pathset ~demand ~threshold ~cap_lower ~cap_upper =
  let g = Pathset.graph pathset in
  let ne = Graph.num_edges g in
  if Array.length cap_lower <> ne || Array.length cap_upper <> ne then
    invalid_arg "Capacity_adversary: capacity bound arrays must cover all edges";
  Array.iteri
    (fun e lo ->
      if lo < 0. || lo > cap_upper.(e) then
        invalid_arg (Printf.sprintf "Capacity_adversary: bad interval on edge %d" e))
    cap_lower;
  let model = Model.create ~name:"capacity_gap" () in
  let cap_vars =
    Array.init ne (fun e ->
        Model.add_var
          ~name:(Printf.sprintf "cap_%d" e)
          ~lb:cap_lower.(e) ~ub:cap_upper.(e) model)
  in
  let load, pinned = pinned_load pathset ~demand ~threshold in
  (* the heuristic must be feasible: pinned load fits every link *)
  Array.iteri
    (fun e l ->
      if l > 0. then
        ignore
          (Model.add_constr
             ~name:(Printf.sprintf "pin_fit_%d" e)
             model (Linexpr.var cap_vars.(e)) Model.Ge l))
    load;
  (* OPT block, merged with the outer maximization: capacity rows bind to
     the capacity variables *)
  let opt_vars = Mcf.add_flow_vars ~prefix:"opt_f" model pathset in
  let _ = Mcf.add_demand_constrs model pathset opt_vars (Mcf.Const demand) in
  for e = 0 to ne - 1 do
    let terms =
      List.filter_map
        (fun (k, p) ->
          if Array.length opt_vars.(k) > p then Some (opt_vars.(k).(p), 1.)
          else None)
        (Pathset.pairs_using_edge pathset e)
    in
    ignore
      (Model.add_constr
         ~name:(Printf.sprintf "opt_cap_%d" e)
         model
         (Linexpr.add_term (Linexpr.of_terms terms) cap_vars.(e) (-1.))
         Model.Le 0.)
  done;
  let opt_value = Mcf.total_flow_expr opt_vars in
  (* heuristic follower: residual max-flow of the unpinned pairs, with
     capacities (c_e - pinned load) as outer-linear right-hand sides *)
  let flows = Flow_rows.make pathset ~only:(fun k -> not pinned.(k)) in
  let cap_rows =
    List.filter_map
      (fun e ->
        let terms =
          List.filter_map
            (fun (k, p) ->
              if Flow_rows.included flows k then
                Some (Flow_rows.var flows ~pair:k ~path:p, 1.)
              else None)
            (Pathset.pairs_using_edge pathset e)
        in
        if terms = [] then None
        else
          Some
            {
              Inner_problem.row_name = Printf.sprintf "dp_cap_%d" e;
              inner_terms = terms;
              outer_terms = [ (cap_vars.(e), -1.) ];
              sense = Inner_problem.Le;
              rhs = -.load.(e);
            })
      (List.init ne (fun e -> e))
  in
  let demand_rows =
    List.filter_map
      (fun k ->
        if not (Flow_rows.included flows k) then None
        else
          let np = Array.length (Pathset.paths_of_pair pathset k) in
          Some
            {
              Inner_problem.row_name = Printf.sprintf "dp_dem_%d" k;
              inner_terms =
                List.init np (fun p -> (Flow_rows.var flows ~pair:k ~path:p, 1.));
              outer_terms = [];
              sense = Inner_problem.Le;
              rhs = demand.(k);
            })
      (List.init (Pathset.num_pairs pathset) (fun k -> k))
  in
  let inner =
    Inner_problem.create ~name:"dp_residual"
      ~num_vars:(Flow_rows.num_vars flows)
      ~objective:(Flow_rows.objective flows)
      (demand_rows @ cap_rows)
  in
  let kkt = Kkt.emit model inner in
  let pinned_total =
    Array.fold_left ( +. ) 0.
      (Array.mapi (fun k d -> if pinned.(k) then d else 0.) demand)
  in
  let heuristic_value = Linexpr.add_constant kkt.Kkt.value pinned_total in
  Model.set_objective model Model.Maximize
    (Linexpr.sub opt_value heuristic_value);
  (model, cap_vars)

let probe_candidates ~cap_lower ~cap_upper ~pinned_edges =
  let mid = Array.map2 (fun l u -> (l +. u) /. 2.) cap_lower cap_upper in
  let on_pinned which other =
    Array.mapi (fun e _ -> if pinned_edges.(e) then which.(e) else other.(e))
      cap_lower
  in
  [
    Array.copy cap_lower;
    Array.copy cap_upper;
    mid;
    on_pinned cap_lower cap_upper;
    on_pinned cap_upper cap_lower;
  ]

let find_dp pathset ~demand ~threshold ~cap_lower ~cap_upper
    ?(options = default_options) () =
  let g = Pathset.graph pathset in
  let started = Unix.gettimeofday () in
  let model, cap_vars =
    build_model pathset ~demand ~threshold ~cap_lower ~cap_upper
  in
  let load, _ = pinned_load pathset ~demand ~threshold in
  let pinned_edges = Array.map (fun l -> l > 0.) load in
  let best = ref None in
  let calls = ref 0 in
  let score caps =
    incr calls;
    match evaluate_dp pathset ~demand ~threshold ~capacities:caps with
    | None -> None
    | Some gap ->
        (match !best with
        | Some (_, b) when gap <= b -> ()
        | _ -> best := Some (Array.copy caps, gap));
        Some gap
  in
  let clamp caps =
    Array.mapi (fun e v -> Float.min cap_upper.(e) (Float.max cap_lower.(e) v)) caps
  in
  List.iter
    (fun c -> ignore (score (clamp c)))
    (probe_candidates ~cap_lower ~cap_upper ~pinned_edges);
  (* coordinate refinement over interval endpoints *)
  (match !best with
  | None -> ()
  | Some (start, _) ->
      let current = ref (Array.copy start) in
      let improved = ref true in
      while !improved && !calls < options.probe_budget do
        improved := false;
        for e = 0 to Graph.num_edges g - 1 do
          List.iter
            (fun level ->
              if !calls < options.probe_budget && !current.(e) <> level then begin
                let cand = Array.copy !current in
                cand.(e) <- level;
                match (score cand, !best) with
                | Some gap, Some (_, b) when gap >= b ->
                    current := cand;
                    improved := true
                | _ -> ()
              end)
            [ cap_lower.(e); cap_upper.(e) ]
        done
      done);
  let upper_bound =
    if not options.run_milp then None
    else begin
      let heuristic relax =
        let caps =
          clamp (Array.map (fun v -> relax.(v)) cap_vars)
        in
        match score caps with
        | None -> (
            match !best with
            | Some (_, g) -> Some (g, None)
            | None -> None)
        | Some _ -> (
            match !best with
            | Some (_, g) -> Some (g, None)
            | None -> None)
      in
      let r =
        Branch_bound.solve ~options:options.bb ~primal_heuristic:heuristic model
      in
      match r.Branch_bound.outcome with
      | Branch_bound.Optimal | Branch_bound.Feasible | Branch_bound.No_incumbent
        ->
          Some r.Branch_bound.best_bound
      | Branch_bound.Infeasible | Branch_bound.Unbounded -> None
    end
  in
  let capacities, gap =
    match !best with
    | Some (c, g) -> (c, g)
    | None -> (Array.copy cap_lower, 0.)
  in
  let opt_value = opt_at pathset ~demand ~capacities in
  {
    capacities;
    gap;
    normalized_gap = gap /. Array.fold_left ( +. ) 0. cap_upper;
    opt_value;
    heuristic_value = opt_value -. gap;
    upper_bound;
    oracle_calls = !calls;
    elapsed = Unix.gettimeofday () -. started;
  }
