(** Shared builder for the inner-problem rows of flow-based followers:
    indexes the per-(pair, path) flow variables of a follower LP and
    produces the FeasibleFlow rows (demand and capacity constraints) in
    {!Inner_problem.row} form, with demands as outer host variables. *)

type t

val make : Pathset.t -> only:(int -> bool) -> t
(** Index flow variables for every routable pair accepted by [only]. *)

val num_vars : t -> int
val included : t -> int -> bool

val var : t -> pair:int -> path:int -> int
(** @raise Invalid_argument for excluded pairs or bad path indices. *)

val pair_of_var : t -> int -> int * int
(** Inverse mapping: inner var -> (pair, path index). *)

val objective : t -> (int * float) list
(** Max total flow: coefficient 1 on every flow variable. *)

val demand_rows :
  t -> demand_vars:Model.var array -> Inner_problem.row list
(** Per included pair: [sum_p f_k^p - d_k <= 0]. *)

val capacity_rows : ?scale:float -> t -> Inner_problem.row list
(** Per edge with included users: [sum f <= scale * capacity]. *)
