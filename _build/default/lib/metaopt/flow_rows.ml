type t = {
  pathset : Pathset.t;
  offsets : int array; (* -1 for excluded pairs *)
  num_vars : int;
  owner : (int * int) array; (* inner var -> (pair, path) *)
}

let make pathset ~only =
  let n_pairs = Pathset.num_pairs pathset in
  let offsets = Array.make n_pairs (-1) in
  let owner = ref [] in
  let next = ref 0 in
  for k = 0 to n_pairs - 1 do
    if only k && Pathset.routable pathset k then begin
      offsets.(k) <- !next;
      let np = Array.length (Pathset.paths_of_pair pathset k) in
      for p = 0 to np - 1 do
        owner := (k, p) :: !owner
      done;
      next := !next + np
    end
  done;
  {
    pathset;
    offsets;
    num_vars = !next;
    owner = Array.of_list (List.rev !owner);
  }

let num_vars t = t.num_vars
let included t k = t.offsets.(k) >= 0

let var t ~pair ~path =
  if t.offsets.(pair) < 0 then invalid_arg "Flow_rows.var: excluded pair";
  let np = Array.length (Pathset.paths_of_pair t.pathset pair) in
  if path < 0 || path >= np then invalid_arg "Flow_rows.var: bad path";
  t.offsets.(pair) + path

let pair_of_var t v = t.owner.(v)

let objective t = List.init t.num_vars (fun v -> (v, 1.))

let demand_rows t ~demand_vars =
  let rows = ref [] in
  Array.iteri
    (fun k off ->
      if off >= 0 then begin
        let np = Array.length (Pathset.paths_of_pair t.pathset k) in
        let inner_terms = List.init np (fun p -> (off + p, 1.)) in
        rows :=
          {
            Inner_problem.row_name = Printf.sprintf "dem_%d" k;
            inner_terms;
            outer_terms = [ (demand_vars.(k), -1.) ];
            sense = Inner_problem.Le;
            rhs = 0.;
          }
          :: !rows
      end)
    t.offsets;
  List.rev !rows

let capacity_rows ?(scale = 1.) t =
  let g = Pathset.graph t.pathset in
  let rows = ref [] in
  for e = 0 to Graph.num_edges g - 1 do
    let inner_terms =
      List.filter_map
        (fun (k, p) ->
          if included t k then Some (var t ~pair:k ~path:p, 1.) else None)
        (Pathset.pairs_using_edge t.pathset e)
    in
    if inner_terms <> [] then
      rows :=
        {
          Inner_problem.row_name = Printf.sprintf "cap_%d" e;
          inner_terms;
          outer_terms = [];
          sense = Inner_problem.Le;
          rhs = scale *. Graph.capacity g e;
        }
        :: !rows
  done;
  List.rev !rows
