type emitted = {
  x : Model.var array;
  row_duals : Model.var array;
  row_slacks : Model.var option array;
  bound_duals : Model.var array;
  value : Linexpr.t;
  num_complementarity : int;
}

let emit model (ip : Inner_problem.t) =
  let prefix = ip.Inner_problem.name in
  let n = ip.Inner_problem.num_vars in
  let rows = Array.of_list ip.Inner_problem.rows in
  let m = Array.length rows in
  let x = Model.add_vars ~name:(prefix ^ "_x") model n in
  let comp = ref 0 in
  (* duals and slacks *)
  let row_duals =
    Array.init m (fun i ->
        match rows.(i).Inner_problem.sense with
        | Inner_problem.Le ->
            Model.add_var ~name:(Printf.sprintf "%s_lam_%d" prefix i) model
        | Inner_problem.Eq ->
            Model.add_var ~name:(Printf.sprintf "%s_nu_%d" prefix i)
              ~lb:neg_infinity model)
  in
  let row_slacks =
    Array.init m (fun i ->
        match rows.(i).Inner_problem.sense with
        | Inner_problem.Le ->
            Some (Model.add_var ~name:(Printf.sprintf "%s_s_%d" prefix i) model)
        | Inner_problem.Eq -> None)
  in
  (* primal feasibility rows *)
  Array.iteri
    (fun i row ->
      let expr =
        Linexpr.of_terms
          (List.map (fun (j, c) -> (x.(j), c)) row.Inner_problem.inner_terms
          @ row.Inner_problem.outer_terms)
      in
      match row_slacks.(i) with
      | Some s ->
          let expr = Linexpr.add_term expr s 1. in
          ignore
            (Model.add_constr ~name:(row.Inner_problem.row_name ^ "_pf") model
               expr Model.Eq row.Inner_problem.rhs);
          Model.add_sos1 model [ row_duals.(i); s ];
          incr comp
      | None ->
          ignore
            (Model.add_constr ~name:(row.Inner_problem.row_name ^ "_pf") model
               expr Model.Eq row.Inner_problem.rhs))
    rows;
  (* stationarity + bound-dual complementarity *)
  let coef_of_col = Array.make n [] in
  Array.iteri
    (fun i row ->
      List.iter
        (fun (j, c) -> coef_of_col.(j) <- (row_duals.(i), c) :: coef_of_col.(j))
        row.Inner_problem.inner_terms)
    rows;
  let c_obj = Array.make n 0. in
  List.iter (fun (j, c) -> c_obj.(j) <- c_obj.(j) +. c) ip.Inner_problem.objective;
  let bound_duals =
    Array.init n (fun j ->
        let mu = Model.add_var ~name:(Printf.sprintf "%s_mu_%d" prefix j) model in
        (* c_j - sum_i dual_i a_ij + mu_j = 0 *)
        let expr =
          Linexpr.add_term
            (Linexpr.of_terms (List.map (fun (d, c) -> (d, -.c)) coef_of_col.(j)))
            mu 1.
        in
        ignore
          (Model.add_constr ~name:(Printf.sprintf "%s_stat_%d" prefix j) model
             expr Model.Eq (-.c_obj.(j)));
        Model.add_sos1 model [ mu; x.(j) ];
        incr comp;
        mu)
  in
  let value =
    Linexpr.of_terms (List.map (fun (j, c) -> (x.(j), c)) ip.Inner_problem.objective)
  in
  { x; row_duals; row_slacks; bound_duals; value; num_complementarity = !comp }
