type t = {
  inner : Inner_problem.t;
  kkt : Kkt.emitted;
  indicators : (int * Model.var) list;
  flows : Flow_rows.t;
  value : Linexpr.t;
}

let encode model pathset ~demand_vars ~threshold ~demand_ub ?epsilon () =
  if demand_ub <= 0. then invalid_arg "Dp_encoding.encode: demand_ub <= 0";
  if threshold < 0. then invalid_arg "Dp_encoding.encode: threshold < 0";
  let epsilon =
    match epsilon with
    | Some e -> e
    | None -> 1e-6 *. demand_ub
  in
  let flows = Flow_rows.make pathset ~only:(fun _ -> true) in
  let big_m = demand_ub +. epsilon in
  let indicators = ref [] in
  let pin_rows = ref [] in
  for k = Pathset.num_pairs pathset - 1 downto 0 do
    if Flow_rows.included flows k then begin
      let z =
        Model.add_var ~name:(Printf.sprintf "dp_z_%d" k) ~kind:Model.Binary model
      in
      indicators := (k, z) :: !indicators;
      (* host linking rows: z = 1 <=> d_k > threshold
         d_k - threshold <= (demand_ub - threshold) z
         d_k >= (threshold + epsilon) z *)
      ignore
        (Model.add_constr ~name:(Printf.sprintf "dp_link_up_%d" k) model
           (Linexpr.of_terms
              [ (demand_vars.(k), 1.); (z, -.(demand_ub -. threshold)) ])
           Model.Le threshold);
      ignore
        (Model.add_constr ~name:(Printf.sprintf "dp_link_dn_%d" k) model
           (Linexpr.of_terms
              [ (demand_vars.(k), 1.); (z, -.(threshold +. epsilon)) ])
           Model.Ge 0.);
      (* inner pinning rows (the paper's big-M or-constraints) *)
      let np = Array.length (Pathset.paths_of_pair pathset k) in
      let non_shortest =
        List.init (np - 1) (fun i -> (Flow_rows.var flows ~pair:k ~path:(i + 1), 1.))
      in
      if non_shortest <> [] then
        pin_rows :=
          {
            Inner_problem.row_name = Printf.sprintf "pin_spread_%d" k;
            inner_terms = non_shortest;
            outer_terms = [ (z, -.big_m) ];
            sense = Inner_problem.Le;
            rhs = 0.;
          }
          :: !pin_rows;
      pin_rows :=
        {
          Inner_problem.row_name = Printf.sprintf "pin_full_%d" k;
          inner_terms = [ (Flow_rows.var flows ~pair:k ~path:0, -1.) ];
          outer_terms = [ (demand_vars.(k), 1.); (z, -.big_m) ];
          sense = Inner_problem.Le;
          rhs = 0.;
        }
        :: !pin_rows
    end
  done;
  let rows =
    Flow_rows.demand_rows flows ~demand_vars
    @ Flow_rows.capacity_rows flows
    @ List.rev !pin_rows
  in
  let inner =
    Inner_problem.create ~name:"dp" ~num_vars:(Flow_rows.num_vars flows)
      ~objective:(Flow_rows.objective flows) rows
  in
  let kkt = Kkt.emit model inner in
  { inner; kkt; indicators = !indicators; flows; value = kkt.Kkt.value }
