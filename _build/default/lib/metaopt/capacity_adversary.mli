(** Topology-change adversary (paper §5, "Practical considerations"):

    "the metaoptimization in (1) can be used to find topology changes
    that cause the worst-case gap for a specific heuristic instead of
    focusing only on the adversarial demands."

    Here the demands are {e fixed} and the outer variables are the
    per-edge capacities, each within an operator-given interval (failed
    or upgraded links, capacity re-planning). Everything stays jointly
    linear — capacities only appear on the right-hand side of the flow
    constraints — so the same KKT machinery applies. With demands fixed,
    Demand Pinning's pin set is a constant, so the DP follower needs no
    conditional binaries at all: the only integer content is KKT
    complementarity.

    Capacity vectors that make the pinning itself infeasible (pinned
    load exceeding a link) are excluded by explicit host rows, matching
    the demand adversary's treatment of infeasible inputs. *)

type options = {
  bb : Branch_bound.options;
  probe_budget : int;
  run_milp : bool;
}

val default_options : options

type result = {
  capacities : float array;  (** adversarial per-edge capacities *)
  gap : float;  (** oracle-verified gap at these capacities *)
  normalized_gap : float;  (** gap / (sum of capacity upper bounds) *)
  opt_value : float;
  heuristic_value : float;
  upper_bound : float option;
  oracle_calls : int;
  elapsed : float;
}

(** Ground truth at a concrete capacity vector (DP only for now). *)
val evaluate_dp :
  Pathset.t ->
  demand:Demand.t ->
  threshold:float ->
  capacities:float array ->
  float option

val find_dp :
  Pathset.t ->
  demand:Demand.t ->
  threshold:float ->
  cap_lower:float array ->
  cap_upper:float array ->
  ?options:options ->
  unit ->
  result
(** @raise Invalid_argument on malformed capacity intervals. *)
