lib/metaopt/blackbox.ml: Array Demand Evaluate Float Graph Input_constraints List Pathset Rng Unix
