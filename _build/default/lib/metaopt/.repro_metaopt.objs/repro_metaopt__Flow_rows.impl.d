lib/metaopt/flow_rows.ml: Array Graph Inner_problem List Pathset Printf
