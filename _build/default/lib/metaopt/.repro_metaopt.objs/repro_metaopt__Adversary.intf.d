lib/metaopt/adversary.mli: Branch_bound Demand Evaluate Gap_problem Input_constraints
