lib/metaopt/probes.ml: Array Evaluate Float Input_constraints Int List Paths Pathset
