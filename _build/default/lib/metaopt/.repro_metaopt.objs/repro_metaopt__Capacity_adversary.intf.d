lib/metaopt/capacity_adversary.mli: Branch_bound Demand Pathset
