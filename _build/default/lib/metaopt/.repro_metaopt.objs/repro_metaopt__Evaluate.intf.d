lib/metaopt/evaluate.mli: Demand Pathset Pop Rng
