lib/metaopt/probes.mli: Demand Evaluate Input_constraints Pathset Pop
