lib/metaopt/gap_problem.ml: Array Demand Dp_encoding Float Flow_rows Graph Inner_problem Input_constraints Kkt Linexpr List Mcf Model Pathset Pop Pop_encoding Printf
