lib/metaopt/blackbox.mli: Demand Evaluate Input_constraints Rng
