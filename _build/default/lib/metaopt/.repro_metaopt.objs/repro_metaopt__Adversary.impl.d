lib/metaopt/adversary.ml: Array Branch_bound Demand Evaluate Float Gap_problem Hashtbl Input_constraints Int List Model Option Pathset Printf Probes String Unix
