lib/metaopt/inner_problem.ml: Array Linexpr List Model Printf Solver
