lib/metaopt/input_constraints.mli: Demand Model
