lib/metaopt/sufficient_conditions.mli: Adversary Demand Evaluate Input_constraints
