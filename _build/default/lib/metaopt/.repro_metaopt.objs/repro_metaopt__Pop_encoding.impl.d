lib/metaopt/pop_encoding.ml: Array Float Flow_rows Graph Inner_problem Kkt Linexpr List Model Pathset Pop Printf Sorting_network
