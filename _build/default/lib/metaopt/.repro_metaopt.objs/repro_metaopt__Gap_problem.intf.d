lib/metaopt/gap_problem.mli: Demand Input_constraints Linexpr Mcf Model Pathset Pop
