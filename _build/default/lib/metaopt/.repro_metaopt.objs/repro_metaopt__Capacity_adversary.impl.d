lib/metaopt/capacity_adversary.ml: Array Branch_bound Demand_pinning Float Flow_rows Graph Inner_problem Kkt Linexpr List Mcf Model Opt_max_flow Pathset Printf Unix
