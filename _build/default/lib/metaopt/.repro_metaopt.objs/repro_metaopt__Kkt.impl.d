lib/metaopt/kkt.ml: Array Inner_problem Linexpr List Model Printf
