lib/metaopt/dp_encoding.mli: Flow_rows Inner_problem Kkt Linexpr Model Pathset
