lib/metaopt/dp_encoding.ml: Array Flow_rows Inner_problem Kkt Linexpr List Model Pathset Printf
