lib/metaopt/input_constraints.ml: Array Demand Float Graph Linexpr List Model Option Printf
