lib/metaopt/kkt.mli: Inner_problem Linexpr Model
