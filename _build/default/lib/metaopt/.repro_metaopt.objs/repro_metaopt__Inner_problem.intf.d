lib/metaopt/inner_problem.mli: Model Solver
