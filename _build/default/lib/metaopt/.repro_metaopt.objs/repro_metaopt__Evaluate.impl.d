lib/metaopt/evaluate.ml: Demand_pinning Graph List Opt_max_flow Option Pathset Pop
