lib/metaopt/flow_rows.mli: Inner_problem Model Pathset
