lib/metaopt/pop_encoding.mli: Kkt Linexpr Model Pathset Pop
