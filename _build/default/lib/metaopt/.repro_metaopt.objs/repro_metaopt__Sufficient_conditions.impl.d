lib/metaopt/sufficient_conditions.ml: Adversary Float Input_constraints List
