type probe = {
  parameter : float;
  worst_gap : float;
  upper_bound : float option;
}

type result = {
  accepted : float option;
  certified : bool;
  probes : probe list;
}

let goalpost_family ~reference ~relative r =
  Input_constraints.goalpost ~reference ~distance:r ~relative ()

let search ev ~family ~lo ~hi ~gap_budget ?(probes = 6)
    ?(options = Adversary.default_options) () =
  if lo > hi then invalid_arg "Sufficient_conditions.search: lo > hi";
  if probes < 1 then invalid_arg "Sufficient_conditions.search: probes < 1";
  let run parameter =
    let constraints =
      Input_constraints.combine options.Adversary.constraints (family parameter)
    in
    let r =
      Adversary.find ev ~options:{ options with Adversary.constraints } ()
    in
    {
      parameter;
      worst_gap = r.Adversary.gap;
      upper_bound = r.Adversary.upper_bound;
    }
  in
  let history = ref [] in
  let accepted = ref None and accepted_probe = ref None in
  let lo = ref lo and hi = ref hi in
  (* probe the lower end first: if even [lo] overshoots, report failure *)
  let first = run !lo in
  history := [ first ];
  if first.worst_gap > gap_budget then
    { accepted = None; certified = false; probes = List.rev !history }
  else begin
    accepted := Some first.parameter;
    accepted_probe := Some first;
    for _ = 2 to probes do
      if !hi -. !lo > 1e-9 *. Float.max 1. !hi then begin
        let mid = (!lo +. !hi) /. 2. in
        let p = run mid in
        history := p :: !history;
        if p.worst_gap <= gap_budget then begin
          lo := mid;
          accepted := Some mid;
          accepted_probe := Some p
        end
        else hi := mid
      end
    done;
    let certified =
      match !accepted_probe with
      | Some { upper_bound = Some ub; _ } -> ub <= gap_budget +. 1e-9
      | _ -> false
    in
    { accepted = !accepted; certified; probes = List.rev !history }
  end
