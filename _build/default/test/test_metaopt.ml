(* Tests for the metaoptimization core (Repro_metaopt): KKT rewrite,
   heuristic encodings, gap problem, black-box baselines and the
   end-to-end white-box adversary. *)

open Repro_lp
open Repro_topology
open Repro_te
open Repro_metaopt

let check_float = Alcotest.(check (float 1e-5))

(* ------------------------------------------------------------------ *)
(* Inner_problem + Kkt                                                 *)
(* ------------------------------------------------------------------ *)

(* max x s.t. x <= P, with outer variable P fixed by bounds: any
   KKT-feasible point must put x = P (the LP analog of Fig 2's worked
   example: the follower's response is pinned by the rewrite alone). *)
let test_kkt_pins_follower_optimum () =
  let model = Model.create () in
  let p = Model.add_var ~name:"P" ~lb:7. ~ub:7. model in
  let inner =
    Inner_problem.create ~name:"toy" ~num_vars:1 ~objective:[ (0, 1.) ]
      [
        {
          Inner_problem.row_name = "cap";
          inner_terms = [ (0, 1.) ];
          outer_terms = [ (p, -1.) ];
          sense = Inner_problem.Le;
          rhs = 0.;
        };
      ]
  in
  let emitted = Kkt.emit model inner in
  (* pure feasibility: no objective preference on x *)
  Model.set_objective model Model.Maximize Linexpr.zero;
  let r = Solver.solve model in
  Alcotest.(check bool) "solved" true (r.Branch_bound.outcome = Branch_bound.Optimal);
  let x = (Option.get r.Branch_bound.primal).(emitted.Kkt.x.(0)) in
  check_float "follower forced to optimum" 7. x

(* Even when the host objective pulls the follower's copy DOWN, KKT keeps
   it at the follower's optimum - this is exactly why the heuristic term
   of eq. (1) needs the rewrite. *)
let test_kkt_resists_adversarial_host_objective () =
  let model = Model.create () in
  let p = Model.add_var ~name:"P" ~lb:5. ~ub:5. model in
  let inner =
    Inner_problem.create ~name:"toy" ~num_vars:1 ~objective:[ (0, 1.) ]
      [
        {
          Inner_problem.row_name = "cap";
          inner_terms = [ (0, 1.) ];
          outer_terms = [ (p, -1.) ];
          sense = Inner_problem.Le;
          rhs = 0.;
        };
      ]
  in
  let emitted = Kkt.emit model inner in
  Model.set_objective model Model.Minimize emitted.Kkt.value;
  let r = Solver.solve model in
  check_float "minimizing the follower value cannot dent it" 5.
    r.Branch_bound.objective

let test_kkt_equality_rows () =
  (* max x1 + x2 s.t. x1 + x2 = 4, x1 <= 3: optimum 4 *)
  let model = Model.create () in
  let inner =
    Inner_problem.create ~name:"eq" ~num_vars:2 ~objective:[ (0, 1.); (1, 1.) ]
      [
        {
          Inner_problem.row_name = "sum";
          inner_terms = [ (0, 1.); (1, 1.) ];
          outer_terms = [];
          sense = Inner_problem.Eq;
          rhs = 4.;
        };
        {
          Inner_problem.row_name = "x1cap";
          inner_terms = [ (0, 1.) ];
          outer_terms = [];
          sense = Inner_problem.Le;
          rhs = 3.;
        };
      ]
  in
  let emitted = Kkt.emit model inner in
  Model.set_objective model Model.Minimize emitted.Kkt.value;
  let r = Solver.solve model in
  check_float "equality follower" 4. r.Branch_bound.objective

let test_kkt_infeasible_follower_infeasible_host () =
  (* x <= -1 with x >= 0 is an infeasible follower: KKT must be too *)
  let model = Model.create () in
  let inner =
    Inner_problem.create ~name:"inf" ~num_vars:1 ~objective:[ (0, 1.) ]
      [
        {
          Inner_problem.row_name = "neg";
          inner_terms = [ (0, 1.) ];
          outer_terms = [];
          sense = Inner_problem.Le;
          rhs = -1.;
        };
      ]
  in
  let _ = Kkt.emit model inner in
  Model.set_objective model Model.Maximize Linexpr.zero;
  let r = Solver.solve model in
  Alcotest.(check bool) "infeasible" true
    (r.Branch_bound.outcome = Branch_bound.Infeasible)

(* Property: for random follower LPs (with a random fixed outer shift),
   the KKT system's value equals the directly-solved follower optimum. *)
let kkt_matches_direct_property =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* m = int_range 1 4 in
      let* a = array_size (return (m * n)) (float_range 0. 4.) in
      let* b = array_size (return m) (float_range 1. 10.) in
      let* c = array_size (return n) (float_range 0.1 5.) in
      return (n, m, a, b, c))
  in
  QCheck.Test.make ~count:60 ~name:"KKT value = direct follower optimum"
    (QCheck.make gen) (fun (n, m, a, b, c) ->
      (* nonneg A and c > 0 with b >= 1: feasible (x=0) and bounded *)
      let model = Model.create () in
      let rows =
        List.init m (fun i ->
            {
              Inner_problem.row_name = Printf.sprintf "r%d" i;
              inner_terms =
                List.filter_map
                  (fun j ->
                    let v = a.((i * n) + j) in
                    if v = 0. then None else Some (j, v))
                  (List.init n (fun j -> j));
              outer_terms = [];
              sense = Inner_problem.Le;
              rhs = b.(i);
            })
      in
      (* keep it bounded: budget row over all vars *)
      let budget =
        {
          Inner_problem.row_name = "budget";
          inner_terms = List.init n (fun j -> (j, 1.));
          outer_terms = [];
          sense = Inner_problem.Le;
          rhs = 50.;
        }
      in
      let inner =
        Inner_problem.create ~name:"prop" ~num_vars:n
          ~objective:(List.init n (fun j -> (j, c.(j))))
          (budget :: rows)
      in
      let emitted = Kkt.emit model inner in
      Model.set_objective model Model.Maximize Linexpr.zero;
      let r = Solver.solve model in
      if r.Branch_bound.outcome <> Branch_bound.Optimal then
        QCheck.Test.fail_reportf "KKT system not solved";
      let x =
        Array.map
          (fun v -> (Option.get r.Branch_bound.primal).(v))
          emitted.Kkt.x
      in
      let kkt_value = Inner_problem.value inner x in
      let direct = Inner_problem.solve_directly inner ~outer_values:(fun _ -> 0.) in
      if Float.abs (kkt_value -. direct.Solver.objective) > 1e-4 then
        QCheck.Test.fail_reportf "kkt %g <> direct %g" kkt_value
          direct.Solver.objective
      else true)

(* ------------------------------------------------------------------ *)
(* Evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let fig1_pathset () =
  let g = Topologies.fig1 () in
  Pathset.compute (Demand.full_space g) ~k:2

let fig1_demand pathset ~d01 ~d12 ~d02 =
  let space = Pathset.space pathset in
  let demand = Demand.zero space in
  demand.(Option.get (Demand.index space ~src:0 ~dst:1)) <- d01;
  demand.(Option.get (Demand.index space ~src:1 ~dst:2)) <- d12;
  demand.(Option.get (Demand.index space ~src:0 ~dst:2)) <- d02;
  demand

let test_evaluate_dp_fig1 () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let demand = fig1_demand pathset ~d01:130. ~d12:180. ~d02:50. in
  check_float "opt" 360. (Evaluate.opt_value ev demand);
  check_float "dp" 260. (Option.get (Evaluate.heuristic_value ev demand));
  check_float "gap" 100. (Option.get (Evaluate.gap ev demand));
  check_float "normalized" (100. /. 360.)
    (Option.get (Evaluate.normalized_gap ev demand))

let test_evaluate_pop_average () =
  let g = Topologies.abilene () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let rng = Rng.create 5 in
  let ev = Evaluate.make_pop pathset ~parts:2 ~instances:3 ~rng () in
  Alcotest.(check int) "three instances" 3 (List.length (Evaluate.partitions ev));
  let demand = Demand.uniform (Pathset.space pathset) ~rng ~max:400. in
  let h = Option.get (Evaluate.heuristic_value ev demand) in
  let opt = Evaluate.opt_value ev demand in
  Alcotest.(check bool) "pop <= opt" true (h <= opt +. 1e-6);
  (* average equals the mean of per-instance runs *)
  let totals =
    List.map
      (fun p -> (Pop.solve pathset ~parts:2 p demand).Pop.total)
      (Evaluate.partitions ev)
  in
  check_float "average" (List.fold_left ( +. ) 0. totals /. 3.) h

let test_evaluate_pop_kth_smallest () =
  let g = Topologies.swan () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let rng = Rng.create 6 in
  let ev_avg = Evaluate.make_pop pathset ~parts:2 ~instances:4 ~rng:(Rng.create 6) () in
  let ev_tail =
    Evaluate.make_pop pathset ~parts:2 ~instances:4 ~rng:(Rng.create 6)
      ~reduce:(`Kth_smallest 1) ()
  in
  let demand = Demand.uniform (Pathset.space pathset) ~rng ~max:300. in
  let avg = Option.get (Evaluate.heuristic_value ev_avg demand) in
  let worst = Option.get (Evaluate.heuristic_value ev_tail demand) in
  Alcotest.(check bool) "worst instance <= average" true (worst <= avg +. 1e-9)

let test_evaluate_dp_infeasible () =
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:10. () in
  let space = Demand.space_of_pairs g [| (0, 1); (0, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  let ev = Evaluate.make_dp pathset ~threshold:8. in
  Alcotest.(check bool) "infeasible pinning = None" true
    (Evaluate.gap ev [| 8.; 8. |] = None)

(* ------------------------------------------------------------------ *)
(* Input constraints                                                   *)
(* ------------------------------------------------------------------ *)

let test_constraints_box_and_goalpost () =
  let reference = [| 10.; 20.; 30. |] in
  let c =
    Input_constraints.combine
      (Input_constraints.box ~upper:[| 100.; 100.; 25. |] ())
      (Input_constraints.goalpost ~reference ~distance:5. ~relative:false ())
  in
  Alcotest.(check bool) "ok point" true
    (Input_constraints.satisfied c [| 12.; 18.; 25. |]);
  Alcotest.(check bool) "goalpost violated" false
    (Input_constraints.satisfied c [| 16.; 20.; 30. |]);
  Alcotest.(check bool) "box violated" false
    (Input_constraints.satisfied c [| 10.; 20.; 26. |]);
  let projected = Input_constraints.project c [| 100.; 0.; 60. |] in
  Alcotest.(check bool) "projection satisfies" true
    (Input_constraints.satisfied c projected)

let test_constraints_relative_goalpost () =
  let c =
    Input_constraints.goalpost ~reference:[| 100.; 10. |] ~distance:0.2
      ~relative:true ()
  in
  Alcotest.(check bool) "within 20%" true (Input_constraints.satisfied c [| 119.; 8.5 |]);
  Alcotest.(check bool) "outside 20%" false
    (Input_constraints.satisfied c [| 121.; 10. |])

let test_constraints_partial_goalpost () =
  let c =
    Input_constraints.goalpost ~pairs:[ 0 ] ~reference:[| 10.; 10. |]
      ~distance:1. ~relative:false ()
  in
  (* pair 1 is unconstrained *)
  Alcotest.(check bool) "partial" true (Input_constraints.satisfied c [| 10.5; 999. |])

let test_constraints_within_factor_of_average () =
  let c = Input_constraints.within_factor_of_average ~num_pairs:3 ~factor:2. in
  Alcotest.(check bool) "balanced ok" true
    (Input_constraints.satisfied c [| 10.; 12.; 14. |]);
  Alcotest.(check bool) "spike rejected" false
    (Input_constraints.satisfied c [| 100.; 1.; 1. |])

let test_constraints_hose_model () =
  let g = Topologies.fig1 () in
  let space = Demand.full_space g in
  let egress = [| 100.; 50.; 10. |] and ingress = [| 500.; 500.; 120. |] in
  ignore
    (Alcotest.check_raises "size check"
       (Invalid_argument "Input_constraints.hose: need one cap per node")
       (fun () ->
         ignore (Input_constraints.hose ~space ~egress:[| 1. |] ~ingress)));
  let c = Input_constraints.hose ~space ~egress ~ingress in
  let demand src dst v =
    let d = Demand.zero space in
    d.(Option.get (Demand.index space ~src ~dst)) <- v;
    d
  in
  Alcotest.(check bool) "within egress" true
    (Input_constraints.satisfied c (demand 0 1 99.));
  Alcotest.(check bool) "egress violated" false
    (Input_constraints.satisfied c (demand 0 1 101.));
  Alcotest.(check bool) "ingress violated" false
    (Input_constraints.satisfied c (demand 0 2 121.));
  (* sums across destinations count against the source's egress cap *)
  let d = Demand.zero space in
  d.(Option.get (Demand.index space ~src:1 ~dst:0)) <- 30.;
  d.(Option.get (Demand.index space ~src:1 ~dst:2)) <- 30.;
  Alcotest.(check bool) "egress sums" false (Input_constraints.satisfied c d);
  (* and the white-box adversary respects hose caps: node 0's egress cap
     of 170 admits at most gap 90 (d02 = 50, d01 = 120, d12 free) *)
  let hose_caps =
    Input_constraints.hose ~space ~egress:[| 170.; 200.; 10. |]
      ~ingress:[| 500.; 500.; 500. |]
  in
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let options = { Adversary.default_options with constraints = hose_caps } in
  let r = Adversary.find ev ~options () in
  Alcotest.(check bool) "adversary within hose" true
    (Input_constraints.satisfied hose_caps r.Adversary.demands);
  Alcotest.(check bool)
    (Printf.sprintf "gap %.1f positive but throttled" r.Adversary.gap)
    true
    (r.Adversary.gap > 0. && r.Adversary.gap <= 90. +. 1e-6)

let test_constraints_apply_to_model () =
  let model = Model.create () in
  let dvars = Model.add_vars ~ub:100. model 2 in
  let c =
    Input_constraints.combine
      (Input_constraints.goalpost ~reference:[| 50.; 50. |] ~distance:10.
         ~relative:false ())
      (Input_constraints.within_factor_of_average ~num_pairs:2 ~factor:1.1)
  in
  Input_constraints.apply model ~demand_vars:dvars c;
  Model.set_objective model Model.Maximize (Linexpr.var dvars.(0));
  let r = Solver.solve_lp model in
  (* d0 <= 60 by goalpost; d0 <= 1.1*(d0+d1)/2 binds too:
     max d0 with d1 <= 60: d0 <= 0.55 d0 + 0.55 d1 -> 0.45 d0 <= 0.55*60 *)
  Alcotest.(check (float 1e-4)) "tightest bound wins"
    (Float.min 60. (0.55 *. 60. /. 0.45))
    r.Solver.objective

(* ------------------------------------------------------------------ *)
(* Gap problem encodings vs oracle                                     *)
(* ------------------------------------------------------------------ *)

(* Fix the demand variables to a concrete matrix and solve the metaopt
   MILP: its objective must equal the oracle gap at that matrix. This
   validates the whole encoding chain (big-M, KKT, SOS1 branching). *)
let gap_model_at_fixed_demand pathset heuristic demand =
  let gp = Gap_problem.build pathset ~heuristic () in
  Array.iteri
    (fun k v ->
      Model.set_var_bounds gp.Gap_problem.model v ~lb:demand.(k) ~ub:demand.(k))
    gp.Gap_problem.demand_vars;
  let r =
    Branch_bound.solve
      ~options:
        { Branch_bound.default_options with time_limit = 30.; stall_time = 30. }
      gp.Gap_problem.model
  in
  r

let test_dp_encoding_matches_oracle_fig1 () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let cases =
    [
      (130., 180., 50.);
      (100., 100., 30.);
      (20., 20., 20.);
      (180., 180., 0.);
      (130., 180., 60.) (* d02 above threshold: nothing pinned *);
    ]
  in
  List.iter
    (fun (d01, d12, d02) ->
      let demand = fig1_demand pathset ~d01 ~d12 ~d02 in
      let r = gap_model_at_fixed_demand pathset (Gap_problem.Dp { threshold = 50. }) demand in
      Alcotest.(check bool) "solved" true
        (r.Branch_bound.outcome = Branch_bound.Optimal);
      let oracle = Option.get (Evaluate.gap ev demand) in
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "gap at (%g,%g,%g)" d01 d12 d02)
        oracle r.Branch_bound.objective)
    cases

let test_pop_encoding_matches_oracle () =
  let g = Topologies.line ~n:4 ~capacity:100. () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let rng = Rng.create 77 in
  let ev = Evaluate.make_pop pathset ~parts:2 ~instances:2 ~rng () in
  let heuristic = Adversary.heuristic_of_spec ev in
  let demand = Demand.uniform (Pathset.space pathset) ~rng ~max:80. in
  let r = gap_model_at_fixed_demand pathset heuristic demand in
  Alcotest.(check bool) "solved" true
    (r.Branch_bound.outcome = Branch_bound.Optimal);
  let oracle = Option.get (Evaluate.gap ev demand) in
  Alcotest.(check (float 1e-3)) "pop gap matches" oracle r.Branch_bound.objective

let test_pop_tail_encoding_matches_oracle () =
  let g = Topologies.line ~n:3 ~capacity:100. () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let rng = Rng.create 13 in
  let ev =
    Evaluate.make_pop pathset ~parts:2 ~instances:3 ~rng
      ~reduce:(`Kth_smallest 1) ()
  in
  let heuristic = Adversary.heuristic_of_spec ev in
  let demand = Demand.uniform (Pathset.space pathset) ~rng ~max:70. in
  let r = gap_model_at_fixed_demand pathset heuristic demand in
  let oracle = Option.get (Evaluate.gap ev demand) in
  Alcotest.(check (float 1e-3)) "tail gap matches" oracle r.Branch_bound.objective

(* Randomized version of the encoding consistency check: demands drawn
   away from the threshold's epsilon sliver, MILP optimum at fixed demands
   must equal the simulation oracle. *)
let dp_encoding_oracle_property =
  QCheck.Test.make ~count:15 ~name:"DP encoding = oracle on random fig1 demands"
    QCheck.(triple (int_range 0 180) (int_range 0 180) (int_range 0 60))
    (fun (d01, d12, d02) ->
      (* integer demands can still sit exactly on the threshold: that is
         the pinned side in both semantics, so no gray-zone exclusion is
         needed *)
      let pathset = fig1_pathset () in
      let ev = Evaluate.make_dp pathset ~threshold:50. in
      let demand =
        fig1_demand pathset ~d01:(float_of_int d01) ~d12:(float_of_int d12)
          ~d02:(float_of_int d02)
      in
      let r =
        gap_model_at_fixed_demand pathset
          (Gap_problem.Dp { threshold = 50. })
          demand
      in
      match (r.Branch_bound.outcome, Evaluate.gap ev demand) with
      | Branch_bound.Optimal, Some oracle ->
          if Float.abs (r.Branch_bound.objective -. oracle) > 1e-3 then
            QCheck.Test.fail_reportf "milp %g <> oracle %g at (%d,%d,%d)"
              r.Branch_bound.objective oracle d01 d12 d02
          else true
      | Branch_bound.Infeasible, None -> true
      | outcome, oracle ->
          QCheck.Test.fail_reportf "mismatch: milp %s, oracle %s"
            (match outcome with
            | Branch_bound.Optimal -> "optimal"
            | Branch_bound.Infeasible -> "infeasible"
            | _ -> "other")
            (match oracle with
            | Some _ -> "feasible"
            | None -> "infeasible"))

let test_gap_problem_sizes () =
  let pathset = fig1_pathset () in
  let gp = Gap_problem.build pathset ~heuristic:(Gap_problem.Dp { threshold = 50. }) () in
  let vars, constrs, sos = Gap_problem.size gp in
  Alcotest.(check bool) "has vars" true (vars > 0);
  Alcotest.(check bool) "has constrs" true (constrs > 0);
  Alcotest.(check bool) "has sos" true (sos > 0);
  let baselines =
    Gap_problem.baseline_sizes pathset ~heuristic:(Gap_problem.Dp { threshold = 50. })
  in
  Alcotest.(check int) "three baselines" 3 (List.length baselines);
  let _, (opt_vars, _, opt_sos) = List.hd baselines in
  Alcotest.(check bool) "metaopt larger than opt alone" true (vars > opt_vars);
  Alcotest.(check int) "plain opt has no sos" 0 opt_sos;
  (* the naive ablation (OPT also KKT-rewritten) must be strictly larger *)
  let _, (naive_vars, _, naive_sos) = List.nth baselines 2 in
  Alcotest.(check bool) "naive bigger" true (naive_vars > vars && naive_sos > sos)

(* ------------------------------------------------------------------ *)
(* White-box adversary end to end                                      *)
(* ------------------------------------------------------------------ *)

let test_whitebox_fig1_finds_max_gap () =
  (* the provably maximal gap on fig1 with T=50 is 100 (see test_te for
     the arithmetic): the white-box search must find it *)
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let r = Adversary.find ev () in
  Alcotest.(check (float 0.5)) "gap 100" 100. r.Adversary.gap;
  (* oracle-consistency of the reported numbers *)
  check_float "opt - heur = gap" r.Adversary.gap
    (r.Adversary.opt_value -. r.Adversary.heuristic_value);
  (match r.Adversary.upper_bound with
  | Some ub -> Alcotest.(check bool) "bound >= gap" true (ub >= r.Adversary.gap -. 1e-6)
  | None -> Alcotest.fail "expected a bound");
  (* the found demands are a genuine witness *)
  let verified = Option.get (Evaluate.gap ev r.Adversary.demands) in
  check_float "witness verified" r.Adversary.gap verified

let test_whitebox_trace_monotone () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let r = Adversary.find ev () in
  let gaps = List.map snd r.Adversary.trace in
  Alcotest.(check bool) "non-empty trace" true (gaps <> []);
  Alcotest.(check (list (float 1e-9))) "monotone" (List.sort compare gaps) gaps

let test_whitebox_respects_constraints () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let space = Pathset.space pathset in
  (* goalpost centered near the adversarial matrix but capping d(0->2) at
     45 (< the pinning threshold): the best reachable gap is 2 * 45 = 90,
     strictly below the unconstrained 100 *)
  let reference = Demand.zero space in
  reference.(Option.get (Demand.index space ~src:0 ~dst:1)) <- 130.;
  reference.(Option.get (Demand.index space ~src:1 ~dst:2)) <- 180.;
  reference.(Option.get (Demand.index space ~src:0 ~dst:2)) <- 40.;
  let constraints =
    Input_constraints.goalpost ~reference ~distance:5. ~relative:false ()
  in
  let options = { Adversary.default_options with constraints } in
  let r = Adversary.find ev ~options () in
  Alcotest.(check bool) "demands satisfy goalpost" true
    (Input_constraints.satisfied constraints r.Adversary.demands);
  Alcotest.(check (float 0.5)) "constrained max gap is 90" 90. r.Adversary.gap

let test_whitebox_pop_small () =
  let g = Topologies.line ~n:4 ~capacity:100. () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let ev = Evaluate.make_pop pathset ~parts:2 ~instances:2 ~rng:(Rng.create 3) () in
  let options =
    {
      Adversary.default_options with
      bb =
        { Branch_bound.default_options with time_limit = 20.; stall_time = 4. };
    }
  in
  let r = Adversary.find ev ~options () in
  Alcotest.(check bool) "found a positive gap" true (r.Adversary.gap > 1.);
  let verified = Option.get (Evaluate.gap ev r.Adversary.demands) in
  check_float "verified" r.Adversary.gap verified

let test_whitebox_binary_sweep () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let options =
    {
      Adversary.default_options with
      search = Adversary.Binary_sweep { probes = 4; probe_time = 5. };
    }
  in
  let r = Adversary.find ev ~options () in
  Alcotest.(check bool) "sweep finds a large gap" true (r.Adversary.gap >= 90.);
  match r.Adversary.upper_bound with
  | Some ub -> Alcotest.(check bool) "bound above gap" true (ub >= r.Adversary.gap -. 1e-6)
  | None -> Alcotest.fail "sweep reports a bound"

(* ------------------------------------------------------------------ *)
(* Black-box baselines                                                 *)
(* ------------------------------------------------------------------ *)

let test_blackbox_hill_climb_fig1 () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let options = { Blackbox.default_options with time_limit = 3. } in
  let r = Blackbox.hill_climb ev ~rng:(Rng.create 1) ~options () in
  Alcotest.(check bool) "positive gap" true (r.Blackbox.gap > 0.);
  Alcotest.(check bool) "counted evaluations" true (r.Blackbox.evaluations > 10);
  let verified = Option.get (Evaluate.gap ev r.Blackbox.demands) in
  check_float "verified" r.Blackbox.gap verified

let test_blackbox_sa_fig1 () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let options = { Blackbox.default_options with time_limit = 3. } in
  let r = Blackbox.simulated_annealing ev ~rng:(Rng.create 2) ~options () in
  Alcotest.(check bool) "positive gap" true (r.Blackbox.gap > 0.);
  let verified = Option.get (Evaluate.gap ev r.Blackbox.demands) in
  check_float "verified" r.Blackbox.gap verified

let test_whitebox_beats_blackbox_fig1 () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let wb = Adversary.find ev () in
  let options = { Blackbox.default_options with time_limit = 2. } in
  let hc = Blackbox.hill_climb ev ~rng:(Rng.create 11) ~options () in
  Alcotest.(check bool) "white-box at least as good" true
    (wb.Adversary.gap >= hc.Blackbox.gap -. 1e-6)

let test_blackbox_respects_constraints () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let space = Pathset.space pathset in
  let constraints =
    Input_constraints.box ~upper:(Demand.constant space 40.) ()
  in
  let options =
    { Blackbox.default_options with time_limit = 1.; constraints }
  in
  let r = Blackbox.hill_climb ev ~rng:(Rng.create 7) ~options () in
  Alcotest.(check bool) "bounded demands" true
    (Array.for_all (fun d -> d <= 40. +. 1e-9) r.Blackbox.demands)

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let test_probes_dp_candidates () =
  let pathset = fig1_pathset () in
  let cands = Probes.dp_candidates pathset ~threshold:50. ~demand_ub:180. in
  Alcotest.(check bool) "several candidates" true (List.length cands >= 3);
  (* corners present (unroutable pairs stay at zero) *)
  let corner level c =
    Array.length c > 0
    && Array.for_all Fun.id
         (Array.mapi
            (fun k v -> if Pathset.routable pathset k then v = level else v = 0.)
            c)
  in
  Alcotest.(check bool) "all-at-bound corner" true
    (List.exists (corner 180.) cands);
  Alcotest.(check bool) "all-at-threshold corner" true
    (List.exists (corner 50.) cands);
  (* the hop-sweep family alone finds the max gap on fig1 *)
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  match Probes.best_candidate ev ~constraints:Input_constraints.none cands with
  | None -> Alcotest.fail "no feasible candidate"
  | Some (_, g) -> check_float "hop sweep reaches 100" 100. g

let test_probes_refine_keeps_best () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let start = fig1_demand pathset ~d01:130. ~d12:180. ~d02:50. in
  match
    Probes.refine ev ~constraints:Input_constraints.none ~budget:100
      ~levels:[ 0.; 50.; 180. ] start
  with
  | None -> Alcotest.fail "refine lost a feasible start"
  | Some (_, g) -> Alcotest.(check bool) "never worse than start" true (g >= 100.)

let test_probes_pop_candidates () =
  let g = Topologies.line ~n:4 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let rng = Rng.create 3 in
  let partitions =
    [ Pop.random_partition ~rng ~num_pairs:(Pathset.num_pairs pathset) ~parts:2 ]
  in
  let cands =
    Probes.pop_candidates pathset ~partitions ~parts:2 ~demand_ub:100.
  in
  (* all-at-bound + one per (instance, part) + co-location seeds *)
  Alcotest.(check bool) "enough candidates" true (List.length cands >= 3);
  (* per-part concentration: each such candidate zeroes the other part *)
  let partition = List.hd partitions in
  let concentrated =
    List.filter
      (fun c ->
        Array.for_all (fun v -> v = 0. || v = 100.) c
        &&
        let parts_used =
          List.sort_uniq compare
            (List.filteri (fun _ _ -> true)
               (Array.to_list (Array.mapi (fun k v -> (v > 0., partition.(k))) c))
            |> List.filter_map (fun (hot, p) -> if hot then Some p else None))
        in
        List.length parts_used = 1)
      cands
  in
  Alcotest.(check bool) "has single-part concentrations" true
    (List.length concentrated >= 2)

(* ------------------------------------------------------------------ *)
(* Extensions: exclusions / diverse inputs (paper section 5)           *)
(* ------------------------------------------------------------------ *)

let test_exclusion_semantics () =
  let c = Input_constraints.exclude_ball ~center:[| 10.; 0. |] ~radius:2. in
  Alcotest.(check bool) "center excluded" false
    (Input_constraints.satisfied c [| 10.; 0. |]);
  Alcotest.(check bool) "inside excluded" false
    (Input_constraints.satisfied c [| 9.; 1. |]);
  Alcotest.(check bool) "boundary allowed" true
    (Input_constraints.satisfied c [| 8.; 0. |]);
  Alcotest.(check bool) "outside allowed" true
    (Input_constraints.satisfied c [| 10.; 5. |]);
  let projected = Input_constraints.project c [| 9.5; 0.5 |] in
  Alcotest.(check bool) "projection escapes" true
    (Input_constraints.satisfied c projected)

let test_exclusion_milp_encoding () =
  (* max d0 - 0.1 d1 on [0,10]^2, excluding the ball around (10, 0) of
     radius 2: optimum escapes via d1 = 2 giving 10 - 0.2 = 9.8 *)
  let model = Model.create () in
  let dvars = Model.add_vars ~ub:10. model 2 in
  Input_constraints.apply model ~demand_vars:dvars
    (Input_constraints.exclude_ball ~center:[| 10.; 0. |] ~radius:2.);
  Model.set_objective model Model.Maximize
    Linexpr.(sub (var dvars.(0)) (var ~coef:0.1 dvars.(1)));
  let r = Solver.solve model in
  Alcotest.(check (float 1e-5)) "escape via d1" 9.8 r.Branch_bound.objective

let test_find_diverse () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let results = Adversary.find_diverse ev ~count:2 ~radius:25. () in
  Alcotest.(check int) "two inputs" 2 (List.length results);
  match results with
  | [ a; b ] ->
      check_float "first is the global max" 100. a.Adversary.gap;
      Alcotest.(check bool) "second is positive" true (b.Adversary.gap > 0.);
      Alcotest.(check bool) "second no better" true
        (b.Adversary.gap <= a.Adversary.gap +. 1e-6);
      (* the two inputs differ by >= radius in some coordinate *)
      let max_dev =
        Array.fold_left Float.max 0.
          (Array.map2 (fun x y -> Float.abs (x -. y)) a.Adversary.demands
             b.Adversary.demands)
      in
      Alcotest.(check bool) "diverse" true (max_dev >= 25. -. 1e-6)
  | _ -> Alcotest.fail "expected two"

(* ------------------------------------------------------------------ *)
(* Extensions: quantized demand grid (section 5, scaling)              *)
(* ------------------------------------------------------------------ *)

let test_quantized_gap_problem () =
  let pathset = fig1_pathset () in
  let gp =
    Gap_problem.build pathset
      ~heuristic:(Gap_problem.Dp { threshold = 50. })
      ~quantize:25. ()
  in
  let r =
    Branch_bound.solve
      ~options:
        { Branch_bound.default_options with time_limit = 60.; stall_time = 60. }
      gp.Gap_problem.model
  in
  Alcotest.(check bool) "solved" true
    (r.Branch_bound.outcome = Branch_bound.Optimal);
  (* grid coarsens the optimum a little: between 90 and the true 100 *)
  Alcotest.(check bool)
    (Printf.sprintf "gap %.1f in [90, 100]" r.Branch_bound.objective)
    true
    (r.Branch_bound.objective >= 90. -. 1e-6
    && r.Branch_bound.objective <= 100. +. 1e-6);
  let demands =
    Gap_problem.demands_of_primal gp (Option.get r.Branch_bound.primal)
  in
  Array.iter
    (fun d ->
      let snapped = 25. *. Float.round (d /. 25.) in
      Alcotest.(check (float 1e-4)) "on the grid" snapped d)
    demands

let test_quantized_adversary () =
  (* end-to-end: the adversary with a grid of 25 reports an on-grid input
     whose gap it verified; fig1's best 25-grid point scores 95 *)
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let options = { Adversary.default_options with quantize = Some 25. } in
  let r = Adversary.find ev ~options () in
  Array.iter
    (fun d ->
      Alcotest.(check (float 1e-6)) "on grid" (25. *. Float.round (d /. 25.)) d)
    r.Adversary.demands;
  Alcotest.(check bool)
    (Printf.sprintf "grid gap %.1f in [90, 95]" r.Adversary.gap)
    true
    (r.Adversary.gap >= 90. -. 1e-6 && r.Adversary.gap <= 95. +. 1e-6);
  let verified = Option.get (Evaluate.gap ev r.Adversary.demands) in
  check_float "verified" r.Adversary.gap verified

(* ------------------------------------------------------------------ *)
(* Extensions: POP client splitting, white-box (Appendix A)            *)
(* ------------------------------------------------------------------ *)

let test_client_split_encoding_matches_oracle () =
  let g = Topologies.line ~n:3 ~capacity:100. () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let n_pairs = Pathset.num_pairs pathset in
  let parts = 2 and max_splits = 2 and threshold = 40. in
  let rng = Rng.create 21 in
  let assignment =
    Pop.random_slot_assignment ~rng ~num_pairs:n_pairs ~max_splits ~parts
  in
  (* demand levels covering: below threshold, [th, 2th), >= 2th, and the
     d = threshold tie (appendix: a demand at the threshold splits) *)
  let cases = [ [| 30.; 90.; 10.; 55. |]; [| 40.; 80.; 95.; 0. |] ] in
  List.iter
    (fun base ->
      let demand =
        Array.init n_pairs (fun k -> base.(k mod Array.length base))
      in
      let oracle =
        (Pop.solve_fixed_split pathset ~parts ~threshold ~max_splits
           ~assignment demand)
          .Pop.total
      in
      let model = Model.create () in
      let dvars =
        Array.init n_pairs (fun k ->
            Model.add_var ~lb:demand.(k) ~ub:demand.(k) model)
      in
      let enc =
        Pop_encoding.encode_with_client_split model pathset ~demand_vars:dvars
          ~parts ~threshold ~max_splits ~assignments:[ assignment ]
          ~demand_ub:100. ~reduce:`Average ()
      in
      (* with demands fixed, the level binaries are forced and EVERY point
         of the KKT system carries the follower's optimal value - so a
         pure feasibility solve is a complete check of the encoding *)
      Model.set_objective model Model.Maximize Linexpr.zero;
      let r =
        Branch_bound.solve
          ~options:
            {
              Branch_bound.default_options with
              time_limit = 60.;
              stall_time = 60.;
            }
          model
      in
      Alcotest.(check bool) "solved" true
        (r.Branch_bound.outcome = Branch_bound.Optimal);
      let x = Option.get r.Branch_bound.primal in
      let value = Linexpr.eval enc.Pop_encoding.value (fun v -> x.(v)) in
      Alcotest.(check (float 1e-3)) "split POP value matches" oracle value)
    cases

(* ------------------------------------------------------------------ *)
(* Extensions: sufficient conditions (section 5)                       *)
(* ------------------------------------------------------------------ *)

let test_sufficient_conditions_fig1 () =
  (* family: all demands bounded by r. On fig1 with T = 50 the worst gap
     as a function of r is max(0, r - 80) (see test_te for the flow
     arithmetic), so a gap budget of 20 admits exactly r* = 100 *)
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let n = Pathset.num_pairs pathset in
  let family r = Input_constraints.box ~upper:(Array.make n r) () in
  let r =
    Sufficient_conditions.search ev ~family ~lo:50. ~hi:180. ~gap_budget:20.
      ~probes:9 ()
  in
  (match r.Sufficient_conditions.accepted with
  | None -> Alcotest.fail "expected an accepted parameter"
  | Some accepted ->
      Alcotest.(check (float 3.)) "largest safe bound" 100. accepted);
  Alcotest.(check bool) "probes recorded" true
    (List.length r.Sufficient_conditions.probes >= 5);
  (* every probe's found gap is within its own parameter's theory value *)
  List.iter
    (fun p ->
      let expected = Float.max 0. (p.Sufficient_conditions.parameter -. 80.) in
      Alcotest.(check bool) "probe gap below theory" true
        (p.Sufficient_conditions.worst_gap <= expected +. 1.))
    r.Sufficient_conditions.probes;
  Alcotest.(check bool) "certified by the MILP bound" true
    r.Sufficient_conditions.certified

let test_sufficient_conditions_budget_unreachable () =
  let pathset = fig1_pathset () in
  let ev = Evaluate.make_dp pathset ~threshold:50. in
  let n = Pathset.num_pairs pathset in
  let family r = Input_constraints.box ~upper:(Array.make n r) () in
  (* even r = 150 has worst gap 70 > 5: no acceptance *)
  let r =
    Sufficient_conditions.search ev ~family ~lo:150. ~hi:180. ~gap_budget:5.
      ~probes:3 ()
  in
  Alcotest.(check bool) "rejected" true (r.Sufficient_conditions.accepted = None)

(* ------------------------------------------------------------------ *)
(* Extensions: capacity (topology-change) adversary (section 5)        *)
(* ------------------------------------------------------------------ *)

let test_capacity_adversary_fig1 () =
  let pathset = fig1_pathset () in
  let demand = fig1_demand pathset ~d01:130. ~d12:180. ~d02:50. in
  let g = Pathset.graph pathset in
  let ne = Graph.num_edges g in
  (* capacity intervals around the fig1 values; the worst case is the
     original assignment (gap 100 - see the arithmetic in the module) *)
  let cap_lower = Array.make ne 60. and cap_upper = Array.make ne 200. in
  let e02 = Option.get (Graph.find_edge g 0 2) in
  cap_lower.(e02) <- 10.;
  cap_upper.(e02) <- 50.;
  let r =
    Capacity_adversary.find_dp pathset ~demand ~threshold:50. ~cap_lower
      ~cap_upper ()
  in
  Alcotest.(check (float 1.)) "worst capacity gap" 100. r.Capacity_adversary.gap;
  (* oracle-verified *)
  let verified =
    Option.get
      (Capacity_adversary.evaluate_dp pathset ~demand ~threshold:50.
         ~capacities:r.Capacity_adversary.capacities)
  in
  check_float "witnessed" r.Capacity_adversary.gap verified;
  (match r.Capacity_adversary.upper_bound with
  | Some ub ->
      Alcotest.(check bool) "bound dominates" true
        (ub >= r.Capacity_adversary.gap -. 1e-6)
  | None -> Alcotest.fail "expected a bound");
  (* capacities stay in their intervals *)
  Array.iteri
    (fun e c ->
      Alcotest.(check bool) "within interval" true
        (c >= cap_lower.(e) -. 1e-9 && c <= cap_upper.(e) +. 1e-9))
    r.Capacity_adversary.capacities

let test_capacity_adversary_respects_pinning_feasibility () =
  (* two pairs pinned onto a shared link: capacities below the pinned
     load must never be selected *)
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:100. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100. () in
  let space = Demand.space_of_pairs g [| (0, 1); (0, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  let demand = [| 8.; 8. |] in
  let r =
    Capacity_adversary.find_dp pathset ~demand ~threshold:10.
      ~cap_lower:[| 5.; 5. |] ~cap_upper:[| 100.; 100. |] ()
  in
  (* edge 0 carries both pinned demands: 16 *)
  Alcotest.(check bool) "pinning stays feasible" true
    (r.Capacity_adversary.capacities.(0) >= 16. -. 1e-6)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "metaopt"
    [
      ( "kkt",
        [
          Alcotest.test_case "pins follower" `Quick test_kkt_pins_follower_optimum;
          Alcotest.test_case "resists host" `Quick test_kkt_resists_adversarial_host_objective;
          Alcotest.test_case "equality rows" `Quick test_kkt_equality_rows;
          Alcotest.test_case "infeasible follower" `Quick test_kkt_infeasible_follower_infeasible_host;
          q kkt_matches_direct_property;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "dp fig1" `Quick test_evaluate_dp_fig1;
          Alcotest.test_case "pop average" `Quick test_evaluate_pop_average;
          Alcotest.test_case "pop tail" `Quick test_evaluate_pop_kth_smallest;
          Alcotest.test_case "dp infeasible" `Quick test_evaluate_dp_infeasible;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "box+goalpost" `Quick test_constraints_box_and_goalpost;
          Alcotest.test_case "relative goalpost" `Quick test_constraints_relative_goalpost;
          Alcotest.test_case "partial goalpost" `Quick test_constraints_partial_goalpost;
          Alcotest.test_case "factor of average" `Quick test_constraints_within_factor_of_average;
          Alcotest.test_case "hose model" `Quick test_constraints_hose_model;
          Alcotest.test_case "apply to model" `Quick test_constraints_apply_to_model;
        ] );
      ( "encodings",
        [
          Alcotest.test_case "dp matches oracle" `Quick test_dp_encoding_matches_oracle_fig1;
          Alcotest.test_case "pop matches oracle" `Quick test_pop_encoding_matches_oracle;
          Alcotest.test_case "pop tail matches oracle" `Quick test_pop_tail_encoding_matches_oracle;
          Alcotest.test_case "sizes" `Quick test_gap_problem_sizes;
          q dp_encoding_oracle_property;
        ] );
      ( "whitebox",
        [
          Alcotest.test_case "fig1 max gap" `Quick test_whitebox_fig1_finds_max_gap;
          Alcotest.test_case "trace monotone" `Quick test_whitebox_trace_monotone;
          Alcotest.test_case "constrained" `Quick test_whitebox_respects_constraints;
          Alcotest.test_case "pop small" `Quick test_whitebox_pop_small;
          Alcotest.test_case "binary sweep" `Quick test_whitebox_binary_sweep;
        ] );
      ( "blackbox",
        [
          Alcotest.test_case "hill climb" `Quick test_blackbox_hill_climb_fig1;
          Alcotest.test_case "simulated annealing" `Quick test_blackbox_sa_fig1;
          Alcotest.test_case "whitebox >= blackbox" `Quick test_whitebox_beats_blackbox_fig1;
          Alcotest.test_case "constraints" `Quick test_blackbox_respects_constraints;
        ] );
      ( "probes",
        [
          Alcotest.test_case "dp candidates" `Quick test_probes_dp_candidates;
          Alcotest.test_case "refine keeps best" `Quick test_probes_refine_keeps_best;
          Alcotest.test_case "pop candidates" `Quick test_probes_pop_candidates;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "exclusion semantics" `Quick test_exclusion_semantics;
          Alcotest.test_case "exclusion milp" `Quick test_exclusion_milp_encoding;
          Alcotest.test_case "diverse inputs" `Quick test_find_diverse;
          Alcotest.test_case "quantized grid" `Quick test_quantized_gap_problem;
          Alcotest.test_case "quantized adversary" `Quick test_quantized_adversary;
          Alcotest.test_case "client-split encoding" `Quick
            test_client_split_encoding_matches_oracle;
          Alcotest.test_case "sufficient conditions" `Quick
            test_sufficient_conditions_fig1;
          Alcotest.test_case "sufficient conditions unreachable" `Quick
            test_sufficient_conditions_budget_unreachable;
          Alcotest.test_case "capacity adversary" `Quick
            test_capacity_adversary_fig1;
          Alcotest.test_case "capacity pinning feasibility" `Quick
            test_capacity_adversary_respects_pinning_feasibility;
        ] );
    ]
