(* Tests for the traffic-engineering substrate (Repro_te): OptMaxFlow,
   Demand Pinning, POP, allocations, sorting networks. The paper's Fig 1
   numbers are asserted exactly. *)

open Repro_topology
open Repro_te

let check_float = Alcotest.(check (float 1e-6))

let fig1_setup () =
  let g = Topologies.fig1 () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:2 in
  let demand = Demand.zero space in
  let set s d v =
    match Demand.index space ~src:s ~dst:d with
    | Some k -> demand.(k) <- v
    | None -> Alcotest.fail "missing pair"
  in
  (* paper Fig 1 demands (nodes 1,2,3 are 0,1,2): 1->3: 50, 1->2: 130, 2->3: 180 *)
  set 0 2 50.;
  set 0 1 130.;
  set 1 2 180.;
  (g, space, pathset, demand)

(* ------------------------------------------------------------------ *)
(* Pathset                                                             *)
(* ------------------------------------------------------------------ *)

let test_pathset_fig1 () =
  let g, space, pathset, _ = fig1_setup () in
  ignore g;
  let k02 = Option.get (Demand.index space ~src:0 ~dst:2) in
  Alcotest.(check bool) "0->2 routable" true (Pathset.routable pathset k02);
  Alcotest.(check int) "two paths for 0->2" 2
    (Array.length (Pathset.paths_of_pair pathset k02));
  Alcotest.(check int) "shortest is 2 hops" 2 (Paths.hops (Pathset.shortest pathset k02));
  (* reverse pairs are unroutable in the unidirectional triangle *)
  let k20 = Option.get (Demand.index space ~src:2 ~dst:0) in
  Alcotest.(check bool) "2->0 unroutable" false (Pathset.routable pathset k20)

let test_pathset_incidence () =
  let g = Topologies.line ~n:3 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  (* middle edge 0->1 is used by pairs (0,1) and (0,2) *)
  let e01 = Option.get (Graph.find_edge g 0 1) in
  let users = Pathset.pairs_using_edge pathset e01 in
  Alcotest.(check int) "two users" 2 (List.length users)

let test_mcf_only_filter_and_scale () =
  let open Repro_lp in
  let g = Topologies.line ~n:2 ~capacity:100. () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:1 in
  let model = Model.create () in
  (* include only pair 0, capacities halved *)
  let vars =
    Mcf.add_feasible_flow ~only:(fun k -> k = 0) ~cap_scale:0.5 model pathset
      (Mcf.Const [| 1000.; 1000. |])
  in
  Alcotest.(check int) "pair 1 excluded" 0 (Array.length vars.(1));
  Model.set_objective model Model.Maximize (Mcf.total_flow_expr vars);
  let r = Solver.solve_lp model in
  Alcotest.(check (float 1e-6)) "halved capacity binds" 50. r.Solver.objective;
  (* reading back into an allocation fills excluded pairs with zeros *)
  let alloc = Mcf.allocation_of_primal pathset vars r.Solver.primal in
  Alcotest.(check (float 1e-9)) "excluded pair carries 0" 0.
    (Allocation.flow_of_pair alloc 1)

let test_mcf_demand_bound_as_variable () =
  let open Repro_lp in
  (* the metaopt usage: demand enters as a model variable *)
  let g = Topologies.line ~n:2 ~capacity:100. () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:1 in
  let model = Model.create () in
  let dvars = Model.add_vars ~ub:30. model 2 in
  let vars = Mcf.add_feasible_flow model pathset (Mcf.Var dvars) in
  Model.set_objective model Model.Maximize (Mcf.total_flow_expr vars);
  let r = Solver.solve_lp model in
  (* flows chase the demand variables up to their 30-unit bound *)
  Alcotest.(check (float 1e-6)) "demand-var bound binds" 60. r.Solver.objective

(* ------------------------------------------------------------------ *)
(* OptMaxFlow                                                          *)
(* ------------------------------------------------------------------ *)

let test_opt_fig1 () =
  let _, _, pathset, demand = fig1_setup () in
  let r = Opt_max_flow.solve pathset demand in
  check_float "OPT carries everything" 360. r.Opt_max_flow.total;
  match Allocation.check r.Opt_max_flow.allocation ~demand () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_opt_respects_capacity () =
  let g = Topologies.line ~n:2 () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:1 in
  let demand = Demand.constant space 5000. in
  let r = Opt_max_flow.solve pathset demand in
  (* one edge each direction, capacity 1000 *)
  check_float "capped" 2000. r.Opt_max_flow.total

let test_opt_zero_demand () =
  let g = Topologies.b4 () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:2 in
  let r = Opt_max_flow.solve pathset (Demand.zero space) in
  check_float "zero" 0. r.Opt_max_flow.total

let test_opt_multipath_split () =
  (* two disjoint 2-hop paths of capacity 10 each: demand 20 can be served
     only by splitting *)
  let g = Graph.create ~num_nodes:4 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10. () in
  let _ = Graph.add_edge g ~src:1 ~dst:3 ~capacity:10. () in
  let _ = Graph.add_edge g ~src:0 ~dst:2 ~capacity:10. () in
  let _ = Graph.add_edge g ~src:2 ~dst:3 ~capacity:10. () in
  let space = Demand.space_of_pairs g [| (0, 3) |] in
  let pathset = Pathset.compute space ~k:2 in
  let r = Opt_max_flow.solve pathset [| 20. |] in
  check_float "split across paths" 20. r.Opt_max_flow.total

(* ------------------------------------------------------------------ *)
(* Demand pinning                                                      *)
(* ------------------------------------------------------------------ *)

let test_dp_fig1 () =
  let _, space, pathset, demand = fig1_setup () in
  match Demand_pinning.solve pathset ~threshold:50. demand with
  | Demand_pinning.Infeasible_pinning _ -> Alcotest.fail "should be feasible"
  | Demand_pinning.Feasible { total; pinned_flow; pinned; allocation } ->
      (* the paper's headline: DP carries 260 vs OPT 360, gap 100 *)
      check_float "DP total" 260. total;
      check_float "pinned volume" 50. pinned_flow;
      let k02 = Option.get (Demand.index space ~src:0 ~dst:2) in
      let k01 = Option.get (Demand.index space ~src:0 ~dst:1) in
      Alcotest.(check bool) "0->2 pinned" true pinned.(k02);
      Alcotest.(check bool) "0->1 not pinned" false pinned.(k01);
      (match Allocation.check allocation ~demand () with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* the pinned pair's flow rides the shortest (two-hop) path *)
      check_float "pinned on shortest" 50. allocation.Allocation.flows.(k02).(0)

let test_dp_zero_threshold_equals_opt () =
  let _, _, pathset, demand = fig1_setup () in
  let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
  match Demand_pinning.solve pathset ~threshold:0. demand with
  | Demand_pinning.Feasible { total; pinned_flow; _ } ->
      check_float "nothing pinned" 0. pinned_flow;
      check_float "equals OPT" opt total
  | Demand_pinning.Infeasible_pinning _ -> Alcotest.fail "feasible"

let test_dp_never_beats_opt () =
  let g = Topologies.abilene () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:2 in
  let rng = Rng.create 99 in
  for _ = 1 to 5 do
    let demand = Demand.uniform space ~rng ~max:300. in
    let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
    match Demand_pinning.solve pathset ~threshold:50. demand with
    | Demand_pinning.Feasible { total; _ } ->
        Alcotest.(check bool) "DP <= OPT" true (total <= opt +. 1e-6)
    | Demand_pinning.Infeasible_pinning _ -> ()
  done

let test_dp_infeasible_pinning () =
  (* two small demands share the only link out of node 0: 8 + 8 > 10 *)
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:10. () in
  let space = Demand.space_of_pairs g [| (0, 1); (0, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  match Demand_pinning.solve pathset ~threshold:8. [| 8.; 8. |] with
  | Demand_pinning.Infeasible_pinning { load; capacity; _ } ->
      check_float "overload" 16. load;
      check_float "capacity" 10. capacity
  | Demand_pinning.Feasible _ -> Alcotest.fail "should be infeasible"

let test_dp_pins_predicate () =
  Alcotest.(check bool) "zero not pinned" false (Demand_pinning.pins ~threshold:5. 0.);
  Alcotest.(check bool) "at threshold pinned" true (Demand_pinning.pins ~threshold:5. 5.);
  Alcotest.(check bool) "above not pinned" false (Demand_pinning.pins ~threshold:5. 5.1)

(* ------------------------------------------------------------------ *)
(* POP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pop_single_part_is_opt () =
  let _, _, pathset, demand = fig1_setup () in
  let partition = Array.make (Pathset.num_pairs pathset) 0 in
  let r = Pop.solve pathset ~parts:1 partition demand in
  let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
  check_float "POP(1) = OPT" opt r.Pop.total

let test_pop_never_beats_opt () =
  let g = Topologies.b4 () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:2 in
  let rng = Rng.create 4 in
  let demand = Demand.uniform space ~rng ~max:200. in
  let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
  List.iter
    (fun parts ->
      let partition =
        Pop.random_partition ~rng ~num_pairs:(Demand.size space) ~parts
      in
      let r = Pop.solve pathset ~parts partition demand in
      Alcotest.(check bool)
        (Printf.sprintf "POP(%d) <= OPT" parts)
        true
        (r.Pop.total <= opt +. 1e-6);
      (* union allocation is feasible at full capacities *)
      match Allocation.check r.Pop.allocation ~demand () with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 2; 3; 4 ]

let test_pop_partition_balanced () =
  let rng = Rng.create 8 in
  let p = Pop.random_partition ~rng ~num_pairs:10 ~parts:3 in
  let counts = Array.make 3 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) p;
  Array.iter
    (fun c -> Alcotest.(check bool) "balanced" true (c >= 3 && c <= 4))
    counts

let test_pop_per_part_sums () =
  let _, _, pathset, demand = fig1_setup () in
  let rng = Rng.create 2 in
  let partition =
    Pop.random_partition ~rng ~num_pairs:(Pathset.num_pairs pathset) ~parts:2
  in
  let r = Pop.solve pathset ~parts:2 partition demand in
  check_float "parts sum to total" r.Pop.total
    (Array.fold_left ( +. ) 0. r.Pop.per_part)

let test_client_split () =
  let split = Pop.client_split [| 100.; 30.; 10. |] ~threshold:40. ~max_splits:2 in
  (* 100 -> halve twice (100 >= 40, 50 >= 40) -> 4 x 25
     30 < 40 -> 1 x 30 ; 10 -> 1 x 10 *)
  Alcotest.(check int) "virtual clients" 6 (Array.length split.Pop.origin);
  check_float "volume preserved" 140.
    (Array.fold_left ( +. ) 0. split.Pop.volumes);
  let of_origin k =
    List.filter_map
      (fun (o, v) -> if o = k then Some v else None)
      (Array.to_list (Array.map2 (fun o v -> (o, v)) split.Pop.origin split.Pop.volumes))
  in
  Alcotest.(check (list (float 1e-9))) "pair 0 split into quarters"
    [ 25.; 25.; 25.; 25. ] (of_origin 0);
  Alcotest.(check (list (float 1e-9))) "pair 1 untouched" [ 30. ] (of_origin 1)

let test_client_split_respects_max () =
  let split = Pop.client_split [| 1000. |] ~threshold:1. ~max_splits:3 in
  Alcotest.(check int) "8 clients" 8 (Array.length split.Pop.origin);
  check_float "each 125" 125. split.Pop.volumes.(0)

let test_pop_with_client_split_feasible () =
  let g = Topologies.abilene () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:2 in
  let rng = Rng.create 31 in
  let demand = Demand.bimodal space ~rng ~fraction_large:0.2 ~small_max:20. ~large_max:600. in
  let r =
    Pop.solve_with_client_split pathset ~parts:2 ~rng ~threshold:100. ~max_splits:2 demand
  in
  let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
  Alcotest.(check bool) "<= OPT" true (r.Pop.total <= opt +. 1e-6);
  match Allocation.check r.Pop.allocation ~demand () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pop_slot_helpers () =
  Alcotest.(check int) "levels" 0 (Pop.split_level ~threshold:40. ~max_splits:2 30.);
  Alcotest.(check int) "tie splits" 1 (Pop.split_level ~threshold:40. ~max_splits:2 40.);
  Alcotest.(check int) "one split" 1 (Pop.split_level ~threshold:40. ~max_splits:2 79.);
  Alcotest.(check int) "two splits" 2 (Pop.split_level ~threshold:40. ~max_splits:2 80.);
  Alcotest.(check int) "capped" 2 (Pop.split_level ~threshold:40. ~max_splits:2 10000.);
  Alcotest.(check int) "slots" 7 (Pop.num_slots ~max_splits:2);
  Alcotest.(check int) "slot id" 0 (Pop.slot ~max_splits:2 ~pair:0 ~level:0 ~copy:0);
  Alcotest.(check int) "level 1 copy 1" 2 (Pop.slot ~max_splits:2 ~pair:0 ~level:1 ~copy:1);
  Alcotest.(check int) "next pair" 7 (Pop.slot ~max_splits:2 ~pair:1 ~level:0 ~copy:0);
  Alcotest.check_raises "bad copy" (Invalid_argument "Pop.slot: bad copy")
    (fun () -> ignore (Pop.slot ~max_splits:2 ~pair:0 ~level:1 ~copy:2))

let test_pop_fixed_split_matches_levels () =
  (* one pair, one link: splitting cannot change a single-pair total, but
     the per-part volumes must follow the slot assignment *)
  let g = Topologies.line ~n:2 ~capacity:100. () in
  let space = Demand.space_of_pairs g [| (0, 1) |] in
  let pathset = Pathset.compute space ~k:1 in
  let max_splits = 1 in
  (* slots: level0 -> part0, level1 copies -> parts 0 and 1 *)
  let assignment = [| 0; 0; 1 |] in
  (* d = 30 < threshold 40: level 0, all volume in part 0 => capped at 50 *)
  let r0 =
    Pop.solve_fixed_split pathset ~parts:2 ~threshold:40. ~max_splits
      ~assignment [| 30. |]
  in
  Alcotest.(check (float 1e-6)) "level 0 volume" 30. r0.Pop.total;
  (* d = 90 >= 40: one split, 45 in each part; each part has 50 capacity *)
  let r1 =
    Pop.solve_fixed_split pathset ~parts:2 ~threshold:40. ~max_splits
      ~assignment [| 90. |]
  in
  Alcotest.(check (float 1e-6)) "split across parts" 90. r1.Pop.total;
  (* without splitting the same demand is capped at one part's 50 *)
  let r2 = Pop.solve pathset ~parts:2 [| 0 |] [| 90. |] in
  Alcotest.(check (float 1e-6)) "unsplit capped" 50. r2.Pop.total

(* ------------------------------------------------------------------ *)
(* Max-min fairness                                                    *)
(* ------------------------------------------------------------------ *)

let test_max_min_shared_link () =
  (* two pairs share one 100-capacity link; equal demands split evenly *)
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:100. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100. () in
  let space = Demand.space_of_pairs g [| (0, 2); (1, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  let r = Max_min_fairness.solve pathset [| 80.; 80. |] in
  Alcotest.(check (float 1e-4)) "pair 0" 50. r.Max_min_fairness.levels.(0);
  Alcotest.(check (float 1e-4)) "pair 1" 50. r.Max_min_fairness.levels.(1);
  Alcotest.(check bool) "certified fair" true
    (Max_min_fairness.is_max_min_fair pathset [| 80.; 80. |] r.Max_min_fairness.levels)

let test_max_min_small_demand_released () =
  (* the small demand saturates at 20; the big one takes the rest *)
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:100. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100. () in
  let space = Demand.space_of_pairs g [| (0, 2); (1, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  let demand = [| 20.; 500. |] in
  let r = Max_min_fairness.solve pathset demand in
  Alcotest.(check (float 1e-4)) "small gets demand" 20. r.Max_min_fairness.levels.(0);
  Alcotest.(check (float 1e-4)) "big gets remainder" 80. r.Max_min_fairness.levels.(1);
  Alcotest.(check bool) "certified fair" true
    (Max_min_fairness.is_max_min_fair pathset demand r.Max_min_fairness.levels)

let test_max_min_unfair_rejected () =
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:100. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100. () in
  let space = Demand.space_of_pairs g [| (0, 2); (1, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  (* (30, 50) wastes 20 units that pair 0 could use *)
  Alcotest.(check bool) "not fair" false
    (Max_min_fairness.is_max_min_fair pathset [| 80.; 80. |] [| 30.; 50. |])

let test_max_min_two_levels () =
  (* star: leaves 1 and 2 send to leaf 3 through the hub; leaf 1's access
     link is thin, so it freezes early and leaf 2 takes more *)
  let g = Graph.create ~num_nodes:4 () in
  let _ = Graph.add_edge g ~src:1 ~dst:0 ~capacity:10. () in
  let _ = Graph.add_edge g ~src:2 ~dst:0 ~capacity:100. () in
  let _ = Graph.add_edge g ~src:0 ~dst:3 ~capacity:60. () in
  let space = Demand.space_of_pairs g [| (1, 3); (2, 3) |] in
  let pathset = Pathset.compute space ~k:1 in
  let demand = [| 100.; 100. |] in
  let r = Max_min_fairness.solve pathset demand in
  Alcotest.(check (float 1e-4)) "thin leaf" 10. r.Max_min_fairness.levels.(0);
  Alcotest.(check (float 1e-4)) "thick leaf" 50. r.Max_min_fairness.levels.(1);
  Alcotest.(check bool) "multiple rounds" true (r.Max_min_fairness.rounds >= 2);
  match
    Allocation.check r.Max_min_fairness.allocation ~demand ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let max_min_feasible_property =
  QCheck.Test.make ~count:20 ~name:"max-min allocations are feasible and fair"
    QCheck.(pair (int_range 0 1000) (int_range 4 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Topologies.circle ~n ~neighbors:1 ~capacity:50. () in
      let space = Demand.full_space g in
      let pathset = Pathset.compute space ~k:2 in
      let demand = Demand.uniform space ~rng ~max:60. in
      let r = Max_min_fairness.solve pathset demand in
      (match Allocation.check r.Max_min_fairness.allocation ~demand () with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible: %s" e);
      (* levels within demands *)
      Array.iteri
        (fun k level ->
          if level > demand.(k) +. 1e-6 then
            QCheck.Test.fail_reportf "level above demand on pair %d" k)
        r.Max_min_fairness.levels;
      Max_min_fairness.is_max_min_fair pathset demand r.Max_min_fairness.levels)

(* ------------------------------------------------------------------ *)
(* Utility curves                                                      *)
(* ------------------------------------------------------------------ *)

let test_utility_curve_eval () =
  let c = Utility.curve [ (10., 2.); (10., 1.); (20., 0.5) ] in
  Alcotest.(check (float 1e-9)) "span" 40. (Utility.span c);
  Alcotest.(check (float 1e-9)) "first segment" 10. (Utility.value c 5.);
  Alcotest.(check (float 1e-9)) "kink" 20. (Utility.value c 10.);
  Alcotest.(check (float 1e-9)) "second" 25. (Utility.value c 15.);
  Alcotest.(check (float 1e-9)) "beyond span" 40. (Utility.value c 100.);
  Alcotest.check_raises "convex rejected"
    (Invalid_argument "Utility.curve: slopes must be non-increasing (concavity)")
    (fun () -> ignore (Utility.curve [ (1., 1.); (1., 2.) ]))

let test_utility_prefers_high_marginal () =
  (* one 100-capacity link shared by two pairs; pair 0 has slope 2, pair 1
     slope 1 with a 30-wide high-value first segment *)
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:100. () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100. () in
  let space = Demand.space_of_pairs g [| (0, 2); (1, 2) |] in
  let pathset = Pathset.compute space ~k:1 in
  let curves =
    [|
      Utility.linear ~slope:2. ~cap:80.;
      Utility.curve [ (30., 3.); (70., 0.5) ];
    |]
  in
  let r = Utility.solve pathset [| 200.; 200. |] ~curves in
  (* fill: 30 units at slope 3, 70 at slope 2 (pair 0), remaining 0 at 0.5:
     utility = 90 + 140 = 230, with 100 total flow *)
  Alcotest.(check (float 1e-4)) "greedy fill" 230. r.Utility.total_utility;
  Alcotest.(check (float 1e-4)) "pair 0 flow" 70.
    (Allocation.flow_of_pair r.Utility.allocation 0);
  Alcotest.(check (float 1e-4)) "pair 1 flow" 30.
    (Allocation.flow_of_pair r.Utility.allocation 1)

let test_utility_equals_max_flow_for_unit_slopes () =
  let g = Topologies.abilene () in
  let space = Demand.full_space g in
  let pathset = Pathset.compute space ~k:2 in
  let rng = Rng.create 41 in
  let demand = Demand.uniform space ~rng ~max:300. in
  let cap = Graph.max_capacity g in
  let curves =
    Array.make (Demand.size space) (Utility.linear ~slope:1. ~cap)
  in
  let u = Utility.solve pathset demand ~curves in
  let opt = Opt_max_flow.solve pathset demand in
  Alcotest.(check (float 1e-3)) "unit utility = max flow" opt.Opt_max_flow.total
    u.Utility.total_utility

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let test_allocation_check_catches_violations () =
  let _, space, pathset, demand = fig1_setup () in
  let a = Allocation.zero pathset in
  let k01 = Option.get (Demand.index space ~src:0 ~dst:1) in
  a.Allocation.flows.(k01).(0) <- 1000.;
  (match Allocation.check a ~demand () with
  | Ok () -> Alcotest.fail "should flag demand violation"
  | Error _ -> ());
  a.Allocation.flows.(k01).(0) <- -1.;
  (match Allocation.check a ~demand () with
  | Ok () -> Alcotest.fail "should flag negative flow"
  | Error _ -> ())

let test_allocation_merge () =
  let _, _, pathset, _ = fig1_setup () in
  let a = Allocation.zero pathset and b = Allocation.zero pathset in
  a.Allocation.flows.(0).(0) <- 3.;
  b.Allocation.flows.(0).(0) <- 4.;
  let m = Allocation.merge a b in
  check_float "merged" 7. m.Allocation.flows.(0).(0);
  check_float "total" 7. (Allocation.total_flow m)

let test_allocation_edge_load () =
  let _, space, pathset, _ = fig1_setup () in
  let g = Pathset.graph pathset in
  let a = Allocation.zero pathset in
  let k02 = Option.get (Demand.index space ~src:0 ~dst:2) in
  (* path 0 of pair 0->2 is the two-hop 0->1->2 *)
  a.Allocation.flows.(k02).(0) <- 10.;
  let load = Allocation.edge_load a in
  let e01 = Option.get (Graph.find_edge g 0 1) in
  let e12 = Option.get (Graph.find_edge g 1 2) in
  let e02 = Option.get (Graph.find_edge g 0 2) in
  check_float "e01" 10. load.(e01);
  check_float "e12" 10. load.(e12);
  check_float "e02 untouched" 0. load.(e02)

(* ------------------------------------------------------------------ *)
(* Sorting network                                                     *)
(* ------------------------------------------------------------------ *)

let test_sorting_network_sorts () =
  let cases = [ [||]; [| 1. |]; [| 3.; 1. |]; [| 5.; 2.; 9.; 1.; 7. |] ] in
  List.iter
    (fun a ->
      let expected = Array.copy a in
      Array.sort compare expected;
      Alcotest.(check (array (float 1e-12))) "sorted" expected
        (Sorting_network.sort_floats a))
    cases

let sorting_network_property =
  QCheck.Test.make ~count:200 ~name:"sorting network sorts any input"
    QCheck.(array_of_size (QCheck.Gen.int_range 0 12) (float_range (-100.) 100.))
    (fun a ->
      let expected = Array.copy a in
      Array.sort compare expected;
      Sorting_network.sort_floats a = expected)

let test_sorting_network_milp_encoding () =
  (* fix inputs as constants; the k-th largest output must match *)
  let open Repro_lp in
  let model = Model.create () in
  let values = [| 4.; 9.; 1.; 6. |] in
  let inputs =
    Array.map (fun v -> Model.add_var ~lb:v ~ub:v model) values
  in
  let second = Sorting_network.kth_largest model ~lo:0. ~hi:10. inputs 2 in
  Model.set_objective model Model.Maximize (Linexpr.var second);
  let r = Solver.solve model in
  Alcotest.(check (float 1e-5)) "2nd largest" 6. r.Branch_bound.objective;
  (* also check minimize pins the same value: the encoding is exact, not
     just an upper bound *)
  let model2 = Model.create () in
  let inputs2 = Array.map (fun v -> Model.add_var ~lb:v ~ub:v model2) values in
  let second2 = Sorting_network.kth_largest model2 ~lo:0. ~hi:10. inputs2 2 in
  Model.set_objective model2 Model.Minimize (Linexpr.var second2);
  let r2 = Solver.solve model2 in
  Alcotest.(check (float 1e-5)) "2nd largest (min)" 6. r2.Branch_bound.objective

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let te_feasibility_property =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let* n = int_range 4 7 in
      let* max_d = float_range 10. 500. in
      return (seed, n, max_d))
  in
  QCheck.Test.make ~count:25 ~name:"OPT >= DP and OPT >= POP, all allocations feasible"
    (QCheck.make gen) (fun (seed, n, max_d) ->
      let rng = Rng.create seed in
      let g = Topologies.circle ~n ~neighbors:1 ~capacity:100. () in
      let space = Demand.full_space g in
      let pathset = Pathset.compute space ~k:2 in
      let demand = Demand.uniform space ~rng ~max:max_d in
      let opt = Opt_max_flow.solve pathset demand in
      (match Allocation.check opt.Opt_max_flow.allocation ~demand () with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "OPT infeasible: %s" e);
      (match Demand_pinning.solve pathset ~threshold:5. demand with
      | Demand_pinning.Feasible { total; allocation; _ } ->
          if total > opt.Opt_max_flow.total +. 1e-6 then
            QCheck.Test.fail_reportf "DP %g beats OPT %g" total opt.Opt_max_flow.total;
          (match Allocation.check allocation ~demand () with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "DP infeasible: %s" e)
      | Demand_pinning.Infeasible_pinning _ -> ());
      let partition =
        Pop.random_partition ~rng ~num_pairs:(Demand.size space) ~parts:2
      in
      let pop = Pop.solve pathset ~parts:2 partition demand in
      if pop.Pop.total > opt.Opt_max_flow.total +. 1e-6 then
        QCheck.Test.fail_reportf "POP beats OPT";
      (match Allocation.check pop.Pop.allocation ~demand () with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "POP infeasible: %s" e);
      true)

let client_split_volume_property =
  QCheck.Test.make ~count:100 ~name:"client splitting preserves volume"
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.int_range 1 10) (float_range 0. 1000.))
        (pair (float_range 1. 200.) (int_range 0 4)))
    (fun (demand, (threshold, max_splits)) ->
      let split = Pop.client_split demand ~threshold ~max_splits in
      let by_origin = Array.make (Array.length demand) 0. in
      Array.iteri
        (fun v k -> by_origin.(k) <- by_origin.(k) +. split.Pop.volumes.(v))
        split.Pop.origin;
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) demand by_origin)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "te"
    [
      ( "pathset",
        [
          Alcotest.test_case "fig1" `Quick test_pathset_fig1;
          Alcotest.test_case "incidence" `Quick test_pathset_incidence;
        ] );
      ( "mcf",
        [
          Alcotest.test_case "only + cap_scale" `Quick test_mcf_only_filter_and_scale;
          Alcotest.test_case "demand as variable" `Quick test_mcf_demand_bound_as_variable;
        ] );
      ( "opt_max_flow",
        [
          Alcotest.test_case "fig1 = 360" `Quick test_opt_fig1;
          Alcotest.test_case "capacity cap" `Quick test_opt_respects_capacity;
          Alcotest.test_case "zero demand" `Quick test_opt_zero_demand;
          Alcotest.test_case "multipath split" `Quick test_opt_multipath_split;
        ] );
      ( "demand_pinning",
        [
          Alcotest.test_case "fig1 = 260" `Quick test_dp_fig1;
          Alcotest.test_case "threshold 0 = OPT" `Quick test_dp_zero_threshold_equals_opt;
          Alcotest.test_case "never beats OPT" `Quick test_dp_never_beats_opt;
          Alcotest.test_case "infeasible pinning" `Quick test_dp_infeasible_pinning;
          Alcotest.test_case "pins predicate" `Quick test_dp_pins_predicate;
        ] );
      ( "pop",
        [
          Alcotest.test_case "1 part = OPT" `Quick test_pop_single_part_is_opt;
          Alcotest.test_case "never beats OPT" `Quick test_pop_never_beats_opt;
          Alcotest.test_case "balanced partition" `Quick test_pop_partition_balanced;
          Alcotest.test_case "per-part sums" `Quick test_pop_per_part_sums;
          Alcotest.test_case "client split" `Quick test_client_split;
          Alcotest.test_case "client split max" `Quick test_client_split_respects_max;
          Alcotest.test_case "client split pop" `Quick test_pop_with_client_split_feasible;
          Alcotest.test_case "slot helpers" `Quick test_pop_slot_helpers;
          Alcotest.test_case "fixed split levels" `Quick test_pop_fixed_split_matches_levels;
        ] );
      ( "max_min_fairness",
        [
          Alcotest.test_case "shared link" `Quick test_max_min_shared_link;
          Alcotest.test_case "small demand released" `Quick test_max_min_small_demand_released;
          Alcotest.test_case "unfair rejected" `Quick test_max_min_unfair_rejected;
          Alcotest.test_case "two levels" `Quick test_max_min_two_levels;
        ] );
      ( "utility",
        [
          Alcotest.test_case "curve eval" `Quick test_utility_curve_eval;
          Alcotest.test_case "greedy fill" `Quick test_utility_prefers_high_marginal;
          Alcotest.test_case "unit slopes = max flow" `Quick test_utility_equals_max_flow_for_unit_slopes;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "check violations" `Quick test_allocation_check_catches_violations;
          Alcotest.test_case "merge" `Quick test_allocation_merge;
          Alcotest.test_case "edge load" `Quick test_allocation_edge_load;
        ] );
      ( "sorting_network",
        [
          Alcotest.test_case "sorts" `Quick test_sorting_network_sorts;
          Alcotest.test_case "milp encoding" `Quick test_sorting_network_milp_encoding;
        ] );
      ( "properties",
        [
          q sorting_network_property;
          q te_feasibility_property;
          q client_split_volume_property;
          q max_min_feasible_property;
        ] );
    ]
