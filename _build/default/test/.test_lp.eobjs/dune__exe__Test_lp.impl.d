test/test_lp.ml: Alcotest Array Branch_bound Buf Float Fmt Heap Linexpr List Lp_file Model Presolve QCheck QCheck_alcotest Random Repro_lp Simplex Solver Standard_form String
