test/test_metaopt.mli:
