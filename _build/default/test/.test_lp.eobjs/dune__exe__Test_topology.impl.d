test/test_topology.ml: Alcotest Array Demand Filename Fun Graph List Paths Repro_topology Rng Sys Topologies
