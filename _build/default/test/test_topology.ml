(* Tests for the network substrate (Repro_topology). *)

open Repro_topology

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = List.init 10 (fun _ -> Rng.float a) in
  let xb = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different streams" true (xa <> xb)

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.);
    let i = Rng.int_range r 5 in
    Alcotest.(check bool) "in [0,5)" true (i >= 0 && i < 5);
    let u = Rng.uniform r ~lo:2. ~hi:3. in
    Alcotest.(check bool) "in [2,3)" true (u >= 2. && u < 3.)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian r ~mu:5. ~sigma:2. in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.1)) "mean" 5. mean;
  Alcotest.(check (float 0.2)) "variance" 4. var

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let a = Rng.float child and b = Rng.float parent in
  Alcotest.(check bool) "values differ" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_basics () =
  let g = Graph.create ~num_nodes:3 () in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10. () in
  let e12 = Graph.add_edge g ~src:1 ~dst:2 ~capacity:20. ~weight:2. () in
  Alcotest.(check int) "num edges" 2 (Graph.num_edges g);
  Alcotest.(check int) "src" 0 (Graph.edge_src g e01);
  Alcotest.(check int) "dst" 2 (Graph.edge_dst g e12);
  check_float "cap" 20. (Graph.capacity g e12);
  check_float "weight default" 1. (Graph.weight g e01);
  check_float "weight" 2. (Graph.weight g e12);
  check_float "total" 30. (Graph.total_capacity g);
  check_float "max" 20. (Graph.max_capacity g);
  Alcotest.(check (list int)) "out 0" [ e01 ] (Graph.out_edges g 0);
  Alcotest.(check (list int)) "out 2" [] (Graph.out_edges g 2);
  Alcotest.(check bool) "find" true (Graph.find_edge g 0 1 = Some e01);
  Alcotest.(check bool) "find none" true (Graph.find_edge g 1 0 = None)

let test_graph_bidirectional () =
  let g = Graph.create ~num_nodes:2 () in
  let e1, e2 = Graph.add_bidirectional g 0 1 ~capacity:5. () in
  Alcotest.(check int) "fwd src" 0 (Graph.edge_src g e1);
  Alcotest.(check int) "bwd src" 1 (Graph.edge_src g e2);
  check_float "both caps" (Graph.capacity g e1) (Graph.capacity g e2)

let test_graph_invalid () =
  let g = Graph.create ~num_nodes:2 () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop")
    (fun () -> ignore (Graph.add_edge g ~src:0 ~dst:0 ~capacity:1. ()));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Graph.add_edge: capacity <= 0") (fun () ->
      ignore (Graph.add_edge g ~src:0 ~dst:1 ~capacity:0. ()))

let test_graph_node_pairs () =
  let g = Graph.create ~num_nodes:3 () in
  let pairs = Graph.node_pairs g in
  Alcotest.(check int) "count" 6 (Array.length pairs);
  Alcotest.(check bool) "no self" true
    (Array.for_all (fun (s, d) -> s <> d) pairs)

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

(* diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3, plus a long direct 0 -> 3 *)
let diamond () =
  let g = Graph.create ~num_nodes:4 () in
  let a = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10. () in
  let b = Graph.add_edge g ~src:1 ~dst:3 ~capacity:10. () in
  let c = Graph.add_edge g ~src:0 ~dst:2 ~capacity:10. ~weight:1.5 () in
  let d = Graph.add_edge g ~src:2 ~dst:3 ~capacity:10. ~weight:1.5 () in
  let e = Graph.add_edge g ~src:0 ~dst:3 ~capacity:10. ~weight:10. () in
  (g, (a, b, c, d, e))

let test_shortest_path () =
  let g, (a, b, _, _, _) = diamond () in
  match Paths.shortest_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "no path"
  | Some p ->
      Alcotest.(check (array int)) "via node 1" [| a; b |] p;
      check_float "length" 2. (Paths.length g p);
      Alcotest.(check int) "hops" 2 (Paths.hops p);
      Alcotest.(check (list int)) "nodes" [ 0; 1; 3 ] (Paths.nodes g p)

let test_shortest_path_none () =
  let g = Graph.create ~num_nodes:3 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1. () in
  Alcotest.(check bool) "unreachable" true (Paths.shortest_path g ~src:1 ~dst:0 = None)

let test_k_shortest_diamond () =
  let g, (a, b, c, d, e) = diamond () in
  let ps = Paths.k_shortest g ~k:3 ~src:0 ~dst:3 in
  Alcotest.(check int) "three paths" 3 (List.length ps);
  (match ps with
  | [ p1; p2; p3 ] ->
      Alcotest.(check (array int)) "1st" [| a; b |] p1;
      Alcotest.(check (array int)) "2nd" [| c; d |] p2;
      Alcotest.(check (array int)) "3rd" [| e |] p3
  | _ -> Alcotest.fail "expected 3");
  (* asking for more than exist returns what exists *)
  let ps5 = Paths.k_shortest g ~k:5 ~src:0 ~dst:3 in
  Alcotest.(check int) "still three" 3 (List.length ps5)

let test_k_shortest_sorted_and_valid () =
  let g = Topologies.b4 () in
  let ps = Paths.k_shortest g ~k:4 ~src:0 ~dst:11 in
  Alcotest.(check bool) "found some" true (List.length ps >= 2);
  let lens = List.map (Paths.length g) ps in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort compare lens) lens;
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid loopless" true (Paths.is_valid g ~src:0 ~dst:11 p))
    ps;
  (* all distinct *)
  Alcotest.(check int) "distinct" (List.length ps)
    (List.length (List.sort_uniq compare ps))

let test_path_validity_checks () =
  let g, (a, b, c, _, _) = diamond () in
  Alcotest.(check bool) "valid" true (Paths.is_valid g ~src:0 ~dst:3 [| a; b |]);
  Alcotest.(check bool) "discontiguous" false (Paths.is_valid g ~src:0 ~dst:3 [| a; c |]);
  Alcotest.(check bool) "wrong src" false (Paths.is_valid g ~src:1 ~dst:3 [| a; b |]);
  Alcotest.(check bool) "empty" false (Paths.is_valid g ~src:0 ~dst:3 [||])

(* ------------------------------------------------------------------ *)
(* Topologies                                                          *)
(* ------------------------------------------------------------------ *)

let test_topology_sizes () =
  let check name g nodes edges =
    Alcotest.(check int) (name ^ " nodes") nodes (Graph.num_nodes g);
    Alcotest.(check int) (name ^ " edges") edges (Graph.num_edges g)
  in
  check "fig1" (Topologies.fig1 ()) 3 3;
  check "b4" (Topologies.b4 ()) 12 38;
  check "abilene" (Topologies.abilene ()) 11 28;
  check "swan" (Topologies.swan ()) 10 32;
  check "circle 8/1" (Topologies.circle ~n:8 ~neighbors:1 ()) 8 16;
  check "circle 8/2" (Topologies.circle ~n:8 ~neighbors:2 ()) 8 32;
  check "line 5" (Topologies.line ~n:5 ()) 5 8;
  check "star 5" (Topologies.star ~n:5 ()) 5 8;
  check "grid 2x3" (Topologies.grid ~rows:2 ~cols:3 ()) 6 14

let all_pairs_connected g =
  Array.for_all
    (fun (s, d) -> Paths.shortest_path g ~src:s ~dst:d <> None)
    (Graph.node_pairs g)

let test_topologies_connected () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " strongly connected") true (all_pairs_connected g))
    [
      ("b4", Topologies.b4 ());
      ("abilene", Topologies.abilene ());
      ("swan", Topologies.swan ());
      ("circle", Topologies.circle ~n:7 ~neighbors:2 ());
      ("grid", Topologies.grid ~rows:3 ~cols:3 ());
      ("random", Topologies.random ~rng:(Rng.create 5) ~n:8 ~extra_edge_prob:0.2 ());
    ]

let test_fig1_shortest_is_two_hop () =
  (* the crux of Fig 1: pair 0->2's shortest path goes via node 1 *)
  let g = Topologies.fig1 () in
  match Paths.shortest_path g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "no path"
  | Some p ->
      Alcotest.(check int) "two hops" 2 (Paths.hops p);
      Alcotest.(check (list int)) "via node 1" [ 0; 1; 2 ] (Paths.nodes g p)

let test_avg_path_length_grows_with_sparsity () =
  (* Fig 4b intuition: fewer neighbours on the circle = longer paths *)
  let l1 =
    Topologies.average_shortest_path_length (Topologies.circle ~n:10 ~neighbors:1 ())
  in
  let l2 =
    Topologies.average_shortest_path_length (Topologies.circle ~n:10 ~neighbors:2 ())
  in
  let l3 =
    Topologies.average_shortest_path_length (Topologies.circle ~n:10 ~neighbors:3 ())
  in
  Alcotest.(check bool) "1 > 2" true (l1 > l2);
  Alcotest.(check bool) "2 > 3" true (l2 > l3)

let test_by_name () =
  let ok name = Alcotest.(check bool) name true (Topologies.by_name name <> None) in
  ok "fig1";
  ok "b4";
  ok "abilene";
  ok "swan";
  ok "circle-6-2";
  ok "line-4";
  ok "star-5";
  ok "grid-2x3";
  Alcotest.(check bool) "unknown" true (Topologies.by_name "nope" = None);
  Alcotest.(check bool) "bad arg" true (Topologies.by_name "circle-x-2" = None)

(* ------------------------------------------------------------------ *)
(* Demand                                                              *)
(* ------------------------------------------------------------------ *)

let test_demand_space () =
  let g = Topologies.fig1 () in
  let space = Demand.full_space g in
  Alcotest.(check int) "pairs" 6 (Demand.size space);
  (match Demand.index space ~src:0 ~dst:2 with
  | None -> Alcotest.fail "missing pair"
  | Some k ->
      let s, d = Demand.pair space k in
      Alcotest.(check (pair int int)) "roundtrip" (0, 2) (s, d));
  Alcotest.(check bool) "no self pair" true (Demand.index space ~src:1 ~dst:1 = None)

let test_demand_space_restricted () =
  let g = Topologies.fig1 () in
  let space = Demand.space_of_pairs g [| (0, 1); (0, 2) |] in
  Alcotest.(check int) "two pairs" 2 (Demand.size space);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Demand.space_of_pairs: duplicate pair") (fun () ->
      ignore (Demand.space_of_pairs g [| (0, 1); (0, 1) |]))

let test_demand_generators () =
  let g = Topologies.abilene () in
  let space = Demand.full_space g in
  let rng = Rng.create 17 in
  let u = Demand.uniform space ~rng ~max:100. in
  Alcotest.(check bool) "uniform in range" true
    (Array.for_all (fun v -> v >= 0. && v <= 100.) u);
  let gr = Demand.gravity space ~rng ~total:5000. in
  Alcotest.(check (float 1e-6)) "gravity total" 5000. (Demand.total gr);
  Alcotest.(check bool) "gravity nonneg" true (Array.for_all (fun v -> v >= 0.) gr);
  let bi = Demand.bimodal space ~rng ~fraction_large:0.1 ~small_max:10. ~large_max:1000. in
  Alcotest.(check bool) "bimodal nonneg" true (Array.for_all (fun v -> v >= 0.) bi);
  check_float "avg" (Demand.total u /. float_of_int (Demand.size space)) (Demand.average u)

let test_demand_csv_roundtrip () =
  let g = Topologies.fig1 () in
  let space = Demand.full_space g in
  let rng = Rng.create 77 in
  let d = Demand.uniform space ~rng ~max:42. in
  d.(0) <- 0.;
  (* zero entries are omitted and restored as zero *)
  let csv = Demand.to_csv space d in
  (match Demand.of_csv space csv with
  | Ok d' -> Alcotest.(check (array (float 1e-9))) "roundtrip" d d'
  | Error e -> Alcotest.fail e);
  (* errors are reported, not raised *)
  (match Demand.of_csv space "src,dst,volume\n0,0,5\n" with
  | Ok _ -> Alcotest.fail "self pair accepted"
  | Error _ -> ());
  (match Demand.of_csv space "0,1,-3\n" with
  | Ok _ -> Alcotest.fail "negative accepted"
  | Error _ -> ());
  match Demand.of_csv space "nonsense\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_demand_csv_file_io () =
  let g = Topologies.abilene () in
  let space = Demand.full_space g in
  let d = Demand.gravity space ~rng:(Rng.create 5) ~total:1000. in
  let path = Filename.temp_file "repro_demand" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Demand.save_csv space d path;
      match Demand.load_csv space path with
      | Ok d' ->
          Alcotest.(check (array (float 1e-9))) "file roundtrip" d d'
      | Error e -> Alcotest.fail e)

let test_demand_generators_deterministic () =
  let g = Topologies.b4 () in
  let space = Demand.full_space g in
  let d1 = Demand.gravity space ~rng:(Rng.create 123) ~total:100. in
  let d2 = Demand.gravity space ~rng:(Rng.create 123) ~total:100. in
  Alcotest.(check bool) "same seed same matrix" true (d1 = d2)

let () =
  Alcotest.run "topology"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "bidirectional" `Quick test_graph_bidirectional;
          Alcotest.test_case "invalid args" `Quick test_graph_invalid;
          Alcotest.test_case "node pairs" `Quick test_graph_node_pairs;
        ] );
      ( "paths",
        [
          Alcotest.test_case "shortest" `Quick test_shortest_path;
          Alcotest.test_case "unreachable" `Quick test_shortest_path_none;
          Alcotest.test_case "yen diamond" `Quick test_k_shortest_diamond;
          Alcotest.test_case "yen sorted+valid" `Quick test_k_shortest_sorted_and_valid;
          Alcotest.test_case "validity" `Quick test_path_validity_checks;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "sizes" `Quick test_topology_sizes;
          Alcotest.test_case "connectivity" `Quick test_topologies_connected;
          Alcotest.test_case "fig1 shortest path" `Quick test_fig1_shortest_is_two_hop;
          Alcotest.test_case "circle path lengths" `Quick test_avg_path_length_grows_with_sparsity;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "demand",
        [
          Alcotest.test_case "full space" `Quick test_demand_space;
          Alcotest.test_case "restricted space" `Quick test_demand_space_restricted;
          Alcotest.test_case "generators" `Quick test_demand_generators;
          Alcotest.test_case "determinism" `Quick test_demand_generators_deterministic;
          Alcotest.test_case "csv roundtrip" `Quick test_demand_csv_roundtrip;
          Alcotest.test_case "csv file io" `Quick test_demand_csv_file_io;
        ] );
    ]
