(* sweep: batched scenario-sweep engine benchmark (lib/sweep).

   A fig6-family grid on B4 — DP pinning thresholds x demand scales x
   demand seeds — evaluated three ways, emitting BENCH_sweep.json:

   - shared:  one LP skeleton, factorized-basis RHS re-solves (the
     engine's point);
   - rebuild: the pre-sweep baseline, a full model rebuild and cold
     solve per scenario;
   - cached:  the shared run repeated against a warm content-addressed
     solve cache — every scenario a lookup;
   - batched: the shared run with --batch-rhs semantics — each chunk's
     OPT solves answered by one multi-RHS ftran kernel call;
   - snapshot: the batched run against a cross-sweep basis snapshot
     store, cold (store empty, written at the end) then warm (a second
     sweep re-reading the journal and installing the stored bases).

   The headline numbers are shared-vs-rebuild (the engine win),
   batched-vs-shared (the kernel win), cached-vs-cold (the serve-cache
   win) and snapshot-warm-vs-cold. A jobs=1 vs jobs=4 re-run of the
   shared sweep must agree bit-for-bit, and so must --batch-rhs on/off:
   chunk boundaries are fixed by the plan, never by the worker count,
   and the batched kernel reproduces the scalar op sequence.

   REPRO_BENCH_SWEEP_TINY=1 shrinks the grid to a few scenarios for CI
   smoke runs (the speedup assertion there is >= 1.0x, not 10x). *)

module Sweep = Repro_sweep.Scenario_sweep
module Sweep_plan = Repro_sweep.Plan
module Json = Repro_serve.Json

let tiny_mode =
  match Sys.getenv_opt "REPRO_BENCH_SWEEP_TINY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let fail fmt = Printf.ksprintf failwith fmt

(* Perf phases run at the host's real parallelism, capped at 4: on a
   1-CPU container extra domains only add GC coordination overhead and
   used to make every wall here measure contention, not the engine
   (the "cpus": 1 / "jobs": 4 mismatch this file once shipped). The
   determinism cross-check below always exercises jobs=1 vs jobs=4
   regardless of what the perf phases used. *)
let jobs = max 1 (min 4 (Common.host_cpus ()))
let det_jobs = 4

(* Walls on the fast grid are a couple hundred ms — tens of ms in tiny
   mode — the same order as scheduler/GC jitter on a shared container.
   Take the best of several identical runs (results are deterministic,
   only the wall varies); tiny mode needs more reps because its walls
   are smaller than a single scheduling quantum. *)
let reps = if tiny_mode then 9 else 5

(* committed PR-7 measurement of the scalar shared-basis path on this
   same 500-scenario grid (BENCH_sweep.json at 9778585) — the baseline
   the batched kernel is graded against *)
let baseline_shared_scenarios_per_s = 1127.0

let result_key = function
  | None -> "skipped"
  | Some r ->
      (* bit-exact comparison: hex of the IEEE patterns, not printf *)
      Printf.sprintf "%Lx:%s"
        (Int64.bits_of_float r.Sweep.opt)
        (match r.Sweep.heur with
        | None -> "inf"
        | Some h -> Printf.sprintf "%Lx" (Int64.bits_of_float h))

let lp_json (s : Simplex.stats) =
  Json.Obj
    [
      ("iterations", Json.Num (float_of_int s.Simplex.iterations));
      ("refactorizations", Json.Num (float_of_int s.Simplex.refactorizations));
      ("warm_hits", Json.Num (float_of_int s.Simplex.warm_hits));
      ("warm_misses", Json.Num (float_of_int s.Simplex.warm_misses));
      ("rhs_ftran", Json.Num (float_of_int s.Simplex.rhs_ftran));
      ("rhs_dual", Json.Num (float_of_int s.Simplex.rhs_dual));
      ("rhs_batch", Json.Num (float_of_int s.Simplex.rhs_batch));
      ("rhs_batch_cols", Json.Num (float_of_int s.Simplex.rhs_batch_cols));
      ("rhs_peeled", Json.Num (float_of_int s.Simplex.rhs_peeled));
    ]

let phase_json (r : Sweep.result) =
  Json.Obj
    [
      ("wall_s", Json.Num r.Sweep.wall_s);
      ( "scenarios_per_s",
        Json.Num
          (if r.Sweep.wall_s > 0. then
             float_of_int r.Sweep.completed /. r.Sweep.wall_s
           else 0.) );
      ("completed", Json.Num (float_of_int r.Sweep.completed));
      ("from_cache", Json.Num (float_of_int r.Sweep.from_cache));
      ("skipped", Json.Num (float_of_int r.Sweep.skipped));
      ("basis_warm_hits", Json.Num (float_of_int r.Sweep.basis_warm_hits));
      ("chunks", Json.Num (float_of_int r.Sweep.chunks));
      ("lp", lp_json r.Sweep.lp_stats);
    ]

let run () =
  Common.section "sweep: batched scenario-sweep engine (B4)";
  let g = Topologies.b4 () in
  let paths = Common.default_paths in
  let pathset = Common.pathset_of g ~paths in
  let space = Pathset.space pathset in
  let maxcap = Graph.max_capacity g in
  (* fig6-family grid: DP thresholds as capacity fractions, demand scales
     around the feasibility knee, gravity seeds *)
  let fracs, scales, num_seeds =
    if tiny_mode then ([ 0.02; 0.05; 0.1 ], [ 1. ], 3)
    else
      ( [ 0.01; 0.02; 0.03; 0.05; 0.07; 0.1; 0.15; 0.2; 0.3; 0.5 ],
        [ 0.25; 0.5; 1.; 1.5; 2. ],
        10 )
  in
  let plan =
    Sweep_plan.grid ~space
      ~generator:(Sweep_plan.Gravity { total = 0.5 *. Graph.total_capacity g })
      ~thresholds:(Array.of_list (List.map (fun f -> f *. maxcap) fracs))
      ~scales:(Array.of_list scales)
      ~seeds:(Array.init num_seeds (fun i -> i + 1))
      ()
  in
  let n = Sweep_plan.num_scenarios plan in
  Common.row "grid: %d thresholds x %d scales x %d seeds = %d scenarios"
    (List.length fracs) (List.length scales) num_seeds n;
  Common.note_jobs jobs;
  let base ?(batch_rhs = false) ?basis_store mode jobs cache =
    {
      Sweep.jobs;
      chunk = Sweep.default_options.Sweep.chunk;
      backend = None;
      mode;
      deadline = None;
      cache;
      jsonl = None;
      batch_rhs;
      basis_store;
    }
  in
  let sweep options = Sweep.run ~options ~paths pathset plan in
  (* best-of-[reps] wall; the runs are deterministic so any result
     stands for all of them *)
  let keep_min best r =
    match !best with
    | Some b when b.Sweep.wall_s <= r.Sweep.wall_s -> ()
    | _ -> best := Some r
  in

  (* shared-basis (cold, scalar) and batched multi-RHS kernel: the two
     walls being compared, so their reps are interleaved — slow drift
     (thermal, page cache, sibling load) hits both sides equally
     instead of whichever phase ran second *)
  let shared_best = ref None and batched_best = ref None in
  for _ = 1 to reps do
    keep_min shared_best (sweep (base Sweep.Shared_basis jobs None));
    keep_min batched_best
      (sweep (base ~batch_rhs:true Sweep.Shared_basis jobs None))
  done;
  let shared = Option.get !shared_best in
  if shared.Sweep.completed <> n then
    fail "sweep bench: shared run completed %d of %d" shared.Sweep.completed n;
  Common.row "  shared  (jobs %d): %6.2fs  %7.1f scenarios/s  (%s)" jobs
    shared.Sweep.wall_s
    (float_of_int n /. shared.Sweep.wall_s)
    (Fmt.str "%a" Simplex.pp_stats shared.Sweep.lp_stats);

  (* rebuild-per-scenario baseline *)
  let rebuild = sweep (base Sweep.Rebuild jobs None) in
  if rebuild.Sweep.completed <> n then
    fail "sweep bench: rebuild run completed %d of %d" rebuild.Sweep.completed n;
  Common.row "  rebuild (jobs %d): %6.2fs  %7.1f scenarios/s" jobs
    rebuild.Sweep.wall_s
    (float_of_int n /. rebuild.Sweep.wall_s);
  let speedup =
    if shared.Sweep.wall_s > 0. then
      rebuild.Sweep.wall_s /. shared.Sweep.wall_s
    else 0.
  in
  Common.row "  shared basis is %.1fx faster than rebuild-per-scenario" speedup;
  if speedup < 1.0 then
    fail "sweep bench: shared basis slower than rebuild (%.2fx)" speedup;

  (* batched multi-RHS kernel: same grid, each chunk's OPT solves go
     through one resolve_rhs_batch call *)
  let batched = Option.get !batched_best in
  if batched.Sweep.completed <> n then
    fail "sweep bench: batched run completed %d of %d" batched.Sweep.completed
      n;
  let batched_speedup =
    if batched.Sweep.wall_s > 0. then
      shared.Sweep.wall_s /. batched.Sweep.wall_s
    else 0.
  in
  Common.row
    "  batched (jobs %d): %6.2fs  %7.1f scenarios/s  (%.2fx vs shared)  (%s)"
    jobs batched.Sweep.wall_s
    (float_of_int n /. batched.Sweep.wall_s)
    batched_speedup
    (Fmt.str "%a" Simplex.pp_stats batched.Sweep.lp_stats);
  (* tiny walls are a couple of scheduling quanta; allow jitter there,
     be strict on the full grid where min-of-reps is stable *)
  if batched_speedup < (if tiny_mode then 0.9 else 1.0) then
    fail "sweep bench: batched kernel slower than scalar path (%.2fx)"
      batched_speedup;
  (* --batch-rhs on/off must agree bit-for-bit (cacheless) *)
  let batch_identical =
    Array.for_all2
      (fun a b -> String.equal (result_key a) (result_key b))
      batched.Sweep.results shared.Sweep.results
  in
  if not batch_identical then
    fail "sweep bench: batched and scalar runs disagree on scenario results";
  Common.row "  batched vs scalar: identical results (bitwise)";
  (* the acceptance yardstick: the kernel against the committed PR-7
     scalar shared-basis measurement of this same grid *)
  let batched_vs_baseline =
    if batched.Sweep.wall_s > 0. then
      float_of_int n /. batched.Sweep.wall_s
      /. baseline_shared_scenarios_per_s
    else 0.
  in
  if not tiny_mode then begin
    Common.row "  batched vs committed shared baseline (%.0f scenarios/s): %.2fx"
      baseline_shared_scenarios_per_s batched_vs_baseline;
    if batched_vs_baseline < 2.0 then
      fail "sweep bench: batched kernel under 2x the committed baseline (%.2fx)"
        batched_vs_baseline
  end;

  (* cross-sweep basis snapshot store: cold sweep writes the journal,
     a second store replays it and the warm sweep installs its bases.
     Each cold rep starts from an empty journal; warm reps replay the
     last cold journal. *)
  let snap_path = Filename.temp_file "repro-basis" ".journal" in
  let snapshot_phase () =
    let bs = Repro_serve.Basis_store.create () in
    (match Repro_serve.Basis_store.with_journal bs ~path:snap_path with
    | Ok _ -> ()
    | Error e -> fail "sweep bench: basis journal: %s" e);
    let r =
      sweep (base ~batch_rhs:true ~basis_store:bs Sweep.Shared_basis jobs None)
    in
    Repro_serve.Basis_store.close bs;
    r
  in
  (* the warm run does strictly less LP work than the cold one, but the
     gap is a fraction of the wall — give the min extra reps to converge
     so the warm-beats-cold ratio reflects work, not scheduler jitter *)
  let snap_reps = reps + 4 in
  let snap_cold_best = ref None and snap_warm_best = ref None in
  for _ = 1 to snap_reps do
    (try Sys.remove snap_path with Sys_error _ -> ());
    keep_min snap_cold_best (snapshot_phase ());
    keep_min snap_warm_best (snapshot_phase ())
  done;
  let snap_cold = Option.get !snap_cold_best in
  let snap_warm = Option.get !snap_warm_best in
  Sys.remove snap_path;
  if snap_warm.Sweep.basis_warm_hits <= 0 then
    fail "sweep bench: warm sweep installed no snapshot bases";
  let snap_speedup =
    if snap_warm.Sweep.wall_s > 0. then
      snap_cold.Sweep.wall_s /. snap_warm.Sweep.wall_s
    else 0.
  in
  Common.row
    "  snapshot warm   : %6.2fs vs %6.2fs cold  (%.2fx, %d basis installs)"
    snap_warm.Sweep.wall_s snap_cold.Sweep.wall_s snap_speedup
    snap_warm.Sweep.basis_warm_hits;

  (* cached re-run: warm the cache with one shared sweep, then re-run *)
  let cache = Repro_serve.Solve_cache.create () in
  ignore (sweep (base Sweep.Shared_basis jobs (Some cache)));
  let cached = sweep (base Sweep.Shared_basis jobs (Some cache)) in
  if cached.Sweep.completed <> n then
    fail "sweep bench: cached run completed %d of %d" cached.Sweep.completed n;
  let all_cached =
    Array.for_all
      (function
        | Some r -> r.Sweep.cached_opt && r.Sweep.cached_heur
        | None -> false)
      cached.Sweep.results
  in
  if not all_cached then fail "sweep bench: warm re-run missed the cache";
  if cached.Sweep.from_cache <> n then
    fail "sweep bench: from_cache %d <> completed %d on the warm re-run"
      cached.Sweep.from_cache n;
  let cached_speedup =
    if cached.Sweep.wall_s > 0. then shared.Sweep.wall_s /. cached.Sweep.wall_s
    else 0.
  in
  Common.row "  cached  (jobs %d): %6.2fs  %7.1f scenarios/s  (%.1fx vs cold)"
    jobs cached.Sweep.wall_s
    (float_of_int n /. cached.Sweep.wall_s)
    cached_speedup;

  (* determinism: jobs=1 and jobs=4 must agree bit-for-bit (cacheless),
     whatever parallelism the perf phases above actually used *)
  let det_serial =
    if jobs = 1 then shared else sweep (base Sweep.Shared_basis 1 None)
  in
  let det_par =
    if jobs = det_jobs then shared
    else sweep (base Sweep.Shared_basis det_jobs None)
  in
  let identical =
    Array.for_all2
      (fun a b -> String.equal (result_key a) (result_key b))
      det_serial.Sweep.results det_par.Sweep.results
  in
  if not identical then
    fail "sweep bench: jobs=1 and jobs=%d disagree on scenario results"
      det_jobs;
  Common.row "  jobs=1 vs jobs=%d: identical results (bitwise)" det_jobs;

  let doc =
    Json.Obj
      ([
         ("benchmark", Json.Str "repro-sweep");
         ( "mode",
           Json.Str
             (if tiny_mode then "tiny"
              else if Common.full_mode then "full"
              else "fast") );
       ]
      @ Common.host_json_fields ~jobs
      @ [
        ("topology", Json.Str (Graph.name g));
        ("paths", Json.Num (float_of_int paths));
        ("scenarios", Json.Num (float_of_int n));
        ("shared", phase_json shared);
        ("rebuild", phase_json rebuild);
        ("cached", phase_json cached);
        ("batched", phase_json batched);
        ("snapshot_cold", phase_json snap_cold);
        ("snapshot_warm", phase_json snap_warm);
        ("shared_vs_rebuild", Json.Num speedup);
        ("cached_vs_cold", Json.Num cached_speedup);
        ("batched_vs_shared", Json.Num batched_speedup);
        ( "baseline_shared_scenarios_per_s",
          Json.Num baseline_shared_scenarios_per_s );
        ("batched_vs_baseline", Json.Num batched_vs_baseline);
        ("snapshot_warm_vs_cold", Json.Num snap_speedup);
        ("determinism_jobs", Json.Num (float_of_int det_jobs));
        ("reps", Json.Num (float_of_int reps));
          ("deterministic_across_jobs", Json.Bool identical);
          ("deterministic_batch_toggle", Json.Bool batch_identical);
        ])
  in
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Common.row "machine-readable results written to BENCH_sweep.json"
