(* sweep: batched scenario-sweep engine benchmark (lib/sweep).

   A fig6-family grid on B4 — DP pinning thresholds x demand scales x
   demand seeds — evaluated three ways, emitting BENCH_sweep.json:

   - shared:  one LP skeleton, factorized-basis RHS re-solves (the
     engine's point);
   - rebuild: the pre-sweep baseline, a full model rebuild and cold
     solve per scenario;
   - cached:  the shared run repeated against a warm content-addressed
     solve cache — every scenario a lookup.

   The headline numbers are shared-vs-rebuild (the batching win) and
   cached-vs-cold (the serve-cache win on top). A jobs=1 vs jobs=4
   re-run of the shared sweep must agree bit-for-bit: chunk boundaries
   are fixed by the plan, never by the worker count.

   REPRO_BENCH_SWEEP_TINY=1 shrinks the grid to a few scenarios for CI
   smoke runs (the speedup assertion there is >= 1.0x, not 10x). *)

module Sweep = Repro_sweep.Scenario_sweep
module Sweep_plan = Repro_sweep.Plan
module Json = Repro_serve.Json

let tiny_mode =
  match Sys.getenv_opt "REPRO_BENCH_SWEEP_TINY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let fail fmt = Printf.ksprintf failwith fmt

let jobs = 4

let result_key = function
  | None -> "skipped"
  | Some r ->
      (* bit-exact comparison: hex of the IEEE patterns, not printf *)
      Printf.sprintf "%Lx:%s"
        (Int64.bits_of_float r.Sweep.opt)
        (match r.Sweep.heur with
        | None -> "inf"
        | Some h -> Printf.sprintf "%Lx" (Int64.bits_of_float h))

let lp_json (s : Simplex.stats) =
  Json.Obj
    [
      ("iterations", Json.Num (float_of_int s.Simplex.iterations));
      ("refactorizations", Json.Num (float_of_int s.Simplex.refactorizations));
      ("warm_hits", Json.Num (float_of_int s.Simplex.warm_hits));
      ("warm_misses", Json.Num (float_of_int s.Simplex.warm_misses));
      ("rhs_ftran", Json.Num (float_of_int s.Simplex.rhs_ftran));
      ("rhs_dual", Json.Num (float_of_int s.Simplex.rhs_dual));
    ]

let phase_json (r : Sweep.result) =
  Json.Obj
    [
      ("wall_s", Json.Num r.Sweep.wall_s);
      ( "scenarios_per_s",
        Json.Num
          (if r.Sweep.wall_s > 0. then
             float_of_int r.Sweep.completed /. r.Sweep.wall_s
           else 0.) );
      ("completed", Json.Num (float_of_int r.Sweep.completed));
      ("skipped", Json.Num (float_of_int r.Sweep.skipped));
      ("chunks", Json.Num (float_of_int r.Sweep.chunks));
      ("lp", lp_json r.Sweep.lp_stats);
    ]

let run () =
  Common.section "sweep: batched scenario-sweep engine (B4)";
  let g = Topologies.b4 () in
  let paths = Common.default_paths in
  let pathset = Common.pathset_of g ~paths in
  let space = Pathset.space pathset in
  let maxcap = Graph.max_capacity g in
  (* fig6-family grid: DP thresholds as capacity fractions, demand scales
     around the feasibility knee, gravity seeds *)
  let fracs, scales, num_seeds =
    if tiny_mode then ([ 0.02; 0.05; 0.1 ], [ 1. ], 3)
    else
      ( [ 0.01; 0.02; 0.03; 0.05; 0.07; 0.1; 0.15; 0.2; 0.3; 0.5 ],
        [ 0.25; 0.5; 1.; 1.5; 2. ],
        10 )
  in
  let plan =
    Sweep_plan.grid ~space
      ~generator:(Sweep_plan.Gravity { total = 0.5 *. Graph.total_capacity g })
      ~thresholds:(Array.of_list (List.map (fun f -> f *. maxcap) fracs))
      ~scales:(Array.of_list scales)
      ~seeds:(Array.init num_seeds (fun i -> i + 1))
      ()
  in
  let n = Sweep_plan.num_scenarios plan in
  Common.row "grid: %d thresholds x %d scales x %d seeds = %d scenarios"
    (List.length fracs) (List.length scales) num_seeds n;
  Common.note_jobs jobs;
  let base mode jobs cache =
    {
      Sweep.jobs;
      chunk = Sweep.default_options.Sweep.chunk;
      backend = None;
      mode;
      deadline = None;
      cache;
      jsonl = None;
    }
  in
  let sweep options = Sweep.run ~options ~paths pathset plan in

  (* shared-basis, cold *)
  let shared = sweep (base Sweep.Shared_basis jobs None) in
  if shared.Sweep.completed <> n then
    fail "sweep bench: shared run completed %d of %d" shared.Sweep.completed n;
  Common.row "  shared  (jobs %d): %6.2fs  %7.1f scenarios/s  (%s)" jobs
    shared.Sweep.wall_s
    (float_of_int n /. shared.Sweep.wall_s)
    (Fmt.str "%a" Simplex.pp_stats shared.Sweep.lp_stats);

  (* rebuild-per-scenario baseline *)
  let rebuild = sweep (base Sweep.Rebuild jobs None) in
  if rebuild.Sweep.completed <> n then
    fail "sweep bench: rebuild run completed %d of %d" rebuild.Sweep.completed n;
  Common.row "  rebuild (jobs %d): %6.2fs  %7.1f scenarios/s" jobs
    rebuild.Sweep.wall_s
    (float_of_int n /. rebuild.Sweep.wall_s);
  let speedup =
    if shared.Sweep.wall_s > 0. then
      rebuild.Sweep.wall_s /. shared.Sweep.wall_s
    else 0.
  in
  Common.row "  shared basis is %.1fx faster than rebuild-per-scenario" speedup;
  if speedup < 1.0 then
    fail "sweep bench: shared basis slower than rebuild (%.2fx)" speedup;

  (* cached re-run: warm the cache with one shared sweep, then re-run *)
  let cache = Repro_serve.Solve_cache.create () in
  ignore (sweep (base Sweep.Shared_basis jobs (Some cache)));
  let cached = sweep (base Sweep.Shared_basis jobs (Some cache)) in
  if cached.Sweep.completed <> n then
    fail "sweep bench: cached run completed %d of %d" cached.Sweep.completed n;
  let all_cached =
    Array.for_all
      (function
        | Some r -> r.Sweep.cached_opt && r.Sweep.cached_heur
        | None -> false)
      cached.Sweep.results
  in
  if not all_cached then fail "sweep bench: warm re-run missed the cache";
  let cached_speedup =
    if cached.Sweep.wall_s > 0. then shared.Sweep.wall_s /. cached.Sweep.wall_s
    else 0.
  in
  Common.row "  cached  (jobs %d): %6.2fs  %7.1f scenarios/s  (%.1fx vs cold)"
    jobs cached.Sweep.wall_s
    (float_of_int n /. cached.Sweep.wall_s)
    cached_speedup;

  (* determinism: jobs=1 and jobs=4 must agree bit-for-bit (cacheless) *)
  let serial = sweep (base Sweep.Shared_basis 1 None) in
  let identical =
    Array.for_all2
      (fun a b -> String.equal (result_key a) (result_key b))
      serial.Sweep.results shared.Sweep.results
  in
  if not identical then
    fail "sweep bench: jobs=1 and jobs=%d disagree on scenario results" jobs;
  Common.row "  jobs=1 vs jobs=%d: identical results (bitwise)" jobs;

  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "repro-sweep");
        ( "mode",
          Json.Str
            (if tiny_mode then "tiny"
             else if Common.full_mode then "full"
             else "fast") );
        ("cpus", Json.Num (float_of_int (Domain.recommended_domain_count ())));
        ("jobs", Json.Num (float_of_int jobs));
        ("topology", Json.Str (Graph.name g));
        ("paths", Json.Num (float_of_int paths));
        ("scenarios", Json.Num (float_of_int n));
        ("shared", phase_json shared);
        ("rebuild", phase_json rebuild);
        ("cached", phase_json cached);
        ("shared_vs_rebuild", Json.Num speedup);
        ("cached_vs_cold", Json.Num cached_speedup);
        ("deterministic_across_jobs", Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Common.row "machine-readable results written to BENCH_sweep.json"
