(* serve: load generator for the gap-query daemon (lib/serve).

   Boots a daemon on a private Unix socket, then drives it through
   three phases and emits BENCH_serve.json:

   - cold: distinct evaluate queries, every one a real solve;
   - warm: the same queries repeated — all served from the solve cache,
     measuring the cached round-trip (wire + lookup) latency;
   - dedup: N concurrent clients firing one identical fresh query — the
     scheduler coalesces them onto a single solve.

   The headline number is warm-vs-cold p50: how much cheaper a repeated
   query is once the content-addressed cache has seen it. *)

module S = Repro_serve
module Json = S.Json

let jobs = 4

let fail fmt = Printf.ksprintf failwith fmt

let expect_ok = function
  | Error e -> fail "serve bench: transport: %s" e
  | Ok response -> (
      match Json.member "ok" response with
      | Some (Json.Bool true) -> response
      | _ -> fail "serve bench: request failed: %s" (Json.to_string response))

let timed_call c req =
  let t0 = Unix.gettimeofday () in
  let response = expect_ok (S.Client.call c req) in
  (1000. *. (Unix.gettimeofday () -. t0), response)

let annotated name response =
  match Option.bind (Json.member name response) Json.bool with
  | Some b -> b
  | None -> fail "serve bench: response lacks %S" name

(* ascending-sorted array, percentile in [0, 100] *)
let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.
  else
    let idx = int_of_float ((float_of_int (n - 1) *. p /. 100.) +. 0.5) in
    a.(Int.max 0 (Int.min (n - 1) idx))

let mean a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let summary label a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let p50 = percentile sorted 50. and p99 = percentile sorted 99. in
  Common.row "  %-5s %4d requests: mean %8.3f ms   p50 %8.3f ms   p99 %8.3f ms"
    label (Array.length a) (mean a) p50 p99;
  ( (p50, p99),
    Json.Obj
      [
        ("requests", Json.Num (float_of_int (Array.length a)));
        ("mean_ms", Json.Num (mean a));
        ("p50_ms", Json.Num p50);
        ("p99_ms", Json.Num p99);
      ] )

let evaluate_query ~topology ~threshold_frac ~seed =
  S.Protocol.Evaluate
    {
      instance =
        {
          S.Protocol.topology;
          paths = Common.default_paths;
          heuristic = S.Protocol.Dp { threshold_frac };
        };
      demand = S.Protocol.Gen { gen = `Gravity; seed };
      deadline = None;
    }

(* --- cluster phase: 4 TCP shards behind the consistent-hash router --- *)

let cluster_evaluate ~seed =
  evaluate_query ~topology:"b4" ~threshold_frac:0.05 ~seed

let router_call sess req =
  match S.Router.call sess req with
  | Ok r -> (
      match Json.member "ok" r with
      | Some (Json.Bool true) -> r
      | _ -> fail "cluster bench: request failed: %s" (Json.to_string r))
  | Error e -> fail "cluster bench: %s" (S.Client.error_to_string e)

let timed_router_call sess req =
  let t0 = Unix.gettimeofday () in
  let r = router_call sess req in
  (1000. *. (Unix.gettimeofday () -. t0), r)

let run_cluster () =
  Common.section "serve: 4-shard cluster behind the router";
  let shard_count = 4 in
  let shards =
    List.init shard_count (fun i ->
        let socket_path =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "repro-serve-bench-shard%d-%d.sock" i
               (Unix.getpid ()))
        in
        let config =
          {
            (S.Daemon.default_config ~socket_path) with
            (* jobs = 1: a killed in-process shard must not leak pool
               domains (Daemon.kill never drains) *)
            S.Daemon.jobs = 1;
            tcp_port = Some 0;
          }
        in
        match S.Daemon.start config with
        | Error e -> fail "cluster bench: shard %d: %s" i e
        | Ok h -> (
            match S.Daemon.tcp_port h with
            | Some port -> (h, port)
            | None -> fail "cluster bench: shard %d has no TCP port" i))
  in
  let addrs =
    List.map
      (fun (_, port) -> S.Protocol.Tcp { host = "127.0.0.1"; port })
      shards
  in
  Common.row "shards on tcp ports %s (jobs 1 each)"
    (String.concat "," (List.map (fun (_, p) -> string_of_int p) shards));
  let router = S.Router.create ~heartbeat_interval:0.1 ~miss_limit:2 addrs in
  S.Router.start router;
  let hot_seeds = List.init (if Common.full_mode then 16 else 6) (fun i -> i + 1) in
  (* seed pass: populate the cluster's caches (one real solve per key,
     placed by the ring) *)
  let seed_sess = S.Router.session router in
  List.iter
    (fun seed -> ignore (router_call seed_sess (cluster_evaluate ~seed)))
    hot_seeds;
  S.Router.close_session seed_sess;

  (* mixed hot/cold workload from concurrent sessions: every third call
     is a fresh instance (a real solve on its owning shard), the rest
     re-hit seeded keys *)
  let threads = 4 in
  let rounds = if Common.full_mode then 6 else 3 in
  let hot = Array.of_list hot_seeds in
  let per_thread = rounds * Array.length hot in
  let latencies = Array.make_matrix threads per_thread 0. in
  let t_mixed = Unix.gettimeofday () in
  let workers =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let sess = S.Router.session router in
            Fun.protect
              ~finally:(fun () -> S.Router.close_session sess)
              (fun () ->
                for op = 0 to per_thread - 1 do
                  let req =
                    if op mod 3 = 2 then
                      cluster_evaluate ~seed:(1000 + (t * per_thread) + op)
                    else cluster_evaluate ~seed:hot.(op mod Array.length hot)
                  in
                  let ms, _ = timed_router_call sess req in
                  latencies.(t).(op) <- ms
                done))
          ())
  in
  List.iter Thread.join workers;
  let mixed_wall = Unix.gettimeofday () -. t_mixed in
  let mixed = Array.concat (Array.to_list latencies) in
  let (_, mixed_json) = summary "mixed" mixed in
  let aggregate_rps =
    if mixed_wall > 0. then float_of_int (Array.length mixed) /. mixed_wall
    else 0.
  in
  Common.row "  aggregate throughput: %.0f requests/s (%d sessions, 4 shards)"
    aggregate_rps threads;

  (* kill one shard mid-workload: every request must still succeed;
     recovery time is kill -> first routed reply *)
  let victim, _ = List.nth shards 1 in
  let sess = S.Router.session router in
  let failovers_before = (S.Router.stats router).S.Router.failovers in
  let t_kill = Unix.gettimeofday () in
  S.Daemon.kill victim;
  (* drive hot then fresh keys until one lands on the dead shard and
     fails over; recovery is kill -> that first failed-over reply *)
  let rec drive i =
    if i >= 200 then
      fail "cluster bench: no request ever routed to the dead shard";
    let seed = if i < Array.length hot then hot.(i) else 5000 + i in
    ignore (router_call sess (cluster_evaluate ~seed));
    if (S.Router.stats router).S.Router.failovers <= failovers_before then
      drive (i + 1)
  in
  drive 0;
  let recovery_ms = 1000. *. (Unix.gettimeofday () -. t_kill) in
  let post_kill =
    Array.init
      (2 * Array.length hot)
      (fun i ->
        fst
          (timed_router_call sess
             (cluster_evaluate ~seed:hot.(i mod Array.length hot))))
  in
  S.Router.close_session sess;
  let (_, post_kill_json) = summary "kill" post_kill in
  let st = S.Router.stats router in
  if st.S.Router.failed > 0 then
    fail "cluster bench: %d request(s) exhausted every shard"
      st.S.Router.failed;
  Common.row
    "  killed 1 of 4 shards: first reply %.1f ms after kill, 0 failed \
     requests, %d failovers"
    recovery_ms st.S.Router.failovers;
  S.Router.shutdown router;
  List.iteri
    (fun i (h, _) ->
      if i <> 1 then begin
        S.Daemon.stop h;
        S.Daemon.wait h
      end)
    shards;
  Json.Obj
    [
      ("shards", Json.Num (float_of_int shard_count));
      ("sessions", Json.Num (float_of_int threads));
      ("mixed", mixed_json);
      ("aggregate_rps", Json.Num aggregate_rps);
      ( "kill_one_shard",
        Json.Obj
          [
            ("recovery_ms", Json.Num recovery_ms);
            ("failed_requests", Json.Num (float_of_int st.S.Router.failed));
            ("post_kill", post_kill_json);
          ] );
      ( "router",
        Json.Obj
          [
            ("routed", Json.Num (float_of_int st.S.Router.routed));
            ("failovers", Json.Num (float_of_int st.S.Router.failovers));
            ("shed", Json.Num (float_of_int st.S.Router.shed));
          ] );
    ]

let run () =
  Common.section "serve: gap-query daemon load generator";
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-serve-bench-%d.sock" (Unix.getpid ()))
  in
  let config =
    { (S.Daemon.default_config ~socket_path) with S.Daemon.jobs }
  in
  let ready = Semaphore.Binary.make false in
  let daemon =
    Thread.create
      (fun () ->
        match S.Daemon.run ~ready:(fun () -> Semaphore.Binary.release ready) config with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "serve bench: daemon: %s\n%!" e;
            Semaphore.Binary.release ready)
      ()
  in
  Semaphore.Binary.acquire ready;
  Common.row "daemon on %s (jobs %d)" socket_path jobs;

  let seeds = if Common.full_mode then [ 1; 2; 3; 4; 5; 6 ] else [ 1; 2; 3 ] in
  let queries =
    List.concat_map
      (fun topology ->
        List.concat_map
          (fun threshold_frac ->
            List.map
              (fun seed -> evaluate_query ~topology ~threshold_frac ~seed)
              seeds)
          [ 0.02; 0.05 ])
      [ "b4"; "swan" ]
  in
  let warm_rounds = if Common.full_mode then 16 else 8 in

  match
    S.Client.with_connection socket_path (fun c ->
        (* cold: every query is a distinct instance -> a real solve *)
        let cold =
          Array.of_list
            (List.map
               (fun q ->
                 let ms, response = timed_call c q in
                 if annotated "cached" response then
                   fail "serve bench: cold query reported cached";
                 ms)
               queries)
        in
        (* warm: identical queries, all answered by the solve cache *)
        let t_warm = Unix.gettimeofday () in
        let warm =
          Array.concat
            (List.init warm_rounds (fun _ ->
                 Array.of_list
                   (List.map
                      (fun q ->
                        let ms, response = timed_call c q in
                        if not (annotated "cached" response) then
                          fail "serve bench: warm query missed the cache";
                        ms)
                      queries)))
        in
        let warm_wall = Unix.gettimeofday () -. t_warm in

        (* dedup: concurrent identical fresh queries coalesce *)
        let clients = 8 in
        let dedup_query =
          evaluate_query ~topology:"swan" ~threshold_frac:0.035 ~seed:97
        in
        let responses = Array.make clients Json.Null in
        let threads =
          List.init clients (fun i ->
              Thread.create
                (fun () ->
                  match
                    S.Client.with_connection socket_path (fun c' ->
                        expect_ok (S.Client.call c' dedup_query))
                  with
                  | Ok r -> responses.(i) <- r
                  | Error e -> fail "serve bench: dedup client: %s" e)
                ())
        in
        List.iter Thread.join threads;
        let coalesced =
          Array.to_list responses
          |> List.filter (annotated "coalesced")
          |> List.length
        in
        let computed =
          Array.to_list responses
          |> List.filter (fun r ->
                 (not (annotated "coalesced" r)) && not (annotated "cached" r))
          |> List.length
        in

        (* batch: concurrent distinct queries in one admission group
           (same topology and op) — the scheduler's admission window
           must dispatch them as one parallel batch, not 6 batches of
           one *)
        let batch_clients = 6 in
        let batch_threads =
          List.init batch_clients (fun i ->
              Thread.create
                (fun () ->
                  match
                    S.Client.with_connection socket_path (fun c' ->
                        expect_ok
                          (S.Client.call c'
                             (evaluate_query ~topology:"b4"
                                ~threshold_frac:0.041 ~seed:(500 + i))))
                  with
                  | Ok _ -> ()
                  | Error e -> fail "serve bench: batch client: %s" e)
                ())
        in
        List.iter Thread.join batch_threads;

        let stats = expect_ok (S.Client.call c S.Protocol.Stats) in
        ignore (expect_ok (S.Client.call c S.Protocol.Shutdown));
        (cold, warm, warm_wall, coalesced, computed, stats))
  with
  | Error e ->
      Thread.join daemon;
      fail "serve bench: %s" e
  | Ok (cold, warm, warm_wall, coalesced, computed, stats) ->
      Thread.join daemon;
      let (cold_p50, _), cold_json = summary "cold" cold in
      let (warm_p50, _), warm_json = summary "warm" warm in
      let speedup = if warm_p50 > 0. then cold_p50 /. warm_p50 else 0. in
      let throughput =
        if warm_wall > 0. then float_of_int (Array.length warm) /. warm_wall
        else 0.
      in
      let hit_rate =
        Option.bind (Json.member "result_cache" stats) (Json.obj_num "hit_rate")
        |> Option.value ~default:0.
      in
      Common.row "  warm p50 is %.0fx lower than cold p50" speedup;
      Common.row "  cached throughput: %.0f requests/s (1 connection)"
        throughput;
      Common.row "  result-cache hit rate: %.3f" hit_rate;
      Common.row "  dedup: %d concurrent identical clients -> %d solve(s), %d coalesced"
        8 computed coalesced;
      let max_batch =
        Option.bind (Json.member "scheduler" stats) (Json.obj_int "max_batch")
        |> Option.value ~default:0
      in
      Common.row "  batch: 6 concurrent distinct clients -> max batch %d"
        max_batch;
      if max_batch <= 1 then
        fail "serve bench: concurrent burst never formed a batch (max_batch %d)"
          max_batch;
      let cluster_json = run_cluster () in
      let take name =
        Option.value (Json.member name stats) ~default:Json.Null
      in
      let doc =
        Json.Obj
          ([
             ("benchmark", Json.Str "repro-serve");
             ("mode", Json.Str (if Common.full_mode then "full" else "fast"));
           ]
          @ Common.host_json_fields ~jobs
          @ [
            ("cold", cold_json);
            ("warm", warm_json);
            ("warm_vs_cold_p50", Json.Num speedup);
            ("cached_throughput_rps", Json.Num throughput);
            ( "dedup",
              Json.Obj
                [
                  ("clients", Json.Num 8.);
                  ("computed", Json.Num (float_of_int computed));
                  ("coalesced", Json.Num (float_of_int coalesced));
                ] );
              ("result_cache", take "result_cache");
              ("oracle_cache", take "oracle_cache");
              ("scheduler", take "scheduler");
              ("cluster", cluster_json);
            ])
      in
      let oc = open_out "BENCH_serve.json" in
      output_string oc (Json.to_string_pretty doc);
      output_char oc '\n';
      close_out oc;
      Common.row "machine-readable results written to BENCH_serve.json"
