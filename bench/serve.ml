(* serve: load generator for the gap-query daemon (lib/serve).

   Boots a daemon on a private Unix socket, then drives it through
   three phases and emits BENCH_serve.json:

   - cold: distinct evaluate queries, every one a real solve;
   - warm: the same queries repeated — all served from the solve cache,
     measuring the cached round-trip (wire + lookup) latency;
   - dedup: N concurrent clients firing one identical fresh query — the
     scheduler coalesces them onto a single solve.

   The headline number is warm-vs-cold p50: how much cheaper a repeated
   query is once the content-addressed cache has seen it. *)

module S = Repro_serve
module Json = S.Json

let jobs = 4

let fail fmt = Printf.ksprintf failwith fmt

let expect_ok = function
  | Error e -> fail "serve bench: transport: %s" e
  | Ok response -> (
      match Json.member "ok" response with
      | Some (Json.Bool true) -> response
      | _ -> fail "serve bench: request failed: %s" (Json.to_string response))

let timed_call c req =
  let t0 = Unix.gettimeofday () in
  let response = expect_ok (S.Client.call c req) in
  (1000. *. (Unix.gettimeofday () -. t0), response)

let annotated name response =
  match Option.bind (Json.member name response) Json.bool with
  | Some b -> b
  | None -> fail "serve bench: response lacks %S" name

(* ascending-sorted array, percentile in [0, 100] *)
let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.
  else
    let idx = int_of_float ((float_of_int (n - 1) *. p /. 100.) +. 0.5) in
    a.(Int.max 0 (Int.min (n - 1) idx))

let mean a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let summary label a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let p50 = percentile sorted 50. and p99 = percentile sorted 99. in
  Common.row "  %-5s %4d requests: mean %8.3f ms   p50 %8.3f ms   p99 %8.3f ms"
    label (Array.length a) (mean a) p50 p99;
  ( (p50, p99),
    Json.Obj
      [
        ("requests", Json.Num (float_of_int (Array.length a)));
        ("mean_ms", Json.Num (mean a));
        ("p50_ms", Json.Num p50);
        ("p99_ms", Json.Num p99);
      ] )

let evaluate_query ~topology ~threshold_frac ~seed =
  S.Protocol.Evaluate
    {
      instance =
        {
          S.Protocol.topology;
          paths = Common.default_paths;
          heuristic = S.Protocol.Dp { threshold_frac };
        };
      demand = S.Protocol.Gen { gen = `Gravity; seed };
      deadline = None;
    }

let run () =
  Common.section "serve: gap-query daemon load generator";
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-serve-bench-%d.sock" (Unix.getpid ()))
  in
  let config =
    { (S.Daemon.default_config ~socket_path) with S.Daemon.jobs }
  in
  let ready = Semaphore.Binary.make false in
  let daemon =
    Thread.create
      (fun () ->
        match S.Daemon.run ~ready:(fun () -> Semaphore.Binary.release ready) config with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "serve bench: daemon: %s\n%!" e;
            Semaphore.Binary.release ready)
      ()
  in
  Semaphore.Binary.acquire ready;
  Common.row "daemon on %s (jobs %d)" socket_path jobs;

  let seeds = if Common.full_mode then [ 1; 2; 3; 4; 5; 6 ] else [ 1; 2; 3 ] in
  let queries =
    List.concat_map
      (fun topology ->
        List.concat_map
          (fun threshold_frac ->
            List.map
              (fun seed -> evaluate_query ~topology ~threshold_frac ~seed)
              seeds)
          [ 0.02; 0.05 ])
      [ "b4"; "swan" ]
  in
  let warm_rounds = if Common.full_mode then 16 else 8 in

  match
    S.Client.with_connection socket_path (fun c ->
        (* cold: every query is a distinct instance -> a real solve *)
        let cold =
          Array.of_list
            (List.map
               (fun q ->
                 let ms, response = timed_call c q in
                 if annotated "cached" response then
                   fail "serve bench: cold query reported cached";
                 ms)
               queries)
        in
        (* warm: identical queries, all answered by the solve cache *)
        let t_warm = Unix.gettimeofday () in
        let warm =
          Array.concat
            (List.init warm_rounds (fun _ ->
                 Array.of_list
                   (List.map
                      (fun q ->
                        let ms, response = timed_call c q in
                        if not (annotated "cached" response) then
                          fail "serve bench: warm query missed the cache";
                        ms)
                      queries)))
        in
        let warm_wall = Unix.gettimeofday () -. t_warm in

        (* dedup: concurrent identical fresh queries coalesce *)
        let clients = 8 in
        let dedup_query =
          evaluate_query ~topology:"swan" ~threshold_frac:0.035 ~seed:97
        in
        let responses = Array.make clients Json.Null in
        let threads =
          List.init clients (fun i ->
              Thread.create
                (fun () ->
                  match
                    S.Client.with_connection socket_path (fun c' ->
                        expect_ok (S.Client.call c' dedup_query))
                  with
                  | Ok r -> responses.(i) <- r
                  | Error e -> fail "serve bench: dedup client: %s" e)
                ())
        in
        List.iter Thread.join threads;
        let coalesced =
          Array.to_list responses
          |> List.filter (annotated "coalesced")
          |> List.length
        in
        let computed =
          Array.to_list responses
          |> List.filter (fun r ->
                 (not (annotated "coalesced" r)) && not (annotated "cached" r))
          |> List.length
        in

        (* batch: concurrent distinct queries in one admission group
           (same topology and op) — the scheduler's admission window
           must dispatch them as one parallel batch, not 6 batches of
           one *)
        let batch_clients = 6 in
        let batch_threads =
          List.init batch_clients (fun i ->
              Thread.create
                (fun () ->
                  match
                    S.Client.with_connection socket_path (fun c' ->
                        expect_ok
                          (S.Client.call c'
                             (evaluate_query ~topology:"b4"
                                ~threshold_frac:0.041 ~seed:(500 + i))))
                  with
                  | Ok _ -> ()
                  | Error e -> fail "serve bench: batch client: %s" e)
                ())
        in
        List.iter Thread.join batch_threads;

        let stats = expect_ok (S.Client.call c S.Protocol.Stats) in
        ignore (expect_ok (S.Client.call c S.Protocol.Shutdown));
        (cold, warm, warm_wall, coalesced, computed, stats))
  with
  | Error e ->
      Thread.join daemon;
      fail "serve bench: %s" e
  | Ok (cold, warm, warm_wall, coalesced, computed, stats) ->
      Thread.join daemon;
      let (cold_p50, _), cold_json = summary "cold" cold in
      let (warm_p50, _), warm_json = summary "warm" warm in
      let speedup = if warm_p50 > 0. then cold_p50 /. warm_p50 else 0. in
      let throughput =
        if warm_wall > 0. then float_of_int (Array.length warm) /. warm_wall
        else 0.
      in
      let hit_rate =
        Option.bind (Json.member "result_cache" stats) (Json.obj_num "hit_rate")
        |> Option.value ~default:0.
      in
      Common.row "  warm p50 is %.0fx lower than cold p50" speedup;
      Common.row "  cached throughput: %.0f requests/s (1 connection)"
        throughput;
      Common.row "  result-cache hit rate: %.3f" hit_rate;
      Common.row "  dedup: %d concurrent identical clients -> %d solve(s), %d coalesced"
        8 computed coalesced;
      let max_batch =
        Option.bind (Json.member "scheduler" stats) (Json.obj_int "max_batch")
        |> Option.value ~default:0
      in
      Common.row "  batch: 6 concurrent distinct clients -> max batch %d"
        max_batch;
      if max_batch <= 1 then
        fail "serve bench: concurrent burst never formed a batch (max_batch %d)"
          max_batch;
      let take name =
        Option.value (Json.member name stats) ~default:Json.Null
      in
      let doc =
        Json.Obj
          ([
             ("benchmark", Json.Str "repro-serve");
             ("mode", Json.Str (if Common.full_mode then "full" else "fast"));
           ]
          @ Common.host_json_fields ~jobs
          @ [
            ("cold", cold_json);
            ("warm", warm_json);
            ("warm_vs_cold_p50", Json.Num speedup);
            ("cached_throughput_rps", Json.Num throughput);
            ( "dedup",
              Json.Obj
                [
                  ("clients", Json.Num 8.);
                  ("computed", Json.Num (float_of_int computed));
                  ("coalesced", Json.Num (float_of_int coalesced));
                ] );
              ("result_cache", take "result_cache");
              ("oracle_cache", take "oracle_cache");
              ("scheduler", take "scheduler");
            ])
      in
      let oc = open_out "BENCH_serve.json" in
      output_string oc (Json.to_string_pretty doc);
      output_char oc '\n';
      close_out oc;
      Common.row "machine-readable results written to BENCH_serve.json"
