(* Figure 4: what drives DP's optimality gap.

   (a) gap vs pinning threshold on the three production topologies -
       higher thresholds pin more demands and the gap grows;
   (b) gap vs average shortest-path length on synthetic circles (n nodes,
       each connected to its k nearest neighbours) - longer paths burn
       capacity on more edges, so the gap grows with path length. *)

let search pathset ~threshold =
  let ev = Evaluate.make_dp pathset ~threshold in
  let r = Adversary.find ev ~options:(Common.large_model_options ()) () in
  r.Adversary.normalized_gap

let run_a () =
  Common.subsection "(a) DP gap vs threshold (fraction of link capacity)";
  let topologies =
    [ ("swan", Topologies.swan ()); ("b4", Topologies.b4 ());
      ("abilene", Topologies.abilene ()) ]
  in
  let fractions = [ 0.025; 0.05; 0.10; 0.15; 0.20 ] in
  Common.row "%-10s %s" "topology"
    (String.concat " "
       (List.map (fun f -> Printf.sprintf "T=%4.1f%%" (100. *. f)) fractions));
  List.iter
    (fun (name, g) ->
      let pathset = Common.pathset_of g ~paths:Common.default_paths in
      let gaps =
        List.map
          (fun f -> search pathset ~threshold:(Common.threshold_of g ~fraction:f))
          fractions
      in
      Common.row "%-10s %s" name
        (String.concat " " (List.map (Printf.sprintf "%7.3f") gaps));
      let increasing =
        let rec check = function
          | a :: (b :: _ as rest) -> a <= b +. 0.02 && check rest
          | _ -> true
        in
        check gaps
      in
      if not increasing then
        Common.row "  (!) expected non-decreasing trend not met for %s" name)
    topologies

let run_b () =
  Common.subsection "(b) DP gap vs average shortest-path length (circles)";
  Common.row "%-14s %18s %12s" "topology" "avg path length" "gap/capacity";
  let configs =
    [ (8, 3); (8, 2); (10, 3); (8, 1); (10, 2); (12, 2); (10, 1); (12, 1) ]
  in
  let results =
    List.map
      (fun (n, k) ->
        let g = Topologies.circle ~n ~neighbors:k () in
        let pathset = Common.pathset_of g ~paths:Common.default_paths in
        let apl = Topologies.average_shortest_path_length g in
        let gap = search pathset ~threshold:(Common.threshold_of g ~fraction:0.05) in
        (Printf.sprintf "circle-%d-%d" n k, apl, gap))
      configs
  in
  let sorted = List.sort (fun (_, a, _) (_, b, _) -> compare a b) results in
  List.iter
    (fun (name, apl, gap) -> Common.row "%-14s %18.2f %12.3f" name apl gap)
    sorted;
  (* correlation check: gap should grow with path length *)
  let n = float_of_int (List.length sorted) in
  let xs = List.map (fun (_, a, _) -> a) sorted
  and ys = List.map (fun (_, _, g) -> g) sorted in
  let mean l = List.fold_left ( +. ) 0. l /. n in
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys
  in
  let sx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.)) 0. xs)
  and sy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.)) 0. ys) in
  Common.row "correlation(avg path length, gap) = %.2f  (paper: strongly positive)"
    (cov /. (sx *. sy))

let run () =
  Common.section "Figure 4: DP gap drivers";
  run_a ();
  run_b ()
