(* Shared plumbing for the figure-regeneration harness.

   Every experiment is scaled by a "budget" profile: the default profile
   keeps the full run in minutes on a laptop; REPRO_BENCH_FULL=1 switches
   to larger time budgets and enables the MILP phase everywhere (closer to
   the paper's one-hour-per-search setting). *)

let full_mode =
  match Sys.getenv_opt "REPRO_BENCH_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

(* default experiment parameters (paper §4 "Methodology") *)
let default_paths = 2
let default_pop_parts = 2

let threshold_of g ~fraction = fraction *. Graph.max_capacity g

let pathset_of g ~paths = Pathset.compute (Demand.full_space g) ~k:paths

(* search budgets *)
let whitebox_time = if full_mode then 120. else 12.
let blackbox_time = if full_mode then 120. else 10.
let probe_budget = if full_mode then 3000 else 600

let dp_whitebox_options ?(run_milp = true) () =
  {
    Adversary.default_options with
    probe_budget;
    run_milp = run_milp && (full_mode || true);
    bb =
      {
        Branch_bound.default_options with
        time_limit = whitebox_time;
        stall_time = whitebox_time /. 3.;
      };
  }

(* Options for the oversized POP-style metaopt models. Historically these
   were probe-only at default bench scale (no MILP phase, no bound): the
   dense tableau could not usefully bound the multi-instance KKT models
   within the fast budgets. The sparse revised-simplex backend can, so the
   gate now keys on the active LP backend rather than on REPRO_BENCH_FULL:
   probe-only survives only as the dense reference backend's escape hatch. *)
let large_model_options () =
  { (dp_whitebox_options ()) with
    run_milp = (Backend.default () = Backend.Sparse) }

let blackbox_options () =
  { Blackbox.default_options with time_limit = blackbox_time }

let pp_trace trace =
  List.iter (fun (t, g) -> row "    t=%7.2fs  best gap %10.1f" t g) trace

let norm g gap = gap /. Graph.total_capacity g

(* ------------------------------------------------------------------ *)
(* host metadata (every BENCH_*.json emitter)                          *)
(* ------------------------------------------------------------------ *)

(* Every BENCH_*.json file records the same two host facts — the
   hardware's recommended domain count and the highest worker count the
   run actually used — so cross-file and cross-machine comparisons can
   tell a 1-core CI runner from a workstation, and oversubscription
   ("cpus": 1, "jobs": 4) from a reporting bug. One helper per JSON
   mechanism in use: raw Printf emitters and Json.Obj builders. *)

module Json = Repro_serve.Json

let host_cpus () = Domain.recommended_domain_count ()

let host_printf_fields oc ~jobs =
  Printf.fprintf oc "  \"cpus\": %d,\n  \"jobs\": %d,\n" (host_cpus ())
    jobs

let host_json_fields ~jobs =
  [
    ("cpus", Json.Num (float_of_int (host_cpus ())));
    ("jobs", Json.Num (float_of_int jobs));
  ]

(* ------------------------------------------------------------------ *)
(* machine-readable timing log (BENCH_engine.json)                     *)
(* ------------------------------------------------------------------ *)

(* wall-clock per harness target, in run order *)
let timings : (string * float) list ref = ref []
let note_timing name seconds = timings := (name, seconds) :: !timings

(* effective worker-domain count the scenarios actually ran with (the
   engine benches request jobs = 4 regardless of the host's core count);
   recorded next to the hardware's recommendation so a "cpus: 1, jobs: 4"
   line reads as oversubscription, not as a reporting bug *)
let effective_jobs = ref 1
let note_jobs n = if n > !effective_jobs then effective_jobs := n

(* engine scenario records: pre-rendered JSON objects, in run order *)
let scenarios : string list ref = ref []
let add_scenario json = scenarios := json :: !scenarios

let write_bench_json path =
  if !scenarios = [] then
    (* no engine scenarios ran (e.g. `main.exe serve` only): leave any
       previously emitted BENCH_engine.json alone instead of clobbering
       it with an empty scenario list *)
    row "no engine scenarios ran; %s left untouched" path
  else begin
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"repro-engine\",\n\
      \  \"mode\": %S,\n"
      (if full_mode then "full" else "fast");
    host_printf_fields oc ~jobs:!effective_jobs;
    Printf.fprintf oc "  \"targets\": [\n%s\n  ],\n"
      (String.concat ",\n"
         (List.rev_map
            (fun (n, s) ->
              Printf.sprintf "    {\"name\": %S, \"wall_s\": %.3f}" n s)
            !timings));
    Printf.fprintf oc "  \"scenarios\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.rev !scenarios));
    close_out oc;
    row "machine-readable timings written to %s" path
  end
