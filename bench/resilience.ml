(* Resilience benchmarks, recorded into BENCH_engine.json:

   - deadline-check overhead: the cooperative budget checks sit inside
     the simplex pivot loop and the B&B expansion loop; this measures a
     full MILP solve with no deadline vs an armed-but-never-tripping one.
     The delta is the price every solve pays for interruptibility.

   - graceful degradation: the same instance under shrinking node
     budgets — what incumbent/bound quality a caller buys with each
     budget tier. This is the serve-layer --degrade story in numbers. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* market-split instance: equality rows over binaries, pseudo-random
   coefficients — small enough to solve exactly, big enough that the
   tree has thousands of nodes for the checks to tick in *)
let market_split ?(sense = Model.Eq) ~n ~m () =
  let model = Model.create () in
  let xs = Model.add_vars ~kind:Model.Binary model n in
  let a i j =
    float_of_int
      ((((i + 1) * 37 * (j + 3)) + (j * j * 11) + (i * j * j * j * 7)) mod 100)
  in
  for i = 0 to m - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      row_sum := !row_sum +. a i j
    done;
    ignore
      (Model.add_constr model
         (Linexpr.of_terms (List.init n (fun j -> (xs.(j), a i j))))
         sense
         (Float.of_int (int_of_float (!row_sum /. 2.))))
  done;
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))));
  model

let opts = { Branch_bound.default_options with jobs = 1 }

let deadline_overhead ~n ~m =
  Common.subsection
    (Printf.sprintf "deadline-check overhead (market-split n=%d m=%d)" n m);
  let solve deadline () =
    let options = { opts with Branch_bound.deadline } in
    Solver.solve ~options (market_split ~n ~m ())
  in
  (* generous budgets that never trip: measures pure check cost *)
  let slack () =
    Some (Repro_resilience.Deadline.create ~wall:1e9 ~pivots:max_int ~nodes:max_int ())
  in
  (* warm up both arms, then interleave samples so GC/clock drift lands
     on both evenly; keep the best of each (min is the low-noise stat
     for a deterministic workload) *)
  ignore (solve None ());
  ignore (solve (slack ()) ());
  let best_bare = ref infinity and best_armed = ref infinity in
  let nodes = ref 0 in
  for _ = 1 to 5 do
    Gc.full_major ();
    let r, dt = time (solve None) in
    nodes := r.Branch_bound.nodes;
    if dt < !best_bare then best_bare := dt;
    Gc.full_major ();
    let _, dt = time (solve (slack ())) in
    if dt < !best_armed then best_armed := dt
  done;
  let overhead_pct = 100. *. ((!best_armed /. !best_bare) -. 1.) in
  Common.row "  bare %.4fs, armed %.4fs over %d nodes: overhead %+.1f%%"
    !best_bare !best_armed !nodes overhead_pct;
  Common.add_scenario
    (Printf.sprintf
       "    {\"name\": \"resilience/deadline-overhead\", \"bare_s\": %.4f, \
        \"armed_s\": %.4f, \"nodes\": %d, \"overhead_pct\": %.1f}"
       !best_bare !best_armed !nodes overhead_pct)

let degradation_curve ~n ~m =
  (* the Le relaxation is feasible (x = 0 onward), so the budget tiers
     show real incumbent/bound pairs rather than a bound-only march to
     an infeasibility proof *)
  Common.subsection
    (Printf.sprintf "graceful degradation (market-split-le n=%d m=%d)" n m);
  List.iter
    (fun budget ->
      let deadline =
        if budget = 0 then None
        else Some (Repro_resilience.Deadline.create ~nodes:budget ())
      in
      let options = { opts with Branch_bound.deadline } in
      let outcome, dt =
        time (fun () ->
            Solver.solve_bounded ~options
              (market_split ~sense:Model.Le ~n ~m ()))
      in
      let module O = Repro_resilience.Outcome in
      let label, inc, bound =
        match outcome with
        | O.Complete r ->
            ("complete", r.Branch_bound.objective, r.Branch_bound.best_bound)
        | O.Feasible_bound { incumbent; proven_bound; _ } ->
            ("feasible-bound", incumbent, proven_bound)
        | O.Degraded { result = Some r; _ } ->
            ("degraded", Float.nan, r.Branch_bound.best_bound)
        | O.Degraded { result = None; _ } -> ("degraded", Float.nan, Float.nan)
        | O.Failed e -> (O.error_to_string e, Float.nan, Float.nan)
      in
      let budget_label =
        if budget = 0 then "unbounded" else string_of_int budget
      in
      Common.row "  nodes<=%-9s %.4fs  %-14s incumbent %-8.4g bound %.4g"
        budget_label dt label inc bound;
      (* nan/inf are not JSON: absent tiers become null *)
      let num v =
        if Float.is_finite v then Printf.sprintf "%.6g" v else "null"
      in
      Common.add_scenario
        (Printf.sprintf
           "    {\"name\": \"resilience/degradation/nodes-%s\", \"elapsed_s\": \
            %.4f, \"outcome\": \"%s\", \"incumbent\": %s, \"bound\": %s}"
           budget_label dt label (num inc) (num bound)))
    [ 10; 100; 1000; 0 ]

let run () =
  Common.section "resilience: deadline overhead and degradation";
  let n, m = if Common.full_mode then (24, 3) else (20, 2) in
  deadline_overhead ~n ~m;
  let n, m = if Common.full_mode then (50, 5) else (40, 4) in
  degradation_curve ~n ~m
