(* Figure-regeneration harness (paper §4) + Bechamel microbenchmarks.

   Usage:
     dune exec bench/main.exe              regenerate every figure + micro
     dune exec bench/main.exe fig3 fig6    selected figures only
     dune exec bench/main.exe micro        microbenchmarks only

   REPRO_BENCH_FULL=1 raises all search budgets (closer to the paper's
   one-hour-per-search desktop setting) and enables the MILP phase for the
   large POP models. See EXPERIMENTS.md for paper-vs-measured notes. *)

let all : (string * (unit -> unit)) list =
  [
    ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4a", Fig4.run_a);
    ("fig4b", Fig4.run_b);
    ("fig4", Fig4.run);
    ("fig5a", Fig5.run_a);
    ("fig5b", Fig5.run_b);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("lp", Lp.run);
    ("ablations", Ablations.run);
    ("micro", Micro.run);
    ("engine", Engine_perf.run);
    ("serve", Serve.run);
    ("sweep", Sweep.run);
    ("follower", Follower.run);
    ("resilience", Resilience.run);
  ]

let default =
  [
    "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "lp"; "ablations"; "micro";
    "engine"; "serve"; "sweep"; "follower"; "resilience";
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> default
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "Reproduction harness: 'Minding the gap between fast heuristics and \
     their optimal counterparts' (HotNets '22)\n\
     mode: %s\n%!"
    (if Common.full_mode then "FULL (REPRO_BENCH_FULL=1)" else "fast");
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some run ->
          let t = Unix.gettimeofday () in
          run ();
          Common.note_timing name (Unix.gettimeofday () -. t)
      | None ->
          Printf.eprintf "unknown target %S; available: %s\n%!" name
            (String.concat ", " (List.map fst all));
          exit 1)
    requested;
  Common.write_bench_json "BENCH_engine.json";
  Printf.printf "\ntotal harness time: %.1fs\n%!" (Unix.gettimeofday () -. t0)
