(* Figure 5: POP's optimality gap.

   (a) robustness of the adversarial input: demands found against a single
       random partition look bad for that partition but much less so on
       fresh partitions; averaging over 5 instances finds inputs that are
       consistently bad (tested here on 10 held-out partitions);
   (b) more partitions -> larger gap (capacity split more ways); more
       paths per pair -> somewhat smaller gap (the heuristic can reach
       more of the fragmented capacity). *)

let test_on_fresh_partitions pathset ~parts ~demand ~seeds =
  List.map
    (fun seed ->
      let rng = Rng.create seed in
      let partition =
        Pop.random_partition ~rng ~num_pairs:(Pathset.num_pairs pathset) ~parts
      in
      let h = (Pop.solve pathset ~parts partition demand).Pop.total in
      let opt = (Opt_max_flow.solve pathset demand).Opt_max_flow.total in
      opt -. h)
    seeds

let run_a () =
  Common.subsection "(a) adversary trained on 1 vs 5 random partitions (B4)";
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let parts = Common.default_pop_parts in
  let total_cap = Graph.total_capacity g in
  let train instances =
    let ev =
      Evaluate.make_pop pathset ~parts ~instances ~rng:(Rng.create 4242) ()
    in
    Adversary.find ev ~options:(Common.large_model_options ()) ()
  in
  let report name (r : Adversary.result) =
    let fresh =
      test_on_fresh_partitions pathset ~parts ~demand:r.Adversary.demands
        ~seeds:(List.init 10 (fun i -> 9000 + i))
    in
    let mean = List.fold_left ( +. ) 0. fresh /. 10. in
    let worst = List.fold_left Float.min infinity fresh in
    Common.row
      "  %-22s train gap %.3f | on 10 fresh partitions: mean %.3f min %.3f"
      name
      (r.Adversary.gap /. total_cap)
      (mean /. total_cap) (worst /. total_cap)
  in
  report "trained on 1 instance" (train 1);
  report "trained on 5 (avg)" (train 5);
  Common.row
    "  (paper: the 5-instance average generalizes; 1-instance training overfits)"

let run_b () =
  Common.subsection "(b) gap vs number of partitions / number of paths (B4)";
  let g = Topologies.b4 () in
  Common.row "%-24s %10s" "configuration" "gap/cap";
  List.iter
    (fun parts ->
      let pathset = Common.pathset_of g ~paths:Common.default_paths in
      let ev =
        Evaluate.make_pop pathset ~parts ~instances:5 ~rng:(Rng.create 555) ()
      in
      let r = Adversary.find ev ~options:(Common.large_model_options ()) () in
      Common.row "%2d partitions, 2 paths   %10.3f" parts
        r.Adversary.normalized_gap)
    [ 2; 3; 4 ];
  List.iter
    (fun paths ->
      let pathset = Common.pathset_of g ~paths in
      let ev =
        Evaluate.make_pop pathset ~parts:2 ~instances:5 ~rng:(Rng.create 555) ()
      in
      let r = Adversary.find ev ~options:(Common.large_model_options ()) () in
      Common.row " 2 partitions, %d paths   %10.3f" paths
        r.Adversary.normalized_gap)
    [ 3; 4 ];
  Common.row
    "  (paper: gap grows with partitions, shrinks somewhat with extra paths)"

let run () =
  Common.section "Figure 5: POP gap structure";
  run_a ();
  run_b ()
