(* Figure 3: max discovered gap (normalized by total capacity) vs search
   time on B4, white-box vs hill climbing vs simulated annealing, for DP
   (a) and POP (b).

   Expected shape (paper): both heuristics show 20%-45% normalized gaps;
   the white-box technique finds larger gaps orders of magnitude faster
   than the black-box searches, with DP especially hard for black-box
   methods (the pinning-sensitive input region is a small fraction of the
   demand space). *)

let print_series name final_gap norm trace =
  Common.row "  %-22s final gap %10.1f (gap/total-capacity = %.3f)" name
    final_gap norm;
  Common.pp_trace trace

let run () =
  Common.section
    "Figure 3: discovered gap vs search time on B4 (white-box vs black-box)";
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  Common.subsection "(a) Demand Pinning, threshold = 5% of link capacity";
  let threshold = Common.threshold_of g ~fraction:0.05 in
  let ev = Evaluate.make_dp pathset ~threshold in
  let wb = Adversary.find ev ~options:(Common.dp_whitebox_options ()) () in
  print_series "white-box (ours)" wb.Adversary.gap wb.Adversary.normalized_gap
    wb.Adversary.trace;
  let bb_opts = Common.blackbox_options () in
  let hc = Blackbox.hill_climb ev ~rng:(Rng.create 1001) ~options:bb_opts () in
  print_series "hill climbing" hc.Blackbox.gap hc.Blackbox.normalized_gap
    hc.Blackbox.trace;
  let sa =
    Blackbox.simulated_annealing ev ~rng:(Rng.create 1002) ~options:bb_opts ()
  in
  print_series "simulated annealing" sa.Blackbox.gap sa.Blackbox.normalized_gap
    sa.Blackbox.trace;
  Common.row "  (%d / %d / %d oracle or solver evaluations)"
    wb.Adversary.stats.Adversary.oracle_calls hc.Blackbox.evaluations
    sa.Blackbox.evaluations;

  Common.subsection "(b) POP, 2 partitions, 5 random instances (average)";
  let pop_ev =
    Evaluate.make_pop pathset ~parts:Common.default_pop_parts ~instances:5
      ~rng:(Rng.create 42) ()
  in
  (* the 5-instance KKT model is too large for the MILP substrate to bound
     within this budget: probe-only white-box mode (see DESIGN.md) *)
  let wb_opts =
    if Common.full_mode then Common.dp_whitebox_options ()
    else Common.large_model_options ()
  in
  let wbp = Adversary.find pop_ev ~options:wb_opts () in
  print_series "white-box (ours)" wbp.Adversary.gap
    wbp.Adversary.normalized_gap wbp.Adversary.trace;
  let hcp = Blackbox.hill_climb pop_ev ~rng:(Rng.create 1003) ~options:bb_opts () in
  print_series "hill climbing" hcp.Blackbox.gap hcp.Blackbox.normalized_gap
    hcp.Blackbox.trace;
  let sap =
    Blackbox.simulated_annealing pop_ev ~rng:(Rng.create 1004) ~options:bb_opts ()
  in
  print_series "simulated annealing" sap.Blackbox.gap sap.Blackbox.normalized_gap
    sap.Blackbox.trace;
  Common.row "";
  Common.row
    "paper check: gaps in the 20%%-45%% band; white-box larger and faster than black-box";
  Common.row "  DP : white-box %.3f vs best black-box %.3f"
    wb.Adversary.normalized_gap
    (Float.max hc.Blackbox.normalized_gap sa.Blackbox.normalized_gap);
  Common.row "  POP: white-box %.3f vs best black-box %.3f"
    wbp.Adversary.normalized_gap
    (Float.max hcp.Blackbox.normalized_gap sap.Blackbox.normalized_gap)
