(* LP engine benchmark: dense tableau vs sparse revised simplex, and
   warm-started vs cold-restarted branch-and-bound.

   Root-LP timings cover the fig6-family metaopt models (DP and POP on
   B4) plus larger synthetic circle topologies, where the constraint
   matrices grow while staying extremely sparse — the regime the revised
   simplex is built for. The warm-start comparison re-runs the same
   branch-and-bound search with [warm_start = false] (cold from-scratch
   solve per node) at a fixed node budget and compares total simplex
   iterations.

   Results go to stdout and to BENCH_lp.json. REPRO_BENCH_LP_TINY=1
   shrinks everything to CI-smoke size. *)

let tiny_mode =
  match Sys.getenv_opt "REPRO_BENCH_LP_TINY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

type root_row = {
  model_name : string;
  vars : int;
  constrs : int;
  dense_s : float;
  sparse_s : float;
  dense_obj : float;
  sparse_obj : float;
  dense_viol : float;
  sparse_viol : float;
  sparse_stats : Simplex.stats;
}

(* feasibility of a relaxation solution w.r.t. the linear rows and
   variable bounds only — integrality/SOS1 violations are expected at
   the root and would drown the signal *)
let linear_violation model primal =
  let worst = ref 0. in
  for c = 0 to Model.num_constrs model - 1 do
    let v = Model.constr_violation model primal c in
    if v > !worst then worst := v
  done;
  for v = 0 to Model.num_vars model - 1 do
    let x = primal.(v) in
    let lo = Model.var_lb model v -. x and hi = x -. Model.var_ub model v in
    if lo > !worst then worst := lo;
    if hi > !worst then worst := hi
  done;
  !worst

type warm_row = {
  problem : string;
  warm_iters : int;
  cold_iters : int;
  warm_nodes : int;
  cold_nodes : int;
  warm_s : float;
  cold_s : float;
  hits : int;
  misses : int;
  refactors : int;
      (* forced reinversions of inherited eta files: the warm path used
         to inherit arbitrarily long eta chains from shipped bases,
         making "warm" slower than cold on deep trees *)
}

let dp_metaopt pathset g =
  Gap_problem.build pathset
    ~heuristic:
      (Gap_problem.Dp { threshold = Common.threshold_of g ~fraction:0.05 })
    ()

let pop_metaopt pathset ~instances =
  let rng = Rng.create 99 in
  Gap_problem.build pathset
    ~heuristic:
      (Gap_problem.Pop
         {
           parts = Common.default_pop_parts;
           partitions =
             List.init instances (fun _ ->
                 Pop.random_partition ~rng
                   ~num_pairs:(Pathset.num_pairs pathset)
                   ~parts:Common.default_pop_parts);
           reduce = `Average;
         })
    ()

(* fig6-family metaopt models + larger circle instances; each entry is
   (name, lazily built model) so tiny mode never constructs the big ones *)
let root_models () =
  let b4 = Topologies.b4 () in
  let b4_paths = Common.pathset_of b4 ~paths:Common.default_paths in
  let circle n k =
    let g = Topologies.circle ~n ~neighbors:k () in
    let pathset = Common.pathset_of g ~paths:Common.default_paths in
    ( Printf.sprintf "DP metaopt circle-%d-%d" n k,
      fun () -> (dp_metaopt pathset g).Gap_problem.model )
  in
  if tiny_mode then
    [
      ( "DP metaopt b4",
        fun () -> (dp_metaopt b4_paths b4).Gap_problem.model );
      circle 8 2;
    ]
  else
    [
      ( "DP metaopt b4",
        fun () -> (dp_metaopt b4_paths b4).Gap_problem.model );
      ( "POP(2 inst) metaopt b4",
        fun () -> (pop_metaopt b4_paths ~instances:2).Gap_problem.model );
      (* kept at sizes where the dense oracle still terminates in minutes
         on one core; circle-16-4 already pushes dense past 15 min *)
      circle 10 3;
      circle 12 3;
    ]

let bench_root (name, build) =
  let model = build () in
  let solve backend =
    time (fun () -> Solver.solve_lp ~backend model)
  in
  (* dense root LPs on the big models take seconds; one timed pass each
     is the right cost/precision trade-off here *)
  let dense_r, dense_s = solve Backend.Dense in
  let sparse_r, sparse_s = solve Backend.Sparse in
  let row =
    {
      model_name = name;
      vars = Model.num_vars model;
      constrs = Model.num_constrs model;
      dense_s;
      sparse_s;
      dense_obj = dense_r.Solver.objective;
      sparse_obj = sparse_r.Solver.objective;
      dense_viol = linear_violation model dense_r.Solver.primal;
      sparse_viol = linear_violation model sparse_r.Solver.primal;
      sparse_stats = sparse_r.Solver.stats;
    }
  in
  Common.row "%-28s %7d %8d %9.3f %9.3f %8.2fx  (sparse: %s)" name row.vars
    row.constrs dense_s sparse_s
    (dense_s /. Float.max 1e-9 sparse_s)
    (Fmt.str "%a" Simplex.pp_stats row.sparse_stats);
  if Float.abs (row.dense_obj -. row.sparse_obj)
     > 1e-6 *. (1. +. Float.abs row.dense_obj)
  then
    (* on the larger circle models the dense tableau accumulates
       round-off (no refactorization) and reports an "optimum" that is
       not primal feasible; the violation numbers attribute the
       disagreement *)
    Common.row
      "  note: objectives differ (dense %.9g, sparse %.9g); max row/bound \
       violation dense %.3g vs sparse %.3g"
      row.dense_obj row.sparse_obj row.dense_viol row.sparse_viol;
  row

let bench_warm_cold () =
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let gp = dp_metaopt pathset g in
  let node_limit = if tiny_mode then 40 else 400 in
  let options warm_start =
    {
      Branch_bound.default_options with
      node_limit;
      time_limit = (if tiny_mode then 30. else 300.);
      warm_start;
    }
  in
  let warm_r, warm_s =
    time (fun () ->
        Branch_bound.solve ~options:(options true) gp.Gap_problem.model)
  in
  let cold_r, cold_s =
    time (fun () ->
        Branch_bound.solve ~options:(options false) gp.Gap_problem.model)
  in
  let row =
    {
      problem = "DP metaopt b4";
      warm_iters = warm_r.Branch_bound.simplex_iterations;
      cold_iters = cold_r.Branch_bound.simplex_iterations;
      warm_nodes = warm_r.Branch_bound.nodes;
      cold_nodes = cold_r.Branch_bound.nodes;
      warm_s;
      cold_s;
      hits = warm_r.Branch_bound.lp_stats.Simplex.warm_hits;
      misses = warm_r.Branch_bound.lp_stats.Simplex.warm_misses;
      refactors = warm_r.Branch_bound.lp_stats.Simplex.refactorizations;
    }
  in
  Common.row
    "warm-started: %7d iters / %4d nodes in %6.2fs  (dual-simplex hits \
     %d/%d, %d refactorizations)"
    row.warm_iters row.warm_nodes warm_s row.hits (row.hits + row.misses)
    row.refactors;
  Common.row "cold-restart: %7d iters / %4d nodes in %6.2fs" row.cold_iters
    row.cold_nodes cold_s;
  Common.row "  iteration ratio warm/cold: %.3f"
    (float_of_int row.warm_iters /. float_of_int (Int.max 1 row.cold_iters));
  row

(* ------------------------------------------------------------------ *)
(* parallel tree search                                                *)
(* ------------------------------------------------------------------ *)

type par_row = {
  par_problem : string;
  par_jobs : int;
  par_budget : int;  (* node budget the run processes *)
  par_outcome : string;
  par_objective : float;  (* nan when no incumbent (DP row, by design) *)
  par_bound : float;
  par_elapsed : float;
  par_nodes : int;
  par_steals : int;
  par_idle : float;
}

(* Fixed node budget: every configuration explores the same number of
   tree nodes of the same MILP, and the wall clock of the run is the
   metric. This makes serial and parallel rows identical by
   construction in everything but time — the DP row runs the raw tree
   (no primal heuristic), where neither schedule finds an incumbent at
   this depth, so outcome ("no incumbent") and objective agree exactly;
   the POP row runs the full adversary workload (oracle-rounding primal
   heuristic per node) and every schedule finds the same best gap at
   the root relaxation, so outcome and objective agree there too.

   The speedup on a single core is pure warm-start locality: the serial
   best-bound loop re-walks the dual simplex across the frontier at
   every node (~100s of iterations on the b4-sized LPs), while parallel
   workers plunge — consecutive relaxations differ by one bound change
   and re-solve in a handful of iterations, with parent bases shipped
   by value to stolen nodes. *)
let solve_budget ~jobs ~node_limit ?primal_heuristic gp =
  time (fun () ->
      Branch_bound.solve
        ~options:
          {
            Branch_bound.default_options with
            jobs;
            time_limit = 600.;
            stall_time = infinity;
            node_limit;
          }
        ?primal_heuristic gp.Gap_problem.model)

let bench_parallel_tree () =
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let node_limit = if tiny_mode then 32 else 128 in
  let dp_problem =
    lazy
      (let gp = dp_metaopt pathset g in
       (gp, None))
  in
  let pop_problem =
    lazy
      (let ev =
         Evaluate.make_pop pathset ~parts:Common.default_pop_parts
           ~instances:2 ~rng:(Rng.create 99) ()
       in
       let gp =
         Gap_problem.build pathset
           ~heuristic:(Adversary.heuristic_of_spec ev)
           ()
       in
       let best = ref neg_infinity in
       let bmu = Mutex.create () in
       (* round the relaxation primal to a demand matrix and score it
          with the exact oracle — Adversary.primal_heuristic without the
          probe layer *)
       let primal_heuristic relax_primal =
         let d = Gap_problem.demands_of_primal gp relax_primal in
         (match Evaluate.gap ev d with
         | Some gv ->
             Mutex.lock bmu;
             if gv > !best then best := gv;
             Mutex.unlock bmu
         | None -> ());
         Mutex.lock bmu;
         let b = !best in
         Mutex.unlock bmu;
         if b > neg_infinity then Some (b, None) else None
       in
       (gp, Some primal_heuristic))
  in
  let problems =
    [
      ("DP metaopt b4", dp_problem); ("POP(2 inst) metaopt b4", pop_problem);
    ]
  in
  let jobs_list = if tiny_mode then [ 1; 4 ] else [ 1; 2; 4 ] in
  List.concat_map
    (fun (name, lazy_prob) ->
      let gp, primal_heuristic = Lazy.force lazy_prob in
      let rows =
        List.map
          (fun jobs ->
            let r, elapsed =
              solve_budget ~jobs ~node_limit ?primal_heuristic gp
            in
            {
              par_problem = name;
              par_jobs = jobs;
              par_budget = node_limit;
              par_outcome =
                Fmt.str "%a" Branch_bound.pp_outcome r.Branch_bound.outcome;
              par_objective = r.Branch_bound.objective;
              par_bound = r.Branch_bound.best_bound;
              par_elapsed = elapsed;
              par_nodes = r.Branch_bound.nodes;
              par_steals = r.Branch_bound.tree.Branch_bound.steals;
              par_idle = r.Branch_bound.tree.Branch_bound.idle_s;
            })
          jobs_list
      in
      let serial = List.hd rows in
      List.iter
        (fun row ->
          Common.row
            "%-24s jobs=%d %-20s obj %10.6g  %7.2fs (%.2fx) %4d/%d nodes \
             %4d steals %5.2fs idle"
            row.par_problem row.par_jobs row.par_outcome row.par_objective
            row.par_elapsed
            (serial.par_elapsed /. Float.max 1e-9 row.par_elapsed)
            row.par_nodes row.par_budget row.par_steals row.par_idle)
        rows;
      rows)
    problems

(* ------------------------------------------------------------------ *)
(* cutting-plane pipeline                                              *)
(* ------------------------------------------------------------------ *)

type cut_row = {
  cut_problem : string;
  cut_on : bool;
  cut_jobs : int;
  cut_budget : int;
  cut_outcome : string;
  cut_objective : float;  (* nan when no incumbent (raw tree, by design) *)
  cut_bound : float;
  cut_nodes : int;
  cut_elapsed : float;
  cuts_added : int;
  cuts_active : int;
  bounds_tightened : int;
}

(* Same fixed-node-budget protocol as the parallel section, with the
   relaxation-manager pipeline toggled: the question is how many nodes
   the search needs (or how far the best bound moves within the budget)
   once Gomory/SOS1 cuts, node tightening and pseudo-cost branching are
   on. Runs the raw tree (no primal heuristic) so node counts measure
   the relaxation alone. *)
let bench_cuts () =
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let node_limit = if tiny_mode then 32 else 128 in
  let problems =
    [
      ("DP metaopt b4", fun () -> dp_metaopt pathset g);
      ( "POP(2 inst) metaopt b4",
        fun () -> pop_metaopt pathset ~instances:2 );
    ]
  in
  let configs = [ (false, 1); (true, 1); (true, 4) ] in
  List.concat_map
    (fun (name, build) ->
      let gp = build () in
      let rows =
        List.map
          (fun (on, jobs) ->
            let r, elapsed =
              time (fun () ->
                  Branch_bound.solve
                    ~options:
                      {
                        Branch_bound.default_options with
                        jobs;
                        time_limit = 600.;
                        stall_time = infinity;
                        node_limit;
                        cuts =
                          (if on then Relaxation.default_enabled
                           else Relaxation.disabled);
                      }
                    gp.Gap_problem.model)
            in
            let s = r.Branch_bound.lp_stats in
            {
              cut_problem = name;
              cut_on = on;
              cut_jobs = jobs;
              cut_budget = node_limit;
              cut_outcome =
                Fmt.str "%a" Branch_bound.pp_outcome r.Branch_bound.outcome;
              cut_objective = r.Branch_bound.objective;
              cut_bound = r.Branch_bound.best_bound;
              cut_nodes = r.Branch_bound.nodes;
              cut_elapsed = elapsed;
              cuts_added = s.Simplex.cuts_added;
              cuts_active = s.Simplex.cuts_active;
              bounds_tightened = s.Simplex.bounds_tightened;
            })
          configs
      in
      List.iter
        (fun row ->
          Common.row
            "%-24s cuts=%-3s jobs=%d %-20s bound %10.6g  %4d/%d nodes \
             %3d cuts (%d active) %3d tightened  %6.2fs"
            row.cut_problem
            (if row.cut_on then "on" else "off")
            row.cut_jobs row.cut_outcome row.cut_bound row.cut_nodes
            row.cut_budget row.cuts_added row.cuts_active
            row.bounds_tightened row.cut_elapsed)
        rows;
      rows)
    problems

let write_json path roots warm par_rows cut_rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"repro-lp\",\n\
    \  \"mode\": %S,\n\
    \  \"default_backend\": %S,\n"
    (if tiny_mode then "tiny" else if Common.full_mode then "full" else "fast")
    (Backend.kind_to_string (Backend.default ()));
  (* the tree-search phases are the only parallel ones: record the
     widest worker count any row actually ran with *)
  let jobs =
    List.fold_left
      (fun acc r -> max acc r.cut_jobs)
      (List.fold_left (fun acc r -> max acc r.par_jobs) 1 par_rows)
      cut_rows
  in
  Common.host_printf_fields oc ~jobs;
  Printf.fprintf oc "  \"root_lp\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"model\": %S, \"vars\": %d, \"constrs\": %d, \
               \"dense_s\": %.4f, \"sparse_s\": %.4f, \"speedup\": %.2f, \
               \"dense_viol\": %.3g, \"sparse_viol\": %.3g, \
               \"sparse_iters\": %d, \"refactorizations\": %d, \"etas\": %d}"
              r.model_name r.vars r.constrs r.dense_s r.sparse_s
              (r.dense_s /. Float.max 1e-9 r.sparse_s)
              r.dense_viol r.sparse_viol
              r.sparse_stats.Simplex.iterations
              r.sparse_stats.Simplex.refactorizations
              r.sparse_stats.Simplex.etas)
          roots));
  Printf.fprintf oc
    "  \"warm_start\": {\"problem\": %S, \"node_limit_nodes\": [%d, %d],\n\
    \    \"warm_iters\": %d, \"cold_iters\": %d, \"warm_s\": %.3f, \
     \"cold_s\": %.3f,\n\
    \    \"warm_hits\": %d, \"warm_misses\": %d, \"refactorizations\": %d},\n"
    warm.problem warm.warm_nodes warm.cold_nodes warm.warm_iters
    warm.cold_iters warm.warm_s warm.cold_s warm.hits warm.misses
    warm.refactors;
  (* serial reference for each problem: the jobs=1 row *)
  let serial_of problem =
    List.find
      (fun r -> r.par_jobs = 1 && String.equal r.par_problem problem)
      par_rows
  in
  (* JSON has no nan literal; the DP row has no incumbent by design *)
  let json_float v =
    if Float.is_nan v then "null" else Printf.sprintf "%.9g" v
  in
  Printf.fprintf oc "  \"parallel_tree\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            let s = serial_of r.par_problem in
            Printf.sprintf
              "    {\"problem\": %S, \"jobs\": %d, \"node_budget\": %d, \
               \"outcome\": %S, \"objective\": %s, \"best_bound\": %s, \
               \"elapsed_s\": %.4f, \"speedup\": %.3f, \
               \"nodes\": %d, \"steals\": %d, \"idle_s\": %.3f}"
              r.par_problem r.par_jobs r.par_budget r.par_outcome
              (json_float r.par_objective)
              (json_float r.par_bound) r.par_elapsed
              (s.par_elapsed /. Float.max 1e-9 r.par_elapsed)
              r.par_nodes r.par_steals r.par_idle)
          par_rows));
  Printf.fprintf oc "  \"cuts\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"problem\": %S, \"cuts\": %b, \"jobs\": %d, \
               \"node_budget\": %d, \"outcome\": %S, \"objective\": %s, \
               \"best_bound\": %s, \"nodes\": %d, \"elapsed_s\": %.4f, \
               \"cuts_added\": %d, \"cuts_active\": %d, \
               \"bounds_tightened\": %d}"
              r.cut_problem r.cut_on r.cut_jobs r.cut_budget r.cut_outcome
              (json_float r.cut_objective)
              (json_float r.cut_bound) r.cut_nodes r.cut_elapsed r.cuts_added
              r.cuts_active r.bounds_tightened)
          cut_rows));
  close_out oc;
  Common.row "machine-readable results written to %s" path

let run () =
  Common.section
    (Printf.sprintf "LP engine: dense tableau vs sparse revised simplex%s"
       (if tiny_mode then " (tiny smoke)" else ""));
  Common.row "%-28s %7s %8s %9s %9s %9s" "model" "#vars" "#constrs" "dense(s)"
    "sparse(s)" "speedup";
  let roots = List.map bench_root (root_models ()) in
  Common.subsection "warm-started vs cold-restarted branch-and-bound";
  let warm = bench_warm_cold () in
  Common.subsection
    "parallel tree search: fixed node budget, serial vs jobs in {2, 4}";
  let par_rows = bench_parallel_tree () in
  Common.subsection
    "cutting planes: relaxation pipeline off vs on, fixed node budget";
  let cut_rows = bench_cuts () in
  write_json "BENCH_lp.json" roots warm par_rows cut_rows
