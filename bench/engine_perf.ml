(* Engine benchmarks: serial vs --jobs wall-clock, recorded into
   BENCH_engine.json (see Common.write_bench_json).

   Two families of scenarios:

   - parallel-map: oracle probe scoring and POP instance averaging through
     Repro_engine.Parallel vs the serial loop, with a bit-identity check.
     On a single-CPU container these rows measure dispatch overhead
     (speedup ~1x); the "identical" flag is the point — parallelism is
     free of result drift, so any extra core translates directly.

   - portfolio time-to-target: the serial baseline runs the full
     portfolio (white-box direct + hill climbing + simulated annealing)
     sequentially to its budgets and reports its best gap; the parallel
     run races the same strategies over the shared incumbent store with
     that gap as target and stops as soon as any worker reaches it. The
     speedup is real wall-clock — it comes from not having to finish the
     losing strategies' budgets, so it holds even on one core. *)

let jobs = 4

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* round-robin best-of-n over competing arms: the parallel-map scenarios
   measure sub-100ms regions whose jitter (and GC drift across the run)
   would otherwise dominate the reported speedup. Every arm is run once
   untimed first (so no arm pays cold caches for the others), then each
   timed sample averages [reps] back-to-back runs, and rounds interleave
   the arms so drift lands on all of them evenly. *)
let race ?(n = 5) ?(reps = 5) arms =
  let timed f =
    (* start every sample from the same heap state: a major slice landing
       inside one arm's window is the dominant noise source here *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = ref (f ()) in
    for _ = 2 to reps do
      r := f ()
    done;
    (!r, (Unix.gettimeofday () -. t0) /. float_of_int reps)
  in
  List.iter (fun f -> ignore (f ())) arms;
  let firsts = List.map timed arms in
  let bests = Array.of_list (List.map snd firsts) in
  let farr = Array.of_list arms in
  let len = Array.length farr in
  (* rotate the starting arm each round so no arm always occupies the
     same slot of the round's GC cycle *)
  for round = 2 to n do
    for k = 0 to len - 1 do
      let i = (k + round) mod len in
      let _, t = timed farr.(i) in
      if t < bests.(i) then bests.(i) <- t
    done
  done;
  List.mapi (fun i (r, _) -> (r, bests.(i))) firsts

(* ---- parallel-map scenarios ---------------------------------------- *)

let probe_scoring g =
  let name = Graph.name g in
  Common.subsection (Printf.sprintf "parallel probe scoring (%s)" name);
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let threshold = Common.threshold_of g ~fraction:0.05 in
  let ev = Evaluate.make_dp pathset ~threshold in
  let candidates =
    Probes.dp_candidates pathset ~threshold ~demand_ub:(Graph.max_capacity g)
  in
  (* what this scenario isolates is the *dispatch policy* for a small
     fan-out, so the pool is alive for every timed arm (a server pays
     domain spawning — and the idle domains' GC rendezvous — once, for
     all queries): serial loop vs Parallel with the min-work threshold
     (falls back to the identical serial loop) vs dispatch forced with
     min_work:0 (the pre-threshold behavior, kept as the regression
     witness) *)
  Repro_engine.Pool.with_pool ~domains:jobs (fun pool ->
      let score = Probes.score ev ~constraints:Input_constraints.none in
      let (serial, serial_s), (parallel, jobs_s), (forced, forced_s) =
        match
          race
            [
              (fun () -> Repro_engine.Parallel.map_list score candidates);
              (fun () -> Repro_engine.Parallel.map_list ~pool score candidates);
              (fun () ->
                Repro_engine.Parallel.map_list ~pool ~min_work:0 score
                  candidates);
            ]
        with
        | [ a; b; c ] -> (a, b, c)
        | _ -> assert false
      in
      let identical = serial = parallel && serial = forced in
      Common.row
        "  %d candidates: serial %.3fs, jobs=%d %.3fs (forced dispatch \
         %.3fs), identical: %b"
        (List.length candidates) serial_s jobs jobs_s forced_s identical;
      Common.add_scenario
        (Printf.sprintf
           "    {\"name\": \"parallel-map/probe-scoring/%s\", \"serial_s\": \
            %.3f, \"jobs_s\": %.3f, \"forced_dispatch_s\": %.3f, \"jobs\": \
            %d, \"identical\": %b, \"speedup\": %.2f}"
           name serial_s jobs_s forced_s jobs identical (serial_s /. jobs_s)))

let pop_averaging g =
  let name = Graph.name g in
  Common.subsection (Printf.sprintf "parallel POP averaging (%s)" name)
  ;
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let ev =
    Evaluate.make_pop pathset ~parts:Common.default_pop_parts ~instances:8
      ~rng:(Rng.create 5) ()
  in
  let demand =
    Demand.gravity (Pathset.space pathset) ~rng:(Rng.create 6)
      ~total:(0.5 *. Graph.total_capacity g)
  in
  (* pool alive for both arms, as in probe_scoring: the A/B is the
     dispatch policy, not the (one-off) cost of having worker domains *)
  Repro_engine.Pool.with_pool ~domains:jobs (fun pool ->
      let (serial, serial_s), (parallel, jobs_s) =
        match
          race ~n:7 ~reps:15
            [
              (fun () -> Evaluate.heuristic_value ev demand);
              (fun () ->
                Evaluate.heuristic_value
                  (Evaluate.with_pool ev (Some pool))
                  demand);
            ]
        with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      let identical = serial = parallel in
      Common.row "  8 instances: serial %.3fs, jobs=%d %.3fs, identical: %b"
        serial_s jobs jobs_s identical;
      Common.add_scenario
        (Printf.sprintf
           "    {\"name\": \"parallel-map/pop-averaging/%s\", \"serial_s\": \
            %.3f, \"jobs_s\": %.3f, \"jobs\": %d, \"identical\": %b, \
            \"speedup\": %.2f}"
           name serial_s jobs_s jobs identical (serial_s /. jobs_s)))

(* ---- portfolio time-to-target scenarios ---------------------------- *)

let portfolio_options ~target ~jobs =
  {
    Adversary.default_options with
    probe_budget = Common.probe_budget;
    jobs;
    search =
      Adversary.Portfolio
        {
          Adversary.blackbox_seeds = [ 1 ];
          blackbox_time = (if Common.full_mode then 30. else 5.);
          sweep_probes = 0;
          target_gap = target;
        };
    bb =
      {
        Branch_bound.default_options with
        time_limit = Common.whitebox_time;
        stall_time = Common.whitebox_time /. 3.;
      };
  }

let portfolio_race g =
  let name = Graph.name g in
  Common.subsection (Printf.sprintf "portfolio time-to-target (%s)" name);
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let ev = Evaluate.make_dp pathset ~threshold:(Common.threshold_of g ~fraction:0.05) in
  (* serial baseline: every strategy runs its full budget, one after the
     other (jobs = 1, no target) *)
  let serial, serial_s =
    time (fun () ->
        Adversary.find ev ~options:(portfolio_options ~target:None ~jobs:1) ())
  in
  (* parallel race to the serial baseline's gap *)
  let parallel, parallel_s =
    time (fun () ->
        Adversary.find ev
          ~options:
            (portfolio_options ~target:(Some serial.Adversary.gap) ~jobs)
          ())
  in
  let gap_ok = parallel.Adversary.gap >= serial.Adversary.gap -. 1e-6 in
  let speedup = serial_s /. parallel_s in
  Common.row
    "  serial: gap %.1f in %.1fs | jobs=%d to target: gap %.1f in %.1fs | \
     speedup %.1fx, gap >= serial: %b"
    serial.Adversary.gap serial_s jobs parallel.Adversary.gap parallel_s
    speedup gap_ok;
  Common.add_scenario
    (Printf.sprintf
       "    {\"name\": \"portfolio-time-to-target/%s\", \"serial_s\": %.3f, \
        \"portfolio_s\": %.3f, \"jobs\": %d, \"gap_serial\": %.3f, \
        \"gap_portfolio\": %.3f, \"gap_ok\": %b, \"speedup\": %.2f}"
       name serial_s parallel_s jobs serial.Adversary.gap
       parallel.Adversary.gap gap_ok speedup)

let run () =
  Common.section "engine: parallel search engine (BENCH_engine.json)";
  Common.note_jobs jobs;
  List.iter probe_scoring [ Topologies.b4 (); Topologies.swan () ];
  pop_averaging (Topologies.b4 ());
  List.iter portfolio_race
    [ Topologies.b4 (); Topologies.abilene (); Topologies.swan () ]
