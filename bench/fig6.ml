(* Figure 6: metaoptimization problem sizes and solver latency on B4.

   The metaopt formulations (DP+OPT, POP+OPT) have more variables and
   constraints than the plain OPT or heuristic problems, but the latency
   blow-up is disproportionate: it is driven by the multiplicative
   (SOS1 / complementarity) constraints from the KKT rewrite, not by raw
   size. We also report the "naive" ablation in which OPT is KKT-rewritten
   too instead of merged with the outer maximization (DESIGN.md §5). *)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let run () =
  Common.section "Figure 6: problem sizes and solver latency (B4)";
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let threshold = Common.threshold_of g ~fraction:0.05 in
  let pop_instances = if Common.full_mode then 5 else 2 in
  let specs =
    [
      ("DP", Gap_problem.Dp { threshold });
      ( Printf.sprintf "POP(%d inst)" pop_instances,
        let rng = Rng.create 99 in
        Gap_problem.Pop
          {
            parts = Common.default_pop_parts;
            partitions =
              List.init pop_instances (fun _ ->
                  Pop.random_partition ~rng
                    ~num_pairs:(Pathset.num_pairs pathset)
                    ~parts:Common.default_pop_parts);
            reduce = `Average;
          } )
    ]
  in
  Common.row "%-28s %8s %8s %8s %12s" "problem" "#vars" "#linear" "#SOS1"
    "latency (s)";
  List.iter
    (fun (name, heuristic) ->
      (* plain formulations *)
      List.iter
        (fun (bname, (v, c, s)) ->
          (* latency of the plain problems: one direct solve *)
          let latency =
            match bname with
            | "opt" ->
                let d =
                  Demand.constant (Pathset.space pathset)
                    (0.5 *. Graph.max_capacity g)
                in
                snd (time (fun () -> Opt_max_flow.solve pathset d))
            | "heuristic" ->
                let d =
                  Demand.constant (Pathset.space pathset)
                    (0.5 *. Graph.max_capacity g)
                in
                (match heuristic with
                | Gap_problem.Dp { threshold } ->
                    snd (time (fun () -> Demand_pinning.solve pathset ~threshold d))
                | Gap_problem.Pop { parts; partitions; _ } ->
                    snd
                      (time (fun () ->
                           Pop.solve pathset ~parts (List.hd partitions) d)))
            | _ -> Float.nan
          in
          if bname <> "naive-metaopt" then
            Common.row "%-28s %8d %8d %8d %12.3f"
              (Printf.sprintf "%s: %s" name bname)
              v c s latency)
        (Gap_problem.baseline_sizes pathset ~heuristic);
      (* the metaopt problem: size + root LP latency (per backend) + short
         search *)
      let gp, build_t =
        time (fun () -> Gap_problem.build pathset ~heuristic ())
      in
      let v, c, s = Gap_problem.size gp in
      List.iter
        (fun backend ->
          let r, root_t =
            time (fun () -> Solver.solve_lp ~backend gp.Gap_problem.model)
          in
          Common.row "%-28s %8d %8d %8d %12.3f  (%s: %s)"
            (Printf.sprintf "%s: metaopt (root LP)" name)
            v c s (build_t +. root_t)
            (Backend.kind_to_string backend)
            (Fmt.str "%a" Simplex.pp_stats r.Solver.stats))
        [ Backend.Dense; Backend.Sparse ];
      (* naive ablation size *)
      let naive =
        List.assoc "naive-metaopt" (Gap_problem.baseline_sizes pathset ~heuristic)
      in
      let nv, nc, ns = naive in
      Common.row "%-28s %8d %8d %8d %12s"
        (Printf.sprintf "%s: naive (OPT also KKT)" name)
        nv nc ns "-")
    specs;
  Common.row "";
  Common.row
    "paper check: metaopt is a constant factor larger, but latency grows\n\
     disproportionately with the #SOS1 complementarity constraints";
  (* latency vs #SOS demonstration: DP metaopt short branch-and-bound *)
  let gp =
    Gap_problem.build pathset ~heuristic:(Gap_problem.Dp { threshold }) ()
  in
  let r, t =
    time (fun () ->
        Branch_bound.solve
          ~options:
            {
              Branch_bound.default_options with
              time_limit = (if Common.full_mode then 60. else 8.);
              stall_time = 4.;
            }
          gp.Gap_problem.model)
  in
  Common.row
    "DP metaopt branch-and-bound: %d nodes, %d pivots in %.1fs (outcome: %s)"
    r.Branch_bound.nodes r.Branch_bound.simplex_iterations t
    (Fmt.str "%a" Branch_bound.pp_result r);
  Common.row "  lp engine (%s backend): %s"
    (Backend.kind_to_string (Backend.default ()))
    (Fmt.str "%a" Simplex.pp_stats r.Branch_bound.lp_stats);

  (* DP threshold sweep (gap vs pinning threshold), routed through the
     batched sweep engine: one shared LP skeleton, factorized-basis RHS
     re-solves, versus the former rebuild-per-point loop. *)
  Common.subsection "DP threshold sweep via lib/sweep";
  let module Sweep = Repro_sweep.Scenario_sweep in
  let module Sweep_plan = Repro_sweep.Plan in
  let fracs =
    if Common.full_mode then
      [ 0.005; 0.01; 0.02; 0.03; 0.05; 0.07; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5 ]
    else [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 ]
  in
  let num_seeds = if Common.full_mode then 10 else 5 in
  let plan =
    Sweep_plan.grid
      ~space:(Pathset.space pathset)
      ~generator:
        (Sweep_plan.Gravity { total = 0.5 *. Graph.total_capacity g })
      ~thresholds:
        (Array.of_list
           (List.map (fun f -> Common.threshold_of g ~fraction:f) fracs))
      ~scales:[| 1. |]
      ~seeds:(Array.init num_seeds (fun i -> i + 1))
      ()
  in
  let sweep mode =
    Sweep.run
      ~options:
        {
          Sweep.jobs = 1;
          chunk = Sweep.default_options.Sweep.chunk;
          backend = None;
          mode;
          deadline = None;
          cache = None;
          jsonl = None;
          batch_rhs = false;
          basis_store = None;
        }
      ~paths:Common.default_paths pathset plan
  in
  let shared = sweep Sweep.Shared_basis in
  let rebuild = sweep Sweep.Rebuild in
  Common.row "%-12s %12s %12s %8s" "threshold" "mean gap" "mean gap/cap"
    "infeas";
  List.iteri
    (fun ti frac ->
      let sum = ref 0. and cnt = ref 0 and infeas = ref 0 in
      Array.iter
        (function
          | Some sr
            when Float.abs
                   (sr.Sweep.scenario.Sweep_plan.threshold
                   -. Common.threshold_of g ~fraction:frac)
                 < 1e-9 -> (
              match Sweep.gap sr with
              | Some gv ->
                  sum := !sum +. gv;
                  incr cnt
              | None -> incr infeas)
          | _ -> ())
        shared.Sweep.results;
      ignore ti;
      let mean = if !cnt > 0 then !sum /. float_of_int !cnt else 0. in
      Common.row "%-12.3g %12.1f %12.4f %8d"
        (Common.threshold_of g ~fraction:frac)
        mean (Common.norm g mean) !infeas)
    fracs;
  let speedup =
    if shared.Sweep.wall_s > 0. then rebuild.Sweep.wall_s /. shared.Sweep.wall_s
    else 0.
  in
  Common.row
    "sweep engine: %d scenarios in %.2fs shared-basis vs %.2fs rebuild \
     (%.1fx; %s)"
    (Sweep_plan.num_scenarios plan)
    shared.Sweep.wall_s rebuild.Sweep.wall_s speedup
    (Fmt.str "%a" Simplex.pp_stats shared.Sweep.lp_stats)
