(* Figure 6: metaoptimization problem sizes and solver latency on B4.

   The metaopt formulations (DP+OPT, POP+OPT) have more variables and
   constraints than the plain OPT or heuristic problems, but the latency
   blow-up is disproportionate: it is driven by the multiplicative
   (SOS1 / complementarity) constraints from the KKT rewrite, not by raw
   size. We also report the "naive" ablation in which OPT is KKT-rewritten
   too instead of merged with the outer maximization (DESIGN.md §5). *)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let run () =
  Common.section "Figure 6: problem sizes and solver latency (B4)";
  let g = Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let threshold = Common.threshold_of g ~fraction:0.05 in
  let pop_instances = if Common.full_mode then 5 else 2 in
  let specs =
    [
      ("DP", Gap_problem.Dp { threshold });
      ( Printf.sprintf "POP(%d inst)" pop_instances,
        let rng = Rng.create 99 in
        Gap_problem.Pop
          {
            parts = Common.default_pop_parts;
            partitions =
              List.init pop_instances (fun _ ->
                  Pop.random_partition ~rng
                    ~num_pairs:(Pathset.num_pairs pathset)
                    ~parts:Common.default_pop_parts);
            reduce = `Average;
          } )
    ]
  in
  Common.row "%-28s %8s %8s %8s %12s" "problem" "#vars" "#linear" "#SOS1"
    "latency (s)";
  List.iter
    (fun (name, heuristic) ->
      (* plain formulations *)
      List.iter
        (fun (bname, (v, c, s)) ->
          (* latency of the plain problems: one direct solve *)
          let latency =
            match bname with
            | "opt" ->
                let d =
                  Demand.constant (Pathset.space pathset)
                    (0.5 *. Graph.max_capacity g)
                in
                snd (time (fun () -> Opt_max_flow.solve pathset d))
            | "heuristic" ->
                let d =
                  Demand.constant (Pathset.space pathset)
                    (0.5 *. Graph.max_capacity g)
                in
                (match heuristic with
                | Gap_problem.Dp { threshold } ->
                    snd (time (fun () -> Demand_pinning.solve pathset ~threshold d))
                | Gap_problem.Pop { parts; partitions; _ } ->
                    snd
                      (time (fun () ->
                           Pop.solve pathset ~parts (List.hd partitions) d)))
            | _ -> Float.nan
          in
          if bname <> "naive-metaopt" then
            Common.row "%-28s %8d %8d %8d %12.3f"
              (Printf.sprintf "%s: %s" name bname)
              v c s latency)
        (Gap_problem.baseline_sizes pathset ~heuristic);
      (* the metaopt problem: size + root LP latency (per backend) + short
         search *)
      let gp, build_t =
        time (fun () -> Gap_problem.build pathset ~heuristic ())
      in
      let v, c, s = Gap_problem.size gp in
      List.iter
        (fun backend ->
          let r, root_t =
            time (fun () -> Solver.solve_lp ~backend gp.Gap_problem.model)
          in
          Common.row "%-28s %8d %8d %8d %12.3f  (%s: %s)"
            (Printf.sprintf "%s: metaopt (root LP)" name)
            v c s (build_t +. root_t)
            (Backend.kind_to_string backend)
            (Fmt.str "%a" Simplex.pp_stats r.Solver.stats))
        [ Backend.Dense; Backend.Sparse ];
      (* naive ablation size *)
      let naive =
        List.assoc "naive-metaopt" (Gap_problem.baseline_sizes pathset ~heuristic)
      in
      let nv, nc, ns = naive in
      Common.row "%-28s %8d %8d %8d %12s"
        (Printf.sprintf "%s: naive (OPT also KKT)" name)
        nv nc ns "-")
    specs;
  Common.row "";
  Common.row
    "paper check: metaopt is a constant factor larger, but latency grows\n\
     disproportionately with the #SOS1 complementarity constraints";
  (* latency vs #SOS demonstration: DP metaopt short branch-and-bound *)
  let gp =
    Gap_problem.build pathset ~heuristic:(Gap_problem.Dp { threshold }) ()
  in
  let r, t =
    time (fun () ->
        Branch_bound.solve
          ~options:
            {
              Branch_bound.default_options with
              time_limit = (if Common.full_mode then 60. else 8.);
              stall_time = 4.;
            }
          gp.Gap_problem.model)
  in
  Common.row
    "DP metaopt branch-and-bound: %d nodes, %d pivots in %.1fs (outcome: %s)"
    r.Branch_bound.nodes r.Branch_bound.simplex_iterations t
    (Fmt.str "%a" Branch_bound.pp_result r);
  Common.row "  lp engine (%s backend): %s"
    (Backend.kind_to_string (Backend.default ()))
    (Fmt.str "%a" Simplex.pp_stats r.Branch_bound.lp_stats)
