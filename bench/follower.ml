(* follower: the declarative follower-IR layer (lib/follower).

   Two sections, emitting BENCH_follower.json:

   - binpack: the first non-TE family end-to-end — the seeded find-gap
     must close the classic FFD worst case (gap >= 1 bin, verified by
     the exact oracle) within the node budget;
   - rewriter: the automatic Kkt_rewrite vs the hand-derived emitter on
     the DP gap problem — identical model sizes by construction, with
     the build-time overhead of the IR detour measured.

   REPRO_BENCH_FOLLOWER_TINY=1 shrinks budgets for CI smoke runs. *)

module F = Repro_follower
module Json = Repro_serve.Json

let tiny_mode =
  match Sys.getenv_opt "REPRO_BENCH_FOLLOWER_TINY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let fail fmt = Printf.ksprintf failwith fmt

let binpack_section () =
  Common.subsection "binpack: adversarial FFD-vs-OPT gap";
  let cfg = F.Binpack.config () in
  let options =
    if tiny_mode then
      { F.Binpack.default_options with node_limit = 200; time_limit = 5. }
    else if Common.full_mode then
      { F.Binpack.default_options with node_limit = 4000; time_limit = 60. }
    else F.Binpack.default_options
  in
  let r = F.Binpack.find_gap ~options cfg in
  Common.row "  instance      : %d items, %d dims, capacity %g"
    cfg.F.Binpack.items cfg.F.Binpack.dims cfg.F.Binpack.capacity;
  Common.row "  gap           : %d bins (FFD %d vs OPT %d), probe %s"
    r.F.Binpack.gap r.F.Binpack.ffd_bins r.F.Binpack.opt_bins
    r.F.Binpack.probe;
  Common.row "  bound         : %s"
    (if Float.is_finite r.F.Binpack.bound then
       Printf.sprintf "%.2f" r.F.Binpack.bound
     else "(probe-only)");
  Common.row "  search        : %d oracle calls, %d MILP nodes, %.2fs"
    r.F.Binpack.oracle_calls r.F.Binpack.milp_nodes r.F.Binpack.elapsed;
  if r.F.Binpack.gap < 1 then
    fail "follower bench: binpack gap %d < 1 (FFD worst case not found)"
      r.F.Binpack.gap;
  if not r.F.Binpack.oracle_closed then
    fail "follower bench: an oracle OPT solve was not proven optimal";
  ( "binpack",
    Json.Obj
      [
        ("items", Json.Num (float_of_int cfg.F.Binpack.items));
        ("dims", Json.Num (float_of_int cfg.F.Binpack.dims));
        ("gap", Json.Num (float_of_int r.F.Binpack.gap));
        ("ffd_bins", Json.Num (float_of_int r.F.Binpack.ffd_bins));
        ("opt_bins", Json.Num (float_of_int r.F.Binpack.opt_bins));
        ("bound", Json.Num r.F.Binpack.bound);
        ("probe", Json.Str r.F.Binpack.probe);
        ("oracle_calls", Json.Num (float_of_int r.F.Binpack.oracle_calls));
        ("oracle_closed", Json.Bool r.F.Binpack.oracle_closed);
        ("milp_nodes", Json.Num (float_of_int r.F.Binpack.milp_nodes));
        ("wall_s", Json.Num r.F.Binpack.elapsed) ] )

let rewriter_section () =
  Common.subsection "rewriter: automatic Kkt_rewrite vs hand emitter (DP)";
  let g = if tiny_mode then Topologies.fig1 () else Topologies.b4 () in
  let pathset = Common.pathset_of g ~paths:Common.default_paths in
  let threshold = Common.threshold_of g ~fraction:0.05 in
  let heuristic = Gap_problem.Dp { threshold } in
  let build engine =
    let t = Unix.gettimeofday () in
    let gp = Gap_problem.build pathset ~heuristic ~engine () in
    (gp, Unix.gettimeofday () -. t)
  in
  let hand, hand_s = build Follower_bridge.Hand in
  let ir, ir_s = build Follower_bridge.Ir in
  let hv, hc, hs = Gap_problem.size hand in
  let iv, ic, is_ = Gap_problem.size ir in
  Common.row "  topology      : %s" (Graph.name g);
  Common.row "  hand emitter  : %d vars, %d rows, %d SOS1  (%.1f ms)" hv hc hs
    (1000. *. hand_s);
  Common.row "  IR rewriter   : %d vars, %d rows, %d SOS1  (%.1f ms)" iv ic is_
    (1000. *. ir_s);
  if (hv, hc, hs) <> (iv, ic, is_) then
    fail "follower bench: IR rewrite emitted a different model (%d,%d,%d vs %d,%d,%d)"
      hv hc hs iv ic is_;
  (* the IR detour must not blow up model construction: the hand and IR
     paths build the same rows, so parity within a generous factor *)
  let overhead = if hand_s > 0. then ir_s /. hand_s else 1. in
  Common.row "  build overhead: %.2fx" overhead;
  ( "rewriter",
    Json.Obj
      [
        ("topology", Json.Str (Graph.name g));
        ("vars", Json.Num (float_of_int hv));
        ("rows", Json.Num (float_of_int hc));
        ("sos1", Json.Num (float_of_int hs));
        ("sizes_identical", Json.Bool ((hv, hc, hs) = (iv, ic, is_)));
        ("hand_build_s", Json.Num hand_s);
        ("ir_build_s", Json.Num ir_s);
        ("build_overhead", Json.Num overhead) ] )

let run () =
  Common.section "follower: IR, KKT rewriter and the binpack family";
  let binpack = binpack_section () in
  let rewriter = rewriter_section () in
  let sections = [ binpack; rewriter ] in
  let doc =
    Json.Obj
      (("benchmark", Json.Str "repro-follower")
      :: ( "mode",
           Json.Str
             (if tiny_mode then "tiny"
              else if Common.full_mode then "full"
              else "fast") )
      (* every phase here is serial; jobs:1 is the truth, not a default *)
      :: (Common.host_json_fields ~jobs:1 @ sections))
  in
  let oc = open_out "BENCH_follower.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Common.row "machine-readable results written to BENCH_follower.json"
