(* Cluster tests for the fault-tolerant serving layer: the membership
   failure detector, the consistent-hash router over live in-process
   daemon shards (routing consistency, byte-identity with a single-shard
   deployment, kill-one-shard failover with zero client-visible
   failures), journal replication warming a fresh replacement from a
   peer, and failover under an injected connection reset. *)

module S = Repro_serve
module Json = S.Json
module Faults = Repro_resilience.Faults

let temp_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "repro-cluster-test-%d-%s" (Unix.getpid ()) suffix)

let tcp_addr port = S.Protocol.Tcp { host = "127.0.0.1"; port }

let await ?(tries = 200) ?(delay = 0.025) msg pred =
  let rec go n =
    if pred () then ()
    else if n <= 0 then Alcotest.failf "timed out waiting for %s" msg
    else begin
      Thread.delay delay;
      go (n - 1)
    end
  in
  go tries

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

let fake_addrs n =
  List.init n (fun i -> S.Protocol.Unix_sock (Printf.sprintf "/fake-%d" i))

let test_membership_detector () =
  let healthy = [| true; true; true |] in
  let index_of = function
    | S.Protocol.Unix_sock p ->
        int_of_string (String.sub p 6 (String.length p - 6))
    | _ -> Alcotest.fail "unexpected addr"
  in
  let m =
    S.Membership.create ~miss_limit:2 ~interval:0.02
      ~ping:(fun addr -> healthy.(index_of addr))
      (fake_addrs 3)
  in
  S.Membership.start m;
  Fun.protect
    ~finally:(fun () -> S.Membership.stop m)
    (fun () ->
      await "first probe round" (fun () ->
          (S.Membership.stats m).S.Membership.pings >= 3);
      Alcotest.(check int) "all alive" 3 (S.Membership.live_count m);
      healthy.(1) <- false;
      await "death after miss_limit probes" (fun () ->
          not (S.Membership.alive m 1));
      Alcotest.(check bool) "others unaffected" true
        (S.Membership.alive m 0 && S.Membership.alive m 2);
      healthy.(1) <- true;
      await "recovery on first good probe" (fun () -> S.Membership.alive m 1);
      let st = S.Membership.stats m in
      Alcotest.(check bool) "transitions counted" true
        (st.S.Membership.deaths >= 1
        && st.S.Membership.recoveries >= 1
        && st.S.Membership.dead_now = 0))

(* Request-path evidence alone (no detector thread) drives the same
   state machine. *)
let test_membership_request_evidence () =
  let m = S.Membership.create ~miss_limit:2 (fake_addrs 2) in
  Alcotest.(check bool) "starts alive" true (S.Membership.alive m 0);
  S.Membership.report_failure m 0;
  Alcotest.(check bool) "one miss is not death" true (S.Membership.alive m 0);
  S.Membership.report_failure m 0;
  Alcotest.(check bool) "second miss is" false (S.Membership.alive m 0);
  Alcotest.(check int) "live count" 1 (S.Membership.live_count m);
  S.Membership.report_success m 0;
  Alcotest.(check bool) "success revives" true (S.Membership.alive m 0)

(* ------------------------------------------------------------------ *)
(* In-process shards                                                   *)
(* ------------------------------------------------------------------ *)

type shard = { handle : S.Daemon.handle; port : int; socket : string }

let start_shard ?(peers = []) ?cache_dir suffix =
  let socket = temp_path suffix in
  let config =
    {
      (S.Daemon.default_config ~socket_path:socket) with
      S.Daemon.tcp_port = Some 0;
      peers;
      cache_dir;
      replica_interval = 0.05;
    }
  in
  match S.Daemon.start config with
  | Error e -> Alcotest.failf "start %s: %s" suffix e
  | Ok handle ->
      let port =
        match S.Daemon.tcp_port handle with
        | Some p -> p
        | None -> Alcotest.failf "%s: no tcp port" suffix
      in
      { handle; port; socket }

let stop_shard s =
  S.Daemon.stop s.handle;
  S.Daemon.wait s.handle

let b4_dp_instance =
  {
    S.Protocol.topology = "b4";
    paths = 2;
    heuristic = S.Protocol.Dp { threshold_frac = 0.05 };
  }

let eval_req seed =
  S.Protocol.Evaluate
    {
      instance = b4_dp_instance;
      demand = S.Protocol.Gen { gen = `Gravity; seed };
      deadline = None;
    }

let with_conn port f =
  match S.Client.connect_addr_typed (tcp_addr port) with
  | Error e -> Alcotest.failf "connect :%d: %s" port (S.Client.error_to_string e)
  | Ok c ->
      S.Client.set_timeouts c 30.0;
      Fun.protect ~finally:(fun () -> S.Client.close c) (fun () -> f c)

let direct_call port req =
  with_conn port (fun c ->
      match S.Client.call_typed c req with
      | Ok r -> r
      | Error e -> Alcotest.failf "direct call: %s" (S.Client.error_to_string e))

let shard_stat shard path =
  let stats = direct_call shard.port S.Protocol.Stats in
  let rec walk j = function
    | [] -> Json.int j
    | k :: rest -> (
        match Json.member k j with None -> None | Some j -> walk j rest)
  in
  walk stats path

let executed shard =
  Option.value ~default:(-1) (shard_stat shard [ "scheduler"; "executed" ])

let expect_cached name want r =
  match Option.bind (Json.member "ok" r) Json.bool with
  | Some true ->
      Alcotest.(check (option bool))
        name (Some want)
        (Option.bind (Json.member "cached" r) Json.bool)
  | _ -> Alcotest.failf "%s: not ok: %s" name (Json.to_string r)

let strip_serving_fields = function
  | Json.Obj l ->
      Json.Obj
        (List.filter (fun (k, _) -> k <> "cached" && k <> "coalesced") l)
  | j -> j

(* ------------------------------------------------------------------ *)
(* Router over live shards                                             *)
(* ------------------------------------------------------------------ *)

(* Every distinct request is computed exactly once across the cluster:
   the session's second pass hits the owning shard's cache, so
   consistent hashing is actually consistent. *)
let test_router_routes_consistently () =
  let shards = List.map start_shard [ "rc0.sock"; "rc1.sock"; "rc2.sock" ] in
  Fun.protect
    ~finally:(fun () -> List.iter stop_shard shards)
    (fun () ->
      let router =
        S.Router.create ~heartbeat_interval:0.1
          (List.map (fun s -> tcp_addr s.port) shards)
      in
      S.Router.start router;
      Fun.protect
        ~finally:(fun () -> S.Router.shutdown router)
        (fun () ->
          let sess = S.Router.session router in
          Fun.protect
            ~finally:(fun () -> S.Router.close_session sess)
            (fun () ->
              let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
              List.iter
                (fun seed ->
                  match S.Router.call sess (eval_req seed) with
                  | Ok r ->
                      expect_cached
                        (Printf.sprintf "seed %d computed" seed)
                        false r
                  | Error e ->
                      Alcotest.failf "seed %d: %s" seed
                        (S.Client.error_to_string e))
                seeds;
              List.iter
                (fun seed ->
                  match S.Router.call sess (eval_req seed) with
                  | Ok r ->
                      expect_cached
                        (Printf.sprintf "seed %d cached on re-route" seed)
                        true r
                  | Error e ->
                      Alcotest.failf "seed %d retry: %s" seed
                        (S.Client.error_to_string e))
                seeds;
              let total =
                List.fold_left (fun acc s -> acc + executed s) 0 shards
              in
              Alcotest.(check int)
                "each request solved exactly once cluster-wide"
                (List.length seeds) total;
              let st = S.Router.stats router in
              Alcotest.(check int) "no exhausted calls" 0 st.S.Router.failed)))

(* The acceptance property: a solve served through the router is
   byte-identical to the same solve on a single-shard deployment. *)
let test_router_byte_identity () =
  let single = start_shard "bi-single.sock" in
  let shards =
    List.map start_shard [ "bi0.sock"; "bi1.sock"; "bi2.sock"; "bi3.sock" ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter stop_shard (single :: shards))
    (fun () ->
      let router =
        S.Router.create (List.map (fun s -> tcp_addr s.port) shards)
      in
      let sess = S.Router.session router in
      Fun.protect
        ~finally:(fun () -> S.Router.close_session sess)
        (fun () ->
          let req = eval_req 42 in
          let payload = Json.to_string (S.Protocol.request_to_json req) in
          (* semantic identity: 1 shard vs routed across 4 *)
          let direct = direct_call single.port req in
          let routed =
            match S.Router.call sess req with
            | Ok r -> r
            | Error e -> Alcotest.failf "routed: %s" (S.Client.error_to_string e)
          in
          Alcotest.(check bool)
            "single-shard and routed replies identical" true
            (strip_serving_fields direct = strip_serving_fields routed);
          (* raw byte identity: the router relays the owner's cached
             reply verbatim *)
          let routed_raw =
            match S.Router.call_raw sess ~payload req with
            | Ok raw -> raw
            | Error e ->
                Alcotest.failf "routed raw: %s" (S.Client.error_to_string e)
          in
          let owner =
            match List.filter (fun s -> executed s = 1) shards with
            | [ s ] -> s
            | l -> Alcotest.failf "expected one owner, found %d" (List.length l)
          in
          let owner_raw =
            with_conn owner.port (fun c ->
                match S.Client.request_raw c payload with
                | Ok raw -> raw
                | Error e ->
                    Alcotest.failf "owner raw: %s" (S.Client.error_to_string e))
          in
          Alcotest.(check bool)
            "router-relayed bytes equal the owner's bytes" true
            (String.equal routed_raw owner_raw)))

(* kill -9 one shard mid-workload: every client request keeps
   succeeding (failover recomputes what the victim's cache held), and
   the detector marks the victim dead. *)
let test_kill_one_shard_failover () =
  let shards = List.map start_shard [ "ko0.sock"; "ko1.sock"; "ko2.sock" ] in
  let victim = List.nth shards 1 in
  let killed = ref false in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun s -> if not (!killed && s == victim) then stop_shard s)
        shards)
    (fun () ->
      let router =
        S.Router.create ~heartbeat_interval:0.05 ~miss_limit:2
          (List.map (fun s -> tcp_addr s.port) shards)
      in
      S.Router.start router;
      Fun.protect
        ~finally:(fun () -> S.Router.shutdown router)
        (fun () ->
          let sess = S.Router.session router in
          Fun.protect
            ~finally:(fun () -> S.Router.close_session sess)
            (fun () ->
              let call_must_succeed seed =
                match S.Router.call sess (eval_req seed) with
                | Ok r -> (
                    match Option.bind (Json.member "ok" r) Json.bool with
                    | Some true -> ()
                    | _ ->
                        Alcotest.failf "seed %d: app error: %s" seed
                          (Json.to_string r))
                | Error e ->
                    Alcotest.failf "seed %d failed: %s" seed
                      (S.Client.error_to_string e)
              in
              (* warm phase across all shards *)
              List.iter call_must_succeed [ 1; 2; 3; 4; 5; 6 ];
              S.Daemon.kill victim.handle;
              killed := true;
              (* repeats (some owned by the victim) and fresh keys: all
                 must survive the failover *)
              List.iter call_must_succeed
                [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
              let st = S.Router.stats router in
              Alcotest.(check int)
                "zero client-visible failures" 0 st.S.Router.failed;
              await "victim marked dead" (fun () ->
                  (S.Membership.stats (S.Router.membership router))
                    .S.Membership.dead_now = 1))))

(* ------------------------------------------------------------------ *)
(* Journal replication                                                 *)
(* ------------------------------------------------------------------ *)

let with_cache_dir suffix f =
  let dir = temp_path suffix in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* A fresh shard that peers with a warm one must serve the peer's
   cached solves without executing anything itself: warmth arrives over
   the replicated journal, not by recomputation. *)
let test_replica_warms_from_peer () =
  with_cache_dir "rep-a" (fun dir_a ->
      with_cache_dir "rep-b" (fun dir_b ->
          let a = start_shard ~cache_dir:dir_a "rep-a.sock" in
          Fun.protect
            ~finally:(fun () -> stop_shard a)
            (fun () ->
              expect_cached "seed 21 computed on a" false
                (direct_call a.port (eval_req 21));
              expect_cached "seed 22 computed on a" false
                (direct_call a.port (eval_req 22));
              let b =
                start_shard ~cache_dir:dir_b
                  ~peers:[ tcp_addr a.port ] "rep-b.sock"
              in
              Fun.protect
                ~finally:(fun () -> stop_shard b)
                (fun () ->
                  await "journal replicated" (fun () ->
                      Option.value ~default:0
                        (shard_stat b [ "replication"; "records" ])
                      >= 2);
                  (* warm hit-rate asserted before b's first solve *)
                  Alcotest.(check int) "b has executed nothing" 0 (executed b);
                  expect_cached "peer's solve already warm on b" true
                    (direct_call b.port (eval_req 21));
                  Alcotest.(check int)
                    "warm answer cost no solve" 0 (executed b)))))

(* ------------------------------------------------------------------ *)
(* Injected connection reset                                           *)
(* ------------------------------------------------------------------ *)

(* The first CRC frame written in the process (the session's request to
   its first shard) is torn and reset; the router must fail over and
   still answer. Heartbeats stay off so the fault schedule is ours. *)
let test_conn_reset_failover () =
  let shards = List.map start_shard [ "cr0.sock"; "cr1.sock" ] in
  Fun.protect
    ~finally:(fun () -> List.iter stop_shard shards)
    (fun () ->
      let router =
        S.Router.create (List.map (fun s -> tcp_addr s.port) shards)
      in
      let sess = S.Router.session router in
      Fun.protect
        ~finally:(fun () -> S.Router.close_session sess)
        (fun () ->
          Faults.arm ~seed:5
            ~points:[ ("conn_reset", { Faults.prob = 1.; limit = Some 1 }) ];
          Fun.protect ~finally:Faults.disarm (fun () ->
              (match S.Router.call sess (eval_req 31) with
              | Ok r -> expect_cached "answered despite reset" false r
              | Error e ->
                  Alcotest.failf "call failed: %s" (S.Client.error_to_string e));
              Alcotest.(check bool)
                "reset actually fired" true
                (Faults.fired "conn_reset" = 1);
              let st = S.Router.stats router in
              Alcotest.(check bool)
                "failover happened" true (st.S.Router.failovers >= 1))))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repro_cluster"
    [
      ( "membership",
        [
          Alcotest.test_case "detector transitions" `Quick
            test_membership_detector;
          Alcotest.test_case "request-path evidence" `Quick
            test_membership_request_evidence;
        ] );
      ( "router",
        [
          Alcotest.test_case "consistent routing, one solve per key" `Quick
            test_router_routes_consistently;
          Alcotest.test_case "byte-identical to single shard" `Quick
            test_router_byte_identity;
          Alcotest.test_case "kill one shard, zero failures" `Quick
            test_kill_one_shard_failover;
        ] );
      ( "replication",
        [
          Alcotest.test_case "fresh shard warms from peer" `Quick
            test_replica_warms_from_peer;
        ] );
      ( "faults",
        [
          Alcotest.test_case "conn_reset fails over" `Quick
            test_conn_reset_failover;
        ] );
    ]
