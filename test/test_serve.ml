(* Tests for the serving layer (Repro_serve): JSON wire format,
   canonical fingerprints (permutation stability), the sharded LRU
   solve cache (eviction order, byte accounting, domain safety), the
   request scheduler (in-flight dedup, backpressure), the on-disk
   journal (crash tolerance), and an end-to-end daemon round trip over
   a real Unix socket. *)

open Repro_topology
open Repro_te
open Repro_metaopt
module S = Repro_serve
module Json = S.Json
module Fp = S.Fingerprint
module Cache = S.Solve_cache
module Sched = S.Scheduler

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Num 42.);
      ("float", Json.Num 0.1);
      ("tiny", Json.Num 1e-300);
      ("neg", Json.Num (-17.25));
      ("text", Json.Str "line\n\"quoted\"\tand \\ control \001");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List [ Json.Num 1.; Json.Obj [ ("k", Json.Str "v") ]; Json.Null ]
      );
    ]

let test_json_roundtrip () =
  List.iter
    (fun v ->
      (match Json.of_string (Json.to_string v) with
      | Ok v' -> Alcotest.(check bool) "compact roundtrip" true (v = v')
      | Error e -> Alcotest.failf "compact: %s" e);
      match Json.of_string (Json.to_string_pretty v) with
      | Ok v' -> Alcotest.(check bool) "pretty roundtrip" true (v = v')
      | Error e -> Alcotest.failf "pretty: %s" e)
    [ sample_json; Json.Null; Json.Num 1.5e18; Json.List [ Json.Num 0.2 ] ]

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "\"unterminated"; "nul"; "1.2.3" ]

let test_json_float_exact () =
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Num f)) with
      | Ok (Json.Num f') ->
          Alcotest.(check bool)
            (Printf.sprintf "float %h bit-exact" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | _ -> Alcotest.fail "not a number")
    [ 0.1; 1. /. 3.; 1e-300; 12658.124079768324; -0.0; 4. ]

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let shuffle rng a =
  let a = Array.copy a in
  Rng.shuffle rng a;
  a

(* The same non-zero (src, dst, volume) set laid out over a permuted
   pair space must hash identically. *)
let test_fingerprint_demand_permutation () =
  let g = Topologies.b4 () in
  let space = Demand.full_space g in
  let rng = Rng.create 7 in
  let d = Demand.uniform space ~rng ~max:100. in
  (* zero out some entries so "zeros dropped" is exercised *)
  Array.iteri (fun k _ -> if k mod 3 = 0 then d.(k) <- 0.) d;
  let base = Fp.finish (Fp.feed_demand Fp.empty space d) in
  for seed = 1 to 5 do
    let perm_pairs = shuffle (Rng.create seed) space.Demand.pairs in
    let space' = Demand.space_of_pairs g perm_pairs in
    let d' = Demand.zero space' in
    Array.iteri
      (fun k v ->
        let src, dst = Demand.pair space k in
        match Demand.index space' ~src ~dst with
        | Some k' -> d'.(k') <- v
        | None -> Alcotest.fail "pair lost in permutation")
      d;
    Alcotest.(check bool)
      "permuted space hashes equal" true
      (Fp.equal base (Fp.finish (Fp.feed_demand Fp.empty space' d')))
  done

let qcheck_fingerprint_permutation =
  QCheck.Test.make ~count:50 ~name:"fingerprint invariant under permutation"
    QCheck.(pair small_int (small_list (pair small_int pos_float)))
    (fun (seed, _) ->
      let g = Topologies.abilene () in
      let space = Demand.full_space g in
      let rng = Rng.create (seed + 1) in
      let d = Demand.uniform space ~rng ~max:50. in
      let space' =
        Demand.space_of_pairs g (shuffle (Rng.create (seed + 2)) space.Demand.pairs)
      in
      let d' = Demand.zero space' in
      Array.iteri
        (fun k v ->
          let src, dst = Demand.pair space k in
          match Demand.index space' ~src ~dst with
          | Some k' -> d'.(k') <- v
          | None -> ())
        d;
      Fp.equal
        (Fp.finish (Fp.feed_demand Fp.empty space d))
        (Fp.finish (Fp.feed_demand Fp.empty space' d')))

(* Graphs built with different edge insertion orders hash equal. *)
let test_fingerprint_edge_order () =
  let edges =
    [ (0, 1, 10., 1.); (1, 2, 20., 1.); (2, 0, 5., 2.); (0, 2, 7., 1.) ]
  in
  let build order =
    let g = Graph.create ~name:"perm" ~num_nodes:3 () in
    List.iter
      (fun (src, dst, capacity, weight) ->
        ignore (Graph.add_edge g ~src ~dst ~capacity ~weight ()))
      order;
    g
  in
  let h order = Fp.finish (Fp.feed_graph Fp.empty (build order)) in
  let base = h edges in
  Alcotest.(check bool)
    "reversed insertion equal" true
    (Fp.equal base (h (List.rev edges)));
  Alcotest.(check bool)
    "capacity change detected" false
    (Fp.equal base (h [ (0, 1, 11., 1.); (1, 2, 20., 1.); (2, 0, 5., 2.); (0, 2, 7., 1.) ]))

let test_fingerprint_instance_sensitivity () =
  let g = Topologies.fig1 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let ev t = Evaluate.make_dp pathset ~threshold:t in
  let fp ?demand e = Fp.instance ?demand ~paths:2 e in
  Alcotest.(check bool)
    "same config equal" true
    (Fp.equal (fp (ev 0.5)) (fp (ev 0.5)));
  Alcotest.(check bool)
    "threshold matters" false
    (Fp.equal (fp (ev 0.5)) (fp (ev 0.6)));
  let space = Pathset.space pathset in
  let d = Demand.constant space 1. in
  Alcotest.(check bool)
    "demand matters" false
    (Fp.equal (fp (ev 0.5)) (fp ~demand:d (ev 0.5)));
  (* POP oracles drawn from the same seed hash equal, different seeds
     (almost surely) differ *)
  let pop seed =
    Evaluate.make_pop pathset ~parts:2 ~instances:3 ~rng:(Rng.create seed) ()
  in
  Alcotest.(check bool)
    "pop same seed equal" true
    (Fp.equal (fp (pop 5)) (fp (pop 5)));
  Alcotest.(check bool)
    "pop seed matters" false
    (Fp.equal (fp (pop 5)) (fp (pop 6)))

let test_fingerprint_hex () =
  let t = Fp.finish (Fp.feed_string Fp.empty "hello") in
  match Fp.of_hex (Fp.to_hex t) with
  | Some t' -> Alcotest.(check bool) "hex roundtrip" true (Fp.equal t t')
  | None -> Alcotest.fail "of_hex failed"

(* ------------------------------------------------------------------ *)
(* Solve cache                                                         *)
(* ------------------------------------------------------------------ *)

let key_of_int i = Fp.finish (Fp.feed_int Fp.empty i)

(* One shard, tight budget: eviction happens strictly from the LRU end
   and the byte ledger stays exact. *)
let test_cache_lru_eviction () =
  let per_entry = 36 + Cache.entry_overhead in
  (* room for exactly 3 resident entries *)
  let c = Cache.create ~shards:1 ~max_bytes:(3 * per_entry) () in
  List.iter (fun i -> Cache.insert c (key_of_int i) ~cost_bytes:36 i) [ 1; 2; 3 ];
  let s = Cache.stats c in
  Alcotest.(check int) "entries" 3 s.Cache.entries;
  Alcotest.(check int) "bytes" (3 * per_entry) s.Cache.bytes;
  (* touch 1 so it is MRU; inserting 4 must now evict 2 (the LRU) *)
  Alcotest.(check (option int)) "find 1" (Some 1) (Cache.find c (key_of_int 1));
  Cache.insert c (key_of_int 4) ~cost_bytes:36 4;
  let s = Cache.stats c in
  Alcotest.(check int) "entries after eviction" 3 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check bool) "2 evicted" false (Cache.mem c (key_of_int 2));
  Alcotest.(check bool) "1 kept (was touched)" true (Cache.mem c (key_of_int 1));
  Alcotest.(check bool) "3 kept" true (Cache.mem c (key_of_int 3));
  Alcotest.(check bool) "4 resident" true (Cache.mem c (key_of_int 4));
  Alcotest.(check int) "bytes steady" (3 * per_entry) (Cache.stats c).Cache.bytes

let test_cache_replace_and_oversize () =
  let c = Cache.create ~shards:1 ~max_bytes:1024 () in
  let k = key_of_int 9 in
  Cache.insert c k ~cost_bytes:100 1;
  Cache.insert c k ~cost_bytes:200 2;
  let s = Cache.stats c in
  Alcotest.(check int) "replacement keeps one entry" 1 s.Cache.entries;
  Alcotest.(check int) "bytes reflect new size" (200 + Cache.entry_overhead)
    s.Cache.bytes;
  Alcotest.(check (option int)) "new value" (Some 2) (Cache.find c k);
  (* an entry larger than the whole budget is refused, not thrashed *)
  Cache.insert c (key_of_int 10) ~cost_bytes:100_000 3;
  Alcotest.(check bool) "oversize refused" false (Cache.mem c (key_of_int 10));
  Alcotest.(check (option int)) "resident survives" (Some 2) (Cache.find c k)

(* qcheck: the sharded cache agrees with a naive association-list LRU
   model on membership, for single-shard random op sequences. *)
let qcheck_cache_model =
  QCheck.Test.make ~count:100 ~name:"cache agrees with reference LRU model"
    QCheck.(small_list (pair (int_bound 15) bool))
    (fun ops ->
      let per_entry = 10 + Cache.entry_overhead in
      let budget_entries = 4 in
      let c = Cache.create ~shards:1 ~max_bytes:(budget_entries * per_entry) () in
      (* model: MRU-first list of keys, capped at budget_entries *)
      let model = ref [] in
      List.iter
        (fun (i, is_insert) ->
          let k = key_of_int i in
          if is_insert then begin
            Cache.insert c k ~cost_bytes:10 i;
            let rest = List.filter (fun j -> j <> i) !model in
            let m = i :: rest in
            model :=
              if List.length m > budget_entries then
                List.filteri (fun idx _ -> idx < budget_entries) m
              else m
          end
          else begin
            let got = Cache.find c k in
            let expect = List.mem i !model in
            if got <> None <> expect then
              QCheck.Test.fail_reportf "find %d: cache %b, model %b" i
                (got <> None) expect;
            if expect then
              model := i :: List.filter (fun j -> j <> i) !model
          end)
        ops;
      List.for_all (fun i -> Cache.mem c (key_of_int i)) !model)

let test_cache_concurrent () =
  let domains = 4 in
  let per_domain = 2_000 in
  let c = Cache.create ~shards:8 ~max_bytes:(1024 * 1024) () in
  let bad = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.create (100 + d) in
            for _ = 1 to per_domain do
              let i = Rng.int_range rng 64 in
              let k = key_of_int i in
              match Cache.find c k with
              | Some v -> if v <> i * i then Atomic.incr bad
              | None -> Cache.insert c k ~cost_bytes:16 (i * i)
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no torn values" 0 (Atomic.get bad);
  let s = Cache.stats c in
  Alcotest.(check int)
    "every find accounted" (domains * per_domain)
    (s.Cache.hits + s.Cache.misses);
  Alcotest.(check bool) "cache populated" true (s.Cache.entries > 0);
  Alcotest.(check bool)
    "ledger within budget" true
    (s.Cache.bytes <= s.Cache.max_bytes)

(* The oracle cache must share OPT solves across heuristic
   configurations: the optimal MCF value depends only on topology +
   paths + demands, so a second evaluator with a different DP threshold
   probing the same demands must warm-hit the cached OPT entry
   (regression: the opt key used to include the heuristic spec, keying
   every threshold into a private copy — 0 hits across a sweep). *)
let test_oracle_cache_opt_shared () =
  let g = Topologies.fig1 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  let cache = Cache.create ~max_bytes:(1024 * 1024) () in
  let attach t =
    S.Oracle_cache.attach ~cache ~paths:2
      (Evaluate.make_dp pathset ~threshold:t)
  in
  let d = Demand.constant (Pathset.space pathset) 2. in
  ignore (Evaluate.gap (attach 0.5) d);
  let s0 = Cache.stats cache in
  Alcotest.(check int) "cold evaluation has no hits" 0 s0.Cache.hits;
  (* same demands, different threshold: OPT must hit, heuristic must not *)
  ignore (Evaluate.gap (attach 5.0) d);
  let s1 = Cache.stats cache in
  Alcotest.(check bool)
    "opt solve shared across thresholds" true
    (s1.Cache.hits > s0.Cache.hits);
  (* identical evaluation end to end: everything hits *)
  let hits_before = (Cache.stats cache).Cache.hits in
  let misses_before = (Cache.stats cache).Cache.misses in
  ignore (Evaluate.gap (attach 5.0) d);
  let s2 = Cache.stats cache in
  Alcotest.(check bool) "warm repeat all hits" true (s2.Cache.hits > hits_before);
  Alcotest.(check int) "warm repeat no misses" misses_before s2.Cache.misses

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

type gate = { m : Mutex.t; c : Condition.t; mutable opened : bool }

let gate () = { m = Mutex.create (); c = Condition.create (); opened = false }

let gate_wait g =
  Mutex.lock g.m;
  while not g.opened do
    Condition.wait g.c g.m
  done;
  Mutex.unlock g.m

let gate_open g =
  Mutex.lock g.m;
  g.opened <- true;
  Condition.broadcast g.c;
  Mutex.unlock g.m

let rec await_stats sched ~tries pred =
  if pred (Sched.stats sched) then ()
  else if tries <= 0 then Alcotest.fail "scheduler never reached expected state"
  else begin
    Thread.yield ();
    Unix.sleepf 0.002;
    await_stats sched ~tries:(tries - 1) pred
  end

let test_scheduler_dedup_once () =
  let sched = Sched.create ~cost_bytes:(fun _ -> 8) () in
  let g = gate () in
  let runs = Atomic.make 0 in
  let job () =
    gate_wait g;
    Atomic.incr runs;
    42
  in
  let key = key_of_int 1 in
  let results = Array.make 3 (Error Sched.Shutdown) in
  let t0 = Thread.create (fun () -> results.(0) <- Sched.submit sched ~key job) () in
  (* wait until the dispatcher picked the job up (queue drained) ... *)
  await_stats sched ~tries:1000 (fun s ->
      s.Sched.submitted >= 1 && s.Sched.queued_now = 0);
  (* ... then pile on identical queries; they must coalesce *)
  let t1 = Thread.create (fun () -> results.(1) <- Sched.submit sched ~key job) () in
  let t2 = Thread.create (fun () -> results.(2) <- Sched.submit sched ~key job) () in
  await_stats sched ~tries:1000 (fun s -> s.Sched.dedup_hits = 2);
  gate_open g;
  List.iter Thread.join [ t0; t1; t2 ];
  Alcotest.(check int) "job ran exactly once" 1 (Atomic.get runs);
  Array.iter
    (function
      | Ok (v, _) -> Alcotest.(check int) "coalesced value" 42 v
      | Error _ -> Alcotest.fail "a coalesced submit failed")
    results;
  let sources =
    Array.to_list results
    |> List.filter_map (function Ok (_, src) -> Some src | Error _ -> None)
  in
  Alcotest.(check int)
    "two waiters coalesced" 2
    (List.length (List.filter (fun s -> s = `Coalesced) sources));
  let s = Sched.stats sched in
  Alcotest.(check int) "executed once" 1 s.Sched.executed;
  Sched.shutdown sched

let test_scheduler_cache_and_backpressure () =
  let cache = Cache.create ~shards:1 ~max_bytes:4096 () in
  let sched = Sched.create ~queue_limit:1 ~cache ~cost_bytes:(fun _ -> 8) () in
  (* a cached key is served without running anything *)
  (match Sched.submit sched ~key:(key_of_int 1) (fun () -> 7) with
  | Ok (7, `Computed) -> ()
  | _ -> Alcotest.fail "first submit should compute");
  (match Sched.submit sched ~key:(key_of_int 1) (fun () -> 999) with
  | Ok (7, `Cached) -> ()
  | _ -> Alcotest.fail "second submit should hit the cache");
  (* block the dispatcher, fill the 1-slot queue, overflow *)
  let g = gate () in
  let t0 =
    Thread.create
      (fun () ->
        ignore
          (Sched.submit sched ~key:(key_of_int 2) (fun () ->
               gate_wait g;
               0)))
      ()
  in
  await_stats sched ~tries:1000 (fun s -> s.Sched.in_flight_now >= 1 && s.Sched.queued_now = 0);
  let t1 =
    Thread.create
      (fun () -> ignore (Sched.submit sched ~key:(key_of_int 3) (fun () -> 0)))
      ()
  in
  await_stats sched ~tries:1000 (fun s -> s.Sched.queued_now = 1);
  (match Sched.submit sched ~key:(key_of_int 4) (fun () -> 0) with
  | Error (Sched.Overloaded { queued = 1; limit = 1 }) -> ()
  | Ok _ -> Alcotest.fail "overflow submit was admitted"
  | Error _ -> Alcotest.fail "wrong rejection");
  gate_open g;
  Thread.join t0;
  Thread.join t1;
  let s = Sched.stats sched in
  Alcotest.(check int) "one rejection" 1 s.Sched.rejected;
  Sched.shutdown sched

let test_scheduler_failure_isolated () =
  let sched = Sched.create ~cost_bytes:(fun _ -> 8) () in
  (match Sched.submit sched ~key:(key_of_int 1) (fun () -> failwith "boom") with
  | Error (Sched.Failed msg) ->
      Alcotest.(check bool) "message carried" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "raising job must fail its waiters");
  (match Sched.submit sched ~key:(key_of_int 2) (fun () -> 5) with
  | Ok (5, `Computed) -> ()
  | _ -> Alcotest.fail "scheduler must survive a failed job");
  Sched.shutdown sched

(* Regression: a burst of distinct same-group queries must form a batch.
   The dispatcher used to pop the queue the instant it gained a head, so
   concurrent clients always dispatched as batches of one (max_batch
   stuck at 1); the admission window lets the burst accumulate. *)
let test_scheduler_batch_admission () =
  let sched =
    Sched.create ~batch_window:0.05 ~cost_bytes:(fun _ -> 8) ()
  in
  let clients = 8 in
  let g = gate () in
  let results = Array.make clients (Error Sched.Shutdown) in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            gate_wait g;
            results.(i) <-
              Sched.submit sched ~key:(key_of_int (100 + i)) (fun () ->
                  Thread.delay 0.01;
                  i))
          ())
  in
  gate_open g;
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Ok (v, `Computed) -> Alcotest.(check int) "own value" i v
      | _ -> Alcotest.fail "burst submit failed")
    results;
  let s = Sched.stats sched in
  Alcotest.(check int) "all executed" clients s.Sched.executed;
  Alcotest.(check bool)
    (Printf.sprintf "burst batched (max_batch %d > 1)" s.Sched.max_batch)
    true (s.Sched.max_batch > 1);
  Sched.shutdown sched

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let temp_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "repro-serve-test-%d-%s" (Unix.getpid ()) suffix)

let with_temp suffix f =
  let path = temp_path suffix in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let journal_records path =
  let acc = ref [] in
  match S.Journal.replay path ~f:(fun ~key ~value -> acc := (key, value) :: !acc) with
  | Ok n -> (n, List.rev !acc)
  | Error e -> Alcotest.failf "replay: %s" e

let test_journal_roundtrip () =
  with_temp "journal" (fun path ->
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok j ->
          S.Journal.append j ~key:1L ~value:"one";
          S.Journal.append j ~key:2L ~value:"";
          S.Journal.append j ~key:(-3L) ~value:"three";
          S.Journal.close j;
          S.Journal.close j (* idempotent *));
      let n, records = journal_records path in
      Alcotest.(check int) "replayed" 3 n;
      Alcotest.(check bool)
        "records in order" true
        (records = [ (1L, "one"); (2L, ""); (-3L, "three") ]))

let test_journal_truncated_tail () =
  with_temp "torn" (fun path ->
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok j ->
          S.Journal.append j ~key:1L ~value:"alpha";
          S.Journal.append j ~key:2L ~value:"beta";
          S.Journal.close j);
      (* simulate a crash mid-append: half a record at the tail *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\000\000\000\000\000\000";
      close_out oc;
      let n, records = journal_records path in
      Alcotest.(check int) "complete records survive" 2 n;
      Alcotest.(check bool)
        "values intact" true
        (records = [ (1L, "alpha"); (2L, "beta") ]);
      (* re-opening for append truncates the torn bytes so new records
         stay reachable *)
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "reopen: %s" e
      | Ok j ->
          S.Journal.append j ~key:3L ~value:"gamma";
          S.Journal.close j);
      let n, records = journal_records path in
      Alcotest.(check int) "post-crash append reachable" 3 n;
      Alcotest.(check bool)
        "tail is the new record" true
        (List.nth records 2 = (3L, "gamma")))

let test_journal_bad_header () =
  with_temp "foreign" (fun path ->
      let oc = open_out_bin path in
      output_string oc "SOME-OTHER-FORMAT v9\nxxxxxxxxxxxxxxxx";
      close_out oc;
      (match S.Journal.replay path ~f:(fun ~key:_ ~value:_ -> ()) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign header must not replay");
      (* open_append starts a fresh v1 journal over it *)
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "open over foreign: %s" e
      | Ok j ->
          S.Journal.append j ~key:7L ~value:"fresh";
          S.Journal.close j);
      let n, records = journal_records path in
      Alcotest.(check int) "fresh journal replays" 1 n;
      Alcotest.(check bool) "record" true (records = [ (7L, "fresh") ]))

let test_journal_crc_corruption () =
  with_temp "crc" (fun path ->
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok j ->
          S.Journal.append j ~key:1L ~value:"alpha";
          S.Journal.append j ~key:2L ~value:"beta";
          S.Journal.append j ~key:3L ~value:"gamma";
          S.Journal.close j);
      (* flip one byte inside the middle record's payload: the framing
         stays intact, the checksum no longer matches *)
      let contents =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Bytes.of_string s
      in
      let idx =
        let s = Bytes.to_string contents in
        let rec find i =
          if i + 4 > String.length s then
            Alcotest.fail "payload not found in journal"
          else if String.sub s i 4 = "beta" then i
          else find (i + 1)
        in
        find 0
      in
      Bytes.set contents (idx + 1)
        (Char.chr (Char.code (Bytes.get contents (idx + 1)) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc contents;
      close_out oc;
      (* replay skips exactly the corrupt record and keeps going *)
      let n, records = journal_records path in
      Alcotest.(check int) "corrupt record skipped" 2 n;
      Alcotest.(check bool)
        "later record still replayed" true
        (records = [ (1L, "alpha"); (3L, "gamma") ]);
      (* re-opening for append keeps the file: framing is sound, so new
         records land after the (still-skipped) corrupt one *)
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "reopen: %s" e
      | Ok j ->
          S.Journal.append j ~key:4L ~value:"delta";
          S.Journal.close j);
      let n, records = journal_records path in
      Alcotest.(check int) "append after corruption reachable" 3 n;
      Alcotest.(check bool)
        "tail is the new record" true
        (List.nth records 2 = (4L, "delta")))

let test_journal_torn_write_fault () =
  with_temp "fault" (fun path ->
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok j ->
          S.Journal.append j ~key:1L ~value:"alpha";
          (* inject a crash mid-append: half the payload, no checksum *)
          Repro_resilience.Faults.arm ~seed:9
            ~points:
              [
                ( "journal_torn_write",
                  { Repro_resilience.Faults.prob = 1.; limit = Some 1 } );
              ];
          Fun.protect ~finally:Repro_resilience.Faults.disarm (fun () ->
              S.Journal.append j ~key:2L ~value:"torn-away");
          S.Journal.close j);
      (* replay recovers the committed prefix *)
      let n, records = journal_records path in
      Alcotest.(check int) "committed prefix recovered" 1 n;
      Alcotest.(check bool) "record intact" true (records = [ (1L, "alpha") ]);
      (* open_append truncates the torn tail; appends are reachable again *)
      (match S.Journal.open_append path with
      | Error e -> Alcotest.failf "reopen: %s" e
      | Ok j ->
          S.Journal.append j ~key:3L ~value:"gamma";
          S.Journal.close j);
      let n, records = journal_records path in
      Alcotest.(check int) "post-recovery append reachable" 2 n;
      Alcotest.(check bool)
        "records" true
        (records = [ (1L, "alpha"); (3L, "gamma") ]))

let test_cache_journal_restart () =
  with_temp "cachej" (fun path ->
      let encode = string_of_int and decode = int_of_string_opt in
      let c1 = Cache.create ~shards:4 () in
      (match Cache.with_journal c1 ~path ~encode ~decode with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "fresh journal replayed %d" n
      | Error e -> Alcotest.failf "with_journal: %s" e);
      List.iter
        (fun i -> Cache.insert c1 (key_of_int i) ~cost_bytes:8 (i * 10))
        [ 1; 2; 3; 4; 5 ];
      Cache.close c1;
      (* restart: a fresh cache replays every committed insert *)
      let c2 = Cache.create ~shards:4 () in
      (match Cache.with_journal c2 ~path ~encode ~decode with
      | Ok 5 -> ()
      | Ok n -> Alcotest.failf "replayed %d records, wanted 5" n
      | Error e -> Alcotest.failf "with_journal: %s" e);
      List.iter
        (fun i ->
          Alcotest.(check (option int))
            (Printf.sprintf "key %d restored" i)
            (Some (i * 10))
            (Cache.find c2 (key_of_int i)))
        [ 1; 2; 3; 4; 5 ];
      Cache.close c2)

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                   *)
(* ------------------------------------------------------------------ *)

let b4_dp_instance =
  {
    S.Protocol.topology = "b4";
    paths = 2;
    heuristic = S.Protocol.Dp { threshold_frac = 0.05 };
  }

let expect_ok name = function
  | Error e -> Alcotest.failf "%s: transport: %s" name e
  | Ok response ->
      (match Json.member "ok" response with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.failf "%s: %s" name (Json.to_string response));
      response

let with_daemon config f =
  let ready_gate = gate () in
  let outcome = ref (Error "daemon never ran") in
  let t =
    Thread.create
      (fun () ->
        outcome := S.Daemon.run ~ready:(fun () -> gate_open ready_gate) config;
        (* unblock the test if run () failed before ready *)
        gate_open ready_gate)
      ()
  in
  gate_wait ready_gate;
  Fun.protect
    ~finally:(fun () ->
      (* make sure the daemon is really gone even if [f] failed early *)
      (match S.Client.with_connection config.S.Daemon.socket_path (fun c ->
           S.Client.call c S.Protocol.Shutdown)
       with
      | _ -> ());
      Thread.join t;
      match !outcome with
      | Ok () -> ()
      | Error e -> Alcotest.failf "daemon exited with: %s" e)
    (fun () -> f config.S.Daemon.socket_path)

let test_daemon_roundtrip () =
  let socket_path = temp_path "d1.sock" in
  with_daemon (S.Daemon.default_config ~socket_path) (fun sock ->
      let result =
        S.Client.with_connection sock (fun c ->
            let ping = expect_ok "ping" (S.Client.call c S.Protocol.Ping) in
            Alcotest.(check (option bool))
              "pong" (Some true)
              (Option.bind (Json.member "pong" ping) Json.bool);
            let evaluate () =
              S.Client.call c
                (S.Protocol.Evaluate
                   {
                     instance = b4_dp_instance;
                     demand = S.Protocol.Gen { gen = `Gravity; seed = 2 };
                     deadline = None;
                   })
            in
            let first = expect_ok "evaluate#1" (evaluate ()) in
            Alcotest.(check (option bool))
              "first is computed" (Some false)
              (Option.bind (Json.member "cached" first) Json.bool);
            let second = expect_ok "evaluate#2" (evaluate ()) in
            Alcotest.(check (option bool))
              "second is cached" (Some true)
              (Option.bind (Json.member "cached" second) Json.bool);
            (* identical result payloads, modulo the serving annotations *)
            let strip j =
              match j with
              | Json.Obj l ->
                  Json.Obj
                    (List.filter
                       (fun (k, _) -> k <> "cached" && k <> "coalesced")
                       l)
              | j -> j
            in
            Alcotest.(check bool)
              "bit-identical payload" true
              (strip first = strip second);
            let stats = expect_ok "stats" (S.Client.call c S.Protocol.Stats) in
            let hits =
              Option.bind (Json.member "result_cache" stats) (Json.obj_int "hits")
            in
            Alcotest.(check (option int)) "one result-cache hit" (Some 1) hits;
            (* malformed request -> structured error, connection lives on *)
            (match S.Client.request c (Json.Obj [ ("op", Json.Str "nope") ]) with
            | Ok response ->
                Alcotest.(check (option bool))
                  "bad op rejected" (Some false)
                  (Option.bind (Json.member "ok" response) Json.bool)
            | Error e -> Alcotest.failf "bad op: transport: %s" e);
            ignore (expect_ok "ping after error" (S.Client.call c S.Protocol.Ping)))
      in
      match result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "connect: %s" e)

let test_daemon_find_gap_and_unknown_topology () =
  let socket_path = temp_path "d2.sock" in
  with_daemon (S.Daemon.default_config ~socket_path) (fun sock ->
      let result =
        S.Client.with_connection sock (fun c ->
            let fg =
              expect_ok "find-gap"
                (S.Client.call c
                   (S.Protocol.Find_gap
                      {
                        instance =
                          {
                            S.Protocol.topology = "fig1";
                            paths = 2;
                            heuristic = S.Protocol.Dp { threshold_frac = 0.26 };
                          };
                        method_ = S.Protocol.Hillclimb;
                        time = 0.3;
                        seed = 3;
                        deadline = None;
                        degrade = false;
                      }))
            in
            Alcotest.(check bool)
              "gap reported" true
              (Option.is_some (Json.obj_num "gap" fg));
            match
              S.Client.call c
                (S.Protocol.Evaluate
                   {
                     instance =
                       {
                         S.Protocol.topology = "no-such-net";
                         paths = 2;
                         heuristic = S.Protocol.Dp { threshold_frac = 0.05 };
                       };
                     demand = S.Protocol.Gen { gen = `Uniform; seed = 1 };
                     deadline = None;
                   })
            with
            | Ok response ->
                Alcotest.(check (option string))
                  "bad-request code" (Some "bad-request")
                  (Option.bind
                     (Json.member "error" response)
                     (Json.obj_str "code"))
            | Error e -> Alcotest.failf "transport: %s" e)
      in
      match result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "connect: %s" e)

let test_daemon_persistent_cache () =
  let socket_path = temp_path "d3.sock" in
  let cache_dir = temp_path "d3-cache" in
  let config =
    { (S.Daemon.default_config ~socket_path) with S.Daemon.cache_dir = Some cache_dir }
  in
  let evaluate sock =
    match
      S.Client.with_connection sock (fun c ->
          expect_ok "evaluate"
            (S.Client.call c
               (S.Protocol.Evaluate
                  {
                    instance = b4_dp_instance;
                    demand = S.Protocol.Gen { gen = `Uniform; seed = 5 };
                    deadline = None;
                  })))
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "connect: %s" e
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun name ->
          let j = Filename.concat cache_dir name in
          if Sys.file_exists j then Sys.remove j)
        [ S.Daemon.journal_file; S.Daemon.basis_journal_file ];
      if Sys.file_exists cache_dir then Unix.rmdir cache_dir)
    (fun () ->
      with_daemon config (fun sock ->
          let r = evaluate sock in
          Alcotest.(check (option bool))
            "cold run computes" (Some false)
            (Option.bind (Json.member "cached" r) Json.bool));
      (* restart the daemon on the same cache dir: the journal replays
         and the very first query is already warm *)
      with_daemon config (fun sock ->
          let r = evaluate sock in
          Alcotest.(check (option bool))
            "replayed journal serves the first query" (Some true)
            (Option.bind (Json.member "cached" r) Json.bool)))

(* ------------------------------------------------------------------ *)
(* CRC framing                                                         *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      close a;
      close b)
    (fun () -> f a b)

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

(* Hand-rolled frame: independent of write_frame_crc, so an encoder bug
   can't cancel out a matching decoder bug. *)
let crc_frame payload =
  let crc = Int32.to_int (S.Journal.crc32 payload) land 0xffffffff in
  "RPF2" ^ be32 (String.length payload) ^ payload ^ be32 crc

let write_all fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

let test_frame_crc_roundtrip () =
  with_socketpair (fun a b ->
      let payloads = [ "hello"; ""; String.make 70_000 'x'; "{\"op\":\"ping\"}" ] in
      let writer = Thread.create (fun () ->
          List.iter (S.Protocol.write_frame_crc a) payloads;
          Unix.close a)
          ()
      in
      List.iter
        (fun expected ->
          match S.Protocol.read_frame_crc b with
          | Ok (Some p) ->
              Alcotest.(check bool)
                "payload intact" true (String.equal p expected)
          | Ok None -> Alcotest.fail "premature EOF"
          | Error e -> Alcotest.failf "read: %s" (S.Protocol.frame_error_to_string e))
        payloads;
      (match S.Protocol.read_frame_crc b with
      | Ok None -> ()
      | _ -> Alcotest.fail "clean close must read as EOF");
      Thread.join writer)

let read_one bytes =
  with_socketpair (fun a b ->
      write_all a bytes;
      Unix.close a;
      S.Protocol.read_frame_crc b)

let test_frame_crc_errors () =
  (match read_one ("XXXX" ^ be32 5 ^ "hello") with
  | Error S.Protocol.Bad_magic -> ()
  | r ->
      Alcotest.failf "bad magic: %s"
        (match r with
        | Ok _ -> "accepted"
        | Error e -> S.Protocol.frame_error_to_string e));
  (match read_one ("RPF2" ^ be32 (S.Protocol.max_frame + 1)) with
  | Error (S.Protocol.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized length accepted");
  (let frame = crc_frame "payload" in
   match read_one (String.sub frame 0 (String.length frame - 3)) with
   | Error (S.Protocol.Torn _) -> ()
   | _ -> Alcotest.fail "truncated frame not reported torn");
  (let frame = Bytes.of_string (crc_frame "payload") in
   Bytes.set frame 9 (Char.chr (Char.code (Bytes.get frame 9) lxor 0x40));
   match read_one (Bytes.to_string frame) with
   | Error S.Protocol.Crc_mismatch -> ()
   | _ -> Alcotest.fail "flipped payload byte not caught by CRC")

(* Arbitrary bytes at the decoder: any outcome is fine except an
   exception or a hang (the writer side is closed, so a correct decoder
   always terminates). *)
let qcheck_frame_garbage =
  QCheck.Test.make ~count:200 ~name:"frame decoder survives garbage"
    QCheck.(string_of Gen.char)
    (fun junk ->
      match read_one junk with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* Every strict prefix of a valid frame is torn (or clean EOF at 0). *)
let qcheck_frame_truncation =
  QCheck.Test.make ~count:100 ~name:"truncated frames read as torn"
    QCheck.(pair (string_of Gen.char) (float_bound_inclusive 1.))
    (fun (payload, frac) ->
      let frame = crc_frame payload in
      let cut = int_of_float (frac *. float_of_int (String.length frame)) in
      let cut = max 0 (min (String.length frame) cut) in
      match read_one (String.sub frame 0 cut) with
      | Ok None -> cut = 0
      | Ok (Some p) -> cut = String.length frame && String.equal p payload
      | Error (S.Protocol.Torn _) -> cut > 0 && cut < String.length frame
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* TCP transport                                                       *)
(* ------------------------------------------------------------------ *)

let with_tcp_daemon suffix f =
  let config =
    {
      (S.Daemon.default_config ~socket_path:(temp_path suffix)) with
      S.Daemon.tcp_port = Some 0;
    }
  in
  match S.Daemon.start config with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok h ->
      let port =
        match S.Daemon.tcp_port h with
        | Some p -> p
        | None -> Alcotest.fail "daemon reports no TCP port"
      in
      Fun.protect
        ~finally:(fun () ->
          S.Daemon.stop h;
          S.Daemon.wait h)
        (fun () -> f port)

let connect_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  fd

let assert_tcp_alive port =
  match S.Client.connect_addr_typed (S.Protocol.Tcp { host = "127.0.0.1"; port }) with
  | Error e -> Alcotest.failf "daemon dead: %s" (S.Client.error_to_string e)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> S.Client.close c)
        (fun () ->
          match S.Client.call_typed c S.Protocol.Ping with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "daemon not answering: %s"
                (S.Client.error_to_string e))

let test_tcp_roundtrip () =
  with_tcp_daemon "tcp1.sock" (fun port ->
      match S.Client.connect_addr_typed (S.Protocol.Tcp { host = "127.0.0.1"; port }) with
      | Error e -> Alcotest.failf "connect: %s" (S.Client.error_to_string e)
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> S.Client.close c)
            (fun () ->
              let r =
                expect_ok "evaluate over tcp"
                  (Result.map_error S.Client.error_to_string
                     (S.Client.call_typed c
                        (S.Protocol.Evaluate
                           {
                             instance = b4_dp_instance;
                             demand = S.Protocol.Gen { gen = `Gravity; seed = 11 };
                             deadline = None;
                           })))
              in
              Alcotest.(check (option bool))
                "computed" (Some false)
                (Option.bind (Json.member "cached" r) Json.bool)))

(* Garbage at the daemon's TCP decoder: a typed bad-frame error (or a
   plain drop), and the daemon stays alive for the next client. *)
let test_tcp_garbage_rejected () =
  with_tcp_daemon "tcp2.sock" (fun port ->
      List.iter
        (fun junk ->
          let fd = connect_tcp port in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              write_all fd junk;
              (match S.Protocol.read_frame_crc fd with
              | Ok (Some reply) -> (
                  match Json.of_string reply with
                  | Ok j ->
                      Alcotest.(check (option string))
                        "typed bad-frame error" (Some "bad-frame")
                        (Option.bind (Json.member "error" j)
                           (Json.obj_str "code"))
                  | Error e -> Alcotest.failf "unparseable error reply: %s" e)
              | Ok None -> () (* dropped: acceptable *)
              | Error _ -> () (* reset mid-reply: acceptable *));
              assert_tcp_alive port))
        [
          "this is not a frame at all";
          "RPF2" ^ be32 (S.Protocol.max_frame + 77);
          "\x00\x00\x00\x04ping" (* plain frame on the CRC listener *);
        ])

(* A client dying mid-frame (torn write) must not wedge or kill the
   daemon. *)
let test_tcp_torn_frame_dropped () =
  with_tcp_daemon "tcp3.sock" (fun port ->
      let frame = crc_frame "{\"op\":\"ping\"}" in
      let fd = connect_tcp port in
      write_all fd (String.sub frame 0 (String.length frame - 5));
      Unix.close fd;
      assert_tcp_alive port)

(* With the partial_write fault armed, every frame is shipped as two
   delayed writes — short reads on both sides of the conversation. *)
let test_tcp_partial_write_fault () =
  Repro_resilience.Faults.arm ~seed:3
    ~points:
      [ ("partial_write", { Repro_resilience.Faults.prob = 1.; limit = None }) ];
  Fun.protect ~finally:Repro_resilience.Faults.disarm (fun () ->
      with_tcp_daemon "tcp4.sock" (fun port ->
          assert_tcp_alive port;
          Alcotest.(check bool)
            "fault actually fired" true
            (Repro_resilience.Faults.fired "partial_write" > 0)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repro_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_json_errors;
          Alcotest.test_case "floats bit-exact" `Quick test_json_float_exact;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "demand permutation stable" `Quick
            test_fingerprint_demand_permutation;
          Alcotest.test_case "edge insertion order stable" `Quick
            test_fingerprint_edge_order;
          Alcotest.test_case "instance sensitivity" `Quick
            test_fingerprint_instance_sensitivity;
          Alcotest.test_case "hex roundtrip" `Quick test_fingerprint_hex;
          QCheck_alcotest.to_alcotest qcheck_fingerprint_permutation;
        ] );
      ( "solve-cache",
        [
          Alcotest.test_case "LRU eviction + byte ledger" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "replacement and oversize" `Quick
            test_cache_replace_and_oversize;
          Alcotest.test_case "concurrent hit/miss (4 domains)" `Quick
            test_cache_concurrent;
          Alcotest.test_case "oracle cache shares OPT across heuristics"
            `Quick test_oracle_cache_opt_shared;
          QCheck_alcotest.to_alcotest qcheck_cache_model;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "in-flight dedup runs once" `Quick
            test_scheduler_dedup_once;
          Alcotest.test_case "cache hits and backpressure" `Quick
            test_scheduler_cache_and_backpressure;
          Alcotest.test_case "failed job isolated" `Quick
            test_scheduler_failure_isolated;
          Alcotest.test_case "concurrent burst forms a batch" `Quick
            test_scheduler_batch_admission;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "truncated tail tolerated" `Quick
            test_journal_truncated_tail;
          Alcotest.test_case "foreign header rejected" `Quick
            test_journal_bad_header;
          Alcotest.test_case "corrupt record skipped on replay" `Quick
            test_journal_crc_corruption;
          Alcotest.test_case "torn-write fault recovered" `Quick
            test_journal_torn_write_fault;
          Alcotest.test_case "cache journal restart" `Quick
            test_cache_journal_restart;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "evaluate round trip + cache" `Quick
            test_daemon_roundtrip;
          Alcotest.test_case "find-gap + bad request" `Quick
            test_daemon_find_gap_and_unknown_topology;
          Alcotest.test_case "journal survives restart" `Quick
            test_daemon_persistent_cache;
        ] );
      ( "framing",
        [
          Alcotest.test_case "crc frame roundtrip" `Quick
            test_frame_crc_roundtrip;
          Alcotest.test_case "typed frame errors" `Quick test_frame_crc_errors;
          QCheck_alcotest.to_alcotest qcheck_frame_garbage;
          QCheck_alcotest.to_alcotest qcheck_frame_truncation;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "evaluate over tcp" `Quick test_tcp_roundtrip;
          Alcotest.test_case "garbage stream rejected typed" `Quick
            test_tcp_garbage_rejected;
          Alcotest.test_case "torn frame dropped, daemon lives" `Quick
            test_tcp_torn_frame_dropped;
          Alcotest.test_case "partial-write fault tolerated" `Quick
            test_tcp_partial_write_fault;
        ] );
    ]
