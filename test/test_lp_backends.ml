(* Differential tests for the pluggable LP backends: the dense tableau
   (reference oracle) and the sparse revised simplex must agree on
   status, objective, duals and reduced costs, and warm-started
   branch-and-bound must find the same answers as cold restarts. *)

open Repro_lp

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* unit tests: the sparse backend on known-answer problems             *)
(* ------------------------------------------------------------------ *)

let solve_with kind model = Solver.solve_lp ~backend:kind model

let small_lp () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12 *)
  let m = Model.create () in
  let x = Model.add_var ~name:"x" m in
  let y = Model.add_var ~name:"y" m in
  ignore (Model.add_constr m (Linexpr.of_terms [ (x, 1.); (y, 1.) ]) Model.Le 4.);
  ignore (Model.add_constr m (Linexpr.of_terms [ (x, 1.); (y, 3.) ]) Model.Le 6.);
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (x, 3.); (y, 2.) ]);
  m

let test_sparse_small_lp () =
  let r = solve_with Backend.Sparse (small_lp ()) in
  Alcotest.(check bool) "optimal" true (r.Solver.status = Simplex.Optimal);
  check_float "objective" 12. r.Solver.objective;
  check_float "x" 4. r.Solver.primal.(0);
  check_float "y" 0. r.Solver.primal.(1);
  (* binding first row: dual 3 (all of x's profit); slack second row *)
  check_float "dual row 0" 3. r.Solver.duals.(0);
  check_float "dual row 1" 0. r.Solver.duals.(1)

let test_sparse_infeasible_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constr m (Linexpr.var x) Model.Ge 3.);
  ignore (Model.add_constr m (Linexpr.var x) Model.Le 1.);
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let r = solve_with Backend.Sparse m in
  Alcotest.(check bool) "infeasible" true (r.Solver.status = Simplex.Infeasible);
  let m = Model.create () in
  let x = Model.add_var m in
  let y = Model.add_var m in
  ignore (Model.add_constr m (Linexpr.of_terms [ (x, 1.); (y, -1.) ]) Model.Le 1.);
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let r = solve_with Backend.Sparse m in
  Alcotest.(check bool) "unbounded" true (r.Solver.status = Simplex.Unbounded)

let test_sparse_resolve_bound_change () =
  (* warm restart through the Backend interface: tighten x's bound and
     the dual simplex must recover the new optimum from the old basis *)
  let sf = Standard_form.of_model (small_lp ()) in
  let be = Backend.create ~kind:Backend.Sparse sf in
  let r = Backend.solve_fresh be in
  check_float "fresh objective" 12. r.Simplex.objective;
  Backend.set_bounds be 0 ~lb:0. ~ub:1.;
  let r = Backend.resolve be in
  Alcotest.(check bool) "reoptimal" true (r.Simplex.status = Simplex.Optimal);
  (* x=1; remaining capacity goes to y: y = min(3, 5/3) -> obj 3 + 10/3 *)
  check_float "warm objective" (3. +. (2. *. 5. /. 3.)) r.Simplex.objective;
  let st = Backend.stats be in
  Alcotest.(check bool) "counted a warm hit or miss" true
    (st.Simplex.warm_hits + st.Simplex.warm_misses = 1)

let test_sparse_stats_populated () =
  let r = solve_with Backend.Sparse (small_lp ()) in
  let s = r.Solver.stats in
  Alcotest.(check bool) "iterations counted" true (s.Simplex.iterations > 0);
  Alcotest.(check bool) "eta file non-empty" true (s.Simplex.etas > 0);
  let r = solve_with Backend.Dense (small_lp ()) in
  Alcotest.(check bool) "dense reports no etas" true
    (r.Solver.stats.Simplex.etas = 0)

let test_backend_kind_of_string () =
  let is s k = Alcotest.(check bool) s true (Backend.kind_of_string s = Some k) in
  is "sparse" Backend.Sparse;
  is "revised" Backend.Sparse;
  is "dense" Backend.Dense;
  is "tableau" Backend.Dense;
  is "SPARSE" Backend.Sparse;
  Alcotest.(check bool) "garbage rejected" true
    (Backend.kind_of_string "gurobi" = None)

let test_sparse_milp_knapsack () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> b+c = 20 *)
  let m = Model.create () in
  let xs = Model.add_vars ~kind:Model.Binary m 3 in
  ignore
    (Model.add_constr m
       (Linexpr.of_terms [ (xs.(0), 3.); (xs.(1), 4.); (xs.(2), 2.) ])
       Model.Le 6.);
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (xs.(0), 10.); (xs.(1), 13.); (xs.(2), 7.) ]);
  let r =
    Solver.solve
      ~options:
        { Branch_bound.default_options with backend = Some Backend.Sparse }
      m
  in
  Alcotest.(check bool) "optimal" true (r.Branch_bound.outcome = Branch_bound.Optimal);
  check_float "objective" 20. r.Branch_bound.objective

(* ------------------------------------------------------------------ *)
(* differential properties                                             *)
(* ------------------------------------------------------------------ *)

(* Random bounded LPs with mixed row senses and general variable bounds
   (negative lower bounds, a chance of free variables) so both phase-1
   and bounded-variable handling get exercised. Continuous random data
   makes degenerate/multiple optima a measure-zero event, so when both
   backends report Optimal their duals and reduced costs are comparable
   point-wise. *)
let random_bounded_lp_gen =
  QCheck.Gen.(
    let* n = int_range 1 7 in
    let* m = int_range 1 7 in
    let* a = array_size (return (m * n)) (float_range (-5.) 5.) in
    let* senses = array_size (return m) (int_range 0 2) in
    let* b = array_size (return m) (float_range (-3.) 8.) in
    let* c = array_size (return n) (float_range (-5.) 5.) in
    let* lb = array_size (return n) (float_range (-4.) 0.) in
    let* ub = array_size (return n) (float_range 0.5 10.) in
    let* free_mask = array_size (return n) (int_range 0 9) in
    return (n, m, a, senses, b, c, lb, ub, free_mask))

let build_bounded_lp (n, m, a, senses, b, c, lb, ub, free_mask) =
  let model = Model.create () in
  let xs =
    Array.init n (fun j ->
        if free_mask.(j) = 0 then
          Model.add_var ~lb:neg_infinity ~ub:infinity model
        else Model.add_var ~lb:lb.(j) ~ub:ub.(j) model)
  in
  for i = 0 to m - 1 do
    let expr =
      Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
    in
    let sense =
      match senses.(i) with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq
    in
    ignore (Model.add_constr model expr sense b.(i))
  done;
  (* a generous box row keeps free-variable instances bounded *)
  ignore
    (Model.add_constr model
       (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))))
       Model.Le 200.);
  ignore
    (Model.add_constr model
       (Linexpr.of_terms (List.init n (fun j -> (xs.(j), -1.))))
       Model.Le 200.);
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
  model

let backends_agree =
  QCheck.Test.make ~count:300 ~name:"dense and sparse backends agree on LPs"
    (QCheck.make random_bounded_lp_gen) (fun inst ->
      let model = build_bounded_lp inst in
      let d = solve_with Backend.Dense model in
      let s = solve_with Backend.Sparse model in
      if d.Solver.status <> s.Solver.status then
        QCheck.Test.fail_reportf "status mismatch: dense %s sparse %s"
          (Fmt.str "%a" Simplex.pp_status d.Solver.status)
          (Fmt.str "%a" Simplex.pp_status s.Solver.status);
      (match d.Solver.status with
      | Simplex.Optimal ->
          let tol = 1e-6 in
          let close what k a b =
            if Float.abs (a -. b) > tol *. (1. +. Float.abs a) then
              QCheck.Test.fail_reportf "%s %d: dense %.12g sparse %.12g" what
                k a b
          in
          close "objective" 0 d.Solver.objective s.Solver.objective;
          Array.iteri (fun i v -> close "dual" i v s.Solver.duals.(i))
            d.Solver.duals;
          Array.iteri
            (fun j v -> close "reduced cost" j v s.Solver.reduced_costs.(j))
            d.Solver.reduced_costs;
          (* both primal solutions must actually satisfy the model: this
             is what catches tableau drift (an "Optimal" vertex whose
             row residuals have silently decayed) *)
          let dv = Model.max_violation model d.Solver.primal in
          if dv > 1e-5 then
            QCheck.Test.fail_reportf "dense primal infeasible: viol %.3g" dv;
          let sv = Model.max_violation model s.Solver.primal in
          if sv > 1e-5 then
            QCheck.Test.fail_reportf "sparse primal infeasible: viol %.3g" sv
      | _ -> ());
      true)

(* Warm-started B&B (dual-simplex reuse of the parent basis) must reach
   the same incumbent and bound as cold per-node restarts. *)
let random_binary_milp_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* m = int_range 1 4 in
    let* a = array_size (return (m * n)) (float_range (-4.) 6.) in
    let* b = array_size (return m) (float_range 0.5 12.) in
    let* c = array_size (return n) (float_range (-3.) 8.) in
    return (n, m, a, b, c))

let build_binary_milp (n, m, a, b, c) =
  let model = Model.create () in
  let xs = Model.add_vars ~kind:Model.Binary model n in
  for i = 0 to m - 1 do
    let expr =
      Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
    in
    ignore (Model.add_constr model expr Model.Le b.(i))
  done;
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
  model

let warm_equals_cold =
  QCheck.Test.make ~count:100
    ~name:"warm-started B&B matches cold restarts on binary MILPs"
    (QCheck.make random_binary_milp_gen) (fun inst ->
      let solve warm_start =
        (* jobs pinned to 1: this is a strict per-node determinism test
           and must not pick up an ambient REPRO_JOBS *)
        Branch_bound.solve
          ~options:
            {
              Branch_bound.default_options with
              backend = Some Backend.Sparse;
              warm_start;
              jobs = 1;
            }
          (build_binary_milp inst)
      in
      let w = solve true in
      let c = solve false in
      if w.Branch_bound.outcome <> c.Branch_bound.outcome then
        QCheck.Test.fail_reportf "outcome mismatch";
      (match w.Branch_bound.outcome with
      | Branch_bound.Optimal ->
          if
            Float.abs (w.Branch_bound.objective -. c.Branch_bound.objective)
            > 1e-6 *. (1. +. Float.abs w.Branch_bound.objective)
          then
            QCheck.Test.fail_reportf "objective mismatch: warm %.12g cold %.12g"
              w.Branch_bound.objective c.Branch_bound.objective;
          if
            Float.abs (w.Branch_bound.best_bound -. c.Branch_bound.best_bound)
            > 1e-6 *. (1. +. Float.abs w.Branch_bound.best_bound)
          then
            QCheck.Test.fail_reportf "bound mismatch: warm %.12g cold %.12g"
              w.Branch_bound.best_bound c.Branch_bound.best_bound
      | _ -> ());
      (* a cold run must never register dual-simplex warm starts *)
      if c.Branch_bound.lp_stats.Simplex.warm_hits <> 0 then
        QCheck.Test.fail_reportf "cold run reported warm hits";
      true)

(* The MILP search must agree across backends too (same branching rules,
   same incumbents up to ties broken by identical LP optima). *)
let milp_backends_agree =
  QCheck.Test.make ~count:100
    ~name:"dense and sparse backends agree on binary MILPs"
    (QCheck.make random_binary_milp_gen) (fun inst ->
      let solve kind =
        Branch_bound.solve
          ~options:
            {
              Branch_bound.default_options with
              backend = Some kind;
              jobs = 1;
            }
          (build_binary_milp inst)
      in
      let d = solve Backend.Dense in
      let s = solve Backend.Sparse in
      if d.Branch_bound.outcome <> s.Branch_bound.outcome then
        QCheck.Test.fail_reportf "outcome mismatch";
      (match d.Branch_bound.outcome with
      | Branch_bound.Optimal ->
          if
            Float.abs (d.Branch_bound.objective -. s.Branch_bound.objective)
            > 1e-6 *. (1. +. Float.abs d.Branch_bound.objective)
          then
            QCheck.Test.fail_reportf "objective mismatch: dense %.12g sparse %.12g"
              d.Branch_bound.objective s.Branch_bound.objective
      | _ -> ());
      true)

(* ------------------------------------------------------------------ *)
(* parallel tree search: jobs > 1 vs the serial path                   *)
(* ------------------------------------------------------------------ *)

let solve_with_jobs ?(node_limit = Branch_bound.default_options.node_limit)
    ?(interrupt = fun () -> false) ~jobs model =
  Branch_bound.solve
    ~options:
      {
        Branch_bound.default_options with
        backend = Some Backend.Sparse;
        jobs;
        node_limit;
        interrupt;
      }
    model

(* Random MILPs with SOS1 groups: continuous vars, disjoint groups of
   2-3, knapsack-style rows. All-zero is always feasible, bounds keep
   the model bounded, so every instance solves to Optimal. *)
let random_sos_milp_gen =
  QCheck.Gen.(
    let* n = int_range 4 9 in
    let* m = int_range 1 3 in
    let* a = array_size (return (m * n)) (float_range 0.5 4.) in
    let* b = array_size (return m) (float_range 2. 10.) in
    let* c = array_size (return n) (float_range 0.5 6.) in
    let* ub = array_size (return n) (float_range 1. 4.) in
    let* group_size = int_range 2 3 in
    return (n, m, a, b, c, ub, group_size))

let build_sos_milp (n, m, a, b, c, ub, group_size) =
  let model = Model.create () in
  let xs = Array.init n (fun j -> Model.add_var ~lb:0. ~ub:ub.(j) model) in
  for i = 0 to m - 1 do
    let expr =
      Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
    in
    ignore (Model.add_constr model expr Model.Le b.(i))
  done;
  let j = ref 0 in
  while !j + group_size <= n do
    Model.add_sos1 model
      (List.init group_size (fun k -> xs.(!j + k)));
    j := !j + group_size
  done;
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
  model

let agree_serial_parallel ~name gen build count =
  QCheck.Test.make ~count ~name (QCheck.make gen) (fun inst ->
      let serial = solve_with_jobs ~jobs:1 (build inst) in
      let par = solve_with_jobs ~jobs:4 (build inst) in
      if serial.Branch_bound.outcome <> par.Branch_bound.outcome then
        QCheck.Test.fail_reportf "outcome mismatch: serial %s parallel %s"
          (Fmt.str "%a" Branch_bound.pp_outcome serial.Branch_bound.outcome)
          (Fmt.str "%a" Branch_bound.pp_outcome par.Branch_bound.outcome);
      (match serial.Branch_bound.outcome with
      | Branch_bound.Optimal ->
          if
            Float.abs
              (serial.Branch_bound.objective -. par.Branch_bound.objective)
            > 1e-6 *. (1. +. Float.abs serial.Branch_bound.objective)
          then
            QCheck.Test.fail_reportf
              "objective mismatch: serial %.12g parallel %.12g"
              serial.Branch_bound.objective par.Branch_bound.objective;
          (match par.Branch_bound.primal with
          | None -> QCheck.Test.fail_reportf "parallel optimal without primal"
          | Some x ->
              let v = Model.max_violation (build inst) x in
              if v > 1e-5 then
                QCheck.Test.fail_reportf "parallel primal infeasible: %.3g" v)
      | _ -> ());
      if par.Branch_bound.tree.Branch_bound.workers <> 4 then
        QCheck.Test.fail_reportf "parallel run reported %d workers"
          par.Branch_bound.tree.Branch_bound.workers;
      if serial.Branch_bound.tree <> Branch_bound.serial_tree_stats then
        QCheck.Test.fail_reportf "serial run reported parallel tree stats";
      true)

let parallel_agrees_milp =
  agree_serial_parallel
    ~name:"parallel (jobs=4) B&B matches serial on binary MILPs"
    random_binary_milp_gen build_binary_milp 60

let parallel_agrees_sos =
  agree_serial_parallel
    ~name:"parallel (jobs=4) B&B matches serial on SOS1 models"
    random_sos_milp_gen build_sos_milp 40

(* jobs = 1 must remain deterministic run to run — the regression guard
   for "the serial path is bit-identical to the pre-parallel code". *)
let serial_bit_identical =
  QCheck.Test.make ~count:40
    ~name:"jobs=1 B&B is bit-identical across runs"
    (QCheck.make random_binary_milp_gen) (fun inst ->
      let a = solve_with_jobs ~jobs:1 (build_binary_milp inst) in
      let b = solve_with_jobs ~jobs:1 (build_binary_milp inst) in
      if a.Branch_bound.outcome <> b.Branch_bound.outcome then
        QCheck.Test.fail_reportf "outcome differs between identical runs";
      if not (Float.equal a.Branch_bound.objective b.Branch_bound.objective)
      then
        QCheck.Test.fail_reportf "objective differs: %.17g vs %.17g"
          a.Branch_bound.objective b.Branch_bound.objective;
      if not (Float.equal a.Branch_bound.best_bound b.Branch_bound.best_bound)
      then QCheck.Test.fail_reportf "best bound differs";
      if a.Branch_bound.nodes <> b.Branch_bound.nodes then
        QCheck.Test.fail_reportf "node count differs: %d vs %d"
          a.Branch_bound.nodes b.Branch_bound.nodes;
      if a.Branch_bound.simplex_iterations <> b.Branch_bound.simplex_iterations
      then QCheck.Test.fail_reportf "simplex iteration count differs";
      true)

(* Shared-counter limits under parallelism: the node limit may overshoot
   by at most jobs - 1 in-flight nodes; an interrupt wired to "true"
   stops the search before any meaningful work. *)
let parallel_node_limit =
  QCheck.Test.make ~count:25 ~name:"jobs=4 node limit overshoots by < jobs"
    (QCheck.make random_binary_milp_gen) (fun inst ->
      let r =
        solve_with_jobs ~jobs:4 ~node_limit:3 (build_binary_milp inst)
      in
      if r.Branch_bound.nodes > 3 + 4 then
        QCheck.Test.fail_reportf "node limit 3 overshot to %d nodes"
          r.Branch_bound.nodes;
      true)

let parallel_interrupt =
  QCheck.Test.make ~count:25 ~name:"jobs=4 interrupt stops the search"
    (QCheck.make random_binary_milp_gen) (fun inst ->
      let r =
        solve_with_jobs ~jobs:4
          ~interrupt:(fun () -> true)
          (build_binary_milp inst)
      in
      (match r.Branch_bound.outcome with
      | Branch_bound.No_incumbent | Branch_bound.Feasible -> ()
      | o ->
          QCheck.Test.fail_reportf "interrupted run reported %s"
            (Fmt.str "%a" Branch_bound.pp_outcome o));
      if r.Branch_bound.nodes > 4 then
        QCheck.Test.fail_reportf "interrupted run expanded %d nodes"
          r.Branch_bound.nodes;
      true)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "repro_lp_backends"
    [
      ( "sparse_unit",
        [
          Alcotest.test_case "small lp" `Quick test_sparse_small_lp;
          Alcotest.test_case "infeasible/unbounded" `Quick
            test_sparse_infeasible_unbounded;
          Alcotest.test_case "resolve after bound change" `Quick
            test_sparse_resolve_bound_change;
          Alcotest.test_case "stats populated" `Quick
            test_sparse_stats_populated;
          Alcotest.test_case "kind parsing" `Quick test_backend_kind_of_string;
          Alcotest.test_case "milp knapsack" `Quick test_sparse_milp_knapsack;
        ] );
      qsuite "differential"
        [ backends_agree; warm_equals_cold; milp_backends_agree ];
      qsuite "parallel_tree"
        [
          parallel_agrees_milp;
          parallel_agrees_sos;
          serial_bit_identical;
          parallel_node_limit;
          parallel_interrupt;
        ];
    ]
