(* Tests for the follower IR layer (Repro_follower) and its integration
   with the metaopt encodings:

   - Ir construction: column groups, inferred row blocks, direct solve;
   - Kkt_rewrite vs the hand-derived Repro_metaopt.Kkt: identical model
     sizes and (by qcheck) identical optima, in both complementarity
     modes;
   - Bigm derivation from presolve intervals, the fallback counter, and
     the post-solve audit — including the regression where a
     deliberately too-small big-M in the DP encoding is detected by the
     audit instead of silently cutting the adversary's optimum;
   - gap-problem differential: Ir and Hand engines agree on the DP and
     POP white-box gap values (both LP backends, jobs=1 and jobs=4);
   - the bin-packing family: exact FFD/OPT known answers, white-box
     encoding vs the simulator on fixed instances, and the seeded
     find-gap closing the classic FFD worst case;
   - the family registry. *)

open Repro_lp
open Repro_topology
open Repro_te
open Repro_metaopt
module F = Repro_follower

let check_float = Alcotest.(check (float 1e-6))

let fig1_pathset =
  let ps = lazy (Pathset.compute (Demand.full_space (Topologies.fig1 ())) ~k:2) in
  fun () -> Lazy.force ps

(* ------------------------------------------------------------------ *)
(* Ir                                                                  *)
(* ------------------------------------------------------------------ *)

let test_ir_groups_and_blocks () =
  let ir = F.Ir.create ~name:"toy" () in
  let f = F.Ir.add_cols ~group:"flow" ir 2 in
  let s = F.Ir.add_cols ~group:"slack" ~ub:3. ir 1 in
  Alcotest.(check int) "first flow col" 0 f;
  Alcotest.(check int) "slack col" 2 s;
  Alcotest.(check int) "num cols" 3 (F.Ir.num_cols ir);
  Alcotest.(check bool) "flow unbounded" true (F.Ir.col_ub ir 0 = infinity);
  check_float "slack ub" 3. (F.Ir.col_ub ir 2);
  Alcotest.(check string) "group of 1" "flow" (F.Ir.col_group ir 1);
  Alcotest.(check string) "group of 2" "slack" (F.Ir.col_group ir 2);
  F.Ir.set_objective ir [ (0, 1.); (1, 1.) ];
  F.Ir.add_rows ir
    [
      {
        F.Ir.row_name = "cap_0";
        inner_terms = [ (0, 1.) ];
        outer_terms = [];
        sense = F.Ir.Le;
        rhs = 2.;
      };
      {
        F.Ir.row_name = "cap_1";
        inner_terms = [ (1, 1.) ];
        outer_terms = [];
        sense = F.Ir.Le;
        rhs = 3.;
      };
      {
        F.Ir.row_name = "budget";
        inner_terms = [ (0, 1.); (1, 1.); (2, 1.) ];
        outer_terms = [];
        sense = F.Ir.Eq;
        rhs = 4.;
      };
    ];
  Alcotest.(check int) "rows" 3 (F.Ir.num_rows ir);
  Alcotest.(check int) "le rows" 2 (F.Ir.num_le_rows ir);
  Alcotest.(check (list (pair string (list int))))
    "blocks infer trailing indices"
    [ ("cap", [ 0; 1 ]); ("budget", [ 2 ]) ]
    (F.Ir.blocks ir);
  Alcotest.(check (list (pair string (list int))))
    "groups in declaration order"
    [ ("flow", [ 0; 1 ]); ("slack", [ 2 ]) ]
    (F.Ir.groups ir)

let test_ir_solve_directly () =
  let host = Model.create () in
  let p = Model.add_var ~name:"p" ~lb:1. ~ub:1. host in
  let ir = F.Ir.create ~name:"toy" () in
  ignore (F.Ir.add_cols ir 2);
  F.Ir.set_objective ir [ (0, 1.); (1, 1.) ];
  F.Ir.add_rows ir
    [
      {
        F.Ir.row_name = "r_0";
        inner_terms = [ (0, 1.) ];
        (* rhs 3 shifted down by the outer value: x0 <= 3 - p = 2 *)
        outer_terms = [ (p, 1.) ];
        sense = F.Ir.Le;
        rhs = 3.;
      };
      {
        F.Ir.row_name = "r_1";
        inner_terms = [ (1, 1.) ];
        outer_terms = [];
        sense = F.Ir.Le;
        rhs = 3.;
      };
    ];
  let r = F.Ir.solve_directly ir ~outer_values:(fun _ -> 1.) in
  check_float "direct optimum" 5. r.Solver.objective

(* ------------------------------------------------------------------ *)
(* Kkt_rewrite vs hand Kkt                                             *)
(* ------------------------------------------------------------------ *)

(* one follower description instantiated twice (once per host model) so
   the hand and IR paths see identical inputs *)
let toy_inner model =
  let p = Model.add_var ~name:"P" ~lb:6. ~ub:6. model in
  Inner_problem.create ~name:"toy" ~num_vars:2
    ~objective:[ (0, 2.); (1, 1.) ]
    [
      {
        Inner_problem.row_name = "cap_0";
        inner_terms = [ (0, 1.); (1, 1.) ];
        outer_terms = [ (p, -1.) ];
        sense = Inner_problem.Le;
        rhs = 0.;
      };
      {
        Inner_problem.row_name = "cap_1";
        inner_terms = [ (0, 1.) ];
        outer_terms = [];
        sense = Inner_problem.Le;
        rhs = 4.;
      };
      {
        Inner_problem.row_name = "tie";
        inner_terms = [ (1, 1.) ];
        outer_terms = [];
        sense = Inner_problem.Eq;
        rhs = 1.;
      };
    ]

(* follower optimum: x1 = 1 (tie), x0 = min(4, 6 - 1) = 4, value 9 *)
let toy_value = 9.

let solve_feasibility model =
  Model.set_objective model Model.Maximize Linexpr.zero;
  let r = Solver.solve model in
  Alcotest.(check bool) "solved" true
    (r.Branch_bound.outcome = Branch_bound.Optimal);
  Option.get r.Branch_bound.primal

let test_rewrite_matches_hand_exactly () =
  let hand_model = Model.create () in
  let hand = Kkt.emit hand_model (toy_inner hand_model) in
  let ir_model = Model.create () in
  let ir =
    Follower_bridge.emit ~engine:Follower_bridge.Ir ir_model
      (toy_inner ir_model)
  in
  Alcotest.(check int)
    "same vars" (Model.num_vars hand_model) (Model.num_vars ir_model);
  Alcotest.(check int)
    "same rows" (Model.num_constrs hand_model) (Model.num_constrs ir_model);
  Alcotest.(check int)
    "same sos1" (Model.num_sos1 hand_model) (Model.num_sos1 ir_model);
  Alcotest.(check int)
    "same complementarity count" hand.Kkt.num_complementarity
    ir.Kkt.num_complementarity;
  let hp = solve_feasibility hand_model in
  let ip = solve_feasibility ir_model in
  check_float "hand value" toy_value (Linexpr.eval hand.Kkt.value (Array.get hp));
  check_float "ir value" toy_value (Linexpr.eval ir.Kkt.value (Array.get ip))

let test_rewrite_big_m_agrees () =
  let model = Model.create () in
  let ip = toy_inner model in
  let e =
    F.Kkt_rewrite.emit
      ~comp:(F.Kkt_rewrite.Big_m { fallback = 50. })
      model
      (Follower_bridge.ir_of_inner ip)
  in
  Alcotest.(check int) "no sos1 groups" 0 (Model.num_sos1 model);
  Alcotest.(check int)
    "one binary per complementarity pair" e.F.Kkt_rewrite.num_complementarity
    e.F.Kkt_rewrite.num_binaries;
  Alcotest.(check bool)
    "every gate tracked" true
    (List.length e.F.Kkt_rewrite.tracked = 2 * e.F.Kkt_rewrite.num_binaries);
  let p = solve_feasibility model in
  check_float "big-M value = follower optimum" toy_value
    (Linexpr.eval e.F.Kkt_rewrite.value (Array.get p));
  (* at a KKT point no derived gate may sit at its big-M ceiling *)
  Alcotest.(check int)
    "audit clean" 0
    (List.length (F.Bigm.audit p e.F.Kkt_rewrite.tracked))

let test_rewrite_finite_ub () =
  List.iter
    (fun comp ->
      let model = Model.create () in
      let ir = F.Ir.create ~name:"ub" () in
      ignore (F.Ir.add_cols ~ub:1.5 ir 1);
      F.Ir.set_objective ir [ (0, 3.) ];
      F.Ir.add_row ir
        {
          F.Ir.row_name = "cap_0";
          inner_terms = [ (0, 1.) ];
          outer_terms = [];
          sense = F.Ir.Le;
          rhs = 10.;
        };
      let e = F.Kkt_rewrite.emit ~comp model ir in
      Alcotest.(check bool)
        "eta emitted for finite ub" true
        (e.F.Kkt_rewrite.ub_duals.(0) <> None);
      let p = solve_feasibility model in
      (* the binding constraint is the column bound, not the row *)
      check_float "pinned at ub" 4.5 (Linexpr.eval e.F.Kkt_rewrite.value (Array.get p));
      check_float "x at ub" 1.5 p.(e.F.Kkt_rewrite.x.(0)))
    [ F.Kkt_rewrite.Sos1; F.Kkt_rewrite.Big_m { fallback = 20. } ]

(* random follower LPs: hand, IR/SOS1, IR/big-M and the direct solve all
   agree on the optimum *)
let rewrite_differential_property =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* m = int_range 1 3 in
      let* a = array_size (return (m * n)) (float_range 0. 4.) in
      let* b = array_size (return m) (float_range 1. 10.) in
      let* c = array_size (return n) (float_range 0.1 5.) in
      return (n, m, a, b, c))
  in
  QCheck.Test.make ~count:40 ~name:"hand = IR sos1 = IR big-M = direct"
    (QCheck.make gen) (fun (n, m, a, b, c) ->
      let rows =
        ({
           Inner_problem.row_name = "budget";
           inner_terms = List.init n (fun j -> (j, 1.));
           outer_terms = [];
           sense = Inner_problem.Le;
           rhs = 50.;
         }
        :: List.init m (fun i ->
               {
                 Inner_problem.row_name = Printf.sprintf "r_%d" i;
                 inner_terms =
                   List.filter_map
                     (fun j ->
                       let v = a.((i * n) + j) in
                       if v = 0. then None else Some (j, v))
                     (List.init n (fun j -> j));
                 outer_terms = [];
                 sense = Inner_problem.Le;
                 rhs = b.(i);
               }))
      in
      let inner () =
        Inner_problem.create ~name:"prop" ~num_vars:n
          ~objective:(List.init n (fun j -> (j, c.(j))))
          rows
      in
      let value_of engine comp =
        let model = Model.create () in
        let e =
          match engine with
          | `Hand -> Kkt.emit model (inner ())
          | `Ir ->
              Follower_bridge.emit ~engine:Follower_bridge.Ir ?comp model
                (inner ())
        in
        Model.set_objective model Model.Maximize Linexpr.zero;
        let r = Solver.solve model in
        if r.Branch_bound.outcome <> Branch_bound.Optimal then
          QCheck.Test.fail_reportf "KKT system not solved";
        Linexpr.eval e.Kkt.value (Array.get (Option.get r.Branch_bound.primal))
      in
      let direct =
        (Inner_problem.solve_directly (inner ()) ~outer_values:(fun _ -> 0.))
          .Solver.objective
      in
      let hand = value_of `Hand None in
      let sos = value_of `Ir None in
      let bigm =
        value_of `Ir (Some (F.Kkt_rewrite.Big_m { fallback = 200. }))
      in
      if
        Float.abs (hand -. direct) > 1e-6
        || Float.abs (sos -. direct) > 1e-6
        || Float.abs (bigm -. direct) > 1e-5
      then
        QCheck.Test.fail_reportf "hand %g sos %g bigm %g direct %g" hand sos
          bigm direct
      else true)

(* ------------------------------------------------------------------ *)
(* Bigm + Presolve.var_intervals                                       *)
(* ------------------------------------------------------------------ *)

let test_var_intervals () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" m in
  let y = Model.add_var ~name:"y" ~ub:10. m in
  ignore (Model.add_constr m (Linexpr.var x) Model.Le 4.);
  ignore (Model.add_constr m (Linexpr.var y) Model.Eq 7.);
  (match Presolve.var_intervals m with
  | None -> Alcotest.fail "feasible model reported infeasible"
  | Some iv ->
      let _, xu = iv.(x) in
      let yl, yu = iv.(y) in
      Alcotest.(check bool) "x tightened" true (xu <= 4. +. 1e-9);
      Alcotest.(check bool) "y fixed" true
        (Float.abs (yl -. 7.) <= 1e-9 && Float.abs (yu -. 7.) <= 1e-9));
  let bad = Model.create () in
  let z = Model.add_var ~name:"z" ~ub:1. bad in
  ignore (Model.add_constr bad (Linexpr.var z) Model.Ge 2.);
  Alcotest.(check bool) "infeasible -> None" true
    (Presolve.var_intervals bad = None)

let test_bigm_derivation_and_fallback () =
  F.Bigm.reset_fallbacks ();
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~ub:3. m in
  let free = Model.add_var ~name:"free" m in
  let iv = F.Bigm.host_intervals m in
  let d =
    F.Bigm.derive_ub ~context:"t/bounded" ~var_interval:iv ~fallback:99.
      [ (x, 2.) ]
  in
  Alcotest.(check bool) "derived" true d.F.Bigm.derived;
  check_float "activity bound" 6. d.F.Bigm.m;
  Alcotest.(check int) "no fallback yet" 0 (F.Bigm.fallbacks_noted ());
  let f =
    F.Bigm.derive_ub ~context:"t/unbounded" ~var_interval:iv ~fallback:99.
      [ (free, 1.) ]
  in
  Alcotest.(check bool) "fell back" false f.F.Bigm.derived;
  check_float "fallback value" 99. f.F.Bigm.m;
  Alcotest.(check int) "fallback noted" 1 (F.Bigm.fallbacks_noted ());
  F.Bigm.reset_fallbacks ();
  Alcotest.(check int) "reset" 0 (F.Bigm.fallbacks_noted ())

(* the satellite regression: a hand-tuned big-M that is too small cuts
   the adversary's optimum; the audit must flag it on the incumbent
   instead of letting it pass silently *)
let dp_gap_with ?big_m ?engine () =
  let pathset = fig1_pathset () in
  let demand_ub = Graph.max_capacity (Pathset.graph pathset) in
  let threshold = 0.05 *. demand_ub in
  let model = Model.create () in
  let space = Pathset.space pathset in
  let demand_vars =
    Array.init (Demand.size space) (fun k ->
        ignore k;
        Model.add_var ~name:"d" ~ub:demand_ub model)
  in
  let opt_vars =
    Mcf.add_feasible_flow ~prefix:"opt_f" model pathset (Mcf.Var demand_vars)
  in
  let enc =
    Dp_encoding.encode model pathset ~demand_vars ~threshold ~demand_ub
      ?engine ?big_m ()
  in
  Model.set_objective model Model.Maximize
    (Linexpr.sub (Mcf.total_flow_expr opt_vars) enc.Dp_encoding.value);
  let r = Solver.solve ~presolve:true model in
  Alcotest.(check bool) "solved" true
    (r.Branch_bound.outcome = Branch_bound.Optimal);
  let primal = Option.get r.Branch_bound.primal in
  (r.Branch_bound.objective, F.Bigm.audit primal enc.Dp_encoding.tracked)

let test_dp_small_big_m_detected () =
  let full_gap, full_audit = dp_gap_with () in
  Alcotest.(check int) "derived M passes the audit" 0 (List.length full_audit);
  let pathset = fig1_pathset () in
  let demand_ub = Graph.max_capacity (Pathset.graph pathset) in
  (* far below any demand the adversary wants to leave unpinned *)
  let cut_gap, cut_audit = dp_gap_with ~big_m:(0.02 *. demand_ub) () in
  Alcotest.(check bool)
    (Printf.sprintf "optimum visibly cut (%g < %g)" cut_gap full_gap)
    true
    (cut_gap < full_gap -. 1e-3);
  Alcotest.(check bool) "audit flags saturated gates" true (cut_audit <> [])

(* ------------------------------------------------------------------ *)
(* gap-problem differential: Ir vs Hand engines                        *)
(* ------------------------------------------------------------------ *)

let solve_gap ?(jobs = 1) ?backend gp =
  let options =
    { Branch_bound.default_options with jobs; backend; time_limit = 60. }
  in
  let r = Solver.solve ~options ~presolve:true gp.Gap_problem.model in
  Alcotest.(check bool) "solved" true
    (r.Branch_bound.outcome = Branch_bound.Optimal);
  r.Branch_bound.objective

let test_dp_engines_agree_both_backends () =
  let pathset = fig1_pathset () in
  let heuristic = Gap_problem.Dp { threshold = 5. } in
  List.iter
    (fun backend ->
      let hand =
        Gap_problem.build pathset ~heuristic ~engine:Follower_bridge.Hand ()
      in
      let ir =
        Gap_problem.build pathset ~heuristic ~engine:Follower_bridge.Ir ()
      in
      Alcotest.(check bool)
        "identical model sizes" true
        (Gap_problem.size hand = Gap_problem.size ir);
      let vh = solve_gap ?backend hand and vi = solve_gap ?backend ir in
      if Float.abs (vh -. vi) > 1e-6 then
        Alcotest.failf "dp hand %g <> ir %g (backend %s)" vh vi
          (match backend with
          | None -> "default"
          | Some k -> Backend.kind_to_string k))
    [ None; Some Backend.Sparse; Some Backend.Dense ]

let test_pop_engines_agree_and_jobs () =
  let pathset = fig1_pathset () in
  let num_pairs = Demand.size (Pathset.space pathset) in
  let partitions =
    List.init 2 (fun i ->
        Pop.random_partition ~rng:(Rng.create (i + 1)) ~num_pairs ~parts:2)
  in
  let heuristic =
    Gap_problem.Pop { parts = 2; partitions; reduce = `Average }
  in
  let hand =
    Gap_problem.build pathset ~heuristic ~engine:Follower_bridge.Hand ()
  in
  let ir =
    Gap_problem.build pathset ~heuristic ~engine:Follower_bridge.Ir ()
  in
  Alcotest.(check bool)
    "identical model sizes" true
    (Gap_problem.size hand = Gap_problem.size ir);
  let vh = solve_gap hand in
  let vi = solve_gap ir in
  check_float "pop hand = ir" vh vi;
  let v4 =
    solve_gap ~jobs:4
      (Gap_problem.build pathset ~heuristic ~engine:Follower_bridge.Ir ())
  in
  Alcotest.(check (float 1e-5)) "jobs=1 = jobs=4" vi v4

let test_client_split_engines_agree () =
  let pathset = fig1_pathset () in
  let num_pairs = Demand.size (Pathset.space pathset) in
  let demand_ub = Graph.max_capacity (Pathset.graph pathset) in
  let max_splits = 1 in
  let assignments =
    [
      Pop.random_slot_assignment ~rng:(Rng.create 7) ~num_pairs ~max_splits
        ~parts:2;
    ]
  in
  let value engine =
    let model = Model.create () in
    let demand_vars =
      Array.init num_pairs (fun _ -> Model.add_var ~name:"d" ~ub:demand_ub model)
    in
    let enc =
      Pop_encoding.encode_with_client_split model pathset ~demand_vars
        ~parts:2 ~threshold:(0.3 *. demand_ub) ~max_splits ~assignments
        ~demand_ub ~reduce:`Average ~engine ()
    in
    Model.set_objective model Model.Maximize enc.Pop_encoding.value;
    let r = Solver.solve ~presolve:true model in
    Alcotest.(check bool) "solved" true
      (r.Branch_bound.outcome = Branch_bound.Optimal);
    (r.Branch_bound.objective, enc.Pop_encoding.tracked)
  in
  let vh, _ = value Follower_bridge.Hand in
  let vi, tracked = value Follower_bridge.Ir in
  check_float "client-split hand = ir" vh vi;
  Alcotest.(check bool) "slot gates tracked" true (tracked <> [])

(* ------------------------------------------------------------------ *)
(* binpack                                                             *)
(* ------------------------------------------------------------------ *)

let thirds = [| 0.4; 0.4; 0.3; 0.3; 0.3; 0.3 |]

let test_ffd_known_answers () =
  let cfg = F.Binpack.config () in
  let p = F.Binpack.ffd cfg thirds in
  Alcotest.(check int) "ffd on the thirds pattern" 3 p.F.Binpack.bins;
  let opt_bins, outcome = F.Binpack.opt cfg thirds in
  Alcotest.(check bool) "opt proven" true (outcome = Branch_bound.Optimal);
  Alcotest.(check int) "opt repacks into 2" 2 opt_bins;
  (* no gap cases: FFD is optimal on these *)
  let even = [| 0.6; 0.6; 0.35; 0.35; 0.; 0. |] in
  Alcotest.(check int) "ffd pairs big+small" 2 (F.Binpack.ffd cfg even).F.Binpack.bins;
  Alcotest.(check int) "opt agrees" 2 (fst (F.Binpack.opt cfg even))

let test_normalize_sorts_decreasing () =
  let cfg = F.Binpack.config ~items:4 () in
  let a = F.Binpack.normalize cfg [| 0.2; 0.9; 0.5; 1.4 |] in
  Alcotest.(check (array (float 1e-9)))
    "clamped and sorted" [| 1.0; 0.9; 0.5; 0.2 |] a

(* fix the encoded model's size variables to a concrete (grid-snapped)
   instance: the white-box objective must equal the simulated FFD bins
   minus the exact OPT bins *)
let test_encode_matches_simulator () =
  let cfg = F.Binpack.config () in
  let check_instance name a =
    let a = F.Binpack.normalize cfg a in
    let enc = F.Binpack.encode cfg in
    Array.iteri
      (fun i s ->
        ignore
          (Model.add_constr
             ~name:(Printf.sprintf "fix_%d" i)
             enc.F.Binpack.model (Linexpr.var s) Model.Eq a.(i)))
      enc.F.Binpack.sizes;
    let r =
      Solver.solve
        ~options:
          { Branch_bound.default_options with node_limit = 4000; time_limit = 20. }
        ~presolve:true enc.F.Binpack.model
    in
    Alcotest.(check bool) (name ^ " solved") true
      (r.Branch_bound.outcome = Branch_bound.Optimal);
    let ffd = (F.Binpack.ffd cfg a).F.Binpack.bins in
    let opt_bins, outcome = F.Binpack.opt cfg a in
    Alcotest.(check bool) (name ^ " opt proven") true
      (outcome = Branch_bound.Optimal);
    Alcotest.(check (float 1e-5))
      (name ^ " white-box gap = simulated gap")
      (float_of_int (ffd - opt_bins))
      r.Branch_bound.objective
  in
  check_instance "thirds" thirds;
  (* a snapped non-adversarial instance exercising partial fills *)
  check_instance "mixed" [| 0.55; 0.45; 0.35; 0.25; 0.2; 0.1 |]

let test_find_gap_seeded () =
  let r = F.Binpack.find_gap (F.Binpack.config ()) in
  Alcotest.(check bool) "nonzero adversarial gap" true (r.F.Binpack.gap >= 1);
  Alcotest.(check int) "gap = ffd - opt"
    (r.F.Binpack.ffd_bins - r.F.Binpack.opt_bins)
    r.F.Binpack.gap;
  Alcotest.(check bool) "oracle proved every OPT" true r.F.Binpack.oracle_closed;
  (* the reported instance really is adversarial when re-simulated *)
  let p = F.Binpack.ffd r.F.Binpack.config r.F.Binpack.instance in
  Alcotest.(check int) "instance replays" r.F.Binpack.ffd_bins p.F.Binpack.bins

let test_find_gap_two_dims () =
  let cfg = F.Binpack.config ~items:6 ~dims:2 () in
  let r =
    F.Binpack.find_gap
      ~options:{ F.Binpack.default_options with run_milp = false }
      cfg
  in
  Alcotest.(check bool) "2-d probes find a gap" true (r.F.Binpack.gap >= 1)

(* ------------------------------------------------------------------ *)
(* family registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_families_registry () =
  Families.ensure_registered ();
  List.iter
    (fun name ->
      match Families.find name with
      | None -> Alcotest.failf "family %s not registered" name
      | Some f -> Alcotest.(check string) "name" name f.F.Family.name)
    [ "dp"; "pop"; "binpack" ];
  Alcotest.(check bool) "unknown is None" true (Families.find "nope" = None);
  let s =
    (Option.get (Families.find "binpack")).F.Family.stats ()
  in
  Alcotest.(check bool) "binpack stats populated" true
    (s.F.Family.vars > 0 && s.F.Family.rows > 0 && s.F.Family.binaries > 0
   && s.F.Family.sos1 = 0);
  let d = (Option.get (Families.find "dp")).F.Family.stats () in
  Alcotest.(check bool) "dp stats have sos1 pairs" true (d.F.Family.sos1 > 0)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "follower"
    [
      ( "ir",
        [
          Alcotest.test_case "groups and blocks" `Quick test_ir_groups_and_blocks;
          Alcotest.test_case "solve directly" `Quick test_ir_solve_directly;
        ] );
      ( "kkt_rewrite",
        [
          Alcotest.test_case "matches hand emitter" `Quick test_rewrite_matches_hand_exactly;
          Alcotest.test_case "big-M mode agrees" `Quick test_rewrite_big_m_agrees;
          Alcotest.test_case "finite column ub" `Quick test_rewrite_finite_ub;
          q rewrite_differential_property;
        ] );
      ( "bigm",
        [
          Alcotest.test_case "presolve var intervals" `Quick test_var_intervals;
          Alcotest.test_case "derive and fallback" `Quick test_bigm_derivation_and_fallback;
          Alcotest.test_case "small big-M detected" `Slow test_dp_small_big_m_detected;
        ] );
      ( "engines",
        [
          Alcotest.test_case "dp hand=ir, both backends" `Slow test_dp_engines_agree_both_backends;
          Alcotest.test_case "pop hand=ir, jobs 1=4" `Slow test_pop_engines_agree_and_jobs;
          Alcotest.test_case "client split hand=ir" `Slow test_client_split_engines_agree;
        ] );
      ( "binpack",
        [
          Alcotest.test_case "ffd/opt known answers" `Quick test_ffd_known_answers;
          Alcotest.test_case "normalize" `Quick test_normalize_sorts_decreasing;
          Alcotest.test_case "encoding = simulator" `Slow test_encode_matches_simulator;
          Alcotest.test_case "seeded find-gap" `Slow test_find_gap_seeded;
          Alcotest.test_case "two dims probes" `Quick test_find_gap_two_dims;
        ] );
      ( "families",
        [ Alcotest.test_case "registry" `Quick test_families_registry ] );
    ]
