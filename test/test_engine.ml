(* Tests for the parallel search engine (Repro_engine): pool lifecycle,
   deterministic parallel map/reduce, shared incumbent store, portfolio
   runner — and the determinism contract of the metaopt wiring (parallel
   oracle scoring and POP averaging bit-identical to serial).

   The "smoke" suite runs the end-to-end fig1 anchor under the job count
   given by REPRO_TEST_JOBS (default 4); the dune rule re-runs it with
   REPRO_TEST_JOBS=1 so both the serial and the pooled code paths are
   exercised by `dune runtest`. *)

open Repro_topology
open Repro_te
open Repro_metaopt
module E = Repro_engine

let check_float = Alcotest.(check (float 1e-9))

let test_jobs =
  match Sys.getenv_opt "REPRO_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* Chunks                                                              *)
(* ------------------------------------------------------------------ *)

let test_chunks_cover () =
  List.iter
    (fun (n, chunks) ->
      let ranges = E.Chunks.ranges ~n ~chunks in
      (* contiguous, ordered, covering [0, n) exactly *)
      let expected_start = ref 0 in
      List.iter
        (fun (start, stop) ->
          Alcotest.(check int) "contiguous" !expected_start start;
          Alcotest.(check bool) "non-empty" true (stop > start);
          expected_start := stop)
        ranges;
      Alcotest.(check int) "covers n" n !expected_start;
      (* balanced: lengths differ by at most one *)
      let lens = List.map (fun (a, b) -> b - a) ranges in
      let mn = List.fold_left Int.min max_int lens in
      let mx = List.fold_left Int.max 0 lens in
      Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (1, 1); (7, 3); (8, 4); (100, 7); (5, 16); (3, 1) ]

let test_chunks_empty () =
  Alcotest.(check (list (pair int int))) "n=0" [] (E.Chunks.ranges ~n:0 ~chunks:4)

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_submit_await () =
  E.Pool.with_pool ~domains:test_jobs (fun pool ->
      let futures =
        List.init 40 (fun i -> E.Pool.submit pool (fun () -> i * i))
      in
      List.iteri
        (fun i f -> Alcotest.(check int) "result" (i * i) (E.Pool.await f))
        futures)

let test_pool_await_passive () =
  E.Pool.with_pool ~domains:test_jobs (fun pool ->
      let futures =
        List.init 20 (fun i -> E.Pool.submit pool (fun () -> i + 1))
      in
      List.iteri
        (fun i f ->
          Alcotest.(check int) "result" (i + 1) (E.Pool.await_passive f))
        futures;
      (* exceptions propagate exactly like await *)
      let f = E.Pool.submit pool (fun () -> failwith "boom") in
      match E.Pool.await_passive f with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_exception_propagates () =
  E.Pool.with_pool ~domains:2 (fun pool ->
      let f = E.Pool.submit pool (fun () -> failwith "boom") in
      (match E.Pool.await f with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* the pool survives a failed task *)
      let g = E.Pool.submit pool (fun () -> 41 + 1) in
      Alcotest.(check int) "alive after failure" 42 (E.Pool.await g))

let test_pool_cancel_pending () =
  (* one worker: a gate task occupies it, so the second task is still
     queued when we cancel it *)
  E.Pool.with_pool ~domains:1 (fun pool ->
      let gate = Atomic.make false in
      let blocker =
        E.Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            1)
      in
      let doomed = E.Pool.submit pool (fun () -> 2) in
      E.Pool.cancel doomed;
      Atomic.set gate true;
      Alcotest.(check int) "blocker" 1 (E.Pool.await blocker);
      (match E.Pool.await doomed with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception E.Pool.Cancelled -> ());
      Alcotest.(check bool) "cancelled is done" true (E.Pool.is_done doomed))

let test_pool_cooperative_cancel () =
  E.Pool.with_pool ~domains:1 (fun pool ->
      let started = Atomic.make false in
      let f =
        E.Pool.submit_poll pool (fun ~poll ->
            Atomic.set started true;
            while not (poll ()) do
              Domain.cpu_relax ()
            done;
            "wound down")
      in
      while not (Atomic.get started) do
        Domain.cpu_relax ()
      done;
      E.Pool.cancel f;
      (* a running task that observes the request and returns normally
         still delivers its value *)
      Alcotest.(check string) "observed poll" "wound down" (E.Pool.await f))

let test_pool_nested_map () =
  (* a pooled task that itself maps on the same pool: help-first await
     must keep this deadlock-free even with every worker busy *)
  E.Pool.with_pool ~domains:2 (fun pool ->
      let outer =
        (* min_work:0 forces pool dispatch even for these small fan-outs:
           the point here is deadlock-freedom, not speed *)
        E.Parallel.init ~pool ~min_work:0 6 (fun i ->
            let inner =
              E.Parallel.map ~pool ~min_work:0 (fun x -> x * x)
                (Array.init 40 (fun j -> i + j))
            in
            Array.fold_left ( + ) 0 inner)
      in
      let expected =
        Array.init 6 (fun i ->
            Array.fold_left ( + ) 0
              (Array.map (fun x -> x * x) (Array.init 40 (fun j -> i + j))))
      in
      Alcotest.(check (array int)) "nested" expected outer)

let test_pool_shutdown_idempotent () =
  let pool = E.Pool.create ~domains:2 () in
  let f = E.Pool.submit pool (fun () -> 7) in
  E.Pool.shutdown pool;
  E.Pool.shutdown pool;
  (* already-queued work completed before the workers stopped *)
  Alcotest.(check int) "queued task ran" 7 (E.Pool.await f);
  match E.Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                                *)
(* ------------------------------------------------------------------ *)

let noisy_float k = sin (float_of_int k) *. sqrt (float_of_int (k + 1))

let test_parallel_map_matches_serial () =
  let input = Array.init 1003 (fun k -> k) in
  let serial = Array.map noisy_float input in
  E.Pool.with_pool ~domains:test_jobs (fun pool ->
      let parallel = E.Parallel.map ~pool noisy_float input in
      Alcotest.(check bool) "bit-identical map" true (serial = parallel);
      let serial_l = List.map noisy_float (Array.to_list input) in
      let parallel_l = E.Parallel.map_list ~pool noisy_float (Array.to_list input) in
      Alcotest.(check bool) "bit-identical map_list" true (serial_l = parallel_l))

let test_parallel_reduce_matches_serial () =
  (* floating-point sum: only deterministic if the fold order is the
     serial one — this is the contract the POP averaging relies on *)
  let input = Array.init 997 (fun k -> k) in
  let serial =
    Array.fold_left (fun acc k -> acc +. noisy_float k) 0. input
  in
  E.Pool.with_pool ~domains:test_jobs (fun pool ->
      let parallel =
        E.Parallel.reduce ~pool ~map:noisy_float ~fold:( +. ) ~init:0. input
      in
      Alcotest.(check bool) "bit-identical sum" true (serial = parallel))

let test_parallel_min_work_serial () =
  (* a small fan-out of cheap items falls under the min-work threshold:
     every element must be evaluated on the calling domain *)
  E.Pool.with_pool ~domains:4 (fun pool ->
      let self = Domain.self () in
      let doms =
        E.Parallel.map ~pool (fun _ -> Domain.self ()) (Array.init 10 Fun.id)
      in
      Alcotest.(check bool) "small fan-out stays on caller" true
        (Array.for_all (fun d -> d = self) doms);
      (* a declared per-item cost pushes the same fan-out over the
         threshold: results are still the serial ones *)
      let sq =
        E.Parallel.map ~pool ~cost:E.Parallel.default_min_work
          (fun x -> x * x)
          (Array.init 10 Fun.id)
      in
      Alcotest.(check (array int)) "cost override still correct"
        (Array.init 10 (fun x -> x * x))
        sq)

let test_parallel_map_exception () =
  E.Pool.with_pool ~domains:4 (fun pool ->
      match
        E.Parallel.map ~pool
          (fun k -> if k = 500 then failwith "at 500" else k)
          (Array.init 1000 (fun k -> k))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> Alcotest.(check string) "message" "at 500" msg)

(* ------------------------------------------------------------------ *)
(* Incumbent store                                                     *)
(* ------------------------------------------------------------------ *)

let test_incumbent_monotone_concurrent () =
  let inc : int E.Incumbent.t = E.Incumbent.create () in
  let per_worker = 200 in
  let workers = 4 in
  E.Pool.with_pool ~domains:workers (fun pool ->
      let futures =
        List.init workers (fun w ->
            E.Pool.submit pool (fun () ->
                for i = 0 to per_worker - 1 do
                  (* interleaved increasing/decreasing proposals *)
                  let score = float_of_int ((i * workers) + w) in
                  ignore (E.Incumbent.propose inc (w * 1000) score);
                  ignore (E.Incumbent.propose inc (-1) (score /. 2.))
                done))
      in
      List.iter E.Pool.await futures);
  let max_score = float_of_int (((per_worker - 1) * workers) + workers - 1) in
  (match E.Incumbent.best inc with
  | None -> Alcotest.fail "no incumbent"
  | Some (_, s) -> check_float "best is max proposed" max_score s);
  check_float "best_score agrees" max_score (E.Incumbent.best_score inc);
  (* the trace is strictly increasing under any interleaving *)
  let trace = E.Incumbent.trace inc in
  let rec strictly_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "trace strictly increasing" true
    (strictly_increasing (List.map (fun x -> x) trace));
  let updates, proposals = E.Incumbent.stats inc in
  Alcotest.(check int) "all proposals counted" (2 * per_worker * workers)
    proposals;
  Alcotest.(check bool) "updates bounded" true
    (updates >= 1 && updates <= proposals);
  Alcotest.(check int) "trace length = updates" updates (List.length trace)

let test_incumbent_empty () =
  let inc : int E.Incumbent.t = E.Incumbent.create () in
  Alcotest.(check bool) "no best" true (E.Incumbent.best inc = None);
  Alcotest.(check bool) "neg_infinity" true
    (E.Incumbent.best_score inc = neg_infinity)

(* ------------------------------------------------------------------ *)
(* Portfolio runner                                                    *)
(* ------------------------------------------------------------------ *)

let strategy name scores =
  {
    E.Portfolio.name;
    run =
      (fun ~incumbent ~should_stop ->
        List.iter
          (fun s ->
            if not (should_stop ()) then
              ignore (E.Incumbent.propose incumbent name s))
          scores);
  }

let test_portfolio_race () =
  let incumbent = E.Incumbent.create () in
  let outcomes =
    E.Pool.with_pool ~domains:test_jobs (fun pool ->
        E.Portfolio.run ~pool ~incumbent
          [ strategy "low" [ 1.; 3.; 5. ]; strategy "high" [ 2.; 10. ] ])
  in
  check_float "best across strategies" 10. (E.Incumbent.best_score incumbent);
  Alcotest.(check int) "one outcome per strategy" 2 (List.length outcomes);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.E.Portfolio.name ^ " completed")
        true
        (o.E.Portfolio.status = E.Portfolio.Completed))
    outcomes

let test_portfolio_serial_early_exit () =
  let incumbent = E.Incumbent.create () in
  let ran_third = ref false in
  let outcomes =
    E.Portfolio.run ~stop_when:(fun s -> s >= 7.) ~incumbent
      [
        strategy "first" [ 2. ];
        strategy "second" [ 8. ];
        {
          E.Portfolio.name = "third";
          run = (fun ~incumbent:_ ~should_stop:_ -> ran_third := true);
        };
      ]
  in
  Alcotest.(check bool) "third skipped" false !ran_third;
  (match outcomes with
  | [ a; b; c ] ->
      Alcotest.(check bool) "first done" true (a.E.Portfolio.status = E.Portfolio.Completed);
      Alcotest.(check bool) "second done" true (b.E.Portfolio.status = E.Portfolio.Completed);
      Alcotest.(check bool) "third skipped status" true
        (c.E.Portfolio.status = E.Portfolio.Skipped)
  | _ -> Alcotest.fail "expected three outcomes");
  check_float "stopped at target" 8. (E.Incumbent.best_score incumbent)

let test_portfolio_failure_isolated () =
  let incumbent = E.Incumbent.create () in
  let outcomes =
    E.Pool.with_pool ~domains:2 (fun pool ->
        E.Portfolio.run ~pool ~incumbent
          [
            {
              E.Portfolio.name = "crash";
              run = (fun ~incumbent:_ ~should_stop:_ -> failwith "exploded");
            };
            strategy "survivor" [ 4. ];
          ])
  in
  (match outcomes with
  | [ crash; survivor ] ->
      (match crash.E.Portfolio.status with
      | E.Portfolio.Failed msg ->
          Alcotest.(check bool) "message captured" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected Failed");
      Alcotest.(check bool) "survivor completed" true
        (survivor.E.Portfolio.status = E.Portfolio.Completed)
  | _ -> Alcotest.fail "expected two outcomes");
  check_float "survivor's score kept" 4. (E.Incumbent.best_score incumbent)

(* ------------------------------------------------------------------ *)
(* Metaopt determinism: parallel oracle scoring == serial              *)
(* ------------------------------------------------------------------ *)

let b4_pathset () =
  let g = Topologies.b4 () in
  Pathset.compute (Demand.full_space g) ~k:2

let test_probe_scoring_deterministic () =
  let pathset = b4_pathset () in
  let g = Pathset.graph pathset in
  let threshold = 0.05 *. Graph.max_capacity g in
  let ev = Evaluate.make_dp pathset ~threshold in
  let candidates =
    Probes.dp_candidates pathset ~threshold ~demand_ub:(Graph.max_capacity g)
  in
  let serial =
    Probes.best_candidate ev ~constraints:Input_constraints.none candidates
  in
  let parallel =
    E.Pool.with_pool ~domains:test_jobs (fun pool ->
        Probes.best_candidate ~pool ev ~constraints:Input_constraints.none
          candidates)
  in
  match (serial, parallel) with
  | Some (ds, gs), Some (dp, gp) ->
      Alcotest.(check bool) "same winner demands" true (ds = dp);
      Alcotest.(check bool) "same winner gap (bit-identical)" true (gs = gp)
  | None, None -> Alcotest.fail "probing found nothing on B4"
  | _ -> Alcotest.fail "serial and parallel disagree on feasibility"

let test_pop_averaging_deterministic () =
  let pathset = b4_pathset () in
  let g = Pathset.graph pathset in
  let ev =
    Evaluate.make_pop pathset ~parts:2 ~instances:4 ~rng:(Rng.create 11) ()
  in
  let rng = Rng.create 42 in
  let demand =
    Demand.gravity (Pathset.space pathset) ~rng
      ~total:(0.5 *. Graph.total_capacity g)
  in
  let serial = Evaluate.heuristic_value ev demand in
  let parallel =
    E.Pool.with_pool ~domains:test_jobs (fun pool ->
        Evaluate.heuristic_value (Evaluate.with_pool ev (Some pool)) demand)
  in
  match (serial, parallel) with
  | Some s, Some p ->
      Alcotest.(check bool) "POP average bit-identical" true (s = p)
  | _ -> Alcotest.fail "POP heuristic infeasible on gravity demands"

let test_blackbox_batch_deterministic () =
  let pathset = b4_pathset () in
  let g = Pathset.graph pathset in
  let threshold = 0.05 *. Graph.max_capacity g in
  let ev = Evaluate.make_dp pathset ~threshold in
  let run pool =
    let options =
      {
        Blackbox.default_options with
        time_limit = 1e9;
        max_evaluations = 120;
        batch = 4;
        pool;
      }
    in
    Blackbox.hill_climb ev ~rng:(Rng.create 7) ~options ()
  in
  let serial = run None in
  let parallel =
    E.Pool.with_pool ~domains:test_jobs (fun pool -> run (Some pool))
  in
  Alcotest.(check bool) "same walk, same best gap" true
    (serial.Blackbox.gap = parallel.Blackbox.gap);
  Alcotest.(check bool) "same best demands" true
    (serial.Blackbox.demands = parallel.Blackbox.demands);
  Alcotest.(check int) "same evaluation count" serial.Blackbox.evaluations
    parallel.Blackbox.evaluations

(* ------------------------------------------------------------------ *)
(* Smoke: end-to-end fig1 anchor under REPRO_TEST_JOBS                 *)
(* ------------------------------------------------------------------ *)

let fig1_ev () =
  let g = Topologies.fig1 () in
  let pathset = Pathset.compute (Demand.full_space g) ~k:2 in
  Evaluate.make_dp pathset ~threshold:50.

let test_smoke_whitebox_jobs () =
  let ev = fig1_ev () in
  let options = { Adversary.default_options with jobs = test_jobs } in
  let r = Adversary.find ev ~options () in
  Alcotest.(check (float 0.5)) "fig1 gap 100" 100. r.Adversary.gap;
  let verified = Option.get (Evaluate.gap ev r.Adversary.demands) in
  Alcotest.(check (float 1e-5)) "witness verified" r.Adversary.gap verified

let test_smoke_portfolio_jobs () =
  let ev = fig1_ev () in
  let options =
    {
      Adversary.default_options with
      jobs = test_jobs;
      search =
        Adversary.Portfolio
          {
            Adversary.blackbox_seeds = [ 1 ];
            blackbox_time = 0.5;
            sweep_probes = 0;
            target_gap = Some 100.;
          };
      bb =
        {
          Adversary.default_options.Adversary.bb with
          Repro_lp.Branch_bound.time_limit = 10.;
          stall_time = 3.;
        };
    }
  in
  let r = Adversary.find ev ~options () in
  Alcotest.(check (float 0.5)) "portfolio reaches fig1 gap 100" 100.
    r.Adversary.gap;
  let verified = Option.get (Evaluate.gap ev r.Adversary.demands) in
  Alcotest.(check (float 1e-5)) "witness verified" r.Adversary.gap verified;
  (* the trace comes from the shared store: strictly increasing *)
  let rec strictly_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "incumbent trace strictly increasing" true
    (strictly_increasing r.Adversary.trace)

let () =
  Alcotest.run "engine"
    [
      ( "chunks",
        [
          Alcotest.test_case "cover and balance" `Quick test_chunks_cover;
          Alcotest.test_case "empty" `Quick test_chunks_empty;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "passive await" `Quick test_pool_await_passive;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "cancel pending" `Quick test_pool_cancel_pending;
          Alcotest.test_case "cooperative cancel" `Quick
            test_pool_cooperative_cancel;
          Alcotest.test_case "nested map" `Quick test_pool_nested_map;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map matches serial" `Quick
            test_parallel_map_matches_serial;
          Alcotest.test_case "reduce matches serial" `Quick
            test_parallel_reduce_matches_serial;
          Alcotest.test_case "min-work serial fallback" `Quick
            test_parallel_min_work_serial;
          Alcotest.test_case "exception" `Quick test_parallel_map_exception;
        ] );
      ( "incumbent",
        [
          Alcotest.test_case "concurrent monotonicity" `Quick
            test_incumbent_monotone_concurrent;
          Alcotest.test_case "empty" `Quick test_incumbent_empty;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "race" `Quick test_portfolio_race;
          Alcotest.test_case "serial early exit" `Quick
            test_portfolio_serial_early_exit;
          Alcotest.test_case "failure isolated" `Quick
            test_portfolio_failure_isolated;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "probe scoring" `Quick
            test_probe_scoring_deterministic;
          Alcotest.test_case "pop averaging" `Quick
            test_pop_averaging_deterministic;
          Alcotest.test_case "blackbox batch" `Quick
            test_blackbox_batch_deterministic;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "whitebox fig1" `Quick test_smoke_whitebox_jobs;
          Alcotest.test_case "portfolio fig1" `Quick test_smoke_portfolio_jobs;
        ] );
    ]
