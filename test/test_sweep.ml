(* lib/sweep: the batched scenario-sweep engine and the LP layer's
   RHS-only re-solve fast path underneath it.

   - qcheck differential: for random bounded LPs and random RHS edits,
     [Backend.resolve_rhs] (ftran-only when the basis survives, dual
     simplex otherwise) must agree with a cold solve of the edited
     model — status, objective and duals — on BOTH backends;
   - a known-answer case forcing each path (pure ftran vs dual
     fallback), checked through [Simplex.stats];
   - sweep equivalence: every scenario's shared-basis OPT/heuristic
     value matches the rebuild oracle ([Evaluate]) on the same demand;
   - determinism: jobs=1 and jobs=4 produce bit-identical results;
   - degradation: a pivot budget or an injected chunk fault yields a
     [`Partial] sweep with every completed scenario flushed to JSONL. *)

open Repro_lp
open Repro_topology
open Repro_te
module Sweep = Repro_sweep.Scenario_sweep
module Plan = Repro_sweep.Plan
module Evaluate = Repro_metaopt.Evaluate
module Deadline = Repro_resilience.Deadline
module Outcome = Repro_resilience.Outcome
module Faults = Repro_resilience.Faults

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* resolve_rhs: known-answer paths                                     *)
(* ------------------------------------------------------------------ *)

let small_lp () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12 *)
  let m = Model.create () in
  let x = Model.add_var ~name:"x" m in
  let y = Model.add_var ~name:"y" m in
  let r0 =
    Model.add_constr m (Linexpr.of_terms [ (x, 1.); (y, 1.) ]) Model.Le 4.
  in
  let r1 =
    Model.add_constr m (Linexpr.of_terms [ (x, 1.); (y, 3.) ]) Model.Le 6.
  in
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (x, 3.); (y, 2.) ]);
  (m, r0, r1)

let test_resolve_rhs_paths kind () =
  let model, r0, r1 = small_lp () in
  let be = Backend.create ~kind (Standard_form.of_model model) in
  let r = Backend.solve_fresh be in
  check_float "fresh objective" 12. r.Simplex.objective;
  (* relaxing the slack row leaves the basis primal feasible: the
     re-solve is a zero-pivot ftran check *)
  Backend.set_rhs be r1 8.;
  let r = Backend.resolve_rhs be in
  Alcotest.(check bool) "ftran optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "objective unchanged" 12. r.Simplex.objective;
  let s = Backend.stats be in
  Alcotest.(check int) "one ftran-only re-solve" 1 s.Simplex.rhs_ftran;
  Alcotest.(check int) "no dual fallback yet" 0 s.Simplex.rhs_dual;
  (* shrinking the slack row below x's basic value drives its slack
     negative (s1 = 3 - 4), forcing the dual-simplex fallback;
     x + 3y <= 3 -> x=3, y=0, obj 9 *)
  Backend.set_rhs be r1 3.;
  let r = Backend.resolve_rhs be in
  Alcotest.(check bool) "dual optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "re-optimized objective" 9. r.Simplex.objective;
  check_float "x" 3. r.Simplex.primal.(0);
  let s = Backend.stats be in
  Alcotest.(check int) "dual fallback counted" 1 s.Simplex.rhs_dual;
  (* get_rhs reads back the per-state copy; untouched rows keep the
     standard form's value *)
  check_float "get_rhs edited" 3. (Backend.get_rhs be r1);
  check_float "get_rhs untouched" 4. (Backend.get_rhs be r0)

(* ------------------------------------------------------------------ *)
(* resolve_rhs: qcheck differential vs cold solves                     *)
(* ------------------------------------------------------------------ *)

(* Random bounded LPs (mixed senses, general bounds) plus a few rounds
   of random RHS edits. Mirrors test_lp_backends' generator; the box
   rows keep every instance bounded, so a status change can only be
   Optimal <-> Infeasible. *)
let random_rhs_instance_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* m = int_range 1 6 in
    let* a = array_size (return (m * n)) (float_range (-5.) 5.) in
    let* senses = array_size (return m) (int_range 0 2) in
    let* b = array_size (return m) (float_range (-3.) 8.) in
    let* c = array_size (return n) (float_range (-5.) 5.) in
    let* lb = array_size (return n) (float_range (-4.) 0.) in
    let* ub = array_size (return n) (float_range 0.5 10.) in
    let* rounds = int_range 1 4 in
    let* deltas =
      array_size (return (rounds * m)) (float_range (-2.5) 2.5)
    in
    return (n, m, a, senses, b, c, lb, ub, rounds, deltas))

let build_rhs_lp (n, m, a, senses, b, c, lb, ub, _, _) =
  let model = Model.create () in
  let xs = Array.init n (fun j -> Model.add_var ~lb:lb.(j) ~ub:ub.(j) model) in
  let rows =
    Array.init m (fun i ->
        let expr =
          Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
        in
        let sense =
          match senses.(i) with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq
        in
        Model.add_constr model expr sense b.(i))
  in
  ignore
    (Model.add_constr model
       (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))))
       Model.Le 200.);
  ignore
    (Model.add_constr model
       (Linexpr.of_terms (List.init n (fun j -> (xs.(j), -1.))))
       Model.Le 200.);
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
  (model, rows)

let rhs_resolve_matches_cold kind =
  QCheck.Test.make ~count:200
    ~name:
      (Printf.sprintf "resolve_rhs matches cold solves (%s backend)"
         (Backend.kind_to_string kind))
    (QCheck.make random_rhs_instance_gen)
    (fun ((_, m, _, _, b, _, _, _, rounds, deltas) as inst) ->
      let model, rows = build_rhs_lp inst in
      let warm = Backend.create ~kind (Standard_form.of_model model) in
      ignore (Backend.solve_fresh warm);
      for round = 0 to rounds - 1 do
        (* one warm path: edit the live state's RHS and resolve_rhs;
           one cold path: edit the model and rebuild from scratch *)
        for i = 0 to m - 1 do
          let rhs = b.(i) +. deltas.((round * m) + i) in
          Backend.set_rhs warm rows.(i) rhs;
          Model.set_constr_rhs model rows.(i) rhs
        done;
        let w = Backend.resolve_rhs warm in
        let cold = Backend.create ~kind (Standard_form.of_model model) in
        let c = Backend.solve_fresh cold in
        if w.Simplex.status <> c.Simplex.status then
          QCheck.Test.fail_reportf "round %d: status warm %s cold %s" round
            (Fmt.str "%a" Simplex.pp_status w.Simplex.status)
            (Fmt.str "%a" Simplex.pp_status c.Simplex.status);
        match w.Simplex.status with
        | Simplex.Optimal ->
            let close what k a b =
              if Float.abs (a -. b) > 1e-6 *. (1. +. Float.abs a) then
                QCheck.Test.fail_reportf "round %d: %s %d: warm %.12g cold %.12g"
                  round what k a b
            in
            close "objective" 0 w.Simplex.objective c.Simplex.objective;
            Array.iteri (fun i v -> close "dual" i v w.Simplex.duals.(i))
              c.Simplex.duals;
            let v = Model.max_violation model w.Simplex.primal in
            if v > 1e-5 then
              QCheck.Test.fail_reportf "round %d: warm primal infeasible: %.3g"
                round v
        | _ -> ()
      done;
      true)

(* ------------------------------------------------------------------ *)
(* resolve_rhs_batch: qcheck differential vs scalar resolve_rhs        *)
(* ------------------------------------------------------------------ *)

(* The batched kernel's contract is bitwise: handing K RHS vectors to
   one [resolve_rhs_batch] call must reproduce K sequential
   [resolve_rhs] calls exactly — statuses, objectives, duals, primal —
   on both backends. Reuses the RHS-edit generator; each round becomes
   one batch column. *)
let rhs_batch_matches_scalar kind =
  QCheck.Test.make ~count:200
    ~name:
      (Printf.sprintf "resolve_rhs_batch == scalar resolve_rhs (%s backend)"
         (Backend.kind_to_string kind))
    (QCheck.make random_rhs_instance_gen)
    (fun ((_, m, _, _, b, _, _, _, rounds, deltas) as inst) ->
      let model, rows = build_rhs_lp inst in
      let sf = Standard_form.of_model model in
      let scalar = Backend.create ~kind sf in
      let batch = Backend.create ~kind sf in
      ignore (Backend.solve_fresh scalar);
      ignore (Backend.solve_fresh batch);
      let nrows = Backend.num_rows batch in
      let base = Array.init nrows (Backend.get_rhs batch) in
      let vecs =
        Array.init rounds (fun r ->
            let v = Array.copy base in
            for i = 0 to m - 1 do
              v.(rows.(i)) <- b.(i) +. deltas.((r * m) + i)
            done;
            v)
      in
      let bsols = Backend.resolve_rhs_batch batch vecs in
      if Array.length bsols <> rounds then
        QCheck.Test.fail_reportf "batch returned %d of %d solutions"
          (Array.length bsols) rounds;
      Array.iteri
        (fun r v ->
          for i = 0 to m - 1 do
            Backend.set_rhs scalar rows.(i) v.(rows.(i))
          done;
          let s = Backend.resolve_rhs scalar in
          let bsol = bsols.(r) in
          if s.Simplex.status <> bsol.Simplex.status then
            QCheck.Test.fail_reportf "column %d: status scalar %s batch %s" r
              (Fmt.str "%a" Simplex.pp_status s.Simplex.status)
              (Fmt.str "%a" Simplex.pp_status bsol.Simplex.status);
          let same what k a b =
            if Int64.bits_of_float a <> Int64.bits_of_float b then
              QCheck.Test.fail_reportf
                "column %d: %s %d: scalar %.17g batch %.17g" r what k a b
          in
          match s.Simplex.status with
          | Simplex.Optimal ->
              same "objective" 0 s.Simplex.objective bsol.Simplex.objective;
              Array.iteri
                (fun i d -> same "dual" i d bsol.Simplex.duals.(i))
                s.Simplex.duals;
              Array.iteri
                (fun j p -> same "primal" j p bsol.Simplex.primal.(j))
                s.Simplex.primal
          | _ -> ())
        vecs;
      true)

(* Known-answer batch with a forced dual-fallback peel in the middle:
   column 0 keeps the basis primal feasible (pure ftran), column 1
   shrinks the slack row below the basic value (dual fallback peel),
   column 2 restores it — exercising a restart after the peel. *)
let test_rhs_batch_peel kind () =
  let model, _r0, r1 = small_lp () in
  let be = Backend.create ~kind (Standard_form.of_model model) in
  let r = Backend.solve_fresh be in
  check_float "fresh objective" 12. r.Simplex.objective;
  let nrows = Backend.num_rows be in
  let base = Array.init nrows (Backend.get_rhs be) in
  let vec rhs1 =
    let v = Array.copy base in
    v.(r1) <- rhs1;
    v
  in
  let sols = Backend.resolve_rhs_batch be [| vec 8.; vec 3.; vec 8. |] in
  Alcotest.(check int) "three solutions" 3 (Array.length sols);
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        "optimal" true
        (s.Simplex.status = Simplex.Optimal))
    sols;
  check_float "relaxed column rides the basis" 12. sols.(0).Simplex.objective;
  check_float "tightened column re-optimizes" 9. sols.(1).Simplex.objective;
  check_float "restored column recovers" 12. sols.(2).Simplex.objective;
  let s = Backend.stats be in
  Alcotest.(check bool) "batched kernel ran" true (s.Simplex.rhs_batch >= 1);
  Alcotest.(check bool) "fast-path column counted" true
    (s.Simplex.rhs_batch_cols >= 1);
  Alcotest.(check bool) "peel counted" true (s.Simplex.rhs_peeled >= 1);
  Alcotest.(check bool) "peel took the dual fallback" true
    (s.Simplex.rhs_dual >= 1)

(* ------------------------------------------------------------------ *)
(* sweep: equivalence with the rebuild oracle                          *)
(* ------------------------------------------------------------------ *)

let abilene_pathset () =
  let g = Topologies.abilene () in
  (g, Pathset.compute (Demand.full_space g) ~k:2)

let test_plan () =
  let g, pathset = abilene_pathset () in
  let maxcap = Graph.max_capacity g in
  ( pathset,
    Plan.grid
      ~space:(Pathset.space pathset)
      ~generator:(Plan.Gravity { total = 0.4 *. Graph.total_capacity g })
      ~thresholds:[| 0.02 *. maxcap; 0.1 *. maxcap; 0.5 *. maxcap |]
      ~scales:[| 0.5; 1.5 |]
      ~seeds:[| 1; 2; 3 |]
      ~perturbs:
        [| None; Some { Plan.pseed = 0; fraction = 0.3; level = 0.9 } |]
      () )

let sweep_options jobs =
  {
    Sweep.jobs;
    chunk = 5;
    backend = None;
    mode = Sweep.Shared_basis;
    deadline = None;
    cache = None;
    jsonl = None;
    batch_rhs = false;
    basis_store = None;
  }

let test_sweep_matches_evaluate () =
  let pathset, plan = test_plan () in
  let r = Sweep.run ~options:(sweep_options 1) ~paths:2 pathset plan in
  Alcotest.(check int) "all completed" (Plan.num_scenarios plan)
    r.Sweep.completed;
  Alcotest.(check bool) "outcome complete" true (r.Sweep.outcome = `Complete);
  Array.iter
    (function
      | None -> Alcotest.fail "scenario missing"
      | Some sr ->
          let s = sr.Sweep.scenario in
          let d = Plan.demand plan s in
          let ev =
            Evaluate.make_dp pathset ~threshold:s.Plan.threshold
          in
          check_float
            (Fmt.str "opt of %a" Plan.pp_scenario s)
            (Evaluate.opt_value ev d) sr.Sweep.opt;
          (match (Evaluate.heuristic_value ev d, sr.Sweep.heur) with
          | None, None -> ()
          | Some hv, Some h ->
              check_float (Fmt.str "heur of %a" Plan.pp_scenario s) hv h
          | None, Some _ | Some _, None ->
              Alcotest.failf "heuristic feasibility differs at %a"
                Plan.pp_scenario s))
    r.Sweep.results;
  (* the fast path actually engaged: consecutive same-demand scenarios
     re-solve OPT by ftran only *)
  Alcotest.(check bool) "ftran path used" true
    (r.Sweep.lp_stats.Simplex.rhs_ftran > 0)

let result_key = function
  | None -> "skipped"
  | Some sr ->
      Printf.sprintf "%Lx:%s"
        (Int64.bits_of_float sr.Sweep.opt)
        (match sr.Sweep.heur with
        | None -> "inf"
        | Some h -> Printf.sprintf "%Lx" (Int64.bits_of_float h))

let test_sweep_jobs_deterministic () =
  let pathset, plan = test_plan () in
  let serial = Sweep.run ~options:(sweep_options 1) ~paths:2 pathset plan in
  let par = Sweep.run ~options:(sweep_options 4) ~paths:2 pathset plan in
  Alcotest.(check int) "parallel completed" serial.Sweep.completed
    par.Sweep.completed;
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "scenario %d bit-identical" i)
        (result_key a) (result_key par.Sweep.results.(i)))
    serial.Sweep.results

(* --batch-rhs is a pure kernel swap: cacheless sweeps with the toggle
   on and off must agree bitwise, scenario by scenario, and the batched
   run must actually have used the batched kernel *)
let test_sweep_batch_toggle_deterministic () =
  let pathset, plan = test_plan () in
  let scalar = Sweep.run ~options:(sweep_options 1) ~paths:2 pathset plan in
  let batched =
    Sweep.run
      ~options:{ (sweep_options 1) with Sweep.batch_rhs = true }
      ~paths:2 pathset plan
  in
  Alcotest.(check int) "batched completed" scalar.Sweep.completed
    batched.Sweep.completed;
  Alcotest.(check bool) "batched kernel engaged" true
    (batched.Sweep.lp_stats.Simplex.rhs_batch > 0);
  Alcotest.(check int) "scalar ran no batches" 0
    scalar.Sweep.lp_stats.Simplex.rhs_batch;
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "scenario %d bit-identical across toggle" i)
        (result_key a)
        (result_key batched.Sweep.results.(i)))
    scalar.Sweep.results

(* cross-sweep snapshot store: a cold sweep publishes its final bases to
   the journal; a second sweep over a fresh store replayed from the same
   journal warm-starts from them and must agree bitwise *)
let test_sweep_basis_store_round_trip () =
  let pathset, plan = test_plan () in
  let path = Filename.temp_file "repro-basis-test" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let run store =
        Sweep.run
          ~options:
            {
              (sweep_options 1) with
              Sweep.batch_rhs = true;
              basis_store = Some store;
            }
          ~paths:2 pathset plan
      in
      let store = Repro_serve.Basis_store.create () in
      (match Repro_serve.Basis_store.with_journal store ~path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "journal attach: %s" e);
      let cold = run store in
      Alcotest.(check int) "cold run found nothing to install" 0
        cold.Sweep.basis_warm_hits;
      (* per-chunk keying stores an (opt, heur) pair for every chunk,
         plus the sweep-final pair under the role-only keys *)
      let st = Repro_serve.Basis_store.stats store in
      Alcotest.(check bool) "chunk pairs and sweep-final pair published" true
        (st.Repro_serve.Basis_store.stores >= 4
        && st.Repro_serve.Basis_store.stores mod 2 = 0);
      Repro_serve.Basis_store.close store;
      let store2 = Repro_serve.Basis_store.create () in
      (match Repro_serve.Basis_store.with_journal store2 ~path with
      | Ok replayed ->
          Alcotest.(check bool) "journal replayed entries" true (replayed > 0)
      | Error e -> Alcotest.failf "journal replay: %s" e);
      let warm = run store2 in
      Repro_serve.Basis_store.close store2;
      Alcotest.(check bool) "warm run installed snapshots" true
        (warm.Sweep.basis_warm_hits > 0);
      (* warm-starting changes the pivot path, so cold and warm agree
         to LP tolerance, not bitwise (only the jobs and --batch-rhs
         toggles carry the bitwise guarantee) *)
      Array.iteri
        (fun i a ->
          match (a, warm.Sweep.results.(i)) with
          | Some c, Some w ->
              check_float (Printf.sprintf "scenario %d opt cold vs warm" i)
                c.Sweep.opt w.Sweep.opt;
              (match (c.Sweep.heur, w.Sweep.heur) with
              | None, None -> ()
              | Some ch, Some wh ->
                  check_float
                    (Printf.sprintf "scenario %d heur cold vs warm" i)
                    ch wh
              | _ ->
                  Alcotest.failf
                    "scenario %d: heuristic feasibility differs" i)
          | _ -> Alcotest.failf "scenario %d missing" i)
        cold.Sweep.results)

let test_sweep_cache_hits () =
  let pathset, plan = test_plan () in
  let cache = Repro_serve.Solve_cache.create () in
  let options cache = { (sweep_options 1) with Sweep.cache } in
  let first = Sweep.run ~options:(options (Some cache)) ~paths:2 pathset plan in
  (* first run: opt values repeat across thresholds but every (demand,
     threshold) pair is new, so no scenario is answered entirely from
     the cache *)
  Alcotest.(check int) "first run solves every scenario" 0
    first.Sweep.from_cache;
  let r = Sweep.run ~options:(options (Some cache)) ~paths:2 pathset plan in
  Alcotest.(check bool) "warm re-run all cached" true
    (Array.for_all
       (function
         | Some sr -> sr.Sweep.cached_opt && sr.Sweep.cached_heur
         | None -> false)
       r.Sweep.results);
  Alcotest.(check int) "warm re-run counted as cache-served"
    r.Sweep.completed r.Sweep.from_cache;
  (* cached values agree with a cacheless run (to tolerance, not
     bitwise: a cached OPT may have been computed at a different
     warm-start point since the cache is shared across thresholds) *)
  let cold = Sweep.run ~options:(sweep_options 1) ~paths:2 pathset plan in
  Array.iteri
    (fun i a ->
      match (a, r.Sweep.results.(i)) with
      | Some c, Some w ->
          check_float
            (Printf.sprintf "cached scenario %d opt" i)
            c.Sweep.opt w.Sweep.opt;
          (match (c.Sweep.heur, w.Sweep.heur) with
          | None, None -> ()
          | Some ch, Some wh ->
              check_float (Printf.sprintf "cached scenario %d heur" i) ch wh
          | _ ->
              Alcotest.failf "scenario %d: heuristic feasibility differs" i)
      | _ -> Alcotest.failf "scenario %d missing" i)
    cold.Sweep.results

(* ------------------------------------------------------------------ *)
(* sweep: degradation (deadline, chunk faults) + JSONL streaming       *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let with_temp_jsonl f =
  let path = Filename.temp_file "repro-sweep-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_sweep_deadline_partial () =
  let pathset, plan = test_plan () in
  with_temp_jsonl (fun path ->
      (* a pivot budget big enough to finish the first scenarios and far
         too small for all 36: the sweep must degrade, not die *)
      let deadline = Deadline.create ~pivots:400 () in
      let options =
        {
          (sweep_options 1) with
          Sweep.deadline = Some deadline;
          jsonl = Some path;
        }
      in
      let r = Sweep.run ~options ~paths:2 pathset plan in
      Alcotest.(check bool) "some scenarios completed" true
        (r.Sweep.completed > 0);
      Alcotest.(check bool) "some scenarios skipped" true (r.Sweep.skipped > 0);
      (match r.Sweep.outcome with
      | `Partial Outcome.Pivot_budget -> ()
      | `Partial reason ->
          Alcotest.failf "wrong partial reason: %s"
            (Outcome.reason_to_string reason)
      | `Complete -> Alcotest.fail "budgeted sweep reported complete");
      Alcotest.(check int) "every completed scenario flushed to JSONL"
        r.Sweep.completed (count_lines path))

let test_sweep_chunk_fault_partial () =
  let pathset, plan = test_plan () in
  with_temp_jsonl (fun path ->
      Fun.protect ~finally:Faults.disarm (fun () ->
          (* kill exactly one chunk; the other chunks must still land *)
          Faults.arm ~seed:7
            ~points:[ ("sweep_chunk", { Faults.prob = 1.; limit = Some 1 }) ];
          let options =
            { (sweep_options 1) with Sweep.jsonl = Some path }
          in
          let r = Sweep.run ~options ~paths:2 pathset plan in
          let n = Plan.num_scenarios plan in
          Alcotest.(check int) "one chunk of 5 lost" (n - 5) r.Sweep.completed;
          (match r.Sweep.outcome with
          | `Partial (Outcome.Worker_lost 1) -> ()
          | _ -> Alcotest.fail "expected Worker_lost 1 partial outcome");
          Alcotest.(check int) "surviving chunks flushed" r.Sweep.completed
            (count_lines path)))

(* the --verbose counters line: every fast-path and presolve field must
   appear by name with its value (CI greps for them) *)
let test_verbose_stats_line () =
  let s =
    {
      Simplex.iterations = 9;
      refactorizations = 2;
      etas = 7;
      warm_hits = 4;
      warm_misses = 1;
      rhs_ftran = 11;
      rhs_dual = 3;
      rhs_batch = 7;
      rhs_batch_cols = 10;
      rhs_peeled = 1;
      presolve_rows = 5;
      presolve_cols = 6;
      cuts_added = 8;
      cuts_active = 2;
      bounds_tightened = 13;
    }
  in
  let line = Sweep.verbose_stats_line s in
  let contains needle =
    let n = String.length needle and h = String.length line in
    let rec go i = i + n <= h && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun field ->
      if not (contains field) then
        Alcotest.failf "field %S missing from %S" field line)
    [
      "rhs_ftran=11"; "rhs_dual=3"; "rhs_batch=7"; "rhs_batch_cols=10";
      "rhs_peeled=1"; "refactorizations=2"; "etas=7";
      "warm_hits=4"; "warm_misses=1"; "presolve_rows=5"; "presolve_cols=6";
      "cuts_added=8"; "cuts_active=2"; "bounds_tightened=13";
    ]

(* ------------------------------------------------------------------ *)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "repro_sweep"
    [
      ( "resolve_rhs",
        [
          Alcotest.test_case "known-answer paths (sparse)" `Quick
            (test_resolve_rhs_paths Backend.Sparse);
          Alcotest.test_case "known-answer paths (dense)" `Quick
            (test_resolve_rhs_paths Backend.Dense);
        ] );
      qsuite "resolve_rhs_differential"
        [
          rhs_resolve_matches_cold Backend.Sparse;
          rhs_resolve_matches_cold Backend.Dense;
        ];
      ( "resolve_rhs_batch",
        [
          Alcotest.test_case "dual-fallback peel (sparse)" `Quick
            (test_rhs_batch_peel Backend.Sparse);
          Alcotest.test_case "dual-fallback peel (dense)" `Quick
            (test_rhs_batch_peel Backend.Dense);
        ] );
      qsuite "resolve_rhs_batch_differential"
        [
          rhs_batch_matches_scalar Backend.Sparse;
          rhs_batch_matches_scalar Backend.Dense;
        ];
      ( "sweep",
        [
          Alcotest.test_case "matches the rebuild oracle" `Quick
            test_sweep_matches_evaluate;
          Alcotest.test_case "jobs=1 equals jobs=4 bitwise" `Quick
            test_sweep_jobs_deterministic;
          Alcotest.test_case "batch toggle is bit-identical" `Quick
            test_sweep_batch_toggle_deterministic;
          Alcotest.test_case "basis snapshot store round trip" `Quick
            test_sweep_basis_store_round_trip;
          Alcotest.test_case "solve cache round trip" `Quick
            test_sweep_cache_hits;
          Alcotest.test_case "pivot budget degrades to partial" `Quick
            test_sweep_deadline_partial;
          Alcotest.test_case "chunk fault degrades to partial" `Quick
            test_sweep_chunk_fault_partial;
          Alcotest.test_case "verbose stats line fields" `Quick
            test_verbose_stats_line;
        ] );
    ]
