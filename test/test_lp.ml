(* Tests for the LP/MILP solver substrate (Repro_lp). *)

open Repro_lp

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Linexpr                                                             *)
(* ------------------------------------------------------------------ *)

let test_linexpr_basic () =
  let e = Linexpr.(add (var ~coef:2. 0) (var ~coef:3. 1)) in
  check_float "coef x0" 2. (Linexpr.coef e 0);
  check_float "coef x1" 3. (Linexpr.coef e 1);
  check_float "coef x2" 0. (Linexpr.coef e 2);
  let e = Linexpr.add_term e 0 (-2.) in
  Alcotest.(check int) "x0 dropped" 1 (Linexpr.size e);
  check_float "eval" 6. (Linexpr.eval e (fun _ -> 2.))

let test_linexpr_alg () =
  let a = Linexpr.of_terms ~constant:1. [ (0, 1.); (1, -2.) ] in
  let b = Linexpr.of_terms ~constant:2. [ (1, 2.); (2, 5.) ] in
  let s = Linexpr.add a b in
  check_float "const" 3. (Linexpr.const_part s);
  check_float "x1 cancels" 0. (Linexpr.coef s 1);
  check_float "x2" 5. (Linexpr.coef s 2);
  let d = Linexpr.sub s s in
  Alcotest.(check bool) "self-sub is zero" true (Linexpr.equal d Linexpr.zero);
  let sc = Linexpr.scale (-2.) a in
  check_float "scaled const" (-2.) (Linexpr.const_part sc);
  check_float "scaled x1" 4. (Linexpr.coef sc 1)

let test_linexpr_sum_of_terms () =
  let e = Linexpr.of_terms [ (3, 1.); (3, 2.5); (1, -1.) ] in
  check_float "dup summed" 3.5 (Linexpr.coef e 3);
  check_float "other" (-1.) (Linexpr.coef e 1);
  Alcotest.(check int) "size" 2 (Linexpr.size e)

let test_linexpr_map_vars () =
  let e = Linexpr.of_terms [ (0, 1.); (1, 2.) ] in
  let m = Linexpr.map_vars (fun _ -> 7) e in
  check_float "merged coef" 3. (Linexpr.coef m 7);
  Alcotest.(check int) "one var" 1 (Linexpr.size m)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_build () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~ub:4. m in
  let y = Model.add_var ~name:"y" ~kind:Model.Binary m in
  let _c = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Le 3. in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  Alcotest.(check int) "vars" 2 (Model.num_vars m);
  Alcotest.(check int) "constrs" 1 (Model.num_constrs m);
  Alcotest.(check bool) "is mip" true (Model.is_mip m);
  check_float "binary ub" 1. (Model.var_ub m y);
  Alcotest.(check string) "name" "x" (Model.var_name m x)

let test_model_constant_folding () =
  let m = Model.create () in
  let x = Model.add_var m in
  (* x + 5 <= 8  ==>  x <= 3 *)
  let c = Model.add_constr m (Linexpr.of_terms ~constant:5. [ (x, 1.) ]) Model.Le 8. in
  check_float "rhs folded" 3. (Model.constr_rhs m c);
  check_float "no const left" 0. (Linexpr.const_part (Model.constr_expr m c))

let test_model_violation () =
  let m = Model.create () in
  let x = Model.add_var ~ub:2. m in
  let y = Model.add_var ~kind:Model.Binary m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Ge 1. in
  Model.add_sos1 m [ x; y ];
  check_float "feasible" 0. (Model.max_violation m [| 2.; 0. |]);
  Alcotest.(check bool) "sos violated" true (Model.max_violation m [| 1.; 1. |] > 0.5);
  Alcotest.(check bool) "int violated" true (Model.max_violation m [| 2.; 0.5 |] > 0.4);
  Alcotest.(check bool) "bound violated" true (Model.max_violation m [| 3.; 0. |] > 0.5)

(* ------------------------------------------------------------------ *)
(* Simplex: LP solving                                                 *)
(* ------------------------------------------------------------------ *)

let lp_status = Alcotest.testable (Fmt.of_to_string (function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration-limit")) ( = )

let test_lp_single_var () =
  let m = Model.create () in
  let x = Model.add_var m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Le 5. in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" 5. r.objective;
  check_float "x" 5. (Solver.value r x)

let test_lp_two_var () =
  (* max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6  -> (4, 0), obj 12 *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Le 4. in
  let _ = Model.add_constr m Linexpr.(add (var x) (var ~coef:3. y)) Model.Le 6. in
  Model.set_objective m Model.Maximize Linexpr.(add (var ~coef:3. x) (var ~coef:2. y));
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" 12. r.objective;
  check_float "x" 4. (Solver.value r x);
  check_float "y" 0. (Solver.value r y)

let test_lp_equality () =
  (* x + y = 10, 0 <= x <= 6, max x - y -> x=6, y=4 *)
  let m = Model.create () in
  let x = Model.add_var ~ub:6. m and y = Model.add_var m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Eq 10. in
  Model.set_objective m Model.Maximize Linexpr.(sub (var x) (var y));
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" 2. r.objective;
  check_float "x" 6. (Solver.value r x);
  check_float "y" 4. (Solver.value r y)

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Ge 3. in
  let _ = Model.add_constr m (Linexpr.var x) Model.Le 1. in
  Model.set_objective m Model.Minimize (Linexpr.var x);
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Infeasible r.status

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Ge 1. in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Unbounded r.status

let test_lp_free_var () =
  (* min x with x free, constraint x >= -5 *)
  let m = Model.create () in
  let x = Model.add_var ~lb:neg_infinity m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Ge (-5.) in
  Model.set_objective m Model.Minimize (Linexpr.var x);
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" (-5.) r.objective

let test_lp_var_bounds_only () =
  (* no constraints: min over box bounds *)
  let m = Model.create () in
  let x = Model.add_var ~lb:2. ~ub:7. m in
  let y = Model.add_var ~lb:(-3.) ~ub:1. m in
  Model.set_objective m Model.Minimize Linexpr.(add (var x) (var ~coef:2. y));
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" (-4.) r.objective;
  check_float "x" 2. (Solver.value r x);
  check_float "y" (-3.) (Solver.value r y)

let test_lp_negative_rhs () =
  (* -x <= -3  ==>  x >= 3; min x -> 3 *)
  let m = Model.create () in
  let x = Model.add_var m in
  let _ = Model.add_constr m (Linexpr.var ~coef:(-1.) x) Model.Le (-3.) in
  Model.set_objective m Model.Minimize (Linexpr.var x);
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" 3. r.objective

let test_lp_objective_constant () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1. m in
  Model.set_objective m Model.Maximize (Linexpr.of_terms ~constant:10. [ (x, 1.) ]);
  let r = Solver.solve_lp m in
  check_float "obj includes constant" 11. r.objective

let test_lp_degenerate () =
  (* classic degenerate LP: multiple constraints tight at optimum *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Le 1. in
  let _ = Model.add_constr m (Linexpr.var x) Model.Le 1. in
  let _ = Model.add_constr m (Linexpr.var y) Model.Le 1. in
  let _ = Model.add_constr m Linexpr.(add (var ~coef:2. x) (var y)) Model.Le 2. in
  Model.set_objective m Model.Maximize Linexpr.(add (var x) (var y)) ;
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" 1. r.objective

let test_lp_duals_le () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic example):
     optimum (2, 6) obj 36, duals (0, 1.5, 1). *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  let c1 = Model.add_constr m (Linexpr.var x) Model.Le 4. in
  let c2 = Model.add_constr m (Linexpr.var ~coef:2. y) Model.Le 12. in
  let c3 = Model.add_constr m Linexpr.(add (var ~coef:3. x) (var ~coef:2. y)) Model.Le 18. in
  Model.set_objective m Model.Maximize Linexpr.(add (var ~coef:3. x) (var ~coef:5. y));
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "status" Simplex.Optimal r.status;
  check_float "obj" 36. r.objective;
  check_float "x" 2. (Solver.value r x);
  check_float "y" 6. (Solver.value r y);
  check_float "dual c1" 0. r.duals.(c1);
  check_float "dual c2" 1.5 r.duals.(c2);
  check_float "dual c3" 1. r.duals.(c3)

let test_lp_resolve_after_bound_change () =
  (* warm restart with dual simplex after tightening a bound *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Le 10. in
  Model.set_objective m Model.Maximize Linexpr.(add (var ~coef:2. x) (var y));
  let sf = Standard_form.of_model m in
  let s = Simplex.create sf in
  let r1 = Simplex.solve_fresh s in
  check_float "initial obj" 20. r1.Simplex.objective;
  Simplex.set_bounds s x ~lb:0. ~ub:3.;
  let r2 = Simplex.resolve s in
  Alcotest.check lp_status "status" Simplex.Optimal r2.Simplex.status;
  check_float "after x<=3" 13. r2.Simplex.objective;
  (* relax the bound back *)
  Simplex.set_bounds s x ~lb:0. ~ub:infinity;
  let r3 = Simplex.resolve s in
  check_float "restored" 20. r3.Simplex.objective;
  (* fix x to zero (SOS1-style branching) *)
  Simplex.set_bounds s x ~lb:0. ~ub:0.;
  let r4 = Simplex.resolve s in
  check_float "x fixed 0" 10. r4.Simplex.objective

let test_lp_resolve_to_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Ge 5. in
  Model.set_objective m Model.Minimize (Linexpr.var x);
  let s = Simplex.create (Standard_form.of_model m) in
  let r1 = Simplex.solve_fresh s in
  check_float "obj" 5. r1.Simplex.objective;
  Simplex.set_bounds s x ~lb:0. ~ub:2.;
  let r2 = Simplex.resolve s in
  Alcotest.check lp_status "now infeasible" Simplex.Infeasible r2.Simplex.status

(* ------------------------------------------------------------------ *)
(* Branch and bound: MILP + SOS1                                       *)
(* ------------------------------------------------------------------ *)

let bb_outcome = Alcotest.testable (Fmt.of_to_string (function
  | Branch_bound.Optimal -> "optimal"
  | Branch_bound.Feasible -> "feasible"
  | Branch_bound.No_incumbent -> "no-incumbent"
  | Branch_bound.Infeasible -> "infeasible"
  | Branch_bound.Unbounded -> "unbounded")) ( = )

let test_milp_knapsack () =
  (* max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binary -> 21 *)
  let m = Model.create () in
  let vs = Model.add_vars ~kind:Model.Binary m 4 in
  let profits = [| 8.; 11.; 6.; 4. |] and weights = [| 5.; 7.; 4.; 3. |] in
  let expr coefs = Linexpr.of_terms (Array.to_list (Array.mapi (fun i v -> (v, coefs.(i))) vs)) in
  let _ = Model.add_constr m (expr weights) Model.Le 14. in
  Model.set_objective m Model.Maximize (expr profits);
  let r = Solver.solve m in
  Alcotest.check bb_outcome "outcome" Branch_bound.Optimal r.Branch_bound.outcome;
  check_float "obj" 21. r.Branch_bound.objective;
  match r.Branch_bound.primal with
  | None -> Alcotest.fail "no primal"
  | Some x ->
      check_float "a" 0. x.(vs.(0));
      check_float "b" 1. x.(vs.(1));
      check_float "c" 1. x.(vs.(2));
      check_float "d" 1. x.(vs.(3))

let test_milp_integer_rounding () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Le 3.7 in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let r = Solver.solve m in
  check_float "floor" 3. r.Branch_bound.objective

let test_milp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Binary m in
  let _ = Model.add_constr m (Linexpr.var ~coef:2. x) Model.Eq 1. in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let r = Solver.solve m in
  Alcotest.check bb_outcome "outcome" Branch_bound.Infeasible r.Branch_bound.outcome

let test_sos1_pick_best () =
  (* max x + y, x <= 4, y <= 3, SOS1(x, y) -> 4 *)
  let m = Model.create () in
  let x = Model.add_var ~ub:4. m and y = Model.add_var ~ub:3. m in
  Model.add_sos1 m [ x; y ];
  Model.set_objective m Model.Maximize Linexpr.(add (var x) (var y));
  let r = Solver.solve m in
  Alcotest.check bb_outcome "outcome" Branch_bound.Optimal r.Branch_bound.outcome;
  check_float "obj" 4. r.Branch_bound.objective

let test_sos1_forced_choice () =
  (* min x + 2y, x + y >= 2, SOS1(x, y) -> x = 2, obj 2 *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Ge 2. in
  Model.add_sos1 m [ x; y ];
  Model.set_objective m Model.Minimize Linexpr.(add (var x) (var ~coef:2. y));
  let r = Solver.solve m in
  check_float "obj" 2. r.Branch_bound.objective

let test_sos1_triple () =
  (* three-member SOS1: max x+y+z, each <= ub, only one may be nonzero *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1. m
  and y = Model.add_var ~ub:5. m
  and z = Model.add_var ~ub:3. m in
  Model.add_sos1 m [ x; y; z ];
  Model.set_objective m Model.Maximize Linexpr.(sum [ var x; var y; var z ]);
  let r = Solver.solve m in
  check_float "obj" 5. r.Branch_bound.objective

let test_milp_mixed_int_sos () =
  (* binary b, continuous x,y with SOS1(x,y):
     max 3b + x + y, x <= 2 + 2b, y <= 3 - 3b  -> b=1: x<=4, y<=0: 3+4=7
                                                   b=0: max(2,3)=3 -> 7 *)
  let m = Model.create () in
  let b = Model.add_var ~kind:Model.Binary m in
  let x = Model.add_var m and y = Model.add_var m in
  let _ = Model.add_constr m Linexpr.(sub (var x) (var ~coef:2. b)) Model.Le 2. in
  let _ = Model.add_constr m Linexpr.(add (var y) (var ~coef:3. b)) Model.Le 3. in
  Model.add_sos1 m [ x; y ];
  Model.set_objective m Model.Maximize Linexpr.(sum [ var ~coef:3. b; var x; var y ]);
  let r = Solver.solve m in
  check_float "obj" 7. r.Branch_bound.objective

let test_bb_primal_heuristic_incumbent () =
  (* heuristic supplies a trusted solution value; check it is reported *)
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:10. m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Le 7.5 in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  let called = ref false in
  let h _relax =
    called := true;
    Some (6., None)
  in
  let r = Branch_bound.solve ~primal_heuristic:h m in
  Alcotest.check bb_outcome "outcome" Branch_bound.Optimal r.Branch_bound.outcome;
  check_float "true optimum still found" 7. r.Branch_bound.objective;
  (* with cuts on (REPRO_CUTS=1) the root Gomory round closes this model
     to integrality, so no fractional node ever consults the heuristic *)
  if not Branch_bound.default_options.Branch_bound.cuts.Relaxation.enabled then
    Alcotest.(check bool) "heuristic called" true !called

let test_bb_incumbent_trace () =
  let m = Model.create () in
  let vs = Model.add_vars ~kind:Model.Binary m 6 in
  let expr coefs =
    Linexpr.of_terms (List.mapi (fun i v -> (v, coefs.(i))) (Array.to_list vs))
  in
  let _ =
    Model.add_constr m (expr [| 3.; 5.; 4.; 2.; 6.; 3. |]) Model.Le 10.
  in
  Model.set_objective m Model.Maximize (expr [| 4.; 7.; 5.; 3.; 8.; 4. |]);
  let seen = ref [] in
  let r = Branch_bound.solve ~on_incumbent:(fun v -> seen := v :: !seen) m in
  Alcotest.(check bool) "trace non-empty" true (List.length r.Branch_bound.incumbent_trace > 0);
  Alcotest.(check bool) "callback fired" true (List.length !seen > 0);
  (* trace values must be non-decreasing for a max problem *)
  let values = List.map snd r.Branch_bound.incumbent_trace in
  let sorted = List.sort compare values in
  Alcotest.(check (list (float 1e-9))) "monotone" sorted values

(* ------------------------------------------------------------------ *)
(* Containers: Heap, Buf                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (fun (p, x) -> Heap.push h p x) [ (3., "c"); (5., "a"); (1., "e"); (4., "b"); (2., "d") ];
  Alcotest.(check int) "size" 5 (Heap.size h);
  check_float "max priority" 5. (Heap.max_priority h);
  let order = List.init 5 (fun _ -> snd (Heap.pop h)) in
  Alcotest.(check (list string)) "descending priority" [ "a"; "b"; "c"; "d"; "e" ] order;
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h))

let heap_sorts_property =
  QCheck.Test.make ~count:200 ~name:"heap pops in non-increasing priority order"
    QCheck.(list (float_range (-100.) 100.))
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) ps;
      let out = List.init (List.length ps) (fun _ -> fst (Heap.pop h)) in
      out = List.sort (fun a b -> compare b a) ps)

let test_buf_growth () =
  let b = Buf.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Buf.push b (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Buf.length b);
  Alcotest.(check int) "get" 84 (Buf.get b 42);
  Buf.set b 42 (-1);
  Alcotest.(check int) "set" (-1) (Buf.get b 42);
  Alcotest.(check int) "fold" 99 (Buf.fold_left (fun acc _ -> acc + 1) (-1) b);
  Alcotest.check_raises "oob" (Invalid_argument "Buf: index out of bounds")
    (fun () -> ignore (Buf.get b 100));
  let arr = Buf.to_array b in
  Alcotest.(check int) "to_array length" 100 (Array.length arr)

(* ------------------------------------------------------------------ *)
(* Simplex hardening                                                   *)
(* ------------------------------------------------------------------ *)

(* Beale's classic cycling example: Dantzig pricing can cycle on it
   without an anti-cycling rule; the Bland fallback must terminate at the
   known optimum 0.05 (x = (0.04, 0, 1, 0)). *)
let test_lp_beale_cycling () =
  let m = Model.create () in
  let x = Model.add_vars m 4 in
  let expr l = Linexpr.of_terms (List.map (fun (i, c) -> (x.(i), c)) l) in
  let _ =
    Model.add_constr m
      (expr [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ])
      Model.Le 0.
  in
  let _ =
    Model.add_constr m
      (expr [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ])
      Model.Le 0.
  in
  let _ = Model.add_constr m (expr [ (2, 1.) ]) Model.Le 1. in
  Model.set_objective m Model.Maximize
    (expr [ (0, 0.75); (1, -150.); (2, 0.02); (3, -6.) ]);
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "terminates" Simplex.Optimal r.status;
  Alcotest.(check (float 1e-9)) "Beale optimum" 0.05 r.objective

let test_lp_duals_equality_row () =
  (* max 2x + 3y s.t. x + y = 10, x <= 6: optimum (0,10)? obj 30 with y=10;
     or (6,4): 12+12=24 -> optimum y=10. dual of equality = 3 (marginal
     value of one more unit of rhs). *)
  let m = Model.create () in
  let x = Model.add_var ~ub:6. m and y = Model.add_var m in
  let ceq = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Eq 10. in
  Model.set_objective m Model.Maximize Linexpr.(add (var ~coef:2. x) (var ~coef:3. y));
  let r = Solver.solve_lp m in
  check_float "obj" 30. r.objective;
  check_float "equality dual" 3. r.duals.(ceq);
  (* sanity: perturbing the rhs by +1 moves the optimum by the dual *)
  let m2 = Model.create () in
  let x2 = Model.add_var ~ub:6. m2 and y2 = Model.add_var m2 in
  let _ = Model.add_constr m2 Linexpr.(add (var x2) (var y2)) Model.Eq 11. in
  Model.set_objective m2 Model.Maximize Linexpr.(add (var ~coef:2. x2) (var ~coef:3. y2));
  check_float "marginal" (30. +. 3.) (Solver.solve_lp m2).objective

let test_lp_ge_row_duals () =
  (* min 3x + 2y s.t. x + y >= 4, x >= 1: optimum (1, 3) obj 9;
     dual of the >= row = 2 (cost of one more required unit) *)
  let m = Model.create () in
  let x = Model.add_var ~lb:1. m and y = Model.add_var m in
  let cge = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Ge 4. in
  Model.set_objective m Model.Minimize Linexpr.(add (var ~coef:3. x) (var ~coef:2. y));
  let r = Solver.solve_lp m in
  check_float "obj" 9. r.objective;
  check_float "x" 1. r.primal.(x);
  check_float "y" 3. r.primal.(y);
  check_float "ge dual" 2. r.duals.(cge)

let test_lp_iteration_limit () =
  (* a tiny limit must return Iteration_limit, not loop or crash *)
  let m = Model.create () in
  let xs = Model.add_vars m 10 in
  for i = 0 to 8 do
    ignore
      (Model.add_constr m
         Linexpr.(add (var xs.(i)) (var xs.(i + 1)))
         Model.Le (float_of_int (i + 1)))
  done;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) xs)));
  let sf = Standard_form.of_model m in
  let s = Simplex.create sf in
  let r = Simplex.solve_fresh ~iter_limit:1 s in
  Alcotest.check lp_status "limited" Simplex.Iteration_limit r.Simplex.status

let test_lp_large_random_consistency () =
  (* a mid-size LP: primal feasibility and strong duality at scale *)
  let rng = Random.State.make [| 2024 |] in
  let n = 60 and mm = 40 in
  let m = Model.create () in
  let xs = Model.add_vars m n in
  let rows =
    Array.init mm (fun _ ->
        let terms =
          List.filter_map
            (fun j ->
              if Random.State.float rng 1. < 0.3 then
                Some (j, Random.State.float rng 4.)
              else None)
            (List.init n (fun j -> j))
        in
        let rhs = 5. +. Random.State.float rng 50. in
        (terms, rhs))
  in
  Array.iter
    (fun (terms, rhs) ->
      ignore
        (Model.add_constr m
           (Linexpr.of_terms (List.map (fun (j, c) -> (xs.(j), c)) terms))
           Model.Le rhs))
    rows;
  ignore
    (Model.add_constr m
       (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))))
       Model.Le 500.);
  let c = Array.init n (fun _ -> Random.State.float rng 3.) in
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
  let r = Solver.solve_lp m in
  Alcotest.check lp_status "optimal" Simplex.Optimal r.status;
  (* duality check *)
  let dual_obj = ref (500. *. r.duals.(mm)) in
  Array.iteri (fun i (_, rhs) -> dual_obj := !dual_obj +. (rhs *. r.duals.(i))) rows;
  Alcotest.(check (float 1e-3)) "strong duality at scale" r.objective !dual_obj

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let test_presolve_singleton_rows () =
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  (* 2x <= 10 -> ub 5; -y <= -3 -> lb 3; x + y <= 100 stays *)
  let _ = Model.add_constr m (Linexpr.var ~coef:2. x) Model.Le 10. in
  let _ = Model.add_constr m (Linexpr.var ~coef:(-1.) y) Model.Le (-3.) in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Le 100. in
  Model.set_objective m Model.Maximize Linexpr.(add (var x) (var y));
  match Presolve.reduce m with
  | Presolve.Infeasible_model -> Alcotest.fail "feasible model"
  | Presolve.Reduced red ->
      Alcotest.(check bool) "rows dropped" true (red.Presolve.rows_dropped >= 2);
      Alcotest.(check bool) "bounds tightened" true (red.Presolve.bounds_tightened >= 2);
      (* the last row becomes redundant (max lhs = 5 + y_ub...) - solve both *)
      let r0 = Solver.solve m in
      let r1 = Solver.solve ~presolve:true m in
      check_float "same optimum" r0.Branch_bound.objective r1.Branch_bound.objective

let test_presolve_fixes_variables () =
  let m = Model.create () in
  let x = Model.add_var ~lb:4. ~ub:4. m in
  let y = Model.add_var ~ub:10. m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Le 7. in
  Model.set_objective m Model.Maximize Linexpr.(add (var ~coef:5. x) (var y));
  match Presolve.reduce m with
  | Presolve.Infeasible_model -> Alcotest.fail "feasible"
  | Presolve.Reduced red ->
      Alcotest.(check int) "one fixed" 1 red.Presolve.vars_fixed;
      Alcotest.(check int) "one var left" 1 (Model.num_vars red.Presolve.model);
      let r = Solver.solve ~presolve:true m in
      check_float "objective with substitution" 23. r.Branch_bound.objective;
      (match r.Branch_bound.primal with
      | Some p ->
          check_float "x restored" 4. p.(x);
          check_float "y restored" 3. p.(y)
      | None -> Alcotest.fail "no primal")

let test_presolve_detects_infeasible () =
  let m = Model.create () in
  let x = Model.add_var ~ub:2. m in
  let _ = Model.add_constr m (Linexpr.var x) Model.Ge 5. in
  Model.set_objective m Model.Minimize (Linexpr.var x);
  Alcotest.(check bool) "infeasible detected" true
    (Presolve.reduce m = Presolve.Infeasible_model)

let test_presolve_forcing_row () =
  (* x + y >= 20 with x <= 10, y <= 10 forces x = y = 10 *)
  let m = Model.create () in
  let x = Model.add_var ~ub:10. m and y = Model.add_var ~ub:10. m in
  let _ = Model.add_constr m Linexpr.(add (var x) (var y)) Model.Ge 20. in
  Model.set_objective m Model.Minimize Linexpr.(add (var x) (var y));
  match Presolve.reduce m with
  | Presolve.Infeasible_model -> Alcotest.fail "feasible"
  | Presolve.Reduced red ->
      Alcotest.(check int) "both fixed" 2 red.Presolve.vars_fixed;
      Alcotest.(check int) "nothing left" 0 (Model.num_vars red.Presolve.model);
      let restored = Presolve.restore red [||] in
      check_float "x forced" 10. restored.(x);
      check_float "y forced" 10. restored.(y)

let test_presolve_sos_propagation () =
  let m = Model.create () in
  let x = Model.add_var ~lb:3. ~ub:3. m in
  let y = Model.add_var ~ub:5. m in
  let z = Model.add_var ~ub:5. m in
  Model.add_sos1 m [ x; y; z ];
  Model.set_objective m Model.Maximize Linexpr.(sum [ var x; var y; var z ]);
  match Presolve.reduce m with
  | Presolve.Infeasible_model -> Alcotest.fail "feasible"
  | Presolve.Reduced red ->
      (* x fixed nonzero zeroes y and z; the group disappears *)
      Alcotest.(check int) "all fixed" 3 red.Presolve.vars_fixed;
      Alcotest.(check int) "no sos left" 0 (Model.num_sos1 red.Presolve.model);
      let restored = Presolve.restore red [||] in
      check_float "y zeroed" 0. restored.(y);
      check_float "z zeroed" 0. restored.(z)

let test_presolve_integer_rounding () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~lb:1.2 ~ub:3.8 m in
  Model.set_objective m Model.Maximize (Linexpr.var x);
  match Presolve.reduce m with
  | Presolve.Infeasible_model -> Alcotest.fail "feasible"
  | Presolve.Reduced red ->
      check_float "integral ub" 3. (Model.var_ub red.Presolve.model 0);
      check_float "integral lb" 2. (Model.var_lb red.Presolve.model 0)

let presolve_equivalence_property =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* m = int_range 1 4 in
      let* a = array_size (return (m * n)) (float_range (-4.) 6.) in
      let* b = array_size (return m) (float_range 0.5 12.) in
      let* c = array_size (return n) (float_range (-3.) 8.) in
      return (n, m, a, b, c))
  in
  QCheck.Test.make ~count:100 ~name:"presolve preserves binary-MILP optima"
    (QCheck.make gen) (fun (n, m, a, b, c) ->
      let model = Model.create () in
      let xs = Model.add_vars ~kind:Model.Binary model n in
      for i = 0 to m - 1 do
        let expr =
          Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
        in
        ignore (Model.add_constr model expr Model.Le b.(i))
      done;
      Model.set_objective model Model.Maximize
        (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
      let plain = Solver.solve model in
      let pre = Solver.solve ~presolve:true model in
      match (plain.Branch_bound.outcome, pre.Branch_bound.outcome) with
      | Branch_bound.Infeasible, Branch_bound.Infeasible -> true
      | Branch_bound.Optimal, Branch_bound.Optimal ->
          if
            Float.abs (plain.Branch_bound.objective -. pre.Branch_bound.objective)
            > 1e-6
          then
            QCheck.Test.fail_reportf "plain %g <> presolved %g"
              plain.Branch_bound.objective pre.Branch_bound.objective
          else begin
            (* restored primal must be feasible for the original model *)
            match pre.Branch_bound.primal with
            | Some x -> Model.max_violation model x < 1e-6
            | None -> QCheck.Test.fail_reportf "no restored primal"
          end
      | o1, o2 ->
          QCheck.Test.fail_reportf "outcome mismatch %s %s"
            (Fmt.str "%a" Branch_bound.pp_result plain)
            (Fmt.str "%a"
               (fun ppf _ -> Branch_bound.pp_result ppf pre)
               (o1, o2)))

(* ------------------------------------------------------------------ *)
(* LP file writer                                                      *)
(* ------------------------------------------------------------------ *)

let test_lp_file_sections () =
  let m = Model.create () in
  let x = Model.add_var ~name:"flow" ~ub:4. m in
  let y = Model.add_var ~name:"pick" ~kind:Model.Binary m in
  let z = Model.add_var ~name:"count" ~kind:Model.Integer ~ub:9. m in
  let _ = Model.add_constr ~name:"cap" m Linexpr.(add (var x) (var ~coef:2. y)) Model.Le 7. in
  Model.add_sos1 m [ x; z ];
  Model.set_objective m Model.Maximize Linexpr.(sum [ var x; var y; var z ]);
  let s = Lp_file.to_string m in
  let has sub =
    let n = String.length sub and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
    Alcotest.(check bool) ("has " ^ sub) true (go 0)
  in
  has "Maximize";
  has "Subject To";
  has "cap#0:";
  has "<= 7";
  has "Bounds";
  has "Generals";
  has "Binaries";
  has "SOS";
  has "S1 ::";
  has "End"

let test_lp_file_roundtrip_values () =
  (* writer must quote exact bounds, including infinities and fixations *)
  let m = Model.create () in
  let _free = Model.add_var ~name:"free" ~lb:neg_infinity m in
  let _fixed = Model.add_var ~name:"fx" ~lb:2.5 ~ub:2.5 m in
  Model.set_objective m Model.Minimize Linexpr.zero;
  let s = Lp_file.to_string m in
  let has sub =
    let n = String.length sub and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
    Alcotest.(check bool) ("has " ^ sub) true (go 0)
  in
  has "-inf";
  has "= 2.5"

let test_lp_file_parse_roundtrip () =
  (* write -> parse -> the models must be structurally identical and
     solve to the same optimum *)
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~lb:0. ~ub:4. m in
  let y = Model.add_var ~name:"y" ~kind:Model.Integer ~lb:(-2.) ~ub:10. m in
  let z = Model.add_var ~name:"z" ~kind:Model.Binary m in
  let f = Model.add_var ~name:"f" ~lb:neg_infinity ~ub:infinity m in
  ignore
    (Model.add_constr ~name:"c1" m
       (Linexpr.of_terms [ (x, 1.); (y, 2.); (f, -0.5) ])
       Model.Le 10.);
  ignore
    (Model.add_constr ~name:"c2" m
       (Linexpr.of_terms [ (y, 1.); (z, 3.) ])
       Model.Ge 1.);
  ignore
    (Model.add_constr ~name:"c3" m
       (Linexpr.of_terms [ (x, 1.); (f, 1.) ])
       Model.Eq 2.);
  Model.add_sos1 ~name:"s" m [ x; y ];
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms ~constant:7.5 [ (x, 3.); (y, -1.25); (z, 2.) ]);
  match Lp_file.of_string (Lp_file.to_string m) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m2 ->
      Alcotest.(check int) "vars" (Model.num_vars m) (Model.num_vars m2);
      Alcotest.(check int) "constrs" (Model.num_constrs m)
        (Model.num_constrs m2);
      Alcotest.(check int) "sos1" (Model.num_sos1 m) (Model.num_sos1 m2);
      Alcotest.(check bool) "still a mip" true (Model.is_mip m2);
      check_float "lb preserved" (-2.) (Model.var_lb m2 1);
      check_float "ub preserved" 10. (Model.var_ub m2 1);
      Alcotest.(check bool) "free var preserved" true
        (Model.var_lb m2 3 = neg_infinity && Model.var_ub m2 3 = infinity);
      let r1 = Solver.solve m in
      let r2 = Solver.solve m2 in
      check_float "same optimum" r1.Branch_bound.objective
        r2.Branch_bound.objective;
      (* second generation must be a textual fixed point: sanitized names
         survive re-sanitization unchanged *)
      let t2 = Lp_file.to_string m2 in
      (match Lp_file.of_string t2 with
      | Error e -> Alcotest.failf "re-parse failed: %s" e
      | Ok m3 ->
          Alcotest.(check string) "textual fixed point" t2
            (Lp_file.to_string m3))

let test_lp_file_parse_plain_dialect () =
  (* hand-written LP text: implicit coefficients, bare constants,
     missing Bounds entries default to [0, +inf) *)
  let text =
    "\\ a comment line\n\
     Minimize\n\
     obj: x + 2 y - z\n\
     Subject To\n\
     c1: x + y >= 2\n\
     c2: - x + z <= 1\n\
     Bounds\n\
     z <= 5\n\
     End\n"
  in
  match Lp_file.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m ->
      Alcotest.(check int) "vars" 3 (Model.num_vars m);
      Alcotest.(check int) "constrs" 2 (Model.num_constrs m);
      check_float "default lb" 0. (Model.var_lb m 0);
      Alcotest.(check bool) "default ub" true (Model.var_ub m 0 = infinity);
      check_float "z ub" 5. (Model.var_ub m 2);
      let r = Solver.solve_lp m in
      Alcotest.(check bool) "optimal" true (r.Solver.status = Simplex.Optimal);
      (* min x + 2y - z: x+y >= 2 -> x=2 (cheaper), z <= min(5, 1+x) = 3 *)
      check_float "objective" (2. -. 3.) r.Solver.objective

let test_lp_file_parse_errors () =
  let bad s =
    match Lp_file.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error on %S" s
  in
  bad "Subject To\n c1: x <= 1\nEnd\n";
  (* no objective *)
  bad "Minimize\n obj: x\nSubject To\n c1: x\nEnd\n";
  (* missing relation *)
  bad "stray line before any section\n"

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

(* Random max-LPs of the form max c.x s.t. Ax <= b, 0 <= x, sum x <= B.
   x = 0 is feasible (b >= 0) and the budget row keeps them bounded, so
   the solver must return Optimal, and we can check the full optimality
   certificate: primal feasibility, dual feasibility, strong duality. *)
let random_lp_certificate =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* m = int_range 1 6 in
      let* a = array_size (return (m * n)) (float_range (-5.) 5.) in
      let* b = array_size (return m) (float_range 0. 10.) in
      let* c = array_size (return n) (float_range (-5.) 5.) in
      return (n, m, a, b, c))
  in
  QCheck.Test.make ~count:200 ~name:"simplex optimality certificate"
    (QCheck.make gen) (fun (n, m, a, b, c) ->
      let model = Model.create () in
      let xs = Model.add_vars model n in
      for i = 0 to m - 1 do
        let expr =
          Linexpr.of_terms
            (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
        in
        ignore (Model.add_constr model expr Model.Le b.(i))
      done;
      ignore
        (Model.add_constr model
           (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))))
           Model.Le 100.);
      Model.set_objective model Model.Maximize
        (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
      let r = Solver.solve_lp model in
      if r.Solver.status <> Simplex.Optimal then
        QCheck.Test.fail_reportf "expected optimal, got non-optimal status";
      let tol = 1e-5 in
      (* primal feasibility *)
      for i = 0 to m - 1 do
        let lhs = ref 0. in
        for j = 0 to n - 1 do
          lhs := !lhs +. (a.((i * n) + j) *. r.Solver.primal.(j))
        done;
        if !lhs > b.(i) +. tol then
          QCheck.Test.fail_reportf "primal infeasible row %d: %g > %g" i !lhs b.(i)
      done;
      Array.iter
        (fun x -> if x < -.tol then QCheck.Test.fail_reportf "negative x")
        r.Solver.primal;
      (* dual feasibility: y >= 0 and c_j - sum_i y_i a_ij <= tol *)
      Array.iter
        (fun y -> if y < -.tol then QCheck.Test.fail_reportf "negative dual")
        r.Solver.duals;
      for j = 0 to n - 1 do
        let slack = ref c.(j) in
        for i = 0 to m - 1 do
          slack := !slack -. (r.Solver.duals.(i) *. a.((i * n) + j))
        done;
        (* budget row is index m *)
        slack := !slack -. r.Solver.duals.(m);
        if !slack > tol then
          QCheck.Test.fail_reportf "dual infeasible col %d: %g" j !slack
      done;
      (* strong duality *)
      let dual_obj = ref (100. *. r.Solver.duals.(m)) in
      for i = 0 to m - 1 do
        dual_obj := !dual_obj +. (b.(i) *. r.Solver.duals.(i))
      done;
      if Float.abs (!dual_obj -. r.Solver.objective) > 1e-4 then
        QCheck.Test.fail_reportf "duality gap: primal %g dual %g"
          r.Solver.objective !dual_obj;
      true)

(* Brute-force 0/1 enumeration must agree with branch and bound. *)
let random_binary_milp =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* m = int_range 1 4 in
      let* a = array_size (return (m * n)) (float_range (-4.) 6.) in
      let* b = array_size (return m) (float_range 0.5  12.) in
      let* c = array_size (return n) (float_range (-3.) 8.) in
      return (n, m, a, b, c))
  in
  QCheck.Test.make ~count:100 ~name:"branch&bound matches brute force on binary programs"
    (QCheck.make gen) (fun (n, m, a, b, c) ->
      let model = Model.create () in
      let xs = Model.add_vars ~kind:Model.Binary model n in
      for i = 0 to m - 1 do
        let expr =
          Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
        in
        ignore (Model.add_constr model expr Model.Le b.(i))
      done;
      Model.set_objective model Model.Maximize
        (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
      let r = Solver.solve model in
      (* brute force *)
      let best = ref neg_infinity in
      for mask = 0 to (1 lsl n) - 1 do
        let x j = if mask land (1 lsl j) <> 0 then 1. else 0. in
        let ok = ref true in
        for i = 0 to m - 1 do
          let lhs = ref 0. in
          for j = 0 to n - 1 do
            lhs := !lhs +. (a.((i * n) + j) *. x j)
          done;
          if !lhs > b.(i) +. 1e-9 then ok := false
        done;
        if !ok then begin
          let v = ref 0. in
          for j = 0 to n - 1 do
            v := !v +. (c.(j) *. x j)
          done;
          if !v > !best then best := !v
        end
      done;
      if !best = neg_infinity then
        r.Branch_bound.outcome = Branch_bound.Infeasible
      else if Float.abs (r.Branch_bound.objective -. !best) > 1e-5 then
        QCheck.Test.fail_reportf "bb %g <> brute %g" r.Branch_bound.objective !best
      else true)

(* Warm-started resolves after arbitrary bound-change sequences must agree
   with from-scratch solves — the regression test for the stale-phase-1-
   costs bug that once made branch-and-bound prune valid subtrees. *)
let warm_restart_matches_fresh =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 100_000 in
      return seed)
  in
  QCheck.Test.make ~count:150 ~name:"warm resolve = fresh solve after bound changes"
    (QCheck.make gen) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 5 in
      let m = 1 + Random.State.int rng 5 in
      let model = Model.create () in
      let xs = Model.add_vars model n in
      for _ = 1 to m do
        let terms =
          List.init n (fun j -> (xs.(j), Random.State.float rng 10. -. 5.))
        in
        ignore
          (Model.add_constr model (Linexpr.of_terms terms) Model.Le
             (Random.State.float rng 10.))
      done;
      ignore
        (Model.add_constr model
           (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))))
           Model.Le 50.);
      Model.set_objective model Model.Maximize
        (Linexpr.of_terms
           (List.init n (fun j -> (xs.(j), Random.State.float rng 10. -. 3.))));
      let sf = Standard_form.of_model model in
      let s = Simplex.create sf in
      let _ = Simplex.solve_fresh s in
      let ok = ref true in
      for _step = 1 to 6 do
        let j = Random.State.int rng n in
        let lo, hi =
          match Random.State.int rng 4 with
          | 0 -> (0., 0.)
          | 1 -> (0., Random.State.float rng 5.)
          | 2 -> (Random.State.float rng 3., infinity)
          | _ -> (0., infinity)
        in
        Simplex.set_bounds s j ~lb:lo ~ub:hi;
        let warm = Simplex.resolve s in
        let s2 = Simplex.create sf in
        for v = 0 to n - 1 do
          Simplex.set_bounds s2 v ~lb:(Simplex.get_lb s v)
            ~ub:(Simplex.get_ub s v)
        done;
        let fresh = Simplex.solve_fresh s2 in
        if
          warm.Simplex.status <> fresh.Simplex.status
          || (warm.Simplex.status = Simplex.Optimal
             && Float.abs (warm.Simplex.objective -. fresh.Simplex.objective)
                > 1e-5)
        then ok := false
      done;
      !ok)

(* SOS1 via B&B must agree with trying each "only k may be nonzero" LP. *)
let random_sos1_milp =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 5 in
      let* ubs = array_size (return n) (float_range 0. 5.) in
      let* c = array_size (return n) (float_range (-2.) 5.) in
      let* cap = float_range 1. 8. in
      return (n, ubs, c, cap))
  in
  QCheck.Test.make ~count:100 ~name:"sos1 branch&bound matches one-at-a-time enumeration"
    (QCheck.make gen) (fun (n, ubs, c, cap) ->
      let build () =
        let model = Model.create () in
        let xs = Array.init n (fun j -> Model.add_var ~ub:ubs.(j) model) in
        ignore
          (Model.add_constr model
             (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))))
             Model.Le cap);
        Model.set_objective model Model.Maximize
          (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
        (model, xs)
      in
      let model, xs = build () in
      Model.add_sos1 model (Array.to_list xs);
      let r = Solver.solve model in
      (* enumerate: allow only variable k to be nonzero *)
      let best = ref 0. in
      for k = 0 to n - 1 do
        let v = c.(k) *. Float.min ubs.(k) cap in
        if v > !best then best := v
      done;
      if Float.abs (r.Branch_bound.objective -. !best) > 1e-6 then
        QCheck.Test.fail_reportf "sos bb %g <> enum %g" r.Branch_bound.objective !best
      else true)

(* ------------------------------------------------------------------ *)
(* cutting planes (the relaxation pipeline)                            *)
(* ------------------------------------------------------------------ *)

let cuts_on_options =
  { Branch_bound.default_options with cuts = Relaxation.default_enabled }

let eval_cut point (c : Cut_pool.cut) =
  Array.fold_left
    (fun acc (v, a) -> acc +. (a *. point.(v)))
    0. c.Cut_pool.terms

(* Known-answer Gomory case: max x s.t. 2x <= 15, x integer. The root
   relaxation sits at x = 7.5; the first separation round must derive
   (the x-space equivalent of) x <= 7 and close the model at the root. *)
let test_gomory_known_answer () =
  let model = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:100. model in
  ignore (Model.add_constr model (Linexpr.of_terms [ (x, 2.) ]) Model.Le 15.);
  Model.set_objective model Model.Maximize (Linexpr.of_terms [ (x, 1.) ]);
  let cuts = ref [] in
  let r =
    Branch_bound.solve ~options:cuts_on_options
      ~on_cut:(fun c -> cuts := c :: !cuts)
      model
  in
  Alcotest.(check bool)
    "optimal" true
    (r.Branch_bound.outcome = Branch_bound.Optimal);
  Alcotest.(check (float 1e-6)) "objective" 7. r.Branch_bound.objective;
  Alcotest.(check int) "closed at the root" 1 r.Branch_bound.nodes;
  Alcotest.(check bool) "a cut was accepted" true (!cuts <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "optimum x=7 survives every cut" true
        (eval_cut [| 7. |] c <= c.Cut_pool.rhs +. 1e-6))
    !cuts;
  Alcotest.(check bool)
    "fractional root x=7.5 is cut off" true
    (List.exists (fun c -> eval_cut [| 7.5 |] c > c.Cut_pool.rhs +. 1e-6) !cuts)

(* The final objective must not depend on the pipeline gate, the LP
   backend, or the worker count — cuts/tightening/pseudo-costs only
   reshape the tree. Fixed seeded binary program, all 8 combinations. *)
let test_cuts_objective_invariance () =
  let build () =
    let rng = Random.State.make [| 20240807 |] in
    let n = 8 and m = 5 in
    let model = Model.create () in
    let xs = Model.add_vars ~kind:Model.Binary model n in
    for _ = 1 to m do
      let terms =
        List.init n (fun j -> (xs.(j), Random.State.float rng 10. -. 4.))
      in
      ignore
        (Model.add_constr model (Linexpr.of_terms terms) Model.Le
           (1. +. Random.State.float rng 8.))
    done;
    Model.set_objective model Model.Maximize
      (Linexpr.of_terms
         (List.init n (fun j -> (xs.(j), Random.State.float rng 6. -. 1.))));
    model
  in
  let solve ~on ~backend ~jobs =
    let r =
      Branch_bound.solve
        ~options:
          {
            Branch_bound.default_options with
            cuts = (if on then Relaxation.default_enabled else Relaxation.disabled);
            backend = Some backend;
            jobs;
          }
        (build ())
    in
    Alcotest.(check bool)
      "optimal" true
      (r.Branch_bound.outcome = Branch_bound.Optimal);
    r.Branch_bound.objective
  in
  let reference = solve ~on:false ~backend:Backend.Sparse ~jobs:1 in
  List.iter
    (fun (on, backend, jobs) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "objective cuts=%b backend=%s jobs=%d" on
           (Backend.kind_to_string backend)
           jobs)
        reference
        (solve ~on ~backend ~jobs))
    [
      (false, Backend.Sparse, 4);
      (false, Backend.Dense, 1);
      (false, Backend.Dense, 4);
      (true, Backend.Sparse, 1);
      (true, Backend.Sparse, 4);
      (true, Backend.Dense, 1);
      (true, Backend.Dense, 4);
    ]

(* Every cut accepted into the pool is a globally valid inequality: the
   brute-force optimal integer witness must satisfy all of them, and the
   cuts-on search must still reach the brute-force optimum. *)
let cuts_preserve_integer_witness =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* m = int_range 1 4 in
      let* a = array_size (return (m * n)) (float_range (-4.) 6.) in
      let* b = array_size (return m) (float_range 0.5 12.) in
      let* c = array_size (return n) (float_range (-3.) 8.) in
      return (n, m, a, b, c))
  in
  QCheck.Test.make ~count:100
    ~name:"no separated cut removes the optimal integer witness"
    (QCheck.make gen)
    (fun (n, m, a, b, c) ->
      let model = Model.create () in
      let xs = Model.add_vars ~kind:Model.Binary model n in
      for i = 0 to m - 1 do
        let expr =
          Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j))))
        in
        ignore (Model.add_constr model expr Model.Le b.(i))
      done;
      Model.set_objective model Model.Maximize
        (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
      (* brute-force witness *)
      let best = ref neg_infinity in
      let witness = Array.make n 0. in
      for mask = 0 to (1 lsl n) - 1 do
        let x j = if mask land (1 lsl j) <> 0 then 1. else 0. in
        let ok = ref true in
        for i = 0 to m - 1 do
          let lhs = ref 0. in
          for j = 0 to n - 1 do
            lhs := !lhs +. (a.((i * n) + j) *. x j)
          done;
          if !lhs > b.(i) +. 1e-9 then ok := false
        done;
        if !ok then begin
          let v = ref 0. in
          for j = 0 to n - 1 do
            v := !v +. (c.(j) *. x j)
          done;
          if !v > !best then begin
            best := !v;
            for j = 0 to n - 1 do
              witness.(j) <- x j
            done
          end
        end
      done;
      let cuts = ref [] in
      let r =
        Branch_bound.solve ~options:cuts_on_options
          ~on_cut:(fun cu -> cuts := cu :: !cuts)
          model
      in
      if !best = neg_infinity then
        r.Branch_bound.outcome = Branch_bound.Infeasible
      else begin
        List.iter
          (fun (cu : Cut_pool.cut) ->
            let lhs = eval_cut witness cu in
            if lhs > cu.Cut_pool.rhs +. 1e-6 then
              QCheck.Test.fail_reportf
                "%s cut cuts off witness (obj %g): lhs %g > rhs %g"
                cu.Cut_pool.origin !best lhs cu.Cut_pool.rhs)
          !cuts;
        if Float.abs (r.Branch_bound.objective -. !best) > 1e-5 then
          QCheck.Test.fail_reportf "cuts-on bb %g <> brute %g"
            r.Branch_bound.objective !best
        else true
      end)

let () =
  let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests) in
  Alcotest.run "lp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basic" `Quick test_linexpr_basic;
          Alcotest.test_case "algebra" `Quick test_linexpr_alg;
          Alcotest.test_case "of_terms duplicates" `Quick test_linexpr_sum_of_terms;
          Alcotest.test_case "map_vars" `Quick test_linexpr_map_vars;
        ] );
      ( "model",
        [
          Alcotest.test_case "build" `Quick test_model_build;
          Alcotest.test_case "constant folding" `Quick test_model_constant_folding;
          Alcotest.test_case "violations" `Quick test_model_violation;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "single var" `Quick test_lp_single_var;
          Alcotest.test_case "two var" `Quick test_lp_two_var;
          Alcotest.test_case "equality" `Quick test_lp_equality;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "free var" `Quick test_lp_free_var;
          Alcotest.test_case "bounds only" `Quick test_lp_var_bounds_only;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "objective constant" `Quick test_lp_objective_constant;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
          Alcotest.test_case "dual values" `Quick test_lp_duals_le;
          Alcotest.test_case "warm restart" `Quick test_lp_resolve_after_bound_change;
          Alcotest.test_case "restart to infeasible" `Quick test_lp_resolve_to_infeasible;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "integer rounding" `Quick test_milp_integer_rounding;
          Alcotest.test_case "infeasible mip" `Quick test_milp_infeasible;
          Alcotest.test_case "sos1 pick best" `Quick test_sos1_pick_best;
          Alcotest.test_case "sos1 forced" `Quick test_sos1_forced_choice;
          Alcotest.test_case "sos1 triple" `Quick test_sos1_triple;
          Alcotest.test_case "mixed int+sos" `Quick test_milp_mixed_int_sos;
          Alcotest.test_case "primal heuristic" `Quick test_bb_primal_heuristic_incumbent;
          Alcotest.test_case "incumbent trace" `Quick test_bb_incumbent_trace;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "gomory known answer" `Quick
            test_gomory_known_answer;
          Alcotest.test_case "objective invariance" `Quick
            test_cuts_objective_invariance;
        ] );
      ( "containers",
        [
          Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
          Alcotest.test_case "buf growth" `Quick test_buf_growth;
        ] );
      ( "simplex_hardening",
        [
          Alcotest.test_case "beale cycling" `Quick test_lp_beale_cycling;
          Alcotest.test_case "equality duals" `Quick test_lp_duals_equality_row;
          Alcotest.test_case "ge duals" `Quick test_lp_ge_row_duals;
          Alcotest.test_case "iteration limit" `Quick test_lp_iteration_limit;
          Alcotest.test_case "mid-size duality" `Quick test_lp_large_random_consistency;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "singleton rows" `Quick test_presolve_singleton_rows;
          Alcotest.test_case "fixed variables" `Quick test_presolve_fixes_variables;
          Alcotest.test_case "infeasible" `Quick test_presolve_detects_infeasible;
          Alcotest.test_case "forcing row" `Quick test_presolve_forcing_row;
          Alcotest.test_case "sos propagation" `Quick test_presolve_sos_propagation;
          Alcotest.test_case "integer rounding" `Quick test_presolve_integer_rounding;
        ] );
      ( "lp_file",
        [
          Alcotest.test_case "sections" `Quick test_lp_file_sections;
          Alcotest.test_case "bounds rendering" `Quick test_lp_file_roundtrip_values;
          Alcotest.test_case "parse roundtrip" `Quick test_lp_file_parse_roundtrip;
          Alcotest.test_case "parse plain dialect" `Quick test_lp_file_parse_plain_dialect;
          Alcotest.test_case "parse errors" `Quick test_lp_file_parse_errors;
        ] );
      qsuite "properties"
        [
          random_lp_certificate;
          warm_restart_matches_fresh;
          random_binary_milp;
          random_sos1_milp;
          cuts_preserve_integer_witness;
          presolve_equivalence_property;
          heap_sorts_property;
        ];
    ]
