(* Resilience layer: deadlines, fault injection, retry, breaker, pool
   supervision, scheduler deadlines — and the solver stack under chaos.

   Fault points are process-global, so every test that arms them must
   disarm on exit (the [with_faults] wrapper); alcotest runs test cases
   sequentially, so there is no cross-test race. *)

open Repro_lp
module R = Repro_resilience
module O = R.Outcome
module Pool = Repro_engine.Pool

let with_faults ~seed points f =
  R.Faults.arm ~seed ~points;
  Fun.protect ~finally:R.Faults.disarm f

(* ------------------------------------------------------------------ *)
(* Deadline                                                            *)
(* ------------------------------------------------------------------ *)

let test_deadline_wall () =
  let d = R.Deadline.create ~wall:0.02 () in
  Alcotest.(check bool) "fresh deadline alive" false (R.Deadline.expired d);
  Unix.sleepf 0.03;
  Alcotest.(check bool) "wall budget trips" true (R.Deadline.expired d);
  Alcotest.(check bool)
    "wall trip reported" true
    (R.Deadline.tripped d = Some R.Deadline.Wall)

let test_deadline_counters () =
  let d = R.Deadline.create ~pivots:10 () in
  R.Deadline.charge_pivots d 5;
  Alcotest.(check bool) "under budget" false (R.Deadline.expired d);
  R.Deadline.charge_pivots d 6;
  Alcotest.(check bool) "pivot budget trips" true (R.Deadline.expired d);
  Alcotest.(check bool)
    "pivot trip reported" true
    (R.Deadline.tripped d = Some R.Deadline.Pivots);
  let d = R.Deadline.create ~nodes:2 () in
  R.Deadline.charge_node d;
  R.Deadline.charge_node d;
  R.Deadline.charge_node d;
  Alcotest.(check bool) "node budget trips" true (R.Deadline.expired d);
  Alcotest.(check bool)
    "node trip reported" true
    (R.Deadline.tripped d = Some R.Deadline.Nodes)

let test_deadline_first_trip_latched () =
  let d = R.Deadline.create ~pivots:1 ~nodes:1 () in
  R.Deadline.charge_pivots d 2;
  ignore (R.Deadline.expired d);
  R.Deadline.charge_node d;
  R.Deadline.charge_node d;
  ignore (R.Deadline.expired d);
  Alcotest.(check bool)
    "first trip stays latched" true
    (R.Deadline.tripped d = Some R.Deadline.Pivots)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let test_faults_deterministic () =
  let draw () =
    with_faults ~seed:42
      [ ("p", { R.Faults.prob = 0.5; limit = None }) ]
      (fun () -> List.init 100 (fun _ -> R.Faults.fires "p"))
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  Alcotest.(check bool)
    "prob 0.5 actually fires sometimes" true
    (List.mem true a && List.mem false a)

let test_faults_limit () =
  with_faults ~seed:1
    [ ("kill", { R.Faults.prob = 1.; limit = Some 2 }) ]
    (fun () ->
      let fired =
        List.length (List.filter Fun.id (List.init 10 (fun _ -> R.Faults.fires "kill")))
      in
      Alcotest.(check int) "limit caps fires" 2 fired;
      Alcotest.(check int) "fired counter" 2 (R.Faults.fired "kill"));
  Alcotest.(check bool) "disarmed after" false (R.Faults.armed ());
  Alcotest.(check bool) "unarmed point never fires" false (R.Faults.fires "kill")

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_delay_pure () =
  let p = R.Retry.default_policy in
  for attempt = 0 to 5 do
    let d1 = R.Retry.delay p ~seed:7 ~attempt in
    let d2 = R.Retry.delay p ~seed:7 ~attempt in
    Alcotest.(check (float 0.)) "delay is pure" d1 d2;
    Alcotest.(check bool) "delay bounded" true (d1 >= 0. && d1 <= p.R.Retry.max_delay)
  done;
  Alcotest.(check bool)
    "different seeds decorrelate" true
    (R.Retry.delay p ~seed:1 ~attempt:3 <> R.Retry.delay p ~seed:2 ~attempt:3)

let test_retry_run () =
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let calls = ref 0 in
  let result =
    R.Retry.run ~seed:5 ~sleep
      ~retryable:(fun e -> e = `Transient)
      (fun ~attempt:_ ->
        incr calls;
        if !calls < 3 then Error `Transient else Ok !calls)
  in
  Alcotest.(check bool) "succeeds on third attempt" true (result = Ok 3);
  Alcotest.(check int) "two backoff sleeps" 2 (List.length !sleeps);
  (* a fatal error must return immediately, no sleeps *)
  sleeps := [];
  let result =
    R.Retry.run ~seed:5 ~sleep
      ~retryable:(fun e -> e = `Transient)
      (fun ~attempt:_ -> Error `Fatal)
  in
  Alcotest.(check bool) "fatal not retried" true (result = Error `Fatal);
  Alcotest.(check int) "no sleeps for fatal" 0 (List.length !sleeps)

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)
(* ------------------------------------------------------------------ *)

let test_breaker_cycle () =
  let b =
    R.Breaker.create ~window:8 ~min_samples:4 ~failure_rate:0.5
      ~cooldown_s:0.05 ()
  in
  Alcotest.(check bool) "starts closed" true (R.Breaker.state b = R.Breaker.Closed);
  for _ = 1 to 4 do
    R.Breaker.record b ~ok:false ~latency_s:0.01
  done;
  Alcotest.(check bool) "opens on failures" true (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check bool) "open sheds" true (R.Breaker.admit b = R.Breaker.Shed);
  Unix.sleepf 0.06;
  Alcotest.(check bool)
    "half-open probe after cooldown" true
    (R.Breaker.admit b = R.Breaker.Probe);
  (* while the probe is out, other callers are still shed *)
  Alcotest.(check bool)
    "concurrent callers shed during probe" true
    (R.Breaker.admit b = R.Breaker.Shed);
  R.Breaker.record b ~ok:true ~latency_s:0.01;
  Alcotest.(check bool) "probe success closes" true (R.Breaker.state b = R.Breaker.Closed);
  Alcotest.(check bool) "closed admits" true (R.Breaker.admit b = R.Breaker.Admit)

let test_breaker_probe_failure_reopens () =
  let b =
    R.Breaker.create ~window:8 ~min_samples:4 ~failure_rate:0.5
      ~cooldown_s:0.05 ()
  in
  for _ = 1 to 4 do
    R.Breaker.record b ~ok:false ~latency_s:0.01
  done;
  Unix.sleepf 0.06;
  Alcotest.(check bool) "probe admitted" true (R.Breaker.admit b = R.Breaker.Probe);
  R.Breaker.record b ~ok:false ~latency_s:0.01;
  Alcotest.(check bool) "probe failure reopens" true (R.Breaker.state b = R.Breaker.Open)

(* ------------------------------------------------------------------ *)
(* Solver under budgets                                                *)
(* ------------------------------------------------------------------ *)

(* A little LP that needs several pivots: maximize a sum under coupled
   capacity rows. *)
let multi_pivot_lp () =
  let m = Model.create () in
  let xs = Model.add_vars m 4 in
  Array.iter
    (fun x -> ignore (Model.add_constr m (Linexpr.var x) Model.Le 3.))
    xs;
  ignore
    (Model.add_constr m
       (Linexpr.of_terms (Array.to_list (Array.map (fun x -> (x, 1.)) xs)))
       Model.Le 8.);
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms (List.init 4 (fun i -> (xs.(i), float_of_int (i + 1)))));
  m

let test_lp_pivot_budget () =
  let full = Solver.solve_lp (multi_pivot_lp ()) in
  Alcotest.(check bool) "reference solves" true (full.Solver.status = Simplex.Optimal);
  Alcotest.(check bool) "reference needs pivots" true (full.Solver.iterations > 1);
  let d = R.Deadline.create ~pivots:1 () in
  let r = Solver.solve_lp ~deadline:d (multi_pivot_lp ()) in
  Alcotest.(check bool)
    "pivot budget truncates" true
    (r.Solver.status = Simplex.Iteration_limit);
  Alcotest.(check bool)
    "trip recorded" true
    (R.Deadline.tripped d = Some R.Deadline.Pivots)

(* Fixed knapsack-style MILP, hard enough to have a real tree. *)
let knapsack_milp n =
  let m = Model.create () in
  let xs = Model.add_vars ~kind:Model.Binary m n in
  let weight i = float_of_int ((17 * i mod 23) + 5) in
  let value i = weight i +. float_of_int (i mod 7) in
  ignore
    (Model.add_constr m
       (Linexpr.of_terms (List.init n (fun i -> (xs.(i), weight i))))
       Model.Le
       (0.4 *. Float.of_int n *. 16.));
  ignore
    (Model.add_constr m
       (Linexpr.of_terms (List.init n (fun i -> (xs.(i), 1.))))
       Model.Le (Float.of_int n /. 2.));
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms (List.init n (fun i -> (xs.(i), value i))));
  m

(* Market-split instance: m equality rows over n binaries with
   pseudo-random coefficients. Notoriously hard for branch-and-bound —
   proving anything takes far longer than the deadlines used below. *)
let market_split_milp ~n ~m =
  let model = Model.create () in
  let xs = Model.add_vars ~kind:Model.Binary model n in
  let a i j =
    float_of_int
      ((((i + 1) * 37 * (j + 3)) + (j * j * 11) + (i * j * j * j * 7)) mod 100)
  in
  for i = 0 to m - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      row_sum := !row_sum +. a i j
    done;
    ignore
      (Model.add_constr model
         (Linexpr.of_terms (List.init n (fun j -> (xs.(j), a i j))))
         Model.Eq
         (Float.of_int (int_of_float (!row_sum /. 2.))))
  done;
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), 1.))));
  model

let serial_opts = { Branch_bound.default_options with jobs = 1 }

let check_sound_outcome ~name ~true_opt outcome =
  match outcome with
  | O.Complete r ->
      Alcotest.(check bool)
        (name ^ ": complete matches reference") true
        (Float.abs (r.Branch_bound.objective -. true_opt)
        <= 1e-6 *. (1. +. Float.abs true_opt))
  | O.Feasible_bound { incumbent; proven_bound; _ } ->
      Alcotest.(check bool)
        (name ^ ": incumbent <= proven bound") true
        (incumbent <= proven_bound +. 1e-6);
      Alcotest.(check bool)
        (name ^ ": incumbent is achievable") true
        (incumbent <= true_opt +. 1e-6);
      Alcotest.(check bool)
        (name ^ ": proven bound covers the optimum") true
        (proven_bound >= true_opt -. 1e-6)
  | O.Degraded { result; _ } ->
      Option.iter
        (fun r ->
          Alcotest.(check bool)
            (name ^ ": degraded bound covers the optimum") true
            (r.Branch_bound.best_bound >= true_opt -. 1e-6))
        result
  | O.Failed e -> Alcotest.failf "%s: failed: %s" name (O.error_to_string e)

let test_bb_node_budget () =
  let model = knapsack_milp 14 in
  let reference = Solver.solve ~options:serial_opts (knapsack_milp 14) in
  Alcotest.(check bool)
    "reference optimal" true
    (reference.Branch_bound.outcome = Branch_bound.Optimal);
  let d = R.Deadline.create ~nodes:2 () in
  let outcome = Solver.solve_bounded ~options:serial_opts ~deadline:d model in
  Alcotest.(check bool)
    "node budget stops early" true
    (match outcome with O.Complete _ -> false | _ -> true);
  (match outcome with
  | O.Feasible_bound { reason; _ } | O.Degraded { reason; _ } ->
      Alcotest.(check bool) "reason is the node budget" true (reason = O.Node_budget)
  | _ -> ());
  check_sound_outcome ~name:"node budget"
    ~true_opt:reference.Branch_bound.objective outcome

let test_bb_wall_deadline_2x () =
  let wall = 0.15 in
  let model = market_split_milp ~n:30 ~m:3 in
  let d = R.Deadline.create ~wall () in
  let t0 = Unix.gettimeofday () in
  let outcome = Solver.solve_bounded ~options:serial_opts ~deadline:d model in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned within 2x deadline (%.3fs)" elapsed)
    true
    (elapsed <= 2. *. wall);
  (* the instance is big enough that the budget must have tripped *)
  (match outcome with
  | O.Complete _ -> Alcotest.fail "expected the wall budget to trip"
  | O.Feasible_bound { incumbent; proven_bound; reason; _ } ->
      Alcotest.(check bool) "wall reason" true (reason = O.Wall_deadline);
      Alcotest.(check bool)
        "incumbent <= proven bound" true
        (incumbent <= proven_bound +. 1e-6)
  | O.Degraded { reason; _ } ->
      Alcotest.(check bool) "wall reason" true (reason = O.Wall_deadline)
  | O.Failed e -> Alcotest.failf "failed: %s" (O.error_to_string e));
  Alcotest.(check bool)
    "deadline latched the wall trip" true
    (R.Deadline.tripped d = Some R.Deadline.Wall)

let test_bb_worker_death_degrades () =
  let reference = Solver.solve ~options:serial_opts (knapsack_milp 14) in
  with_faults ~seed:3
    [ ("worker_death", { R.Faults.prob = 1.; limit = Some 1 }) ]
    (fun () ->
      let outcome =
        Solver.solve_bounded
          ~options:{ Branch_bound.default_options with jobs = 4 }
          (knapsack_milp 14)
      in
      (match outcome with
      | O.Failed e ->
          Alcotest.failf "worker death must degrade, not fail: %s"
            (O.error_to_string e)
      | O.Feasible_bound { reason; _ } ->
          Alcotest.(check bool)
            "lost worker reported" true
            (match reason with O.Worker_lost n -> n >= 1 | _ -> false)
      | O.Complete _ | O.Degraded _ -> ());
      check_sound_outcome ~name:"worker death"
        ~true_opt:reference.Branch_bound.objective outcome)

let test_bb_pivot_stall_chaos () =
  (* stalls injected into every pivot loop; the wall deadline must still
     bound the solve to ~2x (each stall is 0.05s, checked per pivot) *)
  let wall = 0.2 in
  with_faults ~seed:11
    [ ("pivot_stall", { R.Faults.prob = 0.2; limit = None }) ]
    (fun () ->
      let d = R.Deadline.create ~wall () in
      let t0 = Unix.gettimeofday () in
      let outcome =
        Solver.solve_bounded ~options:serial_opts ~deadline:d
          (market_split_milp ~n:24 ~m:3)
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "stalled solve still bounded (%.3fs)" elapsed)
        true
        (elapsed <= 2. *. wall);
      match outcome with
      | O.Failed e -> Alcotest.failf "failed: %s" (O.error_to_string e)
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* qcheck: interrupting the tree search is always sound                *)
(* ------------------------------------------------------------------ *)

let random_milp_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* m = int_range 1 4 in
    let* a = array_size (return (m * n)) (float_range (-4.) 6.) in
    let* b = array_size (return m) (float_range 0.5 12.) in
    let* c = array_size (return n) (float_range (-3.) 8.) in
    let* budget = int_range 1 12 in
    return (n, m, a, b, c, budget))

let build_random_milp (n, m, a, b, c, _) =
  let model = Model.create () in
  let xs = Model.add_vars ~kind:Model.Binary model n in
  for i = 0 to m - 1 do
    ignore
      (Model.add_constr model
         (Linexpr.of_terms (List.init n (fun j -> (xs.(j), a.((i * n) + j)))))
         Model.Le b.(i))
  done;
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.init n (fun j -> (xs.(j), c.(j)))));
  model

let interrupt_sound_test ~jobs ~count =
  QCheck.Test.make ~count
    ~name:
      (Printf.sprintf
         "interrupted B&B keeps incumbent <= proven bound (jobs=%d)" jobs)
    (QCheck.make random_milp_gen)
    (fun ((_, _, _, _, _, budget) as inst) ->
      let reference =
        Solver.solve ~options:serial_opts (build_random_milp inst)
      in
      if reference.Branch_bound.outcome <> Branch_bound.Optimal then true
      else begin
        let true_opt = reference.Branch_bound.objective in
        let outcome =
          Solver.solve_bounded
            ~options:{ Branch_bound.default_options with jobs }
            ~deadline:(R.Deadline.create ~nodes:budget ())
            (build_random_milp inst)
        in
        (match outcome with
        | O.Complete r ->
            if
              Float.abs (r.Branch_bound.objective -. true_opt)
              > 1e-6 *. (1. +. Float.abs true_opt)
            then
              QCheck.Test.fail_reportf "complete but wrong: %g vs %g"
                r.Branch_bound.objective true_opt
        | O.Feasible_bound { incumbent; proven_bound; _ } ->
            if incumbent > proven_bound +. 1e-6 then
              QCheck.Test.fail_reportf "incumbent %g above bound %g" incumbent
                proven_bound;
            if incumbent > true_opt +. 1e-6 then
              QCheck.Test.fail_reportf "incumbent %g above optimum %g"
                incumbent true_opt;
            if proven_bound < true_opt -. 1e-6 then
              QCheck.Test.fail_reportf "bound %g below optimum %g" proven_bound
                true_opt
        | O.Degraded { result = Some r; _ } ->
            if r.Branch_bound.best_bound < true_opt -. 1e-6 then
              QCheck.Test.fail_reportf "degraded bound %g below optimum %g"
                r.Branch_bound.best_bound true_opt
        | O.Degraded { result = None; _ } -> ()
        | O.Failed e ->
            QCheck.Test.fail_reportf "failed: %s" (O.error_to_string e));
        true
      end)

(* ------------------------------------------------------------------ *)
(* Pool supervision                                                    *)
(* ------------------------------------------------------------------ *)

let test_pool_watchdog_rescues () =
  let pool = Pool.create ~heartbeat_timeout:0.1 ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* await_passive, not await: a helping await could run the job on
         the calling thread, where the watchdog cannot see it *)
      let stuck = Pool.submit pool (fun () -> Unix.sleepf 2.) in
      (match Pool.await_passive stuck with
      | () -> Alcotest.fail "stuck task should have been failed by the watchdog"
      | exception Pool.Stalled dt ->
          Alcotest.(check bool) "stall duration reported" true (dt >= 0.1)
      | exception e -> raise e);
      Alcotest.(check int) "one worker lost" 1 (Pool.lost_workers pool);
      (* the replacement domain keeps the pool at capacity *)
      let ok = Pool.submit pool (fun () -> 21 * 2) in
      Alcotest.(check int) "replacement serves" 42 (Pool.await_passive ok))

let test_pool_watchdog_no_false_positive () =
  let pool = Pool.create ~heartbeat_timeout:0.15 ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let fut =
        Pool.submit_poll pool (fun ~poll ->
            (* runs 4x the timeout, but polls often: never "stuck" *)
            for _ = 1 to 60 do
              Unix.sleepf 0.01;
              ignore (poll ())
            done;
            "done")
      in
      Alcotest.(check string)
        "polling task completes" "done" (Pool.await_passive fut);
      Alcotest.(check int) "no workers lost" 0 (Pool.lost_workers pool))

let test_pool_undrained_shutdown_wakes_passive_waiters () =
  let pool = Pool.create ~domains:1 () in
  let running = Pool.submit pool (fun () -> Unix.sleepf 0.3; 7) in
  (* give the worker time to pick [running] up, then queue one behind it *)
  Unix.sleepf 0.05;
  let queued = Pool.submit pool (fun () -> 8) in
  let shutdown_thread = Thread.create (fun () -> Pool.shutdown ~drain:false pool) () in
  (match Pool.await_passive queued with
  | _ -> Alcotest.fail "queued task should have been dropped"
  | exception Pool.Cancelled -> ());
  (* the already-running task still completes during the drain *)
  Alcotest.(check int) "running task still completes" 7 (Pool.await_passive running);
  Thread.join shutdown_thread

(* ------------------------------------------------------------------ *)
(* Scheduler deadlines                                                 *)
(* ------------------------------------------------------------------ *)

module Scheduler = Repro_serve.Scheduler

let test_scheduler_deadline () =
  let sched = Scheduler.create ~cost_bytes:(fun _ -> 8) () in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let r =
        Scheduler.submit sched ~key:1L ~deadline_s:0.05 (fun () ->
            Thread.delay 0.4;
            1)
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        "timed out, typed" true
        (match r with Error (Scheduler.Timed_out _) -> true | _ -> false);
      Alcotest.(check bool)
        (Printf.sprintf "gave up near the deadline (%.3fs)" elapsed)
        true (elapsed < 0.3);
      (* the solve itself finished and landed for the next caller *)
      Alcotest.(check int) "timeouts counted" 1 (Scheduler.stats sched).Scheduler.timed_out)

let test_scheduler_survives_pool_shutdown () =
  let pool = Pool.create ~domains:1 () in
  let sched = Scheduler.create ~pool ~cost_bytes:(fun _ -> 8) () in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      let submitter =
        Thread.create
          (fun () ->
            Scheduler.submit sched ~key:2L (fun () ->
                Thread.delay 0.3;
                2))
          ()
      in
      Unix.sleepf 0.08;
      (* kill the pool out from under the in-flight batch *)
      Pool.shutdown ~drain:false pool;
      Thread.join submitter;
      (* the dispatcher caught the pool failure and is still alive: the
         next submit gets a typed error, not a hang *)
      let r = Scheduler.submit sched ~key:3L (fun () -> 3) in
      Alcotest.(check bool)
        "post-shutdown submit fails typed" true
        (match r with Error _ -> true | Ok _ -> false))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "repro_resilience"
    [
      ( "deadline",
        [
          quick "wall budget" test_deadline_wall;
          quick "pivot and node budgets" test_deadline_counters;
          quick "first trip latched" test_deadline_first_trip_latched;
        ] );
      ( "faults",
        [
          quick "seeded determinism" test_faults_deterministic;
          quick "fire limit" test_faults_limit;
        ] );
      ( "retry",
        [
          quick "delay pure in (seed, attempt)" test_retry_delay_pure;
          quick "backoff schedule" test_retry_run;
        ] );
      ( "breaker",
        [
          quick "open, probe, close" test_breaker_cycle;
          quick "probe failure reopens" test_breaker_probe_failure_reopens;
        ] );
      ( "solver-budgets",
        [
          quick "lp pivot budget" test_lp_pivot_budget;
          quick "bb node budget" test_bb_node_budget;
          quick "bb wall deadline within 2x" test_bb_wall_deadline_2x;
          quick "worker death degrades" test_bb_worker_death_degrades;
          quick "pivot stall chaos" test_bb_pivot_stall_chaos;
        ] );
      ( "interrupt-soundness",
        [
          QCheck_alcotest.to_alcotest (interrupt_sound_test ~jobs:1 ~count:50);
          QCheck_alcotest.to_alcotest (interrupt_sound_test ~jobs:4 ~count:25);
        ] );
      ( "pool-supervision",
        [
          quick "watchdog rescues stalled task" test_pool_watchdog_rescues;
          quick "no false positives on polling tasks"
            test_pool_watchdog_no_false_positive;
          quick "undrained shutdown wakes passive waiters"
            test_pool_undrained_shutdown_wakes_passive_waiters;
        ] );
      ( "scheduler-deadline",
        [
          quick "per-request deadline" test_scheduler_deadline;
          quick "dispatcher survives pool shutdown"
            test_scheduler_survives_pool_shutdown;
        ] );
    ]
