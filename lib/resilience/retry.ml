type policy = {
  retries : int;
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
}

let default_policy =
  { retries = 4; base = 0.05; factor = 2.; max_delay = 2.; jitter = 0.5 }

let splitmix64 s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float bits =
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.

let delay p ~seed ~attempt =
  if attempt < 0 then invalid_arg "Retry.delay: attempt < 0";
  let raw = p.base *. (p.factor ** float_of_int attempt) in
  let u =
    (* draw [attempt] steps into the seeded stream so delays are a pure
       function of (seed, attempt), not of how many ran before *)
    let s = ref (Int64.of_int seed) in
    let bits = ref 0L in
    for _ = 0 to attempt do
      let b = splitmix64 !s in
      s := Int64.add !s 0x9E3779B97F4A7C15L;
      bits := b
    done;
    unit_float !bits
  in
  Float.min p.max_delay (raw *. (1. -. p.jitter +. (p.jitter *. u)))

let run ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ~retryable f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
        if attempt >= policy.retries || not (retryable e) then err
        else begin
          sleep (delay policy ~seed ~attempt);
          go (attempt + 1)
        end
  in
  go 0
