(** Structured degradation outcomes for budget-bounded solves.

    The contract every resilient layer promises: a bounded computation
    never hangs and never silently drops precision — it finishes with a
    proof ([Complete]), finishes early with a sound incumbent/bound pair
    ([Feasible_bound]), finishes early with whatever partial value it
    can still vouch for ([Degraded]), or fails with a typed error
    ([Failed]). Callers can always distinguish "the answer" from "the
    best answer the budget allowed". *)

type reason =
  | Wall_deadline
  | Pivot_budget
  | Node_budget
  | Stalled  (** no incumbent progress within the stall window *)
  | Interrupted  (** the caller's interrupt callback fired *)
  | Worker_lost of int  (** [n] workers died/stalled; search degraded *)
  | Load_shed  (** circuit breaker open: answered from fallback *)

type error =
  | Solver_failure of string  (** the solve raised; exception text *)
  | Fault_injected of string  (** a {!Faults} point fired terminally *)
  | Cancelled  (** cooperative cancellation before any result *)

type 'a t =
  | Complete of 'a
  | Feasible_bound of {
      result : 'a;
      incumbent : float;  (** best feasible objective found, model dir *)
      proven_bound : float;  (** valid bound on the true optimum *)
      reason : reason;
    }
  | Degraded of { result : 'a option; reason : reason }
  | Failed of error

val of_trip : Deadline.trip -> reason

val map : ('a -> 'b) -> 'a t -> 'b t

val result : 'a t -> 'a option
(** The payload, when any was produced. *)

val reason_to_string : reason -> string
val error_to_string : error -> string
val pp_reason : Format.formatter -> reason -> unit
val pp_error : Format.formatter -> error -> unit

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** One line: outcome class, reason and incumbent/bound when present. *)
