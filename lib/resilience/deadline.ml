type trip = Wall | Pivots | Nodes

type t = {
  start : float;
  wall : float; (* relative seconds; infinity = unbounded *)
  pivot_limit : int; (* max_int = unbounded *)
  node_limit : int;
  pivots : int Atomic.t;
  nodes : int Atomic.t;
  (* first observed trip, latched so [tripped] stays stable while other
     budgets keep draining. 0 = none, 1 = wall, 2 = pivots, 3 = nodes *)
  latch : int Atomic.t;
}

let now () = Unix.gettimeofday ()

let create ?wall ?pivots ?nodes () =
  (match wall with
  | Some w when w < 0. -> invalid_arg "Deadline.create: wall < 0"
  | _ -> ());
  {
    start = now ();
    wall = Option.value wall ~default:infinity;
    pivot_limit = Option.value pivots ~default:max_int;
    node_limit = Option.value nodes ~default:max_int;
    pivots = Atomic.make 0;
    nodes = Atomic.make 0;
    latch = Atomic.make 0;
  }

let charge_pivots t n = if n > 0 then ignore (Atomic.fetch_and_add t.pivots n)
let charge_node t = Atomic.incr t.nodes

let latch t code = ignore (Atomic.compare_and_set t.latch 0 code : bool)

let expired t =
  Atomic.get t.latch <> 0
  ||
  if Atomic.get t.pivots > t.pivot_limit then begin
    latch t 2;
    true
  end
  else if Atomic.get t.nodes > t.node_limit then begin
    latch t 3;
    true
  end
  else if t.wall < infinity && now () -. t.start > t.wall then begin
    latch t 1;
    true
  end
  else false

let tripped t =
  if not (expired t) then None
  else
    match Atomic.get t.latch with
    | 1 -> Some Wall
    | 2 -> Some Pivots
    | 3 -> Some Nodes
    | _ -> None

let remaining_wall t =
  if t.wall = infinity then infinity
  else Float.max 0. (t.wall -. (now () -. t.start))

let elapsed t = now () -. t.start
let pivots_used t = Atomic.get t.pivots
let nodes_used t = Atomic.get t.nodes

let trip_to_string = function
  | Wall -> "wall-clock"
  | Pivots -> "pivot-budget"
  | Nodes -> "node-budget"

let pp_trip ppf tr = Fmt.string ppf (trip_to_string tr)
