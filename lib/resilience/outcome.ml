type reason =
  | Wall_deadline
  | Pivot_budget
  | Node_budget
  | Stalled
  | Interrupted
  | Worker_lost of int
  | Load_shed

type error =
  | Solver_failure of string
  | Fault_injected of string
  | Cancelled

type 'a t =
  | Complete of 'a
  | Feasible_bound of {
      result : 'a;
      incumbent : float;
      proven_bound : float;
      reason : reason;
    }
  | Degraded of { result : 'a option; reason : reason }
  | Failed of error

let of_trip = function
  | Deadline.Wall -> Wall_deadline
  | Deadline.Pivots -> Pivot_budget
  | Deadline.Nodes -> Node_budget

let map f = function
  | Complete r -> Complete (f r)
  | Feasible_bound { result; incumbent; proven_bound; reason } ->
      Feasible_bound { result = f result; incumbent; proven_bound; reason }
  | Degraded { result; reason } -> Degraded { result = Option.map f result; reason }
  | Failed e -> Failed e

let result = function
  | Complete r -> Some r
  | Feasible_bound { result; _ } -> Some result
  | Degraded { result; _ } -> result
  | Failed _ -> None

let reason_to_string = function
  | Wall_deadline -> "wall-deadline"
  | Pivot_budget -> "pivot-budget"
  | Node_budget -> "node-budget"
  | Stalled -> "stalled"
  | Interrupted -> "interrupted"
  | Worker_lost n -> Printf.sprintf "worker-lost(%d)" n
  | Load_shed -> "load-shed"

let error_to_string = function
  | Solver_failure m -> "solver-failure: " ^ m
  | Fault_injected p -> "fault-injected: " ^ p
  | Cancelled -> "cancelled"

let pp_reason ppf r = Fmt.string ppf (reason_to_string r)
let pp_error ppf e = Fmt.string ppf (error_to_string e)

let pp pp_r ppf = function
  | Complete r -> Fmt.pf ppf "complete (%a)" pp_r r
  | Feasible_bound { incumbent; proven_bound; reason; _ } ->
      Fmt.pf ppf "feasible-bound [%a]: incumbent %.6g, proven bound %.6g"
        pp_reason reason incumbent proven_bound
  | Degraded { reason; result } ->
      Fmt.pf ppf "degraded [%a]%s" pp_reason reason
        (match result with Some _ -> " (partial result)" | None -> "")
  | Failed e -> Fmt.pf ppf "failed: %a" pp_error e
