type state = Closed | Open | Half_open

type decision = Admit | Probe | Shed

type t = {
  mu : Mutex.t;
  window : int;
  min_samples : int;
  failure_rate : float;
  latency_s : float;
  cooldown_s : float;
  (* ring of recent operations *)
  ok_ring : bool array;
  lat_ring : float array;
  mutable filled : int;
  mutable next : int;
  mutable st : state;
  mutable opened_at : float;
  mutable probe_out : bool; (* half-open canary in flight *)
  mutable shed : int;
  mutable opened : int;
}

let create ?(window = 32) ?(min_samples = 8) ?(failure_rate = 0.5)
    ?(latency_s = infinity) ?(cooldown_s = 5.0) () =
  if window < 1 then invalid_arg "Breaker.create: window < 1";
  {
    mu = Mutex.create ();
    window;
    min_samples;
    failure_rate;
    latency_s;
    cooldown_s;
    ok_ring = Array.make window true;
    lat_ring = Array.make window 0.;
    filled = 0;
    next = 0;
    st = Closed;
    opened_at = 0.;
    probe_out = false;
    shed = 0;
    opened = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* mutex held *)
let window_metrics t =
  let fails = ref 0 and lat = ref 0. in
  for i = 0 to t.filled - 1 do
    if not t.ok_ring.(i) then incr fails;
    lat := !lat +. t.lat_ring.(i)
  done;
  let n = Float.max 1. (float_of_int t.filled) in
  (float_of_int !fails /. n, !lat /. n)

(* mutex held *)
let reset_window t =
  t.filled <- 0;
  t.next <- 0

let admit t =
  locked t (fun () ->
      match t.st with
      | Closed -> Admit
      | Open ->
          if Unix.gettimeofday () -. t.opened_at >= t.cooldown_s then begin
            t.st <- Half_open;
            t.probe_out <- true;
            Probe
          end
          else begin
            t.shed <- t.shed + 1;
            Shed
          end
      | Half_open ->
          if t.probe_out then begin
            t.shed <- t.shed + 1;
            Shed
          end
          else begin
            t.probe_out <- true;
            Probe
          end)

let record t ~ok ~latency_s =
  locked t (fun () ->
      match t.st with
      | Half_open ->
          t.probe_out <- false;
          if ok then begin
            t.st <- Closed;
            reset_window t
          end
          else begin
            t.st <- Open;
            t.opened_at <- Unix.gettimeofday ();
            t.opened <- t.opened + 1
          end
      | Open -> () (* a straggler from before the trip; nothing to decide *)
      | Closed ->
          t.ok_ring.(t.next) <- ok;
          t.lat_ring.(t.next) <- latency_s;
          t.next <- (t.next + 1) mod t.window;
          if t.filled < t.window then t.filled <- t.filled + 1;
          if t.filled >= t.min_samples then begin
            let fail_rate, mean_lat = window_metrics t in
            if fail_rate >= t.failure_rate || mean_lat >= t.latency_s then begin
              t.st <- Open;
              t.opened_at <- Unix.gettimeofday ();
              t.opened <- t.opened + 1;
              reset_window t
            end
          end)

let state t = locked t (fun () -> t.st)

type stats = { shed : int; opened : int; window_failure_rate : float }

let stats t =
  locked t (fun () ->
      let fr, _ = window_metrics t in
      { shed = t.shed; opened = t.opened; window_failure_rate = fr })

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
