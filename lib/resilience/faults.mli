(** Deterministic, seeded fault injection for chaos testing.

    Production code marks its vulnerable spots with named {e injection
    points} ([Faults.fires "pivot_stall"], [Faults.inject
    "worker_death"], ...). With no faults armed — the default, always —
    every point is a single atomic load and the system behaves exactly
    as if this module did not exist. A chaos test (or
    [REPRO_FAULTS]/[REPRO_FAULT_SEED] in the environment) arms a set of
    points with firing probabilities; each point then draws from its own
    splitmix64 stream seeded by [seed] and the point name, so a given
    seed produces a reproducible fault schedule per point regardless of
    which other points are armed.

    Points are process-global (chaos tests exercise whole stacks, and
    worker domains must see the same schedule), so arm/disarm from one
    test at a time.

    {b Network fault points} (serve-stack chaos, armed like any other —
    e.g. [REPRO_FAULTS="conn_reset:0.1"]):
    - ["conn_reset"] — a CRC-framed write ships only a frame prefix,
      shuts the socket down and raises [ECONNRESET]: the peer sees a
      torn frame then a dead connection (mid-write peer crash).
    - ["partial_write"] — a CRC-framed write is split into two delayed
      [write] calls: exercises short-read handling in the frame decoder
      without killing the connection.
    - ["slow_peer"] — the daemon stalls 200ms before writing a
      response: exercises client/router timeouts, failover and the
      failure detector's bounded ping. *)

exception Injected of string
(** Raised by {!inject} when its point fires: the simulated crash. *)

type spec = { prob : float; limit : int option }
(** Firing probability per call, and an optional cap on total fires
    (e.g. "kill exactly one worker": [prob = 1.; limit = Some 1]). *)

val arm : seed:int -> points:(string * spec) list -> unit
(** Replace the armed configuration. Unlisted points never fire. *)

val arm_from_env : unit -> unit
(** Arm from [REPRO_FAULTS="point:prob[:limit],..."] with seed
    [REPRO_FAULT_SEED] (default 0). No-op when the variable is unset;
    malformed entries are ignored with a warning. *)

val disarm : unit -> unit

val armed : unit -> bool

val fires : string -> bool
(** Advance the point's stream; true when the fault should happen now.
    Always false when disarmed or the point is not armed. *)

val inject : string -> unit
(** [if fires point then raise (Injected point)]. *)

val stall : string -> seconds:float -> unit
(** If the point fires, sleep — the simulated stuck pivot / wedged
    worker that only a deadline or watchdog can rescue. *)

val fired : string -> int
(** How many times the point has fired since it was armed. *)
