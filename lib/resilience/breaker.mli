(** Circuit breaker: sheds load when recent solves fail or run long.

    Classic three-state machine over a sliding window of recent
    operations. [Closed]: everything is admitted. When, with at least
    [min_samples] operations in the window, the failure rate reaches
    [failure_rate] {e or} the mean latency reaches [latency_s], the
    breaker opens: {!admit} answers [Shed] so the caller can fall back
    to a cached/blackbox answer instead of queueing more doomed work.
    After [cooldown_s] it goes half-open: a single probe operation is
    admitted; its success closes the breaker, its failure re-opens it.

    Thread-safe; one breaker is shared by every connection handler of a
    daemon. *)

type t

type decision = Admit | Probe | Shed

val create :
  ?window:int ->
  ?min_samples:int ->
  ?failure_rate:float ->
  ?latency_s:float ->
  ?cooldown_s:float ->
  unit ->
  t
(** Defaults: window 32, min_samples 8, failure_rate 0.5, latency_s
    [infinity] (failure-rate-only), cooldown_s 5.0. *)

val admit : t -> decision
(** [Probe] is [Admit] for the single half-open canary; callers treat
    them alike but {b must} call {!record} for a probe, or the breaker
    stays half-open with the probe slot taken until {!record} arrives
    from elsewhere. *)

val record : t -> ok:bool -> latency_s:float -> unit
(** Report an operation's fate. Shed operations are not recorded. *)

type state = Closed | Open | Half_open

val state : t -> state

type stats = { shed : int; opened : int; window_failure_rate : float }

val stats : t -> stats
val state_to_string : state -> string
