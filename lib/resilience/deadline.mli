(** Unified cooperative budget: wall clock, simplex pivots, tree nodes.

    A [t] is created once per request/solve and threaded down the stack;
    every layer charges the work it performs ({!charge_pivots} in the
    simplex pivot loops, {!charge_node} per branch-and-bound expansion)
    and polls {!expired} at its natural cadence. The three budgets are
    one value so a caller can say "this solve gets 2 seconds, 100k
    pivots, 5k nodes, whichever trips first" and every layer below
    respects all of them without knowing which the caller cares about.

    Charging uses atomics and expiry checks are wait-free, so one
    deadline can be shared by every worker domain of a parallel tree
    search. Wall time is measured from [Unix.gettimeofday] deltas
    against the creation instant, never from absolute timestamps, so a
    clock step cannot spuriously expire a budget (the closest to a
    monotonic clock the stdlib offers).

    A solve given no deadline must behave bit-identically to one built
    before this module existed: every consumer treats
    [deadline = None] as "skip all checks". *)

type t

type trip = Wall | Pivots | Nodes

val create : ?wall:float -> ?pivots:int -> ?nodes:int -> unit -> t
(** [wall] is a relative budget in seconds from now; [pivots]/[nodes]
    are total counts. Omitted budgets never trip. *)

val charge_pivots : t -> int -> unit
(** Add simplex pivots to the consumed-pivot counter. *)

val charge_node : t -> unit
(** Count one branch-and-bound node expansion. *)

val expired : t -> bool
(** True once any budget is exhausted. Monotone: once true, always
    true (the first observed trip is latched, so {!tripped} is stable
    even as later budgets also run out). *)

val tripped : t -> trip option
(** Which budget tripped first, once {!expired} is true. *)

val remaining_wall : t -> float
(** Seconds left on the wall budget; [infinity] if none was set. *)

val elapsed : t -> float
(** Seconds since the deadline was created. *)

val pivots_used : t -> int
val nodes_used : t -> int

val pp_trip : Format.formatter -> trip -> unit
val trip_to_string : trip -> string
