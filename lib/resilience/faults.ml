exception Injected of string

type spec = { prob : float; limit : int option }

type point = {
  spec : spec;
  mutable state : int64; (* splitmix64 stream *)
  mutable count : int; (* fires so far *)
}

let is_armed = Atomic.make false
let mu = Mutex.create ()
let points : (string, point) Hashtbl.t = Hashtbl.create 8

let src = Logs.Src.create "repro.faults" ~doc:"fault injection"

module Log = (val Logs.src_log src : Logs.LOG)

(* splitmix64: tiny, good, and stdlib-only *)
let splitmix64 s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

let unit_float bits =
  (* top 53 bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.

let seed_for ~seed name =
  (* fold the point name into the seed so each point gets its own
     stream, stable under changes to the rest of the armed set *)
  let h = ref (Int64.of_int seed) in
  String.iter
    (fun c -> h := Int64.add (Int64.mul !h 31L) (Int64.of_int (Char.code c)))
    name;
  !h

let arm ~seed ~points:pts =
  Mutex.lock mu;
  Hashtbl.reset points;
  List.iter
    (fun (name, spec) ->
      Hashtbl.replace points name
        { spec; state = seed_for ~seed name; count = 0 })
    pts;
  Atomic.set is_armed (pts <> []);
  Mutex.unlock mu

let disarm () =
  Mutex.lock mu;
  Hashtbl.reset points;
  Atomic.set is_armed false;
  Mutex.unlock mu

let armed () = Atomic.get is_armed

let fires name =
  Atomic.get is_armed
  && begin
       Mutex.lock mu;
       let hit =
         match Hashtbl.find_opt points name with
         | None -> false
         | Some p ->
             let over_limit =
               match p.spec.limit with Some l -> p.count >= l | None -> false
             in
             if over_limit then false
             else begin
               let state, bits = splitmix64 p.state in
               p.state <- state;
               let hit = unit_float bits < p.spec.prob in
               if hit then begin
                 p.count <- p.count + 1;
                 Log.warn (fun m -> m "fault %S fired (#%d)" name p.count)
               end;
               hit
             end
       in
       Mutex.unlock mu;
       hit
     end

let inject name = if fires name then raise (Injected name)
let stall name ~seconds = if fires name then Unix.sleepf seconds

let fired name =
  Mutex.lock mu;
  let n =
    match Hashtbl.find_opt points name with Some p -> p.count | None -> 0
  in
  Mutex.unlock mu;
  n

let arm_from_env () =
  match Sys.getenv_opt "REPRO_FAULTS" with
  | None | Some "" -> ()
  | Some s ->
      let seed =
        match Sys.getenv_opt "REPRO_FAULT_SEED" with
        | Some v -> ( match int_of_string_opt v with Some i -> i | None -> 0)
        | None -> 0
      in
      let parse_one entry =
        match String.split_on_char ':' (String.trim entry) with
        | [ name; prob ] -> (
            match float_of_string_opt prob with
            | Some p when p >= 0. -> Some (name, { prob = p; limit = None })
            | _ -> None)
        | [ name; prob; limit ] -> (
            match (float_of_string_opt prob, int_of_string_opt limit) with
            | Some p, Some l when p >= 0. && l >= 0 ->
                Some (name, { prob = p; limit = Some l })
            | _ -> None)
        | _ -> None
      in
      let pts =
        List.filter_map
          (fun e ->
            if String.trim e = "" then None
            else
              match parse_one e with
              | Some _ as ok -> ok
              | None ->
                  Log.warn (fun m -> m "REPRO_FAULTS: ignoring %S" e);
                  None)
          (String.split_on_char ',' s)
      in
      arm ~seed ~points:pts
