(** Client-side retry with jittered exponential backoff.

    Delays are deterministic given [seed] (splitmix64 jitter, same
    generator as {!Faults}), so tests can assert exact schedules:
    attempt [k] sleeps [base * factor^k * (1 - jitter + jitter * u_k)]
    capped at [max_delay], where [u_k] is the seeded uniform draw. The
    jitter decorrelates fleets of clients that all saw the same daemon
    restart — without it they retry in lockstep and re-create the spike
    that knocked the daemon over. *)

type policy = {
  retries : int;  (** additional attempts after the first *)
  base : float;  (** first delay, seconds *)
  factor : float;
  max_delay : float;
  jitter : float;  (** in [0,1]: fraction of the delay randomized *)
}

val default_policy : policy
(** 4 retries, base 0.05s, factor 2, max 2s, jitter 0.5. *)

val delay : policy -> seed:int -> attempt:int -> float
(** The backoff before retry [attempt] (0-based). Pure. *)

val run :
  ?policy:policy ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  retryable:('e -> bool) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run the operation, sleeping the backoff schedule between failed
    attempts while [retryable] says the error is transient. Returns the
    first success or the last error. [sleep] defaults to
    [Unix.sleepf] (injectable for tests). *)
