(* Concurrent best-bound node pool for parallel branch-and-bound.

   Per-worker max-heaps under one lock: a worker pushes children onto
   its own heap, and [take] hands out the globally best-bound top across
   every heap (own heap wins ties), stealing when the best open node
   lives elsewhere. Workers therefore always launch their next dive from
   the most promising frontier node, while the heap-per-worker layout
   keeps sibling nodes with the worker that produced them — ties resolve
   to local (warm-start-cheap) work.

   Termination is exact: [take] returns [None] only once every heap is
   empty AND no worker is still expanding a node (an in-flight node may
   still push children), or after [stop]. The [active] counter plus a
   condition variable implement that protocol; a sleeping worker is
   always woken by the push of a child, by the last active worker
   finishing, or by [stop]. *)

type 'a t = {
  mu : Mutex.t;
  wake : Condition.t;
  heaps : 'a Heap.t array;
  current : float array; (* priority of each worker's in-flight node; nan = idle *)
  mutable active : int;
  mutable stopped : bool;
  mutable steals : int;
  mutable idle_s : float;
  (* a worker died mid-expansion: its in-flight subtree is unproven
     forever, so its bound is folded into [best_open] permanently *)
  mutable lost : int;
  mutable lost_prio : float; (* nan = nothing lost *)
}

let create ~workers =
  if workers < 1 then invalid_arg "Node_pool.create";
  {
    mu = Mutex.create ();
    wake = Condition.create ();
    heaps = Array.init workers (fun _ -> Heap.create ());
    current = Array.make workers Float.nan;
    active = 0;
    stopped = false;
    steals = 0;
    idle_s = 0.;
    lost = 0;
    lost_prio = Float.nan;
  }

let workers t = Array.length t.heaps

let push t ~worker ~prio x =
  Mutex.lock t.mu;
  Heap.push t.heaps.(worker) prio x;
  Condition.broadcast t.wake;
  Mutex.unlock t.mu

let take t ~worker =
  Mutex.lock t.mu;
  let result = ref None in
  (try
     while true do
       if t.stopped then raise Exit;
       (* global best-bound take: dives launch from the most promising
          open node anywhere, not just this worker's leftovers. The own
          heap wins ties so a worker keeps local (warm-start-cheap) work
          when it is as good as anything stealable. *)
       let victim =
         let best = ref (-1) and best_p = ref neg_infinity in
         let consider i =
           let h = t.heaps.(i) in
           if not (Heap.is_empty h) then begin
             let p = Heap.max_priority h in
             if !best < 0 || p > !best_p then begin
               best_p := p;
               best := i
             end
           end
         in
         consider worker;
         Array.iteri (fun i _ -> if i <> worker then consider i) t.heaps;
         if !best >= 0 then Some !best else None
       in
       match victim with
       | Some v ->
           let prio, x = Heap.pop t.heaps.(v) in
           if v <> worker then t.steals <- t.steals + 1;
           t.active <- t.active + 1;
           t.current.(worker) <- prio;
           result := Some (prio, x, v <> worker);
           raise Exit
       | None ->
           if t.active = 0 then begin
             (* globally exhausted: wake the other sleepers so they exit *)
             Condition.broadcast t.wake;
             raise Exit
           end;
           let t0 = Unix.gettimeofday () in
           Condition.wait t.wake t.mu;
           t.idle_s <- t.idle_s +. (Unix.gettimeofday () -. t0)
     done
   with Exit -> ());
  Mutex.unlock t.mu;
  !result

let continue_with t ~worker ~prio =
  Mutex.lock t.mu;
  t.current.(worker) <- prio;
  Mutex.unlock t.mu

let finish t ~worker =
  Mutex.lock t.mu;
  t.active <- t.active - 1;
  t.current.(worker) <- Float.nan;
  if t.active = 0 then Condition.broadcast t.wake;
  Mutex.unlock t.mu

let stop t =
  Mutex.lock t.mu;
  t.stopped <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mu

(* mutex held *)
let release_in_flight t ~worker =
  let p = t.current.(worker) in
  if not (Float.is_nan p) then begin
    if Float.is_nan t.lost_prio || p > t.lost_prio then t.lost_prio <- p;
    t.current.(worker) <- Float.nan;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.broadcast t.wake
  end

let abandon t ~worker =
  Mutex.lock t.mu;
  release_in_flight t ~worker;
  Mutex.unlock t.mu

let reclaim t ~worker =
  Mutex.lock t.mu;
  t.lost <- t.lost + 1;
  release_in_flight t ~worker;
  Mutex.unlock t.mu

let lost t =
  Mutex.lock t.mu;
  let l = t.lost in
  Mutex.unlock t.mu;
  l

let best_open t =
  Mutex.lock t.mu;
  let best = ref neg_infinity and found = ref false in
  Array.iter
    (fun h ->
      if not (Heap.is_empty h) then begin
        let p = Heap.max_priority h in
        if (not !found) || p > !best then best := p;
        found := true
      end)
    t.heaps;
  Array.iter
    (fun p ->
      if not (Float.is_nan p) then begin
        if (not !found) || p > !best then best := p;
        found := true
      end)
    t.current;
  if not (Float.is_nan t.lost_prio) then begin
    if (not !found) || t.lost_prio > !best then best := t.lost_prio;
    found := true
  end;
  Mutex.unlock t.mu;
  if !found then Some !best else None

let stats t =
  Mutex.lock t.mu;
  let s = (t.steals, t.idle_s) in
  Mutex.unlock t.mu;
  s
