type cut = { terms : (int * float) array; rhs : float; origin : string }

type t = {
  mutable cuts : cut array;
  mutable len : int;
  seen : (string, unit) Hashtbl.t;
  mu : Mutex.t;
}

let create () =
  { cuts = [||]; len = 0; seen = Hashtbl.create 64; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Scale so the largest |coefficient| is 1, then round to 7 significant
   digits: the same row re-derived at different nodes hashes equal even
   when the arithmetic ran in a different order. *)
let fingerprint c =
  let amax =
    Array.fold_left (fun acc (_, a) -> Float.max acc (Float.abs a)) 0. c.terms
  in
  let s = if amax > 0. then 1. /. amax else 1. in
  let buf = Buffer.create (16 * (1 + Array.length c.terms)) in
  Array.iter
    (fun (j, a) -> Buffer.add_string buf (Printf.sprintf "%d:%.6e;" j (a *. s)))
    c.terms;
  Buffer.add_string buf (Printf.sprintf "<=%.6e" (c.rhs *. s));
  Buffer.contents buf

let size t = locked t (fun () -> t.len)

let add t c =
  locked t (fun () ->
      let key = fingerprint c in
      if Hashtbl.mem t.seen key then false
      else begin
        Hashtbl.add t.seen key ();
        let cap = Array.length t.cuts in
        if t.len = cap then begin
          let cuts = Array.make (Int.max 16 (2 * cap)) c in
          Array.blit t.cuts 0 cuts 0 t.len;
          t.cuts <- cuts
        end;
        t.cuts.(t.len) <- c;
        t.len <- t.len + 1;
        true
      end)

let get t i =
  locked t (fun () ->
      if i < 0 || i >= t.len then invalid_arg "Cut_pool.get";
      t.cuts.(i))

let slice t ~lo ~hi =
  locked t (fun () ->
      if lo < 0 || hi > t.len || lo > hi then invalid_arg "Cut_pool.slice";
      Array.sub t.cuts lo (hi - lo))
