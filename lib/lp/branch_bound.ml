module Engine = Repro_engine

type options = {
  time_limit : float;
  node_limit : int;
  gap_tol : float;
  stall_time : float;
  stall_improvement : float;
  int_tol : float;
  sos_tol : float;
  log_progress : bool;
  interrupt : unit -> bool;
  backend : Backend.kind option;
  warm_start : bool;
  jobs : int;
  (* unified wall/pivot/node budget, shared by every worker and charged
     down inside the simplex; [None] keeps the search bit-identical to
     a build without the resilience layer *)
  deadline : Repro_resilience.Deadline.t option;
  (* relaxation pipeline (cut separation, node bound tightening,
     pseudo-cost branching); [Relaxation.disabled] — the default —
     keeps the historical one-LP-per-node loop bit-identical *)
  cuts : Relaxation.config;
}

let default_options =
  {
    time_limit = 60.;
    node_limit = 100_000;
    gap_tol = 1e-6;
    stall_time = 10.;
    stall_improvement = 0.005;
    int_tol = 1e-6;
    sos_tol = 1e-6;
    log_progress = false;
    interrupt = (fun () -> false);
    backend = None;
    warm_start = true;
    jobs = Engine.Jobs.default ();
    deadline = None;
    cuts = Relaxation.of_env Relaxation.disabled;
  }

type outcome = Optimal | Feasible | No_incumbent | Infeasible | Unbounded

type tree_stats = { workers : int; steals : int; idle_s : float; lost : int }

let serial_tree_stats = { workers = 1; steals = 0; idle_s = 0.; lost = 0 }

type result = {
  outcome : outcome;
  objective : float;
  best_bound : float;
  mip_gap : float;
  primal : float array option;
  nodes : int;
  simplex_iterations : int;
  lp_stats : Simplex.stats;
  elapsed : float;
  incumbent_trace : (float * float) list;
  tree : tree_stats;
}

type node = {
  (* full list of bound overrides along the path from the root; later
     entries shadow earlier ones for the same variable *)
  overrides : (int * float * float) list;
  depth : int;
  (* the branch that created this node — (var, went up, fractional
     distance, parent bound) — fuels pseudo-cost learning *)
  origin : (int * bool * float * float) option;
}

let src = Logs.Src.create "repro.branch_bound" ~doc:"MILP branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

let now () = Unix.gettimeofday ()

(* Apply a node's override list to a backend, given the set of overrides
   already in effect from the previously solved node. Shared verbatim by
   the serial loop and every parallel worker so both walk the tree with
   identical bound sequences. *)
let apply_overrides simplex applied ~root_lb ~root_ub overrides =
  let targets = Hashtbl.create 16 in
  List.iter (fun (v, lo, hi) -> Hashtbl.replace targets v (lo, hi)) overrides;
  (* reset previously-applied vars that this node does not override *)
  let stale = ref [] in
  Hashtbl.iter
    (fun v () -> if not (Hashtbl.mem targets v) then stale := v :: !stale)
    applied;
  List.iter
    (fun v ->
      Backend.set_bounds simplex v ~lb:root_lb.(v) ~ub:root_ub.(v);
      Hashtbl.remove applied v)
    !stale;
  Hashtbl.iter
    (fun v (lo, hi) ->
      Backend.set_bounds simplex v ~lb:lo ~ub:hi;
      Hashtbl.replace applied v ())
    targets

(* Most-violated branching entity in a relaxation solution. *)
type violation =
  | No_violation
  | Fractional of int * float (* var, value *)
  | Sos_violated of int array * int (* group, index of largest member *)

let find_violation ~int_tol ~sos_tol ~int_vars ~sos x =
  let best = ref No_violation and best_score = ref 0. in
  Array.iter
    (fun v ->
      let frac = Float.abs (x.(v) -. Float.round x.(v)) in
      if frac > int_tol && frac > !best_score then begin
        best := Fractional (v, x.(v));
        best_score := frac
      end)
    int_vars;
  Array.iter
    (fun group ->
      (* second-largest magnitude must be ~0 for SOS1 feasibility *)
      let arg_max = ref 0 and vmax = ref (-1.) and second = ref 0. in
      Array.iteri
        (fun i v ->
          let m = Float.abs x.(v) in
          if m > !vmax then begin
            second := !vmax;
            vmax := m;
            arg_max := i
          end
          else if m > !second then second := m)
        group;
      if !second > sos_tol && !second > !best_score then begin
        best := Sos_violated (group, !arg_max);
        best_score := !second
      end)
    sos;
  !best

let mip_gap_of ~objective ~bound =
  if Float.is_nan objective || Float.is_nan bound then Float.nan
  else Float.abs (bound -. objective) /. Float.max 1e-9 (Float.abs objective)

(* The relaxation pipeline around one node's LP: solve, then while the
   relaxation stays fractional alternate cut-separation rounds with one
   bound-tightening pass, re-solving (dual simplex, basis kept warm by
   the backends' append-row machinery) after every change. [None] means
   interval propagation emptied a box — the node is infeasible. With
   the pipeline disabled ([mgr = None]) this is exactly one LP solve,
   bit-identical to the historical loop. Node-local tightenings are
   registered in [applied] so the next node's [apply_overrides] resets
   them to root bounds. *)
let refine_node ~opts ~mgr ~int_vars ~sos ~applied ~prunable ~on_cut ~bt be
    ~depth =
  let solve_lp () =
    if opts.warm_start then Backend.resolve ?deadline:opts.deadline be
    else Backend.solve_fresh ?deadline:opts.deadline be
  in
  match mgr with
  | None -> Some (solve_lp ())
  | Some mgr ->
      let cfg = Relaxation.config mgr in
      let budget =
        if depth = 0 then cfg.Relaxation.max_rounds
        else if depth <= cfg.Relaxation.max_depth then
          cfg.Relaxation.node_rounds
        else 0
      in
      let round = ref 0 and tightened = ref false in
      let rec go () =
        let sol = solve_lp () in
        match sol.Simplex.status with
        | Simplex.Optimal when not (prunable sol.Simplex.objective) -> (
            match
              find_violation ~int_tol:opts.int_tol ~sos_tol:opts.sos_tol
                ~int_vars ~sos sol.Simplex.primal
            with
            | No_violation -> Some sol
            | _ ->
                if
                  !round < budget
                  && Relaxation.separate mgr be ~primal:sol.Simplex.primal
                       ?on_cut ()
                     > 0
                then begin
                  incr round;
                  go ()
                end
                else if cfg.Relaxation.tighten && not !tightened then begin
                  tightened := true;
                  match Relaxation.tighten mgr be with
                  | `Infeasible -> None
                  | `Tightened [] -> Some sol
                  | `Tightened changes ->
                      List.iter
                        (fun (v, lo, hi) ->
                          Backend.set_bounds be v ~lb:lo ~ub:hi;
                          Hashtbl.replace applied v ())
                        changes;
                      bt := !bt + List.length changes;
                      go ()
                end
                else Some sol)
        | _ -> Some sol
      in
      go ()

(* ------------------------------------------------------------------ *)
(* Serial tree search (the jobs = 1 path, bit-exact)                   *)
(* ------------------------------------------------------------------ *)

type state = {
  model : Model.t;
  maximize : bool;
  opts : options;
  simplex : Backend.t;
  root_lb : float array;
  root_ub : float array;
  int_vars : int array;
  sos : int array array;
  heap : node Heap.t;
  applied : (int, unit) Hashtbl.t;
  mgr : Relaxation.t option;
  pc : Relaxation.pseudocost;
  bt : int ref; (* node bound-tightenings applied, for stats *)
  on_cut : (Cut_pool.cut -> unit) option;
  mutable incumbent : float option;
  mutable incumbent_x : float array option;
  mutable trace : (float * float) list;
  mutable nodes : int;
  mutable truncated : bool; (* a node was dropped without a valid bound *)
  mutable last_progress_t : float;
  start : float;
}

(* All comparisons happen in the model's direction: [better a b] means "a is
   a strictly better objective than b". *)
let better st a b = if st.maximize then a > b else a < b

let worst st = if st.maximize then neg_infinity else infinity

let apply_node st node =
  apply_overrides st.simplex st.applied ~root_lb:st.root_lb
    ~root_ub:st.root_ub node.overrides

let record_incumbent st ?x value on_incumbent =
  let improved =
    match st.incumbent with
    | None -> true
    | Some v -> better st value v
  in
  if improved then begin
    let t = now () -. st.start in
    let meaningful =
      match st.incumbent with
      | None -> true
      | Some v ->
          Float.abs (value -. v) /. Float.max 1. (Float.abs v)
          >= st.opts.stall_improvement
    in
    st.incumbent <- Some value;
    (match x with
    | Some x -> st.incumbent_x <- Some (Array.copy x)
    | None -> st.incumbent_x <- None);
    st.trace <- (t, value) :: st.trace;
    if meaningful then st.last_progress_t <- now ();
    if st.opts.log_progress then
      Log.info (fun m -> m "incumbent %.6g at %.2fs (%d nodes)" value t st.nodes);
    on_incumbent value
  end

let fix_to_zero _st v = (v, 0., 0.)

let solve_serial ~options ?primal_heuristic ?on_cut ~on_incumbent model =
  let dir, _ = Model.objective model in
  let maximize = dir = Model.Maximize in
  let sf = Standard_form.of_model model in
  let simplex = Backend.create ?kind:options.backend sf in
  let n = Model.num_vars model in
  let int_vars = Model.integer_vars model in
  let sos = Model.sos1_groups model in
  let mgr =
    if options.cuts.Relaxation.enabled then
      Some (Relaxation.create options.cuts ~sf ~int_vars ~sos)
    else None
  in
  let st =
    {
      model;
      maximize;
      opts = options;
      simplex;
      root_lb = Array.init n (Model.var_lb model);
      root_ub = Array.init n (Model.var_ub model);
      int_vars;
      sos;
      heap = Heap.create ();
      applied = Hashtbl.create 64;
      mgr;
      pc = Relaxation.pseudocost n;
      bt = ref 0;
      on_cut;
      incumbent = None;
      incumbent_x = None;
      trace = [];
      nodes = 0;
      truncated = false;
      last_progress_t = now ();
      start = now ();
    }
  in
  let prio bound = if maximize then bound else -.bound in
  let finish outcome ~best_bound =
    let objective = Option.value st.incumbent ~default:Float.nan in
    {
      outcome;
      objective;
      best_bound;
      mip_gap =
        (match outcome with
        | Optimal -> 0.
        | _ -> mip_gap_of ~objective ~bound:best_bound);
      primal = st.incumbent_x;
      nodes = st.nodes;
      simplex_iterations = Backend.total_iterations simplex;
      lp_stats =
        (let s = Backend.stats simplex in
         { s with Simplex.bounds_tightened = !(st.bt) });
      elapsed = now () -. st.start;
      incumbent_trace = List.rev st.trace;
      tree = serial_tree_stats;
    }
  in
  (* prune test: can this bound still beat the incumbent by more than tol? *)
  let prunable bound =
    match st.incumbent with
    | None -> false
    | Some inc ->
        let margin = st.opts.gap_tol *. Float.max 1. (Float.abs inc) in
        if maximize then bound <= inc +. margin else bound >= inc -. margin
  in
  let open_bound () =
    (* best bound among open nodes, in model direction *)
    if Heap.is_empty st.heap then None
    else Some (if maximize then Heap.max_priority st.heap else -.(Heap.max_priority st.heap))
  in
  Heap.push st.heap (prio (if maximize then infinity else neg_infinity))
    { overrides = []; depth = 0; origin = None };
  let stop_outcome = ref None in
  let best_root_bound = ref (if maximize then infinity else neg_infinity) in
  (try
     while not (Heap.is_empty st.heap) do
       let elapsed = now () -. st.start in
       let deadline_hit =
         match st.opts.deadline with
         | Some d -> Repro_resilience.Deadline.expired d
         | None -> false
       in
       if elapsed > st.opts.time_limit || st.opts.interrupt () || deadline_hit
       then begin
         stop_outcome := Some (if st.incumbent = None then No_incumbent else Feasible);
         raise Exit
       end;
       if st.nodes >= st.opts.node_limit then begin
         stop_outcome := Some (if st.incumbent = None then No_incumbent else Feasible);
         raise Exit
       end;
       if
         st.incumbent <> None
         && now () -. st.last_progress_t > st.opts.stall_time
       then begin
         stop_outcome := Some Feasible;
         raise Exit
       end;
       let node_prio, node = Heap.pop st.heap in
       let parent_bound = if maximize then node_prio else -.node_prio in
       if prunable parent_bound then ()
       else begin
         st.nodes <- st.nodes + 1;
         (match st.opts.deadline with
         | Some d -> Repro_resilience.Deadline.charge_node d
         | None -> ());
         apply_node st node;
         (* [warm_start:false] inside the pipeline forces a cold
            from-scratch solve per node; only useful for measuring what
            the basis reuse buys *)
         match
           refine_node ~opts:st.opts ~mgr:st.mgr ~int_vars:st.int_vars
             ~sos:st.sos ~applied:st.applied ~prunable ~on_cut:st.on_cut
             ~bt:st.bt simplex ~depth:node.depth
         with
         | None -> () (* tightening emptied a box: node infeasible *)
         | Some sol ->
         (match sol.status with
         | Simplex.Infeasible -> ()
         | Simplex.Unbounded ->
             if node.depth = 0 then begin
               stop_outcome := Some Unbounded;
               raise Exit
             end
             else st.truncated <- true
         | Simplex.Iteration_limit ->
             (match st.opts.deadline with
             | Some d when Repro_resilience.Deadline.expired d ->
                 (* the LP was cut off by the budget, not by hardness:
                    re-queue the node so the final bound still covers its
                    subtree — the expired deadline stops the loop before
                    it can be popped again *)
                 Heap.push st.heap node_prio node
             | _ -> ());
             st.truncated <- true
         | Simplex.Optimal ->
             let bound = sol.objective in
             if node.depth = 0 then best_root_bound := bound;
             (* pseudo-cost learning: how much did the branch that
                created this node actually degrade the parent bound? *)
             (match (node.origin, st.mgr) with
             | Some (v, up, dist, pbound), Some _ ->
                 let delta =
                   if st.maximize then pbound -. bound else bound -. pbound
                 in
                 Relaxation.pc_record st.pc v ~up ~delta ~dist
             | _ -> ());
             if not (prunable bound) then begin
               match
                 find_violation ~int_tol:st.opts.int_tol
                   ~sos_tol:st.opts.sos_tol ~int_vars:st.int_vars ~sos:st.sos
                   sol.primal
               with
               | No_violation ->
                   record_incumbent st ~x:sol.primal bound on_incumbent
               | viol ->
                   (match primal_heuristic with
                   | None -> ()
                   | Some h -> (
                       match h sol.primal with
                       | None -> ()
                       | Some (value, Some x) ->
                           record_incumbent st ~x value on_incumbent
                       | Some (value, None) ->
                           record_incumbent st value on_incumbent));
                   let mk ?origin extra =
                     {
                       overrides = node.overrides @ extra;
                       depth = node.depth + 1;
                       origin;
                     }
                   in
                   let legacy viol =
                     match viol with
                     | No_violation -> assert false
                     | Fractional (v, value) ->
                         let lo = Backend.get_lb simplex v
                         and hi = Backend.get_ub simplex v in
                         let down = Float.floor value
                         and up = Float.ceil value in
                         if down >= lo -. 1e-9 then
                           Heap.push st.heap (prio bound)
                             (mk [ (v, lo, down) ]);
                         if up <= hi +. 1e-9 then
                           Heap.push st.heap (prio bound) (mk [ (v, up, hi) ])
                     | Sos_violated (group, arg_max) ->
                         (* child A: the largest member is zero;
                            child B: every other member is zero *)
                         let biggest = group.(arg_max) in
                         Heap.push st.heap (prio bound)
                           (mk [ fix_to_zero st biggest ]);
                         let others =
                           group |> Array.to_list
                           |> List.filteri (fun i _ -> i <> arg_max)
                           |> List.map (fix_to_zero st)
                         in
                         Heap.push st.heap (prio bound) (mk others)
                   in
                   (match st.mgr with
                   | Some mgrv -> (
                       (* pseudo-cost / reliability selection over every
                          fractional integer; SOS branching only when no
                          integer is fractional *)
                       match
                         Relaxation.select_branch mgrv st.pc simplex
                           ?deadline:st.opts.deadline
                           ~probes:st.opts.warm_start ~maximize:st.maximize
                           ~parent_bound:bound ~int_tol:st.opts.int_tol
                           sol.primal
                       with
                       | Some (v, value, _prefer_down) ->
                           let lo = Backend.get_lb simplex v
                           and hi = Backend.get_ub simplex v in
                           let down = Float.floor value
                           and up = Float.ceil value in
                           if down >= lo -. 1e-9 then
                             Heap.push st.heap (prio bound)
                               (mk
                                  ~origin:(v, false, value -. down, bound)
                                  [ (v, lo, down) ]);
                           if up <= hi +. 1e-9 then
                             Heap.push st.heap (prio bound)
                               (mk
                                  ~origin:(v, true, up -. value, bound)
                                  [ (v, up, hi) ])
                       | None -> legacy viol)
                   | None -> legacy viol)
             end)
       end
     done
   with Exit -> ());
  match !stop_outcome with
  | Some outcome ->
      (* the optimum is bounded by max(incumbent, best open subtree): open
         nodes already worse than the incumbent may still be queued, so
         the open bound alone can sit below the incumbent *)
      let cover b =
        match st.incumbent with
        | Some inc -> if maximize then Float.max b inc else Float.min b inc
        | None -> b
      in
      let best_bound =
        match open_bound () with
        | Some b -> cover b
        | None -> Option.value st.incumbent ~default:!best_root_bound
      in
      finish outcome ~best_bound
  | None ->
      (* heap exhausted *)
      if st.incumbent = None then
        if st.truncated then finish No_incumbent ~best_bound:!best_root_bound
        else finish Infeasible ~best_bound:(worst st)
      else if st.truncated then
        finish Feasible ~best_bound:!best_root_bound
      else
        finish Optimal ~best_bound:(Option.get st.incumbent)

(* ------------------------------------------------------------------ *)
(* Parallel tree search (jobs > 1)                                     *)
(* ------------------------------------------------------------------ *)

(* A parallel node additionally carries its parent's optimal basis so a
   worker that steals it can warm-start without having explored the
   parent itself. Snapshots are immutable and shared by reference
   between both children of a node (workers only read them). *)
type pnode = {
  p_overrides : (int * float * float) list;
  p_depth : int;
  p_basis : Simplex.basis_snapshot option;
  (* cut-pool generation the basis snapshot was taken at: a thief
     replays the pool up to [p_gen] (or pads the snapshot if it is
     already past it) before installing, so the snapshot's row layout
     always matches the backend it lands in *)
  p_gen : int;
  p_origin : (int * bool * float * float) option;
}

let solve_parallel ~jobs ?pool ~options ?primal_heuristic ?on_cut
    ~on_incumbent model =
  let dir, _ = Model.objective model in
  let maximize = dir = Model.Maximize in
  let sf = Standard_form.of_model model in
  let n = Model.num_vars model in
  let root_lb = Array.init n (Model.var_lb model) in
  let root_ub = Array.init n (Model.var_ub model) in
  let int_vars = Model.integer_vars model in
  let sos = Model.sos1_groups model in
  (* one shared relaxation manager: the cut pool is the only mutable
     part and is mutex-protected; every worker holds a pool prefix *)
  let mgr =
    if options.cuts.Relaxation.enabled then
      Some (Relaxation.create options.cuts ~sf ~int_vars ~sos)
    else None
  in
  let start = now () in
  let prio bound = if maximize then bound else -.bound in
  let unprio p = if maximize then p else -.p in
  let npool : pnode Node_pool.t = Node_pool.create ~workers:jobs in
  (* shared incumbent: the score is the objective in prio direction, so
     the store's strict monotonicity is exactly "strictly better in the
     model direction"; the payload is the (optional) primal assignment *)
  let inc : float array option Engine.Incumbent.t = Engine.Incumbent.create () in
  let mu = Mutex.create () in
  let trace = ref [] in
  let last_progress = ref (now ()) in
  let stop_reason = ref None in
  let best_root_bound = ref (if maximize then infinity else neg_infinity) in
  let nodes = Atomic.make 0 in
  let truncated = Atomic.make false in
  let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let incumbent_value () =
    let s = Engine.Incumbent.best_score inc in
    if s = neg_infinity then None else Some (unprio s)
  in
  let prunable bound =
    match incumbent_value () with
    | None -> false
    | Some inc_v ->
        let margin = options.gap_tol *. Float.max 1. (Float.abs inc_v) in
        if maximize then bound <= inc_v +. margin else bound >= inc_v -. margin
  in
  let record ?x value =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        let prev = incumbent_value () in
        let improved =
          match prev with
          | None -> true
          | Some v -> if maximize then value > v else value < v
        in
        if improved then begin
          let accepted =
            Engine.Incumbent.propose inc (Option.map Array.copy x) (prio value)
          in
          if accepted then begin
            let t = now () -. start in
            let meaningful =
              match prev with
              | None -> true
              | Some v ->
                  Float.abs (value -. v) /. Float.max 1. (Float.abs v)
                  >= options.stall_improvement
            in
            trace := (t, value) :: !trace;
            if meaningful then last_progress := now ();
            if options.log_progress then
              Log.info (fun m ->
                  m "incumbent %.6g at %.2fs (%d nodes)" value t
                    (Atomic.get nodes));
            on_incumbent value
          end
        end)
  in
  let set_stop outcome =
    Mutex.lock mu;
    (match !stop_reason with
    | None -> stop_reason := Some outcome
    | Some _ -> ());
    Mutex.unlock mu;
    Node_pool.stop npool
  in
  (* limits are evaluated against the shared counters by every worker on
     every loop iteration, mirroring the serial per-node checks; the node
     limit can therefore overshoot by at most [jobs - 1] in-flight nodes *)
  let check_limits () =
    let elapsed = now () -. start in
    let deadline_hit =
      match options.deadline with
      | Some d -> Repro_resilience.Deadline.expired d
      | None -> false
    in
    if elapsed > options.time_limit || options.interrupt () || deadline_hit
    then begin
      set_stop (if incumbent_value () = None then No_incumbent else Feasible);
      true
    end
    else if Atomic.get nodes >= options.node_limit then begin
      set_stop (if incumbent_value () = None then No_incumbent else Feasible);
      true
    end
    else if
      incumbent_value () <> None
      && now () -. !last_progress > options.stall_time
    then begin
      set_stop Feasible;
      true
    end
    else false
  in
  let worker wid =
    let be = Backend.create ?kind:options.backend sf in
    let applied = Hashtbl.create 64 in
    let pc = Relaxation.pseudocost n in
    let bt = ref 0 in
    (* [process] expands one in-flight node and then {e plunges}: it
       keeps one child in hand (depth-first) and heaps the sibling for
       later or for thieves. Pure best-bound order never reaches a leaf
       on deep trees — every backtrack jumps to the shallowest open
       sibling — so diving is what produces incumbents, and the in-hand
       child continues from the basis already loaded in [be], the
       cheapest possible dual restart. The in-flight slot is re-tagged
       via [Node_pool.continue_with] so termination stays exact and
       [best_open] sees the dive; exactly one [finish] ends the chain. *)
    let rec process nd stolen =
      Repro_resilience.Faults.inject "worker_death";
      if Atomic.get failure <> None then Node_pool.finish npool ~worker:wid
      else if check_limits () then Node_pool.finish npool ~worker:wid
      else begin
        Atomic.incr nodes;
        (match options.deadline with
        | Some d -> Repro_resilience.Deadline.charge_node d
        | None -> ());
        (* a stolen node's overrides are a diff against somebody else's
           subtree: install the parent basis that was shipped with it
           instead of warm-starting from whatever this worker solved
           last *)
        if stolen && options.warm_start then (
          match nd.p_basis with
          | Some snap ->
              let snap =
                match mgr with
                | Some m -> Relaxation.sync_snapshot m be ~gen:nd.p_gen snap
                | None -> snap
              in
              ignore (Backend.install_basis be snap : bool)
          | None -> ());
        apply_overrides be applied ~root_lb ~root_ub nd.p_overrides;
        match
          refine_node ~opts:options ~mgr ~int_vars ~sos ~applied ~prunable
            ~on_cut ~bt be ~depth:nd.p_depth
        with
        | None ->
            (* tightening emptied a box: node infeasible *)
            Node_pool.finish npool ~worker:wid
        | Some sol -> (
        match sol.Simplex.status with
        | Simplex.Infeasible -> Node_pool.finish npool ~worker:wid
        | Simplex.Unbounded ->
            if nd.p_depth = 0 then set_stop Unbounded
            else Atomic.set truncated true;
            Node_pool.finish npool ~worker:wid
        | Simplex.Iteration_limit ->
            Atomic.set truncated true;
            (match options.deadline with
            | Some d when Repro_resilience.Deadline.expired d ->
                (* budget cutoff, not LP hardness: keep this subtree's
                   bound visible in [best_open] so the result is sound *)
                Node_pool.abandon npool ~worker:wid
            | _ -> Node_pool.finish npool ~worker:wid)
        | Simplex.Optimal ->
            let bound = sol.Simplex.objective in
            if nd.p_depth = 0 then begin
              Mutex.lock mu;
              best_root_bound := bound;
              Mutex.unlock mu
            end;
            (match (nd.p_origin, mgr) with
            | Some (v, up, dist, pbound), Some _ ->
                let delta =
                  if maximize then pbound -. bound else bound -. pbound
                in
                Relaxation.pc_record pc v ~up ~delta ~dist
            | _ -> ());
            if prunable bound then Node_pool.finish npool ~worker:wid
            else begin
              match
                find_violation ~int_tol:options.int_tol
                  ~sos_tol:options.sos_tol ~int_vars ~sos sol.Simplex.primal
              with
              | No_violation ->
                  record ~x:sol.Simplex.primal bound;
                  Node_pool.finish npool ~worker:wid
              | viol -> (
                  (match primal_heuristic with
                  | None -> ()
                  | Some h -> (
                      match h sol.Simplex.primal with
                      | None -> ()
                      | Some (value, Some x) -> record ~x value
                      | Some (value, None) -> record value));
                  let snap =
                    if options.warm_start then Some (Backend.snapshot_basis be)
                    else None
                  in
                  let gen =
                    match mgr with Some _ -> Backend.num_cuts be | None -> 0
                  in
                  let mk ?origin extra =
                    {
                      p_overrides = nd.p_overrides @ extra;
                      p_depth = nd.p_depth + 1;
                      p_basis = snap;
                      p_gen = gen;
                      p_origin = origin;
                    }
                  in
                  let plunge child =
                    Node_pool.continue_with npool ~worker:wid
                      ~prio:(prio bound);
                    process child false
                  in
                  let branch_fractional v value prefer_down ~origin =
                    let lo = Backend.get_lb be v
                    and hi = Backend.get_ub be v in
                    let down = Float.floor value and up = Float.ceil value in
                    let dn_ok = down >= lo -. 1e-9
                    and up_ok = up <= hi +. 1e-9 in
                    let dn_nd =
                      mk
                        ?origin:
                          (if origin then
                             Some (v, false, value -. down, bound)
                           else None)
                        [ (v, lo, down) ]
                    and up_nd =
                      mk
                        ?origin:
                          (if origin then Some (v, true, up -. value, bound)
                           else None)
                        [ (v, up, hi) ]
                    in
                    if dn_ok && up_ok then begin
                      (* dive into the preferred child — nearer integer
                         for the legacy rule, smaller estimated
                         degradation under pseudo-costs — heap the other *)
                      let keep, other =
                        if prefer_down then (dn_nd, up_nd)
                        else (up_nd, dn_nd)
                      in
                      Node_pool.push npool ~worker:wid ~prio:(prio bound)
                        other;
                      plunge keep
                    end
                    else if dn_ok then plunge dn_nd
                    else if up_ok then plunge up_nd
                    else Node_pool.finish npool ~worker:wid
                  in
                  let legacy viol =
                    match viol with
                    | No_violation -> assert false
                    | Fractional (v, value) ->
                        branch_fractional v value
                          (value -. Float.floor value
                          <= Float.ceil value -. value)
                          ~origin:false
                    | Sos_violated (group, arg_max) ->
                        let biggest = group.(arg_max) in
                        Node_pool.push npool ~worker:wid ~prio:(prio bound)
                          (mk [ (biggest, 0., 0.) ]);
                        let others =
                          group |> Array.to_list
                          |> List.filteri (fun i _ -> i <> arg_max)
                          |> List.map (fun v -> (v, 0., 0.))
                        in
                        (* dive on the branch that keeps the dominant
                           variable of the violated group *)
                        plunge (mk others)
                  in
                  match mgr with
                  | Some mgrv -> (
                      match
                        Relaxation.select_branch mgrv pc be
                          ?deadline:options.deadline
                          ~probes:options.warm_start ~maximize
                          ~parent_bound:bound ~int_tol:options.int_tol
                          sol.Simplex.primal
                      with
                      | Some (v, value, prefer_down) ->
                          branch_fractional v value prefer_down ~origin:true
                      | None -> legacy viol)
                  | None -> legacy viol)
            end)
      end
    in
    let rec loop () =
      if Atomic.get failure <> None then ()
      else if check_limits () then ()
      else
        match Node_pool.take npool ~worker:wid with
        | None -> ()
        | Some (nprio, nd, stolen) ->
            if prunable (unprio nprio) then
              Node_pool.finish npool ~worker:wid
            else process nd stolen;
            loop ()
    in
    (try loop () with
    | Repro_resilience.Faults.Injected _ ->
        (* simulated worker death: release the in-flight slot so the
           survivors can terminate, keep its subtree's bound in
           [best_open], and degrade instead of failing the solve *)
        Node_pool.reclaim npool ~worker:wid;
        Atomic.set truncated true
    | e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)) : bool);
        Node_pool.stop npool);
    ( (let s = Backend.stats be in
       { s with Simplex.bounds_tightened = !bt }),
      Backend.total_iterations be )
  in
  Node_pool.push npool ~worker:0
    ~prio:(prio (if maximize then infinity else neg_infinity))
    { p_overrides = []; p_depth = 0; p_basis = None; p_gen = 0;
      p_origin = None };
  let run_workers pool =
    let futs =
      List.init jobs (fun wid -> Engine.Pool.submit pool (fun () -> worker wid))
    in
    List.map Engine.Pool.await futs
  in
  let results =
    match pool with
    | Some pool -> run_workers pool
    | None -> Engine.Pool.with_pool ~domains:jobs run_workers
  in
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let steals, idle_s = Node_pool.stats npool in
  let lp_stats =
    List.fold_left
      (fun acc (s, _) -> Simplex.add_stats acc s)
      Simplex.empty_stats results
  in
  let simplex_iterations =
    List.fold_left (fun acc (_, it) -> acc + it) 0 results
  in
  let objective = Option.value (incumbent_value ()) ~default:Float.nan in
  let primal = Option.join (Option.map fst (Engine.Incumbent.best inc)) in
  let finish outcome ~best_bound =
    {
      outcome;
      objective;
      best_bound;
      mip_gap =
        (match outcome with
        | Optimal -> 0.
        | _ -> mip_gap_of ~objective ~bound:best_bound);
      primal;
      nodes = Atomic.get nodes;
      simplex_iterations;
      lp_stats;
      elapsed = now () -. start;
      incumbent_trace = List.rev !trace;
      tree = { workers = jobs; steals; idle_s; lost = Node_pool.lost npool };
    }
  in
  (* the optimum is bounded by max(incumbent, best open subtree): open
     nodes already worse than the incumbent may still be queued, so the
     open bound alone can sit below the incumbent *)
  let cover_incumbent b =
    match incumbent_value () with
    | Some inc -> if maximize then Float.max b inc else Float.min b inc
    | None -> b
  in
  match !stop_reason with
  | Some outcome ->
      let best_bound =
        match Node_pool.best_open npool with
        | Some p -> cover_incumbent (unprio p)
        | None -> Option.value (incumbent_value ()) ~default:!best_root_bound
      in
      finish outcome ~best_bound
  | None ->
      (* node pool exhausted: the whole tree was proven — unless nodes
         were truncated or lost, in which case [best_open] may still
         carry an abandoned subtree's bound (tighter than the root's) *)
      let truncated_bound () =
        match Node_pool.best_open npool with
        | Some p -> cover_incumbent (unprio p)
        | None -> !best_root_bound
      in
      if incumbent_value () = None then
        if Atomic.get truncated then
          finish No_incumbent ~best_bound:(truncated_bound ())
        else
          finish Infeasible
            ~best_bound:(if maximize then neg_infinity else infinity)
      else if Atomic.get truncated then
        finish Feasible ~best_bound:(truncated_bound ())
      else finish Optimal ~best_bound:objective

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let solve ?pool ?(options = default_options) ?primal_heuristic ?on_cut
    ?(on_incumbent = fun _ -> ()) model =
  let jobs = Engine.Jobs.clamp options.jobs in
  if jobs <= 1 then
    solve_serial ~options ?primal_heuristic ?on_cut ~on_incumbent model
  else
    solve_parallel ~jobs ?pool ~options ?primal_heuristic ?on_cut ~on_incumbent
      model

let pp_outcome ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible -> Fmt.string ppf "feasible (limit)"
  | No_incumbent -> Fmt.string ppf "no incumbent (limit)"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"

let pp_result ppf r =
  Fmt.pf ppf "%a: obj %.6g, bound %.6g, gap %.2f%%, %d nodes, %d pivots, %.2fs"
    pp_outcome r.outcome r.objective r.best_bound (100. *. r.mip_gap) r.nodes
    r.simplex_iterations r.elapsed

let pp_tree_stats ppf t =
  Fmt.pf ppf "workers=%d steals=%d idle=%.2fs" t.workers t.steals t.idle_s;
  if t.lost > 0 then Fmt.pf ppf " lost=%d" t.lost
