type options = {
  time_limit : float;
  node_limit : int;
  gap_tol : float;
  stall_time : float;
  stall_improvement : float;
  int_tol : float;
  sos_tol : float;
  log_progress : bool;
  interrupt : unit -> bool;
  backend : Backend.kind option;
  warm_start : bool;
}

let default_options =
  {
    time_limit = 60.;
    node_limit = 100_000;
    gap_tol = 1e-6;
    stall_time = 10.;
    stall_improvement = 0.005;
    int_tol = 1e-6;
    sos_tol = 1e-6;
    log_progress = false;
    interrupt = (fun () -> false);
    backend = None;
    warm_start = true;
  }

type outcome = Optimal | Feasible | No_incumbent | Infeasible | Unbounded

type result = {
  outcome : outcome;
  objective : float;
  best_bound : float;
  mip_gap : float;
  primal : float array option;
  nodes : int;
  simplex_iterations : int;
  lp_stats : Simplex.stats;
  elapsed : float;
  incumbent_trace : (float * float) list;
}

type node = {
  (* full list of bound overrides along the path from the root; later
     entries shadow earlier ones for the same variable *)
  overrides : (int * float * float) list;
  depth : int;
}

let src = Logs.Src.create "repro.branch_bound" ~doc:"MILP branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type state = {
  model : Model.t;
  maximize : bool;
  opts : options;
  simplex : Backend.t;
  root_lb : float array;
  root_ub : float array;
  int_vars : int array;
  sos : int array array;
  heap : node Heap.t;
  applied : (int, unit) Hashtbl.t;
  mutable incumbent : float option;
  mutable incumbent_x : float array option;
  mutable trace : (float * float) list;
  mutable nodes : int;
  mutable truncated : bool; (* a node was dropped without a valid bound *)
  mutable last_progress_t : float;
  start : float;
}

let now () = Unix.gettimeofday ()

(* All comparisons happen in the model's direction: [better a b] means "a is
   a strictly better objective than b". *)
let better st a b = if st.maximize then a > b else a < b

let worst st = if st.maximize then neg_infinity else infinity

let apply_node st node =
  let targets = Hashtbl.create 16 in
  List.iter
    (fun (v, lo, hi) -> Hashtbl.replace targets v (lo, hi))
    node.overrides;
  (* reset previously-applied vars that this node does not override *)
  let stale = ref [] in
  Hashtbl.iter
    (fun v () -> if not (Hashtbl.mem targets v) then stale := v :: !stale)
    st.applied;
  List.iter
    (fun v ->
      Backend.set_bounds st.simplex v ~lb:st.root_lb.(v) ~ub:st.root_ub.(v);
      Hashtbl.remove st.applied v)
    !stale;
  Hashtbl.iter
    (fun v (lo, hi) ->
      Backend.set_bounds st.simplex v ~lb:lo ~ub:hi;
      Hashtbl.replace st.applied v ())
    targets

(* Most-violated branching entity in a relaxation solution. *)
type violation =
  | No_violation
  | Fractional of int * float (* var, value *)
  | Sos_violated of int array * int (* group, index of largest member *)

let find_violation st x =
  let best = ref No_violation and best_score = ref 0. in
  Array.iter
    (fun v ->
      let frac = Float.abs (x.(v) -. Float.round x.(v)) in
      if frac > st.opts.int_tol && frac > !best_score then begin
        best := Fractional (v, x.(v));
        best_score := frac
      end)
    st.int_vars;
  Array.iter
    (fun group ->
      (* second-largest magnitude must be ~0 for SOS1 feasibility *)
      let arg_max = ref 0 and vmax = ref (-1.) and second = ref 0. in
      Array.iteri
        (fun i v ->
          let m = Float.abs x.(v) in
          if m > !vmax then begin
            second := !vmax;
            vmax := m;
            arg_max := i
          end
          else if m > !second then second := m)
        group;
      if !second > st.opts.sos_tol && !second > !best_score then begin
        best := Sos_violated (group, !arg_max);
        best_score := !second
      end)
    st.sos;
  !best

let record_incumbent st ?x value on_incumbent =
  let improved =
    match st.incumbent with
    | None -> true
    | Some v -> better st value v
  in
  if improved then begin
    let t = now () -. st.start in
    let meaningful =
      match st.incumbent with
      | None -> true
      | Some v ->
          Float.abs (value -. v) /. Float.max 1. (Float.abs v)
          >= st.opts.stall_improvement
    in
    st.incumbent <- Some value;
    (match x with
    | Some x -> st.incumbent_x <- Some (Array.copy x)
    | None -> st.incumbent_x <- None);
    st.trace <- (t, value) :: st.trace;
    if meaningful then st.last_progress_t <- now ();
    if st.opts.log_progress then
      Log.info (fun m -> m "incumbent %.6g at %.2fs (%d nodes)" value t st.nodes);
    on_incumbent value
  end

let fix_to_zero _st v = (v, 0., 0.)

let mip_gap_of ~objective ~bound =
  if Float.is_nan objective || Float.is_nan bound then Float.nan
  else Float.abs (bound -. objective) /. Float.max 1e-9 (Float.abs objective)

let solve ?(options = default_options) ?primal_heuristic
    ?(on_incumbent = fun _ -> ()) model =
  let dir, _ = Model.objective model in
  let maximize = dir = Model.Maximize in
  let sf = Standard_form.of_model model in
  let simplex = Backend.create ?kind:options.backend sf in
  let n = Model.num_vars model in
  let st =
    {
      model;
      maximize;
      opts = options;
      simplex;
      root_lb = Array.init n (Model.var_lb model);
      root_ub = Array.init n (Model.var_ub model);
      int_vars = Model.integer_vars model;
      sos = Model.sos1_groups model;
      heap = Heap.create ();
      applied = Hashtbl.create 64;
      incumbent = None;
      incumbent_x = None;
      trace = [];
      nodes = 0;
      truncated = false;
      last_progress_t = now ();
      start = now ();
    }
  in
  let prio bound = if maximize then bound else -.bound in
  let finish outcome ~best_bound =
    let objective = Option.value st.incumbent ~default:Float.nan in
    {
      outcome;
      objective;
      best_bound;
      mip_gap =
        (match outcome with
        | Optimal -> 0.
        | _ -> mip_gap_of ~objective ~bound:best_bound);
      primal = st.incumbent_x;
      nodes = st.nodes;
      simplex_iterations = Backend.total_iterations simplex;
      lp_stats = Backend.stats simplex;
      elapsed = now () -. st.start;
      incumbent_trace = List.rev st.trace;
    }
  in
  (* prune test: can this bound still beat the incumbent by more than tol? *)
  let prunable bound =
    match st.incumbent with
    | None -> false
    | Some inc ->
        let margin = st.opts.gap_tol *. Float.max 1. (Float.abs inc) in
        if maximize then bound <= inc +. margin else bound >= inc -. margin
  in
  let open_bound () =
    (* best bound among open nodes, in model direction *)
    if Heap.is_empty st.heap then None
    else Some (if maximize then Heap.max_priority st.heap else -.(Heap.max_priority st.heap))
  in
  Heap.push st.heap (prio (if maximize then infinity else neg_infinity))
    { overrides = []; depth = 0 };
  let stop_outcome = ref None in
  let best_root_bound = ref (if maximize then infinity else neg_infinity) in
  (try
     while not (Heap.is_empty st.heap) do
       let elapsed = now () -. st.start in
       if elapsed > st.opts.time_limit || st.opts.interrupt () then begin
         stop_outcome := Some (if st.incumbent = None then No_incumbent else Feasible);
         raise Exit
       end;
       if st.nodes >= st.opts.node_limit then begin
         stop_outcome := Some (if st.incumbent = None then No_incumbent else Feasible);
         raise Exit
       end;
       if
         st.incumbent <> None
         && now () -. st.last_progress_t > st.opts.stall_time
       then begin
         stop_outcome := Some Feasible;
         raise Exit
       end;
       let node_prio, node = Heap.pop st.heap in
       let parent_bound = if maximize then node_prio else -.node_prio in
       if prunable parent_bound then ()
       else begin
         st.nodes <- st.nodes + 1;
         apply_node st node;
         let sol =
           (* [warm_start:false] forces a cold from-scratch solve per node;
              only useful for measuring what the basis reuse buys *)
           if st.opts.warm_start then Backend.resolve simplex
           else Backend.solve_fresh simplex
         in
         (match sol.status with
         | Simplex.Infeasible -> ()
         | Simplex.Unbounded ->
             if node.depth = 0 then begin
               stop_outcome := Some Unbounded;
               raise Exit
             end
             else st.truncated <- true
         | Simplex.Iteration_limit -> st.truncated <- true
         | Simplex.Optimal ->
             let bound = sol.objective in
             if node.depth = 0 then best_root_bound := bound;
             if not (prunable bound) then begin
               match find_violation st sol.primal with
               | No_violation ->
                   record_incumbent st ~x:sol.primal bound on_incumbent
               | viol ->
                   (match primal_heuristic with
                   | None -> ()
                   | Some h -> (
                       match h sol.primal with
                       | None -> ()
                       | Some (value, Some x) ->
                           record_incumbent st ~x value on_incumbent
                       | Some (value, None) ->
                           record_incumbent st value on_incumbent));
                   let mk extra =
                     { overrides = node.overrides @ extra; depth = node.depth + 1 }
                   in
                   (match viol with
                   | No_violation -> assert false
                   | Fractional (v, value) ->
                       let lo = Backend.get_lb simplex v
                       and hi = Backend.get_ub simplex v in
                       let down = Float.floor value and up = Float.ceil value in
                       if down >= lo -. 1e-9 then
                         Heap.push st.heap (prio bound) (mk [ (v, lo, down) ]);
                       if up <= hi +. 1e-9 then
                         Heap.push st.heap (prio bound) (mk [ (v, up, hi) ])
                   | Sos_violated (group, arg_max) ->
                       (* child A: the largest member is zero;
                          child B: every other member is zero *)
                       let biggest = group.(arg_max) in
                       Heap.push st.heap (prio bound)
                         (mk [ fix_to_zero st biggest ]);
                       let others =
                         group |> Array.to_list
                         |> List.filteri (fun i _ -> i <> arg_max)
                         |> List.map (fix_to_zero st)
                       in
                       Heap.push st.heap (prio bound) (mk others))
             end)
       end
     done
   with Exit -> ());
  match !stop_outcome with
  | Some outcome ->
      let best_bound =
        match open_bound () with
        | Some b -> b
        | None -> Option.value st.incumbent ~default:!best_root_bound
      in
      finish outcome ~best_bound
  | None ->
      (* heap exhausted *)
      if st.incumbent = None then
        if st.truncated then finish No_incumbent ~best_bound:!best_root_bound
        else finish Infeasible ~best_bound:(worst st)
      else if st.truncated then
        finish Feasible ~best_bound:!best_root_bound
      else
        finish Optimal ~best_bound:(Option.get st.incumbent)

let pp_outcome ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible -> Fmt.string ppf "feasible (limit)"
  | No_incumbent -> Fmt.string ppf "no incumbent (limit)"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"

let pp_result ppf r =
  Fmt.pf ppf "%a: obj %.6g, bound %.6g, gap %.2f%%, %d nodes, %d pivots, %.2fs"
    pp_outcome r.outcome r.objective r.best_bound (100. *. r.mip_gap) r.nodes
    r.simplex_iterations r.elapsed
