(** Compressed-sparse-column (CSC) view of the structural constraint
    matrix. {!Standard_form.of_model} builds it once; the sparse revised
    simplex backend prices and ftrans against it without ever
    materializing a dense tableau. *)

type t = {
  m : int;  (** rows *)
  n : int;  (** structural columns *)
  col_ptr : int array;  (** length [n + 1] *)
  row_idx : int array;
  values : float array;
}

(** [of_rows ~m ~n rows] builds the CSC from sparse rows of
    [(column, coefficient)] terms. Duplicate terms for the same
    (row, column) are summed; exact zeros are dropped. *)
val of_rows : m:int -> n:int -> (int * float) array array -> t

val nnz : t -> int

val col_nnz : t -> int -> int

(** [iter_col t j f] applies [f row value] to each stored entry of
    column [j]. *)
val iter_col : t -> int -> (int -> float -> unit) -> unit

(** [dot_col t j y] is the inner product of column [j] with the dense
    vector [y] (length [m]). *)
val dot_col : t -> int -> float array -> float
