(** Convenience facade over {!Simplex} and {!Branch_bound}.

    [solve_lp] solves the continuous relaxation of a model directly;
    [solve] dispatches to the LP path or branch-and-bound depending on
    whether the model has integer variables or SOS1 groups. *)

type lp_result = {
  status : Simplex.status;
  objective : float;  (** in the model's direction *)
  primal : float array;
  duals : float array;
  reduced_costs : float array;
  iterations : int;
  stats : Simplex.stats;  (** engine internals for this solve *)
}

(** Solve the continuous relaxation (integrality and SOS1 ignored).
    [backend] defaults to {!Backend.default}[ ()]. An expired [deadline]
    surfaces as status [Iteration_limit] with the bound-in-progress.

    [basis] warm-starts the solve from a previously captured snapshot
    (e.g. out of {!Repro_serve.Basis_store} — a dimension-compatible
    basis of the same model family): the snapshot is installed and the
    solve runs as a warm restart instead of from scratch. A snapshot
    that fails to install (dimension mismatch, singular refactorization)
    silently falls back to the cold path. *)
val solve_lp :
  ?iter_limit:int ->
  ?backend:Backend.kind ->
  ?basis:Simplex.basis_snapshot ->
  ?deadline:Repro_resilience.Deadline.t ->
  Model.t ->
  lp_result

(** [value result var] reads a variable out of an LP result. *)
val value : lp_result -> Model.var -> float

(** Solve the model with full integrality/SOS1 enforcement; pure LPs take
    the direct simplex path and are reported as a trivially-optimal
    branch-and-bound result.

    [presolve] (default false) runs {!Presolve.reduce} first and maps the
    primal solution back to the original variable space; the
    [primal_heuristic] callback then receives {e original-space} relaxation
    values. The reduction is recorded in the result's
    [lp_stats.presolve_rows]/[presolve_cols].

    [pool] supplies worker domains for the parallel tree search when
    [options.jobs > 1]; see {!Branch_bound.solve}. *)
val solve :
  ?pool:Repro_engine.Pool.t ->
  ?options:Branch_bound.options ->
  ?presolve:bool ->
  ?primal_heuristic:(float array -> (float * float array option) option) ->
  ?on_incumbent:(float -> unit) ->
  Model.t ->
  Branch_bound.result

(** Like {!solve}, but budget-aware and with a structured outcome: the
    caller always learns whether the answer is proven ([Complete]), a
    sound incumbent/bound pair cut short by a budget or lost worker
    ([Feasible_bound]), a bound-only partial answer ([Degraded]), or a
    typed failure ([Failed] — solver exceptions are caught here, never
    re-raised). [deadline] overrides [options.deadline] when given; with
    neither, limits still map to outcomes via the legacy
    time/node/stall options. *)
val solve_bounded :
  ?pool:Repro_engine.Pool.t ->
  ?options:Branch_bound.options ->
  ?presolve:bool ->
  ?primal_heuristic:(float array -> (float * float array option) option) ->
  ?on_incumbent:(float -> unit) ->
  ?deadline:Repro_resilience.Deadline.t ->
  Model.t ->
  Branch_bound.result Repro_resilience.Outcome.t
