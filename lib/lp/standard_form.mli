(** Conversion of a {!Model.t} into the arrays consumed by {!Simplex}.

    The standard form keeps the model's structural variables and their
    bounds as-is (the simplex is a bounded-variable implementation), stores
    constraints as sparse rows, and normalizes the objective to
    minimization ([c] is negated for maximization models; [flip_sign]
    records this so reported objective values and duals can be mapped
    back). Integrality and SOS1 information is intentionally dropped: the
    standard form is the continuous relaxation. *)

type t = {
  n : int;  (** number of structural variables *)
  m : int;  (** number of rows *)
  rows : (int * float) array array;
      (** sparse constraint rows: (structural var, coefficient) *)
  cols : Sparse_matrix.t;
      (** the same matrix in column-major (CSC) form, built once here so
          no backend ever copies the matrix per pivot *)
  b : float array;  (** right-hand sides *)
  senses : Model.sense array;
  lb : float array;  (** structural lower bounds, may be [neg_infinity] *)
  ub : float array;  (** structural upper bounds, may be [infinity] *)
  c : float array;  (** minimization objective over structural variables *)
  obj_const : float;  (** constant term of the (minimization) objective *)
  flip_sign : bool;
      (** true when the model maximizes: objective values and duals
          returned by the simplex must be negated to be in model terms *)
}

val of_model : Model.t -> t
