type t = {
  n : int;
  m : int;
  rows : (int * float) array array;
  cols : Sparse_matrix.t;
  b : float array;
  senses : Model.sense array;
  lb : float array;
  ub : float array;
  c : float array;
  obj_const : float;
  flip_sign : bool;
}

let of_model model =
  let n = Model.num_vars model in
  let m = Model.num_constrs model in
  let rows =
    Array.init m (fun i -> Array.of_list (Linexpr.terms (Model.constr_expr model i)))
  in
  let b = Array.init m (Model.constr_rhs model) in
  let senses = Array.init m (Model.constr_sense model) in
  let lb = Array.init n (Model.var_lb model) in
  let ub = Array.init n (Model.var_ub model) in
  let dir, obj = Model.objective model in
  let flip_sign =
    match dir with
    | Model.Maximize -> true
    | Model.Minimize -> false
  in
  let sgn = if flip_sign then -1. else 1. in
  let c = Array.make n 0. in
  List.iter (fun (v, coef) -> c.(v) <- sgn *. coef) (Linexpr.terms obj);
  let obj_const = sgn *. Linexpr.const_part obj in
  let cols = Sparse_matrix.of_rows ~m ~n rows in
  { n; m; rows; cols; b; senses; lb; ub; c; obj_const; flip_sign }
