(* Pluggable LP backend dispatch. Both backends implement the same
   first-class module signature over a Standard_form; a Backend.t packs
   the module together with its mutable state so Solver / Branch_bound
   never know which engine they are driving. *)

type kind = Dense | Sparse

let kind_to_string = function
  | Dense -> "dense"
  | Sparse -> "sparse"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dense" | "tableau" -> Some Dense
  | "sparse" | "revised" -> Some Sparse
  | _ -> None

(* Global default: the sparse revised simplex, overridable with
   REPRO_LP_BACKEND=dense|sparse (and per-process via set_default, which
   the CLI --lp-backend flag uses). *)
let default_kind =
  ref
    (match Sys.getenv_opt "REPRO_LP_BACKEND" with
    | Some s -> (
        match kind_of_string s with
        | Some k -> k
        | None ->
            invalid_arg
              (Printf.sprintf "REPRO_LP_BACKEND=%s (expected dense|sparse)" s))
    | None -> Sparse)

let default () = !default_kind
let set_default k = default_kind := k

module type S = sig
  type state

  val create : Standard_form.t -> state
  val set_bounds : state -> int -> lb:float -> ub:float -> unit
  val get_lb : state -> int -> float
  val get_ub : state -> int -> float
  val solve_fresh :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    Simplex.solution

  val resolve :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    Simplex.solution

  val set_rhs : state -> int -> float -> unit
  val get_rhs : state -> int -> float

  val resolve_rhs :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    Simplex.solution

  val resolve_rhs_batch :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    float array array ->
    Simplex.solution array

  val total_iterations : state -> int
  val snapshot_basis : state -> Simplex.basis_snapshot
  val install_basis : state -> Simplex.basis_snapshot -> bool
  val append_rows : state -> ((int * float) array * float) array -> unit
  val num_rows : state -> int
  val num_cuts : state -> int
  val basic_var : state -> int -> int
  val basic_value : state -> int -> float
  val col_stat : state -> int -> int
  val tableau_row : state -> int -> (int * float) list
  val stats : state -> Simplex.stats
  val pp_state : Format.formatter -> state -> unit
end

module Dense_backend : S with type state = Simplex.t = struct
  type state = Simplex.t

  let create = Simplex.create
  let set_bounds = Simplex.set_bounds
  let get_lb = Simplex.get_lb
  let get_ub = Simplex.get_ub
  let solve_fresh = Simplex.solve_fresh
  let resolve = Simplex.resolve
  let set_rhs = Simplex.set_rhs
  let get_rhs = Simplex.get_rhs
  let resolve_rhs = Simplex.resolve_rhs
  let resolve_rhs_batch = Simplex.resolve_rhs_batch
  let total_iterations = Simplex.total_iterations
  let snapshot_basis = Simplex.snapshot_basis
  let install_basis = Simplex.install_basis
  let append_rows = Simplex.append_rows
  let num_rows = Simplex.num_rows
  let num_cuts = Simplex.num_cuts
  let basic_var = Simplex.basic_var
  let basic_value = Simplex.basic_value
  let col_stat = Simplex.col_stat
  let tableau_row = Simplex.tableau_row
  let stats = Simplex.stats
  let pp_state = Simplex.pp_state
end

module Sparse_backend : S with type state = Sparse_simplex.t = struct
  type state = Sparse_simplex.t

  let create = Sparse_simplex.create
  let set_bounds = Sparse_simplex.set_bounds
  let get_lb = Sparse_simplex.get_lb
  let get_ub = Sparse_simplex.get_ub
  let solve_fresh = Sparse_simplex.solve_fresh
  let resolve = Sparse_simplex.resolve
  let set_rhs = Sparse_simplex.set_rhs
  let get_rhs = Sparse_simplex.get_rhs
  let resolve_rhs = Sparse_simplex.resolve_rhs
  let resolve_rhs_batch = Sparse_simplex.resolve_rhs_batch
  let total_iterations = Sparse_simplex.total_iterations
  let snapshot_basis = Sparse_simplex.snapshot_basis
  let install_basis = Sparse_simplex.install_basis
  let append_rows = Sparse_simplex.append_rows
  let num_rows = Sparse_simplex.num_rows
  let num_cuts = Sparse_simplex.num_cuts
  let basic_var = Sparse_simplex.basic_var
  let basic_value = Sparse_simplex.basic_value
  let col_stat = Sparse_simplex.col_stat
  let tableau_row = Sparse_simplex.tableau_row
  let stats = Sparse_simplex.stats
  let pp_state = Sparse_simplex.pp_state
end

type t = Packed : (module S with type state = 's) * 's * kind -> t

let create ?kind sf =
  let kind =
    match kind with
    | Some k -> k
    | None -> default ()
  in
  match kind with
  | Dense -> Packed ((module Dense_backend), Dense_backend.create sf, Dense)
  | Sparse -> Packed ((module Sparse_backend), Sparse_backend.create sf, Sparse)

let kind (Packed (_, _, k)) = k
let set_bounds (Packed ((module B), s, _)) j ~lb ~ub = B.set_bounds s j ~lb ~ub
let get_lb (Packed ((module B), s, _)) j = B.get_lb s j
let get_ub (Packed ((module B), s, _)) j = B.get_ub s j

let solve_fresh ?iter_limit ?deadline (Packed ((module B), s, _)) =
  B.solve_fresh ?iter_limit ?deadline s

let resolve ?iter_limit ?deadline (Packed ((module B), s, _)) =
  B.resolve ?iter_limit ?deadline s

let set_rhs (Packed ((module B), s, _)) i v = B.set_rhs s i v
let get_rhs (Packed ((module B), s, _)) i = B.get_rhs s i

let resolve_rhs ?iter_limit ?deadline (Packed ((module B), s, _)) =
  B.resolve_rhs ?iter_limit ?deadline s

let resolve_rhs_batch ?iter_limit ?deadline (Packed ((module B), s, _)) rhs =
  B.resolve_rhs_batch ?iter_limit ?deadline s rhs

let total_iterations (Packed ((module B), s, _)) = B.total_iterations s
let snapshot_basis (Packed ((module B), s, _)) = B.snapshot_basis s
let install_basis (Packed ((module B), s, _)) snap = B.install_basis s snap
let append_rows (Packed ((module B), s, _)) rows = B.append_rows s rows
let num_rows (Packed ((module B), s, _)) = B.num_rows s
let num_cuts (Packed ((module B), s, _)) = B.num_cuts s
let basic_var (Packed ((module B), s, _)) i = B.basic_var s i
let basic_value (Packed ((module B), s, _)) i = B.basic_value s i
let col_stat (Packed ((module B), s, _)) j = B.col_stat s j
let tableau_row (Packed ((module B), s, _)) i = B.tableau_row s i
let stats (Packed ((module B), s, _)) = B.stats s
let pp_state ppf (Packed ((module B), s, _)) = B.pp_state ppf s
