(* Factorized basis inverse for the sparse revised simplex.

   The representation is a product-form eta file: B = E_1 E_2 ... E_K
   where each eta E is the identity with one column r replaced by a
   sparse vector w. Refactorization rebuilds the file from the current
   basis columns by LU-style triangular elimination with Markowitz-flavored
   pivot selection (sparsest-column-first processing order; within a
   column, the eligible row — |w_i| >= threshold * max|w| — with the
   fewest remaining nonzeros), which keeps fill-in low on the
   network-LP + KKT matrices we solve. Per-pivot updates push one more
   eta (the ftran'd entering column), so a pivot costs O(nnz) instead of
   the dense tableau's O(m * n) row sweep. *)

type t = {
  mutable m : int;
  (* eta file: eta k pivots on row rows.(k) with pivot value pivots.(k);
     its off-pivot nonzeros are (idx, value) pairs in [start.(k), start.(k+1)) *)
  mutable rows : int array;
  mutable pivots : float array;
  mutable start : int array; (* length capacity + 1 *)
  mutable idx : int array;
  mutable value : float array;
  (* kinds.(k): a column eta (identity with column r replaced) when false,
     a row eta (identity with row r replaced — appended cut rows) when
     true.  A row eta's ftran step is the column eta's btran step and
     vice versa, so the two kinds share storage and differ only in which
     update formula each pass applies. *)
  mutable kinds : bool array;
  mutable n_eta : int;
  mutable nnz : int;
  mutable base_eta : int; (* etas belonging to the last refactorization *)
  mutable refactorizations : int;
  (* reinversion workspace *)
  mutable work : float array;
  mutable touched : int array;
  mutable in_touched : bool array;
  mutable n_touched : int;
}

let create ~m =
  {
    m;
    rows = Array.make 16 0;
    pivots = Array.make 16 0.;
    start = Array.make 17 0;
    idx = Array.make 64 0;
    value = Array.make 64 0.;
    kinds = Array.make 16 false;
    n_eta = 0;
    nnz = 0;
    base_eta = 0;
    refactorizations = 0;
    work = Array.make m 0.;
    touched = Array.make m 0;
    in_touched = Array.make m false;
    n_touched = 0;
  }

let eta_count t = t.n_eta
let update_count t = t.n_eta - t.base_eta
let refactorizations t = t.refactorizations

let reset t =
  t.n_eta <- 0;
  t.nnz <- 0;
  t.base_eta <- 0

let grow_int a n = Array.append a (Array.make (Int.max n (Array.length a)) 0)
let grow_float a n =
  Array.append a (Array.make (Int.max n (Array.length a)) 0.)

let grow_bool a n =
  Array.append a (Array.make (Int.max n (Array.length a)) false)

let ensure_eta_capacity t =
  if t.n_eta >= Array.length t.rows then begin
    t.rows <- grow_int t.rows 1;
    t.pivots <- grow_float t.pivots 1;
    t.start <- grow_int t.start 1;
    t.kinds <- grow_bool t.kinds 1
  end

(* Extend the factorization's dimension (appended cut rows). The eta file
   itself is untouched — existing etas never reference the new rows — but
   the reinversion workspaces must cover them. *)
let grow t ~m =
  if m < t.m then invalid_arg "Basis.grow: shrinking";
  if m > Array.length t.work then begin
    let cap = Int.max m (2 * Array.length t.work) in
    let work = Array.make cap 0. in
    Array.blit t.work 0 work 0 t.m;
    t.work <- work;
    let touched = Array.make cap 0 in
    Array.blit t.touched 0 touched 0 t.m;
    t.touched <- touched;
    let in_touched = Array.make cap false in
    Array.blit t.in_touched 0 in_touched 0 t.m;
    t.in_touched <- in_touched
  end;
  t.m <- m

let ensure_nnz_capacity t extra =
  if t.nnz + extra > Array.length t.idx then begin
    t.idx <- grow_int t.idx extra;
    t.value <- grow_float t.value extra
  end

(* Push an eta with pivot row [r] from the dense column [w] (length m).
   [w] holds B^-1 a_q for the entering column; w.(r) is the pivot. *)
let push t ~r (w : float array) =
  let piv = w.(r) in
  if Float.abs piv < 1e-12 then invalid_arg "Basis.push: zero pivot";
  ensure_eta_capacity t;
  let k = t.n_eta in
  t.rows.(k) <- r;
  t.pivots.(k) <- piv;
  t.kinds.(k) <- false;
  t.start.(k) <- t.nnz;
  let count = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && w.(i) <> 0. then incr count
  done;
  ensure_nnz_capacity t !count;
  let cursor = ref t.nnz in
  for i = 0 to t.m - 1 do
    let v = Array.unsafe_get w i in
    if i <> r && v <> 0. then begin
      t.idx.(!cursor) <- i;
      t.value.(!cursor) <- v;
      incr cursor
    end
  done;
  t.nnz <- !cursor;
  t.n_eta <- k + 1;
  t.start.(k + 1) <- t.nnz

(* Push an eta directly from a sparse (idx, val) scatter in the
   reinversion workspace; same layout as [push]. *)
let push_sparse_kind t ~row_eta ~r ~piv entries =
  ensure_eta_capacity t;
  let k = t.n_eta in
  t.rows.(k) <- r;
  t.pivots.(k) <- piv;
  t.kinds.(k) <- row_eta;
  t.start.(k) <- t.nnz;
  ensure_nnz_capacity t (List.length entries);
  List.iter
    (fun (i, v) ->
      t.idx.(t.nnz) <- i;
      t.value.(t.nnz) <- v;
      t.nnz <- t.nnz + 1)
    entries;
  t.n_eta <- k + 1;
  t.start.(k + 1) <- t.nnz

let push_sparse t ~r ~piv entries =
  push_sparse_kind t ~row_eta:false ~r ~piv entries

(* Append a ROW eta: the identity with row [r] replaced by the sparse
   entries plus pivot [piv] at (r, r). This is the update factor for an
   appended cut row whose slack enters the basis in place:
   B' = [[B, 0]; [a^T, piv]] = diag(B, 1) * R with R the row eta whose
   off-pivot entries are the cut's coefficients on the variables basic in
   each existing row. *)
let push_row t ~r ~piv entries =
  if Float.abs piv < 1e-12 then invalid_arg "Basis.push_row: zero pivot";
  push_sparse_kind t ~row_eta:true ~r ~piv entries

(* Column-eta inverse applied to x: t = x_r / w_r; x_i -= w_i * t
   (i <> r); x_r = t. A row eta's TRANSPOSED inverse is the same
   operation, so btran reuses this step for row etas. *)
let apply_col_step t k (x : float array) =
  let r = Array.unsafe_get t.rows k in
  let xr = Array.unsafe_get x r in
  if xr <> 0. then begin
    let tt = xr /. Array.unsafe_get t.pivots k in
    Array.unsafe_set x r tt;
    for p = Array.unsafe_get t.start k to Array.unsafe_get t.start (k + 1) - 1
    do
      let i = Array.unsafe_get t.idx p in
      Array.unsafe_set x i
        (Array.unsafe_get x i -. (Array.unsafe_get t.value p *. tt))
    done
  end

(* Row-eta inverse applied to x: x_r = (x_r - sum w_i x_i) / w_r, other
   entries untouched. This is also the column eta's transposed inverse,
   so btran reuses this step for column etas. *)
let apply_row_step t k (x : float array) =
  let r = Array.unsafe_get t.rows k in
  let acc = ref (Array.unsafe_get x r) in
  for p = Array.unsafe_get t.start k to Array.unsafe_get t.start (k + 1) - 1
  do
    acc :=
      !acc
      -. (Array.unsafe_get t.value p
         *. Array.unsafe_get x (Array.unsafe_get t.idx p))
  done;
  Array.unsafe_set x r (!acc /. Array.unsafe_get t.pivots k)

(* x := B^-1 x.  Apply eta inverses oldest-first. *)
let ftran t (x : float array) =
  for k = 0 to t.n_eta - 1 do
    if Array.unsafe_get t.kinds k then apply_row_step t k x
    else apply_col_step t k x
  done

(* Batched ftran: X holds [width] RHS columns interleaved row-major
   (X.(i * width + c) = column c, row i), so each eta's metadata — pivot
   row, pivot value, entry indices — is read once per eta instead of once
   per column, and the inner loops over c touch contiguous memory.

   Per column the arithmetic is EXACTLY the scalar ftran's op sequence
   (same guards, same order of subtractions), so column c of the block
   ends bitwise identical to [ftran t x_c]. That identity is what lets
   the sweep engine toggle batching without changing output. *)
let ftran_batch t ~width (x : float array) =
  if width <= 0 then invalid_arg "Basis.ftran_batch: width";
  let tv = Array.make width 0. in
  let live = Array.make width false in
  for k = 0 to t.n_eta - 1 do
    let r = Array.unsafe_get t.rows k in
    let piv = Array.unsafe_get t.pivots k in
    let rb = r * width in
    let s0 = Array.unsafe_get t.start k in
    let s1 = Array.unsafe_get t.start (k + 1) in
    if Array.unsafe_get t.kinds k then begin
      (* row eta: x_r = (x_r - sum w_i x_i) / piv; scalar has no
         zero-skip here, so neither do we *)
      for c = 0 to width - 1 do
        Array.unsafe_set tv c (Array.unsafe_get x (rb + c))
      done;
      for p = s0 to s1 - 1 do
        let ib = Array.unsafe_get t.idx p * width in
        let v = Array.unsafe_get t.value p in
        for c = 0 to width - 1 do
          Array.unsafe_set tv c
            (Array.unsafe_get tv c -. (v *. Array.unsafe_get x (ib + c)))
        done
      done;
      for c = 0 to width - 1 do
        Array.unsafe_set x (rb + c) (Array.unsafe_get tv c /. piv)
      done
    end
    else begin
      (* column eta: skip columns whose pivot entry is exactly zero —
         the scalar step leaves them untouched, and an unconditional
         [x -. v *. 0.] would flip a -0. to +0. *)
      for c = 0 to width - 1 do
        let xr = Array.unsafe_get x (rb + c) in
        if xr <> 0. then begin
          Array.unsafe_set live c true;
          let tt = xr /. piv in
          Array.unsafe_set tv c tt;
          Array.unsafe_set x (rb + c) tt
        end
        else Array.unsafe_set live c false
      done;
      for p = s0 to s1 - 1 do
        let ib = Array.unsafe_get t.idx p * width in
        let v = Array.unsafe_get t.value p in
        for c = 0 to width - 1 do
          if Array.unsafe_get live c then
            Array.unsafe_set x (ib + c)
              (Array.unsafe_get x (ib + c) -. (v *. Array.unsafe_get tv c))
        done
      done
    end
  done

(* y := B^-T y.  Apply transposed eta inverses newest-first; transposing
   swaps the column/row step each eta kind uses. *)
let btran t (y : float array) =
  for k = t.n_eta - 1 downto 0 do
    if Array.unsafe_get t.kinds k then apply_col_step t k y
    else apply_row_step t k y
  done

(* --------------------------------------------------------------------- *)
(* Reinversion                                                            *)
(* --------------------------------------------------------------------- *)

let markowitz_threshold = 0.05
let singular_tol = 1e-10

(* Rebuild the eta file from the basis columns. [col v f] iterates the
   nonzeros of variable [v]'s column of the full [A I I] matrix.
   On success the [basis] array is permuted in place to the new
   position-to-row assignment (callers must refresh basic values after).
   Returns false when the basis is numerically singular. *)
let refactorize t ~col (basis : int array) =
  let m = t.m in
  reset t;
  t.refactorizations <- t.refactorizations + 1;
  (* gather columns + static row counts for the Markowitz tie-break *)
  let columns = Array.make m [] in
  let row_count = Array.make m 0 in
  let nnz_of = Array.make m 0 in
  for p = 0 to m - 1 do
    let acc = ref [] and cnt = ref 0 in
    col basis.(p) (fun i v ->
        if v <> 0. then begin
          acc := (i, v) :: !acc;
          incr cnt;
          row_count.(i) <- row_count.(i) + 1
        end);
    columns.(p) <- !acc;
    nnz_of.(p) <- !cnt
  done;
  (* process sparsest columns first *)
  let order = Array.init m (fun p -> p) in
  Array.sort (fun a b -> compare (nnz_of.(a), a) (nnz_of.(b), b)) order;
  let assigned = Array.make m false in
  let new_basis = Array.make m (-1) in
  let w = t.work in
  let ok = ref true in
  (try
     Array.iter
       (fun p ->
         (* w := E^-1... applied to the column (partial ftran) *)
         t.n_touched <- 0;
         List.iter
           (fun (i, v) ->
             if not t.in_touched.(i) then begin
               t.in_touched.(i) <- true;
               t.touched.(t.n_touched) <- i;
               t.n_touched <- t.n_touched + 1
             end;
             w.(i) <- w.(i) +. v)
           columns.(p);
         for k = 0 to t.n_eta - 1 do
           let r = Array.unsafe_get t.rows k in
           let xr = Array.unsafe_get w r in
           if xr <> 0. then begin
             let tt = xr /. Array.unsafe_get t.pivots k in
             Array.unsafe_set w r tt;
             for q =
               Array.unsafe_get t.start k
               to Array.unsafe_get t.start (k + 1) - 1
             do
               let i = Array.unsafe_get t.idx q in
               if not (Array.unsafe_get t.in_touched i) then begin
                 Array.unsafe_set t.in_touched i true;
                 t.touched.(t.n_touched) <- i;
                 t.n_touched <- t.n_touched + 1
               end;
               Array.unsafe_set w i
                 (Array.unsafe_get w i -. (Array.unsafe_get t.value q *. tt))
             done
           end
         done;
         (* pivot selection: eligible = unassigned rows with magnitude
            within [markowitz_threshold] of the best; among those take the
            sparsest remaining row (Markowitz-style fill control) *)
         let vmax = ref 0. in
         for s = 0 to t.n_touched - 1 do
           let i = t.touched.(s) in
           if (not assigned.(i)) && Float.abs w.(i) > !vmax then
             vmax := Float.abs w.(i)
         done;
         if !vmax < singular_tol then begin
           ok := false;
           raise Exit
         end;
         let best = ref (-1) and best_cnt = ref max_int in
         for s = 0 to t.n_touched - 1 do
           let i = t.touched.(s) in
           if
             (not assigned.(i))
             && Float.abs w.(i) >= markowitz_threshold *. !vmax
             && (row_count.(i) < !best_cnt
                || (row_count.(i) = !best_cnt && (!best = -1 || i < !best)))
           then begin
             best := i;
             best_cnt := row_count.(i)
           end
         done;
         let r = !best in
         let piv = w.(r) in
         (* record the eta over the touched scatter; an exact identity
            column (e.g. a basic slack) needs no eta at all *)
         let entries = ref [] in
         for s = 0 to t.n_touched - 1 do
           let i = t.touched.(s) in
           if i <> r && w.(i) <> 0. then entries := (i, w.(i)) :: !entries
         done;
         if not (piv = 1. && !entries = []) then push_sparse t ~r ~piv !entries;
         assigned.(r) <- true;
         new_basis.(r) <- basis.(p);
         List.iter (fun (i, _) -> row_count.(i) <- row_count.(i) - 1)
           columns.(p);
         (* clear workspace *)
         for s = 0 to t.n_touched - 1 do
           w.(t.touched.(s)) <- 0.;
           t.in_touched.(t.touched.(s)) <- false
         done;
         t.n_touched <- 0)
       order
   with Exit ->
     (* clear workspace left dirty by the aborted column *)
     for s = 0 to t.n_touched - 1 do
       w.(t.touched.(s)) <- 0.;
       t.in_touched.(t.touched.(s)) <- false
     done;
     t.n_touched <- 0);
  if !ok then begin
    Array.blit new_basis 0 basis 0 m;
    t.base_eta <- t.n_eta
  end
  else reset t;
  !ok
