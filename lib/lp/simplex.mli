(** Bounded-variable primal/dual simplex over a {!Standard_form.t}.

    This is the LP engine underneath {!Solver} and {!Branch_bound} — the
    stand-in for the commercial solver (Gurobi) the paper uses. It is a
    dense-tableau two-phase primal simplex with general variable bounds,
    Dantzig pricing with a Bland anti-cycling fallback, and a dual simplex
    for warm restarts after bound changes (the branch-and-bound workhorse:
    branching only ever changes variable bounds, which preserves dual
    feasibility of the incumbent basis).

    A [t] value is a mutable solver state. The intended lifecycle is:
    [create] once per standard form, [solve] for the root relaxation, then
    any number of [set_bounds] + [resolve] cycles as the search tree is
    explored. [resolve] falls back to a from-scratch primal solve whenever
    the warm start is not viable, so it is always safe to call. *)

type t

type status = Optimal | Infeasible | Unbounded | Iteration_limit

val pp_status : Format.formatter -> status -> unit

(** Cumulative solver-internals counters, shared by every backend.
    The dense tableau reports [refactorizations = 0] and [etas = 0]
    (it has no factorization); warm-start counters track {!resolve}
    outcomes — a hit is a successful dual-simplex warm restart, a miss
    is a fallback to {!solve_fresh}. *)
type stats = {
  iterations : int;
  refactorizations : int;
  etas : int;
  warm_hits : int;
  warm_misses : int;
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

type solution = {
  status : status;
  objective : float;
      (** in the original model's direction (max stays max) *)
  primal : float array;  (** structural variable values, length [n] *)
  duals : float array;
      (** one per row, in model direction; satisfies
          [c - duals * A = reduced_costs] for the minimization form *)
  reduced_costs : float array;  (** structural reduced costs *)
  iterations : int;  (** simplex pivots performed by this call *)
}

val create : Standard_form.t -> t

(** Change a structural variable's bounds in place. The current basis is
    kept; basic values are patched so the tableau invariant holds. *)
val set_bounds : t -> int -> lb:float -> ub:float -> unit

val get_lb : t -> int -> float
val get_ub : t -> int -> float

(** Fresh two-phase primal solve, ignoring any previous basis. *)
val solve_fresh : ?iter_limit:int -> t -> solution

(** Warm-started solve: dual simplex from the current basis when possible,
    falling back to {!solve_fresh}. Equivalent to {!solve_fresh} if the
    state was never solved. *)
val resolve : ?iter_limit:int -> t -> solution

(** Total pivots performed over the lifetime of this state. *)
val total_iterations : t -> int

(** Lifetime counters for this state. *)
val stats : t -> stats

(** Diagnostic dump of the internal state (basis, statuses, basic values,
    reduced costs) for debugging numerical issues. *)
val pp_state : Format.formatter -> t -> unit
