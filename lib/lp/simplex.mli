(** Bounded-variable primal/dual simplex over a {!Standard_form.t}.

    This is the LP engine underneath {!Solver} and {!Branch_bound} — the
    stand-in for the commercial solver (Gurobi) the paper uses. It is a
    dense-tableau two-phase primal simplex with general variable bounds,
    Dantzig pricing with a Bland anti-cycling fallback, and a dual simplex
    for warm restarts after bound changes (the branch-and-bound workhorse:
    branching only ever changes variable bounds, which preserves dual
    feasibility of the incumbent basis).

    A [t] value is a mutable solver state. The intended lifecycle is:
    [create] once per standard form, [solve] for the root relaxation, then
    any number of [set_bounds] + [resolve] cycles as the search tree is
    explored. [resolve] falls back to a from-scratch primal solve whenever
    the warm start is not viable, so it is always safe to call. *)

type t

type status = Optimal | Infeasible | Unbounded | Iteration_limit

val pp_status : Format.formatter -> status -> unit

(** Cumulative solver-internals counters, shared by every backend.
    For the dense tableau [refactorizations] counts full Gauss-Jordan
    tableau rebuilds (triggered by the drift detector or a basis
    install) and [etas = 0]; warm-start counters track {!resolve}
    outcomes — a hit is a successful dual-simplex warm restart, a miss
    is a fallback to {!solve_fresh}. [rhs_ftran]/[rhs_dual] count
    {!resolve_rhs} outcomes: re-solves finished by the single ftran
    (the old basis stayed optimal) vs ones that needed dual-simplex
    pivots. [rhs_batch] counts {!resolve_rhs_batch} kernel passes,
    [rhs_batch_cols] the batch columns answered by the shared batched
    ftran with zero pivots, and [rhs_peeled] the columns peeled out of
    the batch into the per-column dual-simplex fallback (or a full
    re-solve). [presolve_rows]/[presolve_cols] are filled in by
    {!Solver.solve} when presolve ran: rows dropped and variables fixed
    before the model reached the engine. [cuts_added]/[cuts_active]
    count appended cut rows ({!append_rows}) and how many were binding
    in the last basis; [bounds_tightened] is filled in by
    {!Branch_bound} when node-level interval propagation ran. *)
type stats = {
  iterations : int;
  refactorizations : int;
  etas : int;
  warm_hits : int;
  warm_misses : int;
  rhs_ftran : int;
  rhs_dual : int;
  rhs_batch : int;
  rhs_batch_cols : int;
  rhs_peeled : int;
  presolve_rows : int;
  presolve_cols : int;
  cuts_added : int;
  cuts_active : int;
  bounds_tightened : int;
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

(** A basis usable to warm-start any backend built on the same standard
    form: the basic column of each row plus every column's status,
    encoded as plain int arrays (0 basic, 1 at-lower, 2 at-upper,
    3 free) so a snapshot can be shipped by value across domains —
    the mechanism parallel branch-and-bound uses to hand a stolen node
    its parent's basis. *)
type basis_snapshot = { snap_basis : int array; snap_stat : int array }

type solution = {
  status : status;
  objective : float;
      (** in the original model's direction (max stays max) *)
  primal : float array;  (** structural variable values, length [n] *)
  duals : float array;
      (** one per row, in model direction; satisfies
          [c - duals * A = reduced_costs] for the minimization form *)
  reduced_costs : float array;  (** structural reduced costs *)
  iterations : int;  (** simplex pivots performed by this call *)
}

val create : Standard_form.t -> t

(** Change a structural variable's bounds in place. The current basis is
    kept; basic values are patched so the tableau invariant holds. *)
val set_bounds : t -> int -> lb:float -> ub:float -> unit

val get_lb : t -> int -> float
val get_ub : t -> int -> float

(** Fresh two-phase primal solve, ignoring any previous basis. When a
    [deadline] is given, every pivot charges its budget and an expired
    deadline stops the solve with status {!Iteration_limit} — the
    result is then a valid bound-in-progress, not an optimum. *)
val solve_fresh :
  ?iter_limit:int -> ?deadline:Repro_resilience.Deadline.t -> t -> solution

(** Warm-started solve: dual simplex from the current basis when possible,
    falling back to {!solve_fresh}. Equivalent to {!solve_fresh} if the
    state was never solved. [deadline] as in {!solve_fresh}. *)
val resolve :
  ?iter_limit:int -> ?deadline:Repro_resilience.Deadline.t -> t -> solution

(** Overwrite row [i]'s right-hand side in this state (the shared
    standard form is not modified). Takes effect at the next solve;
    pair with {!resolve_rhs} for the factorized-basis fast path. *)
val set_rhs : t -> int -> float -> unit

val get_rhs : t -> int -> float

(** Re-solve after RHS-only edits ({!set_rhs}). Changing [b] leaves
    reduced costs untouched, so the last optimal basis stays dual
    feasible: the new basic values are one ftran away, and when they
    remain within bounds the re-solve costs zero pivots (counted in
    [stats.rhs_ftran]); otherwise a dual-simplex run restores primal
    feasibility from the same basis ([stats.rhs_dual]). Falls back to
    {!resolve} when the state has no phase-2 optimal basis (never
    solved, bounds changed since, or last solve was not optimal), so it
    is always safe to call. *)
val resolve_rhs :
  ?iter_limit:int -> ?deadline:Repro_resilience.Deadline.t -> t -> solution

(** [resolve_rhs_batch t rhs] re-solves the state once per RHS vector in
    [rhs] (each of length [num_rows t], replacing the whole [b]) and
    returns the solutions in order. Semantically — and bitwise —
    identical to installing each vector with {!set_rhs} and calling
    {!resolve_rhs} sequentially; the dense backend does exactly that,
    serving as the differential oracle for the sparse backend's batched
    eta-file kernel. Counted in [stats.rhs_batch]/[rhs_batch_cols]/
    [rhs_peeled]. *)
val resolve_rhs_batch :
  ?iter_limit:int ->
  ?deadline:Repro_resilience.Deadline.t ->
  t ->
  float array array ->
  solution array

(** Total pivots performed over the lifetime of this state. *)
val total_iterations : t -> int

(** {2 Appended cut rows}

    [append_rows t rows] appends each [(terms, rhs)] as a new row
    [terms . x <= rhs] (structural columns only). The column layout is
    remapped in place — slacks keep their indices, artificials shift —
    and each cut's fresh slack starts basic in its row, so an optimal
    basis stays dual feasible and the next {!resolve} restores primal
    feasibility by dual simplex instead of solving from scratch. *)
val append_rows : t -> ((int * float) array * float) array -> unit

(** Current number of rows (original + appended cuts). *)
val num_rows : t -> int

(** Number of appended cut rows. *)
val num_cuts : t -> int

(** [basic_var t i] / [basic_value t i]: the column basic in row [i] of
    the last factorized basis and its current value. *)
val basic_var : t -> int -> int

val basic_value : t -> int -> float

(** Encoded status of any column (0 basic, 1 at-lower, 2 at-upper,
    3 free) — the alphabet {!basis_snapshot} uses. *)
val col_stat : t -> int -> int

(** Nonbasic [(column, coefficient)] entries of tableau row [i] —
    row [i] of [B^-1 A] over structural and slack columns — the raw
    material for Gomory cut derivation. Only meaningful after a solve. *)
val tableau_row : t -> int -> (int * float) list

(** Capture the current basis + statuses for later {!install_basis} on
    this or another state over the same standard form. *)
val snapshot_basis : t -> basis_snapshot

(** Install a snapshot taken by {!snapshot_basis} and refactorize the
    tableau for it. Returns false (and forces the next solve to start
    from scratch) if the snapshot does not fit this state or its basis
    is singular. *)
val install_basis : t -> basis_snapshot -> bool

(** [pad_snapshot ~n snap ~rows] extends a snapshot taken at a state
    with fewer cut rows to one with [rows] rows: the extra cut slacks
    become basic in their own rows (always a consistent, nonsingular
    extension) and the artificial block's indices shift to the wider
    layout. Used by the parallel tree to install a donor's basis after
    syncing a newer cut-pool generation.
    @raise Invalid_argument if [rows] is smaller than the snapshot. *)
val pad_snapshot : n:int -> basis_snapshot -> rows:int -> basis_snapshot

(** Lifetime counters for this state. *)
val stats : t -> stats

(** Diagnostic dump of the internal state (basis, statuses, basic values,
    reduced costs) for debugging numerical issues. *)
val pp_state : Format.formatter -> t -> unit
