(** Pluggable LP engine selection.

    Two backends implement the same lifecycle over a {!Standard_form.t}:

    - [Dense] — the original dense-tableau two-phase simplex
      ({!Simplex}); kept as the reference oracle.
    - [Sparse] — the sparse revised simplex ({!Sparse_simplex}) with a
      factorized basis inverse; the default.

    Both return identical {!Simplex.solution} records (primal, duals,
    reduced costs), so callers pick purely on performance. The
    process-wide default is [Sparse], overridable with the
    [REPRO_LP_BACKEND] environment variable ([dense] or [sparse]) or
    {!set_default} (wired to the CLI's [--lp-backend] flag). *)

type kind = Dense | Sparse

val kind_to_string : kind -> string

(** Accepts ["dense"]/["tableau"] and ["sparse"]/["revised"],
    case-insensitively. *)
val kind_of_string : string -> kind option

(** Current process-wide default backend. *)
val default : unit -> kind

val set_default : kind -> unit

(** Common backend signature; [state] is the engine's mutable solver
    state. See {!Simplex} for the semantics of each operation. *)
module type S = sig
  type state

  val create : Standard_form.t -> state
  val set_bounds : state -> int -> lb:float -> ub:float -> unit
  val get_lb : state -> int -> float
  val get_ub : state -> int -> float
  val solve_fresh :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    Simplex.solution

  val resolve :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    Simplex.solution

  val set_rhs : state -> int -> float -> unit
  val get_rhs : state -> int -> float

  val resolve_rhs :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    Simplex.solution

  val resolve_rhs_batch :
    ?iter_limit:int ->
    ?deadline:Repro_resilience.Deadline.t ->
    state ->
    float array array ->
    Simplex.solution array

  val total_iterations : state -> int
  val snapshot_basis : state -> Simplex.basis_snapshot
  val install_basis : state -> Simplex.basis_snapshot -> bool
  val append_rows : state -> ((int * float) array * float) array -> unit
  val num_rows : state -> int
  val num_cuts : state -> int
  val basic_var : state -> int -> int
  val basic_value : state -> int -> float
  val col_stat : state -> int -> int
  val tableau_row : state -> int -> (int * float) list
  val stats : state -> Simplex.stats
  val pp_state : Format.formatter -> state -> unit
end

module Dense_backend : S with type state = Simplex.t
module Sparse_backend : S with type state = Sparse_simplex.t

(** A backend instance: an engine module packed with its state. *)
type t

(** [create ?kind sf] instantiates a backend on [sf]; [kind] defaults to
    {!default}[ ()]. *)
val create : ?kind:kind -> Standard_form.t -> t

val kind : t -> kind
val set_bounds : t -> int -> lb:float -> ub:float -> unit
val get_lb : t -> int -> float
val get_ub : t -> int -> float
val solve_fresh :
  ?iter_limit:int -> ?deadline:Repro_resilience.Deadline.t -> t -> Simplex.solution

val resolve :
  ?iter_limit:int -> ?deadline:Repro_resilience.Deadline.t -> t -> Simplex.solution

(** Per-state right-hand side edits for scenario sweeps; see
    {!Simplex.set_rhs}. The standard form stays shared read-only. *)
val set_rhs : t -> int -> float -> unit

val get_rhs : t -> int -> float

(** Factorized-basis fast path for RHS-only changes: ftran-only
    re-solve when the old basis stays primal feasible, dual simplex
    otherwise; see {!Simplex.resolve_rhs}. *)
val resolve_rhs :
  ?iter_limit:int -> ?deadline:Repro_resilience.Deadline.t -> t -> Simplex.solution

(** Batched multi-RHS fast path: each element of the array is a full
    replacement RHS (length [num_rows]); results come back in order and
    are bitwise identical to sequential {!resolve_rhs} calls. The
    sparse backend amortizes the eta-file traversal across the whole
    block; the dense backend loops the scalar path (differential
    oracle); see {!Simplex.resolve_rhs_batch}. *)
val resolve_rhs_batch :
  ?iter_limit:int ->
  ?deadline:Repro_resilience.Deadline.t ->
  t ->
  float array array ->
  Simplex.solution array

val total_iterations : t -> int

(** Capture / install a warm-start basis; see {!Simplex.snapshot_basis}
    and {!Simplex.install_basis}. A snapshot from one backend instance
    can be installed into any other instance built on the same standard
    form (including one living on a different domain). *)
val snapshot_basis : t -> Simplex.basis_snapshot

val install_basis : t -> Simplex.basis_snapshot -> bool

(** {2 Cut-row API}

    [append_rows] grows the LP with rows [terms . x <= rhs] (structural
    columns only) while keeping the current basis warm — the dense
    oracle refactorizes, the sparse engine pushes eta-file-preserving
    row etas; either way the next {!resolve} restores feasibility by
    dual simplex. The accessors expose what the Gomory separator needs:
    the basic column/value of each row, every column's encoded status
    (0 basic, 1 at-lower, 2 at-upper, 3 free), and nonbasic tableau-row
    entries over structural + slack columns. *)

val append_rows : t -> ((int * float) array * float) array -> unit
val num_rows : t -> int
val num_cuts : t -> int
val basic_var : t -> int -> int
val basic_value : t -> int -> float
val col_stat : t -> int -> int
val tableau_row : t -> int -> (int * float) list
val stats : t -> Simplex.stats
val pp_state : Format.formatter -> t -> unit
