type var = int
type constr = int
type var_kind = Continuous | Binary | Integer
type sense = Le | Ge | Eq
type direction = Minimize | Maximize

type var_data = {
  v_name : string;
  mutable v_lb : float;
  mutable v_ub : float;
  v_kind : var_kind;
}

type constr_data = {
  c_name : string;
  c_expr : Linexpr.t; (* constant part already folded into c_rhs *)
  c_sense : sense;
  mutable c_rhs : float;
}

type t = {
  m_name : string;
  vars : var_data Buf.t;
  constrs : constr_data Buf.t;
  sos1 : var array Buf.t;
  mutable obj : direction * Linexpr.t;
}

let create ?(name = "model") () =
  {
    m_name = name;
    vars = Buf.create ();
    constrs = Buf.create ();
    sos1 = Buf.create ();
    obj = (Minimize, Linexpr.zero);
  }

let name t = t.m_name

let add_var ?name ?(lb = 0.) ?(ub = infinity) ?(kind = Continuous) t =
  let lb, ub =
    match kind with
    | Binary -> (Float.max lb 0., Float.min ub 1.)
    | Continuous | Integer -> (lb, ub)
  in
  if lb > ub then
    invalid_arg
      (Printf.sprintf "Model.add_var: lb %g > ub %g (%s)" lb ub
         (Option.value name ~default:"<anon>"));
  let idx = Buf.length t.vars in
  let v_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "x%d" idx
  in
  Buf.push t.vars { v_name; v_lb = lb; v_ub = ub; v_kind = kind }

let add_vars ?name ?lb ?ub ?kind t n =
  let make i =
    let name = Option.map (fun p -> Printf.sprintf "%s_%d" p i) name in
    add_var ?name ?lb ?ub ?kind t
  in
  Array.init n make

let add_constr ?name t expr sense rhs =
  let idx = Buf.length t.constrs in
  let c_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "c%d" idx
  in
  let c_rhs = rhs -. Linexpr.const_part expr in
  let c_expr = Linexpr.add_constant expr (-.Linexpr.const_part expr) in
  Buf.push t.constrs { c_name; c_expr; c_sense = sense; c_rhs }

let add_sos1 ?name:_ t vars =
  if List.length vars < 2 then invalid_arg "Model.add_sos1: group of < 2 vars";
  let n = Buf.length t.vars in
  List.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Model.add_sos1: bad var")
    vars;
  ignore (Buf.push t.sos1 (Array.of_list vars))

let set_objective t dir expr = t.obj <- (dir, expr)

let num_vars t = Buf.length t.vars
let num_constrs t = Buf.length t.constrs
let num_sos1 t = Buf.length t.sos1
let var_name t v = (Buf.get t.vars v).v_name
let var_lb t v = (Buf.get t.vars v).v_lb
let var_ub t v = (Buf.get t.vars v).v_ub
let var_kind t v = (Buf.get t.vars v).v_kind

let set_var_bounds t v ~lb ~ub =
  if lb > ub then invalid_arg "Model.set_var_bounds: lb > ub";
  let d = Buf.get t.vars v in
  d.v_lb <- lb;
  d.v_ub <- ub

let constr_name t c = (Buf.get t.constrs c).c_name
let constr_expr t c = (Buf.get t.constrs c).c_expr
let constr_sense t c = (Buf.get t.constrs c).c_sense
let constr_rhs t c = (Buf.get t.constrs c).c_rhs
let set_constr_rhs t c rhs = (Buf.get t.constrs c).c_rhs <- rhs
let sos1_groups t = Buf.to_array t.sos1
let objective t = t.obj

let integer_vars t =
  let acc = Buf.create () in
  Buf.iteri
    (fun i d ->
      match d.v_kind with
      | Binary | Integer -> ignore (Buf.push acc i)
      | Continuous -> ())
    t.vars;
  Buf.to_array acc

let is_mip t = Array.length (integer_vars t) > 0 || Buf.length t.sos1 > 0

let constr_violation t values c =
  let { c_expr; c_sense; c_rhs; _ } = Buf.get t.constrs c in
  let lhs = Linexpr.eval c_expr (fun v -> values.(v)) in
  match c_sense with
  | Le -> Float.max 0. (lhs -. c_rhs)
  | Ge -> Float.max 0. (c_rhs -. lhs)
  | Eq -> Float.abs (lhs -. c_rhs)

let max_violation t values =
  let worst = ref 0. in
  let bump x = if x > !worst then worst := x in
  for c = 0 to num_constrs t - 1 do
    bump (constr_violation t values c)
  done;
  Buf.iteri
    (fun i d ->
      bump (d.v_lb -. values.(i));
      bump (values.(i) -. d.v_ub);
      match d.v_kind with
      | Binary | Integer -> bump (Float.abs (values.(i) -. Float.round values.(i)))
      | Continuous -> ())
    t.vars;
  let sos_violation group =
    (* second-largest magnitude must be zero *)
    let mags = Array.map (fun v -> Float.abs values.(v)) group in
    Array.sort (fun a b -> compare b a) mags;
    if Array.length mags >= 2 then bump mags.(1)
  in
  Array.iter sos_violation (sos1_groups t);
  !worst

let objective_value t values =
  let _, expr = t.obj in
  Linexpr.eval expr (fun v -> values.(v))

let pp_stats ppf t =
  Fmt.pf ppf "model %s: %d vars (%d integer), %d constrs, %d sos1" t.m_name
    (num_vars t)
    (Array.length (integer_vars t))
    (num_constrs t) (num_sos1 t)
