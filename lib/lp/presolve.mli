(** Presolve: standard model reductions applied before the simplex /
    branch-and-bound, as every production solver does.

    Implemented rules, iterated to a fixed point:

    - {b singleton rows} become variable bounds and are dropped;
    - {b fixed variables} ([lb = ub]) are substituted into rows and the
      objective and removed from the model;
    - {b empty rows} are dropped (or prove infeasibility);
    - {b forcing/redundant rows}: interval arithmetic over variable
      bounds drops rows that can never bind and detects rows that can
      never hold;
    - {b SOS1 propagation}: members fixed to zero leave their group; a
      member fixed nonzero zeroes the rest; singleton groups vanish.

    The reduction returns a fresh model plus enough bookkeeping to map a
    reduced solution back to the original variable space. *)

type outcome =
  | Reduced of t
  | Infeasible_model  (** presolve proved the model infeasible *)

and t = {
  model : Model.t;  (** the reduced model *)
  var_map : int array;  (** original var -> reduced var, or -1 if removed *)
  fixed_values : float array;  (** value for every removed original var *)
  rows_dropped : int;
  vars_fixed : int;
  bounds_tightened : int;
}

val reduce : Model.t -> outcome

val restore : t -> float array -> float array
(** [restore red reduced_primal] rebuilds a primal assignment over the
    original model's variables. *)

val var_intervals : Model.t -> (float * float) array option
(** Fixed-point interval propagation only: the tightened [(lb, ub)] of
    every variable, indexed in the {e original} model's variable space.
    Every feasible point of the model lies inside these boxes, so they
    are valid activity bounds for big-M derivation (the follower layer's
    {!module:Repro_follower} [Bigm] consumes them). [None] when the
    propagation proves the model infeasible. *)
