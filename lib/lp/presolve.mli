(** Presolve: standard model reductions applied before the simplex /
    branch-and-bound, as every production solver does.

    Implemented rules, iterated to a fixed point:

    - {b singleton rows} become variable bounds and are dropped;
    - {b fixed variables} ([lb = ub]) are substituted into rows and the
      objective and removed from the model;
    - {b empty rows} are dropped (or prove infeasibility);
    - {b forcing/redundant rows}: interval arithmetic over variable
      bounds drops rows that can never bind and detects rows that can
      never hold;
    - {b SOS1 propagation}: members fixed to zero leave their group; a
      member fixed nonzero zeroes the rest; singleton groups vanish.

    The reduction returns a fresh model plus enough bookkeeping to map a
    reduced solution back to the original variable space. *)

type outcome =
  | Reduced of t
  | Infeasible_model  (** presolve proved the model infeasible *)

and t = {
  model : Model.t;  (** the reduced model *)
  var_map : int array;  (** original var -> reduced var, or -1 if removed *)
  fixed_values : float array;  (** value for every removed original var *)
  rows_dropped : int;
  vars_fixed : int;
  bounds_tightened : int;
}

val reduce : Model.t -> outcome

val restore : t -> float array -> float array
(** [restore red reduced_primal] rebuilds a primal assignment over the
    original model's variables. *)

(** A constraint row in representation-agnostic form for
    {!tighten_intervals}: sparse [terms] over caller-chosen variable
    indices, a sense, and a right-hand side. *)
type row = { terms : (int * float) array; sense : Model.sense; rhs : float }

val tighten_intervals :
  ?max_rounds:int ->
  rows:row array ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  unit ->
  [ `Tightened of int | `Infeasible ]
(** Fixed-point row-implied bound tightening, editing [lb]/[ub] in
    place: for every row and every variable in it, the residual
    activity of its co-variables bounds what it can contribute;
    integer variables additionally round to the nearest contained
    integer. Unlike {!reduce} this is a reusable node-level pass — the
    branch-and-bound relaxation pipeline runs it under each node's
    branching bounds, and {!var_intervals} uses it to sharpen the boxes
    big-M derivation consumes. Returns the number of bound changes, or
    [`Infeasible] when propagation empties a box or a row (the caller
    prunes the node). [max_rounds] caps the fixed-point iteration
    (default 4). *)

val var_intervals : Model.t -> (float * float) array option
(** Fixed-point interval propagation only: the tightened [(lb, ub)] of
    every variable, indexed in the {e original} model's variable space.
    Every feasible point of the model lies inside these boxes, so they
    are valid activity bounds for big-M derivation (the follower layer's
    {!module:Repro_follower} [Bigm] consumes them). [None] when the
    propagation proves the model infeasible. *)
