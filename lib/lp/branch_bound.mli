(** Branch-and-bound for MILPs with SOS1 (complementarity) constraints.

    This plays the role of Gurobi in the paper: it solves models whose
    nonconvexity comes from integer variables and from SOS1 groups — the
    "special ordered sets" that the KKT rewrite uses to express
    complementary slackness (§3.1). Branching only ever tightens variable
    bounds, so every node is warm-started with the dual simplex.

    The search mirrors the behaviours §3.3 exploits in commercial solvers:
    it reports incumbents as they are found (via [on_incumbent] and the
    incumbent trace), exposes the primal–dual gap, and stops early when
    incremental progress stalls below a configurable threshold within a
    time window — the paper's 0.5%-per-window timeout policy. *)

type options = {
  time_limit : float;  (** wall-clock seconds; [infinity] disables *)
  node_limit : int;
  gap_tol : float;  (** stop when relative MIP gap falls below this *)
  stall_time : float;
      (** stop when no relative improvement >= [stall_improvement] has been
          seen for this many seconds (and an incumbent exists) *)
  stall_improvement : float;
  int_tol : float;  (** integrality tolerance *)
  sos_tol : float;  (** SOS1 violation tolerance *)
  log_progress : bool;
  interrupt : unit -> bool;
      (** polled once per node; returning true stops the search with the
          current incumbent (the hook portfolio racers use to wind a
          worker down once the shared incumbent is good enough) *)
  backend : Backend.kind option;
      (** LP engine for node relaxations; [None] (the default) resolves
          {!Backend.default} at solve time *)
  warm_start : bool;
      (** when true (the default) every child node re-solves with the
          dual simplex from the parent's basis; false forces a cold
          from-scratch solve per node — only useful for measuring what
          basis reuse buys *)
}

val default_options : options

type outcome =
  | Optimal  (** incumbent proven optimal within [gap_tol] *)
  | Feasible  (** stopped by a limit with an incumbent in hand *)
  | No_incumbent  (** stopped by a limit before finding any solution *)
  | Infeasible
  | Unbounded

type result = {
  outcome : outcome;
  objective : float;  (** incumbent objective, in model direction *)
  best_bound : float;  (** proven bound on the optimum, model direction *)
  mip_gap : float;  (** relative primal–dual gap; 0 when proven optimal *)
  primal : float array option;  (** incumbent assignment when available *)
  nodes : int;
  simplex_iterations : int;
  lp_stats : Simplex.stats;
      (** LP-engine internals over the whole search: pivots,
          refactorizations, eta count, warm-start hits/misses *)
  elapsed : float;
  incumbent_trace : (float * float) list;
      (** (seconds since start, incumbent objective) at each improvement,
          oldest first — the raw series behind Fig. 3 style plots *)
}

(** [solve model] runs branch-and-bound.

    [primal_heuristic] is called on each node's relaxation values and may
    return a trusted feasible objective value (model direction) with an
    optional full assignment — the mechanism the metaopt layer uses to turn
    relaxation demands into true-gap incumbents (§3.3 "solvers usually find
    a reasonable solution quickly"). Returned values are trusted: callers
    must only report objective values realized by some feasible point of
    the model.

    [on_incumbent] observes every incumbent improvement. *)
val solve :
  ?options:options ->
  ?primal_heuristic:(float array -> (float * float array option) option) ->
  ?on_incumbent:(float -> unit) ->
  Model.t ->
  result

val pp_outcome : Format.formatter -> outcome -> unit
val pp_result : Format.formatter -> result -> unit
