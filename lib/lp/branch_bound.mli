(** Branch-and-bound for MILPs with SOS1 (complementarity) constraints.

    This plays the role of Gurobi in the paper: it solves models whose
    nonconvexity comes from integer variables and from SOS1 groups — the
    "special ordered sets" that the KKT rewrite uses to express
    complementary slackness (§3.1). Branching only ever tightens variable
    bounds, so every node is warm-started with the dual simplex.

    The search mirrors the behaviours §3.3 exploits in commercial solvers:
    it reports incumbents as they are found (via [on_incumbent] and the
    incumbent trace), exposes the primal–dual gap, and stops early when
    incremental progress stalls below a configurable threshold within a
    time window — the paper's 0.5%-per-window timeout policy.

    With [jobs > 1] the tree is searched by a team of domains over a
    shared-memory work-stealing node pool ({!Node_pool}): each worker
    dives its own subtree best-bound-first (cheap dual-simplex warm
    restarts from its previous node), steals the globally best open node
    when it runs dry, and shares one atomic incumbent so a bound found by
    any worker prunes everyone's subtrees. [jobs = 1] takes the original
    serial code path and is bit-identical to it. *)

type options = {
  time_limit : float;  (** wall-clock seconds; [infinity] disables *)
  node_limit : int;
      (** with [jobs > 1] the limit is checked against a shared counter
          before each node is expanded, so the search can overshoot it by
          at most [jobs - 1] in-flight nodes *)
  gap_tol : float;  (** stop when relative MIP gap falls below this *)
  stall_time : float;
      (** stop when no relative improvement >= [stall_improvement] has been
          seen for this many seconds (and an incumbent exists) *)
  stall_improvement : float;
  int_tol : float;  (** integrality tolerance *)
  sos_tol : float;  (** SOS1 violation tolerance *)
  log_progress : bool;
  interrupt : unit -> bool;
      (** polled once per node; returning true stops the search with the
          current incumbent (the hook portfolio racers use to wind a
          worker down once the shared incumbent is good enough). With
          [jobs > 1] it is polled concurrently from every worker domain
          and must be thread-safe *)
  backend : Backend.kind option;
      (** LP engine for node relaxations; [None] (the default) resolves
          {!Backend.default} at solve time *)
  warm_start : bool;
      (** when true (the default) every child node re-solves with the
          dual simplex from the parent's basis; false forces a cold
          from-scratch solve per node — only useful for measuring what
          basis reuse buys *)
  jobs : int;
      (** worker domains for the tree search, clamped to
          [1 .. ]{!Repro_engine.Jobs.max_jobs}. Defaults to
          {!Repro_engine.Jobs.default}[ ()] (the [REPRO_JOBS] environment
          variable, else 1). [1] = the serial search, bit-identical to
          the pre-parallel implementation; [> 1] = the same tree policy
          run by that many workers — same outcome and, within [gap_tol],
          same objective, but node ordering (and thus node counts) may
          differ *)
  deadline : Repro_resilience.Deadline.t option;
      (** unified wall/pivot/node budget shared by every worker and
          threaded into each node's simplex solve, so a stuck LP is cut
          off mid-pivot-loop rather than only between nodes. On expiry
          the search stops with [Feasible]/[No_incumbent] and a sound
          [best_bound] (budget-truncated subtrees stay folded into the
          open bound). [None] — the default — skips every check and
          keeps the search bit-identical to earlier builds. The caller
          can inspect {!Repro_resilience.Deadline.tripped} afterwards to
          learn which budget fired; {!Solver.solve_bounded} does exactly
          that *)
  cuts : Relaxation.config;
      (** the relaxation pipeline: each node runs solve → separate
          (Gomory mixed-integer + SOS1 disjunctive cuts into a shared
          deduplicating {!Cut_pool}) → tighten (node-level interval
          propagation, {!Presolve.tighten_intervals}) → branch
          (pseudo-cost/reliability selection). The default is
          {!Relaxation.disabled} — the historical one-LP-per-node loop,
          bit-identical to earlier builds — unless the [REPRO_CUTS]
          environment variable forces the gate ([1] on, [0] off).
          With [jobs > 1] the pool is shared: cuts are appended to each
          worker in pool order only, and basis snapshots carry their
          pool generation, so any job count proves the same optimum
          (node counts may differ; cut timing is scheduler-dependent) *)
}

val default_options : options

type outcome =
  | Optimal  (** incumbent proven optimal within [gap_tol] *)
  | Feasible  (** stopped by a limit with an incumbent in hand *)
  | No_incumbent  (** stopped by a limit before finding any solution *)
  | Infeasible
  | Unbounded

(** Parallel-tree instrumentation for one solve. For the serial path this
    is {!serial_tree_stats}. *)
type tree_stats = {
  workers : int;  (** worker domains used (1 = serial path) *)
  steals : int;  (** nodes taken from another worker's heap *)
  idle_s : float;
      (** total seconds workers spent blocked waiting for work, summed
          over workers *)
  lost : int;
      (** workers that died mid-search (injected faults / supervision).
          Their in-flight subtrees are unproven: the result degrades to
          [Feasible]/[No_incumbent] with the lost bounds still counted
          in [best_bound] *)
}

val serial_tree_stats : tree_stats

type result = {
  outcome : outcome;
  objective : float;  (** incumbent objective, in model direction *)
  best_bound : float;  (** proven bound on the optimum, model direction *)
  mip_gap : float;  (** relative primal–dual gap; 0 when proven optimal *)
  primal : float array option;  (** incumbent assignment when available *)
  nodes : int;
  simplex_iterations : int;
  lp_stats : Simplex.stats;
      (** LP-engine internals over the whole search: pivots,
          refactorizations, eta count, warm-start hits/misses (summed
          across workers when [jobs > 1]) *)
  elapsed : float;
  incumbent_trace : (float * float) list;
      (** (seconds since start, incumbent objective) at each improvement,
          oldest first — the raw series behind Fig. 3 style plots *)
  tree : tree_stats;
}

(** [solve model] runs branch-and-bound.

    [pool] supplies the worker domains when [options.jobs > 1]; when
    omitted a private {!Repro_engine.Pool} of [jobs] domains is spun up
    for the solve and shut down afterwards. The pool's await is
    help-first, so a pool smaller than [jobs] still completes — surplus
    workers just find the tree already exhausted. [pool] is ignored when
    [jobs = 1].

    [primal_heuristic] is called on each node's relaxation values and may
    return a trusted feasible objective value (model direction) with an
    optional full assignment — the mechanism the metaopt layer uses to turn
    relaxation demands into true-gap incumbents (§3.3 "solvers usually find
    a reasonable solution quickly"). Returned values are trusted: callers
    must only report objective values realized by some feasible point of
    the model. With [jobs > 1] it runs concurrently on worker domains and
    must be thread-safe.

    [on_incumbent] observes every incumbent improvement; with [jobs > 1]
    it is invoked under the search's incumbent lock (improvements are
    serialized and strictly monotone).

    [on_cut] observes every cut accepted into the shared pool (after
    deduplication) — the hook the property tests use to check that no
    separated cut ever cuts off a known integer-feasible witness. With
    [jobs > 1] it runs on worker domains and must be thread-safe. *)
val solve :
  ?pool:Repro_engine.Pool.t ->
  ?options:options ->
  ?primal_heuristic:(float array -> (float * float array option) option) ->
  ?on_cut:(Cut_pool.cut -> unit) ->
  ?on_incumbent:(float -> unit) ->
  Model.t ->
  result

val pp_outcome : Format.formatter -> outcome -> unit
val pp_result : Format.formatter -> result -> unit

(** ["workers=%d steals=%d idle=%.2fs"]. *)
val pp_tree_stats : Format.formatter -> tree_stats -> unit
