(** CPLEX LP-format writer, for debugging models and interoperating with
    external solvers (the format Gurobi, CPLEX, SCIP, HiGHS and lp_solve
    all read). SOS1 groups are emitted in the standard [SOS] section, so
    a metaopt model dumped here can be loaded into Gurobi directly —
    useful for cross-checking this repository's solver substrate. *)

val to_string : Model.t -> string

val to_channel : out_channel -> Model.t -> unit

val write : string -> Model.t -> unit
(** [write path model] writes the model to a file. *)

val of_string : string -> (Model.t, string) result
(** Parse LP-format text back into a model. Accepts the subset of the
    format this module's writer emits (sections, explicit or implicit
    coefficients, bound lines, Generals/Binaries, S1 SOS groups), plus
    the writer's [\ objective constant: c] comment so objectives
    round-trip exactly. Returns [Error msg] on malformed input. *)

val of_file : string -> (Model.t, string) result
(** [of_file path] reads and parses an LP-format file. *)
