(** Sparse revised simplex over the CSC store of a {!Standard_form.t}.

    Drop-in alternative to the dense {!Simplex} backend with the exact
    same semantics and lifecycle ([create], [solve_fresh], then
    [set_bounds] + [resolve] cycles) and the same {!Simplex.solution}
    result type, but pivots in time proportional to the column nonzeros
    via a factorized basis inverse ({!Basis}) instead of sweeping a dense
    tableau. Use through {!Backend} rather than directly. *)

type t

val create : Standard_form.t -> t

(** Change a structural variable's bounds in place; the basis and
    nonbasic statuses are kept coherent, basic values are recomputed
    lazily at the next solve. *)
val set_bounds : t -> int -> lb:float -> ub:float -> unit

val get_lb : t -> int -> float
val get_ub : t -> int -> float

(** Fresh two-phase primal solve, ignoring any previous basis. An
    expired [deadline] stops the solve with {!Simplex.Iteration_limit}
    (see the dense backend for the contract). *)
val solve_fresh :
  ?iter_limit:int ->
  ?deadline:Repro_resilience.Deadline.t ->
  t ->
  Simplex.solution

(** Warm-started solve: dual simplex from the current factorized basis
    when possible, falling back to {!solve_fresh}. *)
val resolve :
  ?iter_limit:int ->
  ?deadline:Repro_resilience.Deadline.t ->
  t ->
  Simplex.solution

(** Overwrite row [i]'s right-hand side in this state (the shared
    standard form is not modified); see {!Simplex.set_rhs}. *)
val set_rhs : t -> int -> float -> unit

val get_rhs : t -> int -> float

(** Re-solve after RHS-only edits: one ftran through the existing
    factorization when the old basis stays primal feasible, a
    dual-simplex run from that basis otherwise. Contract as in
    {!Simplex.resolve_rhs}. *)
val resolve_rhs :
  ?iter_limit:int ->
  ?deadline:Repro_resilience.Deadline.t ->
  t ->
  Simplex.solution

(** Batched multi-RHS re-solve: one residual pass plus one
    {!Basis.ftran_batch} over the whole block, peeling columns that
    lost primal feasibility into the scalar dual-simplex fallback (the
    block is rebuilt after each peel, since the fallback's pivots moved
    the basis). Bitwise identical to sequential {!resolve_rhs} calls;
    contract as in {!Simplex.resolve_rhs_batch}. *)
val resolve_rhs_batch :
  ?iter_limit:int ->
  ?deadline:Repro_resilience.Deadline.t ->
  t ->
  float array array ->
  Simplex.solution array

(** Total pivots performed over the lifetime of this state. *)
val total_iterations : t -> int

(** Append cut rows [terms . x <= rhs] (structural columns only),
    eta-file-preserving: each new row pushes one row eta — the exact
    update factor for the grown basis with the cut's slack basic in the
    new row — so the warm factorization survives the append. Layout
    contract as in {!Simplex.append_rows}. *)
val append_rows : t -> ((int * float) array * float) array -> unit

(** Current number of rows (original + appended cuts). *)
val num_rows : t -> int

(** Number of appended cut rows. *)
val num_cuts : t -> int

(** The column basic in row [i] and its current value. *)
val basic_var : t -> int -> int

val basic_value : t -> int -> float

(** Encoded status of any column (0 basic, 1 at-lower, 2 at-upper,
    3 free). *)
val col_stat : t -> int -> int

(** Nonbasic [(column, coefficient)] entries of tableau row [i] —
    one btran plus sparse column dots. Only meaningful after a solve. *)
val tableau_row : t -> int -> (int * float) list

(** Capture the current basis + statuses (see
    {!Simplex.basis_snapshot}). *)
val snapshot_basis : t -> Simplex.basis_snapshot

(** Install a snapshot and refactorize the basis inverse for it; false
    means the snapshot does not fit or its basis is singular, in which
    case the next solve starts from scratch. *)
val install_basis : t -> Simplex.basis_snapshot -> bool

(** Lifetime counters (iterations, refactorizations, current eta count,
    warm hits/misses). *)
val stats : t -> Simplex.stats

val pp_state : Format.formatter -> t -> unit
