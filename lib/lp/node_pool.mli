(** Concurrent best-bound node pool with work stealing.

    The queue discipline behind parallel {!Branch_bound}: one max-heap
    per worker under a single lock. A worker pushes children onto its
    own heap; [take] returns the globally best-bound top across all
    heaps, with the worker's own heap winning ties so local
    (warm-start-cheap) work is preferred when it is just as promising.
    Taking from another worker's heap counts as a steal and ships that
    node's parent basis with it.

    [take] blocks while other workers are still expanding nodes (their
    children may yet arrive) and returns [None] exactly when the search
    is over: all heaps empty with no node in flight, or {!stop} was
    called. Priorities are caller-defined floats, higher = better (the
    branch-and-bound passes bounds in its internal "prio" direction). *)

type 'a t

(** [create ~workers] makes a pool with one heap per worker
    (workers >= 1). *)
val create : workers:int -> 'a t

val workers : 'a t -> int

(** [push t ~worker ~prio x] adds a node to [worker]'s heap and wakes
    sleeping workers. *)
val push : 'a t -> worker:int -> prio:float -> 'a -> unit

(** [take t ~worker] returns [Some (prio, node, stolen)] — [stolen] is
    true when the node came from another worker's heap — or [None] when
    the search is exhausted or stopped. The caller {b must} call
    {!finish} after expanding the node (pushing any children first). *)
val take : 'a t -> worker:int -> (float * 'a * bool) option

(** [continue_with t ~worker ~prio] re-tags [worker]'s in-flight slot
    with a new priority instead of finishing it: the worker plunges from
    the taken node straight into one of its children without going
    through the heap. Keeps termination exact (the worker stays active)
    and {!best_open} correct (the in-hand child's bound is visible). *)
val continue_with : 'a t -> worker:int -> prio:float -> unit

(** Declare the node obtained by the last {!take} fully expanded. *)
val finish : 'a t -> worker:int -> unit

(** Make every current and future {!take} return [None] immediately. *)
val stop : 'a t -> unit

(** [reclaim t ~worker] declares [worker] dead mid-expansion (a fault or
    a watchdog decision). Its in-flight slot — if any — is released so
    the surviving workers can terminate, but the node it was expanding
    is gone: its priority is folded into {!best_open} {e permanently},
    keeping the reported bound sound for the subtree that was never
    proven. The dead worker's queued nodes stay stealable. *)
val reclaim : 'a t -> worker:int -> unit

(** Number of {!reclaim}ed workers. *)
val lost : 'a t -> int

(** Like {!finish}, but the node was {e not} fully expanded (its LP was
    cut off by a budget): the in-flight priority is folded into
    {!best_open} permanently so the bound stays sound. *)
val abandon : 'a t -> worker:int -> unit

(** Best priority among all open nodes — queued tops and in-flight nodes
    (a node being expanded is still unproven). [None] when none. *)
val best_open : 'a t -> float option

(** [(steals, idle_seconds)] so far: nodes taken from another worker's
    heap, and total time workers spent blocked waiting for work. *)
val stats : 'a t -> int * float
