type outcome = Reduced of t | Infeasible_model

and t = {
  model : Model.t;
  var_map : int array;
  fixed_values : float array;
  rows_dropped : int;
  vars_fixed : int;
  bounds_tightened : int;
}

let tol = 1e-9

exception Infeasible_found

let reduce original =
  let n = Model.num_vars original in
  let m = Model.num_constrs original in
  let lb = Array.init n (Model.var_lb original) in
  let ub = Array.init n (Model.var_ub original) in
  let kind = Array.init n (Model.var_kind original) in
  let fixed = Array.make n false in
  let fixed_value = Array.make n 0. in
  let dropped = Array.make m false in
  let bounds_tightened = ref 0 in
  let sos = Array.map Array.copy (Model.sos1_groups original) in
  let sos_dropped = Array.make (Array.length sos) false in
  let fix v value =
    if not fixed.(v) then begin
      if value < lb.(v) -. 1e-7 || value > ub.(v) +. 1e-7 then
        raise Infeasible_found;
      fixed.(v) <- true;
      fixed_value.(v) <- value;
      lb.(v) <- value;
      ub.(v) <- value
    end
  in
  let tighten_lb v x =
    if x > lb.(v) +. tol then begin
      lb.(v) <- x;
      incr bounds_tightened
    end
  in
  let tighten_ub v x =
    if x < ub.(v) -. tol then begin
      ub.(v) <- x;
      incr bounds_tightened
    end
  in
  let effective_row i =
    let terms =
      List.filter (fun (v, _) -> not fixed.(v))
        (Linexpr.terms (Model.constr_expr original i))
    in
    let shift =
      List.fold_left
        (fun acc (v, c) -> if fixed.(v) then acc +. (c *. fixed_value.(v)) else acc)
        0.
        (Linexpr.terms (Model.constr_expr original i))
    in
    (terms, Model.constr_rhs original i -. shift)
  in
  let lhs_interval terms =
    List.fold_left
      (fun (mn, mx) (v, c) ->
        if c > 0. then (mn +. (c *. lb.(v)), mx +. (c *. ub.(v)))
        else (mn +. (c *. ub.(v)), mx +. (c *. lb.(v))))
      (0., 0.) terms
  in
  (* force every variable of [terms] to the bound achieving the lhs
     minimum (used when a <=-row can only hold at its minimum) *)
  let force_to_min terms =
    List.iter
      (fun (v, c) -> fix v (if c > 0. then lb.(v) else ub.(v)))
      terms
  in
  let force_to_max terms =
    List.iter
      (fun (v, c) -> fix v (if c > 0. then ub.(v) else lb.(v)))
      terms
  in
  let result =
    try
      let changed = ref true in
      let iterations = ref 0 in
      while !changed && !iterations < 20 do
        changed := false;
        incr iterations;
        (* variable rules *)
        for v = 0 to n - 1 do
          (match kind.(v) with
          | Model.Binary | Model.Integer ->
              let l = Float.ceil (lb.(v) -. 1e-7)
              and u = Float.floor (ub.(v) +. 1e-7) in
              if l > lb.(v) +. tol || u < ub.(v) -. tol then begin
                lb.(v) <- Float.max lb.(v) l;
                ub.(v) <- Float.min ub.(v) u;
                incr bounds_tightened;
                changed := true
              end
          | Model.Continuous -> ());
          if lb.(v) > ub.(v) +. 1e-7 then raise Infeasible_found;
          if (not fixed.(v)) && ub.(v) -. lb.(v) <= tol then begin
            fix v lb.(v);
            changed := true
          end
        done;
        (* row rules *)
        for i = 0 to m - 1 do
          if not dropped.(i) then begin
            let terms, rhs = effective_row i in
            let sense = Model.constr_sense original i in
            match terms with
            | [] ->
                (match sense with
                | Model.Le -> if 0. > rhs +. 1e-7 then raise Infeasible_found
                | Model.Ge -> if 0. < rhs -. 1e-7 then raise Infeasible_found
                | Model.Eq ->
                    if Float.abs rhs > 1e-7 then raise Infeasible_found);
                dropped.(i) <- true;
                changed := true
            | [ (v, c) ] ->
                (match sense with
                | Model.Le ->
                    if c > 0. then tighten_ub v (rhs /. c)
                    else tighten_lb v (rhs /. c)
                | Model.Ge ->
                    if c > 0. then tighten_lb v (rhs /. c)
                    else tighten_ub v (rhs /. c)
                | Model.Eq -> fix v (rhs /. c));
                dropped.(i) <- true;
                changed := true
            | _ -> (
                let mn, mx = lhs_interval terms in
                match sense with
                | Model.Le ->
                    if mn > rhs +. 1e-7 then raise Infeasible_found
                    else if mx <= rhs +. tol then begin
                      dropped.(i) <- true;
                      changed := true
                    end
                    else if mn >= rhs -. tol && mn > neg_infinity then begin
                      (* forcing row: only its minimum satisfies it *)
                      force_to_min terms;
                      dropped.(i) <- true;
                      changed := true
                    end
                | Model.Ge ->
                    if mx < rhs -. 1e-7 then raise Infeasible_found
                    else if mn >= rhs -. tol then begin
                      dropped.(i) <- true;
                      changed := true
                    end
                    else if mx <= rhs +. tol && mx < infinity then begin
                      force_to_max terms;
                      dropped.(i) <- true;
                      changed := true
                    end
                | Model.Eq ->
                    if mn > rhs +. 1e-7 || mx < rhs -. 1e-7 then
                      raise Infeasible_found
                    else if mn >= rhs -. tol && mn > neg_infinity then begin
                      force_to_min terms;
                      dropped.(i) <- true;
                      changed := true
                    end
                    else if mx <= rhs +. tol && mx < infinity then begin
                      force_to_max terms;
                      dropped.(i) <- true;
                      changed := true
                    end)
          end
        done;
        (* SOS1 propagation *)
        Array.iteri
          (fun gi group ->
            if not sos_dropped.(gi) then begin
              let nonzero_fixed =
                Array.exists
                  (fun v -> fixed.(v) && Float.abs fixed_value.(v) > 1e-9)
                  group
              in
              if nonzero_fixed then begin
                Array.iter
                  (fun v ->
                    if not (fixed.(v) && Float.abs fixed_value.(v) > 1e-9) then
                      fix v 0.)
                  group;
                sos_dropped.(gi) <- true;
                changed := true
              end
              else begin
                let remaining =
                  Array.of_list
                    (List.filter (fun v -> not fixed.(v)) (Array.to_list group))
                in
                if Array.length remaining < Array.length group then changed := true;
                sos.(gi) <- remaining;
                if Array.length remaining <= 1 then begin
                  sos_dropped.(gi) <- true;
                  if Array.length remaining < Array.length group then
                    changed := true
                end
              end
            end)
          sos
      done;
      None
    with Infeasible_found -> Some Infeasible_model
  in
  match result with
  | Some infeasible -> infeasible
  | None ->
      (* assemble the reduced model *)
      let reduced = Model.create ~name:(Model.name original ^ "_presolved") () in
      let var_map = Array.make n (-1) in
      for v = 0 to n - 1 do
        if not fixed.(v) then
          var_map.(v) <-
            Model.add_var ~name:(Model.var_name original v) ~lb:lb.(v)
              ~ub:ub.(v) ~kind:kind.(v) reduced
      done;
      let rows_dropped = ref 0 in
      for i = 0 to m - 1 do
        if dropped.(i) then incr rows_dropped
        else begin
          let terms, rhs = effective_row i in
          let expr =
            Linexpr.of_terms (List.map (fun (v, c) -> (var_map.(v), c)) terms)
          in
          ignore
            (Model.add_constr
               ~name:(Model.constr_name original i)
               reduced expr
               (Model.constr_sense original i)
               rhs)
        end
      done;
      Array.iteri
        (fun gi group ->
          if (not sos_dropped.(gi)) && Array.length group >= 2 then
            Model.add_sos1 reduced
              (List.map (fun v -> var_map.(v)) (Array.to_list group)))
        sos;
      let dir, obj = Model.objective original in
      let obj_shift =
        List.fold_left
          (fun acc (v, c) -> if fixed.(v) then acc +. (c *. fixed_value.(v)) else acc)
          (Linexpr.const_part obj) (Linexpr.terms obj)
      in
      let obj' =
        Linexpr.of_terms ~constant:obj_shift
          (List.filter_map
             (fun (v, c) -> if fixed.(v) then None else Some (var_map.(v), c))
             (Linexpr.terms obj))
      in
      Model.set_objective reduced dir obj';
      Reduced
        {
          model = reduced;
          var_map;
          fixed_values = fixed_value;
          rows_dropped = !rows_dropped;
          vars_fixed =
            Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 fixed;
          bounds_tightened = !bounds_tightened;
        }

(* ------------------------------------------------------------------ *)
(* Reusable in-place interval propagation                              *)
(* ------------------------------------------------------------------ *)

type row = { terms : (int * float) array; sense : Model.sense; rhs : float }

(* Full row-implied bound tightening over [lb]/[ub], edited in place:
   for each row and each of its variables, the residual activity of the
   other variables bounds what this one can contribute. Unlike [reduce]
   (a build-time Model -> Model rewrite), this pass is representation-
   agnostic and cheap enough to run per branch-and-bound node — the
   "tighten" stage of the relaxation pipeline — and to sharpen the
   intervals big-M derivation consumes. Infinite contributions are
   counted, not summed, so a single unbounded variable still receives
   the bound implied by its (finite) co-variables. *)
let tighten_intervals ?(max_rounds = 4) ~rows ~integer ~lb ~ub () =
  let tightened = ref 0 in
  try
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < max_rounds do
      changed := false;
      incr rounds;
      Array.iter
        (fun { terms; sense; rhs } ->
          (* activity interval, with infinities counted separately so a
             single infinite term can be excluded exactly *)
          let mn_fin = ref 0. and mx_fin = ref 0. in
          let mn_inf = ref 0 and mx_inf = ref 0 in
          Array.iter
            (fun (v, c) ->
              let lo_c = if c > 0. then c *. lb.(v) else c *. ub.(v) in
              let hi_c = if c > 0. then c *. ub.(v) else c *. lb.(v) in
              if lo_c = neg_infinity then incr mn_inf else mn_fin := !mn_fin +. lo_c;
              if hi_c = infinity then incr mx_inf else mx_fin := !mx_fin +. hi_c)
            terms;
          let mn = if !mn_inf > 0 then neg_infinity else !mn_fin in
          let mx = if !mx_inf > 0 then infinity else !mx_fin in
          (match sense with
          | Model.Le -> if mn > rhs +. 1e-7 then raise Infeasible_found
          | Model.Ge -> if mx < rhs -. 1e-7 then raise Infeasible_found
          | Model.Eq ->
              if mn > rhs +. 1e-7 || mx < rhs -. 1e-7 then
                raise Infeasible_found);
          Array.iter
            (fun (v, c) ->
              let lo_c = if c > 0. then c *. lb.(v) else c *. ub.(v) in
              let hi_c = if c > 0. then c *. ub.(v) else c *. lb.(v) in
              (* residual activity of the row without v *)
              let mn_wo =
                if lo_c = neg_infinity then
                  if !mn_inf = 1 then !mn_fin else neg_infinity
                else if !mn_inf > 0 then neg_infinity
                else !mn_fin -. lo_c
              in
              let mx_wo =
                if hi_c = infinity then
                  if !mx_inf = 1 then !mx_fin else infinity
                else if !mx_inf > 0 then infinity
                else !mx_fin -. hi_c
              in
              let apply_ub x =
                let x =
                  if integer.(v) then Float.floor (x +. 1e-7) else x
                in
                if x < ub.(v) -. tol then begin
                  ub.(v) <- x;
                  incr tightened;
                  changed := true;
                  if lb.(v) > ub.(v) +. 1e-7 then raise Infeasible_found
                end
              in
              let apply_lb x =
                let x = if integer.(v) then Float.ceil (x -. 1e-7) else x in
                if x > lb.(v) +. tol then begin
                  lb.(v) <- x;
                  incr tightened;
                  changed := true;
                  if lb.(v) > ub.(v) +. 1e-7 then raise Infeasible_found
                end
              in
              (* c*x_v <= rhs - mn_wo from Le/Eq rows *)
              (match sense with
              | Model.Le | Model.Eq ->
                  if mn_wo > neg_infinity then begin
                    let bound = (rhs -. mn_wo) /. c in
                    if c > 0. then apply_ub bound else apply_lb bound
                  end
              | Model.Ge -> ());
              (* c*x_v >= rhs - mx_wo from Ge/Eq rows *)
              match sense with
              | Model.Ge | Model.Eq ->
                  if mx_wo < infinity then begin
                    let bound = (rhs -. mx_wo) /. c in
                    if c > 0. then apply_lb bound else apply_ub bound
                  end
              | Model.Le -> ())
            terms)
        rows
    done;
    `Tightened !tightened
  with Infeasible_found -> `Infeasible

let model_rows model =
  Array.init (Model.num_constrs model) (fun i ->
      {
        terms = Array.of_list (Linexpr.terms (Model.constr_expr model i));
        sense = Model.constr_sense model i;
        rhs = Model.constr_rhs model i;
      })

let var_intervals model =
  match reduce model with
  | Infeasible_model -> None
  | Reduced red -> (
      (* sharpen the reduced model's boxes with the full row-implied
         propagation before mapping back: [reduce] only tightens via
         singleton rows, which leaves big-M intervals looser than the
         rows actually allow *)
      let nr = Model.num_vars red.model in
      let lb = Array.init nr (Model.var_lb red.model) in
      let ub = Array.init nr (Model.var_ub red.model) in
      let integer =
        Array.init nr (fun v ->
            match Model.var_kind red.model v with
            | Model.Binary | Model.Integer -> true
            | Model.Continuous -> false)
      in
      match
        tighten_intervals ~rows:(model_rows red.model) ~integer ~lb ~ub ()
      with
      | `Infeasible -> None
      | `Tightened _ ->
          Some
            (Array.mapi
               (fun v mapped ->
                 if mapped >= 0 then (lb.(mapped), ub.(mapped))
                 else (red.fixed_values.(v), red.fixed_values.(v)))
               red.var_map))

let restore red reduced_primal =
  Array.mapi
    (fun v mapped ->
      if mapped >= 0 then reduced_primal.(mapped) else red.fixed_values.(v))
    red.var_map
