(* Sparse revised simplex over the CSC column store built by
   Standard_form. Mirrors the dense tableau backend (Simplex) exactly:
   same column layout ([0,n) structural, [n,n+m) slacks, [n+m,n+2m)
   artificials), same two-phase primal with Dantzig pricing + Bland
   fallback, same dual-simplex warm restart with solve_fresh fallback —
   but instead of carrying B^-1 [A I I] as a dense m x nt tableau it keeps
   a factorized basis inverse (Basis eta file) and reconstructs whatever
   the current pivot needs: the pricing row via one btran + sparse column
   dots, the entering column via one ftran. A pivot therefore costs
   O(nnz) instead of O(m * nt). *)

type vstat = Basic | At_lower | At_upper | Free_nb

type t = {
  sf : Standard_form.t;
  n : int;
  mutable m : int; (* sf.m + appended cut rows *)
  mutable nt : int;
  mutable b : float array;
      (* per-state right-hand side, seeded from sf.b at create; scenario
         sweeps edit it in place via set_rhs while sf stays shared
         read-only across domains *)
  cols : Sparse_matrix.t;
  bas : Basis.t;
  mutable d : float array; (* reduced costs, repriced every iteration *)
  mutable cost : float array; (* current phase cost vector, length nt *)
  mutable basis : int array; (* length m: column basic in each row *)
  mutable stat : vstat array; (* length nt *)
  mutable xb : float array; (* length m: values of basic variables *)
  mutable lb : float array; (* length nt *)
  mutable ub : float array; (* length nt *)
  mutable y : float array; (* btran workspace (duals / dual-step rho) *)
  mutable w : float array; (* ftran workspace (entering column) *)
  (* appended cut rows (all sense <=, structural terms only); row
     [sf.m + k] is cuts.(k), its rhs lives in b.(sf.m + k). cut_cols.(j)
     is the transposed view: the (cut row, coef) entries of structural
     column [j], folded into every column walk alongside the shared CSC
     store *)
  mutable cuts : (int * float) array array;
  cut_cols : (int * float) list array; (* length n, newest first *)
  mutable solved_once : bool;
  mutable phase2_opt : bool;
      (* last extract left a phase-2 optimal basis and nothing (bounds,
         basis install) invalidated it since — the precondition for the
         ftran-only RHS re-solve path *)
  mutable iters_total : int;
  mutable warm_hits : int;
  mutable warm_misses : int;
  mutable rhs_ftran : int;
  mutable rhs_dual : int;
  mutable rhs_batch : int;
  mutable rhs_batch_cols : int;
  mutable rhs_peeled : int;
  (* installed by solve_fresh/resolve for the duration of one solve call *)
  mutable deadline : Repro_resilience.Deadline.t option;
}

let feas_tol = 1e-7
let dual_tol = 1e-7
let pivot_tol = 1e-9
let refactor_interval = 100

(* Inherited eta chains: a warm restart that begins with this many
   update etas since the last reinversion reinverts up front instead of
   dragging the parent chain through every ftran/btran of the dual run.
   Much lower than [refactor_interval] — a B&B node accumulates the
   chain across many short resolves that individually never trip the
   in-loop check (the warm-start time regression in BENCH_lp). *)
let warm_refactor_threshold = 24

let art t i = t.n + t.m + i
let slack t i = t.n + i

let create (sf : Standard_form.t) =
  let n = sf.n and m = sf.m in
  let nt = n + m + m in
  let lb = Array.make nt 0. and ub = Array.make nt infinity in
  Array.blit sf.lb 0 lb 0 n;
  Array.blit sf.ub 0 ub 0 n;
  for i = 0 to m - 1 do
    (match sf.senses.(i) with
    | Model.Le ->
        lb.(n + i) <- 0.;
        ub.(n + i) <- infinity
    | Model.Ge ->
        lb.(n + i) <- neg_infinity;
        ub.(n + i) <- 0.
    | Model.Eq ->
        lb.(n + i) <- 0.;
        ub.(n + i) <- 0.);
    lb.(n + m + i) <- 0.;
    ub.(n + m + i) <- 0.
  done;
  {
    sf;
    n;
    m;
    nt;
    b = Array.copy sf.b;
    cols = sf.cols;
    bas = Basis.create ~m;
    d = Array.make nt 0.;
    cost = Array.make nt 0.;
    basis = Array.make m (-1);
    stat = Array.make nt At_lower;
    xb = Array.make m 0.;
    lb;
    ub;
    y = Array.make m 0.;
    w = Array.make m 0.;
    cuts = [||];
    cut_cols = Array.make n [];
    solved_once = false;
    phase2_opt = false;
    iters_total = 0;
    warm_hits = 0;
    warm_misses = 0;
    rhs_ftran = 0;
    rhs_dual = 0;
    rhs_batch = 0;
    rhs_batch_cols = 0;
    rhs_peeled = 0;
    deadline = None;
  }

let get_lb t j = t.lb.(j)
let get_ub t j = t.ub.(j)

let nb_value t j =
  match t.stat.(j) with
  | At_lower -> t.lb.(j)
  | At_upper -> t.ub.(j)
  | Free_nb -> 0.
  | Basic -> invalid_arg "nb_value: basic"

(* Iterate the nonzeros of column [j] of the full [A I I] matrix,
   appended cut rows included. *)
let iter_col t j f =
  if j < t.n then begin
    Sparse_matrix.iter_col t.cols j f;
    List.iter (fun (i, v) -> f i v) t.cut_cols.(j)
  end
  else if j < t.n + t.m then f (j - t.n) 1.
  else f (j - t.n - t.m) 1.

(* y . A_j for a structural column, cut rows included. *)
let col_dot t j (y : float array) =
  (* cut-free states (every LP outside branch-and-bound) stay on the
     allocation-free CSC dot product; the boxed accumulator below sits
     in the pricing loop and shows up as minor-GC churn otherwise *)
  match t.cut_cols.(j) with
  | [] -> Sparse_matrix.dot_col t.cols j y
  | cc ->
      let acc = ref (Sparse_matrix.dot_col t.cols j y) in
      List.iter (fun (i, v) -> acc := !acc +. (v *. y.(i))) cc;
      !acc

let set_bounds t j ~lb ~ub =
  if j < 0 || j >= t.n then invalid_arg "Sparse_simplex.set_bounds";
  if lb > ub then invalid_arg "Sparse_simplex.set_bounds: lb > ub";
  t.phase2_opt <- false;
  t.lb.(j) <- lb;
  t.ub.(j) <- ub;
  (* Re-anchor a nonbasic variable on a bound that still exists. Unlike
     the dense backend there is no incremental xb patch: every solve
     entry point recomputes basic values from scratch (refresh_xb), so
     only the status needs to stay coherent here. *)
  if t.stat.(j) <> Basic && t.solved_once then
    match t.stat.(j) with
    | At_lower when lb = neg_infinity ->
        t.stat.(j) <- (if ub < infinity then At_upper else Free_nb)
    | At_upper when ub = infinity ->
        t.stat.(j) <- (if lb > neg_infinity then At_lower else Free_nb)
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Invariant refresh: pricing and basic values                         *)
(* ------------------------------------------------------------------ *)

(* Recompute all reduced costs: y = B^-T cost_B (one btran), then
   d_j = cost_j - y . A_j per column (sparse dots; unit columns for
   slacks and artificials). *)
let price t =
  let y = t.y in
  for i = 0 to t.m - 1 do
    y.(i) <- t.cost.(t.basis.(i))
  done;
  Basis.btran t.bas y;
  for j = 0 to t.n - 1 do
    if t.stat.(j) = Basic then t.d.(j) <- 0.
    else t.d.(j) <- t.cost.(j) -. col_dot t j y
  done;
  for i = 0 to t.m - 1 do
    let s = slack t i and a = art t i in
    t.d.(s) <- (if t.stat.(s) = Basic then 0. else t.cost.(s) -. y.(i));
    t.d.(a) <- (if t.stat.(a) = Basic then 0. else t.cost.(a) -. y.(i))
  done

(* w := B^-1 A_j (one ftran of the entering column). *)
let ftran_col t j =
  Array.fill t.w 0 t.m 0.;
  iter_col t j (fun i v -> t.w.(i) <- t.w.(i) +. v);
  Basis.ftran t.bas t.w

(* Recompute basic values: xb = B^-1 (b - A_N x_N). *)
let refresh_xb t =
  let r = Array.copy t.b in
  for j = 0 to t.nt - 1 do
    if t.stat.(j) <> Basic then begin
      let v = nb_value t j in
      if v <> 0. then iter_col t j (fun i a -> r.(i) <- r.(i) -. (a *. v))
    end
  done;
  Basis.ftran t.bas r;
  Array.blit r 0 t.xb 0 t.m

(* Rebuild a short eta file from the current basis columns; false means
   the basis went numerically singular. Always refreshes xb on success
   because refactorization permutes the basis-to-row assignment. *)
let refactorize t =
  let ok = Basis.refactorize t.bas ~col:(iter_col t) t.basis in
  if ok then refresh_xb t;
  ok

let refactor_due t =
  (* the base file from reinversion is O(m) etas; only the *updates*
     appended since then measure staleness *)
  Basis.update_count t.bas >= refactor_interval

(* ------------------------------------------------------------------ *)
(* Primal simplex                                                      *)
(* ------------------------------------------------------------------ *)

type step_result = Step_ok | Step_optimal | Step_unbounded

exception Done of Simplex.status
exception Fallback

let primal_step t ~bland ~degen =
  price t;
  (* entering variable *)
  let q = ref (-1) in
  let best = ref dual_tol in
  let consider j score =
    if bland then begin
      if score > dual_tol && !q = -1 then q := j
    end
    else if score > !best then begin
      best := score;
      q := j
    end
  in
  for j = 0 to t.nt - 1 do
    match t.stat.(j) with
    | Basic -> ()
    | At_lower -> if t.lb.(j) < t.ub.(j) then consider j (-.t.d.(j))
    | At_upper -> if t.lb.(j) < t.ub.(j) then consider j t.d.(j)
    | Free_nb -> consider j (Float.abs t.d.(j))
  done;
  if !q = -1 then Step_optimal
  else begin
    let q = !q in
    let delta =
      match t.stat.(q) with
      | At_lower -> 1.
      | At_upper -> -1.
      | Free_nb -> if t.d.(q) < 0. then 1. else -1.
      | Basic -> assert false
    in
    ftran_col t q;
    let w = t.w in
    (* ratio test over the ftran'd entering column *)
    let t_self =
      match t.stat.(q) with
      | Free_nb -> infinity
      | _ -> t.ub.(q) -. t.lb.(q)
    in
    let best_t = ref t_self in
    let best_r = ref (-1) in
    let best_piv = ref 0. in
    for i = 0 to t.m - 1 do
      let a = Array.unsafe_get w i in
      let rate = -.delta *. a in
      if rate < -.pivot_tol then begin
        let lo = t.lb.(t.basis.(i)) in
        if lo > neg_infinity then begin
          let lim = (t.xb.(i) -. lo) /. -.rate in
          let lim = if lim < 0. then 0. else lim in
          if
            lim < !best_t -. feas_tol
            || (lim < !best_t +. feas_tol
               && (Float.abs a > Float.abs !best_piv
                  || (bland && !best_r >= 0 && t.basis.(i) < t.basis.(!best_r))))
          then begin
            best_t := lim;
            best_r := i;
            best_piv := a
          end
        end
      end
      else if rate > pivot_tol then begin
        let hi = t.ub.(t.basis.(i)) in
        if hi < infinity then begin
          let lim = (hi -. t.xb.(i)) /. rate in
          let lim = if lim < 0. then 0. else lim in
          if
            lim < !best_t -. feas_tol
            || (lim < !best_t +. feas_tol
               && (Float.abs a > Float.abs !best_piv
                  || (bland && !best_r >= 0 && t.basis.(i) < t.basis.(!best_r))))
          then begin
            best_t := lim;
            best_r := i;
            best_piv := a
          end
        end
      end
    done;
    if !best_t = infinity then Step_unbounded
    else begin
      let step = Float.max 0. !best_t in
      degen := step <= feas_tol;
      if step > 0. then
        for i = 0 to t.m - 1 do
          let a = Array.unsafe_get w i in
          if a <> 0. then t.xb.(i) <- t.xb.(i) -. (delta *. step *. a)
        done;
      if !best_r = -1 then begin
        (* bound flip *)
        t.stat.(q) <- (if t.stat.(q) = At_lower then At_upper else At_lower);
        Step_ok
      end
      else begin
        let r = !best_r in
        let leaving = t.basis.(r) in
        let rate = -.delta *. w.(r) in
        t.stat.(leaving) <- (if rate < 0. then At_lower else At_upper);
        if t.lb.(leaving) = t.ub.(leaving) then t.stat.(leaving) <- At_lower;
        let xq_new =
          (if t.stat.(q) = Free_nb then 0. else nb_value t q) +. (delta *. step)
        in
        Basis.push t.bas ~r w;
        t.stat.(q) <- Basic;
        t.basis.(r) <- q;
        t.xb.(r) <- xq_new;
        Step_ok
      end
    end
  end

(* One pivot's worth of budget accounting. Costs one Atomic.fetch_and_add
   plus a couple of loads when a deadline is armed, nothing when it is
   not, so jobs=1 runs without a deadline stay bit-identical. *)
let budget_tick t ~stop =
  if Repro_resilience.Faults.armed () then
    Repro_resilience.Faults.stall "pivot_stall" ~seconds:0.05;
  match t.deadline with
  | None -> ()
  | Some d ->
      Repro_resilience.Deadline.charge_pivots d 1;
      if Repro_resilience.Deadline.expired d then stop ()

let run_primal t ~iter_limit =
  let iters = ref 0 in
  let degen_run = ref 0 in
  let bland_threshold = 200 + t.m in
  try
    while true do
      if !iters >= iter_limit then raise (Done Simplex.Iteration_limit);
      let bland = !degen_run > bland_threshold in
      let degen = ref false in
      (match primal_step t ~bland ~degen with
      | Step_optimal -> raise (Done Simplex.Optimal)
      | Step_unbounded -> raise (Done Simplex.Unbounded)
      | Step_ok -> ());
      if !degen then incr degen_run else degen_run := 0;
      incr iters;
      t.iters_total <- t.iters_total + 1;
      budget_tick t ~stop:(fun () -> raise (Done Simplex.Iteration_limit));
      if refactor_due t then begin
        if not (refactorize t) then raise (Done Simplex.Iteration_limit)
      end
      else if !iters mod 2000 = 0 then refresh_xb t
    done;
    assert false
  with Done s -> (s, !iters)

(* ------------------------------------------------------------------ *)
(* Phase 1 / phase 2 orchestration                                     *)
(* ------------------------------------------------------------------ *)

let start_basis t =
  for j = 0 to t.n - 1 do
    t.stat.(j) <-
      (if t.lb.(j) > neg_infinity then At_lower
       else if t.ub.(j) < infinity then At_upper
       else Free_nb)
  done;
  (* residual with all slacks + artificials nonbasic at 0 *)
  let r = Array.copy t.b in
  for j = 0 to t.n - 1 do
    let v = nb_value t j in
    if v <> 0. then iter_col t j (fun i a -> r.(i) <- r.(i) -. (a *. v))
  done;
  Array.fill t.cost 0 t.nt 0.;
  (* the starting basis is all slacks / artificials, i.e. exactly the
     identity, so the factorization is the empty eta file *)
  Basis.reset t.bas;
  for i = 0 to t.m - 1 do
    let s = slack t i and a = art t i in
    t.lb.(a) <- 0.;
    t.ub.(a) <- 0.;
    if r.(i) >= t.lb.(s) -. feas_tol && r.(i) <= t.ub.(s) +. feas_tol then begin
      t.basis.(i) <- s;
      t.stat.(s) <- Basic;
      t.stat.(a) <- At_lower;
      t.xb.(i) <- r.(i)
    end
    else begin
      t.stat.(s) <- At_lower;
      if t.lb.(s) = neg_infinity then t.stat.(s) <- At_upper;
      t.basis.(i) <- a;
      t.stat.(a) <- Basic;
      t.xb.(i) <- r.(i);
      if r.(i) > 0. then begin
        t.lb.(a) <- 0.;
        t.ub.(a) <- infinity;
        t.cost.(a) <- 1.
      end
      else begin
        t.lb.(a) <- neg_infinity;
        t.ub.(a) <- 0.;
        t.cost.(a) <- -1.
      end
    end
  done;
  price t

let phase1_objective t =
  let acc = ref 0. in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if b >= t.n + t.m then acc := !acc +. Float.abs t.xb.(i)
  done;
  !acc

let enter_phase2 t =
  for i = 0 to t.m - 1 do
    let a = art t i in
    t.lb.(a) <- 0.;
    t.ub.(a) <- 0.;
    if t.stat.(a) <> Basic then t.stat.(a) <- At_lower
  done;
  Array.fill t.cost 0 t.nt 0.;
  Array.blit t.sf.c 0 t.cost 0 t.n;
  price t

(* ------------------------------------------------------------------ *)
(* Solution extraction                                                 *)
(* ------------------------------------------------------------------ *)

let primal_values t =
  let x = Array.make t.n 0. in
  for j = 0 to t.n - 1 do
    if t.stat.(j) <> Basic then x.(j) <- nb_value t j
  done;
  for i = 0 to t.m - 1 do
    if t.basis.(i) < t.n then x.(t.basis.(i)) <- t.xb.(i)
  done;
  x

let dual_values t =
  let y = Array.make t.m 0. in
  for i = 0 to t.m - 1 do
    y.(i) <- t.cost.(t.basis.(i))
  done;
  Basis.btran t.bas y;
  y

let extract t status iterations : Simplex.solution =
  (* every extract site with [Optimal] is past phase 2, so this flag is
     exactly "the state holds a phase-2 optimal basis" *)
  t.phase2_opt <- status = Simplex.Optimal;
  let sgn = if t.sf.flip_sign then -1. else 1. in
  match (status : Simplex.status) with
  | Optimal | Iteration_limit ->
      let primal = primal_values t in
      let obj = ref t.sf.obj_const in
      for j = 0 to t.n - 1 do
        obj := !obj +. (t.sf.c.(j) *. primal.(j))
      done;
      let duals = dual_values t in
      let reduced = Array.sub t.d 0 t.n in
      if t.sf.flip_sign then begin
        Array.iteri (fun i v -> duals.(i) <- -.v) duals;
        Array.iteri (fun i v -> reduced.(i) <- -.v) reduced
      end;
      {
        status;
        objective = sgn *. !obj;
        primal;
        duals;
        reduced_costs = reduced;
        iterations;
      }
  | Infeasible ->
      {
        status;
        objective = Float.nan;
        primal = Array.make t.n 0.;
        duals = Array.make t.m 0.;
        reduced_costs = Array.make t.n 0.;
        iterations;
      }
  | Unbounded ->
      {
        status;
        objective = (if t.sf.flip_sign then infinity else neg_infinity);
        primal = Array.make t.n 0.;
        duals = Array.make t.m 0.;
        reduced_costs = Array.make t.n 0.;
        iterations;
      }

let default_iter_limit t = 20_000 + (40 * (t.m + t.n))

let solve_fresh ?iter_limit ?deadline t =
  t.deadline <- deadline;
  let iter_limit =
    match iter_limit with
    | Some l -> l
    | None -> default_iter_limit t
  in
  start_basis t;
  let s1, it1 = run_primal t ~iter_limit in
  t.solved_once <- true;
  match s1 with
  | Simplex.Iteration_limit -> extract t Simplex.Iteration_limit it1
  | Simplex.Unbounded ->
      (* phase 1 objective is bounded below by 0; treat as numerical noise *)
      extract t Simplex.Iteration_limit it1
  | Simplex.Infeasible -> assert false
  | Simplex.Optimal ->
      if phase1_objective t > 1e-6 then extract t Simplex.Infeasible it1
      else begin
        enter_phase2 t;
        refresh_xb t;
        let s2, it2 = run_primal t ~iter_limit in
        extract t s2 (it1 + it2)
      end

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

let normalize_nonbasic t =
  for j = 0 to t.nt - 1 do
    match t.stat.(j) with
    | Basic -> ()
    | _ ->
        let lo = t.lb.(j) and hi = t.ub.(j) in
        if lo = hi then t.stat.(j) <- At_lower
        else if t.d.(j) > dual_tol then
          if lo > neg_infinity then t.stat.(j) <- At_lower else raise Fallback
        else if t.d.(j) < -.dual_tol then
          if hi < infinity then t.stat.(j) <- At_upper else raise Fallback
        else if
          (t.stat.(j) = At_lower && lo = neg_infinity)
          || (t.stat.(j) = At_upper && hi = infinity)
          || t.stat.(j) = Free_nb
        then
          t.stat.(j) <-
            (if lo > neg_infinity then At_lower
             else if hi < infinity then At_upper
             else Free_nb)
  done

let dual_step t =
  price t;
  (* leaving row: largest primal infeasibility *)
  let r = ref (-1) in
  let worst = ref feas_tol in
  let need_increase = ref false in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    let below = t.lb.(b) -. t.xb.(i) and above = t.xb.(i) -. t.ub.(b) in
    if below > !worst then begin
      worst := below;
      r := i;
      need_increase := true
    end;
    if above > !worst then begin
      worst := above;
      r := i;
      need_increase := false
    end
  done;
  if !r = -1 then Step_optimal
  else begin
    let r = !r in
    (* rho = B^-T e_r; alpha_j = rho . A_j is row r of B^-1 [A I I] *)
    let rho = t.y in
    Array.fill rho 0 t.m 0.;
    rho.(r) <- 1.;
    Basis.btran t.bas rho;
    let alpha j =
      if j < t.n then col_dot t j rho
      else if j < t.n + t.m then rho.(j - t.n)
      else rho.(j - t.n - t.m)
    in
    (* entering: min |d_j| / |alpha_j| among sign-eligible columns *)
    let q = ref (-1) in
    let best_ratio = ref infinity in
    let best_a = ref 0. in
    for j = 0 to t.nt - 1 do
      match t.stat.(j) with
      | Basic -> ()
      | _ when t.lb.(j) = t.ub.(j) -> ()
      | st ->
          let a = alpha j in
          if Float.abs a > pivot_tol then begin
            let dirs =
              match st with
              | At_lower -> [ 1. ]
              | At_upper -> [ -1. ]
              | Free_nb -> [ 1.; -1. ]
              | Basic -> []
            in
            List.iter
              (fun delta ->
                let rate = -.delta *. a in
                let eligible = if !need_increase then rate > 0. else rate < 0. in
                if eligible then begin
                  let ratio = Float.abs t.d.(j) /. Float.abs a in
                  if
                    ratio < !best_ratio -. 1e-12
                    || (ratio < !best_ratio +. 1e-12
                       && Float.abs a > Float.abs !best_a)
                  then begin
                    best_ratio := ratio;
                    best_a := a;
                    q := j
                  end
                end)
              dirs
          end
    done;
    if !q = -1 then Step_unbounded (* dual unbounded = primal infeasible *)
    else begin
      let q = !q in
      let target =
        if !need_increase then t.lb.(t.basis.(r)) else t.ub.(t.basis.(r))
      in
      ftran_col t q;
      let w = t.w in
      let a_rq = w.(r) in
      (* the btran-priced alpha and the ftran pivot can disagree on a
         drifted eta file; a pivot Basis.push would reject means the
         factorization is stale — fall back to a fresh solve *)
      if Float.abs a_rq < 1e-12 then raise Fallback;
      let delta_step = (t.xb.(r) -. target) /. a_rq in
      let xq0 = if t.stat.(q) = Free_nb then 0. else nb_value t q in
      for i = 0 to t.m - 1 do
        if i <> r then begin
          let a = Array.unsafe_get w i in
          if a <> 0. then t.xb.(i) <- t.xb.(i) -. (a *. delta_step)
        end
      done;
      let leaving = t.basis.(r) in
      t.stat.(leaving) <- (if !need_increase then At_lower else At_upper);
      if t.lb.(leaving) = t.ub.(leaving) then t.stat.(leaving) <- At_lower;
      Basis.push t.bas ~r w;
      t.stat.(q) <- Basic;
      t.basis.(r) <- q;
      t.xb.(r) <- xq0 +. delta_step;
      Step_ok
    end
  end

let run_dual t ~iter_limit =
  let iters = ref 0 in
  try
    while true do
      if !iters >= iter_limit then raise Fallback;
      (match dual_step t with
      | Step_optimal -> raise (Done Simplex.Optimal)
      | Step_unbounded -> raise (Done Simplex.Infeasible)
      | Step_ok -> ());
      incr iters;
      t.iters_total <- t.iters_total + 1;
      (* stop with Iteration_limit, not [Fallback]: a from-scratch
         re-solve would keep burning an already-exhausted budget *)
      budget_tick t ~stop:(fun () -> raise (Done Simplex.Iteration_limit));
      if refactor_due t then begin
        if not (refactorize t) then raise Fallback
      end
      else if !iters mod 2000 = 0 then refresh_xb t
    done;
    assert false
  with Done s -> (s, !iters)

let resolve ?iter_limit ?deadline t =
  t.deadline <- deadline;
  if not t.solved_once then solve_fresh ?iter_limit ?deadline t
  else begin
    let iter_limit =
      match iter_limit with
      | Some l -> l
      | None -> default_iter_limit t
    in
    match
      (try
         (* Same caveat as the dense backend: the previous solve may have
            stopped inside phase 1, so reload phase-2 costs and re-fix the
            artificials before warm-starting. *)
         enter_phase2 t;
         normalize_nonbasic t;
         (* refactorize refreshes xb itself on success *)
         if Basis.update_count t.bas >= warm_refactor_threshold then begin
           if not (refactorize t) then raise Fallback
         end
         else refresh_xb t;
         let s, it = run_dual t ~iter_limit in
         Some (s, it)
       with Fallback -> None)
    with
    | Some (Simplex.Optimal, it) ->
        t.warm_hits <- t.warm_hits + 1;
        (* repriced at the top of the next primal step, so a plain polish
           run suffices to clean up any drifted reduced costs *)
        let s2, it2 = run_primal t ~iter_limit in
        extract t
          (if s2 = Simplex.Optimal then Simplex.Optimal else s2)
          (it + it2)
    | Some (Simplex.Infeasible, it) ->
        t.warm_hits <- t.warm_hits + 1;
        extract t Simplex.Infeasible it
    | Some ((Simplex.Unbounded | Simplex.Iteration_limit), it) ->
        t.warm_hits <- t.warm_hits + 1;
        extract t Simplex.Iteration_limit it
    | None ->
        t.warm_misses <- t.warm_misses + 1;
        solve_fresh ~iter_limit ?deadline t
  end

(* ------------------------------------------------------------------ *)
(* Appended cut rows                                                   *)
(* ------------------------------------------------------------------ *)

(* Same remapping contract as the dense backend (structural and slack
   columns keep their indices, artificials shift, each cut's fresh slack
   starts basic in its own row) — but eta-file-preserving: instead of
   refactorizing, each appended row pushes one ROW eta whose off-pivot
   entries are the cut's coefficients on the variables basic in the
   existing rows. That is the exact update factor for the grown basis,
   so the warm factorization survives the append and the next [resolve]
   restores primal feasibility by dual simplex from it. *)
let append_rows t new_rows =
  let k = Array.length new_rows in
  if k > 0 then begin
    let n = t.n and m0 = t.m in
    let m1 = m0 + k in
    let nt1 = n + m1 + m1 in
    let shift j = if j >= n + m0 then j + k else j in
    let b = Array.make m1 0. in
    Array.blit t.b 0 b 0 m0;
    Array.iteri (fun i (_, rhs) -> b.(m0 + i) <- rhs) new_rows;
    t.b <- b;
    let lb = Array.make nt1 0. and ub = Array.make nt1 0. in
    let cost = Array.make nt1 0. and d = Array.make nt1 0. in
    let stat = Array.make nt1 At_lower in
    for j = 0 to t.nt - 1 do
      let j' = shift j in
      lb.(j') <- t.lb.(j);
      ub.(j') <- t.ub.(j);
      cost.(j') <- t.cost.(j);
      d.(j') <- t.d.(j);
      stat.(j') <- t.stat.(j)
    done;
    for i = 0 to k - 1 do
      let s = n + m0 + i in
      lb.(s) <- 0.;
      ub.(s) <- infinity;
      stat.(s) <- Basic;
      let a = n + m1 + m0 + i in
      lb.(a) <- 0.;
      ub.(a) <- 0.;
      stat.(a) <- At_lower
    done;
    t.lb <- lb;
    t.ub <- ub;
    t.cost <- cost;
    t.d <- d;
    t.stat <- stat;
    (* row position of each basic structural variable, for the row etas *)
    let row_of = Hashtbl.create 64 in
    if t.solved_once then
      for i = 0 to m0 - 1 do
        if t.basis.(i) >= 0 && t.basis.(i) < n then
          Hashtbl.replace row_of t.basis.(i) i
      done;
    let basis = Array.make m1 (-1) in
    for i = 0 to m0 - 1 do
      basis.(i) <- (if t.basis.(i) >= 0 then shift t.basis.(i) else -1)
    done;
    for i = 0 to k - 1 do
      basis.(m0 + i) <- n + m0 + i
    done;
    t.basis <- basis;
    let xb = Array.make m1 0. in
    Array.blit t.xb 0 xb 0 m0;
    t.xb <- xb;
    if Array.length t.y < m1 then begin
      t.y <- Array.make (Int.max m1 (2 * Array.length t.y)) 0.;
      t.w <- Array.make (Int.max m1 (2 * Array.length t.w)) 0.
    end;
    Basis.grow t.bas ~m:m1;
    if t.solved_once then
      Array.iteri
        (fun i (terms, _) ->
          let entries =
            Array.fold_left
              (fun acc (j, a) ->
                match Hashtbl.find_opt row_of j with
                | Some p -> (p, a) :: acc
                | None -> acc)
              [] terms
          in
          (* no basic var carries the cut: the new row is already an
             identity row of the grown factorization, no eta needed *)
          if entries <> [] then
            Basis.push_row t.bas ~r:(m0 + i) ~piv:1. entries)
        new_rows;
    t.cuts <- Array.append t.cuts (Array.map fst new_rows);
    Array.iteri
      (fun i (terms, _) ->
        Array.iter
          (fun (j, a) -> t.cut_cols.(j) <- (m0 + i, a) :: t.cut_cols.(j))
          terms)
      new_rows;
    t.m <- m1;
    t.nt <- nt1;
    t.phase2_opt <- false
    (* new basic values (cut slacks included) and shifted duals are
       refreshed by the next solve entry's refresh_xb/price *)
  end

let num_rows t = t.m
let num_cuts t = Array.length t.cuts
let basic_var t i = t.basis.(i)
let basic_value t i = t.xb.(i)

(* Nonbasic entries of tableau row [i] over structural + slack columns:
   rho = B^-T e_i (one btran), alpha_j = rho . A_j (sparse dots). *)
let tableau_row t i =
  let rho = Array.make t.m 0. in
  rho.(i) <- 1.;
  Basis.btran t.bas rho;
  let acc = ref [] in
  for j = t.n + t.m - 1 downto 0 do
    if t.stat.(j) <> Basic then begin
      let a = if j < t.n then col_dot t j rho else rho.(j - t.n) in
      if Float.abs a > 1e-11 then acc := (j, a) :: !acc
    end
  done;
  !acc

let set_rhs t i v =
  if i < 0 || i >= t.m then invalid_arg "Sparse_simplex.set_rhs";
  t.b.(i) <- v

let get_rhs t i =
  if i < 0 || i >= t.m then invalid_arg "Sparse_simplex.get_rhs";
  t.b.(i)

(* Are all basic values within their variable's bounds? *)
let basics_feasible t =
  let ok = ref true in
  for i = 0 to t.m - 1 do
    let bi = t.basis.(i) in
    if t.xb.(i) < t.lb.(bi) -. feas_tol || t.xb.(i) > t.ub.(bi) +. feas_tol
    then ok := false
  done;
  !ok

(* Re-solve after RHS-only edits. Changing b leaves every reduced cost
   untouched, so a phase-2 optimal basis stays dual feasible: recompute
   the basic values against the new b — a single ftran through the
   existing factorization (refresh_xb) — and, when they are still
   within bounds, the old basis is optimal for the new RHS with zero
   pivots. Otherwise the dual simplex restores primal feasibility from
   the same factorized basis. *)
let resolve_rhs ?iter_limit ?deadline t =
  if not (t.solved_once && t.phase2_opt) then resolve ?iter_limit ?deadline t
  else begin
    t.deadline <- deadline;
    let iter_limit =
      match iter_limit with
      | Some l -> l
      | None -> default_iter_limit t
    in
    refresh_xb t;
    if basics_feasible t then begin
      t.rhs_ftran <- t.rhs_ftran + 1;
      extract t Simplex.Optimal 0
    end
    else begin
      t.rhs_dual <- t.rhs_dual + 1;
      match (try Some (run_dual t ~iter_limit) with Fallback -> None) with
      | Some (Simplex.Optimal, it) ->
          (* repriced at the top of the next primal step, so a plain
             polish run suffices, exactly as in [resolve] *)
          let s2, it2 = run_primal t ~iter_limit in
          extract t
            (if s2 = Simplex.Optimal then Simplex.Optimal else s2)
            (it + it2)
      | Some (Simplex.Infeasible, it) -> extract t Simplex.Infeasible it
      | Some ((Simplex.Unbounded | Simplex.Iteration_limit), it) ->
          extract t Simplex.Iteration_limit it
      | None ->
          t.warm_misses <- t.warm_misses + 1;
          solve_fresh ~iter_limit ?deadline t
    end
  end

(* Batched multi-RHS re-solve — the genuinely batched kernel. All
   pending RHS vectors are packed into one row-major m x K block, their
   residuals b_k - A_N x_N accumulated in a single pass over the
   nonbasic columns (one CSC walk serves the whole batch instead of one
   per scenario), and a single Basis.ftran_batch turns the block into
   candidate basic values. Columns still within bounds are answered
   with zero pivots; the first column that lost primal feasibility is
   peeled into the scalar dual-simplex fallback — its pivots change the
   basis, so the block is rebuilt from the post-pivot factorization for
   the columns after it, exactly the basis a scalar sequence would have
   reached.

   Per column the floating-point op sequence matches scalar
   [resolve_rhs] exactly (same residual subtraction order, same ftran
   arithmetic, same fallback), so the result array is bitwise identical
   to K sequential scalar calls — the property the sweep engine's
   --batch-rhs toggle relies on. *)
let resolve_rhs_batch ?iter_limit ?deadline t (rhs : float array array) =
  let kk = Array.length rhs in
  if kk = 0 then [||]
  else begin
    Array.iter
      (fun bk ->
        if Array.length bk <> t.m then
          invalid_arg "Sparse_simplex.resolve_rhs_batch: rhs length")
      rhs;
    let out = Array.make kk None in
    let pos = ref 0 in
    while !pos < kk do
      if not (t.solved_once && t.phase2_opt) then begin
        (* no phase-2 optimal basis to batch from: this column takes the
           scalar road (resolve / solve_fresh), after which batching can
           resume for the rest *)
        Array.blit rhs.(!pos) 0 t.b 0 t.m;
        out.(!pos) <- Some (resolve_rhs ?iter_limit ?deadline t);
        incr pos
      end
      else begin
        t.deadline <- deadline;
        let il =
          match iter_limit with
          | Some l -> l
          | None -> default_iter_limit t
        in
        let live = kk - !pos in
        t.rhs_batch <- t.rhs_batch + 1;
        (* Adjacent bitwise-identical RHS vectors are packed once:
           demand-major sweep grids re-solve an unchanged demand for
           every threshold in a row, and identical inputs through
           identical ops give bitwise-identical solutions, so the first
           occurrence's extract serves the whole run. Bits comparison,
           not (=): +0./-0. must stay distinct columns, their ftran
           outputs can differ in zero sign. *)
        let same_rhs a b =
          let eq = ref true in
          (try
             for i = 0 to t.m - 1 do
               if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i)
               then begin
                 eq := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !eq
        in
        let uniq = Array.make live 0 in
        let width = ref 0 in
        for c = 0 to live - 1 do
          if c = 0 || not (same_rhs rhs.(!pos + c - 1) rhs.(!pos + c)) then
            incr width;
          uniq.(c) <- !width - 1
        done;
        let w = !width in
        (* block layout: x.(i * w + u) = row i of unique batch column u *)
        let x = Array.make (t.m * w) 0. in
        for c = 0 to live - 1 do
          if c = 0 || uniq.(c) <> uniq.(c - 1) then begin
            let u = uniq.(c) and bk = rhs.(!pos + c) in
            for i = 0 to t.m - 1 do
              x.((i * w) + u) <- bk.(i)
            done
          end
        done;
        (* residuals b_k - A_N x_N: same per-column subtraction order as
           refresh_xb, but each nonbasic column is walked once for the
           whole batch *)
        for j = 0 to t.nt - 1 do
          if t.stat.(j) <> Basic then begin
            let v = nb_value t j in
            if v <> 0. then
              iter_col t j (fun i a ->
                  let base = i * w in
                  for c = 0 to w - 1 do
                    x.(base + c) <- x.(base + c) -. (a *. v)
                  done)
          end
        done;
        Basis.ftran_batch t.bas ~width:w x;
        let consumed = ref 0 and peeled = ref false in
        let last_u = ref (-1) and last_sol = ref None in
        while (not !peeled) && !consumed < live do
          let c = !consumed in
          let col = !pos + c in
          if uniq.(c) = !last_u then begin
            (* duplicate of the ftran-served column just before it: t.b
               and xb already hold exactly the values a scalar re-solve
               of the same bits would recompute *)
            t.rhs_ftran <- t.rhs_ftran + 1;
            t.rhs_batch_cols <- t.rhs_batch_cols + 1;
            out.(col) <- !last_sol;
            incr consumed
          end
          else begin
          let u = uniq.(c) in
          Array.blit rhs.(col) 0 t.b 0 t.m;
          for i = 0 to t.m - 1 do
            t.xb.(i) <- x.((i * w) + u)
          done;
          if basics_feasible t then begin
            t.rhs_ftran <- t.rhs_ftran + 1;
            t.rhs_batch_cols <- t.rhs_batch_cols + 1;
            let sol = extract t Simplex.Optimal 0 in
            last_u := u;
            last_sol := Some sol;
            out.(col) <- Some sol
          end
          else begin
            (* peel: scalar dual fallback, verbatim from resolve_rhs *)
            t.rhs_dual <- t.rhs_dual + 1;
            t.rhs_peeled <- t.rhs_peeled + 1;
            let sol =
              match
                (try Some (run_dual t ~iter_limit:il) with Fallback -> None)
              with
              | Some (Simplex.Optimal, it) ->
                  let s2, it2 = run_primal t ~iter_limit:il in
                  extract t
                    (if s2 = Simplex.Optimal then Simplex.Optimal else s2)
                    (it + it2)
              | Some (Simplex.Infeasible, it) ->
                  extract t Simplex.Infeasible it
              | Some ((Simplex.Unbounded | Simplex.Iteration_limit), it) ->
                  extract t Simplex.Iteration_limit it
              | None ->
                  t.warm_misses <- t.warm_misses + 1;
                  solve_fresh ~iter_limit:il ?deadline t
            in
            out.(col) <- Some sol;
            peeled := true
          end;
          incr consumed
          end
        done;
        pos := !pos + !consumed
      end
    done;
    Array.map (function Some s -> s | None -> assert false) out
  end

let total_iterations t = t.iters_total

let encode_stat = function
  | Basic -> 0
  | At_lower -> 1
  | At_upper -> 2
  | Free_nb -> 3

let decode_stat = function
  | 0 -> Basic
  | 1 -> At_lower
  | 2 -> At_upper
  | _ -> Free_nb

let col_stat t j = encode_stat t.stat.(j)

let snapshot_basis t : Simplex.basis_snapshot =
  {
    Simplex.snap_basis = Array.copy t.basis;
    snap_stat = Array.map encode_stat t.stat;
  }

let install_basis t (snap : Simplex.basis_snapshot) =
  if
    Array.length snap.Simplex.snap_basis <> t.m
    || Array.length snap.Simplex.snap_stat <> t.nt
  then false
  else begin
    t.phase2_opt <- false;
    Array.blit snap.Simplex.snap_basis 0 t.basis 0 t.m;
    for j = 0 to t.nt - 1 do
      t.stat.(j) <- decode_stat snap.Simplex.snap_stat.(j)
    done;
    if Basis.refactorize t.bas ~col:(iter_col t) t.basis then begin
      (* xb and d are refreshed by the next resolve entry; only the
         factorization has to be coherent here *)
      t.solved_once <- true;
      true
    end
    else begin
      t.solved_once <- false;
      false
    end
  end

let stats t : Simplex.stats =
  let active = ref 0 in
  for i = t.sf.m to t.m - 1 do
    if t.stat.(slack t i) <> Basic then incr active
  done;
  {
    iterations = t.iters_total;
    refactorizations = Basis.refactorizations t.bas;
    etas = Basis.eta_count t.bas;
    warm_hits = t.warm_hits;
    warm_misses = t.warm_misses;
    rhs_ftran = t.rhs_ftran;
    rhs_dual = t.rhs_dual;
    rhs_batch = t.rhs_batch;
    rhs_batch_cols = t.rhs_batch_cols;
    rhs_peeled = t.rhs_peeled;
    presolve_rows = 0;
    presolve_cols = 0;
    cuts_added = Array.length t.cuts;
    cuts_active = !active;
    bounds_tightened = 0;
  }

let pp_state ppf t =
  let col_name j =
    if j < t.n then Printf.sprintf "x%d" j
    else if j < t.n + t.m then Printf.sprintf "s%d" (j - t.n)
    else Printf.sprintf "a%d" (j - t.n - t.m)
  in
  Fmt.pf ppf "@[<v>basis:";
  for i = 0 to t.m - 1 do
    Fmt.pf ppf " %s=%.6g" (col_name t.basis.(i)) t.xb.(i)
  done;
  Fmt.pf ppf "@ etas=%d refactors=%d@]" (Basis.eta_count t.bas)
    (Basis.refactorizations t.bas)
