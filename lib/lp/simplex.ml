(* Bounded-variable two-phase primal simplex + dual simplex warm restarts.
   Internally we always minimize; Standard_form already negated maximization
   objectives. Column layout: [0, n) structural, [n, n+m) slacks (one per
   row, identity coefficients), [n+m, n+2m) artificials (identity; only used
   by phase 1 and, as a side benefit, their tableau columns are B^-1, which
   gives us dual values for free). *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Iteration_limit -> Fmt.string ppf "iteration limit"

type stats = {
  iterations : int;
  refactorizations : int;
  etas : int;
  warm_hits : int;
  warm_misses : int;
  rhs_ftran : int;
  rhs_dual : int;
  rhs_batch : int;
  rhs_batch_cols : int;
  rhs_peeled : int;
  presolve_rows : int;
  presolve_cols : int;
  cuts_added : int;
  cuts_active : int;
  bounds_tightened : int;
}

let empty_stats =
  {
    iterations = 0;
    refactorizations = 0;
    etas = 0;
    warm_hits = 0;
    warm_misses = 0;
    rhs_ftran = 0;
    rhs_dual = 0;
    rhs_batch = 0;
    rhs_batch_cols = 0;
    rhs_peeled = 0;
    presolve_rows = 0;
    presolve_cols = 0;
    cuts_added = 0;
    cuts_active = 0;
    bounds_tightened = 0;
  }

let add_stats a b =
  {
    iterations = a.iterations + b.iterations;
    refactorizations = a.refactorizations + b.refactorizations;
    etas = a.etas + b.etas;
    warm_hits = a.warm_hits + b.warm_hits;
    warm_misses = a.warm_misses + b.warm_misses;
    rhs_ftran = a.rhs_ftran + b.rhs_ftran;
    rhs_dual = a.rhs_dual + b.rhs_dual;
    rhs_batch = a.rhs_batch + b.rhs_batch;
    rhs_batch_cols = a.rhs_batch_cols + b.rhs_batch_cols;
    rhs_peeled = a.rhs_peeled + b.rhs_peeled;
    presolve_rows = a.presolve_rows + b.presolve_rows;
    presolve_cols = a.presolve_cols + b.presolve_cols;
    cuts_added = a.cuts_added + b.cuts_added;
    cuts_active = a.cuts_active + b.cuts_active;
    bounds_tightened = a.bounds_tightened + b.bounds_tightened;
  }

let pp_stats ppf s =
  Fmt.pf ppf "iters=%d refactors=%d etas=%d warm=%d/%d" s.iterations
    s.refactorizations s.etas s.warm_hits (s.warm_hits + s.warm_misses);
  if s.rhs_ftran > 0 || s.rhs_dual > 0 then
    Fmt.pf ppf " rhs=%df/%dd" s.rhs_ftran s.rhs_dual;
  if s.rhs_batch > 0 then
    Fmt.pf ppf " batch=%dx%d(-%d peeled)" s.rhs_batch s.rhs_batch_cols
      s.rhs_peeled;
  if s.presolve_rows > 0 || s.presolve_cols > 0 then
    Fmt.pf ppf " presolve=-%dr/-%dc" s.presolve_rows s.presolve_cols;
  if s.cuts_added > 0 || s.bounds_tightened > 0 then
    Fmt.pf ppf " cuts=%d(%d active) tightened=%d" s.cuts_added s.cuts_active
      s.bounds_tightened

(* A basis usable to warm-start any backend on the same standard form:
   which column is basic in each row plus every column's nonbasic anchor,
   encoded as plain int arrays so snapshots can be shipped by value
   across domains. Statuses: 0 basic, 1 at lower, 2 at upper, 3 free. *)
type basis_snapshot = { snap_basis : int array; snap_stat : int array }

type solution = {
  status : status;
  objective : float;
  primal : float array;
  duals : float array;
  reduced_costs : float array;
  iterations : int;
}

type vstat = Basic | At_lower | At_upper | Free_nb

type t = {
  sf : Standard_form.t;
  n : int;
  mutable m : int; (* sf.m + appended cut rows *)
  mutable nt : int;
  mutable b : float array;
      (* per-state right-hand side, seeded from sf.b at create; scenario
         sweeps edit it in place via set_rhs while sf stays shared
         read-only across domains *)
  mutable tab : float array array; (* m rows x nt columns: B^-1 [A I I] *)
  mutable d : float array; (* reduced costs, length nt *)
  mutable cost : float array; (* current phase cost vector, length nt *)
  mutable basis : int array; (* length m: column basic in each row *)
  mutable stat : vstat array; (* length nt *)
  mutable xb : float array; (* length m: values of basic variables *)
  mutable lb : float array; (* length nt *)
  mutable ub : float array; (* length nt *)
  (* appended cut rows (all sense <=, structural terms only); row
     [sf.m + k] is cuts.(k), its rhs lives in b.(sf.m + k). sf itself
     stays shared read-only across domains *)
  mutable cuts : (int * float) array array;
  mutable solved_once : bool;
  mutable phase2_opt : bool;
      (* last extract left a phase-2 optimal basis and nothing (bounds,
         basis install) invalidated it since — the precondition for the
         ftran-only RHS re-solve path *)
  mutable iters_total : int;
  mutable warm_hits : int;
  mutable warm_misses : int;
  mutable rhs_ftran : int;
  mutable rhs_dual : int;
  mutable rhs_batch : int;
  mutable rhs_batch_cols : int;
  mutable rhs_peeled : int;
  mutable refactors : int;
  mutable deadline : Repro_resilience.Deadline.t option;
      (* cooperative budget checked inside the pivot loops; installed by
         each solve_fresh/resolve call, cleared when the caller passes
         none so a stale budget never outlives its request *)
}

let feas_tol = 1e-7
let dual_tol = 1e-7
let pivot_tol = 1e-9

(* max relative row residual tolerated before the tableau is rebuilt *)
let residual_tol = 1e-6

let art t i = t.n + t.m + i
let slack t i = t.n + i

(* Iterate the structural (j, a) terms of row [i]: the shared standard
   form for original rows, per-state storage for appended cut rows. *)
let row_iter t i f =
  if i < t.sf.m then Array.iter f t.sf.rows.(i)
  else Array.iter f t.cuts.(i - t.sf.m)

let create (sf : Standard_form.t) =
  let n = sf.n and m = sf.m in
  let nt = n + m + m in
  let lb = Array.make nt 0. and ub = Array.make nt infinity in
  Array.blit sf.lb 0 lb 0 n;
  Array.blit sf.ub 0 ub 0 n;
  for i = 0 to m - 1 do
    (match sf.senses.(i) with
    | Model.Le ->
        lb.(n + i) <- 0.;
        ub.(n + i) <- infinity
    | Model.Ge ->
        lb.(n + i) <- neg_infinity;
        ub.(n + i) <- 0.
    | Model.Eq ->
        lb.(n + i) <- 0.;
        ub.(n + i) <- 0.);
    lb.(n + m + i) <- 0.;
    ub.(n + m + i) <- 0.
  done;
  {
    sf;
    n;
    m;
    nt;
    b = Array.copy sf.b;
    tab = Array.init m (fun _ -> Array.make nt 0.);
    d = Array.make nt 0.;
    cost = Array.make nt 0.;
    basis = Array.make m (-1);
    stat = Array.make nt At_lower;
    xb = Array.make m 0.;
    lb;
    ub;
    cuts = [||];
    solved_once = false;
    phase2_opt = false;
    iters_total = 0;
    warm_hits = 0;
    warm_misses = 0;
    rhs_ftran = 0;
    rhs_dual = 0;
    rhs_batch = 0;
    rhs_batch_cols = 0;
    rhs_peeled = 0;
    refactors = 0;
    deadline = None;
  }

let get_lb t j = t.lb.(j)
let get_ub t j = t.ub.(j)

(* Current value of a nonbasic variable given its status. *)
let nb_value t j =
  match t.stat.(j) with
  | At_lower -> t.lb.(j)
  | At_upper -> t.ub.(j)
  | Free_nb -> 0.
  | Basic -> invalid_arg "nb_value: basic"

let set_bounds t j ~lb ~ub =
  if j < 0 || j >= t.n then invalid_arg "Simplex.set_bounds";
  if lb > ub then invalid_arg "Simplex.set_bounds: lb > ub";
  t.phase2_opt <- false;
  if t.stat.(j) = Basic || not t.solved_once then begin
    t.lb.(j) <- lb;
    t.ub.(j) <- ub
  end
  else begin
    let v0 = nb_value t j in
    t.lb.(j) <- lb;
    t.ub.(j) <- ub;
    (* Re-anchor the nonbasic variable on a bound that still exists. *)
    (match t.stat.(j) with
    | At_lower when lb = neg_infinity ->
        t.stat.(j) <- (if ub < infinity then At_upper else Free_nb)
    | At_upper when ub = infinity ->
        t.stat.(j) <- (if lb > neg_infinity then At_lower else Free_nb)
    | _ -> ());
    let v1 = if t.stat.(j) = Basic then v0 else nb_value t j in
    let delta = v1 -. v0 in
    if delta <> 0. then
      (* keep A x = b: basic values absorb the shift via column j *)
      for i = 0 to t.m - 1 do
        let a = Array.unsafe_get (Array.unsafe_get t.tab i) j in
        if a <> 0. then t.xb.(i) <- t.xb.(i) -. (a *. delta)
      done
  end

(* ------------------------------------------------------------------ *)
(* Tableau (re)construction and invariant refresh                      *)
(* ------------------------------------------------------------------ *)

let rebuild_tableau t =
  for i = 0 to t.m - 1 do
    let row = t.tab.(i) in
    Array.fill row 0 t.nt 0.;
    row_iter t i (fun (j, a) -> row.(j) <- row.(j) +. a);
    row.(slack t i) <- 1.;
    row.(art t i) <- 1.
  done

(* Residual b - (A x_N) over nonbasic structural + slack columns. *)
let residuals t =
  let r = Array.copy t.b in
  (* walk rows once using sparse storage (cheaper than column walk) *)
  for i = 0 to t.m - 1 do
    row_iter t i (fun (j, a) ->
        if t.stat.(j) <> Basic then r.(i) <- r.(i) -. (a *. nb_value t j));
    let s = slack t i in
    if t.stat.(s) <> Basic then r.(i) <- r.(i) -. nb_value t s;
    let a = art t i in
    if t.stat.(a) <> Basic then r.(i) <- r.(i) -. nb_value t a
  done;
  r

(* Recompute basic values: xb = B^-1 r, using the artificial columns of the
   tableau which hold B^-1. *)
let refresh_xb t =
  let r = residuals t in
  for i = 0 to t.m - 1 do
    let row = t.tab.(i) in
    let acc = ref 0. in
    for k = 0 to t.m - 1 do
      let binv = Array.unsafe_get row (t.n + t.m + k) in
      if binv <> 0. then acc := !acc +. (binv *. Array.unsafe_get r k)
    done;
    t.xb.(i) <- !acc
  done

(* Recompute reduced costs d = cost - cost_B * tab. *)
let refresh_d t =
  Array.blit t.cost 0 t.d 0 t.nt;
  for i = 0 to t.m - 1 do
    let cb = t.cost.(t.basis.(i)) in
    if cb <> 0. then begin
      let row = t.tab.(i) in
      for j = 0 to t.nt - 1 do
        Array.unsafe_set t.d j
          (Array.unsafe_get t.d j -. (cb *. Array.unsafe_get row j))
      done
    end
  done;
  (* exact zeros for basic columns *)
  for i = 0 to t.m - 1 do
    t.d.(t.basis.(i)) <- 0.
  done

(* ------------------------------------------------------------------ *)
(* Pivoting                                                            *)
(* ------------------------------------------------------------------ *)

(* Pivot on (row r, column q): row ops on the tableau and reduced costs. *)
let pivot t r q =
  let rowr = t.tab.(r) in
  let piv = rowr.(q) in
  let inv = 1. /. piv in
  for j = 0 to t.nt - 1 do
    Array.unsafe_set rowr j (Array.unsafe_get rowr j *. inv)
  done;
  rowr.(q) <- 1.;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let rowi = t.tab.(i) in
      let f = Array.unsafe_get rowi q in
      if f <> 0. then begin
        for j = 0 to t.nt - 1 do
          Array.unsafe_set rowi j
            (Array.unsafe_get rowi j -. (f *. Array.unsafe_get rowr j))
        done;
        rowi.(q) <- 0.
      end
    end
  done;
  let f = t.d.(q) in
  if f <> 0. then begin
    for j = 0 to t.nt - 1 do
      Array.unsafe_set t.d j
        (Array.unsafe_get t.d j -. (f *. Array.unsafe_get rowr j))
    done;
    t.d.(q) <- 0.
  end

(* ------------------------------------------------------------------ *)
(* Drift detection and refactorization                                 *)
(* ------------------------------------------------------------------ *)

(* Max relative row residual |a_i . x - b_i| of the current solution over
   the original (unpivoted) constraint data. The tableau accumulates
   round-off because every pivot rewrites all rows in place; this is the
   detector that decides when it has drifted too far to trust. *)
let residual_error t =
  let x = Array.make t.nt 0. in
  for j = 0 to t.nt - 1 do
    if t.stat.(j) <> Basic then x.(j) <- nb_value t j
  done;
  for i = 0 to t.m - 1 do
    x.(t.basis.(i)) <- t.xb.(i)
  done;
  let worst = ref 0. in
  for i = 0 to t.m - 1 do
    let acc = ref 0. in
    row_iter t i (fun (j, a) -> acc := !acc +. (a *. x.(j)));
    acc := !acc +. x.(slack t i) +. x.(art t i);
    let err = Float.abs (!acc -. t.b.(i)) /. (1. +. Float.abs t.b.(i)) in
    if err > !worst then worst := err
  done;
  !worst

(* Rebuild B^-1 [A I I] from the original matrix by Gauss-Jordan over the
   current basis (greedy largest-pivot order). false means the basis went
   numerically singular. Refreshes basic values and reduced costs on
   success because both are derived from the tableau. *)
let refactor t =
  rebuild_tableau t;
  let processed = Array.make t.m false in
  let ok = ref true in
  (try
     for _ = 1 to t.m do
       let best_r = ref (-1) and best = ref 0. in
       for r = 0 to t.m - 1 do
         if not processed.(r) then begin
           let a = Float.abs t.tab.(r).(t.basis.(r)) in
           if a > !best then begin
             best := a;
             best_r := r
           end
         end
       done;
       if !best <= pivot_tol then begin
         ok := false;
         raise Exit
       end;
       pivot t !best_r t.basis.(!best_r);
       processed.(!best_r) <- true
     done
   with Exit -> ());
  if !ok then begin
    t.refactors <- t.refactors + 1;
    refresh_xb t;
    refresh_d t
  end;
  !ok

(* ------------------------------------------------------------------ *)
(* Primal simplex                                                      *)
(* ------------------------------------------------------------------ *)

type step_result = Step_ok | Step_optimal | Step_unbounded

(* One primal iteration. [bland] selects Bland's anti-cycling rule.
   Returns whether progress was degenerate via [degen] ref. *)
let primal_step t ~bland ~degen =
  (* entering variable *)
  let q = ref (-1) in
  let best = ref dual_tol in
  let consider j score =
    if bland then begin
      if score > dual_tol && !q = -1 then q := j
    end
    else if score > !best then begin
      best := score;
      q := j
    end
  in
  for j = 0 to t.nt - 1 do
    (match t.stat.(j) with
    | Basic -> ()
    | At_lower ->
        if t.lb.(j) < t.ub.(j) then consider j (-.t.d.(j))
    | At_upper ->
        if t.lb.(j) < t.ub.(j) then consider j t.d.(j)
    | Free_nb -> consider j (Float.abs t.d.(j)))
  done;
  if !q = -1 then Step_optimal
  else begin
    let q = !q in
    let delta =
      match t.stat.(q) with
      | At_lower -> 1.
      | At_upper -> -1.
      | Free_nb -> if t.d.(q) < 0. then 1. else -1.
      | Basic -> assert false
    in
    (* ratio test *)
    let t_self =
      match t.stat.(q) with
      | Free_nb -> infinity
      | _ -> t.ub.(q) -. t.lb.(q)
    in
    let best_t = ref t_self in
    let best_r = ref (-1) in
    let best_piv = ref 0. in
    for i = 0 to t.m - 1 do
      let a = Array.unsafe_get (Array.unsafe_get t.tab i) q in
      let rate = -.delta *. a in
      (* basic value changes at [rate] per unit of t *)
      if rate < -.pivot_tol then begin
        let lo = t.lb.(t.basis.(i)) in
        if lo > neg_infinity then begin
          let lim = (t.xb.(i) -. lo) /. -.rate in
          let lim = if lim < 0. then 0. else lim in
          if
            lim < !best_t -. feas_tol
            || (lim < !best_t +. feas_tol
               && (Float.abs a > Float.abs !best_piv
                  || (bland && !best_r >= 0 && t.basis.(i) < t.basis.(!best_r))))
          then begin
            best_t := lim;
            best_r := i;
            best_piv := a
          end
        end
      end
      else if rate > pivot_tol then begin
        let hi = t.ub.(t.basis.(i)) in
        if hi < infinity then begin
          let lim = (hi -. t.xb.(i)) /. rate in
          let lim = if lim < 0. then 0. else lim in
          if
            lim < !best_t -. feas_tol
            || (lim < !best_t +. feas_tol
               && (Float.abs a > Float.abs !best_piv
                  || (bland && !best_r >= 0 && t.basis.(i) < t.basis.(!best_r))))
          then begin
            best_t := lim;
            best_r := i;
            best_piv := a
          end
        end
      end
    done;
    if !best_t = infinity then Step_unbounded
    else begin
      let step = Float.max 0. !best_t in
      degen := step <= feas_tol;
      (* move basics *)
      if step > 0. then
        for i = 0 to t.m - 1 do
          let a = Array.unsafe_get (Array.unsafe_get t.tab i) q in
          if a <> 0. then t.xb.(i) <- t.xb.(i) -. (delta *. step *. a)
        done;
      if !best_r = -1 then begin
        (* bound flip *)
        t.stat.(q) <- (if t.stat.(q) = At_lower then At_upper else At_lower);
        Step_ok
      end
      else begin
        let r = !best_r in
        let leaving = t.basis.(r) in
        let a_rq = t.tab.(r).(q) in
        let rate = -.delta *. a_rq in
        (* leaving var hit which bound? *)
        t.stat.(leaving) <- (if rate < 0. then At_lower else At_upper);
        (* guard: equality-slack style fixed vars land At_lower *)
        if t.lb.(leaving) = t.ub.(leaving) then t.stat.(leaving) <- At_lower;
        let xq_new = (if t.stat.(q) = Free_nb then 0. else nb_value t q) +. (delta *. step) in
        pivot t r q;
        t.stat.(q) <- Basic;
        t.basis.(r) <- q;
        t.xb.(r) <- xq_new;
        Step_ok
      end
    end
  end

exception Done of status

(* One per-pivot budget tick: charge the shared deadline and stop the
   loop when any budget is exhausted. A pivot is O(m*n) work, so the
   atomic charge + expiry poll is noise; with no deadline installed
   (and no faults armed) this is two loads and the solve is
   bit-identical to the pre-resilience engine. [pivot_stall] is the
   chaos-test injection point simulating a wedged pivot: it burns wall
   time right here, where only the deadline can rescue the solve. *)
let budget_tick t ~stop =
  if Repro_resilience.Faults.armed () then
    Repro_resilience.Faults.stall "pivot_stall" ~seconds:0.05;
  match t.deadline with
  | None -> ()
  | Some d ->
      Repro_resilience.Deadline.charge_pivots d 1;
      if Repro_resilience.Deadline.expired d then stop ()

let run_primal t ~iter_limit =
  let iters = ref 0 in
  let degen_run = ref 0 in
  let bland_threshold = 200 + t.m in
  (try
     while true do
       if !iters >= iter_limit then raise (Done Iteration_limit);
       let bland = !degen_run > bland_threshold in
       let degen = ref false in
       (match primal_step t ~bland ~degen with
       | Step_optimal -> raise (Done Optimal)
       | Step_unbounded -> raise (Done Unbounded)
       | Step_ok -> ());
       if !degen then incr degen_run else degen_run := 0;
       incr iters;
       t.iters_total <- t.iters_total + 1;
       budget_tick t ~stop:(fun () -> raise (Done Iteration_limit));
       if !iters mod 2000 = 0 then begin
         refresh_xb t;
         if residual_error t > residual_tol then begin
           if not (refactor t) then raise (Done Iteration_limit)
         end
         else refresh_d t
       end
     done;
     assert false
   with Done s -> (s, !iters))

(* ------------------------------------------------------------------ *)
(* Phase 1 / phase 2 orchestration                                     *)
(* ------------------------------------------------------------------ *)

let start_basis t =
  (* nonbasic structural at a finite bound nearest zero *)
  for j = 0 to t.n - 1 do
    t.stat.(j) <-
      (if t.lb.(j) > neg_infinity then At_lower
       else if t.ub.(j) < infinity then At_upper
       else Free_nb)
  done;
  rebuild_tableau t;
  (* residual with all slacks+artificials nonbasic at 0 *)
  let r = Array.copy t.b in
  for i = 0 to t.m - 1 do
    row_iter t i (fun (j, a) -> r.(i) <- r.(i) -. (a *. nb_value t j))
  done;
  Array.fill t.cost 0 t.nt 0.;
  for i = 0 to t.m - 1 do
    let s = slack t i and a = art t i in
    (* default: artificial fixed out of the problem *)
    t.lb.(a) <- 0.;
    t.ub.(a) <- 0.;
    if r.(i) >= t.lb.(s) -. feas_tol && r.(i) <= t.ub.(s) +. feas_tol then begin
      (* slack can absorb the residual: basic *)
      t.basis.(i) <- s;
      t.stat.(s) <- Basic;
      t.stat.(a) <- At_lower;
      t.xb.(i) <- r.(i)
    end
    else begin
      (* slack pinned at the violated bound (0 for all senses), artificial
         carries the residual with a sign-matched one-sided bound *)
      t.stat.(s) <- At_lower;
      (* for Ge rows lb is -inf; anchor on ub = 0 instead *)
      if t.lb.(s) = neg_infinity then t.stat.(s) <- At_upper;
      t.basis.(i) <- a;
      t.stat.(a) <- Basic;
      t.xb.(i) <- r.(i);
      if r.(i) > 0. then begin
        t.lb.(a) <- 0.;
        t.ub.(a) <- infinity;
        t.cost.(a) <- 1.
      end
      else begin
        t.lb.(a) <- neg_infinity;
        t.ub.(a) <- 0.;
        t.cost.(a) <- -1.
      end
    end
  done;
  refresh_d t

let phase1_objective t =
  let acc = ref 0. in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if b >= t.n + t.m then acc := !acc +. Float.abs t.xb.(i)
  done;
  !acc

let enter_phase2 t =
  (* fix artificials to zero so they can never re-enter *)
  for i = 0 to t.m - 1 do
    let a = art t i in
    t.lb.(a) <- 0.;
    t.ub.(a) <- 0.;
    if t.stat.(a) <> Basic then t.stat.(a) <- At_lower
  done;
  Array.fill t.cost 0 t.nt 0.;
  Array.blit t.sf.c 0 t.cost 0 t.n;
  refresh_d t

(* ------------------------------------------------------------------ *)
(* Solution extraction                                                 *)
(* ------------------------------------------------------------------ *)

let primal_values t =
  let x = Array.make t.n 0. in
  for j = 0 to t.n - 1 do
    if t.stat.(j) <> Basic then x.(j) <- nb_value t j
  done;
  for i = 0 to t.m - 1 do
    if t.basis.(i) < t.n then x.(t.basis.(i)) <- t.xb.(i)
  done;
  x

let dual_values t =
  (* y = cost_B * B^-1; artificial tableau columns hold B^-1 *)
  let y = Array.make t.m 0. in
  for k = 0 to t.m - 1 do
    let acc = ref 0. in
    for i = 0 to t.m - 1 do
      let cb = t.cost.(t.basis.(i)) in
      if cb <> 0. then acc := !acc +. (cb *. t.tab.(i).(t.n + t.m + k))
    done;
    y.(k) <- !acc
  done;
  y

let extract t status iterations =
  (* every extract site with [Optimal] is past phase 2, so this flag is
     exactly "the state holds a phase-2 optimal basis" *)
  t.phase2_opt <- status = Optimal;
  let sgn = if t.sf.flip_sign then -1. else 1. in
  match status with
  | Optimal | Iteration_limit ->
      let primal = primal_values t in
      let obj = ref t.sf.obj_const in
      for j = 0 to t.n - 1 do
        obj := !obj +. (t.sf.c.(j) *. primal.(j))
      done;
      let duals = dual_values t in
      let reduced = Array.sub t.d 0 t.n in
      if t.sf.flip_sign then begin
        Array.iteri (fun i v -> duals.(i) <- -.v) duals;
        Array.iteri (fun i v -> reduced.(i) <- -.v) reduced
      end;
      {
        status;
        objective = sgn *. !obj;
        primal;
        duals;
        reduced_costs = reduced;
        iterations;
      }
  | Infeasible ->
      {
        status;
        objective = Float.nan;
        primal = Array.make t.n 0.;
        duals = Array.make t.m 0.;
        reduced_costs = Array.make t.n 0.;
        iterations;
      }
  | Unbounded ->
      {
        status;
        objective = (if t.sf.flip_sign then infinity else neg_infinity);
        primal = Array.make t.n 0.;
        duals = Array.make t.m 0.;
        reduced_costs = Array.make t.n 0.;
        iterations;
      }

let default_iter_limit t = 20_000 + (40 * (t.m + t.n))

(* Fresh two-phase solve, without the post-solve drift repair (which
   needs the dual simplex, defined below; see [solve_fresh]). *)
let solve_fresh_raw ?iter_limit t =
  let iter_limit =
    match iter_limit with
    | Some l -> l
    | None -> default_iter_limit t
  in
  start_basis t;
  let s1, it1 = run_primal t ~iter_limit in
  t.solved_once <- true;
  match s1 with
  | Iteration_limit -> extract t Iteration_limit it1
  | Unbounded ->
      (* phase 1 objective is bounded below by 0; treat as numerical noise *)
      extract t Iteration_limit it1
  | Infeasible -> assert false
  | Optimal ->
      if phase1_objective t > 1e-6 then extract t Infeasible it1
      else begin
        enter_phase2 t;
        refresh_xb t;
        let s2, it2 = run_primal t ~iter_limit in
        extract t s2 (it1 + it2)
      end

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

exception Fallback

(* Make nonbasic statuses consistent with reduced-cost signs (required for
   dual feasibility after arbitrary bound changes). *)
let normalize_nonbasic t =
  for j = 0 to t.nt - 1 do
    match t.stat.(j) with
    | Basic -> ()
    | _ ->
        let lo = t.lb.(j) and hi = t.ub.(j) in
        if lo = hi then t.stat.(j) <- At_lower
        else if t.d.(j) > dual_tol then
          if lo > neg_infinity then t.stat.(j) <- At_lower else raise Fallback
        else if t.d.(j) < -.dual_tol then
          if hi < infinity then t.stat.(j) <- At_upper else raise Fallback
        else if
          (* d ~ 0: keep current anchor when still finite *)
          (t.stat.(j) = At_lower && lo = neg_infinity)
          || (t.stat.(j) = At_upper && hi = infinity)
          || t.stat.(j) = Free_nb
        then
          t.stat.(j) <-
            (if lo > neg_infinity then At_lower
             else if hi < infinity then At_upper
             else Free_nb)
  done

let dual_step t =
  (* leaving row: largest primal infeasibility *)
  let r = ref (-1) in
  let worst = ref feas_tol in
  let need_increase = ref false in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    let below = t.lb.(b) -. t.xb.(i) and above = t.xb.(i) -. t.ub.(b) in
    if below > !worst then begin
      worst := below;
      r := i;
      need_increase := true
    end;
    if above > !worst then begin
      worst := above;
      r := i;
      need_increase := false
    end
  done;
  if !r = -1 then Step_optimal
  else begin
    let r = !r in
    let row = t.tab.(r) in
    (* entering: min |d_j| / |row_j| among sign-eligible columns *)
    let q = ref (-1) in
    let best_ratio = ref infinity in
    let best_a = ref 0. in
    for j = 0 to t.nt - 1 do
      (match t.stat.(j) with
      | Basic -> ()
      | _ when t.lb.(j) = t.ub.(j) -> ()
      | st ->
          let a = Array.unsafe_get row j in
          if Float.abs a > pivot_tol then begin
            let dirs =
              match st with
              | At_lower -> [ 1. ]
              | At_upper -> [ -1. ]
              | Free_nb -> [ 1.; -1. ]
              | Basic -> []
            in
            List.iter
              (fun delta ->
                (* xb_r changes at rate -delta*a; we need the right sign *)
                let rate = -.delta *. a in
                let eligible = if !need_increase then rate > 0. else rate < 0. in
                if eligible then begin
                  let ratio = Float.abs t.d.(j) /. Float.abs a in
                  if
                    ratio < !best_ratio -. 1e-12
                    || (ratio < !best_ratio +. 1e-12 && Float.abs a > Float.abs !best_a)
                  then begin
                    best_ratio := ratio;
                    best_a := a;
                    q := j
                  end
                end)
              dirs
          end)
    done;
    if !q = -1 then Step_unbounded (* dual unbounded = primal infeasible *)
    else begin
      let q = !q in
      let a_rq = row.(q) in
      let target =
        if !need_increase then t.lb.(t.basis.(r)) else t.ub.(t.basis.(r))
      in
      (* xb_r + (-delta_step * a_rq) = target, with x_q moving by delta_step *)
      let delta_step = (t.xb.(r) -. target) /. a_rq in
      let xq0 = if t.stat.(q) = Free_nb then 0. else nb_value t q in
      for i = 0 to t.m - 1 do
        if i <> r then begin
          let a = Array.unsafe_get (Array.unsafe_get t.tab i) q in
          if a <> 0. then t.xb.(i) <- t.xb.(i) -. (a *. delta_step)
        end
      done;
      let leaving = t.basis.(r) in
      t.stat.(leaving) <- (if !need_increase then At_lower else At_upper);
      if t.lb.(leaving) = t.ub.(leaving) then t.stat.(leaving) <- At_lower;
      pivot t r q;
      t.stat.(q) <- Basic;
      t.basis.(r) <- q;
      t.xb.(r) <- xq0 +. delta_step;
      Step_ok
    end
  end

let run_dual t ~iter_limit =
  let iters = ref 0 in
  (try
     while true do
       if !iters >= iter_limit then raise Fallback;
       (match dual_step t with
       | Step_optimal -> raise (Done Optimal)
       | Step_unbounded -> raise (Done Infeasible)
       | Step_ok -> ());
       incr iters;
       t.iters_total <- t.iters_total + 1;
       (* deadline expiry ends the solve (not [Fallback]: a from-scratch
          re-solve would keep burning an already-exhausted budget) *)
       budget_tick t ~stop:(fun () -> raise (Done Iteration_limit));
       if !iters mod 2000 = 0 then begin
         refresh_xb t;
         if residual_error t > residual_tol then begin
           if not (refactor t) then raise Fallback
         end
         else refresh_d t
       end
     done;
     assert false
   with Done s -> (s, !iters))

(* An "optimal" claim is only trusted once the solution actually satisfies
   the original rows: the in-place pivoting drifts on long solves (the
   circle-family models showed row violations up to 1.9e4). On drift,
   rebuild the tableau from the original matrix and re-optimize — dual
   simplex to restore primal feasibility of the now-exact basic values,
   then a primal polish. *)
let repair_drift t ~iter_limit (sol : solution) =
  if sol.status <> Optimal || residual_error t <= residual_tol then sol
  else begin
    let extra = ref 0 in
    let status = ref Optimal in
    (try
       let tries = ref 0 in
       while
         !status = Optimal && !tries < 2 && residual_error t > residual_tol
       do
         incr tries;
         if not (refactor t) then raise Exit;
         normalize_nonbasic t;
         let sd, itd = run_dual t ~iter_limit in
         extra := !extra + itd;
         (match sd with
         | Optimal ->
             refresh_d t;
             let sp, itp = run_primal t ~iter_limit in
             extra := !extra + itp;
             status := sp
         | s -> status := s);
         refresh_xb t
       done
     with Exit | Fallback -> ());
    extract t !status (sol.iterations + !extra)
  end

let solve_fresh ?iter_limit ?deadline t =
  t.deadline <- deadline;
  let iter_limit =
    match iter_limit with
    | Some l -> l
    | None -> default_iter_limit t
  in
  let sol = solve_fresh_raw ~iter_limit t in
  repair_drift t ~iter_limit sol

let resolve ?iter_limit ?deadline t =
  t.deadline <- deadline;
  if not t.solved_once then solve_fresh ?iter_limit ?deadline t
  else begin
    let iter_limit =
      match iter_limit with
      | Some l -> l
      | None -> default_iter_limit t
    in
    match
      (try
         (* The previous solve may have stopped inside phase 1 (e.g. an
            infeasible sibling node): reload the real phase-2 costs and
            re-fix the artificials before warm-starting, or the dual
            simplex would chase a stale phase-1 objective. *)
         enter_phase2 t;
         normalize_nonbasic t;
         refresh_xb t;
         let s, it = run_dual t ~iter_limit in
         Some (s, it)
       with Fallback -> None)
    with
    | Some (Optimal, it) ->
        (* dual simplex reached primal feasibility; reduced costs may have
           drifted below tolerance on large moves - polish with primal. *)
        t.warm_hits <- t.warm_hits + 1;
        refresh_d t;
        let s2, it2 = run_primal t ~iter_limit in
        let sol = extract t (if s2 = Optimal then Optimal else s2) (it + it2) in
        repair_drift t ~iter_limit sol
    | Some (Infeasible, it) ->
        t.warm_hits <- t.warm_hits + 1;
        extract t Infeasible it
    | Some ((Unbounded | Iteration_limit), it) ->
        t.warm_hits <- t.warm_hits + 1;
        extract t Iteration_limit it
    | None ->
        t.warm_misses <- t.warm_misses + 1;
        solve_fresh ~iter_limit ?deadline t
  end

(* ------------------------------------------------------------------ *)
(* Appended cut rows                                                   *)
(* ------------------------------------------------------------------ *)

(* Append cut rows [a^T x <= rhs] (structural terms only) and re-derive
   the tableau. The canonical contiguous column layout is preserved by
   remapping: structural and slack columns keep their indices, the
   artificial block shifts up by the number of new rows, and each new
   cut slack slots in at [n + m0 + i] basic in its row — so the
   [slack]/[art] index formulas and every pivot loop stay valid with the
   updated [m]/[nt]. *)
let append_rows t new_rows =
  let k = Array.length new_rows in
  if k > 0 then begin
    let n = t.n and m0 = t.m in
    let m1 = m0 + k in
    let nt1 = n + m1 + m1 in
    let shift j = if j >= n + m0 then j + k else j in
    let b = Array.make m1 0. in
    Array.blit t.b 0 b 0 m0;
    Array.iteri (fun i (_, rhs) -> b.(m0 + i) <- rhs) new_rows;
    t.b <- b;
    let lb = Array.make nt1 0. and ub = Array.make nt1 0. in
    let cost = Array.make nt1 0. and d = Array.make nt1 0. in
    let stat = Array.make nt1 At_lower in
    for j = 0 to t.nt - 1 do
      let j' = shift j in
      lb.(j') <- t.lb.(j);
      ub.(j') <- t.ub.(j);
      cost.(j') <- t.cost.(j);
      d.(j') <- t.d.(j);
      stat.(j') <- t.stat.(j)
    done;
    for i = 0 to k - 1 do
      let s = n + m0 + i in
      lb.(s) <- 0.;
      ub.(s) <- infinity;
      stat.(s) <- Basic;
      let a = n + m1 + m0 + i in
      lb.(a) <- 0.;
      ub.(a) <- 0.;
      stat.(a) <- At_lower
    done;
    t.lb <- lb;
    t.ub <- ub;
    t.cost <- cost;
    t.d <- d;
    t.stat <- stat;
    let basis = Array.make m1 (-1) in
    for i = 0 to m0 - 1 do
      basis.(i) <- (if t.basis.(i) >= 0 then shift t.basis.(i) else -1)
    done;
    for i = 0 to k - 1 do
      basis.(m0 + i) <- n + m0 + i
    done;
    t.basis <- basis;
    let xb = Array.make m1 0. in
    Array.blit t.xb 0 xb 0 m0;
    t.xb <- xb;
    t.cuts <- Array.append t.cuts (Array.map fst new_rows);
    t.m <- m1;
    t.nt <- nt1;
    t.tab <- Array.init m1 (fun _ -> Array.make nt1 0.);
    t.phase2_opt <- false;
    (* the old basis + new slacks is nonsingular iff the old basis was;
       a singular refactor forces the next solve from scratch *)
    if t.solved_once && not (refactor t) then t.solved_once <- false
  end

let num_rows t = t.m
let num_cuts t = Array.length t.cuts
let basic_var t i = t.basis.(i)
let basic_value t i = t.xb.(i)

(* Nonbasic entries of tableau row [i] over structural + slack columns
   (B^-1 A restricted to the columns a Gomory derivation shifts). *)
let tableau_row t i =
  let row = t.tab.(i) in
  let acc = ref [] in
  for j = t.n + t.m - 1 downto 0 do
    let a = row.(j) in
    if t.stat.(j) <> Basic && Float.abs a > 1e-11 then acc := (j, a) :: !acc
  done;
  !acc

let set_rhs t i v =
  if i < 0 || i >= t.m then invalid_arg "Simplex.set_rhs";
  t.b.(i) <- v

let get_rhs t i =
  if i < 0 || i >= t.m then invalid_arg "Simplex.get_rhs";
  t.b.(i)

(* Are all basic values within their variable's bounds? *)
let basics_feasible t =
  let ok = ref true in
  for i = 0 to t.m - 1 do
    let bi = t.basis.(i) in
    if t.xb.(i) < t.lb.(bi) -. feas_tol || t.xb.(i) > t.ub.(bi) +. feas_tol
    then ok := false
  done;
  !ok

(* Re-solve after RHS-only edits. Changing b leaves every reduced cost
   untouched, so a phase-2 optimal basis stays dual feasible: recompute
   the basic values against the new b (refresh_xb) and, when they are
   still within bounds, the old basis is optimal for the new RHS with
   zero pivots. Otherwise the dual simplex restores primal feasibility
   from the same basis. *)
let resolve_rhs ?iter_limit ?deadline t =
  if not (t.solved_once && t.phase2_opt) then resolve ?iter_limit ?deadline t
  else begin
    t.deadline <- deadline;
    let iter_limit =
      match iter_limit with
      | Some l -> l
      | None -> default_iter_limit t
    in
    refresh_xb t;
    if basics_feasible t then begin
      t.rhs_ftran <- t.rhs_ftran + 1;
      extract t Optimal 0
    end
    else begin
      t.rhs_dual <- t.rhs_dual + 1;
      match (try Some (run_dual t ~iter_limit) with Fallback -> None) with
      | Some (Optimal, it) ->
          refresh_d t;
          let s2, it2 = run_primal t ~iter_limit in
          let sol =
            extract t (if s2 = Optimal then Optimal else s2) (it + it2)
          in
          repair_drift t ~iter_limit sol
      | Some (Infeasible, it) -> extract t Infeasible it
      | Some ((Unbounded | Iteration_limit), it) ->
          extract t Iteration_limit it
      | None ->
          t.warm_misses <- t.warm_misses + 1;
          solve_fresh ~iter_limit ?deadline t
    end
  end

(* Batched multi-RHS re-solve. The sparse backend runs a genuinely
   batched ftran over the whole block; the dense tableau is the
   differential oracle, so here each RHS is installed and re-solved
   through the scalar path in order — exactly the semantics the batched
   kernel must reproduce bitwise. Columns still answered by the
   zero-pivot ftran count as [rhs_batch_cols]; columns that needed
   pivots (dual fallback or a full re-solve) count as [rhs_peeled]. *)
let resolve_rhs_batch ?iter_limit ?deadline t (rhs : float array array) =
  if Array.length rhs = 0 then [||]
  else begin
    t.rhs_batch <- t.rhs_batch + 1;
    Array.map
      (fun (bk : float array) ->
        if Array.length bk <> t.m then
          invalid_arg "Simplex.resolve_rhs_batch: rhs length";
        let ftran0 = t.rhs_ftran in
        Array.blit bk 0 t.b 0 t.m;
        let sol = resolve_rhs ?iter_limit ?deadline t in
        if t.rhs_ftran > ftran0 then
          t.rhs_batch_cols <- t.rhs_batch_cols + 1
        else t.rhs_peeled <- t.rhs_peeled + 1;
        sol)
      rhs
  end

let total_iterations t = t.iters_total

let encode_stat = function
  | Basic -> 0
  | At_lower -> 1
  | At_upper -> 2
  | Free_nb -> 3

let decode_stat = function
  | 0 -> Basic
  | 1 -> At_lower
  | 2 -> At_upper
  | _ -> Free_nb

(* Encoded status of any column (0 basic, 1 lower, 2 upper, 3 free) —
   used by the generic cut separators through the backend interface. *)
let col_stat t j = encode_stat t.stat.(j)

let snapshot_basis t =
  {
    snap_basis = Array.copy t.basis;
    snap_stat = Array.map encode_stat t.stat;
  }

(* Extend a basis snapshot taken at a state with fewer cut rows to a
   state with [rows] rows: the extra cut slacks become basic in their
   own rows (always a consistent, nonsingular extension) and the
   artificial block's indices shift to the wider layout. Shared by both
   backends, so cross-worker installs in the parallel tree can sync cut
   pools of different generations. *)
let pad_snapshot ~n snap ~rows =
  let m0 = Array.length snap.snap_basis in
  if rows < m0 then invalid_arg "Simplex.pad_snapshot: shrinking";
  if rows = m0 then snap
  else begin
    let k = rows - m0 in
    let basis = Array.make rows 0 in
    for i = 0 to m0 - 1 do
      let b = snap.snap_basis.(i) in
      basis.(i) <- (if b >= n + m0 then b + k else b)
    done;
    for i = 0 to k - 1 do
      basis.(m0 + i) <- n + m0 + i
    done;
    let stat = Array.make (n + (2 * rows)) 1 in
    Array.blit snap.snap_stat 0 stat 0 (n + m0);
    for i = 0 to m0 - 1 do
      stat.(n + rows + i) <- snap.snap_stat.(n + m0 + i)
    done;
    for i = 0 to k - 1 do
      stat.(n + m0 + i) <- 0
    done;
    { snap_basis = basis; snap_stat = stat }
  end

let install_basis t snap =
  if
    Array.length snap.snap_basis <> t.m || Array.length snap.snap_stat <> t.nt
  then false
  else begin
    t.phase2_opt <- false;
    Array.blit snap.snap_basis 0 t.basis 0 t.m;
    for j = 0 to t.nt - 1 do
      t.stat.(j) <- decode_stat snap.snap_stat.(j)
    done;
    if refactor t then begin
      t.solved_once <- true;
      true
    end
    else begin
      (* singular under current bounds: force the next solve from scratch *)
      t.solved_once <- false;
      false
    end
  end

let stats t =
  (* a cut is active when its slack sits nonbasic at its (zero) lower
     bound in the last basis, i.e. the cut is binding there *)
  let active = ref 0 in
  for i = t.sf.m to t.m - 1 do
    if t.stat.(slack t i) <> Basic then incr active
  done;
  {
    iterations = t.iters_total;
    refactorizations = t.refactors;
    etas = 0;
    warm_hits = t.warm_hits;
    warm_misses = t.warm_misses;
    rhs_ftran = t.rhs_ftran;
    rhs_dual = t.rhs_dual;
    rhs_batch = t.rhs_batch;
    rhs_batch_cols = t.rhs_batch_cols;
    rhs_peeled = t.rhs_peeled;
    presolve_rows = 0;
    presolve_cols = 0;
    cuts_added = Array.length t.cuts;
    cuts_active = !active;
    bounds_tightened = 0;
  }

let pp_state ppf t =
  let col_name j =
    if j < t.n then Printf.sprintf "x%d" j
    else if j < t.n + t.m then Printf.sprintf "s%d" (j - t.n)
    else Printf.sprintf "a%d" (j - t.n - t.m)
  in
  Fmt.pf ppf "@[<v>basis:";
  for i = 0 to t.m - 1 do
    Fmt.pf ppf " %s=%.6g" (col_name t.basis.(i)) t.xb.(i)
  done;
  Fmt.pf ppf "@ nonbasic:";
  for j = 0 to t.nt - 1 do
    match t.stat.(j) with
    | Basic -> ()
    | At_lower -> Fmt.pf ppf " %s@@lo(%.4g,d=%.4g)" (col_name j) t.lb.(j) t.d.(j)
    | At_upper -> Fmt.pf ppf " %s@@hi(%.4g,d=%.4g)" (col_name j) t.ub.(j) t.d.(j)
    | Free_nb -> Fmt.pf ppf " %s@@free(d=%.4g)" (col_name j) t.d.(j)
  done;
  Fmt.pf ppf "@]"
