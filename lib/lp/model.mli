(** Mutable LP / MILP model builder.

    A model collects decision variables (continuous, binary or general
    integer, with bounds), linear constraints, SOS1 groups (at most one
    member of the group may be non-zero — the mechanism Gurobi exposes for
    complementarity constraints, cf. paper §3.1), and a linear objective.

    Variables and constraints are referred to by dense integer handles in
    creation order, which downstream solvers use as array indices. *)

type t

type var = int
type constr = int

type var_kind = Continuous | Binary | Integer

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

val create : ?name:string -> unit -> t

val name : t -> string

(** [add_var t] creates a variable. Defaults: [lb = 0.], [ub = infinity],
    [kind = Continuous]. [Binary] forces bounds into [0, 1].
    @raise Invalid_argument if [lb > ub]. *)
val add_var :
  ?name:string -> ?lb:float -> ?ub:float -> ?kind:var_kind -> t -> var

(** [add_vars t n] creates [n] variables sharing the given attributes;
    [name] is used as a prefix ([name_0], [name_1], ...). *)
val add_vars :
  ?name:string -> ?lb:float -> ?ub:float -> ?kind:var_kind -> t -> int -> var array

(** [add_constr t expr sense rhs] adds the constraint
    [expr sense (rhs - const_part expr)] — i.e. the expression's constant
    term is folded into the right-hand side. *)
val add_constr : ?name:string -> t -> Linexpr.t -> sense -> float -> constr

(** [add_sos1 t vars] declares that at most one of [vars] may take a
    non-zero value in a feasible solution.
    @raise Invalid_argument on groups of fewer than two variables. *)
val add_sos1 : ?name:string -> t -> var list -> unit

(** [set_objective t dir expr] sets the objective; any constant term is
    carried through to reported objective values. *)
val set_objective : t -> direction -> Linexpr.t -> unit

(** {1 Accessors} *)

val num_vars : t -> int
val num_constrs : t -> int
val num_sos1 : t -> int

val var_name : t -> var -> string
val var_lb : t -> var -> float
val var_ub : t -> var -> float
val var_kind : t -> var -> var_kind

(** Tighten (replace) a variable's bounds after creation. *)
val set_var_bounds : t -> var -> lb:float -> ub:float -> unit

val constr_name : t -> constr -> string
val constr_expr : t -> constr -> Linexpr.t
val constr_sense : t -> constr -> sense
val constr_rhs : t -> constr -> float

(** Replace a constraint's right-hand side in place (scenario sweeps
    rebuild nothing but the RHS vector between solves). *)
val set_constr_rhs : t -> constr -> float -> unit

val sos1_groups : t -> var array array
val objective : t -> direction * Linexpr.t

(** [is_mip t] holds when the model has integer variables or SOS1 groups. *)
val is_mip : t -> bool

(** All integer-constrained (binary or integer) variables. *)
val integer_vars : t -> var array

(** {1 Solution checking}

    Used by tests and by solvers to validate candidate points. *)

(** [constr_violation t values c] is how far [values] is from satisfying
    constraint [c] (0 when satisfied). *)
val constr_violation : t -> float array -> constr -> float

(** Maximum violation across constraints, variable bounds, integrality and
    SOS1 groups. *)
val max_violation : t -> float array -> float

(** Objective value of an assignment (includes objective constant). *)
val objective_value : t -> float array -> float

val pp_stats : Format.formatter -> t -> unit
