(* CPLEX LP file format. Identifier rules are stricter than our variable
   names (no leading digits, limited punctuation), so names are sanitized
   and deduplicated via an index suffix. *)

let sanitize name idx =
  let buf = Buffer.create (String.length name + 4) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  let s = if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "v" ^ s else s in
  Printf.sprintf "%s#%d" s idx

let var_name model v = sanitize (Model.var_name model v) v

let pp_terms buf model expr =
  let terms = Linexpr.terms expr in
  if terms = [] then Buffer.add_string buf "0 "
  else
    List.iteri
      (fun i (v, c) ->
        if c >= 0. then Buffer.add_string buf (if i = 0 then "" else "+ ")
        else Buffer.add_string buf "- ";
        Buffer.add_string buf (Printf.sprintf "%.12g %s " (Float.abs c) (var_name model v)))
      terms

let to_buffer buf model =
  let dir, obj = Model.objective model in
  Buffer.add_string buf
    (match dir with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  pp_terms buf model obj;
  (* the LP format has no objective constant; emit it as a comment *)
  if Linexpr.const_part obj <> 0. then
    Buffer.add_string buf
      (Printf.sprintf "\n\\ objective constant: %.12g" (Linexpr.const_part obj));
  Buffer.add_string buf "\nSubject To\n";
  for i = 0 to Model.num_constrs model - 1 do
    Buffer.add_string buf
      (Printf.sprintf " %s: " (sanitize (Model.constr_name model i) i));
    pp_terms buf model (Model.constr_expr model i);
    let rel =
      match Model.constr_sense model i with
      | Model.Le -> "<="
      | Model.Ge -> ">="
      | Model.Eq -> "="
    in
    Buffer.add_string buf
      (Printf.sprintf "%s %.12g\n" rel (Model.constr_rhs model i))
  done;
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Model.num_vars model - 1 do
    let lo = Model.var_lb model v and hi = Model.var_ub model v in
    let name = var_name model v in
    if lo = hi then Buffer.add_string buf (Printf.sprintf " %s = %.12g\n" name lo)
    else begin
      let lo_s =
        if lo = neg_infinity then "-inf" else Printf.sprintf "%.12g" lo
      in
      let hi_s = if hi = infinity then "+inf" else Printf.sprintf "%.12g" hi in
      Buffer.add_string buf (Printf.sprintf " %s <= %s <= %s\n" lo_s name hi_s)
    end
  done;
  let generals =
    List.filter
      (fun v -> Model.var_kind model v = Model.Integer)
      (List.init (Model.num_vars model) (fun v -> v))
  in
  let binaries =
    List.filter
      (fun v -> Model.var_kind model v = Model.Binary)
      (List.init (Model.num_vars model) (fun v -> v))
  in
  if generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (var_name model v)))
      generals
  end;
  if binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (var_name model v)))
      binaries
  end;
  let sos = Model.sos1_groups model in
  if Array.length sos > 0 then begin
    Buffer.add_string buf "SOS\n";
    Array.iteri
      (fun gi group ->
        Buffer.add_string buf (Printf.sprintf " sos%d: S1 ::" gi);
        Array.iteri
          (fun j v ->
            Buffer.add_string buf
              (Printf.sprintf " %s : %d" (var_name model v) (j + 1)))
          group;
        Buffer.add_char buf '\n')
      sos
  end;
  Buffer.add_string buf "End\n"

let to_string model =
  let buf = Buffer.create 4096 in
  to_buffer buf model;
  Buffer.contents buf

let to_channel oc model = output_string oc (to_string model)

let write path model =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc model)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

(* Reads the subset of the LP format this module's writer emits (plus a
   few common spellings): sections Minimize/Maximize, Subject To, Bounds,
   Generals, Binaries, SOS, End; explicit coefficients or bare variable
   names in expressions; bound lines [lo <= x <= hi], [x = v], [x <= hi],
   [x >= lo], [x free]; and the writer's [\ objective constant: c]
   comment so objective values round-trip exactly. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type section =
  | Sec_objective of Model.direction
  | Sec_constraints
  | Sec_bounds
  | Sec_generals
  | Sec_binaries
  | Sec_sos
  | Sec_end

let is_number_token tok =
  match tok.[0] with
  | '0' .. '9' | '.' | '-' | '+' -> (
      match float_of_string_opt tok with
      | Some _ -> true
      | None -> String.length tok > 1 && (match tok.[1] with '0' .. '9' | '.' -> true | _ -> false))
  | 'i' | 'I' -> String.lowercase_ascii tok = "inf" || String.lowercase_ascii tok = "infinity"
  | _ -> false

let number_of_token tok =
  match String.lowercase_ascii tok with
  | "inf" | "+inf" | "infinity" | "+infinity" -> infinity
  | "-inf" | "-infinity" -> neg_infinity
  | _ -> (
      match float_of_string_opt tok with
      | Some v -> v
      | None -> fail "expected a number, got %S" tok)

(* Split an expression token stream into (terms, constant). Accepts
   [+|-] [coef] name triples with the sign and coefficient optional, and
   bare numbers as constant terms (the writer emits "0 " for an empty
   expression). *)
let parse_linear ~var tokens =
  let terms = ref [] in
  let const = ref 0. in
  let rec go sign = function
    | [] -> ()
    | "+" :: rest -> go sign rest
    | "-" :: rest -> go (-.sign) rest
    | tok :: rest when is_number_token tok -> (
        let v = number_of_token tok in
        match rest with
        | name :: rest' when (not (is_number_token name)) && name <> "+" && name <> "-" ->
            terms := (var name, sign *. v) :: !terms;
            go 1. rest'
        | _ ->
            const := !const +. (sign *. v);
            go 1. rest)
    | name :: rest ->
        terms := (var name, sign) :: !terms;
        go 1. rest
  in
  go 1. tokens;
  (List.rev !terms, !const)

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* A found section header, or None for an ordinary content line. *)
let section_of_line line tokens =
  let low = String.lowercase_ascii (String.trim line) in
  match tokens with
  | [] -> None
  | w :: _ -> (
      match String.lowercase_ascii w with
      | "minimize" | "min" -> Some (Sec_objective Model.Minimize)
      | "maximize" | "max" -> Some (Sec_objective Model.Maximize)
      | "subject" when low = "subject to" -> Some Sec_constraints
      | "st" | "s.t." when List.length tokens = 1 -> Some Sec_constraints
      | "bounds" when List.length tokens = 1 -> Some Sec_bounds
      | "general" | "generals" when List.length tokens = 1 -> Some Sec_generals
      | "binary" | "binaries" when List.length tokens = 1 -> Some Sec_binaries
      | "sos" when List.length tokens = 1 -> Some Sec_sos
      | "end" when List.length tokens = 1 -> Some Sec_end
      | _ -> None)

type pre_model = {
  mutable direction : Model.direction;
  mutable objective : string * float;
      (* raw objective token stream (joined) + constant from the comment *)
  mutable constrs : (string * string) list; (* name, raw body — reversed *)
  mutable bound_lines : string list; (* reversed *)
  mutable general_names : string list;
  mutable binary_names : string list;
  mutable sos_lines : (string * string) list; (* name, body — reversed *)
}

let split_label line =
  match String.index_opt line ':' with
  | Some i
    when (i + 1 >= String.length line || line.[i + 1] <> ':')
         && (i = 0 || line.[i - 1] <> ':') ->
      let label = String.trim (String.sub line 0 i) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      (Some label, rest)
  | _ -> (None, line)

(* Undo the writer's "#idx" disambiguation suffix so names survive a
   write -> parse -> write cycle unchanged (idx is reassigned anyway). *)
let strip_index_suffix name =
  match String.rindex_opt name '#' with
  | Some i when i > 0 && i < String.length name - 1 ->
      let all_digits = ref true in
      for j = i + 1 to String.length name - 1 do
        match name.[j] with '0' .. '9' -> () | _ -> all_digits := false
      done;
      if !all_digits then String.sub name 0 i else name
  | _ -> name

let objective_constant_re line =
  (* matches the writer's "\ objective constant: <c>" comment *)
  let low = String.lowercase_ascii line in
  let key = "objective constant:" in
  match
    let rec find i =
      if i + String.length key > String.length low then None
      else if String.sub low i (String.length key) = key then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some i ->
      let rest = String.sub line (i + String.length key)
          (String.length line - i - String.length key) in
      float_of_string_opt (String.trim rest)

let of_string text =
  try
    let pre =
      {
        direction = Model.Minimize;
        objective = ("", 0.);
        constrs = [];
        bound_lines = [];
        general_names = [];
        binary_names = [];
        sos_lines = [];
      }
    in
    let section = ref Sec_end in
    let seen_objective = ref false in
    let lines = String.split_on_char '\n' text in
    List.iter
      (fun raw ->
        let line = String.trim raw in
        if line = "" then ()
        else if line.[0] = '\\' then begin
          (* comment; the writer hides the objective constant here *)
          match objective_constant_re line with
          | Some c ->
              let body, _ = pre.objective in
              pre.objective <- (body, c)
          | None -> ()
        end
        else
          match section_of_line line (tokenize line) with
          | Some (Sec_objective dir) ->
              pre.direction <- dir;
              seen_objective := true;
              section := Sec_objective dir
          | Some s -> section := s
          | None -> (
              match !section with
              | Sec_objective _ ->
                  let _, rest = split_label line in
                  let body, c = pre.objective in
                  pre.objective <- (body ^ " " ^ rest, c)
              | Sec_constraints ->
                  let label, rest = split_label line in
                  let name =
                    match label with
                    | Some l -> l
                    | None -> Printf.sprintf "c%d" (List.length pre.constrs)
                  in
                  pre.constrs <- (name, rest) :: pre.constrs
              | Sec_bounds -> pre.bound_lines <- line :: pre.bound_lines
              | Sec_generals ->
                  pre.general_names <-
                    List.rev_append (tokenize line) pre.general_names
              | Sec_binaries ->
                  pre.binary_names <-
                    List.rev_append (tokenize line) pre.binary_names
              | Sec_sos ->
                  let label, rest = split_label line in
                  let name =
                    match label with
                    | Some l -> l
                    | None -> Printf.sprintf "sos%d" (List.length pre.sos_lines)
                  in
                  pre.sos_lines <- (name, rest) :: pre.sos_lines
              | Sec_end -> fail "content line outside any section: %S" line))
      lines;
    if not !seen_objective then fail "missing Minimize/Maximize section";
    (* ---- pass 2: discover variables in first-appearance order ---- *)
    let var_ids = Hashtbl.create 64 in
    let var_names = ref [] in
    let n_vars = ref 0 in
    let intern name =
      match Hashtbl.find_opt var_ids name with
      | Some id -> id
      | None ->
          let id = !n_vars in
          Hashtbl.add var_ids name id;
          var_names := name :: !var_names;
          incr n_vars;
          id
    in
    let rels = [ "<="; ">="; "="; "<"; ">" ] in
    let note_expr_vars tokens =
      ignore (parse_linear ~var:intern tokens)
    in
    note_expr_vars (tokenize (fst pre.objective));
    List.iter
      (fun (_, body) ->
        let tokens = tokenize body in
        (* strip "rel rhs" tail before interning *)
        let rec strip acc = function
          | rel :: _ :: _ when List.mem rel rels -> List.rev acc
          | tok :: rest -> strip (tok :: acc) rest
          | [] -> List.rev acc
        in
        note_expr_vars (strip [] tokens))
      (List.rev pre.constrs);
    List.iter
      (fun line ->
        List.iter
          (fun tok ->
            if
              (not (is_number_token tok))
              && (not (List.mem tok rels))
              && String.lowercase_ascii tok <> "free"
            then ignore (intern tok))
          (tokenize line))
      (List.rev pre.bound_lines);
    List.iter (fun n -> ignore (intern n)) (List.rev pre.general_names);
    List.iter (fun n -> ignore (intern n)) (List.rev pre.binary_names);
    List.iter
      (fun (_, body) ->
        List.iter
          (fun tok ->
            if tok <> "S1" && tok <> "S2" && tok <> "::" && tok <> ":"
               && not (is_number_token tok)
            then ignore (intern tok))
          (tokenize body))
      (List.rev pre.sos_lines);
    (* ---- kinds and bounds ---- *)
    let generals =
      List.fold_left
        (fun acc n -> (intern n, ()) :: acc)
        [] pre.general_names
    in
    let binaries =
      List.fold_left
        (fun acc n -> (intern n, ()) :: acc)
        [] pre.binary_names
    in
    let kind_of id =
      if List.mem_assoc id binaries then Model.Binary
      else if List.mem_assoc id generals then Model.Integer
      else Model.Continuous
    in
    let bounds = Hashtbl.create 64 in
    let update_bound id f =
      let cur =
        match Hashtbl.find_opt bounds id with
        | Some b -> b
        | None -> (0., infinity)
      in
      Hashtbl.replace bounds id (f cur)
    in
    List.iter
      (fun line ->
        let tokens = tokenize line in
        match tokens with
        | [ name; "free" ] | [ name; "Free" ] | [ name; "FREE" ] ->
            update_bound (intern name) (fun _ -> (neg_infinity, infinity))
        | [ name; "="; v ] ->
            let v = number_of_token v in
            update_bound (intern name) (fun _ -> (v, v))
        | [ lo; "<="; name; "<="; hi ]
          when is_number_token lo && is_number_token hi ->
            update_bound (intern name) (fun _ ->
                (number_of_token lo, number_of_token hi))
        | [ name; "<="; hi ] when not (is_number_token name) ->
            update_bound (intern name) (fun (lo, _) -> (lo, number_of_token hi))
        | [ name; ">="; lo ] when not (is_number_token name) ->
            update_bound (intern name) (fun (_, hi) -> (number_of_token lo, hi))
        | [ lo; "<="; name ] when is_number_token lo ->
            update_bound (intern name) (fun (_, hi) -> (number_of_token lo, hi))
        | _ -> fail "unrecognized bound line: %S" line)
      (List.rev pre.bound_lines);
    (* ---- build the model ---- *)
    let model = Model.create ~name:"lp_file" () in
    List.iter
      (fun name ->
        let id = Hashtbl.find var_ids name in
        let v =
          Model.add_var ~name:(strip_index_suffix name) ~kind:(kind_of id)
            model
        in
        assert (v = id))
      (List.rev !var_names);
    Hashtbl.iter
      (fun id (lo, hi) ->
        if lo > hi then fail "variable %d: lb %g > ub %g" id lo hi;
        Model.set_var_bounds model id ~lb:lo ~ub:hi)
      bounds;
    let obj_body, obj_const = pre.objective in
    let terms, inline_const =
      parse_linear ~var:intern (tokenize obj_body)
    in
    Model.set_objective model pre.direction
      (Linexpr.of_terms ~constant:(obj_const +. inline_const) terms);
    List.iter
      (fun (name, body) ->
        let tokens = tokenize body in
        let rec split_rel acc = function
          | rel :: rest when List.mem rel rels -> (List.rev acc, rel, rest)
          | tok :: rest -> split_rel (tok :: acc) rest
          | [] -> fail "constraint %S: missing relation" name
        in
        let lhs, rel, rhs_tokens = split_rel [] tokens in
        let sense =
          match rel with
          | "<=" | "<" -> Model.Le
          | ">=" | ">" -> Model.Ge
          | "=" -> Model.Eq
          | _ -> assert false
        in
        let rhs =
          match rhs_tokens with
          | [ v ] -> number_of_token v
          | _ -> fail "constraint %S: malformed right-hand side" name
        in
        let terms, c = parse_linear ~var:intern lhs in
        ignore
          (Model.add_constr ~name:(strip_index_suffix name) model
             (Linexpr.of_terms ~constant:c terms)
             sense rhs))
      (List.rev pre.constrs);
    List.iter
      (fun (name, body) ->
        (* "S1 :: x : 1 y : 2" — keep members, drop weights *)
        let tokens = tokenize body in
        let tokens =
          match tokens with
          | kind :: "::" :: rest ->
              if String.uppercase_ascii kind <> "S1" then
                fail "SOS group %S: only S1 is supported" name;
              rest
          | _ -> fail "SOS group %S: expected 'S1 ::'" name
        in
        let rec members acc = function
          | [] -> List.rev acc
          | name :: ":" :: _weight :: rest -> members (intern name :: acc) rest
          | name :: rest when not (is_number_token name) ->
              members (intern name :: acc) rest
          | tok :: _ -> fail "SOS group %S: unexpected token %S" name tok
        in
        Model.add_sos1 ~name:(strip_index_suffix name) model
          (members [] tokens))
      (List.rev pre.sos_lines);
    Ok model
  with Parse_error msg -> Error msg

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      of_string text)
