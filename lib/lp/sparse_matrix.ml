(* Compressed-sparse-column store of the structural constraint matrix.
   Built once per standard form; every backend pivot touches only the
   nonzeros of the columns it prices or ftrans, never a dense row. *)

type t = {
  m : int;
  n : int;
  col_ptr : int array; (* length n + 1 *)
  row_idx : int array; (* length nnz *)
  values : float array; (* length nnz *)
}

let of_rows ~m ~n (rows : (int * float) array array) =
  (* count entries per column; duplicate (row, var) terms are summed, so
     first coalesce each row's terms per variable *)
  let counts = Array.make n 0 in
  let coalesced =
    Array.map
      (fun row ->
        let tbl = Hashtbl.create (Array.length row) in
        Array.iter
          (fun (j, a) ->
            match Hashtbl.find_opt tbl j with
            | Some prev -> Hashtbl.replace tbl j (prev +. a)
            | None -> Hashtbl.add tbl j a)
          row;
        let out = Hashtbl.fold (fun j a acc -> (j, a) :: acc) tbl [] in
        List.sort (fun (j1, _) (j2, _) -> compare j1 j2) out)
      rows
  in
  Array.iter
    (List.iter (fun (j, a) -> if a <> 0. then counts.(j) <- counts.(j) + 1))
    coalesced;
  let col_ptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    col_ptr.(j + 1) <- col_ptr.(j) + counts.(j)
  done;
  let nnz = col_ptr.(n) in
  let row_idx = Array.make (Int.max 1 nnz) 0 in
  let values = Array.make (Int.max 1 nnz) 0. in
  let cursor = Array.copy col_ptr in
  Array.iteri
    (fun i terms ->
      List.iter
        (fun (j, a) ->
          if a <> 0. then begin
            let k = cursor.(j) in
            row_idx.(k) <- i;
            values.(k) <- a;
            cursor.(j) <- k + 1
          end)
        terms)
    coalesced;
  { m; n; col_ptr; row_idx; values }

let nnz t = t.col_ptr.(t.n)

let col_nnz t j = t.col_ptr.(j + 1) - t.col_ptr.(j)

let iter_col t j f =
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    f (Array.unsafe_get t.row_idx k) (Array.unsafe_get t.values k)
  done

let dot_col t j y =
  let acc = ref 0. in
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    acc :=
      !acc
      +. (Array.unsafe_get t.values k
         *. Array.unsafe_get y (Array.unsafe_get t.row_idx k))
  done;
  !acc
