(** Shared, append-only, deduplicating cut pool.

    The relaxation pipeline ({!Relaxation}) separates cuts per node but
    stores them here, globally: every cut is valid for the whole tree
    (Gomory rows are derived against root bounds, SOS1 disjunctions
    against root boxes), so a cut found in one subtree tightens every
    other worker's relaxation too.

    The pool is append-only and each entry is immutable, which makes a
    plain [int] a {e generation}: a backend state holding the first [g]
    pool cuts as appended rows is fully described by [g]. Parallel
    branch-and-bound ships that integer with each node's basis snapshot
    ({!Branch_bound}) and replays [slice] on the thief — no cut is ever
    re-separated or re-ordered, so jobs = 1 stays bit-identical and
    any job count sees the same pool prefix semantics.

    Deduplication is by normalized fingerprint (coefficients scaled so
    the largest magnitude is 1, then rounded), so re-separating the same
    Gomory row at two nodes inserts once. All operations are
    mutex-protected; [add] is the only writer. *)

type cut = {
  terms : (int * float) array;
      (** sparse row over {e structural} columns, ascending index *)
  rhs : float;  (** sense is always [terms . x <= rhs] *)
  origin : string;  (** ["gomory"] | ["sos1"] — for stats and tests *)
}

type t

val create : unit -> t

val size : t -> int
(** Current generation: the number of cuts ever accepted. *)

val add : t -> cut -> bool
(** Append unless a normalized duplicate is already present; returns
    whether the cut was accepted. *)

val get : t -> int -> cut
(** [get t i] for [i < size t]; entries never change once added. *)

val slice : t -> lo:int -> hi:int -> cut array
(** The generations [lo, hi) in insertion order — what a backend state
    at generation [lo] must append to reach generation [hi]. *)
