type lp_result = {
  status : Simplex.status;
  objective : float;
  primal : float array;
  duals : float array;
  reduced_costs : float array;
  iterations : int;
  stats : Simplex.stats;
}

let solve_lp ?iter_limit ?backend ?basis ?deadline model =
  let sf = Standard_form.of_model model in
  let state = Backend.create ?kind:backend sf in
  let warm =
    match basis with
    | None -> false
    | Some snap -> Backend.install_basis state snap
  in
  let sol =
    if warm then Backend.resolve ?iter_limit ?deadline state
    else Backend.solve_fresh ?iter_limit ?deadline state
  in
  {
    status = sol.Simplex.status;
    objective = sol.Simplex.objective;
    primal = sol.Simplex.primal;
    duals = sol.Simplex.duals;
    reduced_costs = sol.Simplex.reduced_costs;
    iterations = sol.Simplex.iterations;
    stats = Backend.stats state;
  }

let value result var = result.primal.(var)

let rec solve ?pool ?options ?(presolve = false) ?primal_heuristic
    ?on_incumbent model =
  if presolve then begin
    match Presolve.reduce model with
    | Presolve.Infeasible_model ->
        {
          Branch_bound.outcome = Branch_bound.Infeasible;
          objective = Float.nan;
          best_bound = Float.nan;
          mip_gap = Float.nan;
          primal = None;
          nodes = 0;
          simplex_iterations = 0;
          lp_stats = Simplex.empty_stats;
          elapsed = 0.;
          incumbent_trace = [];
          tree = Branch_bound.serial_tree_stats;
        }
    | Presolve.Reduced red ->
        let primal_heuristic =
          Option.map
            (fun h reduced_x -> h (Presolve.restore red reduced_x))
            primal_heuristic
        in
        let r =
          solve ?pool ?options ~presolve:false ?primal_heuristic ?on_incumbent
            red.Presolve.model
        in
        {
          r with
          Branch_bound.primal =
            Option.map (Presolve.restore red) r.Branch_bound.primal;
          lp_stats =
            {
              r.Branch_bound.lp_stats with
              Simplex.presolve_rows =
                r.Branch_bound.lp_stats.Simplex.presolve_rows
                + red.Presolve.rows_dropped;
              presolve_cols =
                r.Branch_bound.lp_stats.Simplex.presolve_cols
                + red.Presolve.vars_fixed;
            };
        }
  end
  else if Model.is_mip model then
    Branch_bound.solve ?pool ?options ?primal_heuristic ?on_incumbent model
  else begin
    let deadline = Option.bind options (fun o -> o.Branch_bound.deadline) in
    let r = solve_lp ?deadline model in
    let outcome =
      match r.status with
      | Simplex.Optimal -> Branch_bound.Optimal
      | Simplex.Infeasible -> Branch_bound.Infeasible
      | Simplex.Unbounded -> Branch_bound.Unbounded
      | Simplex.Iteration_limit -> Branch_bound.No_incumbent
    in
    {
      Branch_bound.outcome;
      objective = r.objective;
      best_bound = r.objective;
      mip_gap = (if outcome = Branch_bound.Optimal then 0. else Float.nan);
      primal = (if outcome = Branch_bound.Optimal then Some r.primal else None);
      nodes = 1;
      simplex_iterations = r.iterations;
      lp_stats = r.stats;
      elapsed = 0.;
      incumbent_trace = [];
      tree = Branch_bound.serial_tree_stats;
    }
  end

(* ------------------------------------------------------------------ *)
(* Budget-bounded solve with a structured outcome                      *)
(* ------------------------------------------------------------------ *)

module R = Repro_resilience

let solve_bounded ?pool ?(options = Branch_bound.default_options)
    ?presolve ?primal_heuristic ?on_incumbent ?deadline model =
  let deadline =
    match deadline with
    | Some _ -> deadline
    | None -> options.Branch_bound.deadline
  in
  let options = { options with Branch_bound.deadline } in
  match solve ?pool ~options ?presolve ?primal_heuristic ?on_incumbent model with
  | exception R.Faults.Injected p -> R.Outcome.Failed (R.Outcome.Fault_injected p)
  | exception e ->
      R.Outcome.Failed (R.Outcome.Solver_failure (Printexc.to_string e))
  | r -> (
      let open Branch_bound in
      (* why did the search stop early? Priority: an expired budget is
         the most specific signal, then lost workers, then the legacy
         limits in the order the search itself checks them. *)
      let reason () =
        match Option.bind deadline R.Deadline.tripped with
        | Some trip -> R.Outcome.of_trip trip
        | None ->
            if r.tree.lost > 0 then R.Outcome.Worker_lost r.tree.lost
            else if options.interrupt () then R.Outcome.Interrupted
            else if r.elapsed > options.time_limit then R.Outcome.Wall_deadline
            else if r.nodes >= options.node_limit then R.Outcome.Node_budget
            else R.Outcome.Stalled
      in
      match r.outcome with
      | Optimal | Infeasible | Unbounded -> R.Outcome.Complete r
      | Feasible ->
          R.Outcome.Feasible_bound
            {
              result = r;
              incumbent = r.objective;
              proven_bound = r.best_bound;
              reason = reason ();
            }
      | No_incumbent -> R.Outcome.Degraded { result = Some r; reason = reason () })
