type config = {
  enabled : bool;
  max_rounds : int;
  node_rounds : int;
  max_cuts_per_round : int;
  max_depth : int;
  min_violation : float;
  tighten : bool;
  tighten_rounds : int;
  reliability : int;
  probe_iters : int;
  max_probes : int;
}

let disabled =
  {
    enabled = false;
    max_rounds = 0;
    node_rounds = 0;
    max_cuts_per_round = 0;
    max_depth = 0;
    min_violation = 1e-4;
    tighten = false;
    tighten_rounds = 0;
    reliability = 0;
    probe_iters = 0;
    max_probes = 0;
  }

let default_enabled =
  {
    enabled = true;
    max_rounds = 4;
    node_rounds = 1;
    max_cuts_per_round = 16;
    max_depth = 8;
    min_violation = 1e-4;
    tighten = true;
    tighten_rounds = 2;
    reliability = 1;
    probe_iters = 40;
    max_probes = 4;
  }

let of_env cfg =
  match Sys.getenv_opt "REPRO_CUTS" with
  | Some ("0" | "false" | "off" | "no") -> disabled
  | Some _ -> if cfg.enabled then cfg else default_enabled
  | None -> cfg

type t = {
  cfg : config;
  sf : Standard_form.t;
  pool : Cut_pool.t;
  integer : bool array;
  int_vars : int array;
  sos : int array array;
  (* root bound anchors for the Gomory shift: structural boxes come from
     the standard form, slack boxes from the row senses (they never
     change during the search), cut slacks are always [0, inf) *)
  slack_lb : float array;
  slack_ub : float array;
  base_rows : Presolve.row array;
}

let create cfg ~sf ~int_vars ~sos =
  let n = sf.Standard_form.n and m = sf.Standard_form.m in
  let integer = Array.make n false in
  Array.iter (fun v -> integer.(v) <- true) int_vars;
  let slack_lb = Array.make m 0. and slack_ub = Array.make m infinity in
  for i = 0 to m - 1 do
    match sf.Standard_form.senses.(i) with
    | Model.Le -> ()
    | Model.Ge ->
        slack_lb.(i) <- neg_infinity;
        slack_ub.(i) <- 0.
    | Model.Eq -> slack_ub.(i) <- 0.
  done;
  let base_rows =
    Array.init m (fun i ->
        {
          Presolve.terms = sf.Standard_form.rows.(i);
          sense = sf.Standard_form.senses.(i);
          rhs = sf.Standard_form.b.(i);
        })
  in
  { cfg; sf; pool = Cut_pool.create (); integer; int_vars; sos;
    slack_lb; slack_ub; base_rows }

let config t = t.cfg
let pool t = t.pool

(* root box of any tableau column: structural, original slack, cut slack *)
let anchor_bounds t j =
  let n = t.sf.Standard_form.n and m0 = t.sf.Standard_form.m in
  if j < n then (t.sf.Standard_form.lb.(j), t.sf.Standard_form.ub.(j))
  else if j < n + m0 then (t.slack_lb.(j - n), t.slack_ub.(j - n))
  else (0., infinity)

(* equation backing slack column [n + i]: row . x + s = rhs *)
let row_equation t i =
  let m0 = t.sf.Standard_form.m in
  if i < m0 then (t.sf.Standard_form.rows.(i), t.sf.Standard_form.b.(i))
  else
    let c = Cut_pool.get t.pool (i - m0) in
    (c.Cut_pool.terms, c.Cut_pool.rhs)

let near_integer v = Float.abs (v -. Float.round v) < 1e-9

exception Reject

(* Gomory mixed-integer cut from tableau row [r] whose basic variable is
   a fractional structural integer. Nonbasic columns are shifted by
   their ROOT bounds (not the node's), so the cut is valid everywhere in
   the tree; slack columns are substituted back out against their row
   equations so the stored cut is structural-only. *)
let gomory_from_row t be ~primal r =
  let n = t.sf.Standard_form.n in
  let xb = Backend.basic_value be r in
  let alpha = Backend.tableau_row be r in
  try
    (* shifted right-hand side: xb + sum a_j (cur_j - anchor_j), where
       cur_j is the bound the column currently sits at (node bounds) *)
    let entries =
      List.map
        (fun (j, a) ->
          let stat = Backend.col_stat be j in
          if stat <> 1 && stat <> 2 then raise Reject;
          let al, au = anchor_bounds t j in
          let at_lower = stat = 1 in
          let anch = if at_lower then al else au in
          if not (Float.is_finite anch) then raise Reject;
          let cur = if at_lower then Backend.get_lb be j else Backend.get_ub be j in
          (j, a, at_lower, anch, cur))
        alpha
    in
    let bbar =
      List.fold_left
        (fun acc (_, a, _, anch, cur) -> acc +. (a *. (cur -. anch)))
        xb entries
    in
    let f0 = bbar -. Float.floor bbar in
    if f0 < 0.01 || f0 > 0.99 then raise Reject;
    let acc = Array.make n 0. in
    let rhs = ref (-1.) in
    let add_term j c =
      if j < n then acc.(j) <- acc.(j) +. c
      else begin
        (* c * s_i = c * (rhs_i - row_i . x) *)
        let terms, b_i = row_equation t (j - n) in
        rhs := !rhs -. (c *. b_i);
        Array.iter (fun (k, a) -> acc.(k) <- acc.(k) -. (c *. a)) terms
      end
    in
    List.iter
      (fun (j, a, at_lower, anch, _) ->
        let abar = if at_lower then a else -.a in
        let gamma =
          if j < n && t.integer.(j) && near_integer anch then begin
            let fj = abar -. Float.floor abar in
            if fj <= f0 +. 1e-12 then fj /. f0 else (1. -. fj) /. (1. -. f0)
          end
          else if abar > 0. then abar /. f0
          else -.abar /. (1. -. f0)
        in
        if gamma > 1e-12 then begin
          (* t-space cut sum gamma t >= 1 flipped to <=:
             at-lower columns contribute -gamma x, at-upper +gamma x *)
          if at_lower then begin
            add_term j (-.gamma);
            rhs := !rhs -. (gamma *. anch)
          end
          else begin
            add_term j gamma;
            rhs := !rhs +. (gamma *. anch)
          end
        end)
      entries;
    (* numerical hygiene: drop noise, reject wild dynamic range, scale
       the largest magnitude to 1 *)
    let amax = Array.fold_left (fun m c -> Float.max m (Float.abs c)) 0. acc in
    if amax < 1e-9 || not (Float.is_finite amax) then raise Reject;
    let drop = 1e-10 *. amax in
    let amin = ref amax and nnz = ref 0 in
    Array.iter
      (fun c ->
        let m = Float.abs c in
        if m > drop then begin
          incr nnz;
          if m < !amin then amin := m
        end)
      acc;
    if !nnz = 0 || amax /. !amin > 1e8 then raise Reject;
    let scale = 1. /. amax in
    let terms = ref [] in
    for j = n - 1 downto 0 do
      if Float.abs acc.(j) > drop then terms := (j, acc.(j) *. scale) :: !terms
    done;
    let terms = Array.of_list !terms in
    let rhs = !rhs *. scale in
    if not (Float.is_finite rhs) then raise Reject;
    let viol =
      Array.fold_left (fun s (j, c) -> s +. (c *. primal.(j))) (-.rhs) terms
    in
    if viol < t.cfg.min_violation then raise Reject;
    Some { Cut_pool.terms; rhs; origin = "gomory" }
  with Reject -> None

let separate_gomory t be ~primal =
  let n = t.sf.Standard_form.n in
  let rows = Backend.num_rows be in
  let cands = ref [] in
  for i = rows - 1 downto 0 do
    let bv = Backend.basic_var be i in
    if bv >= 0 && bv < n && t.integer.(bv) then begin
      let x = Backend.basic_value be i in
      let fd = Float.abs (x -. Float.round x) in
      if fd > 1e-4 then cands := (fd, i) :: !cands
    end
  done;
  (* most fractional rows first, ties by row index: deterministic *)
  let sorted =
    List.sort
      (fun (fa, ia) (fb, ib) ->
        if fa = fb then compare ia ib else compare fb fa)
      !cands
  in
  let cuts = ref [] and tried = ref 0 in
  List.iter
    (fun (_, i) ->
      if !tried < t.cfg.max_cuts_per_round then begin
        incr tried;
        match gomory_from_row t be ~primal i with
        | Some c -> cuts := c :: !cuts
        | None -> ()
      end)
    sorted;
  List.rev !cuts

(* SOS1 disjunction: at most one member is nonzero and each is bounded
   by its root upper bound, so sum x_k / ub_k <= 1 whenever every member
   has a finite positive root box above zero. *)
let separate_sos1 t ~primal =
  let sf = t.sf in
  let cuts = ref [] in
  Array.iter
    (fun group ->
      let ok = ref true and members = ref [] in
      Array.iter
        (fun v ->
          let lb = sf.Standard_form.lb.(v) and ub = sf.Standard_form.ub.(v) in
          if lb < -1e-9 || not (Float.is_finite ub) then ok := false
          else if ub > 1e-9 then members := v :: !members)
        group;
      let members = List.sort compare !members in
      if !ok && List.length members >= 2 then begin
        let lhs =
          List.fold_left
            (fun s v -> s +. (primal.(v) /. sf.Standard_form.ub.(v)))
            0. members
        in
        if lhs > 1. +. t.cfg.min_violation then
          let terms =
            Array.of_list
              (List.map (fun v -> (v, 1. /. sf.Standard_form.ub.(v))) members)
          in
          cuts := { Cut_pool.terms; rhs = 1.; origin = "sos1" } :: !cuts
      end)
    t.sos;
  List.rev !cuts

let append_slice t be ~lo ~hi =
  if hi > lo then begin
    let fresh = Cut_pool.slice t.pool ~lo ~hi in
    Backend.append_rows be
      (Array.map (fun c -> (c.Cut_pool.terms, c.Cut_pool.rhs)) fresh)
  end;
  hi - lo

let sync t be =
  append_slice t be ~lo:(Backend.num_cuts be) ~hi:(Cut_pool.size t.pool)

let separate t be ~primal ?on_cut () =
  (* first reconcile with cuts other workers published: if that alone
     grew this LP, re-solve before separating against a stale basis *)
  let pulled = sync t be in
  if pulled > 0 then pulled
  else begin
    let cuts = separate_gomory t be ~primal @ separate_sos1 t ~primal in
    List.iter
      (fun c ->
        if Cut_pool.add t.pool c then
          match on_cut with Some f -> f c | None -> ())
      cuts;
    sync t be
  end

let sync_snapshot t be ~gen snap =
  let have = Backend.num_cuts be in
  if have < gen then begin
    ignore (append_slice t be ~lo:have ~hi:gen : int);
    snap
  end
  else if have > gen then
    Simplex.pad_snapshot ~n:t.sf.Standard_form.n snap
      ~rows:(t.sf.Standard_form.m + have)
  else snap

let tighten t be =
  let n = t.sf.Standard_form.n in
  let k = Backend.num_cuts be in
  let rows =
    if k = 0 then t.base_rows
    else
      Array.append t.base_rows
        (Array.map
           (fun c ->
             { Presolve.terms = c.Cut_pool.terms; sense = Model.Le;
               rhs = c.Cut_pool.rhs })
           (Cut_pool.slice t.pool ~lo:0 ~hi:k))
  in
  let lb = Array.init n (fun v -> Backend.get_lb be v) in
  let ub = Array.init n (fun v -> Backend.get_ub be v) in
  let old_lb = Array.copy lb and old_ub = Array.copy ub in
  match
    Presolve.tighten_intervals ~max_rounds:t.cfg.tighten_rounds ~rows
      ~integer:t.integer ~lb ~ub ()
  with
  | `Infeasible -> `Infeasible
  | `Tightened _ ->
      let changes = ref [] in
      for v = n - 1 downto 0 do
        if lb.(v) > old_lb.(v) +. 1e-9 || ub.(v) < old_ub.(v) -. 1e-9 then begin
          (* propagation tolerates crossings up to its infeasibility
             slack; order the box so set_bounds accepts it *)
          let lo = Float.min lb.(v) ub.(v) and hi = Float.max lb.(v) ub.(v) in
          changes := (v, lo, hi) :: !changes
        end
      done;
      `Tightened !changes

(* ------------------------------------------------------------------ *)
(* Pseudo-cost branching                                               *)
(* ------------------------------------------------------------------ *)

type pseudocost = {
  up_sum : float array;
  up_cnt : int array;
  dn_sum : float array;
  dn_cnt : int array;
}

let pseudocost n =
  {
    up_sum = Array.make n 0.;
    up_cnt = Array.make n 0;
    dn_sum = Array.make n 0.;
    dn_cnt = Array.make n 0;
  }

let pc_record pc v ~up ~delta ~dist =
  if dist > 1e-6 && Float.is_finite delta then begin
    let rate = Float.max 0. delta /. dist in
    if up then begin
      pc.up_sum.(v) <- pc.up_sum.(v) +. rate;
      pc.up_cnt.(v) <- pc.up_cnt.(v) + 1
    end
    else begin
      pc.dn_sum.(v) <- pc.dn_sum.(v) +. rate;
      pc.dn_cnt.(v) <- pc.dn_cnt.(v) + 1
    end
  end

(* mean degradation rate over initialized variables, per direction —
   the fallback estimate for variables never branched on *)
let global_rate sum cnt =
  let s = ref 0. and c = ref 0 in
  Array.iteri (fun v k -> if k > 0 then begin s := !s +. (sum.(v) /. float_of_int k); incr c end) cnt;
  if !c > 0 then !s /. float_of_int !c else 1.

(* bounded dual-simplex strong branch: clamp, resolve, restore *)
let probe t pc be ?deadline ~maximize ~parent_bound v x ~up =
  let lo = Backend.get_lb be v and hi = Backend.get_ub be v in
  let feasible =
    if up then Float.ceil x <= hi +. 1e-9 else Float.floor x >= lo -. 1e-9
  in
  if not feasible then Some infinity
  else begin
    if up then Backend.set_bounds be v ~lb:(Float.ceil x) ~ub:hi
    else Backend.set_bounds be v ~lb:lo ~ub:(Float.floor x);
    let sol = Backend.resolve ~iter_limit:t.cfg.probe_iters ?deadline be in
    Backend.set_bounds be v ~lb:lo ~ub:hi;
    match sol.Simplex.status with
    | Simplex.Optimal ->
        let delta =
          Float.max 0.
            (if maximize then parent_bound -. sol.Simplex.objective
             else sol.Simplex.objective -. parent_bound)
        in
        let dist = if up then Float.ceil x -. x else x -. Float.floor x in
        pc_record pc v ~up ~delta ~dist;
        Some delta
    | Simplex.Infeasible -> Some infinity
    | _ -> None
  end

let select_branch t pc be ?deadline ?(probes = true) ~maximize ~parent_bound
    ~int_tol primal =
  let cands = ref [] in
  Array.iter
    (fun v ->
      let x = primal.(v) in
      if Float.abs (x -. Float.round x) > int_tol then cands := (v, x) :: !cands)
    t.int_vars;
  match List.rev !cands with
  | [] -> None
  | cands ->
      let g_up = global_rate pc.up_sum pc.up_cnt in
      let g_dn = global_rate pc.dn_sum pc.dn_cnt in
      let scored =
        List.map
          (fun (v, x) ->
            let fdn = x -. Float.floor x and fup = Float.ceil x -. x in
            let est cnt sum g dist =
              if cnt > 0 then sum /. float_of_int cnt *. dist else g *. dist
            in
            ( v, x,
              ref (est pc.dn_cnt.(v) pc.dn_sum.(v) g_dn fdn),
              ref (est pc.up_cnt.(v) pc.up_sum.(v) g_up fup) ))
          cands
      in
      if t.cfg.reliability > 0 && probes then begin
        (* probe the most fractional unreliable candidates *)
        let unreliable =
          List.filter
            (fun (v, _, _, _) ->
              pc.dn_cnt.(v) < t.cfg.reliability
              || pc.up_cnt.(v) < t.cfg.reliability)
            scored
        in
        let frac (_, x, _, _) =
          Float.min (x -. Float.floor x) (Float.ceil x -. x)
        in
        let by_frac =
          List.sort
            (fun ((va, _, _, _) as a) ((vb, _, _, _) as b) ->
              let fa = frac a and fb = frac b in
              if fa = fb then compare va vb else compare fb fa)
            unreliable
        in
        let probed = ref 0 in
        List.iter
          (fun (v, x, edn, eup) ->
            if !probed < t.cfg.max_probes then begin
              incr probed;
              if pc.dn_cnt.(v) < t.cfg.reliability then (
                match probe t pc be ?deadline ~maximize ~parent_bound v x ~up:false with
                | Some d -> edn := d
                | None -> ());
              if pc.up_cnt.(v) < t.cfg.reliability then (
                match probe t pc be ?deadline ~maximize ~parent_bound v x ~up:true with
                | Some d -> eup := d
                | None -> ())
            end)
          by_frac
      end;
      let best = ref None and best_score = ref neg_infinity in
      List.iter
        (fun (v, x, edn, eup) ->
          let score = Float.max !edn 1e-9 *. Float.max !eup 1e-9 in
          if score > !best_score then begin
            best_score := score;
            best := Some (v, x, !edn <= !eup)
          end)
        scored;
      !best
