(** The relaxation manager: per-node solve → separate → tighten → branch.

    {!Branch_bound} historically solved one LP per node and branched on
    the nearest integer. This module factors the "what happens between
    the LP and the branch" into an explicit pipeline, shared by the
    serial loop and every parallel worker:

    - {b separate} — after an optimal fractional relaxation, derive
      violated valid inequalities and append them through the backend's
      cut-row API ({!Backend.append_rows}): Gomory mixed-integer cuts
      from sparse tableau rows (shifted against {e root} bounds so they
      are valid tree-wide, with slack columns substituted back out), and
      SOS1 disjunctive cuts [sum x_k / ub_k <= 1] for the
      complementarity groups emitted by the KKT rewrite. Accepted cuts
      live in a shared {!Cut_pool}; each worker's LP holds a pool
      {e prefix}, so a generation integer is enough to reconcile a
      stolen node's basis snapshot with the thief's state.
    - {b tighten} — re-run {!Presolve.tighten_intervals} under the
      node's branching bounds (rows + pool cuts); strictly tighter boxes
      are applied as transient node-local bounds, and an emptied box
      prunes the node outright.
    - {b branch} — pseudo-cost scoring with reliability probing
      (bounded dual-simplex probes on unreliable candidates) replaces
      nearest-integer selection.

    Everything is gated on {!config.enabled} (default {e off}):
    with cuts disabled the pipeline collapses to exactly the historical
    one-LP-per-node loop, keeping jobs = 1 bit-identical to earlier
    builds. [REPRO_CUTS=1]/[=0] force the gate from the environment. *)

type config = {
  enabled : bool;
  max_rounds : int;  (** separation rounds at the root node *)
  node_rounds : int;  (** separation rounds at depth 1..max_depth *)
  max_cuts_per_round : int;  (** Gomory candidates attempted per round *)
  max_depth : int;  (** no separation below this depth *)
  min_violation : float;
      (** required violation of a normalized cut at the current point *)
  tighten : bool;  (** run node-level bound tightening *)
  tighten_rounds : int;  (** fixed-point rounds per node *)
  reliability : int;
      (** pseudo-costs with fewer than this many observations per
          direction are unreliable and get strong-branching probes;
          [0] disables probing *)
  probe_iters : int;  (** dual-simplex pivot budget per probe *)
  max_probes : int;  (** probed candidates per node *)
}

val disabled : config
(** The gate off: {!Branch_bound} behaves exactly as before. *)

val default_enabled : config
(** The gate on with the tuning the benchmarks use. *)

val of_env : config -> config
(** [REPRO_CUTS=0|false|off|no] forces {!disabled}; any other set value
    forces on ({!default_enabled} unless [cfg] is already enabled);
    unset returns [cfg]. *)

type t
(** Shared manager for one branch-and-bound solve: config, cut pool,
    root bounds (structural and slack anchors for the Gomory shift),
    integrality mask and SOS groups. Safe to share across worker
    domains — the pool is the only mutable part. *)

val create :
  config ->
  sf:Standard_form.t ->
  int_vars:int array ->
  sos:int array array ->
  t

val config : t -> config
val pool : t -> Cut_pool.t

val separate :
  t ->
  Backend.t ->
  primal:float array ->
  ?on_cut:(Cut_pool.cut -> unit) ->
  unit ->
  int
(** One separation round against [be]'s current optimal basis. First
    syncs the backend up to the pool head (another worker's cuts); if
    that alone grew the LP the round stops there. Otherwise derives
    violated Gomory/SOS1 cuts, offers them to the pool ([on_cut] fires
    per accepted cut), and appends every newly accepted generation to
    the backend. Returns the number of rows appended to [be] — when
    positive the caller must re-solve before trusting the relaxation. *)

val sync_snapshot :
  t -> Backend.t -> gen:int -> Simplex.basis_snapshot -> Simplex.basis_snapshot
(** Reconcile a donor's basis snapshot (taken at pool generation [gen])
    with the thief backend [be]: appends pool cuts until [be] reaches
    [gen], or pads the snapshot ({!Simplex.pad_snapshot}) when [be] is
    already ahead. The result installs cleanly into [be]. *)

val tighten :
  t -> Backend.t -> [ `Infeasible | `Tightened of (int * float * float) list ]
(** Interval propagation over rows + pool cuts under [be]'s current
    (node) bounds. Returns the strictly tighter [(var, lb, ub)] boxes
    to apply as node-local overrides — valid for the whole subtree —
    or [`Infeasible] when a box empties (prune the node). *)

(** {2 Pseudo-cost branching} *)

type pseudocost
(** Per-worker store of observed objective degradations per unit of
    fractional distance, by variable and direction. *)

val pseudocost : int -> pseudocost
(** [pseudocost n] for [n] structural variables. *)

val pc_record :
  pseudocost -> int -> up:bool -> delta:float -> dist:float -> unit
(** Record that branching variable [v] in direction [up] degraded the
    parent bound by [delta >= 0] over fractional distance [dist]. *)

val select_branch :
  t ->
  pseudocost ->
  Backend.t ->
  ?deadline:Repro_resilience.Deadline.t ->
  ?probes:bool ->
  maximize:bool ->
  parent_bound:float ->
  int_tol:float ->
  float array ->
  (int * float * bool) option
(** Pick the fractional integer variable maximizing the product of
    estimated up/down degradations; candidates whose pseudo-costs are
    unreliable are strong-branch probed first (bounded [resolve] with
    the bound temporarily clamped, then restored). Returns
    [(var, value, prefer_down)] — [prefer_down] is the direction with
    the smaller estimated degradation, which the parallel workers
    plunge into — or [None] when no integer variable is fractional
    (SOS branching takes over). [probes:false] disables the probing
    (pseudo-costs and fractionality fallback only) — branch-and-bound
    passes its [warm_start] flag here so a cold-restart measurement run
    never touches the warm machinery. *)
