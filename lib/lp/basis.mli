(** Factorized basis inverse for the sparse revised simplex.

    Maintained as a product-form eta file: applying {!ftran} solves
    [B x = b] and {!btran} solves [B^T y = c] using only the stored eta
    nonzeros. {!update} appends one eta per simplex pivot; when the file
    grows long (or numerics degrade) callers {!refactorize} to rebuild a
    short file directly from the current basis columns via Markowitz-style
    sparse triangular elimination. *)

type t

(** A fresh factorization of the identity basis (empty eta file). *)
val create : m:int -> t

(** Total etas in the file (refactorization etas + pivot updates). *)
val eta_count : t -> int

(** Etas appended since the last refactorization. *)
val update_count : t -> int

(** How many times {!refactorize} has run over the lifetime of [t]. *)
val refactorizations : t -> int

(** Drop all etas: the factorization becomes the identity. *)
val reset : t -> unit

(** [grow t ~m] extends the factorization to dimension [m] (appended cut
    rows). Existing etas are untouched — they never reference the new
    rows — and the new rows start as identity columns, i.e. the appended
    slack of each new row is basic in it until an eta says otherwise.
    @raise Invalid_argument if [m] is smaller than the current dimension. *)
val grow : t -> m:int -> unit

(** [push t ~r w] appends the pivot eta for an entering column whose
    ftran'd representation is the dense vector [w] with pivot row [r].
    @raise Invalid_argument if [w.(r)] is numerically zero. *)
val push : t -> r:int -> float array -> unit

(** [push_row t ~r ~piv entries] appends a ROW eta — the identity with
    row [r] replaced by the sparse [entries] off-pivot and [piv] on the
    diagonal. This is the exact update factor for an appended cut row
    [a^T x + piv*s = rhs] whose slack [s] becomes basic in the new row
    [r]: with [entries = [(i, a_Bi)]] holding the cut's coefficient on
    the variable basic in each existing row [i], the grown basis factors
    as [diag(B, 1) * R] and {!ftran}/{!btran} stay exact without a
    refactorization.
    @raise Invalid_argument if [piv] is numerically zero. *)
val push_row : t -> r:int -> piv:float -> (int * float) list -> unit

(** [ftran t x] overwrites [x] with [B^-1 x]. *)
val ftran : t -> float array -> unit

(** [ftran_batch t ~width x] overwrites each of the [width] RHS columns
    packed row-major in [x] ([x.(i * width + c)] is row [i] of column
    [c], so [x] has length [m * width]) with [B^-1] applied to it. One
    pass over the eta file serves all columns — eta metadata is read
    once per eta and the inner loops stream contiguously over the block —
    while each column's floating-point op sequence is exactly the scalar
    {!ftran}'s, so column [c] is bitwise identical to a scalar solve.
    @raise Invalid_argument if [width <= 0]. *)
val ftran_batch : t -> width:int -> float array -> unit

(** [btran t y] overwrites [y] with [B^-T y]. *)
val btran : t -> float array -> unit

(** [refactorize t ~col basis] rebuilds the eta file from scratch out of
    the current basis columns; [col v f] must iterate the nonzeros of
    variable [v]'s column of the full constraint matrix as [f row value].
    On success the [basis] array is permuted in place to the elimination's
    row assignment (callers must recompute basic variable values after)
    and the result is [true]; on a numerically singular basis the
    factorization is left reset to the identity and the result is
    [false]. *)
val refactorize : t -> col:(int -> (int -> float -> unit) -> unit) -> int array -> bool
