type comp = Sos1 | Big_m of { fallback : float }

type emitted = {
  x : Model.var array;
  row_duals : Model.var array;
  row_slacks : Model.var option array;
  bound_duals : Model.var array;
  ub_duals : Model.var option array;
  value : Linexpr.t;
  num_complementarity : int;
  num_binaries : int;
  bigm_derived : int;
  bigm_fallbacks : int;
  tracked : Bigm.tracked list;
}

let emit ?(comp = Sos1) model (ir : Ir.t) =
  let prefix = Ir.name ir in
  let n = Ir.num_cols ir in
  let rows = Ir.rows ir in
  let m = Array.length rows in
  (* Host intervals are only consulted in Big_m mode, and reflect the
     model as built so far (the host rows bounding the outer variables
     are in place before the follower is encoded). *)
  let var_interval = lazy (Bigm.host_intervals model) in
  let derived = ref 0 in
  let fellback = ref 0 in
  let binaries = ref 0 in
  let tracked = ref [] in
  let comp_count = ref 0 in
  let comp_idx = ref 0 in
  let count (d : Bigm.derivation) =
    if d.Bigm.derived then incr derived else incr fellback
  in
  let dual_bound ~context fallback =
    Bigm.note_fallback ~context;
    { Bigm.m = fallback; derived = false }
  in
  (* a ⊥ b with activity bounds ma, mb: SOS1 pair or a binary disjunction
     [a <= ma.z, b <= mb.(1-z)] *)
  let complementarity ~context a (ma : Bigm.derivation Lazy.t) b
      (mb : Bigm.derivation Lazy.t) =
    incr comp_count;
    match comp with
    | Sos1 -> Model.add_sos1 model [ a; b ]
    | Big_m _ ->
        let idx = !comp_idx in
        incr comp_idx;
        let ma = Lazy.force ma and mb = Lazy.force mb in
        count ma;
        count mb;
        let z =
          Model.add_var
            ~name:(Printf.sprintf "%s_comp_%d" prefix idx)
            ~kind:Model.Binary model
        in
        incr binaries;
        ignore
          (Model.add_constr
             ~name:(Printf.sprintf "%s_mdual_%d" prefix idx)
             model
             (Linexpr.of_terms [ (a, 1.); (z, -.ma.Bigm.m) ])
             Model.Le 0.);
        ignore
          (Model.add_constr
             ~name:(Printf.sprintf "%s_mprimal_%d" prefix idx)
             model
             (Linexpr.of_terms [ (b, 1.); (z, mb.Bigm.m) ])
             Model.Le mb.Bigm.m);
        tracked :=
          {
            Bigm.context = context ^ "/primal";
            m = mb.Bigm.m;
            indicator = z;
            active_when = `Zero;
            activity = Linexpr.var b;
          }
          :: {
               Bigm.context = context ^ "/dual";
               m = ma.Bigm.m;
               indicator = z;
               active_when = `One;
               activity = Linexpr.var a;
             }
          :: !tracked
  in
  let fallback_m =
    match comp with Big_m { fallback } -> fallback | Sos1 -> infinity
  in
  let x =
    Array.init n (fun j ->
        Model.add_var
          ~name:(Printf.sprintf "%s_x_%d" prefix j)
          ~ub:(Ir.col_ub ir j) model)
  in
  (* duals and slacks *)
  let row_duals =
    Array.init m (fun i ->
        match rows.(i).Ir.sense with
        | Ir.Le ->
            Model.add_var ~name:(Printf.sprintf "%s_lam_%d" prefix i) model
        | Ir.Eq ->
            Model.add_var
              ~name:(Printf.sprintf "%s_nu_%d" prefix i)
              ~lb:neg_infinity model)
  in
  let row_slacks =
    Array.init m (fun i ->
        match rows.(i).Ir.sense with
        | Ir.Le ->
            Some (Model.add_var ~name:(Printf.sprintf "%s_s_%d" prefix i) model)
        | Ir.Eq -> None)
  in
  (* upper bound on a <=-row's slack: rhs - min activity of its terms *)
  let slack_bound (row : Ir.row) =
    lazy
      (let inner_min =
         List.fold_left
           (fun acc (j, c) ->
             if c > 0. then acc else acc +. (c *. Ir.col_ub ir j))
           0. row.Ir.inner_terms
       in
       let outer_min, _ =
         Bigm.activity_interval
           ~var_interval:(Lazy.force var_interval)
           row.Ir.outer_terms
       in
       let hi = row.Ir.rhs -. inner_min -. outer_min in
       if hi < infinity then { Bigm.m = Float.max 0. hi; derived = true }
       else begin
         Bigm.note_fallback ~context:(row.Ir.row_name ^ "/slack");
         { Bigm.m = fallback_m; derived = false }
       end)
  in
  (* primal feasibility rows *)
  Array.iteri
    (fun i (row : Ir.row) ->
      let expr =
        Linexpr.of_terms
          (List.map (fun (j, c) -> (x.(j), c)) row.Ir.inner_terms
          @ row.Ir.outer_terms)
      in
      match row_slacks.(i) with
      | Some s ->
          let expr = Linexpr.add_term expr s 1. in
          ignore
            (Model.add_constr ~name:(row.Ir.row_name ^ "_pf") model expr
               Model.Eq row.Ir.rhs);
          complementarity ~context:row.Ir.row_name row_duals.(i)
            (lazy (dual_bound ~context:(row.Ir.row_name ^ "/dual") fallback_m))
            s (slack_bound row)
      | None ->
          ignore
            (Model.add_constr ~name:(row.Ir.row_name ^ "_pf") model expr
               Model.Eq row.Ir.rhs))
    rows;
  (* stationarity + bound-dual complementarity *)
  let coef_of_col = Array.make n [] in
  Array.iteri
    (fun i (row : Ir.row) ->
      List.iter
        (fun (j, c) -> coef_of_col.(j) <- (row_duals.(i), c) :: coef_of_col.(j))
        row.Ir.inner_terms)
    rows;
  let c_obj = Array.make n 0. in
  List.iter (fun (j, c) -> c_obj.(j) <- c_obj.(j) +. c) (Ir.objective ir);
  let ub_duals = Array.make n None in
  let bound_duals =
    Array.init n (fun j ->
        let mu = Model.add_var ~name:(Printf.sprintf "%s_mu_%d" prefix j) model in
        let u = Ir.col_ub ir j in
        let upper =
          if u < infinity then begin
            let eta =
              Model.add_var ~name:(Printf.sprintf "%s_eta_%d" prefix j) model
            in
            let r =
              Model.add_var ~name:(Printf.sprintf "%s_r_%d" prefix j) ~ub:u
                model
            in
            ub_duals.(j) <- Some eta;
            Some (eta, r)
          end
          else None
        in
        (* c_j - sum_i dual_i a_ij + mu_j - eta_j = 0 *)
        let expr =
          Linexpr.add_term
            (Linexpr.of_terms (List.map (fun (d, c) -> (d, -.c)) coef_of_col.(j)))
            mu 1.
        in
        let expr =
          match upper with
          | Some (eta, _) -> Linexpr.add_term expr eta (-1.)
          | None -> expr
        in
        ignore
          (Model.add_constr ~name:(Printf.sprintf "%s_stat_%d" prefix j) model
             expr Model.Eq (-.c_obj.(j)));
        (match upper with
        | Some (_, r) ->
            (* x_j + r_j = u_j *)
            ignore
              (Model.add_constr ~name:(Printf.sprintf "%s_ub_%d" prefix j)
                 model
                 (Linexpr.of_terms [ (x.(j), 1.); (r, 1.) ])
                 Model.Eq u)
        | None -> ());
        let ctx = Printf.sprintf "%s_x_%d" prefix j in
        complementarity ~context:ctx mu
          (lazy (dual_bound ~context:(ctx ^ "/mu") fallback_m))
          x.(j)
          (lazy
            (if u < infinity then { Bigm.m = u; derived = true }
             else begin
               Bigm.note_fallback ~context:(ctx ^ "/x");
               { Bigm.m = fallback_m; derived = false }
             end));
        (match upper with
        | Some (eta, r) ->
            complementarity ~context:(ctx ^ "_ub") eta
              (lazy (dual_bound ~context:(ctx ^ "/eta") fallback_m))
              r
              (lazy { Bigm.m = u; derived = true })
        | None -> ());
        mu)
  in
  let value =
    Linexpr.of_terms (List.map (fun (j, c) -> (x.(j), c)) (Ir.objective ir))
  in
  {
    x;
    row_duals;
    row_slacks;
    bound_duals;
    ub_duals;
    value;
    num_complementarity = !comp_count;
    num_binaries = !binaries;
    bigm_derived = !derived;
    bigm_fallbacks = !fellback;
    tracked = List.rev !tracked;
  }
