(** Registry of heuristic families.

    A family packages everything the adversary pipeline needs to attack
    one heuristic: a human-readable description, the structure-aware
    probes it seeds the search with, and a thunk building a
    representative encoding whose size the [families] CLI reports.
    Registration is explicit (call sites invoke
    [Repro_metaopt.Families.ensure_registered] or register directly)
    rather than relying on module-initialization side effects. *)

type stats = {
  vars : int;
  rows : int;
  sos1 : int;
  binaries : int;
}

type t = {
  name : string;
  doc : string;
  probes : (string * string) list;  (** (probe name, what it seeds) *)
  stats : unit -> stats;
      (** builds a representative gap encoding and reports its size *)
}

(** [register f] adds (or replaces, keyed by [name]) a family. *)
val register : t -> unit

val find : string -> t option

(** All registered families, in registration order. *)
val all : unit -> t list

val names : unit -> string list

(** Size of a built host model, for [stats] thunks. *)
val stats_of_model : ?binaries:int -> Model.t -> stats
