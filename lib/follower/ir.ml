type sense = Le | Eq

type row = {
  row_name : string;
  inner_terms : (int * float) list;
  outer_terms : (Model.var * float) list;
  sense : sense;
  rhs : float;
}

type t = {
  ir_name : string;
  mutable cols : int;
  mutable col_ubs : (int * float) list;  (* only finite ubs, reversed *)
  mutable col_groups : (string * int list) list;  (* reversed members *)
  mutable obj : (int * float) list;
  mutable row_list : (string * row) list;  (* (block, row), reversed *)
}

let create ~name () =
  { ir_name = name; cols = 0; col_ubs = []; col_groups = []; obj = []; row_list = [] }

let name t = t.ir_name
let num_cols t = t.cols

let add_cols ?(group = "cols") ?(ub = infinity) t n =
  if n < 0 then invalid_arg "Ir.add_cols: negative count";
  if ub < 0. then invalid_arg "Ir.add_cols: ub < 0";
  let first = t.cols in
  t.cols <- t.cols + n;
  let ids = List.init n (fun i -> first + i) in
  if ub < infinity then
    t.col_ubs <- List.rev_append (List.map (fun j -> (j, ub)) ids) t.col_ubs;
  (match List.assoc_opt group t.col_groups with
  | Some _ ->
      t.col_groups <-
        List.map
          (fun (g, m) ->
            if g = group then (g, List.rev_append ids m) else (g, m))
          t.col_groups
  | None -> t.col_groups <- t.col_groups @ [ (group, List.rev ids) ]);
  first

let col_ub t j =
  if j < 0 || j >= t.cols then invalid_arg "Ir.col_ub: bad column";
  match List.assoc_opt j t.col_ubs with Some u -> u | None -> infinity

let col_group t j =
  if j < 0 || j >= t.cols then invalid_arg "Ir.col_group: bad column";
  match
    List.find_opt (fun (_, members) -> List.mem j members) t.col_groups
  with
  | Some (g, _) -> g
  | None -> "cols"

let check_terms t ~what terms =
  List.iter
    (fun (j, _) ->
      if j < 0 || j >= t.cols then
        invalid_arg
          (Printf.sprintf "Ir(%s): %s references bad column %d" t.ir_name what j))
    terms

let set_objective t obj =
  check_terms t ~what:"objective" obj;
  t.obj <- obj

let objective t = t.obj

(* "pin_spread_3" -> "pin_spread"; "pop0_cap_1_2" -> "pop0_cap" *)
let infer_block row_name =
  let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  let parts = String.split_on_char '_' row_name in
  let rec strip = function
    | [ last ] when is_digits last -> []
    | [ last ] -> [ last ]
    | p :: rest -> (
        match strip rest with
        | [] when is_digits p -> []
        | stripped -> p :: stripped)
    | [] -> []
  in
  match strip parts with
  | [] -> row_name
  | kept -> String.concat "_" kept

let add_row ?block t row =
  check_terms t ~what:("row " ^ row.row_name) row.inner_terms;
  let block =
    match block with Some b -> b | None -> infer_block row.row_name
  in
  t.row_list <- (block, row) :: t.row_list

let add_rows ?block t rows = List.iter (add_row ?block t) rows
let num_rows t = List.length t.row_list
let rows t = Array.of_list (List.rev_map snd t.row_list)

let num_le_rows t =
  List.fold_left
    (fun acc (_, r) -> if r.sense = Le then acc + 1 else acc)
    0 t.row_list

let groups t = List.map (fun (g, m) -> (g, List.rev m)) t.col_groups

let blocks t =
  let ordered = List.rev t.row_list in
  let names = ref [] in
  List.iteri
    (fun i (b, _) ->
      match List.assoc_opt b !names with
      | Some _ ->
          names :=
            List.map
              (fun (b', m) -> if b' = b then (b', i :: m) else (b', m))
              !names
      | None -> names := !names @ [ (b, [ i ]) ])
    ordered;
  List.map (fun (b, m) -> (b, List.rev m)) !names

let value t x =
  List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. t.obj

let solve_directly t ~outer_values =
  let model = Model.create ~name:(t.ir_name ^ "_direct") () in
  let xs =
    Array.init t.cols (fun j -> Model.add_var ~name:"x" ~ub:(col_ub t j) model)
  in
  List.iter
    (fun (_, r) ->
      let expr =
        Linexpr.of_terms (List.map (fun (j, c) -> (xs.(j), c)) r.inner_terms)
      in
      let shift =
        List.fold_left
          (fun acc (v, c) -> acc +. (c *. outer_values v))
          0. r.outer_terms
      in
      let sense = match r.sense with Le -> Model.Le | Eq -> Model.Eq in
      ignore (Model.add_constr ~name:r.row_name model expr sense (r.rhs -. shift)))
    (List.rev t.row_list);
  Model.set_objective model Model.Maximize
    (Linexpr.of_terms (List.map (fun (j, c) -> (xs.(j), c)) t.obj));
  Solver.solve_lp model
