let src = Logs.Src.create "repro.follower.bigm" ~doc:"big-M derivation"

module Log = (val Logs.src_log src : Logs.LOG)

let host_intervals model =
  match Presolve.var_intervals model with
  | Some intervals -> fun v -> intervals.(v)
  | None -> fun v -> (Model.var_lb model v, Model.var_ub model v)

let activity_interval ~var_interval terms =
  List.fold_left
    (fun (mn, mx) (v, c) ->
      let lo, hi = var_interval v in
      if c > 0. then (mn +. (c *. lo), mx +. (c *. hi))
      else (mn +. (c *. hi), mx +. (c *. lo)))
    (0., 0.) terms

type derivation = { m : float; derived : bool }

let fallbacks = Atomic.make 0

let note_fallback ~context =
  if Atomic.fetch_and_add fallbacks 1 = 0 then
    Log.warn (fun m ->
        m
          "big-M for %s not derivable from presolve intervals; using the \
           fallback constant (further fallbacks are silent)"
          context)

let fallbacks_noted () = Atomic.get fallbacks
let reset_fallbacks () = Atomic.set fallbacks 0

let derive_ub ~context ~var_interval ~fallback terms =
  let _, hi = activity_interval ~var_interval terms in
  if hi < infinity then { m = hi; derived = true }
  else begin
    note_fallback ~context;
    { m = fallback; derived = false }
  end

type tracked = {
  context : string;
  m : float;
  indicator : Model.var;
  active_when : [ `One | `Zero ];
  activity : Linexpr.t;
}

let audit ?(tol = 1e-6) primal tracked =
  let read v = if v < Array.length primal then primal.(v) else 0. in
  List.filter
    (fun t ->
      let gate_open =
        match t.active_when with
        | `One -> read t.indicator >= 0.5
        | `Zero -> read t.indicator < 0.5
      in
      gate_open
      && Linexpr.eval t.activity read >= t.m -. (tol *. (1. +. Float.abs t.m)))
    tracked
