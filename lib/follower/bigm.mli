(** Derivation and audit of big-M constants.

    The paper's encodings gate rows on indicator binaries via big-M
    constants. A hand-picked M that is too small silently cuts the true
    optimum; one that is too large weakens the LP relaxation. This module
    (a) derives activity bounds from {!Presolve.var_intervals} instead of
    hand-picked constants, falling back — with a single warning — to a
    caller-supplied constant only when the intervals are unbounded, and
    (b) audits a solved primal for gated rows that sit {e on} their big-M,
    the tell-tale of a constant that may be binding the optimum. *)

(** Tightened [(lb, ub)] accessor for a host model's variables, from
    presolve interval propagation (raw bounds if presolve proves the
    model infeasible, which only happens on degenerate inputs). *)
val host_intervals : Model.t -> Model.var -> float * float

(** Interval of [sum c_v x_v] given per-variable intervals. *)
val activity_interval :
  var_interval:(Model.var -> float * float) ->
  (Model.var * float) list ->
  float * float

type derivation = { m : float; derived : bool }

(** [derive_ub ~var_interval ~fallback terms] is an upper bound on the
    activity of [terms]: the interval maximum when finite (derived),
    otherwise [fallback] (with {!note_fallback}). *)
val derive_ub :
  context:string ->
  var_interval:(Model.var -> float * float) ->
  fallback:float ->
  (Model.var * float) list ->
  derivation

(** {1 Fallback accounting}

    The first fallback per process logs a warning; tests reset. *)

val note_fallback : context:string -> unit
val fallbacks_noted : unit -> int
val reset_fallbacks : unit -> unit

(** {1 Audit} *)

type tracked = {
  context : string;  (** row name the constant gates *)
  m : float;
  indicator : Model.var;
  active_when : [ `One | `Zero ];
      (** indicator value at which the gate opens (activity bounded by
          [m] instead of forced to its row) *)
  activity : Linexpr.t;
      (** model-space expression the constant bounds when the gate is
          open *)
}

(** [audit primal tracked] returns the tracked constants whose gate is
    open while the gated activity sits within [tol] (relative) of [m] —
    i.e. the big-M itself is binding, so the reported optimum may be cut.
    A correctly-derived M is never flagged. *)
val audit : ?tol:float -> float array -> tracked list -> tracked list
